// §6.3 — system relevance of tree design: "We turn on logging, generate load
// using network clients, and compare '+IntCmp', the fastest binary tree from
// the previous section, with Masstree. On 140M-key 1-to-10-byte-decimal
// workloads with 16 cores, Masstree provides 1.90x and 1.53x the throughput
// of the binary tree for gets and puts, respectively."
//
// Both backends run behind the SAME network server and logging stack; only
// the tree differs. The binary tree is wrapped in a minimal Store-compatible
// backend (single column, logging via the same Logger).

#include <filesystem>

#include "baselines/binary_tree.h"
#include "bench/common.h"
#include "kvstore/store.h"
#include "net/client.h"
#include "net/server.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

// Store-shaped adapter over the +IntCmp binary tree so BasicServer can serve
// it. Values are heap strings (single column); logging mirrors Store's
// per-session shards: each session owns its own single-producer Logger.
class BinaryStore {
 public:
  class Session {
   public:
    Session(BinaryStore& store, unsigned) : store_(store) {
      if (!store.log_dir_.empty()) {
        unsigned id = store.next_log_.fetch_add(1, std::memory_order_relaxed);
        logger_ = std::make_unique<Logger>(store.log_dir_ + "/binlog-" +
                                           std::to_string(id) + ".bin");
      }
    }
    ThreadContext& ti() { return ti_; }

   private:
    friend class BinaryStore;
    BinaryStore& store_;
    std::unique_ptr<Logger> logger_;
    ThreadContext ti_;
  };

  explicit BinaryStore(const std::string& log_dir) : log_dir_(log_dir) {
    if (!log_dir.empty()) {
      std::filesystem::create_directories(log_dir);
    }
  }

  bool get(std::string_view key, const std::vector<unsigned>&, std::vector<std::string>* out,
           Session& s) const {
    EpochGuard guard(s.ti_.slot());
    uint64_t lv;
    if (!tree_.get(key, &lv)) {
      return false;
    }
    out->assign(1, *reinterpret_cast<const std::string*>(lv));
    return true;
  }

  bool put(std::string_view key, const std::vector<ColumnUpdate>& updates, Session& s) {
    auto* value = new std::string(updates.empty() ? "" : std::string(updates[0].data));
    bool inserted =
        tree_.insert(key, reinterpret_cast<uint64_t>(value), &s.ti_.arena());
    if (s.logger_ != nullptr) {
      s.logger_->append_put(key, updates, 0);
    }
    return inserted;  // note: replaced values leak; acceptable for a bench
  }

  bool remove(std::string_view, Session&) { return false; }  // unsupported

  template <typename F>
  size_t getrange(std::string_view, size_t, unsigned, F&&, Session&) const {
    return 0;  // binary tree baseline has no ordered iteration helper
  }

 private:
  friend class Session;
  BinaryTree<FlowNodeAlloc, true> tree_;  // "+IntCmp"
  std::string log_dir_;
  std::atomic<unsigned> next_log_{0};
};

struct NetResult {
  double get_mops;
  double put_mops;
};

// Drives a server over loopback with batching clients, one per thread.
template <typename ServerT>
NetResult drive(uint16_t port, const bench::Env& e) {
  NetResult r;
  // Put phase.
  std::atomic<uint64_t> next{0};
  r.put_mops = bench::timed_mops(e.threads, e.secs, [&](unsigned, const std::atomic<bool>& stop) {
    Client c(port);
    uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t chunk = next.fetch_add(512, std::memory_order_relaxed);
      for (uint64_t i = chunk; i < chunk + 512; ++i) {
        c.put(decimal_key(i % e.keys), {{0, "8bytes!!"}});
      }
      c.flush();
      ops += 512;
    }
    return ops;
  });
  // Ensure full load before gets.
  {
    Client c(port);
    uint64_t loaded = next.load();
    for (uint64_t i = loaded; i < e.keys; ++i) {
      c.put(decimal_key(i), {{0, "8bytes!!"}});
      if (c.pending() >= 256) {
        c.flush();
      }
    }
    c.flush();
  }
  r.get_mops = bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    Client c(port);
    Rng rng(59 + t);
    uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 512; ++i) {
        c.get(decimal_key(rng.next_range(e.keys)));
      }
      c.flush();
      ops += 512;
    }
    return ops;
  });
  return r;
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(300000);
  print_header("Section 6.3: full system (network + logging), Masstree vs +IntCmp binary",
               e);
  namespace fs = std::filesystem;
  std::string tmp = fs::temp_directory_path().string();
  fs::remove_all(tmp + "/sec63-mt");
  fs::remove_all(tmp + "/sec63-bin");

  NetResult mt, bin;
  {
    Store::Options opt;
    opt.log_dir = tmp + "/sec63-mt";
    Store store(opt);
    Server server(store, Server::Options{0, e.threads});
    server.start();
    mt = drive<Server>(server.port(), e);
    server.stop();
  }
  {
    BinaryStore store(tmp + "/sec63-bin");
    BasicServer<BinaryStore> server(store, {0, e.threads});
    server.start();
    bin = drive<BasicServer<BinaryStore>>(server.port(), e);
    server.stop();
  }

  std::printf("%-22s get %7.3f Mops   put %7.3f Mops\n", "Masstree (net+log)", mt.get_mops,
              mt.put_mops);
  std::printf("%-22s get %7.3f Mops   put %7.3f Mops\n", "+IntCmp binary", bin.get_mops,
              bin.put_mops);
  std::printf("ratio Masstree/binary: get %.2fx  put %.2fx   (paper: 1.90x / 1.53x)\n",
              mt.get_mops / bin.get_mops, mt.put_mops / bin.put_mops);
  return 0;
}
