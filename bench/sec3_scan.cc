// §3 getrange microbench — the range-read path's trajectory anchor.
//
// Sweeps scan lengths {10, 100, 1000} over the §6.1 decimal-key workload
// (1-10 byte keys, 80% of which are 9-10 bytes, so layer-1 trees and suffix
// bags are genuinely exercised) and reports, single-threaded:
//
//   legacy   the pre-cursor Tree::scan_legacy (re-locates the border on every
//            frame re-entry, heap-allocates per-entry suffix copies) — the
//            seed implementation this PR's ScanCursor must beat
//   cursor   Tree::scan: thin driver over the snapshot-batched ScanCursor
//   batch    Tree::scan_batch: cursor + next-border prefetch overlapped with
//            emission
//
// plus a multi-threaded scan_batch row at the harness thread count, and the
// allocation-free proof: a long chain-walk drive whose per-node-visit buffer
// growth (ScanCursor::alloc_events, Counter::kScanAllocs) must be ZERO after
// warm-up. The perf claim of the range-scan PR is "cursor >= 1.5x legacy at
// len 10, single-threaded, and zero steady-state allocations"; this binary
// prints both so the claim is checkable from the run log.

#include <atomic>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace {

using namespace masstree;
using namespace masstree::bench;

std::atomic<uint64_t> g_sink;

// One timed single-threaded phase: scans of `len` pairs from random starts.
template <typename ScanFn>
double scan_mops_1t(double secs, uint64_t nkeys, size_t len, ScanFn&& scan) {
  return timed_mops(1, secs, [&](unsigned, const std::atomic<bool>& stop) {
    Rng rng(42);
    uint64_t pairs = 0;
    uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::string start = decimal_key(rng.next_range(nkeys));
      pairs += scan(start, len, sink);
    }
    g_sink += sink;
    return pairs;
  });
}

}  // namespace

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("sec3_scan: snapshot-batched range scans (getrange, §3)", e);

  ThreadContext setup;
  Tree tree(setup);
  {
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
  }

  std::printf("%-8s %10s %10s %8s %10s %8s\n", "scan_len", "legacy", "cursor", "ratio",
              "batch", "ratio");
  double len10_legacy = 0, len10_batch = 0;
  for (size_t len : {size_t{10}, size_t{100}, size_t{1000}}) {
    double secs = e.secs / 2;
    double legacy = scan_mops_1t(secs, e.keys, len, [&](const std::string& s, size_t l, uint64_t& sink) {
      thread_local ThreadContext ti;
      return tree.scan_legacy(
          s, l,
          [&](std::string_view k, uint64_t v) {
            sink += v + k.size();
            return true;
          },
          ti);
    });
    double cursor = scan_mops_1t(secs, e.keys, len, [&](const std::string& s, size_t l, uint64_t& sink) {
      thread_local ThreadContext ti;
      return tree.scan(
          s, l,
          [&](std::string_view k, uint64_t v) {
            sink += v + k.size();
            return true;
          },
          ti);
    });
    double batch = scan_mops_1t(secs, e.keys, len, [&](const std::string& s, size_t l, uint64_t& sink) {
      thread_local ThreadContext ti;
      return tree.scan_batch(
          s, l,
          [&](std::string_view k, uint64_t v) {
            sink += v + k.size();
            return true;
          },
          ti);
    });
    std::printf("%-8zu %9.3fM %9.3fM %7.2fx %9.3fM %7.2fx\n", len, legacy, cursor,
                cursor / legacy, batch, batch / legacy);
    if (len == 10) {
      len10_legacy = legacy;
      len10_batch = batch;
    }
  }
  // The PR's perf claim, spelled out: the shipped range-read path (scan_batch
  // — what Store::getrange and bench_json's scan_mops drive) vs the seed scan
  // at length 10, single-threaded.
  std::printf("claim len=10 1T: scan_batch %.3fM vs legacy %.3fM = %.2fx (>=1.5x: %s)\n",
              len10_batch, len10_legacy, len10_batch / len10_legacy,
              len10_batch >= 1.5 * len10_legacy ? "PASS" : "FAIL");

  // Multi-threaded batched scans, len 100 (the YCSB-E-shaped datapoint).
  {
    double mt = timed_mops(e.threads, e.secs / 2, [&](unsigned t, const std::atomic<bool>& stop) {
      thread_local ThreadContext ti;
      Rng rng(1000 + t);
      uint64_t pairs = 0, sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        pairs += tree.scan_batch(
            decimal_key(rng.next_range(e.keys)), 100,
            [&](std::string_view k, uint64_t v) {
              sink += v + k.size();
              return true;
            },
            ti);
      }
      g_sink += sink;
      return pairs;
    });
    std::printf("scan_batch len=100 x %u threads: %9.3f Mpairs/s\n", e.threads, mt);
  }

  // Allocation-free steady state: drive one cursor over the whole tree and
  // report buffer growth after the warm-up batches. The chain-walk claim is
  // steady_allocs == 0.
  {
    ThreadContext ti;
    auto cur = tree.scan_cursor("");
    EpochGuard guard(ti.slot());
    uint64_t batches = 0, pairs = 0, warm_allocs = 0, warm_nodes = 0;
    uint64_t nodes0 = ti.counters().get(Counter::kScanNodes);
    for (;;) {
      size_t n = cur.next_batch(&ti.counters());
      if (n == 0) {
        break;
      }
      cur.prefetch_pending();
      for (size_t i = 0; i < n; ++i) {
        g_sink += cur.key(i).size() + cur.value(i);
        ++pairs;
      }
      if (++batches == 32) {
        warm_allocs = cur.alloc_events();
        warm_nodes = ti.counters().get(Counter::kScanNodes) - nodes0;
      }
    }
    uint64_t nodes = ti.counters().get(Counter::kScanNodes) - nodes0;
    if (batches < 32) {
      // Tiny-scale run: the whole walk fits inside warm-up, so there is no
      // steady state to judge — don't misreport legitimate warm-up growth.
      warm_allocs = cur.alloc_events();
      warm_nodes = nodes;
    }
    uint64_t steady_allocs = cur.alloc_events() - warm_allocs;
    std::printf(
        "full-tree chain walk: %llu pairs over %llu node visits; "
        "alloc events warm-up=%llu steady=%llu (%s)\n",
        static_cast<unsigned long long>(pairs), static_cast<unsigned long long>(nodes),
        static_cast<unsigned long long>(warm_allocs),
        static_cast<unsigned long long>(steady_allocs),
        steady_allocs == 0 ? "allocation-free" : "ALLOCATING — REGRESSION");
    std::printf("scan counters: nodes=%llu retries=%llu redescents=%llu  (steady nodes "
                "after warm-up: %llu)\n",
                static_cast<unsigned long long>(nodes),
                static_cast<unsigned long long>(ti.counters().get(Counter::kScanRetries)),
                static_cast<unsigned long long>(ti.counters().get(Counter::kScanRedescents)),
                static_cast<unsigned long long>(nodes - warm_nodes));
    if (steady_allocs != 0) {
      return 1;  // the allocation-free claim is enforced, not printed
    }
  }
  return 0;
}
