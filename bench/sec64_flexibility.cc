// §6.4 — the cost of flexibility, three experiments:
//
//  (a) Variable-length keys: Masstree vs a fixed-8-byte-key B-tree on an
//      8-byte-key get workload. Paper: 9.84 vs 9.93 Mops — "just 0.8% more";
//      variable-length support is essentially free.
//  (b) Concurrency: single-core Masstree (no locks, versions, or interlocked
//      instructions) vs concurrent Masstree on ONE core, put workload.
//      Paper: single-core wins by just 13%.
//  (c) Range queries: a near-best-case concurrent hash table vs Masstree on
//      8-byte alphabetical keys. Paper: hash table gets 2.5x the throughput —
//      "of these features, only range queries appear inherently expensive."

#include "baselines/fast_btree.h"
#include "baselines/hash_table.h"
#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(500000);
  print_header("Section 6.4: flexibility costs", e);

  // ---- (a) variable-length keys ----
  {
    double mt, fixed;
    {
      ThreadContext setup;
      Tree tree(setup);
      {
        uint64_t old;
        for (uint64_t i = 0; i < e.keys; ++i) {
          tree.insert(decimal8_key(i), i, &old, setup);
        }
      }
      mt = timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(3 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            tree.get(decimal8_key(rng.next_range(e.keys)), &v, ti);
            ++ops;
          }
        }
        return ops;
      });
    }
    {
      ThreadContext setup;
      BtreeFixed8 tree(setup);
      for (uint64_t i = 0; i < e.keys; ++i) {
        tree.insert(decimal8_key(i), i, setup);
      }
      fixed = timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(4 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            tree.get(decimal8_key(rng.next_range(e.keys)), &v, ti);
            ++ops;
          }
        }
        return ops;
      });
    }
    std::printf("(a) 8-byte-key get:  Masstree %7.3f Mops, fixed-key B-tree %7.3f Mops "
                "-> fixed is %+.1f%% (paper: +0.8%%)\n",
                mt, fixed, 100.0 * (fixed - mt) / mt);
  }

  // ---- (b) concurrency cost on one core ----
  {
    auto run_put = [&](auto& tree) {
      std::atomic<uint64_t> next{0};
      return timed_mops(1, e.secs, [&](unsigned, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        uint64_t ops = 0, old;
        while (!stop.load(std::memory_order_relaxed)) {
          uint64_t chunk = next.fetch_add(256, std::memory_order_relaxed);
          for (uint64_t i = chunk; i < chunk + 256; ++i) {
            tree.insert(decimal_key(i), i, &old, ti);
            ++ops;
          }
        }
        return ops;
      });
    };
    double concurrent, sequential;
    {
      ThreadContext setup;
      Tree tree(setup);
      concurrent = run_put(tree);
    }
    {
      ThreadContext setup;
      SequentialTree tree(setup);
      sequential = run_put(tree);
    }
    std::printf("(b) 1-core put:      concurrent %7.3f Mops, single-core variant %7.3f "
                "Mops -> single-core wins by %.0f%% (paper: 13%%)\n",
                concurrent, sequential, 100.0 * (sequential - concurrent) / concurrent);
  }

  // ---- (c) range-query support: hash table vs tree ----
  {
    double mt, hash;
    {
      ThreadContext setup;
      Tree tree(setup);
      {
        uint64_t old;
        for (uint64_t i = 0; i < e.keys; ++i) {
          tree.insert(alpha8_key(i), i, &old, setup);
        }
      }
      mt = timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(5 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            tree.get(alpha8_key(rng.next_range(e.keys)), &v, ti);
            ++ops;
          }
        }
        return ops;
      });
    }
    {
      ThreadContext setup;
      HashTable8 table(e.keys, setup);
      for (uint64_t i = 0; i < e.keys; ++i) {
        table.insert(alpha8_key(i), i);
      }
      hash = timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        Rng rng(6 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            table.get(alpha8_key(rng.next_range(e.keys)), &v);
            ++ops;
          }
        }
        return ops;
      });
      std::printf("(c) 8-byte-key get:  Masstree %7.3f Mops, hash table %7.3f Mops "
                  "(occupancy %.0f%%) -> hash/tree = %.2fx (paper: 2.5x)\n",
                  mt, hash, 100.0 * table.occupancy(), hash / mt);
    }
  }
  return 0;
}
