// Figure 9 — key length / shared prefixes (§6.4): "Performance effect of
// varying key length on Masstree and '+Permuter'. For each key length, keys
// differ only in the last 8 bytes. 16-core get workload."
//
// Paper shape (80M keys): Masstree stays nearly flat as keys lengthen (each
// prefix slice is examined once; same-length keys collapse into deep layers),
// while "+Permuter" decays — 16-byte keys already cost it 1.4x (repeated
// O(log n) comparisons of the first 16 bytes) and from 24 bytes on it takes a
// cache miss per suffix comparison, ending around 3.4x slower.

#include "baselines/fast_btree.h"
#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

using bench::Env;

template <typename InsertFn, typename GetFn>
double get_mops_for_len(const Env& e, size_t len, InsertFn&& ins, GetFn&& get) {
  for (uint64_t i = 0; i < e.keys; ++i) {
    ins(prefix_key(i, len), i);
  }
  return bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    Rng rng(29 + t);
    uint64_t ops = 0, v;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 256; ++i) {
        get(prefix_key(rng.next_range(e.keys), len), &v);
        ++ops;
      }
    }
    return ops;
  });
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(500000);
  print_header("Figure 9: key length sweep (shared prefixes)", e);
  std::printf("%-8s %-18s %-18s %s\n", "len", "Masstree Mops", "+Permuter Mops", "ratio");

  for (size_t len : {size_t{8}, size_t{16}, size_t{24}, size_t{32}, size_t{40}, size_t{48}}) {
    double mt, bt;
    {
      ThreadContext setup;
      Tree tree(setup);
      mt = get_mops_for_len(
          e, len,
          [&](const std::string& k, uint64_t v) {
            thread_local ThreadContext ti;
            uint64_t old;
            tree.insert(k, v, &old, ti);
          },
          [&](const std::string& k, uint64_t* v) {
            thread_local ThreadContext ti;
            return tree.get(k, v, ti);
          });
    }
    {
      ThreadContext setup;
      BtreePermuter tree(setup);
      bt = get_mops_for_len(
          e, len,
          [&](const std::string& k, uint64_t v) {
            thread_local ThreadContext ti;
            tree.insert(k, v, ti);
          },
          [&](const std::string& k, uint64_t* v) {
            thread_local ThreadContext ti;
            return tree.get(k, v, ti);
          });
    }
    std::printf("%-8zu %-18.3f %-18.3f %.2fx\n", len, mt, bt, mt / bt);
  }
  std::printf("\npaper: Masstree ~flat; Masstree/+Permuter = 1.4x at 16 bytes, ~3.4x for "
              "long keys\n");
  return 0;
}
