// Figure 13 — system comparison (§7): Masstree vs the architectural models
// of MongoDB 2.0, VoltDB 2.0, Redis 2.4 and memcached 1.4 (see
// src/sysmodels/models.h and DESIGN.md §1.4 for what each models and why the
// substitution preserves the published shape).
//
// Workloads, as in the paper: (1) uniform key popularity, 1-to-10-byte
// decimal keys, one 8-byte column — get and put, 16-core and 1-core; (2)
// MYCSB A/B/C/E: Zipfian popularity, 5-24-byte keys, ten 4-byte columns for
// gets, one 4-byte column for updates, getrange of 1..100 keys returning one
// column. Systems that lack a capability sit out that workload (N/A), as in
// the paper. All systems run in-process; per-message network overhead is
// charged with calibrated busy work according to each system's batching
// capabilities (Figure 12) — MT_BENCH_NETNS tunes it. Masstree runs with
// logging enabled.
//
// Paper (Mops, 16 cores): uniform get 9.10 / 0.04 / 0.22 / 5.97 / 9.78;
// uniform put 5.84 / 0.04 / 0.22 / 2.97 / 1.21; MYCSB-A 6.05 / 0.05 / 0.20 /
// 2.13 / N/A; -B 8.90 / 0.04 / 0.20 / 2.69 / N/A; -C 9.86 / 0.05 / 0.21 /
// 2.70 / 5.28; -E 0.91 / ~0 / ~0 / N/A / N/A.

// After the model table, the binary runs the §6.1 connections-vs-throughput
// sweep: the epoll event-loop server (src/net/server.h) against the
// thread-per-connection-era blocking baseline (src/net/blocking_server.h),
// both serving the same store over the real wire protocol at 1/8/64/256
// connections and pipeline depths 1 and 16. The event loop must win at 64+
// connections — that is where cross-connection batch formation (gets
// coalesced into Tree::multiget, the PALM observation) and non-blocking
// writes pay for themselves.

#include <algorithm>
#include <filesystem>
#include <memory>
#include <mutex>

#include "bench/common.h"
#include "bench/net_driver.h"
#include "kvstore/store.h"
#include "net/blocking_server.h"
#include "net/server.h"
#include "sysmodels/models.h"
#include "util/busywork.h"
#include "util/rand.h"
#include "workload/keys.h"
#include "workload/ycsb.h"

namespace masstree {
namespace {

using bench::Env;

// Masstree behind the same KVModel interface the §7 models implement.
class MasstreeModel : public KVModel {
 public:
  explicit MasstreeModel(const std::string& log_dir) {
    Store::Options opt;
    opt.log_dir = log_dir;
    opt.log_partitions = 4;
    store_ = std::make_unique<Store>(opt);
  }

  const char* name() const override { return "masstree"; }
  bool batched_get() const override { return true; }
  bool batched_put() const override { return true; }
  bool supports_scan() const override { return true; }
  bool supports_column_put() const override { return true; }

  bool get(std::string_view key, std::string* whole_value) override {
    thread_local std::vector<std::string> cols;
    bool found = store_->get(key, {}, &cols, session());
    if (found) {
      whole_value->clear();
      for (const auto& c : cols) {
        whole_value->append(c);
      }
    }
    return found;
  }

  bool put(std::string_view key, unsigned col, std::string_view data) override {
    return store_->put(key, {{col == ~0u ? 0u : col, data}}, session());
  }

  size_t scan(std::string_view key, size_t n, unsigned col, std::string* sink) override {
    return store_->getrange(
        key, n, col,
        [&](std::string_view, std::string_view v, const Row*) {
          sink->append(v);
          return true;
        },
        session());
  }

 private:
  // Sessions are owned by the model (declared after store_, so destroyed
  // first) and the thread_local holds only a raw cache pointer: an owning
  // thread_local would run its ~Session from glibc's TLS destructors AFTER
  // main returns — a use-after-free on the model's already-destroyed store
  // that kills the process before stdio even flushes.
  Store::Session& session() {
    thread_local MasstreeModel* owner = nullptr;
    thread_local Store::Session* s = nullptr;
    if (s == nullptr || owner != this) {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(
          std::make_unique<Store::Session>(*store_, next_worker_.fetch_add(1)));
      s = sessions_.back().get();
      owner = this;
    }
    return *s;
  }

  std::unique_ptr<Store> store_;
  std::atomic<unsigned> next_worker_{0};
  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Store::Session>> sessions_;
};

struct NetCost {
  uint64_t per_message_ns;
  unsigned batch;

  // Charge the network share for one op.
  void charge(bool batched, uint64_t* op_counter) const {
    if (per_message_ns == 0) {
      return;
    }
    if (!batched || ++*op_counter % batch == 0) {
      busy_ns(per_message_ns);
    }
  }
};

// ---- uniform workloads ----

double run_uniform(KVModel& m, const Env& e, unsigned threads, bool puts, NetCost net) {
  return bench::timed_mops(threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    Rng rng(41 + t);
    uint64_t ops = 0, batch_ctr = 0;
    std::string out;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; ++i) {
        std::string key = decimal_key(rng.next_range(e.keys));
        if (puts) {
          net.charge(m.batched_put(), &batch_ctr);
          m.put(key, ~0u, "8bytes!!");
        } else {
          net.charge(m.batched_get(), &batch_ctr);
          m.get(key, &out);
        }
        ++ops;
      }
    }
    return ops;
  });
}

// ---- MYCSB ----

double run_mycsb(KVModel& m, const Env& e, char workload, NetCost net) {
  MycsbConfig cfg;
  cfg.workload = workload;
  cfg.nkeys = e.keys;
  return bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    MycsbGenerator gen(cfg, 97 + t);
    uint64_t ops = 0, batch_ctr = 0;
    std::string out;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; ++i) {
        MycsbOp op = gen.next();
        std::string key = mycsb_key(op.key_index);
        switch (op.type) {
          case MycsbOpType::kGet:
            net.charge(m.batched_get(), &batch_ctr);
            m.get(key, &out);
            break;
          case MycsbOpType::kPut:
            net.charge(m.batched_put(), &batch_ctr);
            m.put(key, op.col, gen.column_value(op.key_index, op.col, ops));
            break;
          case MycsbOpType::kScan:
            net.charge(m.batched_get(), &batch_ctr);
            out.clear();
            m.scan(key, op.scan_len, op.col, &out);
            break;
        }
        ++ops;
      }
    }
    return ops;
  });
}

void prefill_uniform(KVModel& m, const Env& e) {
  for (uint64_t i = 0; i < e.keys; ++i) {
    m.put(decimal_key(i), ~0u, "8bytes!!");
  }
}

void prefill_mycsb(KVModel& m, const Env& e) {
  MycsbConfig cfg;
  std::string row(cfg.ncols * cfg.colsize, '0');
  for (uint64_t i = 0; i < e.keys; ++i) {
    m.put(mycsb_key(i), ~0u, row);
  }
}

// ---- §6.1 connections vs throughput ----

void run_net_sweep(const Env& e) {
  std::printf("\n-- connections vs throughput (§6.1): epoll event loop vs "
              "blocking baseline --\n");
  uint64_t keyspace = std::min<uint64_t>(e.keys, 100000);
  Store store;
  {
    Store::Session s(store, 0);
    for (uint64_t i = 0; i < keyspace; ++i) {
      store.put(decimal_key(i), {{0, "8bytes!!"}}, s);
    }
  }
  Server loop_server(store, Server::Options{0, e.threads});
  loop_server.start();
  BlockingServer<Store> block_server(store, {0, e.threads});
  block_server.start();

  std::printf("%6s %6s %13s %13s %8s\n", "conns", "depth", "eventloop", "blocking",
              "ratio");
  // Best-of-two per cell, measurements interleaved (as bench_json does for
  // the logging overhead pair): one pass per server is scheduler-noise
  // roulette on small boxes. The 64+ verdict compares each connection
  // count's combined (geometric-mean) throughput across the two depths.
  bool beats_at_scale = true;
  for (unsigned conns : {1u, 8u, 64u, 256u}) {
    double ev_geo = 1.0, bl_geo = 1.0;
    for (unsigned depth : {1u, 16u}) {
      bench::NetDriveConfig cfg;
      cfg.nconns = conns;
      cfg.depth = depth;
      cfg.keyspace = keyspace;
      cfg.threads = std::min(e.threads, conns);
      cfg.secs = e.secs;
      double ev = 0.0, bl = 0.0;
      for (int rep = 0; rep < 2; ++rep) {
        ev = std::max(ev, bench::drive_gets(loop_server.port(), cfg));
        bl = std::max(bl, bench::drive_gets(block_server.port(), cfg));
      }
      std::printf("%6u %6u %11.3f M %11.3f M %7.2fx\n", conns, depth, ev, bl,
                  bl > 0 ? ev / bl : 0.0);
      ev_geo *= ev;
      bl_geo *= bl;
    }
    if (conns >= 64 && ev_geo < bl_geo) {
      beats_at_scale = false;
    }
  }
  std::printf("cross-connection batched gets reaching Tree::multiget "
              "(kNetBatchedGets mirror): %llu in %llu batches\n",
              static_cast<unsigned long long>(loop_server.batched_gets()),
              static_cast<unsigned long long>(loop_server.batches_formed()));
  std::printf("verdict: event loop %s the blocking per-connection baseline at "
              "64+ connections\n",
              beats_at_scale ? "beats" : "DOES NOT beat");
  block_server.stop();
  loop_server.stop();
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(200000);
  NetCost net{env_u64("MT_BENCH_NETNS", 1500), 64};
  print_header("Figure 13: system comparison (Masstree vs architectural models)", e);
  std::printf("per-message network cost %llu ns, batch size %u\n\n",
              static_cast<unsigned long long>(net.per_message_ns), net.batch);

  namespace fs = std::filesystem;
  std::string tmp = fs::temp_directory_path().string();
  fs::remove_all(tmp + "/fig13-mt-logs");
  fs::remove_all(tmp + "/fig13-redis-aof");
  fs::create_directories(tmp + "/fig13-mt-logs");
  fs::create_directories(tmp + "/fig13-redis-aof");

  MasstreeModel masstree_model(tmp + "/fig13-mt-logs");
  MongoDBModel mongo{MongoDBModel::Options{}};
  VoltDBModel volt{VoltDBModel::Options{}};
  RedisModel::Options ro;
  ro.aof_dir = tmp + "/fig13-redis-aof";
  RedisModel redis(ro);
  MemcachedModel memcached{MemcachedModel::Options{}};
  std::vector<KVModel*> systems = {&masstree_model, &mongo, &volt, &redis, &memcached};

  auto report = [&](const char* workload, const std::vector<double>& mops) {
    std::printf("%-24s", workload);
    for (size_t i = 0; i < mops.size(); ++i) {
      if (mops[i] < 0) {
        std::printf("  %10s        ", "N/A");
      } else {
        std::printf("  %8.3f (%5.1f%%)", mops[i], 100.0 * mops[i] / mops[0]);
      }
    }
    std::printf("\n");
  };

  std::printf("%-24s", "workload");
  for (KVModel* s : systems) {
    std::printf("  %-18s", s->name());
  }
  std::printf("\n");

  // ---- uniform workloads ----
  for (KVModel* s : systems) {
    prefill_uniform(*s, e);
  }
  {
    std::vector<double> row;
    for (KVModel* s : systems) {
      row.push_back(run_uniform(*s, e, e.threads, /*puts=*/false, net));
    }
    report("uniform get", row);
  }
  {
    std::vector<double> row;
    for (KVModel* s : systems) {
      row.push_back(run_uniform(*s, e, e.threads, /*puts=*/true, net));
    }
    report("uniform put", row);
  }
  {
    std::vector<double> row;
    for (KVModel* s : systems) {
      row.push_back(run_uniform(*s, e, 1, /*puts=*/false, net));
    }
    report("1-core get", row);
  }
  {
    std::vector<double> row;
    for (KVModel* s : systems) {
      row.push_back(run_uniform(*s, e, 1, /*puts=*/true, net));
    }
    report("1-core put", row);
  }

  // ---- MYCSB ----
  for (KVModel* s : systems) {
    prefill_mycsb(*s, e);
  }
  for (char wl : {'A', 'B', 'C', 'E'}) {
    std::vector<double> row;
    for (KVModel* s : systems) {
      bool needs_scan = wl == 'E';
      bool needs_colput = wl == 'A' || wl == 'B' || wl == 'E';
      if ((needs_scan && !s->supports_scan()) ||
          (needs_colput && !s->supports_column_put())) {
        row.push_back(-1);
        continue;
      }
      row.push_back(run_mycsb(*s, e, wl, net));
    }
    std::string name = std::string("MYCSB-") + wl;
    report(name.c_str(), row);
  }

  std::printf("\npaper (16-core Mops): get 9.10/0.04/0.22/5.97/9.78  put 5.84/0.04/0.22/"
              "2.97/1.21\n  A 6.05/0.05/0.20/2.13/NA  B 8.90/0.04/0.20/2.69/NA  "
              "C 9.86/0.05/0.21/2.70/5.28  E 0.91/~0/~0/NA/NA\n");

  run_net_sweep(e);
  return 0;
}
