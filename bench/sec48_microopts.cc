// §4.8 micro-optimizations:
//
//  (1) "More than 30% of the cost of a Masstree lookup is in computation ...
//      Linear search has higher complexity than binary search, but exhibits
//      better locality. ... On an Intel processor, linear search can be up to
//      5% faster than binary search. On an AMD processor, both perform the
//      same." — linear vs binary in-node search, get workload.
//  (2) PALM-style parallel (batched) lookup: "Our implementation of this
//      technique did not improve performance on our 48-core AMD machine, but
//      on a 24-core Intel machine, throughput rose by up to 34%." — the
//      cursor-pipelined multiget() at a sweep of batch sizes, plus the legacy
//      prefetch_for()+get() scheme for comparison.

#include <span>

#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

struct BinarySearchConfig : DefaultConfig {
  static constexpr bool kLinearSearch = false;
};

template <typename TreeT>
double run_gets(const bench::Env& e, TreeT& tree) {
  return bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    thread_local ThreadContext ti;
    Rng rng(21 + t);
    uint64_t ops = 0, v;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 256; ++i) {
        tree.get(decimal_key(rng.next_range(e.keys)), &v, ti);
        ++ops;
      }
    }
    return ops;
  });
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("Section 4.8: in-node search + batched lookup", e);

  // ---- (1) linear vs binary in-node search ----
  double linear, binary;
  {
    ThreadContext setup;
    Tree tree(setup);
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
    linear = run_gets(e, tree);

    // ---- (2a) software-pipelined multiget, batch-size ablation ----
    // Each worker issues one multiget() per batch; the engine round-robins
    // the in-flight cursors and prefetches every cursor's next node before
    // touching any of them.
    std::printf("multiget batch-size ablation (plain gets: %7.3f Mops):\n", linear);
    constexpr size_t kMaxBatch = 32;
    for (size_t batch : {size_t{2}, size_t{4}, size_t{8}, size_t{16}, size_t{32}}) {
      double mops =
          timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
            thread_local ThreadContext ti;
            Rng rng(22 + t);
            uint64_t ops = 0;
            std::string keys[kMaxBatch];
            Tree::GetRequest reqs[kMaxBatch];
            while (!stop.load(std::memory_order_relaxed)) {
              for (size_t i = 0; i < batch; ++i) {
                keys[i] = decimal_key(rng.next_range(e.keys));
                reqs[i] = Tree::GetRequest{keys[i], 0, false};
              }
              tree.multiget(std::span<Tree::GetRequest>(reqs, batch), ti);
              ops += batch;
            }
            return ops;
          });
      std::printf("  batch %2zu:                %7.3f Mops -> %+.1f%% "
                  "(paper: 0%% AMD, +34%% Intel)\n",
                  batch, mops, 100.0 * (mops - linear) / linear);
    }

    // ---- (2b) software-pipelined multiput, batch-size ablation ----
    // The write column: uniform single-thread overwrites of the loaded key
    // space, sequential tree.insert vs one multiput per batch. The pipelined
    // writer overlaps the descents' DRAM fetches exactly like multiget and
    // applies under at most one border lock at a time.
    {
      double seq_puts =
          timed_mops(1, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
            thread_local ThreadContext ti;
            Rng rng(31 + t);
            uint64_t ops = 0, old;
            while (!stop.load(std::memory_order_relaxed)) {
              for (int i = 0; i < 256; ++i) {
                tree.insert(decimal_key(rng.next_range(e.keys)), rng.next(), &old, ti);
                ++ops;
              }
            }
            return ops;
          });
      std::printf("multiput batch-size ablation (sequential puts: %7.3f Mops, 1 thread):\n",
                  seq_puts);
      for (size_t batch : {size_t{2}, size_t{4}, size_t{8}, size_t{16}, size_t{32}}) {
        double mops =
            timed_mops(1, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
              thread_local ThreadContext ti;
              Rng rng(32 + t);
              uint64_t ops = 0;
              std::string keys[kMaxBatch];
              Tree::PutRequest reqs[kMaxBatch];
              while (!stop.load(std::memory_order_relaxed)) {
                for (size_t i = 0; i < batch; ++i) {
                  keys[i] = decimal_key(rng.next_range(e.keys));
                  reqs[i] = Tree::PutRequest{keys[i], rng.next()};
                }
                tree.multiput(std::span<Tree::PutRequest>(reqs, batch), ti);
                ops += batch;
              }
              return ops;
            });
        std::printf("  put batch %2zu:            %7.3f Mops -> %+.1f%% (target: >=+40%% "
                    "at batch >= 16)\n",
                    batch, mops, 100.0 * (mops - seq_puts) / seq_puts);
      }
    }

    // ---- (2c) legacy scheme: prefetch every path, then get sequentially ----
    double batched =
        timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
          thread_local ThreadContext ti;
          Rng rng(23 + t);
          uint64_t ops = 0, v;
          std::string keys[16];
          while (!stop.load(std::memory_order_relaxed)) {
            for (int i = 0; i < 16; ++i) {
              keys[i] = decimal_key(rng.next_range(e.keys));
            }
            for (int i = 0; i < 16; ++i) {
              tree.prefetch_for(keys[i]);  // overlap the DRAM fetches
            }
            for (int i = 0; i < 16; ++i) {
              tree.get(keys[i], &v, ti);
            }
            ops += 16;
          }
          return ops;
        });
    std::printf("legacy prefetch_for (16):  plain %7.3f Mops, batched %7.3f Mops -> "
                "%+.1f%%\n",
                linear, batched, 100.0 * (batched - linear) / linear);
  }
  {
    ThreadContext setup;
    BasicTree<BinarySearchConfig> tree(setup);
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
    binary = run_gets(e, tree);
  }
  std::printf("in-node search:            linear %7.3f Mops, binary %7.3f Mops -> linear "
              "%+.1f%% (paper: 0..+5%%)\n",
              linear, binary, 100.0 * (linear - binary) / binary);
  return 0;
}
