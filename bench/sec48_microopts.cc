// §4.8 micro-optimizations:
//
//  (1) "More than 30% of the cost of a Masstree lookup is in computation ...
//      Linear search has higher complexity than binary search, but exhibits
//      better locality. ... On an Intel processor, linear search can be up to
//      5% faster than binary search. On an AMD processor, both perform the
//      same." — linear vs binary in-node search, get workload.
//  (2) PALM-style parallel (batched) lookup: "Our implementation of this
//      technique did not improve performance on our 48-core AMD machine, but
//      on a 24-core Intel machine, throughput rose by up to 34%." — batches
//      of 16 gets whose root-to-border paths are prefetched before any get
//      executes.

#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

struct BinarySearchConfig : DefaultConfig {
  static constexpr bool kLinearSearch = false;
};

template <typename TreeT>
double run_gets(const bench::Env& e, TreeT& tree) {
  return bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    thread_local ThreadContext ti;
    Rng rng(21 + t);
    uint64_t ops = 0, v;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 256; ++i) {
        tree.get(decimal_key(rng.next_range(e.keys)), &v, ti);
        ++ops;
      }
    }
    return ops;
  });
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("Section 4.8: in-node search + batched lookup", e);

  // ---- (1) linear vs binary in-node search ----
  double linear, binary;
  {
    ThreadContext setup;
    Tree tree(setup);
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
    linear = run_gets(e, tree);

    // ---- (2) batched lookup on the same loaded tree ----
    double batched =
        timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
          thread_local ThreadContext ti;
          Rng rng(22 + t);
          uint64_t ops = 0, v;
          std::string keys[16];
          while (!stop.load(std::memory_order_relaxed)) {
            for (int i = 0; i < 16; ++i) {
              keys[i] = decimal_key(rng.next_range(e.keys));
            }
            for (int i = 0; i < 16; ++i) {
              tree.prefetch_for(keys[i]);  // overlap the DRAM fetches
            }
            for (int i = 0; i < 16; ++i) {
              tree.get(keys[i], &v, ti);
            }
            ops += 16;
          }
          return ops;
        });
    std::printf("batched lookup (16-deep):  plain %7.3f Mops, batched %7.3f Mops -> "
                "%+.1f%% (paper: 0%% AMD, +34%% Intel)\n",
                linear, batched, 100.0 * (batched - linear) / linear);
  }
  {
    ThreadContext setup;
    BasicTree<BinarySearchConfig> tree(setup);
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
    binary = run_gets(e, tree);
  }
  std::printf("in-node search:            linear %7.3f Mops, binary %7.3f Mops -> linear "
              "%+.1f%% (paper: 0..+5%%)\n",
              linear, binary, 100.0 * (linear - binary) / binary);
  return 0;
}
