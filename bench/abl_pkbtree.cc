// Ablation A3 — Masstree vs a partial-key B-tree (§4.1): "Masstree bounds
// the number of non-node memory references required to find a key to at most
// one per lookup ... it outperformed our pkB-tree implementation on several
// benchmarks by 20% or more."
//
// The pkB-tree (Bohannon et al. [8]) stores 2-byte partial keys plus a
// pointer to the full key; ties on the partial key chase the pointer — a
// dependent cache miss per comparison, repeated O(log n) times per lookup.

#include "baselines/fast_btree.h"
#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("Ablation: Masstree vs pkB-tree", e);

  auto measure_gets = [&](auto get_fn) {
    return timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
      Rng rng(81 + t);
      uint64_t ops = 0, v;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 256; ++i) {
          get_fn(decimal_key(rng.next_range(e.keys)), &v);
          ++ops;
        }
      }
      return ops;
    });
  };

  // Decimal keys share the first 1-2 digits heavily, so pk comparisons tie
  // often — the workload the pkB-tree dislikes and the paper measured.
  double mt, pkb;
  {
    ThreadContext setup;
    Tree tree(setup);
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
    mt = measure_gets([&](const std::string& k, uint64_t* v) {
      thread_local ThreadContext ti;
      return tree.get(k, v, ti);
    });
  }
  {
    ThreadContext setup;
    PkBtree tree(setup);
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, setup);
    }
    pkb = measure_gets([&](const std::string& k, uint64_t* v) {
      thread_local ThreadContext ti;
      return tree.get(k, v, ti);
    });
  }
  std::printf("get: Masstree %7.3f Mops, pkB-tree %7.3f Mops -> Masstree +%.0f%% "
              "(paper: >= 20%%)\n",
              mt, pkb, 100.0 * (mt - pkb) / pkb);
  return 0;
}
