// Shared benchmark harness for the paper-reproduction binaries.
//
// Scaling: the paper's runs use 80-140M keys on 16 of 48 cores; the defaults
// here are laptop/container-scale and every bench accepts environment
// overrides:
//   MT_BENCH_KEYS     number of keys to load (default 1000000)
//   MT_BENCH_THREADS  worker threads (default: hardware concurrency)
//   MT_BENCH_SECS     seconds per timed phase (default 2)
// Relative shape (who wins, by what factor) is the reproduction target, not
// the absolute 2012-hardware numbers; see EXPERIMENTS.md.

#ifndef MASSTREE_BENCH_COMMON_H_
#define MASSTREE_BENCH_COMMON_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/compiler.h"
#include "util/thread.h"
#include "util/timing.h"

namespace masstree {
namespace bench {

struct Env {
  uint64_t keys;
  unsigned threads;
  double secs;
};

inline uint64_t env_u64(const char* name, uint64_t def) {
  const char* v = ::getenv(name);
  return v != nullptr ? ::strtoull(v, nullptr, 10) : def;
}
inline double env_f64(const char* name, double def) {
  const char* v = ::getenv(name);
  return v != nullptr ? ::strtod(v, nullptr) : def;
}

inline Env env(uint64_t default_keys = 1000000) {
  Env e;
  e.keys = env_u64("MT_BENCH_KEYS", default_keys);
  e.threads = static_cast<unsigned>(env_u64("MT_BENCH_THREADS", hardware_threads()));
  e.secs = env_f64("MT_BENCH_SECS", 2.0);
  return e;
}

// Runs `body(tid, stop_flag)` on `threads` threads; each returns its op
// count. A timer thread sets the stop flag after `secs`. Returns total
// Mops/sec.
inline double timed_mops(unsigned threads, double secs,
                         const std::function<uint64_t(unsigned, const std::atomic<bool>&)>& body) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      pin_to_cpu(t);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        spin_pause();
      }
      total_ops.fetch_add(body(t, stop), std::memory_order_relaxed);
    });
  }
  while (ready.load() != threads) {
    spin_pause();
  }
  Stopwatch sw;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true, std::memory_order_release);
  for (auto& t : ts) {
    t.join();
  }
  double elapsed = sw.elapsed_seconds();
  return static_cast<double>(total_ops.load()) / elapsed / 1e6;
}

// Runs a fixed amount of work per thread (no timer); returns wall seconds
// until the LAST thread finishes — the hard-partitioned semantics of §6.6.
inline double run_until_all_done(unsigned threads,
                                 const std::function<void(unsigned)>& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      pin_to_cpu(t);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        spin_pause();
      }
      body(t);
    });
  }
  while (ready.load() != threads) {
    spin_pause();
  }
  Stopwatch sw;
  go.store(true, std::memory_order_release);
  for (auto& t : ts) {
    t.join();
  }
  return sw.elapsed_seconds();
}

inline void print_header(const char* title, const Env& e) {
  std::printf("==== %s ====\n", title);
  std::printf("keys=%llu threads=%u secs=%.1f (hardware threads: %u)\n",
              static_cast<unsigned long long>(e.keys), e.threads, e.secs, hardware_threads());
}

inline void print_row(const char* name, double get_mops, double put_mops, double rel_get,
                      double rel_put) {
  std::printf("%-14s get %7.3f Mops (%.2fx)   put %7.3f Mops (%.2fx)\n", name, get_mops,
              rel_get, put_mops, rel_put);
}

}  // namespace bench
}  // namespace masstree

#endif  // MASSTREE_BENCH_COMMON_H_
