// Google-benchmark micro-benchmarks for the primitive operations whose
// costs the paper's design arguments rest on: slice encoding (§4.2),
// permutation updates (§4.6.2), in-node search (§4.8), version protocol
// (§4.5), row copy-on-write (§4.7), epoch entry (§4.6.1), and the Zipfian
// generator (§7).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/permuter.h"
#include "core/tree.h"
#include "core/version.h"
#include "key/keyslice.h"
#include "util/crc32.h"
#include "util/rand.h"
#include "value/row.h"
#include "workload/keys.h"

namespace masstree {
namespace {

void BM_MakeSlice(benchmark::State& state) {
  std::string key = "0123456789";
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_slice(key));
  }
}
BENCHMARK(BM_MakeSlice);

void BM_SliceCompareVsMemcmp(benchmark::State& state) {
  // The "+IntCmp" trick: one integer compare replaces memcmp.
  std::string a = "012345678", b = "012345679";
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(make_slice(a) < make_slice(b));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(std::memcmp(a.data(), b.data(), 9) < 0);
    }
  }
}
BENCHMARK(BM_SliceCompareVsMemcmp)->Arg(0)->Arg(1);

void BM_PermuterInsertRemove(benchmark::State& state) {
  for (auto _ : state) {
    Permuter p = Permuter::make_empty();
    for (int i = 0; i < 15; ++i) {
      p.insert_from_back(i / 2);
    }
    for (int i = 14; i >= 0; --i) {
      p.remove(i / 2);
    }
    benchmark::DoNotOptimize(p.value());
  }
}
BENCHMARK(BM_PermuterInsertRemove);

void BM_VersionLockUnlock(benchmark::State& state) {
  NodeVersion<ConcurrentPolicy> v(VersionValue::kBorder);
  for (auto _ : state) {
    v.lock();
    v.unlock();
  }
}
BENCHMARK(BM_VersionLockUnlock);

void BM_VersionStableRead(benchmark::State& state) {
  NodeVersion<ConcurrentPolicy> v(VersionValue::kBorder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.stable().raw());
  }
}
BENCHMARK(BM_VersionStableRead);

void BM_BorderFind(benchmark::State& state) {
  // In-node search over a full border node; Arg 0 = linear, 1 = binary.
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;
  for (int i = 0; i < 15; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%02d", i);
    tree.insert(buf, i, &old, ti);
  }
  uint64_t v;
  int i = 0;
  for (auto _ : state) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%02d", i++ % 15);
    benchmark::DoNotOptimize(tree.get(buf, &v, ti));
  }
}
BENCHMARK(BM_BorderFind);

void BM_TreeGetLoaded(benchmark::State& state) {
  static ThreadContext ti;
  static Tree* tree = [] {
    auto* t = new Tree(ti);
    uint64_t old;
    for (uint64_t i = 0; i < 100000; ++i) {
      t->insert(decimal_key(i), i, &old, ti);
    }
    return t;
  }();
  Rng rng(1);
  uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->get(decimal_key(rng.next_range(100000)), &v, ti));
  }
}
BENCHMARK(BM_TreeGetLoaded);

void BM_RowUpdateCow(benchmark::State& state) {
  ThreadContext ti;
  std::vector<ColumnUpdate> init;
  std::string cols[10];
  for (unsigned c = 0; c < 10; ++c) {
    cols[c] = "abcd";
    init.push_back({c, cols[c]});
  }
  Row* row = Row::make(ti, init, 1);
  uint64_t ver = 2;
  const ColumnUpdate upd[] = {{3, "WXYZ"}};
  for (auto _ : state) {
    Row* next = Row::update(ti, row, upd, ver++);
    Row::deallocate(row);
    row = next;
  }
  Row::deallocate(row);
}
BENCHMARK(BM_RowUpdateCow);

void BM_EpochGuard(benchmark::State& state) {
  EpochManager mgr;
  EpochSlot* slot = mgr.register_thread();
  for (auto _ : state) {
    EpochGuard g(*slot);
    benchmark::DoNotOptimize(slot);
  }
  mgr.unregister_thread(slot);
}
BENCHMARK(BM_EpochGuard);

void BM_Crc32(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096);

void BM_ZipfianNext(benchmark::State& state) {
  Zipfian z(1000000, 0.99, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.next_scrambled());
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_DecimalKeyGen(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decimal_key(i++));
  }
}
BENCHMARK(BM_DecimalKeyGen);

}  // namespace
}  // namespace masstree

BENCHMARK_MAIN();
