// Figure 11 — skew vs hard partitioning (§6.6): "Throughput of Masstree and
// hard-partitioned Masstree with various skewness (16-core get workload)."
//
// Skew model (Hua et al.): with P partitions and skew delta, one partition
// receives (delta+1)x the request share of each other partition; at delta=9
// with 16 partitions the hot one serves 40% of requests.
//
// Paper shape: hard-partitioned wins at delta=0 (~1.5x: all-local DRAM, no
// interlocked instructions) but collapses as delta grows (the hot core
// saturates; other cores idle to preserve the arrival mix); the shared
// Masstree line is flat, 3.5x better at delta=9.
//
// Partition count here equals the worker thread count (the paper's 16
// partitions assume 16 cores).

#include <memory>

#include "baselines/partitioned.h"
#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  unsigned P = e.threads < 2 ? 2 : e.threads;
  uint64_t requests_total = env_u64("MT_BENCH_REQS", 4000000);
  print_header("Figure 11: skew vs hard-partitioned (get workload)", e);
  std::printf("partitions=%u requests=%llu\n", P,
              static_cast<unsigned long long>(requests_total));
  std::printf("%-8s %-22s %-26s %s\n", "delta", "Masstree Mops", "hard-partitioned Mops",
              "shared/partitioned");

  // Shared Masstree, loaded once.
  ThreadContext setup;
  Tree shared(setup);
  {
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      shared.insert(decimal_key(i), i, &old, setup);
    }
  }
  // Hard-partitioned store, loaded once (router hashes keys to partitions).
  PartitionedMasstree parts(P, setup);
  std::vector<std::vector<std::string>> part_keys(P);
  for (uint64_t i = 0; i < e.keys; ++i) {
    std::string k = decimal_key(i);
    unsigned p = parts.partition_of(k);
    parts.partition(p).insert(k, i, nullptr, setup);
    part_keys[p].push_back(std::move(k));
  }

  for (double delta : {0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 9.0}) {
    double hot_share = (delta + 1.0) / (delta + P);
    // ---- shared Masstree: every worker serves the same skewed stream ----
    // (partition popularity doesn't matter: any worker can serve any key).
    double shared_secs = run_until_all_done(e.threads, [&](unsigned t) {
      thread_local ThreadContext ti;
      Rng rng(7 + t);
      PartitionSkew skew(P, delta, 13 + t);
      uint64_t quota = requests_total / e.threads, v;
      for (uint64_t i = 0; i < quota; ++i) {
        unsigned p = skew.next_partition();
        const auto& keys = part_keys[p];
        shared.get(keys[rng.next_range(keys.size())], &v, ti);
      }
    });
    double shared_mops = static_cast<double>(requests_total) / shared_secs / 1e6;

    // ---- hard-partitioned: worker t owns partition t and must serve its
    // whole share; the run ends when the slowest (hottest) finishes (§6.6:
    // "other partitions' clients must wait for the slow partition"). ----
    double part_secs = run_until_all_done(P, [&](unsigned t) {
      thread_local ThreadContext ti;
      Rng rng(31 + t);
      double share = t == 0 ? hot_share : (1.0 - hot_share) / (P - 1);
      uint64_t quota = static_cast<uint64_t>(share * static_cast<double>(requests_total));
      const auto& keys = part_keys[t];
      uint64_t v;
      for (uint64_t i = 0; i < quota; ++i) {
        parts.partition(t).get(keys[rng.next_range(keys.size())], &v, ti);
      }
    });
    double part_mops = static_cast<double>(requests_total) / part_secs / 1e6;

    std::printf("%-8.0f %-22.3f %-26.3f %.2fx\n", delta, shared_mops, part_mops,
                shared_mops / part_mops);
  }
  std::printf("\npaper: partitioned ~1.5x better at delta=0; Masstree flat and 3.5x better "
              "at delta=9\n");
  return 0;
}
