// Figure 11 — skew vs hard partitioning (§6.6): "Throughput of Masstree and
// hard-partitioned Masstree with various skewness (16-core get workload)."
//
// Skew model (Hua et al.): with P partitions and skew delta, one partition
// receives (delta+1)x the request share of each other partition; at delta=9
// with 16 partitions the hot one serves 40% of requests.
//
// Paper shape: hard-partitioned wins at delta=0 (~1.5x: all-local DRAM, no
// interlocked instructions) but collapses as delta grows (the hot core
// saturates; other cores idle to preserve the arrival mix); the shared
// Masstree line is flat, 3.5x better at delta=9.
//
// Partition count here equals the worker thread count (the paper's 16
// partitions assume 16 cores).

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "baselines/partitioned.h"
#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  unsigned P = e.threads < 2 ? 2 : e.threads;
  uint64_t requests_total = env_u64("MT_BENCH_REQS", 4000000);
  print_header("Figure 11: skew vs hard-partitioned (get workload)", e);
  std::printf("partitions=%u requests=%llu\n", P,
              static_cast<unsigned long long>(requests_total));
  std::printf("%-8s %-22s %-26s %s\n", "delta", "Masstree Mops", "hard-partitioned Mops",
              "shared/partitioned");

  // Shared Masstree, loaded once.
  ThreadContext setup;
  Tree shared(setup);
  {
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      shared.insert(decimal_key(i), i, &old, setup);
    }
  }
  // Hard-partitioned store, loaded once (router hashes keys to partitions).
  PartitionedMasstree parts(P, setup);
  std::vector<std::vector<std::string>> part_keys(P);
  for (uint64_t i = 0; i < e.keys; ++i) {
    std::string k = decimal_key(i);
    unsigned p = parts.partition_of(k);
    parts.partition(p).insert(k, i, nullptr, setup);
    part_keys[p].push_back(std::move(k));
  }

  for (double delta : {0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 9.0}) {
    double hot_share = (delta + 1.0) / (delta + P);
    // ---- shared Masstree: every worker serves the same skewed stream ----
    // (partition popularity doesn't matter: any worker can serve any key).
    double shared_secs = run_until_all_done(e.threads, [&](unsigned t) {
      thread_local ThreadContext ti;
      Rng rng(7 + t);
      SkewGen skew = SkewGen::hua(P, delta, 13 + t);
      uint64_t quota = requests_total / e.threads, v;
      for (uint64_t i = 0; i < quota; ++i) {
        unsigned p = skew.next_partition();
        const auto& keys = part_keys[p];
        shared.get(keys[rng.next_range(keys.size())], &v, ti);
      }
    });
    double shared_mops = static_cast<double>(requests_total) / shared_secs / 1e6;

    // ---- hard-partitioned: worker t owns partition t and must serve its
    // whole share; the run ends when the slowest (hottest) finishes (§6.6:
    // "other partitions' clients must wait for the slow partition"). ----
    double part_secs = run_until_all_done(P, [&](unsigned t) {
      thread_local ThreadContext ti;
      Rng rng(31 + t);
      double share = t == 0 ? hot_share : (1.0 - hot_share) / (P - 1);
      uint64_t quota = static_cast<uint64_t>(share * static_cast<double>(requests_total));
      const auto& keys = part_keys[t];
      uint64_t v;
      for (uint64_t i = 0; i < quota; ++i) {
        parts.partition(t).get(keys[rng.next_range(keys.size())], &v, ti);
      }
    });
    double part_mops = static_cast<double>(requests_total) / part_secs / 1e6;

    std::printf("%-8.0f %-22.3f %-26.3f %.2fx\n", delta, shared_mops, part_mops,
                shared_mops / part_mops);
  }
  std::printf("\npaper: partitioned ~1.5x better at delta=0; Masstree flat and 3.5x better "
              "at delta=9\n");

  // ---- Zipf θ sweep: the record-cache scoreboard ---------------------
  // Three lines over YCSB-style per-key Zipfian skew (θ=0 is the uniform
  // baseline): the plain shared tree, the shared tree fronted by the record
  // cache, and the cache with partition-affinity routing modeled in-process —
  // worker t serves only the keys hashing to it (the epoll server's
  // route_worker function), so a hot key's cache entry stays on one core.
  std::vector<std::string> all_keys(e.keys);
  std::vector<uint8_t> owner(e.keys);
  for (uint64_t i = 0; i < e.keys; ++i) {
    all_keys[i] = decimal_key(i);
    owner[i] = static_cast<uint8_t>(key_hash64(all_keys[i]) % e.threads);
  }
  // Capacity default: large enough for the hot set at θ≈1, small enough that
  // the probe table stays cache-resident — a table bigger than LLC makes
  // every probe a DRAM miss and the cache loses to the (cache-friendly)
  // descent it is trying to short-circuit.
  size_t cache_cap = env_u64("MT_BENCH_CACHE_CAP", 1 << 13);
  uint32_t cache_admit = static_cast<uint32_t>(env_u64("MT_BENCH_CACHE_ADMIT", 4));
  RecordCache<Tree::Config> cache(
      RecordCache<Tree::Config>::Config{cache_cap, cache_admit});
  std::printf("\nZipf sweep (record cache, capacity=%zu, %llu reqs/line)\n",
              cache.capacity(), static_cast<unsigned long long>(requests_total));
  std::printf("%-8s %-14s %-26s %s\n", "theta", "shared Mops", "shared+cache Mops (hit%)",
              "routed+cache Mops (hit%)");

  // Request streams are pregenerated OUTSIDE the timed region: a Zipfian draw
  // costs two pow() calls, which would otherwise dominate the loop and dilute
  // the tree-side difference the figure is about. All three lines of a theta
  // share one stream; the routed line partitions it by owning worker up front
  // (the epoll server's steering, minus the wire), so every line executes
  // exactly `requests_total` gets.
  std::vector<uint32_t> stream(requests_total);
  std::vector<std::vector<uint32_t>> owned(e.threads);

  // MT_BENCH_REPS rounds per theta, each round = one plain pass immediately
  // followed by one cached (and one routed) pass over the same stream. The
  // verdicts below compare a 2% budget against scheduler noise that on small
  // machines drifts far more than that between distant runs — so each round's
  // cached/plain ratio is taken between adjacent passes and the verdict uses
  // the MEDIAN ratio across rounds, which cancels slow drift and shrugs off
  // one freak round. The table still reports each line's best pass; the cache
  // stays warm across rounds (round 0 doubles as warmup) and hit% comes from
  // the last round.
  uint64_t bench_reps = env_u64("MT_BENCH_REPS", 3);
  auto one_pass = [&](bool use_cache, bool routed, double* hit_pct,
                      uint64_t nreq) {
    shared.set_record_cache(use_cache ? &cache : nullptr);
    uint64_t quota = nreq / e.threads;
    std::atomic<uint64_t> hits{0}, misses{0};
    double secs = run_until_all_done(e.threads, [&](unsigned t) {
      thread_local ThreadContext ti;
      uint64_t h0 = ti.counters().get(Counter::kCacheHits);
      uint64_t m0 = ti.counters().get(Counter::kCacheMisses);
      const uint32_t* ix = routed ? owned[t].data() : stream.data() + t * quota;
      size_t n = routed ? owned[t].size() : quota;
      uint64_t v;
      for (size_t i = 0; i < n; ++i) {
        shared.get(all_keys[ix[i]], &v, ti);
      }
      hits.fetch_add(ti.counters().get(Counter::kCacheHits) - h0,
                     std::memory_order_relaxed);
      misses.fetch_add(ti.counters().get(Counter::kCacheMisses) - m0,
                       std::memory_order_relaxed);
    });
    shared.set_record_cache(nullptr);
    if (hit_pct != nullptr) {
      uint64_t total = hits.load() + misses.load();
      *hit_pct = total == 0 ? 0.0
                            : 100.0 * static_cast<double>(hits.load()) /
                                  static_cast<double>(total);
    }
    return static_cast<double>(nreq) / secs / 1e6;
  };
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };

  auto gen_stream = [&](double theta) {
    if (theta == 0.0) {
      Rng rng(77);
      for (auto& x : stream) {
        x = static_cast<uint32_t>(rng.next_range(e.keys));
      }
    } else {
      Zipfian zipf(e.keys, theta, 77);
      for (auto& x : stream) {
        x = static_cast<uint32_t>(zipf.next_scrambled());
      }
    }
  };

  const double thetas[] = {0.0, 0.5, 0.9, 0.99, 1.2};
  for (double theta : thetas) {
    gen_stream(theta);
    for (auto& o : owned) {
      o.clear();
    }
    for (uint32_t x : stream) {
      owned[owner[x]].push_back(x);
    }
    cache.clear();
    double plain = 0, cached = 0, routed = 0, shit = 0, rhit = 0;
    for (uint64_t round = 0; round < bench_reps; ++round) {
      plain = std::max(plain, one_pass(false, false, nullptr, requests_total));
      cached = std::max(cached, one_pass(true, false, &shit, requests_total));
      routed = std::max(routed, one_pass(true, true, &rhit, requests_total));
    }
    std::printf("%-8.2f %-14.3f %-8.3f (%5.1f%%)%*s %.3f (%5.1f%%)\n", theta, plain,
                cached, shit, 9, "", routed, rhit);
  }

  // ---- verdicts: chunk-interleaved duels ------------------------------
  // On small virtualized hosts, scheduler-steal bursts last from tens of
  // milliseconds to whole seconds — measured here, even two back-to-back
  // identical passes disagree by ±10%, which no pass-level pairing can
  // reconcile with a 2% overhead budget. The verdicts therefore alternate
  // plain and cached execution every kDuelChunk ops on ONE thread, so each
  // chunk pair runs milliseconds apart and a burst lands on both sides of
  // the ratio; the median across pairs then discards the pairs a short
  // burst still managed to split. Per-op overhead is a single-thread
  // property, so one thread is the right measurement frame.
  uint64_t duel_req =
      std::min<uint64_t>(requests_total, env_u64("MT_BENCH_DUEL_REQS", 500000));
  constexpr uint64_t kDuelChunk = 16384;
  auto duel = [&]() {
    uint64_t pairs = std::max<uint64_t>(duel_req / kDuelChunk, 2);
    std::vector<double> rs;
    uint64_t v;
    for (uint64_t i = 0; i < pairs; ++i) {
      // All timed legs walk the SAME chunk indices: an untimed warmup leg
      // faults in the stream slice, key strings, and tree path, and the
      // timed legs run plain-cached-cached-plain so neither mode gets the
      // systematically fresher data — recency bias between adjacent legs
      // is as large as the effect being measured.
      static constexpr int kLegMode[] = {1, 0, 1, 1, 0};
      double secs[2] = {0, 0};
      for (int leg = 0; leg < 5; ++leg) {
        int mode = kLegMode[leg];
        shared.set_record_cache(mode == 1 ? &cache : nullptr);
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t k = i * kDuelChunk; k < (i + 1) * kDuelChunk; ++k) {
          shared.get(all_keys[stream[k]], &v, setup);
        }
        if (leg > 0) {
          secs[mode] += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        }
      }
      if (i > 0) {  // pair 0 additionally warms the bypass window
        rs.push_back(secs[0] / secs[1]);  // >1: cached side faster
      }
    }
    shared.set_record_cache(nullptr);
    return median(rs);
  };
  // The sweep left the theta=1.2 stream (and a cache warmed on it) in place.
  double hot_ratio = duel();
  gen_stream(0.0);
  double uniform_ratio = duel();
  double speedup = hot_ratio;
  double overhead_pct = (1.0 / uniform_ratio - 1.0) * 100.0;
  std::printf("\nverdict: shared+cache = %.2fx plain shared at theta=%.2f (target >= 1.3x): %s\n",
              speedup, thetas[sizeof(thetas) / sizeof(thetas[0]) - 1],
              speedup >= 1.3 ? "PASS" : "FAIL");
  std::printf("verdict: uniform-get cache overhead = %.1f%% (target <= 2%%): %s\n",
              overhead_pct, overhead_pct <= 2.0 ? "PASS" : "FAIL");
  return 0;
}
