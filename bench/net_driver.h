// Shared client-side load driver for the §6.1 network benchmarks.
//
// drive_gets() aims `nconns` pipelined connections at a running server and
// returns get throughput in Mops. Each connection keeps `depth` request
// frames (of `gets_per_frame` uniform point gets each) in flight; driver
// threads round-robin their connection slice, receiving the oldest frame and
// immediately sending a replacement, so the offered load stays constant for
// the whole timed window. Frames are small enough (a few hundred bytes each
// way) that neither side can fill a kernel socket buffer and deadlock the
// blocking baseline.
//
// Used by fig13_system_comparison's connections-vs-throughput sweep and by
// bench_json's net_get_mops metric, against both the event-loop Server and
// the BlockingServer baseline — the driver only sees a port, so both servers
// get identical offered load.

#ifndef MASSTREE_BENCH_NET_DRIVER_H_
#define MASSTREE_BENCH_NET_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "net/client.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace bench {

struct NetDriveConfig {
  unsigned nconns = 64;        // concurrent connections
  unsigned depth = 16;         // request frames in flight per connection
  unsigned gets_per_frame = 32;
  uint64_t keyspace = 100000;  // keys are decimal_key(0 .. keyspace-1)
  unsigned threads = 4;        // driver threads (capped at nconns)
  double secs = 2.0;
};

inline double drive_gets(uint16_t port, const NetDriveConfig& cfg) {
  unsigned threads = std::max(1u, std::min(cfg.threads, cfg.nconns));
  // Connect everything up front so the timed window measures serving, not
  // connection setup.
  std::vector<std::unique_ptr<Client>> conns;
  conns.reserve(cfg.nconns);
  for (unsigned i = 0; i < cfg.nconns; ++i) {
    conns.push_back(std::make_unique<Client>(port));
  }
  return timed_mops(threads, cfg.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    unsigned lo = cfg.nconns * t / threads;
    unsigned hi = cfg.nconns * (t + 1) / threads;
    Rng rng(7100 + t);
    auto send_frame = [&](Client& c) {
      for (unsigned g = 0; g < cfg.gets_per_frame; ++g) {
        c.get(decimal_key(rng.next_range(cfg.keyspace)));
      }
      c.send();
    };
    for (unsigned i = lo; i < hi; ++i) {
      for (unsigned d = 0; d < cfg.depth; ++d) {
        send_frame(*conns[i]);
      }
    }
    uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (unsigned i = lo; i < hi; ++i) {
        conns[i]->receive();
        ops += cfg.gets_per_frame;
        send_frame(*conns[i]);
      }
    }
    // Leftover in-flight frames die with the connections; the servers treat
    // the teardown as an ordinary client disconnect.
    return ops;
  });
}

// Write-side twin of drive_gets: frames of single-key uniform puts (8-byte
// values), so every server-side write batch that forms is CROSS-connection
// coalescing into Store::multiput — the kNetBatchedPuts trajectory metric.
inline double drive_puts(uint16_t port, const NetDriveConfig& cfg) {
  unsigned threads = std::max(1u, std::min(cfg.threads, cfg.nconns));
  std::vector<std::unique_ptr<Client>> conns;
  conns.reserve(cfg.nconns);
  for (unsigned i = 0; i < cfg.nconns; ++i) {
    conns.push_back(std::make_unique<Client>(port));
  }
  return timed_mops(threads, cfg.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    unsigned lo = cfg.nconns * t / threads;
    unsigned hi = cfg.nconns * (t + 1) / threads;
    Rng rng(7300 + t);
    auto send_frame = [&](Client& c) {
      for (unsigned g = 0; g < cfg.gets_per_frame; ++g) {
        c.put(decimal_key(rng.next_range(cfg.keyspace)), {{0, "87654321"}});
      }
      c.send();
    };
    for (unsigned i = lo; i < hi; ++i) {
      for (unsigned d = 0; d < cfg.depth; ++d) {
        send_frame(*conns[i]);
      }
    }
    uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (unsigned i = lo; i < hi; ++i) {
        conns[i]->receive();
        ops += cfg.gets_per_frame;
        send_frame(*conns[i]);
      }
    }
    return ops;
  });
}

}  // namespace bench
}  // namespace masstree

#endif  // MASSTREE_BENCH_NET_DRIVER_H_
