// Ablation A2 — adaptive suffix storage (§4.2): "Masstree adaptively decides
// how much per-node memory to allocate for suffixes ... Compared to a
// simpler technique (namely, allocating fixed space for up to 15 suffixes
// per node), this approach reduces memory usage by up to 16% for workloads
// with short keys and improves performance by 3%."
//
// We compare adaptive bags against fixed 15 x 16-byte reservations on the
// decimal workload (short 1-2 byte suffixes), reporting suffix memory and
// get throughput.

#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

struct FixedSuffixConfig : DefaultConfig {
  static constexpr size_t kFixedSuffixBytes = 15 * 16;  // worst case for short keys
};

template <typename Config>
void run(const bench::Env& e, const char* name) {
  ThreadContext setup;
  BasicTree<Config> tree(setup);
  {
    uint64_t old;
    for (uint64_t i = 0; i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
  }
  double mops =
      bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(71 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            tree.get(decimal_key(rng.next_range(e.keys)), &v, ti);
            ++ops;
          }
        }
        return ops;
      });
  TreeStats st = tree.collect_stats();
  std::printf("%-10s get %7.3f Mops | node bytes %8.2f MB | suffix bytes %7.2f MB "
              "(used %5.2f MB) | total %8.2f MB\n",
              name, mops, st.node_bytes / 1e6, st.suffix_bytes / 1e6,
              st.suffix_used_bytes / 1e6, (st.node_bytes + st.suffix_bytes) / 1e6);
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("Ablation: adaptive vs fixed suffix storage", e);
  run<DefaultConfig>(e, "adaptive");
  run<FixedSuffixConfig>(e, "fixed");
  std::printf("\npaper: adaptive saves up to 16%% memory and gains ~3%% performance on "
              "short-key workloads\n");
  return 0;
}
