#!/bin/sh
# Benchmark runner: produces the repo's perf-trajectory artifacts.
#
#   bench/run_bench.sh [BENCH_BIN_DIR] [JSON_OUT]
#
#   BENCH_BIN_DIR  directory with the built bench binaries
#                  (default: build/bench)
#   JSON_OUT       where to write the throughput metrics JSON
#                  (default: BENCH_micro.json in the repo root)
#
# Runs, in order:
#   1. bench_json         -> JSON_OUT (uniform get / insert / update / YCSB-A)
#   2. micro_gbench       -> BENCH_gbench.json next to JSON_OUT (if built)
#   3. fig10_scalability  -> BENCH_fig10.txt next to JSON_OUT
#
# Scale knobs (see bench/common.h): MT_BENCH_KEYS, MT_BENCH_THREADS,
# MT_BENCH_SECS. CI/container defaults keep the run under a few minutes.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
bin_dir=${1:-"$repo_root/build/bench"}
json_out=${2:-"$repo_root/BENCH_micro.json"}
out_dir=$(cd "$(dirname "$json_out")" && pwd)

if [ ! -x "$bin_dir/bench_json" ]; then
    echo "run_bench.sh: $bin_dir/bench_json not built (cmake --build build)" >&2
    exit 1
fi

echo "== bench_json -> $json_out"
"$bin_dir/bench_json" "$json_out"

# The batched-read path must be measured on every run: assert the
# multiget_mops column is present and non-zero (CI's bench smoke relies on
# this check).
mg=$(sed -n 's/.*"multiget_mops": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$mg" ]; then
    echo "run_bench.sh: multiget_mops missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$mg" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: multiget_mops is zero in $json_out" >&2
    exit 1
fi
echo "== multiget_mops = $mg (present and non-zero)"

# The batched-WRITE path (PR 9): multiput_mops and multiput_batch must be
# present and non-zero, and net_batched_puts must be present and non-zero —
# the server must actually coalesce write runs across connections into
# Store::multiput, not just serve them one by one.
mp=$(sed -n 's/.*"multiput_mops": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$mp" ]; then
    echo "run_bench.sh: multiput_mops missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$mp" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: multiput_mops is zero in $json_out" >&2
    exit 1
fi
mpb=$(sed -n 's/.*"multiput_batch": \([0-9]*\).*/\1/p' "$json_out")
if [ -z "$mpb" ]; then
    echo "run_bench.sh: multiput_batch missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$mpb" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: multiput_batch is zero in $json_out" >&2
    exit 1
fi
nbp=$(sed -n 's/.*"net_batched_puts": \([0-9]*\).*/\1/p' "$json_out")
if [ -z "$nbp" ]; then
    echo "run_bench.sh: net_batched_puts missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$nbp" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: net_batched_puts is zero in $json_out" >&2
    exit 1
fi
echo "== multiput_mops = $mp at batch $mpb, net_batched_puts = $nbp"

# Same for the range-scan path: scan_mops must be present and non-zero so the
# snapshot-batched getrange fast path stays measured on every run.
sc=$(sed -n 's/.*"scan_mops": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$sc" ]; then
    echo "run_bench.sh: scan_mops missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$sc" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: scan_mops is zero in $json_out" >&2
    exit 1
fi
echo "== scan_mops = $sc (present and non-zero)"

# The §5 write-side persistence path: put_logged_mops must be present and
# non-zero, and log_overhead_pct must be present and finite — which requires
# a non-zero unlogged denominator (the bench emits 0.0 only when the
# denominator degenerates, and a dead logged path would read as ~100).
pl=$(sed -n 's/.*"put_logged_mops": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$pl" ]; then
    echo "run_bench.sh: put_logged_mops missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$pl" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: put_logged_mops is zero in $json_out" >&2
    exit 1
fi
ov=$(sed -n 's/.*"log_overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$json_out")
if [ -z "$ov" ]; then
    echo "run_bench.sh: log_overhead_pct missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$ov" | awk '{ print ($1 > -1000 && $1 < 1000) ? "ok" : "bad" }')" != "ok" ]; then
    echo "run_bench.sh: log_overhead_pct not finite in $json_out: $ov" >&2
    exit 1
fi
# Non-regression gate for the fault-injection seam: every persistence
# syscall now routes through masstree::io, whose unarmed fast path must stay
# one relaxed atomic load + tail call. If the seam (or anything else on the
# logged-write path) grows real per-call cost, the logged/unlogged gap blows
# past this ceiling. Historical values sit around 0 (+/- noise on a one-core
# box), so the default leaves wide noise margin while still catching a
# pessimized seam; override with MT_LOG_OVERHEAD_MAX_PCT.
ov_max=${MT_LOG_OVERHEAD_MAX_PCT:-50}
if [ "$(printf '%s %s\n' "$ov" "$ov_max" | awk '{ print ($1 <= $2) ? "ok" : "high" }')" != "ok" ]; then
    echo "run_bench.sh: log_overhead_pct regressed above ${ov_max}%: $ov" >&2
    exit 1
fi
echo "== put_logged_mops = $pl, log_overhead_pct = $ov (finite, <= ${ov_max}%)"

# PR 8's wire-volume metrics: the v2 varint framing must actually be in
# effect. log_bytes_per_op must be present and non-zero; log_bytes_saved_pct
# (v2 physical bytes vs the analytic v1 cost of the same records) must be
# >= 35, or the compact framing has regressed to roughly v1 sizes.
bpo=$(sed -n 's/.*"log_bytes_per_op": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$bpo" ]; then
    echo "run_bench.sh: log_bytes_per_op missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$bpo" | awk '{ print ($1 > 0 && $1 < 100000) ? "ok" : "bad" }')" != "ok" ]; then
    echo "run_bench.sh: log_bytes_per_op not positive/finite in $json_out: $bpo" >&2
    exit 1
fi
sv=$(sed -n 's/.*"log_bytes_saved_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$json_out")
if [ -z "$sv" ]; then
    echo "run_bench.sh: log_bytes_saved_pct missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$sv" | awk '{ print ($1 >= 35) ? "ok" : "low" }')" != "ok" ]; then
    echo "run_bench.sh: log_bytes_saved_pct below the 35% floor: $sv" >&2
    exit 1
fi
echo "== log_bytes_per_op = $bpo, log_bytes_saved_pct = $sv (>= 35)"

# The 1 KiB compressible-value duel: overhead must be present and finite
# (the <10% paper budget is tracked, but a one-core CI box is too noisy to
# hard-gate a timing ratio), and the compression ratio must be a real
# number > 1 — these values are built to compress, so 1.0 means the lz path
# is dead.
ov1=$(sed -n 's/.*"log_overhead_1kb_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$json_out")
if [ -z "$ov1" ]; then
    echo "run_bench.sh: log_overhead_1kb_pct missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$ov1" | awk '{ print ($1 > -1000 && $1 < 1000) ? "ok" : "bad" }')" != "ok" ]; then
    echo "run_bench.sh: log_overhead_1kb_pct not finite in $json_out: $ov1" >&2
    exit 1
fi
cr=$(sed -n 's/.*"log_1kb_compression_ratio": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$cr" ]; then
    echo "run_bench.sh: log_1kb_compression_ratio missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$cr" | awk '{ print ($1 > 1.0 && $1 < 10000) ? "ok" : "bad" }')" != "ok" ]; then
    echo "run_bench.sh: log_1kb_compression_ratio not > 1 in $json_out: $cr" >&2
    exit 1
fi
echo "== log_overhead_1kb_pct = $ov1, log_1kb_compression_ratio = $cr (> 1)"

# The §6.1 served path: net_get_mops (gets through the epoll event-loop
# server over the wire) and net_conns (the pipelined connection count it was
# measured at) must both be present and non-zero, so the network layer stays
# measured on every run.
ng=$(sed -n 's/.*"net_get_mops": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$ng" ]; then
    echo "run_bench.sh: net_get_mops missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$ng" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: net_get_mops is zero in $json_out" >&2
    exit 1
fi
nc=$(sed -n 's/.*"net_conns": \([0-9]*\).*/\1/p' "$json_out")
if [ -z "$nc" ]; then
    echo "run_bench.sh: net_conns missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$nc" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: net_conns is zero in $json_out" >&2
    exit 1
fi
echo "== net_get_mops = $ng at net_conns = $nc (present and non-zero)"

# The record-cache path (Figure 11's skew experiment): zipf_get_mops (skewed
# gets through the hot-key record cache) must be present and non-zero, and
# cache_hit_pct must be a sane percentage — a dead cache would read as 0 hits
# and a validation bug as a nonsense ratio.
zg=$(sed -n 's/.*"zipf_get_mops": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$zg" ]; then
    echo "run_bench.sh: zipf_get_mops missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$zg" | awk '{ print ($1 > 0) ? "ok" : "zero" }')" != "ok" ]; then
    echo "run_bench.sh: zipf_get_mops is zero in $json_out" >&2
    exit 1
fi
ch=$(sed -n 's/.*"cache_hit_pct": \([0-9.]*\).*/\1/p' "$json_out")
if [ -z "$ch" ]; then
    echo "run_bench.sh: cache_hit_pct missing from $json_out" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$ch" | awk '{ print ($1 >= 0 && $1 <= 100) ? "ok" : "bad" }')" != "ok" ]; then
    echo "run_bench.sh: cache_hit_pct out of [0,100] in $json_out: $ch" >&2
    exit 1
fi
cc=$(sed -n 's/.*"cache_capacity": \([0-9]*\).*/\1/p' "$json_out")
if [ -z "$cc" ]; then
    echo "run_bench.sh: cache_capacity missing from $json_out" >&2
    exit 1
fi
echo "== zipf_get_mops = $zg, cache_hit_pct = $ch, cache_capacity = $cc"

if [ -x "$bin_dir/micro_gbench" ]; then
    echo "== micro_gbench -> $out_dir/BENCH_gbench.json"
    "$bin_dir/micro_gbench" --benchmark_format=json \
        --benchmark_out="$out_dir/BENCH_gbench.json" \
        --benchmark_out_format=json >/dev/null
else
    echo "== micro_gbench not built (Google Benchmark missing); skipping"
fi

echo "== fig10_scalability -> $out_dir/BENCH_fig10.txt"
"$bin_dir/fig10_scalability" | tee "$out_dir/BENCH_fig10.txt"

# Range-scan sweep (legacy vs cursor vs batch at lengths 10/100/1000) plus the
# allocation-free steady-state check — sec3_scan exits non-zero if the chain
# walk ever allocates per node visit.
echo "== sec3_scan -> $out_dir/BENCH_sec3_scan.txt"
# No pipe to tee here: the pipeline would return tee's status and swallow
# sec3_scan's enforcement exit code under plain POSIX sh.
"$bin_dir/sec3_scan" > "$out_dir/BENCH_sec3_scan.txt"
cat "$out_dir/BENCH_sec3_scan.txt"

echo "== done; headline metrics:"
cat "$json_out"
