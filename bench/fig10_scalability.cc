// Figure 10 — scalability (§6.5): per-core get/put throughput as cores grow.
// "At 16 cores, Masstree scales to 12.7x and 12.5x its one-core performance
// for gets and puts respectively" — i.e. the per-core line sags gently (DRAM
// bandwidth contention), it does not collapse.
//
// This container exposes few hardware threads; the sweep covers
// 1..min(16, hardware). MT_BENCH_MAXTHREADS overrides the cap (values above
// the hardware count show oversubscription, not the paper's scaling).

#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  unsigned max_threads = static_cast<unsigned>(
      env_u64("MT_BENCH_MAXTHREADS", std::min(16u, hardware_threads())));
  print_header("Figure 10: Masstree scalability (per-core throughput)", e);
  std::printf("%-8s %-22s %-22s\n", "cores", "get Mops (per-core)", "put Mops (per-core)");

  double get1 = 0, put1 = 0;
  for (unsigned n = 1; n <= max_threads; n = (n < 4 ? n + 1 : n * 2)) {
    ThreadContext setup;
    Tree tree(setup);
    // Load phase.
    {
      thread_local ThreadContext ti;
      uint64_t old;
      for (uint64_t i = 0; i < e.keys; ++i) {
        tree.insert(decimal_key(i), i, &old, ti);
      }
    }
    double get_mops = timed_mops(n, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
      thread_local ThreadContext ti;
      Rng rng(100 + t);
      uint64_t ops = 0, v;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 256; ++i) {
          tree.get(decimal_key(rng.next_range(e.keys)), &v, ti);
          ++ops;
        }
      }
      return ops;
    });
    // Put workload: fresh keys beyond the loaded range (inserts + occasional
    // updates, as in §6.1).
    std::atomic<uint64_t> next{e.keys};
    double put_mops = timed_mops(n, e.secs, [&](unsigned, const std::atomic<bool>& stop) {
      thread_local ThreadContext ti;
      uint64_t ops = 0, old;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t chunk = next.fetch_add(256, std::memory_order_relaxed);
        for (uint64_t i = chunk; i < chunk + 256; ++i) {
          tree.insert(decimal_key(i), i, &old, ti);
          ++ops;
        }
      }
      return ops;
    });
    if (n == 1) {
      get1 = get_mops;
      put1 = put_mops;
    }
    std::printf("%-8u %7.3f (%6.3f)        %7.3f (%6.3f)   speedup get %.1fx put %.1fx\n", n,
                get_mops, get_mops / n, put_mops, put_mops / n, get_mops / get1,
                put_mops / put1);
  }
  std::printf("\npaper: near-linear to 16 cores (12.7x get / 12.5x put at 16)\n");
  return 0;
}
