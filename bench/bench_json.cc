// JSON-emitting throughput runner: the repo's perf trajectory anchor.
//
//   bench_json [output.json]
//
// Measures the headline Masstree throughputs every PR must not regress —
// uniform point gets, software-pipelined batched gets (multiget, §4.8),
// snapshot-batched range scans (getrange §3, scan_mops as pairs/s at
// scan_len), fresh-key inserts, uniform updates, a YCSB-A-style 50/50
// get/update mix over a Zipfian (theta=0.99, scrambled) popularity
// distribution, a YCSB-C-style read-only Zipf sweep with the hot-key record
// cache attached (zipf_get_mops/cache_hit_pct at cache_capacity entries),
// and served-over-the-wire gets through the §6.1 epoll event-loop server
// (net_get_mops at net_conns pipelined connections) — and
// writes them as one JSON object (stdout if no path). Workload scale follows
// the MT_BENCH_* environment knobs of bench/common.h.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>

#include "bench/common.h"
#include "bench/net_driver.h"
#include "core/tree.h"
#include "kvstore/store.h"
#include "net/server.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace {

// Store-level uniform fresh-key put throughput, with or without the §5
// per-worker value logs; the pair yields log_overhead_pct, the paper's
// "logging costs <10%" trajectory metric.
double store_put_mops(const masstree::Store::Options& opt, const masstree::bench::Env& e) {
  using namespace masstree;
  Store store(opt);
  std::atomic<uint64_t> next{0};
  return bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    Store::Session s(store, t);
    uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t chunk = next.fetch_add(128, std::memory_order_relaxed);
      for (uint64_t i = chunk; i < chunk + 128; ++i) {
        store.put(decimal_key(i), {{0, "12345678"}}, s);
        ++ops;
      }
    }
    return ops;
  });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("bench_json: throughput metrics for BENCH_micro.json", e);

  ThreadContext setup;
  Tree tree(setup);

  // Timed load phase doubles as the insert metric: every thread claims fresh
  // key chunks, so the tree keeps splitting like a real ingest.
  std::atomic<uint64_t> next{0};
  double insert_mops = timed_mops(e.threads, e.secs, [&](unsigned, const std::atomic<bool>& stop) {
    thread_local ThreadContext ti;
    uint64_t ops = 0, old;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t chunk = next.fetch_add(256, std::memory_order_relaxed);
      for (uint64_t i = chunk; i < chunk + 256; ++i) {
        tree.insert(decimal_key(i), i, &old, ti);
        ++ops;
      }
    }
    return ops;
  });
  // Top up to the full key count so the read phases cover e.keys keys.
  {
    ThreadContext ti;
    uint64_t old;
    for (uint64_t i = next.load(); i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, ti);
    }
  }
  uint64_t loaded = std::max(next.load(), e.keys);

  double get_uniform_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(100 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            tree.get(decimal_key(rng.next_range(loaded)), &v, ti);
            ++ops;
          }
        }
        return ops;
      });

  double update_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(200 + t);
        uint64_t ops = 0, old;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            uint64_t k = rng.next_range(loaded);
            tree.insert(decimal_key(k), k ^ ops, &old, ti);
            ++ops;
          }
        }
        return ops;
      });

  // Batched gets through the §4.8 software-pipelined multiget: same uniform
  // key distribution as the get phase, issued kMultigetBatch keys at a time
  // so the cursors' DRAM fetches overlap.
  constexpr size_t kMultigetBatch = 16;
  double multiget_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(500 + t);
        uint64_t ops = 0;
        std::string keybuf[kMultigetBatch];
        Tree::GetRequest reqs[kMultigetBatch];
        while (!stop.load(std::memory_order_relaxed)) {
          for (size_t i = 0; i < kMultigetBatch; ++i) {
            keybuf[i] = decimal_key(rng.next_range(loaded));
            reqs[i] = Tree::GetRequest{keybuf[i], 0, false};
          }
          tree.multiget(std::span<Tree::GetRequest>(reqs, kMultigetBatch), ti);
          ops += kMultigetBatch;
        }
        return ops;
      });

  // Range scans (§3 getrange) through the snapshot-batched ScanCursor:
  // random start keys, kScanLen pairs per scan, scan_batch's next-border
  // prefetch on. Reported as pairs/second.
  constexpr size_t kScanLen = 100;
  double scan_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(600 + t);
        uint64_t pairs = 0, sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          pairs += tree.scan_batch(
              decimal_key(rng.next_range(loaded)), kScanLen,
              [&](std::string_view k, uint64_t v) {
                sink += v + k.size();
                return true;
              },
              ti);
        }
        // Keep the emitted pairs observable so the scan isn't optimized out.
        asm volatile("" : : "r"(sink) : "memory");
        return pairs;
      });

  // Write-side persistence cost (§5): Store-level puts with the per-session
  // wait-free log shards on vs off. Group commit runs in background logging
  // threads, so the overhead percentage is the paper's <10% claim.
  std::string log_dir = std::filesystem::temp_directory_path().string() + "/benchjson-logs";
  Store::Options logged_opt;
  logged_opt.log_dir = log_dir;
  // Alternate the configs, best of two each: equalizes allocator warm-up
  // and filters scheduler noise (a single pass can even read negative
  // overhead on a busy box). Unlinking the logs right after the logged run
  // keeps its dirty-page writeback out of the next phase.
  double put_unlogged_mops = 0.0, put_logged_mops = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    put_unlogged_mops = std::max(put_unlogged_mops, store_put_mops(Store::Options{}, e));
    std::filesystem::remove_all(log_dir);
    put_logged_mops = std::max(put_logged_mops, store_put_mops(logged_opt, e));
    std::filesystem::remove_all(log_dir);
  }
  double log_overhead_pct =
      put_unlogged_mops > 0.0 ? 100.0 * (1.0 - put_logged_mops / put_unlogged_mops) : 0.0;

  // YCSB-A: 50% reads, 50% updates, Zipfian key popularity (§7).
  double ycsb_a_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng coin(300 + t);
        Zipfian zipf(loaded, 0.99, 400 + t);
        uint64_t ops = 0, v, old;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            uint64_t k = zipf.next_scrambled();
            if (coin.next() & 1) {
              tree.get(decimal_key(k), &v, ti);
            } else {
              tree.insert(decimal_key(k), k + ops, &old, ti);
            }
            ++ops;
          }
        }
        return ops;
      });

  // YCSB-C-style Zipf sweep: read-only gets over Zipfian key popularity with
  // the hot-key record cache fronting the tree (cache/record_cache.h).
  // zipf_get_mops is the theta=0.99 row — the trajectory metric — and
  // cache_hit_pct its aggregate validated-hit rate.
  // Like fig11_skew, the draw stream and key strings are pregenerated: a
  // Zipfian draw costs two pow() calls and decimal_key allocates, which
  // would otherwise dominate the timed loop (the metric is tree+cache
  // throughput, not generator throughput). Threads cycle the shared stream
  // from staggered offsets.
  size_t bench_cache_cap = env_u64("MT_BENCH_CACHE_CAP", 1 << 13);
  RecordCache<Tree::Config> rcache(
      RecordCache<Tree::Config>::Config{bench_cache_cap, 4});
  double zipf_get_mops = 0.0, cache_hit_pct = 0.0;
  std::printf("zipf get sweep (record cache, capacity=%zu):\n", rcache.capacity());
  std::vector<std::string> zkeys(loaded);
  for (uint64_t i = 0; i < loaded; ++i) {
    zkeys[i] = decimal_key(i);
  }
  constexpr size_t kZipfStream = 1 << 20;  // power of two for cheap wrap
  std::vector<uint32_t> zstream(kZipfStream);
  for (double theta : {0.5, 0.99, 1.2}) {
    {
      SkewGen gen = SkewGen::zipf(loaded, theta, 700);
      for (auto& x : zstream) {
        x = static_cast<uint32_t>(gen.next_index());
      }
    }
    tree.set_record_cache(&rcache);
    rcache.clear();
    std::atomic<uint64_t> hits{0}, misses{0};
    double mops =
        timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
          thread_local ThreadContext ti;
          uint64_t h0 = ti.counters().get(Counter::kCacheHits);
          uint64_t m0 = ti.counters().get(Counter::kCacheMisses);
          size_t pos = (static_cast<size_t>(t) * (kZipfStream / 16)) % kZipfStream;
          uint64_t ops = 0, v;
          while (!stop.load(std::memory_order_relaxed)) {
            for (int i = 0; i < 256; ++i) {
              tree.get(zkeys[zstream[pos]], &v, ti);
              pos = (pos + 1) & (kZipfStream - 1);
              ++ops;
            }
          }
          hits.fetch_add(ti.counters().get(Counter::kCacheHits) - h0,
                         std::memory_order_relaxed);
          misses.fetch_add(ti.counters().get(Counter::kCacheMisses) - m0,
                           std::memory_order_relaxed);
          return ops;
        });
    tree.set_record_cache(nullptr);
    uint64_t total = hits.load() + misses.load();
    double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits.load()) / static_cast<double>(total);
    std::printf("  theta=%.2f: %.3f Mops, hit_pct=%.1f\n", theta, mops, pct);
    if (theta == 0.99) {
      zipf_get_mops = mops;
      cache_hit_pct = pct;
    }
  }

  // Network serving (§6.1): uniform point gets through the epoll event-loop
  // server over the real wire protocol — kNetConns pipelined connections at
  // depth kNetDepth, frames of 32 gets, cross-connection runs coalesced into
  // Tree::multiget. The trajectory metric every PR must keep non-zero.
  constexpr unsigned kNetConns = 64, kNetDepth = 16;
  double net_get_mops;
  uint64_t net_batched_gets;
  {
    Store net_store;
    bench::NetDriveConfig cfg;
    cfg.nconns = kNetConns;
    cfg.depth = kNetDepth;
    cfg.keyspace = std::min<uint64_t>(loaded, 200000);
    cfg.threads = std::min(e.threads, kNetConns);
    cfg.secs = e.secs;
    {
      Store::Session s(net_store, 0);
      for (uint64_t i = 0; i < cfg.keyspace; ++i) {
        net_store.put(decimal_key(i), {{0, "12345678"}}, s);
      }
    }
    Server server(net_store, Server::Options{0, e.threads});
    server.start();
    net_get_mops = bench::drive_gets(server.port(), cfg);
    net_batched_gets = server.batched_gets();
    server.stop();
  }

  std::string json;
  char buf[256];
  auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    json += buf;
  };
  add("{\n");
  add("  \"bench\": \"micro_throughput\",\n");
  add("  \"tree\": \"masstree\",\n");
  add("  \"keys\": %llu,\n", static_cast<unsigned long long>(loaded));
  add("  \"threads\": %u,\n", e.threads);
  add("  \"secs_per_phase\": %.2f,\n", e.secs);
  add("  \"metrics\": {\n");
  add("    \"insert_mops\": %.4f,\n", insert_mops);
  add("    \"get_uniform_mops\": %.4f,\n", get_uniform_mops);
  add("    \"multiget_mops\": %.4f,\n", multiget_mops);
  add("    \"multiget_batch\": %zu,\n", kMultigetBatch);
  add("    \"scan_mops\": %.4f,\n", scan_mops);
  add("    \"scan_len\": %zu,\n", kScanLen);
  add("    \"update_uniform_mops\": %.4f,\n", update_mops);
  add("    \"put_unlogged_mops\": %.4f,\n", put_unlogged_mops);
  add("    \"put_logged_mops\": %.4f,\n", put_logged_mops);
  add("    \"log_overhead_pct\": %.2f,\n", log_overhead_pct);
  add("    \"ycsb_a_zipfian_mops\": %.4f,\n", ycsb_a_mops);
  add("    \"net_get_mops\": %.4f,\n", net_get_mops);
  add("    \"net_conns\": %u,\n", kNetConns);
  add("    \"net_pipeline_depth\": %u,\n", kNetDepth);
  add("    \"net_batched_gets\": %llu,\n",
      static_cast<unsigned long long>(net_batched_gets));
  add("    \"zipf_get_mops\": %.4f,\n", zipf_get_mops);
  add("    \"cache_hit_pct\": %.2f,\n", cache_hit_pct);
  add("    \"cache_capacity\": %zu\n", rcache.capacity());
  add("  }\n");
  add("}\n");

  if (argc > 1) {
    FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", argv[1]);
  }
  std::fputs(json.c_str(), stdout);
  return 0;
}
