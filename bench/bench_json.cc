// JSON-emitting throughput runner: the repo's perf trajectory anchor.
//
//   bench_json [output.json]
//
// Measures the headline Masstree throughputs every PR must not regress —
// uniform point gets, software-pipelined batched gets (multiget, §4.8),
// snapshot-batched range scans (getrange §3, scan_mops as pairs/s at
// scan_len), fresh-key inserts, uniform updates, a YCSB-A-style 50/50
// get/update mix over a Zipfian (theta=0.99, scrambled) popularity
// distribution, a YCSB-C-style read-only Zipf sweep with the hot-key record
// cache attached (zipf_get_mops/cache_hit_pct at cache_capacity entries),
// and served-over-the-wire gets through the §6.1 epoll event-loop server
// (net_get_mops at net_conns pipelined connections) — and
// writes them as one JSON object (stdout if no path). Workload scale follows
// the MT_BENCH_* environment knobs of bench/common.h.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/net_driver.h"
#include "core/tree.h"
#include "kvstore/store.h"
#include "log/logrecord.h"
#include "net/server.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace {

// One logging-overhead duel (§5): fresh-key puts into a logged and an
// unlogged Store, chunk-interleaved on ONE thread with fig11_skew's leg
// discipline — an untimed warm leg, then unlogged-logged-logged-unlogged so
// neither mode systematically runs on fresher data, with the verdict taken
// as the MEDIAN per-pair ratio. A naive best-of-N of two separate runs
// (the old scheme) is noise-dominated on small virtualized hosts: two
// identical passes can disagree by more than the <10% budget being
// measured, which is how the metric once read -5.8%.
struct LogDuelResult {
  double logged_mops = 0.0;
  double unlogged_mops = 0.0;
  double overhead_pct = 0.0;
  // Logged-store counter deltas (v2 wire accounting).
  uint64_t appends = 0;
  uint64_t physical_bytes = 0;
  uint64_t logical_bytes = 0;
  uint64_t compressed_records = 0;
  // What the same records would have cost in the fixed-width v1 framing.
  uint64_t v1_bytes = 0;

  double bytes_per_op() const {
    return appends == 0 ? 0.0
                        : static_cast<double>(physical_bytes) /
                              static_cast<double>(appends);
  }
  double saved_vs_v1_pct() const {
    return v1_bytes == 0 ? 0.0
                         : 100.0 * (1.0 - static_cast<double>(physical_bytes) /
                                              static_cast<double>(v1_bytes));
  }
  double compression_ratio() const {
    return physical_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(physical_bytes);
  }
};

LogDuelResult log_duel(const std::string& log_dir, const std::string& value,
                       uint64_t nops, uint64_t key_tag) {
  using namespace masstree;
  std::filesystem::remove_all(log_dir);
  std::filesystem::create_directories(log_dir);
  Store unlogged;
  Store::Options lopt;
  lopt.log_dir = log_dir;
  Store logged(lopt);
  Store::Session su(unlogged, 0);
  Store::Session sl(logged, 0);
  Store* stores[2] = {&unlogged, &logged};
  Store::Session* sessions[2] = {&su, &sl};

  constexpr uint64_t kChunk = 4096;
  // Warm leg first, then unlogged-logged-logged-unlogged timed legs.
  static constexpr int kLegMode[] = {1, 0, 1, 1, 0};
  uint64_t pairs = std::max<uint64_t>(nops / kChunk, 2);
  uint64_t next_key[2] = {0, 0};  // per-mode keyspace: both trees grow alike
  double total_secs[2] = {0.0, 0.0};
  uint64_t total_ops[2] = {0, 0};
  std::vector<double> ratios;
  ratios.reserve(pairs);
  uint64_t a0 = sl.ti().counters().get(Counter::kLogAppends);
  uint64_t p0 = sl.ti().counters().get(Counter::kLogBytesPhysical);
  uint64_t l0 = sl.ti().counters().get(Counter::kLogBytesLogical);
  uint64_t c0 = sl.ti().counters().get(Counter::kLogCompressedRecords);
  for (uint64_t i = 0; i < pairs; ++i) {
    double secs[2] = {0.0, 0.0};
    for (int leg = 0; leg < 5; ++leg) {
      int mode = kLegMode[leg];
      Store& st = *stores[mode];
      Store::Session& ss = *sessions[mode];
      auto t0 = std::chrono::steady_clock::now();
      for (uint64_t k = 0; k < kChunk; ++k) {
        st.put(decimal_key(key_tag + (static_cast<uint64_t>(mode) << 62) +
                           next_key[mode]++),
               {{0, value}}, ss);
      }
      if (leg > 0) {
        double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        secs[mode] += dt;
        total_secs[mode] += dt;
        total_ops[mode] += kChunk;
      }
    }
    if (i > 0) {  // pair 0 additionally warms both stores
      ratios.push_back(secs[0] / secs[1]);  // >1: logged side faster
    }
  }
  LogDuelResult r;
  r.appends = sl.ti().counters().get(Counter::kLogAppends) - a0;
  r.physical_bytes = sl.ti().counters().get(Counter::kLogBytesPhysical) - p0;
  r.logical_bytes = sl.ti().counters().get(Counter::kLogBytesLogical) - l0;
  r.compressed_records =
      sl.ti().counters().get(Counter::kLogCompressedRecords) - c0;
  // Analytic v1 cost of the records the logged store actually appended,
  // regenerated outside any timed leg: 29 fixed bytes + key + per-column
  // (2 + 4 + len) with the 2-byte ncols count.
  for (uint64_t k = 0; k < next_key[1]; ++k) {
    std::string key = decimal_key(key_tag + (uint64_t{1} << 62) + k);
    r.v1_bytes += logwire::kRecordOverheadV1 + key.size() + 2 + 2 + 4 +
                  value.size();
  }
  std::sort(ratios.begin(), ratios.end());
  double med = ratios[ratios.size() / 2];
  r.overhead_pct = (1.0 / med - 1.0) * 100.0;
  r.unlogged_mops = total_secs[0] > 0.0
                        ? static_cast<double>(total_ops[0]) / total_secs[0] / 1e6
                        : 0.0;
  r.logged_mops = total_secs[1] > 0.0
                      ? static_cast<double>(total_ops[1]) / total_secs[1] / 1e6
                      : 0.0;
  std::filesystem::remove_all(log_dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("bench_json: throughput metrics for BENCH_micro.json", e);

  ThreadContext setup;
  Tree tree(setup);

  // Timed load phase doubles as the insert metric: every thread claims fresh
  // key chunks, so the tree keeps splitting like a real ingest.
  std::atomic<uint64_t> next{0};
  double insert_mops = timed_mops(e.threads, e.secs, [&](unsigned, const std::atomic<bool>& stop) {
    thread_local ThreadContext ti;
    uint64_t ops = 0, old;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t chunk = next.fetch_add(256, std::memory_order_relaxed);
      for (uint64_t i = chunk; i < chunk + 256; ++i) {
        tree.insert(decimal_key(i), i, &old, ti);
        ++ops;
      }
    }
    return ops;
  });
  // Top up to the full key count so the read phases cover e.keys keys.
  {
    ThreadContext ti;
    uint64_t old;
    for (uint64_t i = next.load(); i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, ti);
    }
  }
  uint64_t loaded = std::max(next.load(), e.keys);

  double get_uniform_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(100 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            tree.get(decimal_key(rng.next_range(loaded)), &v, ti);
            ++ops;
          }
        }
        return ops;
      });

  double update_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(200 + t);
        uint64_t ops = 0, old;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            uint64_t k = rng.next_range(loaded);
            tree.insert(decimal_key(k), k ^ ops, &old, ti);
            ++ops;
          }
        }
        return ops;
      });

  // Batched gets through the §4.8 software-pipelined multiget: same uniform
  // key distribution as the get phase, issued kMultigetBatch keys at a time
  // so the cursors' DRAM fetches overlap.
  constexpr size_t kMultigetBatch = 16;
  double multiget_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(500 + t);
        uint64_t ops = 0;
        std::string keybuf[kMultigetBatch];
        Tree::GetRequest reqs[kMultigetBatch];
        while (!stop.load(std::memory_order_relaxed)) {
          for (size_t i = 0; i < kMultigetBatch; ++i) {
            keybuf[i] = decimal_key(rng.next_range(loaded));
            reqs[i] = Tree::GetRequest{keybuf[i], 0, false};
          }
          tree.multiget(std::span<Tree::GetRequest>(reqs, kMultigetBatch), ti);
          ops += kMultigetBatch;
        }
        return ops;
      });

  // Batched writes through the §4.8 write-side pipeline: multiput vs
  // sequential single puts, uniform overwrites on ONE thread,
  // chunk-interleaved with fig11's leg discipline (warm leg, then
  // seq-batched-batched-seq so neither mode systematically runs on a
  // warmer cache) and the verdict taken as the MEDIAN per-pair ratio —
  // small-host noise would otherwise swamp the ~1.4x being measured.
  constexpr size_t kMultiputBatch = 16;
  double multiput_mops, put_seq_mops, multiput_speedup;
  {
    constexpr uint64_t kChunk = 4096;
    static constexpr int kLegMode[] = {1, 0, 1, 1, 0};  // 1 = multiput leg
    uint64_t mp_ops = env_u64("MT_BENCH_MULTIPUT_OPS", 400000);
    uint64_t pairs = std::max<uint64_t>(mp_ops / kChunk, 2);
    ThreadContext ti;
    Rng rng(900);
    std::string keybuf[kMultiputBatch];
    Tree::PutRequest reqs[kMultiputBatch];
    double total_secs[2] = {0.0, 0.0};
    uint64_t total_ops[2] = {0, 0};
    std::vector<double> ratios;
    ratios.reserve(pairs);
    for (uint64_t p = 0; p < pairs; ++p) {
      double secs[2] = {0.0, 0.0};
      for (int leg = 0; leg < 5; ++leg) {
        int mode = kLegMode[leg];
        auto t0 = std::chrono::steady_clock::now();
        if (mode == 0) {
          uint64_t old;
          for (uint64_t k = 0; k < kChunk; ++k) {
            tree.insert(decimal_key(rng.next_range(loaded)), k, &old, ti);
          }
        } else {
          for (uint64_t k = 0; k < kChunk; k += kMultiputBatch) {
            for (size_t i = 0; i < kMultiputBatch; ++i) {
              keybuf[i] = decimal_key(rng.next_range(loaded));
              reqs[i] = Tree::PutRequest{keybuf[i], k + i};
            }
            tree.multiput(std::span<Tree::PutRequest>(reqs, kMultiputBatch), ti);
          }
        }
        if (leg > 0) {
          double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
          secs[mode] += dt;
          total_secs[mode] += dt;
          total_ops[mode] += kChunk;
        }
      }
      if (p > 0) {  // pair 0 additionally warms both paths
        ratios.push_back(secs[0] / secs[1]);  // >1: batched side faster
      }
    }
    std::sort(ratios.begin(), ratios.end());
    multiput_speedup = ratios[ratios.size() / 2];
    put_seq_mops = total_secs[0] > 0.0
                       ? static_cast<double>(total_ops[0]) / total_secs[0] / 1e6
                       : 0.0;
    multiput_mops = total_secs[1] > 0.0
                        ? static_cast<double>(total_ops[1]) / total_secs[1] / 1e6
                        : 0.0;
    std::printf("multiput duel (batch=%zu, 1 thread): seq %.3f Mops, batched "
                "%.3f Mops, median speedup %.2fx\n",
                kMultiputBatch, put_seq_mops, multiput_mops, multiput_speedup);
  }

  // Range scans (§3 getrange) through the snapshot-batched ScanCursor:
  // random start keys, kScanLen pairs per scan, scan_batch's next-border
  // prefetch on. Reported as pairs/second.
  constexpr size_t kScanLen = 100;
  double scan_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(600 + t);
        uint64_t pairs = 0, sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          pairs += tree.scan_batch(
              decimal_key(rng.next_range(loaded)), kScanLen,
              [&](std::string_view k, uint64_t v) {
                sink += v + k.size();
                return true;
              },
              ti);
        }
        // Keep the emitted pairs observable so the scan isn't optimized out.
        asm volatile("" : : "r"(sink) : "memory");
        return pairs;
      });

  // Write-side persistence cost (§5): chunk-interleaved logged-vs-unlogged
  // put duels (see log_duel above). The 8-byte-value mix is the paper's
  // <10% overhead trajectory metric and, since PR 8, also the wire-volume
  // one: log_bytes_per_op and the saving against the fixed-width v1 framing
  // come from the logged store's kLogBytes* counters. The second duel uses
  // 1 KiB JSON-ish values — above the compression threshold — so its
  // overhead and compression ratio exercise the lz path end to end.
  std::string log_dir = std::filesystem::temp_directory_path().string() + "/benchjson-logs";
  uint64_t duel_ops = env_u64("MT_BENCH_LOG_DUEL_OPS", 300000);
  LogDuelResult mix = log_duel(log_dir, "12345678", duel_ops, /*key_tag=*/0);
  double put_unlogged_mops = mix.unlogged_mops;
  double put_logged_mops = mix.logged_mops;
  double log_overhead_pct = mix.overhead_pct;
  std::printf("log duel (8B values): overhead %.2f%%, %.1f bytes/op, "
              "%.1f%% saved vs v1\n",
              mix.overhead_pct, mix.bytes_per_op(), mix.saved_vs_v1_pct());

  std::string value_1kb;
  for (int f = 0; value_1kb.size() < 1024; ++f) {
    value_1kb += "\"field" + std::to_string(f % 12) + "\":\"payload-" +
                 std::to_string(f % 7) + "\",";
  }
  value_1kb.resize(1024);
  LogDuelResult kb = log_duel(log_dir, value_1kb, duel_ops / 4,
                              /*key_tag=*/uint64_t{1} << 40);
  double log_overhead_1kb_pct = kb.overhead_pct;
  std::printf("log duel (1KiB values): overhead %.2f%%, %.1f bytes/op, "
              "compression ratio %.2fx (%.1f%% records compressed)\n",
              kb.overhead_pct, kb.bytes_per_op(), kb.compression_ratio(),
              kb.appends == 0 ? 0.0
                              : 100.0 * static_cast<double>(kb.compressed_records) /
                                    static_cast<double>(kb.appends));

  // YCSB-A: 50% reads, 50% updates, Zipfian key popularity (§7).
  double ycsb_a_mops =
      timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng coin(300 + t);
        Zipfian zipf(loaded, 0.99, 400 + t);
        uint64_t ops = 0, v, old;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            uint64_t k = zipf.next_scrambled();
            if (coin.next() & 1) {
              tree.get(decimal_key(k), &v, ti);
            } else {
              tree.insert(decimal_key(k), k + ops, &old, ti);
            }
            ++ops;
          }
        }
        return ops;
      });

  // YCSB-C-style Zipf sweep: read-only gets over Zipfian key popularity with
  // the hot-key record cache fronting the tree (cache/record_cache.h).
  // zipf_get_mops is the theta=0.99 row — the trajectory metric — and
  // cache_hit_pct its aggregate validated-hit rate.
  // Like fig11_skew, the draw stream and key strings are pregenerated: a
  // Zipfian draw costs two pow() calls and decimal_key allocates, which
  // would otherwise dominate the timed loop (the metric is tree+cache
  // throughput, not generator throughput). Threads cycle the shared stream
  // from staggered offsets.
  size_t bench_cache_cap = env_u64("MT_BENCH_CACHE_CAP", 1 << 13);
  RecordCache<Tree::Config> rcache(
      RecordCache<Tree::Config>::Config{bench_cache_cap, 4});
  double zipf_get_mops = 0.0, cache_hit_pct = 0.0;
  std::printf("zipf get sweep (record cache, capacity=%zu):\n", rcache.capacity());
  std::vector<std::string> zkeys(loaded);
  for (uint64_t i = 0; i < loaded; ++i) {
    zkeys[i] = decimal_key(i);
  }
  constexpr size_t kZipfStream = 1 << 20;  // power of two for cheap wrap
  std::vector<uint32_t> zstream(kZipfStream);
  for (double theta : {0.5, 0.99, 1.2}) {
    {
      SkewGen gen = SkewGen::zipf(loaded, theta, 700);
      for (auto& x : zstream) {
        x = static_cast<uint32_t>(gen.next_index());
      }
    }
    tree.set_record_cache(&rcache);
    rcache.clear();
    std::atomic<uint64_t> hits{0}, misses{0};
    double mops =
        timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
          thread_local ThreadContext ti;
          uint64_t h0 = ti.counters().get(Counter::kCacheHits);
          uint64_t m0 = ti.counters().get(Counter::kCacheMisses);
          size_t pos = (static_cast<size_t>(t) * (kZipfStream / 16)) % kZipfStream;
          uint64_t ops = 0, v;
          while (!stop.load(std::memory_order_relaxed)) {
            for (int i = 0; i < 256; ++i) {
              tree.get(zkeys[zstream[pos]], &v, ti);
              pos = (pos + 1) & (kZipfStream - 1);
              ++ops;
            }
          }
          hits.fetch_add(ti.counters().get(Counter::kCacheHits) - h0,
                         std::memory_order_relaxed);
          misses.fetch_add(ti.counters().get(Counter::kCacheMisses) - m0,
                           std::memory_order_relaxed);
          return ops;
        });
    tree.set_record_cache(nullptr);
    uint64_t total = hits.load() + misses.load();
    double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits.load()) / static_cast<double>(total);
    std::printf("  theta=%.2f: %.3f Mops, hit_pct=%.1f\n", theta, mops, pct);
    if (theta == 0.99) {
      zipf_get_mops = mops;
      cache_hit_pct = pct;
    }
  }

  // Network serving (§6.1): uniform point gets through the epoll event-loop
  // server over the real wire protocol — kNetConns pipelined connections at
  // depth kNetDepth, frames of 32 gets, cross-connection runs coalesced into
  // Tree::multiget. The trajectory metric every PR must keep non-zero.
  constexpr unsigned kNetConns = 64, kNetDepth = 16;
  double net_get_mops, net_put_mops;
  uint64_t net_batched_gets, net_batched_puts;
  {
    Store net_store;
    bench::NetDriveConfig cfg;
    cfg.nconns = kNetConns;
    cfg.depth = kNetDepth;
    cfg.keyspace = std::min<uint64_t>(loaded, 200000);
    cfg.threads = std::min(e.threads, kNetConns);
    cfg.secs = e.secs;
    {
      Store::Session s(net_store, 0);
      for (uint64_t i = 0; i < cfg.keyspace; ++i) {
        net_store.put(decimal_key(i), {{0, "12345678"}}, s);
      }
    }
    Server server(net_store, Server::Options{0, e.threads});
    server.start();
    net_get_mops = bench::drive_gets(server.port(), cfg);
    net_batched_gets = server.batched_gets();
    // Write-side serving: same offered load shape with single-put frames, so
    // every server-side write batch is cross-connection coalescing into
    // Store::multiput (the kNetBatchedPuts trajectory metric).
    net_put_mops = bench::drive_puts(server.port(), cfg);
    net_batched_puts = server.batched_puts();
    server.stop();
  }

  std::string json;
  char buf[256];
  auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    json += buf;
  };
  add("{\n");
  add("  \"bench\": \"micro_throughput\",\n");
  add("  \"tree\": \"masstree\",\n");
  add("  \"keys\": %llu,\n", static_cast<unsigned long long>(loaded));
  add("  \"threads\": %u,\n", e.threads);
  add("  \"secs_per_phase\": %.2f,\n", e.secs);
  add("  \"metrics\": {\n");
  add("    \"insert_mops\": %.4f,\n", insert_mops);
  add("    \"get_uniform_mops\": %.4f,\n", get_uniform_mops);
  add("    \"multiget_mops\": %.4f,\n", multiget_mops);
  add("    \"multiget_batch\": %zu,\n", kMultigetBatch);
  add("    \"multiput_mops\": %.4f,\n", multiput_mops);
  add("    \"multiput_batch\": %zu,\n", kMultiputBatch);
  add("    \"put_seq_mops\": %.4f,\n", put_seq_mops);
  add("    \"multiput_speedup\": %.3f,\n", multiput_speedup);
  add("    \"scan_mops\": %.4f,\n", scan_mops);
  add("    \"scan_len\": %zu,\n", kScanLen);
  add("    \"update_uniform_mops\": %.4f,\n", update_mops);
  add("    \"put_unlogged_mops\": %.4f,\n", put_unlogged_mops);
  add("    \"put_logged_mops\": %.4f,\n", put_logged_mops);
  add("    \"log_overhead_pct\": %.2f,\n", log_overhead_pct);
  add("    \"log_bytes_per_op\": %.2f,\n", mix.bytes_per_op());
  add("    \"log_bytes_saved_pct\": %.2f,\n", mix.saved_vs_v1_pct());
  add("    \"log_overhead_1kb_pct\": %.2f,\n", log_overhead_1kb_pct);
  add("    \"log_1kb_bytes_per_op\": %.2f,\n", kb.bytes_per_op());
  add("    \"log_1kb_compression_ratio\": %.3f,\n", kb.compression_ratio());
  add("    \"ycsb_a_zipfian_mops\": %.4f,\n", ycsb_a_mops);
  add("    \"net_get_mops\": %.4f,\n", net_get_mops);
  add("    \"net_conns\": %u,\n", kNetConns);
  add("    \"net_pipeline_depth\": %u,\n", kNetDepth);
  add("    \"net_batched_gets\": %llu,\n",
      static_cast<unsigned long long>(net_batched_gets));
  add("    \"net_put_mops\": %.4f,\n", net_put_mops);
  add("    \"net_batched_puts\": %llu,\n",
      static_cast<unsigned long long>(net_batched_puts));
  add("    \"zipf_get_mops\": %.4f,\n", zipf_get_mops);
  add("    \"cache_hit_pct\": %.2f,\n", cache_hit_pct);
  add("    \"cache_capacity\": %zu\n", rcache.capacity());
  add("  }\n");
  add("}\n");

  if (argc > 1) {
    FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", argv[1]);
  }
  std::fputs(json.c_str(), stdout);
  return 0;
}
