// Figure 8 — factor analysis (§6.2): "Contributions of design features to
// Masstree's performance. Design features are cumulative. Measurements use 16
// cores and each server thread generates its own load (no clients or network
// traffic). Bar numbers give throughput relative to the binary tree running
// the get workload."
//
// Ladder: Binary -> +Flow -> +Superpage -> +IntCmp -> 4-tree -> B-tree ->
//         +Prefetch -> +Permuter -> Masstree, on 1-to-10-byte decimal keys.
// Paper shape (16 cores, 140M keys): get 1.13 / 1.16 / 1.48 / 1.70 / 2.40 /
// 2.11 / 2.62 / 2.72 / 2.93 Mops; put 1.00 / 0.99 / 1.36 / 1.68 / 2.42 /
// 2.51 / 3.18 / 3.19 / 3.33 Mops.

#include <functional>
#include <memory>

#include "baselines/binary_tree.h"
#include "baselines/fast_btree.h"
#include "baselines/four_tree.h"
#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

using bench::Env;

struct Result {
  double get_mops;
  double put_mops;
};

// Measures a structure via insert/get closures. Threads prefill `e.keys`
// (put phase measured on the tail of an empty structure per the paper), then
// run a timed uniform get phase.
template <typename InsertFn, typename GetFn>
Result measure(const Env& e, InsertFn&& do_insert, GetFn&& do_get) {
  Result r;
  // Put phase: timed inserts of the deterministic key space from empty.
  std::atomic<uint64_t> next_index{0};
  r.put_mops = bench::timed_mops(e.threads, e.secs, [&](unsigned, const std::atomic<bool>& stop) {
    uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t chunk = next_index.fetch_add(512, std::memory_order_relaxed);
      for (uint64_t i = chunk; i < chunk + 512; ++i) {
        do_insert(decimal_key(i % e.keys), i);
        ++ops;
      }
    }
    return ops;
  });
  // Make sure the whole key space is present for the get phase.
  uint64_t inserted = next_index.load();
  for (uint64_t i = inserted; i < e.keys; ++i) {
    do_insert(decimal_key(i), i);
  }
  r.get_mops = bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    Rng rng(17 + t);
    uint64_t ops = 0, found = 0;
    uint64_t v;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 256; ++i) {
        found += do_get(decimal_key(rng.next_range(e.keys)), &v) ? 1 : 0;
        ++ops;
      }
    }
    return ops;
  });
  return r;
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("Figure 8: factor analysis (Binary -> Masstree)", e);

  struct Row {
    const char* name;
    Result r;
  };
  std::vector<Row> rows;

  {
    // "Binary": lock-free binary tree, system allocator, memcmp keys.
    BinaryTree<MallocNodeAlloc, false> tree;
    rows.push_back({"Binary", measure(
                                  e,
                                  [&](const std::string& k, uint64_t v) {
                                    thread_local ThreadContext ti;
                                    tree.insert(k, v, &ti.arena());
                                  },
                                  [&](const std::string& k, uint64_t* v) {
                                    return tree.get(k, v);
                                  })});
  }
  {
    // "+Flow": same tree, Flow allocator without superpages.
    Flow flow{FlowConfig{.use_superpages = false}};
    BinaryTree<FlowNodeAlloc, false> tree;
    rows.push_back({"+Flow", measure(
                                 e,
                                 [&](const std::string& k, uint64_t v) {
                                   thread_local ThreadContext ti(EpochManager::global(), flow);
                                   tree.insert(k, v, &ti.arena());
                                 },
                                 [&](const std::string& k, uint64_t* v) {
                                   return tree.get(k, v);
                                 })});
  }
  {
    // "+Superpage": Flow with 2 MB superpage-backed chunks.
    Flow flow{FlowConfig{.use_superpages = true}};
    BinaryTree<FlowNodeAlloc, false> tree;
    rows.push_back({"+Superpage", measure(
                                      e,
                                      [&](const std::string& k, uint64_t v) {
                                        thread_local ThreadContext ti(EpochManager::global(),
                                                                      flow);
                                        tree.insert(k, v, &ti.arena());
                                      },
                                      [&](const std::string& k, uint64_t* v) {
                                        return tree.get(k, v);
                                      })});
  }
  {
    // "+IntCmp": byte-swapped integer key comparison.
    BinaryTree<FlowNodeAlloc, true> tree;
    rows.push_back({"+IntCmp", measure(
                                   e,
                                   [&](const std::string& k, uint64_t v) {
                                     thread_local ThreadContext ti;
                                     tree.insert(k, v, &ti.arena());
                                   },
                                   [&](const std::string& k, uint64_t* v) {
                                     return tree.get(k, v);
                                   })});
  }
  {
    ThreadContext setup;
    FourTree tree(setup);
    rows.push_back({"4-tree", measure(
                                  e,
                                  [&](const std::string& k, uint64_t v) {
                                    thread_local ThreadContext ti;
                                    tree.insert(k, v, ti);
                                  },
                                  [&](const std::string& k, uint64_t* v) {
                                    return tree.get(k, v);
                                  })});
  }
  {
    ThreadContext setup;
    BtreePlain tree(setup);
    rows.push_back({"B-tree", measure(
                                  e,
                                  [&](const std::string& k, uint64_t v) {
                                    thread_local ThreadContext ti;
                                    tree.insert(k, v, ti);
                                  },
                                  [&](const std::string& k, uint64_t* v) {
                                    thread_local ThreadContext ti;
                                    return tree.get(k, v, ti);
                                  })});
  }
  {
    ThreadContext setup;
    BtreePrefetch tree(setup);
    rows.push_back({"+Prefetch", measure(
                                     e,
                                     [&](const std::string& k, uint64_t v) {
                                       thread_local ThreadContext ti;
                                       tree.insert(k, v, ti);
                                     },
                                     [&](const std::string& k, uint64_t* v) {
                                       thread_local ThreadContext ti;
                                       return tree.get(k, v, ti);
                                     })});
  }
  {
    ThreadContext setup;
    BtreePermuter tree(setup);
    rows.push_back({"+Permuter", measure(
                                     e,
                                     [&](const std::string& k, uint64_t v) {
                                       thread_local ThreadContext ti;
                                       tree.insert(k, v, ti);
                                     },
                                     [&](const std::string& k, uint64_t* v) {
                                       thread_local ThreadContext ti;
                                       return tree.get(k, v, ti);
                                     })});
  }
  {
    ThreadContext setup;
    Tree tree(setup);
    rows.push_back({"Masstree", measure(
                                    e,
                                    [&](const std::string& k, uint64_t v) {
                                      thread_local ThreadContext ti;
                                      uint64_t old;
                                      tree.insert(k, v, &old, ti);
                                    },
                                    [&](const std::string& k, uint64_t* v) {
                                      thread_local ThreadContext ti;
                                      return tree.get(k, v, ti);
                                    })});
  }

  double base_get = rows[0].r.get_mops;
  std::printf("\n%-14s %-28s %-28s\n", "variant", "get", "put");
  for (const auto& row : rows) {
    print_row(row.name, row.r.get_mops, row.r.put_mops, row.r.get_mops / base_get,
              row.r.put_mops / base_get);
  }
  std::printf("\npaper (relative to Binary get): get 1.13 1.16 1.48 1.70 2.40 2.11 2.62 "
              "2.72 2.93 | put 1.00 0.99 1.36 1.68 2.42 2.51 3.18 3.19 3.33\n");
  return 0;
}
