// Ablation A1 — node size / fanout (§4.2): "Up to a point, this allows
// larger tree nodes to be fetched in the same amount of time as smaller
// ones; larger nodes have wider fanout and thus reduce tree height. On our
// hardware, tree nodes of four cache lines (256 bytes, which allows a fanout
// of 15) provide the highest total performance."
//
// Sweep border/interior width 3 / 7 / 15 with prefetch on and off. (Widths
// beyond 15 would need >4-bit permuter subfields — the same design limit the
// published system has.)

#include "bench/common.h"
#include "core/tree.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

template <int W, bool P>
struct WidthConfig : DefaultConfig {
  static constexpr int kLeafWidth = W;
  static constexpr int kInteriorWidth = W;
  static constexpr bool kPrefetch = P;
};

struct Result {
  double get_mops;
  double put_mops;
};

template <typename Config>
Result run(const bench::Env& e) {
  ThreadContext setup;
  BasicTree<Config> tree(setup);
  Result r;
  std::atomic<uint64_t> next{0};
  r.put_mops =
      bench::timed_mops(e.threads, e.secs, [&](unsigned, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        uint64_t ops = 0, old;
        while (!stop.load(std::memory_order_relaxed)) {
          uint64_t chunk = next.fetch_add(256, std::memory_order_relaxed);
          for (uint64_t i = chunk; i < chunk + 256; ++i) {
            tree.insert(decimal_key(i % e.keys), i, &old, ti);
            ++ops;
          }
        }
        return ops;
      });
  {
    uint64_t old;
    for (uint64_t i = next.load(); i < e.keys; ++i) {
      tree.insert(decimal_key(i), i, &old, setup);
    }
  }
  r.get_mops =
      bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
        thread_local ThreadContext ti;
        Rng rng(61 + t);
        uint64_t ops = 0, v;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 256; ++i) {
            tree.get(decimal_key(rng.next_range(e.keys)), &v, ti);
            ++ops;
          }
        }
        return ops;
      });
  return r;
}

}  // namespace
}  // namespace masstree

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("Ablation: node width (fanout) x prefetch", e);
  std::printf("%-24s %-14s %-14s\n", "config", "get Mops", "put Mops");

  struct Row {
    const char* name;
    Result r;
  };
  std::vector<Row> rows;
  rows.push_back({"width 3,  no prefetch", run<WidthConfig<3, false>>(e)});
  rows.push_back({"width 3,  prefetch", run<WidthConfig<3, true>>(e)});
  rows.push_back({"width 7,  no prefetch", run<WidthConfig<7, false>>(e)});
  rows.push_back({"width 7,  prefetch", run<WidthConfig<7, true>>(e)});
  rows.push_back({"width 15, no prefetch", run<WidthConfig<15, false>>(e)});
  rows.push_back({"width 15, prefetch", run<WidthConfig<15, true>>(e)});
  for (const auto& row : rows) {
    std::printf("%-24s %-14.3f %-14.3f\n", row.name, row.r.get_mops, row.r.put_mops);
  }
  std::printf("\npaper's design point: widest node (4 cache lines, fanout 15) + prefetch "
              "is best overall\n");
  return 0;
}
