// Ablation A4 — retry rates (§6.2 / §6.4): "in an insert test with 8
// threads, less than 1 get in 10^6 had to retry from the root due to a
// concurrent split. ... concurrent inserts are observed ~15x more frequently
// than splits. It is simple to handle them locally, so Masstree maintains
// separate split and insert counters to distinguish the cases."
//
// Mixed insert+get run; reports per-million retry rates from the hot-path
// counters (split-caused root retries must be orders of magnitude rarer than
// local insert retries). Interleaved multiget batches report the same rates
// for the §4.8 pipelined path (Counter::kMultigetRetry / kMultigetBatches),
// and interleaved range scans report the ScanCursor's chain-walk health under
// the same churn: node snapshots vs snapshot retries vs reach_border
// re-descents (kScanNodes / kScanRetries / kScanRedescents). Chain walking
// is working iff re-descents stay a small fraction of node visits.
//
// The put-heavy zipf churn section reports the write-side pipeline's
// counters under the same pressure (kMultiputBatches / kMultiputRetries),
// asserts the record cache's hit/miss accounting stays exact with batched
// writers (hits + misses == gets feeds the exit code), and a short
// event-loop burst reports kNetBatchedPuts — cross-connection write
// coalescing into Store::multiput.

#include <filesystem>
#include <span>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "bench/net_driver.h"
#include "core/tree.h"
#include "kvstore/store.h"
#include "net/server.h"
#include "util/rand.h"
#include "workload/keys.h"

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(1000000);
  print_header("Ablation: reader retry rates under concurrent inserts", e);

  ThreadContext setup;
  Tree tree(setup);
  uint64_t per_thread = e.keys;
  constexpr size_t kBatch = 16;
  std::atomic<uint64_t> root_retries{0}, local_retries{0}, forwards{0}, splits{0}, gets{0};
  std::atomic<uint64_t> mg_retries{0}, mg_batches{0}, mg_gets{0};
  std::atomic<uint64_t> sc_pairs{0}, sc_nodes{0}, sc_retries{0}, sc_redescents{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < e.threads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      Rng rng(91 + t);
      uint64_t old, v;
      std::string batch_keys[kBatch];
      Tree::GetRequest reqs[kBatch];
      size_t pending = 0;
      uint64_t mg_ops = 0;
      uint64_t scan_pairs = 0;
      for (uint64_t i = 0; i < per_thread; ++i) {
        tree.insert(decimal_key(rng.next()), i, &old, ti);
        tree.get(decimal_key(rng.next()), &v, ti);
        // Accumulate keys into a batch; every kBatch iterations run the
        // pipelined path so its retries are measured under the same churn.
        batch_keys[pending] = decimal_key(rng.next());
        reqs[pending] = Tree::GetRequest{batch_keys[pending], 0, false};
        if (++pending == kBatch) {
          tree.multiget(std::span<Tree::GetRequest>(reqs, kBatch), ti);
          mg_ops += kBatch;
          pending = 0;
        }
        // Every 64 iterations run one short range scan, so the cursor's
        // chain-walk/retry/re-descent rates are measured under the same
        // split churn as the point ops.
        if ((i & 63) == 0) {
          uint64_t sink = 0;
          scan_pairs += tree.scan_batch(
              decimal_key(rng.next()), 100,
              [&](std::string_view k, uint64_t lv) {
                sink += lv + k.size();
                return true;
              },
              ti);
          asm volatile("" : : "r"(sink) : "memory");
        }
      }
      // multiget's cursors report retries via kMultigetRetry only, so the
      // kGet* rates below stay pure point-get.
      root_retries += ti.counters().get(Counter::kGetRetryFromRoot);
      local_retries += ti.counters().get(Counter::kGetRetryLocal);
      forwards += ti.counters().get(Counter::kGetForward);
      splits += ti.counters().get(Counter::kPutSplit);
      gets += per_thread;
      mg_retries += ti.counters().get(Counter::kMultigetRetry);
      mg_batches += ti.counters().get(Counter::kMultigetBatches);
      mg_gets += mg_ops;
      sc_pairs += scan_pairs;
      sc_nodes += ti.counters().get(Counter::kScanNodes);
      sc_retries += ti.counters().get(Counter::kScanRetries);
      sc_redescents += ti.counters().get(Counter::kScanRedescents);
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  double per_m = 1e6 / static_cast<double>(gets.load());
  std::printf("gets executed:                %llu\n",
              static_cast<unsigned long long>(gets.load()));
  std::printf("splits performed:             %llu\n",
              static_cast<unsigned long long>(splits.load()));
  std::printf("root retries  / M gets:       %8.2f   (paper: < 1)\n",
              static_cast<double>(root_retries.load()) * per_m);
  std::printf("local retries / M gets:       %8.2f   (paper: ~15x the split rate)\n",
              static_cast<double>(local_retries.load()) * per_m);
  std::printf("B-link forwards / M gets:     %8.2f\n",
              static_cast<double>(forwards.load()) * per_m);
  double ratio = root_retries.load() == 0
                     ? 0.0
                     : static_cast<double>(local_retries.load()) /
                           static_cast<double>(root_retries.load());
  std::printf("local/root retry ratio:       %8.2f\n", ratio);

  double mg_per_m =
      mg_gets.load() == 0 ? 0.0 : 1e6 / static_cast<double>(mg_gets.load());
  std::printf("multiget batches:             %llu (batch=%zu)\n",
              static_cast<unsigned long long>(mg_batches.load()), kBatch);
  std::printf("multiget retries / M gets:    %8.2f   (pipelined cursors, §4.8)\n",
              static_cast<double>(mg_retries.load()) * mg_per_m);

  double per_knode = sc_nodes.load() == 0
                         ? 0.0
                         : 1e3 / static_cast<double>(sc_nodes.load());
  std::printf("scan pairs emitted:           %llu (len=100 interleaved scans)\n",
              static_cast<unsigned long long>(sc_pairs.load()));
  std::printf("scan node snapshots:          %llu\n",
              static_cast<unsigned long long>(sc_nodes.load()));
  std::printf("scan retries / K nodes:       %8.2f   (snapshot re-validations)\n",
              static_cast<double>(sc_retries.load()) * per_knode);
  std::printf("scan redescents / K nodes:    %8.2f   (chain walk must dominate)\n",
              static_cast<double>(sc_redescents.load()) * per_knode);

  // ---- §5 logging counters under a put-heavy churn mix ----
  // 50% put / 25% remove / 25% get over a shared key space, per-session log
  // shards on: the wait-free append path's health is three numbers — every
  // write logged (kLogAppends), zero steady-state allocations (kLogAllocs
  // after the warmup reset), and stalls (a producer outran its logging
  // thread) rare enough to be a curiosity, not a cost.
  std::string log_dir =
      std::filesystem::temp_directory_path().string() + "/abl-retry-logs";
  std::filesystem::remove_all(log_dir);
  Store::Options sopt;
  sopt.log_dir = log_dir;
  std::atomic<uint64_t> log_appends{0}, log_stalls{0}, log_allocs{0}, log_writes{0};
  std::atomic<uint64_t> log_physical{0}, log_logical{0}, log_compressed{0};
  {
    Store store(sopt);
    // Value mix for puts: small (below the compression threshold), large
    // compressible (the lz fast path), large incompressible (the bail-out
    // path) — the kLogBytes* accounting below must stay coherent across all
    // three, not just the friendly case.
    std::string v_small = "churn!!!";
    std::string v_comp;
    for (int i = 0; i < 64; ++i) {
      v_comp += "compressible-segment-" + std::to_string(i % 5);
    }
    std::string v_rand(1500, '\0');
    {
      Rng vr(4242);
      for (auto& c : v_rand) {
        c = static_cast<char>(vr.next());
      }
    }
    const std::string* vals[4] = {&v_small, &v_small, &v_comp, &v_rand};
    std::vector<std::thread> churn;
    for (unsigned t = 0; t < e.threads; ++t) {
      churn.emplace_back([&, t] {
        Store::Session s(store, t);
        Rng rng(7000 + t);
        std::vector<std::string> out;
        // Warmup claims the shard (two arena-half allocations), then the
        // counters reset so steady state is measured alone.
        for (int i = 0; i < 1024; ++i) {
          store.put(decimal_key(rng.next_range(e.keys)), {{0, "churn!!!"}}, s);
        }
        s.ti().counters().reset();
        uint64_t writes = 0;
        for (uint64_t i = 0; i < per_thread / 4; ++i) {
          uint64_t k = rng.next_range(e.keys);
          switch (rng.next() & 3) {
            case 0:
            case 1:
              store.put(decimal_key(k), {{0, *vals[rng.next() & 3]}}, s);
              ++writes;
              break;
            case 2:
              if (store.remove(decimal_key(k), s)) {
                ++writes;
              }
              break;
            default:
              store.get(decimal_key(k), {}, &out, s);
          }
        }
        log_appends += s.ti().counters().get(Counter::kLogAppends);
        log_stalls += s.ti().counters().get(Counter::kLogStalls);
        log_allocs += s.ti().counters().get(Counter::kLogAllocs);
        log_physical += s.ti().counters().get(Counter::kLogBytesPhysical);
        log_logical += s.ti().counters().get(Counter::kLogBytesLogical);
        log_compressed += s.ti().counters().get(Counter::kLogCompressedRecords);
        log_writes += writes;
      });
    }
    for (auto& th : churn) {
      th.join();
    }
    Store::LogTotals lt = store.log_totals();
    double per_m_app = log_appends.load() == 0
                           ? 0.0
                           : 1e6 / static_cast<double>(log_appends.load());
    std::printf("log appends (kLogAppends):    %llu (one per put/remove: %llu writes)\n",
                static_cast<unsigned long long>(log_appends.load()),
                static_cast<unsigned long long>(log_writes.load()));
    std::printf("log stalls / M appends:       %8.2f   (kLogStalls: full double-buffer)\n",
                static_cast<double>(log_stalls.load()) * per_m_app);
    std::printf("log allocs, steady state:     %8llu   (kLogAllocs: must be 0)\n",
                static_cast<unsigned long long>(log_allocs.load()));
    std::printf("log flush bytes:              %llu (kLogFlushBytes across %llu group "
                "commits)\n",
                static_cast<unsigned long long>(lt.flush_bytes),
                static_cast<unsigned long long>(lt.flushes));
    double bytes_per_op =
        log_appends.load() == 0
            ? 0.0
            : static_cast<double>(log_physical.load()) /
                  static_cast<double>(log_appends.load());
    double ratio = log_physical.load() == 0
                       ? 1.0
                       : static_cast<double>(log_logical.load()) /
                             static_cast<double>(log_physical.load());
    std::printf("log bytes physical:           %llu (kLogBytesPhysical: %.1f bytes/op)\n",
                static_cast<unsigned long long>(log_physical.load()), bytes_per_op);
    std::printf("log bytes logical:            %llu (kLogBytesLogical: %.2fx compression)\n",
                static_cast<unsigned long long>(log_logical.load()), ratio);
    std::printf("log compressed records:       %llu (kLogCompressedRecords, %.1f%% of appends)\n",
                static_cast<unsigned long long>(log_compressed.load()),
                log_appends.load() == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(log_compressed.load()) /
                          static_cast<double>(log_appends.load()));
  }
  std::filesystem::remove_all(log_dir);

  // ---- record-cache counters under a put-heavy skewed churn mix ----
  // Zipfian (theta=0.99) gets through the record cache while the same
  // threads hammer the same hot keys with BATCHED writes — half the ops are
  // multiput batches (puts + removes, §4.8 write side), so the pipelined
  // writer's retry rate and the cache's invalidation behavior are measured
  // together. The tracked numbers are the invalidation rate (validated hits
  // killed because a writer touched the cached slot's border version), the
  // CLOCK eviction rate under deliberate capacity pressure, and the
  // multiput batch/retry counters under the same churn. Every cached get is
  // exactly one hit or one miss — hits + misses == gets is asserted below
  // (the exit code), proving the batched write path never corrupts the
  // cache's hit/miss accounting.
  std::atomic<uint64_t> c_hits{0}, c_misses{0}, c_inval{0}, c_evict{0}, c_gets{0};
  std::atomic<uint64_t> mp_batches{0}, mp_retries{0}, mp_writes{0};
  {
    RecordCache<Tree::Config> cache(RecordCache<Tree::Config>::Config{1 << 12, 2});
    tree.set_record_cache(&cache);
    std::vector<std::thread> churn2;
    for (unsigned t = 0; t < e.threads; ++t) {
      churn2.emplace_back([&, t] {
        ThreadContext ti;
        uint64_t b0 = ti.counters().get(Counter::kMultiputBatches);
        uint64_t r0 = ti.counters().get(Counter::kMultiputRetries);
        Rng rng(9100 + t);
        SkewGen gen = SkewGen::zipf(e.keys, 0.99, 9300 + t);
        uint64_t v;
        uint64_t ngets = 0, nwrites = 0;
        std::string wkeys[kBatch];
        Tree::PutRequest wreqs[kBatch];
        size_t wpend = 0;
        for (uint64_t i = 0; i < per_thread / 2; ++i) {
          uint64_t k = gen.next_index();
          if (rng.next() & 1) {
            // Accumulate hot-key writes; every kBatch of them goes through
            // one pipelined multiput (~1/8 removes).
            wkeys[wpend] = decimal_key(k);
            wreqs[wpend] = Tree::PutRequest{wkeys[wpend], i};
            wreqs[wpend].remove = (rng.next() & 7) == 0;
            if (++wpend == kBatch) {
              tree.multiput(std::span<Tree::PutRequest>(wreqs, kBatch), ti);
              nwrites += kBatch;
              wpend = 0;
            }
          } else {
            tree.get(decimal_key(k), &v, ti);
            ++ngets;
          }
        }
        c_hits += ti.counters().get(Counter::kCacheHits);
        c_misses += ti.counters().get(Counter::kCacheMisses);
        c_inval += ti.counters().get(Counter::kCacheInvalidations);
        c_evict += ti.counters().get(Counter::kCacheEvictions);
        c_gets += ngets;
        mp_batches += ti.counters().get(Counter::kMultiputBatches) - b0;
        mp_retries += ti.counters().get(Counter::kMultiputRetries) - r0;
        mp_writes += nwrites;
      });
    }
    for (auto& th : churn2) {
      th.join();
    }
    tree.set_record_cache(nullptr);
  }
  double c_per_m =
      c_gets.load() == 0 ? 0.0 : 1e6 / static_cast<double>(c_gets.load());
  double lookups = static_cast<double>(c_hits.load() + c_misses.load());
  std::printf("cache gets (zipf 0.99 churn): %llu (capacity=%u, hit_pct=%.1f)\n",
              static_cast<unsigned long long>(c_gets.load()), 1u << 12,
              lookups == 0.0 ? 0.0 : 100.0 * static_cast<double>(c_hits.load()) / lookups);
  std::printf("cache hits / M gets:          %8.0f   (kCacheHits)\n",
              static_cast<double>(c_hits.load()) * c_per_m);
  std::printf("cache misses / M gets:        %8.0f   (kCacheMisses)\n",
              static_cast<double>(c_misses.load()) * c_per_m);
  std::printf("cache invalidations / M gets: %8.2f   (kCacheInvalidations: version-killed hits)\n",
              static_cast<double>(c_inval.load()) * c_per_m);
  std::printf("cache evictions / M gets:     %8.2f   (kCacheEvictions: CLOCK displacement)\n",
              static_cast<double>(c_evict.load()) * c_per_m);
  double mp_per_m =
      mp_writes.load() == 0 ? 0.0 : 1e6 / static_cast<double>(mp_writes.load());
  std::printf("multiput batches:             %llu (kMultiputBatches, batch=%zu, %llu writes)\n",
              static_cast<unsigned long long>(mp_batches.load()), kBatch,
              static_cast<unsigned long long>(mp_writes.load()));
  std::printf("multiput retries / M writes:  %8.2f   (kMultiputRetries: per-key fallbacks)\n",
              static_cast<double>(mp_retries.load()) * mp_per_m);
  bool cache_accounting_ok = c_hits.load() + c_misses.load() == c_gets.load();
  std::printf("cache hits+misses == gets:    %s   (batched fill-path accounting)\n",
              cache_accounting_ok ? "OK" : "VIOLATED");

  // ---- cross-connection write coalescing (kNetBatchedPuts) ----
  // A short burst of single-put frames from pipelined connections against a
  // 2-worker event-loop server: batched_puts mirrors Counter::kNetBatchedPuts
  // — puts that reached Store::multiput only because the worker coalesced
  // runs from DIFFERENT connections in one wakeup.
  {
    Store net_store;
    {
      Store::Session s(net_store, 0);
      for (uint64_t i = 0; i < 10000; ++i) {
        net_store.put(decimal_key(i), {{0, "seed"}}, s);
      }
    }
    Server server(net_store, Server::Options{0, 2});
    server.start();
    NetDriveConfig cfg;
    cfg.nconns = 16;
    cfg.depth = 4;
    cfg.keyspace = 10000;
    cfg.threads = std::min(e.threads, 4u);
    cfg.secs = std::min(e.secs, 1.0);
    double net_put_mops = drive_puts(server.port(), cfg);
    uint64_t batched_puts = server.batched_puts();
    server.stop();
    std::printf("net puts served:              %.3f Mops (16 conns, single-put frames)\n",
                net_put_mops);
    std::printf("net batched puts:             %llu (kNetBatchedPuts: cross-connection "
                "coalescing)\n",
                static_cast<unsigned long long>(batched_puts));
  }

  return log_allocs.load() == 0 && cache_accounting_ok ? 0 : 1;
}
