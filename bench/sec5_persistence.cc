// §5 persistence numbers: checkpoint write time, recovery time, and put
// throughput while a checkpoint runs concurrently.
//
// Paper: "It takes Masstree 58 seconds to create a checkpoint of 140 million
// key-value pairs (9.1 GB of data in total), and 38 seconds to recover from
// that checkpoint. ... When run concurrently with a checkpoint, a put-only
// workload achieves 72% of its ordinary throughput due to disk contention."
// Shape targets: recovery faster than checkpointing; concurrent checkpoint
// costs a sizable minority of put throughput.

#include <filesystem>

#include "bench/common.h"
#include "kvstore/store.h"
#include "util/rand.h"
#include "workload/keys.h"

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(500000);
  print_header("Section 5: logging, checkpoint, recovery", e);

  namespace fs = std::filesystem;
  std::string tmp = fs::temp_directory_path().string();
  std::string log_dir = tmp + "/sec5-logs";
  std::string ckpt_dir = tmp + "/sec5-ckpt";
  fs::remove_all(log_dir);
  fs::remove_all(ckpt_dir);

  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 4;

  // ---- baseline put throughput (logging on) ----
  double put_mops;
  {
    Store store(opt);
    std::atomic<uint64_t> next{0};
    put_mops = timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
      Store::Session s(store, t);
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t chunk = next.fetch_add(128, std::memory_order_relaxed);
        for (uint64_t i = chunk; i < chunk + 128; ++i) {
          store.put(decimal_key(i), {{0, "12345678"}}, s);
          ++ops;
        }
      }
      return ops;
    });
    std::printf("put throughput, logging on:              %7.3f Mops\n", put_mops);
  }

  // ---- put throughput without logging (cost of persistence) ----
  {
    Store store;
    std::atomic<uint64_t> next{0};
    double nolog = timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
      Store::Session s(store, t);
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t chunk = next.fetch_add(128, std::memory_order_relaxed);
        for (uint64_t i = chunk; i < chunk + 128; ++i) {
          store.put(decimal_key(i), {{0, "12345678"}}, s);
          ++ops;
        }
      }
      return ops;
    });
    std::printf("put throughput, logging off:             %7.3f Mops (logging costs %.0f%%)\n",
                nolog, 100.0 * (1.0 - put_mops / nolog));
  }

  // ---- checkpoint write / recovery times ----
  fs::remove_all(log_dir);
  {
    Store store(opt);
    {
      Store::Session s(store, 0);
      for (uint64_t i = 0; i < e.keys; ++i) {
        store.put(decimal_key(i), {{0, "valuedata"}}, s);
      }
    }
    Stopwatch sw;
    bool ok = store.checkpoint(ckpt_dir, e.threads);
    double ckpt_secs = sw.elapsed_seconds();
    std::printf("checkpoint of %llu pairs:                 %6.2f s (%s)\n",
                static_cast<unsigned long long>(store.stats().keys), ckpt_secs,
                ok ? "ok" : "FAILED");

    // Post-checkpoint traffic so recovery must replay logs too.
    {
      Store::Session s(store, 1);
      for (uint64_t i = 0; i < e.keys / 10; ++i) {
        store.put(decimal_key(i), {{0, "freshdata"}}, s);
      }
    }
    store.sync_logs();

    Store recovered(opt);
    Stopwatch rw;
    auto res = recovered.recover(ckpt_dir, log_dir, e.threads);
    double rec_secs = rw.elapsed_seconds();
    std::printf("recovery (checkpoint + log replay):      %6.2f s "
                "(ckpt records %llu, log entries %llu)\n",
                rec_secs, static_cast<unsigned long long>(res.checkpoint_records),
                static_cast<unsigned long long>(res.log_entries_applied));
    std::printf("recover/checkpoint time ratio:           %6.2f (paper: 38s/58s = 0.66)\n",
                rec_secs / ckpt_secs);
  }

  // ---- put throughput during a concurrent checkpoint ----
  fs::remove_all(log_dir);
  fs::remove_all(ckpt_dir);
  {
    Store store(opt);
    {
      Store::Session s(store, 0);
      for (uint64_t i = 0; i < e.keys; ++i) {
        store.put(decimal_key(i), {{0, "valuedata"}}, s);
      }
    }
    std::atomic<bool> ckpt_running{true};
    std::thread ckpt([&] {
      // Loop checkpoints so the whole measurement overlaps one.
      while (ckpt_running.load(std::memory_order_acquire)) {
        store.checkpoint(ckpt_dir, 1);
      }
    });
    std::atomic<uint64_t> next{e.keys};
    double during = timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
      Store::Session s(store, t);
      uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t chunk = next.fetch_add(128, std::memory_order_relaxed);
        for (uint64_t i = chunk; i < chunk + 128; ++i) {
          store.put(decimal_key(i), {{0, "12345678"}}, s);
          ++ops;
        }
      }
      return ops;
    });
    ckpt_running = false;
    ckpt.join();
    std::printf("put throughput during checkpoint:        %7.3f Mops = %.0f%% of ordinary "
                "(paper: 72%%)\n",
                during, 100.0 * during / put_mops);
  }
  return 0;
}
