// §5 persistence numbers: the cost of logging, checkpoint write time,
// recovery time, and put throughput while a checkpoint runs concurrently.
//
// Paper: "Maintaining logs costs 9% in throughput for a typical put-heavy
// workload"; "It takes Masstree 58 seconds to create a checkpoint of 140
// million key-value pairs (9.1 GB of data in total), and 38 seconds to
// recover from that checkpoint. ... When run concurrently with a checkpoint,
// a put-only workload achieves 72% of its ordinary throughput due to disk
// contention." Shape targets: logging-on ≥ 90% of logging-off (the <10%
// claim), recovery faster than checkpointing, concurrent checkpoint costs a
// sizable minority of put throughput.
//
// This binary also enforces the write path's allocation discipline: after
// warmup (shard claimed, arena halves allocated) the append fast path must
// never allocate — Counter::kLogAllocs must stay zero or the process exits
// non-zero, same contract as sec3_scan's kScanAllocs gate.

#include <algorithm>
#include <filesystem>

#include "bench/common.h"
#include "kvstore/store.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace {

// Uniform fresh-key put workload with a per-thread warmup that claims the
// session's log shard (allocating its two arena halves), then a counter
// reset so the timed window measures the steady state. Returns Mops;
// accumulates post-warmup counter totals.
double put_workload(masstree::Store& store, const masstree::bench::Env& e,
                    std::atomic<uint64_t>& next, std::atomic<uint64_t>* steady_allocs,
                    std::atomic<uint64_t>* appends, std::atomic<uint64_t>* stalls) {
  using namespace masstree;
  return bench::timed_mops(e.threads, e.secs, [&](unsigned t, const std::atomic<bool>& stop) {
    Store::Session s(store, t);
    uint64_t ops = 0;
    uint64_t warm = next.fetch_add(2048, std::memory_order_relaxed);
    for (uint64_t i = warm; i < warm + 2048; ++i) {
      store.put(decimal_key(i), {{0, "12345678"}}, s);
      ++ops;
    }
    s.ti().counters().reset();  // warmup done: steady state starts here
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t chunk = next.fetch_add(128, std::memory_order_relaxed);
      for (uint64_t i = chunk; i < chunk + 128; ++i) {
        store.put(decimal_key(i), {{0, "12345678"}}, s);
        ++ops;
      }
    }
    if (steady_allocs != nullptr) {
      steady_allocs->fetch_add(s.ti().counters().get(Counter::kLogAllocs));
    }
    if (appends != nullptr) {
      appends->fetch_add(s.ti().counters().get(Counter::kLogAppends));
    }
    if (stalls != nullptr) {
      stalls->fetch_add(s.ti().counters().get(Counter::kLogStalls));
    }
    return ops;
  });
}

}  // namespace

int main() {
  using namespace masstree;
  using namespace masstree::bench;
  Env e = env(500000);
  print_header("Section 5: logging, checkpoint, recovery", e);

  namespace fs = std::filesystem;
  std::string tmp = fs::temp_directory_path().string();
  std::string log_dir = tmp + "/sec5-logs";
  std::string ckpt_dir = tmp + "/sec5-ckpt";
  fs::remove_all(log_dir);
  fs::remove_all(ckpt_dir);

  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 4;

  // ---- logging cost: alternate off/on, best of two runs each ----
  // Alternation equalizes allocator warm-up (Flow arenas are global, so
  // whichever config runs first would otherwise pay the cold-arena tax into
  // the comparison), and best-of-two filters scheduler interference on
  // small shared boxes.
  double nolog_mops = 0.0, put_mops = 0.0;
  std::atomic<uint64_t> steady_allocs{0}, appends{0}, stalls{0};
  uint64_t flush_bytes = 0;
  int log_errno = 0;
  for (int rep = 0; rep < 2; ++rep) {
    {
      Store store;
      std::atomic<uint64_t> next{0};
      nolog_mops = std::max(nolog_mops, put_workload(store, e, next, nullptr, nullptr, nullptr));
    }
    {
      Store store(opt);
      std::atomic<uint64_t> next{0};
      put_mops = std::max(
          put_mops, put_workload(store, e, next, rep == 0 ? &steady_allocs : nullptr,
                                 rep == 0 ? &appends : nullptr, rep == 0 ? &stalls : nullptr));
      flush_bytes += store.log_totals().flush_bytes;
      if (log_errno == 0) {
        log_errno = store.log_error();
      }
    }
    // Unlink the logs immediately: still-dirty pages are discarded instead
    // of bleeding writeback into the next measured phase.
    fs::remove_all(log_dir);
  }
  std::printf("put throughput, logging off:             %7.3f Mops\n", nolog_mops);
  std::printf("put throughput, logging on:              %7.3f Mops\n", put_mops);
  double overhead = 100.0 * (1.0 - put_mops / nolog_mops);
  std::printf("logging overhead:                        %6.1f%%   (paper: <10%%) -> %s\n",
              overhead, put_mops >= 0.90 * nolog_mops ? "OK" : "MISS");
  std::printf("appends %llu, writer flush bytes %llu, full-buffer stalls %llu\n",
              static_cast<unsigned long long>(appends.load()),
              static_cast<unsigned long long>(flush_bytes),
              static_cast<unsigned long long>(stalls.load()));
  std::printf("steady-state log allocations:            %llu (must be 0)\n",
              static_cast<unsigned long long>(steady_allocs.load()));
  if (log_errno != 0) {
    std::printf("log error: errno %d\n", log_errno);
  }

  // ---- checkpoint write / recovery times ----
  fs::remove_all(log_dir);
  {
    Store store(opt);
    {
      Store::Session s(store, 0);
      for (uint64_t i = 0; i < e.keys; ++i) {
        store.put(decimal_key(i), {{0, "valuedata"}}, s);
      }
    }
    Stopwatch sw;
    bool ok = store.checkpoint(ckpt_dir, e.threads);
    double ckpt_secs = sw.elapsed_seconds();
    std::printf("checkpoint of %llu pairs:                 %6.2f s (%s)\n",
                static_cast<unsigned long long>(store.stats().keys), ckpt_secs,
                ok ? "ok" : "FAILED");

    // Post-checkpoint traffic so recovery must replay logs too.
    {
      Store::Session s(store, 1);
      for (uint64_t i = 0; i < e.keys / 10; ++i) {
        store.put(decimal_key(i), {{0, "freshdata"}}, s);
      }
    }
    store.sync_logs();

    Store recovered(opt);
    Stopwatch rw;
    auto res = recovered.recover(ckpt_dir, log_dir, e.threads);
    double rec_secs = rw.elapsed_seconds();
    std::printf("recovery (checkpoint + log replay):      %6.2f s "
                "(ckpt records %llu, log entries %llu)\n",
                rec_secs, static_cast<unsigned long long>(res.checkpoint_records),
                static_cast<unsigned long long>(res.log_entries_applied));
    std::printf("recover/checkpoint time ratio:           %6.2f (paper: 38s/58s = 0.66)\n",
                rec_secs / ckpt_secs);
  }

  // ---- put throughput during a concurrent checkpoint ----
  fs::remove_all(log_dir);
  fs::remove_all(ckpt_dir);
  {
    Store store(opt);
    {
      Store::Session s(store, 0);
      for (uint64_t i = 0; i < e.keys; ++i) {
        store.put(decimal_key(i), {{0, "valuedata"}}, s);
      }
    }
    std::atomic<bool> ckpt_running{true};
    std::thread ckpt([&] {
      // Loop checkpoints so the whole measurement overlaps one.
      while (ckpt_running.load(std::memory_order_acquire)) {
        store.checkpoint(ckpt_dir, 1);
      }
    });
    std::atomic<uint64_t> next{e.keys};
    double during = put_workload(store, e, next, nullptr, nullptr, nullptr);
    ckpt_running = false;
    ckpt.join();
    std::printf("put throughput during checkpoint:        %7.3f Mops = %.0f%% of ordinary "
                "(paper: 72%%)\n",
                during, 100.0 * during / put_mops);
  }

  if (steady_allocs.load() != 0) {
    std::printf("FAIL: append fast path allocated in steady state\n");
    return 1;
  }
  return 0;
}
