// kv_service_demo: the network server and batching client (§5).
//
//   build/examples/kv_service_demo            # self-contained demo
//   build/examples/kv_service_demo 7777       # serve on a port, Ctrl-C to stop
//
// Without arguments, starts a Masstree server on an ephemeral loopback port,
// drives it with batched clients from multiple threads, and prints the
// round-trip results — the §3 "single client message can include many
// queries" operating mode. With a port argument it just serves, so you can
// connect your own Client.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "kvstore/store.h"
#include "net/client.h"
#include "net/server.h"

int main(int argc, char** argv) {
  using namespace masstree;

  Store store;
  Server::Options opt;
  opt.workers = 2;
  if (argc > 1) {
    opt.port = static_cast<uint16_t>(std::atoi(argv[1]));
  }
  Server server(store, opt);
  server.start();
  std::printf("masstree server listening on 127.0.0.1:%u (%u workers)\n", server.port(),
              opt.workers);

  if (argc > 1) {
    std::printf("serving until killed...\n");
    for (;;) {
      std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
  }

  // ---- demo traffic: several client threads, batched pipelines ----
  constexpr int kClients = 3, kKeysPerClient = 1000;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      // One batched message carrying 1000 puts.
      for (int i = 0; i < kKeysPerClient; ++i) {
        std::string key = "client" + std::to_string(c) + "/key" + std::to_string(i);
        client.put(key, {{0, "v" + std::to_string(i)}, {1, "owner" + std::to_string(c)}});
      }
      auto results = client.flush();
      std::printf("client %d: %zu puts acknowledged in one round trip\n", c,
                  results.size());
      // Batched reads back.
      for (int i = 0; i < kKeysPerClient; i += 100) {
        client.get("client" + std::to_string(c) + "/key" + std::to_string(i), {0});
      }
      results = client.flush();
      size_t hits = 0;
      for (const auto& r : results) {
        hits += r.status == NetStatus::kOk ? 1 : 0;
      }
      std::printf("client %d: %zu/%zu sampled gets hit\n", c, hits, results.size());
    });
  }
  for (auto& t : clients) {
    t.join();
  }

  // A cross-client range query through the same protocol.
  Client client(server.port());
  client.scan("client1/", 5, 1);
  auto res = client.flush();
  std::printf("\nscan from 'client1/' (owner column):\n");
  for (const auto& [k, v] : res[0].scan_items) {
    std::printf("  %-22s %s\n", k.c_str(), v.c_str());
  }

  std::printf("\nserver handled %llu operations total\n",
              static_cast<unsigned long long>(server.ops_served()));
  server.stop();
  return 0;
}
