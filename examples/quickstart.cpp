// Quickstart: the Masstree Store API in one file.
//
//   build/examples/quickstart
//
// Demonstrates the §3 interface: putc (multi-column puts), getc (column
// subsets), remove, and getrange (ordered scans), plus the per-thread
// Session handles that every operation takes.

#include <cstdio>
#include <string>
#include <vector>

#include "kvstore/store.h"

int main() {
  using namespace masstree;

  // A Store is the full system: the concurrent trie-of-B+trees over
  // multi-column rows. (Pass Options with log_dir to enable persistence —
  // see the durable_counter example.)
  Store store;

  // Each worker thread makes one Session: it carries the thread's epoch
  // slot, allocator arena, and log-partition assignment.
  Store::Session session(store, /*worker_id=*/0);

  // putc(k, v): column-indexed writes. Multi-column puts are atomic —
  // concurrent readers see all of the put's columns or none of them.
  store.put("user:alice", {{0, "Alice"}, {1, "alice@example.com"}, {2, "admin"}}, session);
  store.put("user:bob", {{0, "Bob"}, {1, "bob@example.com"}, {2, "user"}}, session);
  store.put("user:carol", {{0, "Carol"}, {1, "carol@example.com"}, {2, "user"}}, session);

  // getc(k): the whole row, or a column subset.
  std::vector<std::string> row;
  if (store.get("user:alice", {}, &row, session)) {
    std::printf("alice: name=%s email=%s role=%s\n", row[0].c_str(), row[1].c_str(),
                row[2].c_str());
  }
  if (store.get("user:bob", {2}, &row, session)) {
    std::printf("bob's role: %s\n", row[0].c_str());
  }

  // Updates touch only the named columns; others are preserved (§4.7's
  // copy-on-write rows).
  store.put("user:bob", {{2, "admin"}}, session);
  store.get("user:bob", {0, 2}, &row, session);
  std::printf("bob after promotion: name=%s role=%s\n", row[0].c_str(), row[1].c_str());

  // getrange(k, n): up to n pairs in key order starting at or after k.
  std::printf("\nusers in key order:\n");
  store.getrange(
      "user:", 10, /*col=*/0,
      [](std::string_view key, std::string_view name, const Row*) {
        std::printf("  %.*s -> %.*s\n", static_cast<int>(key.size()), key.data(),
                    static_cast<int>(name.size()), name.data());
        return true;
      },
      session);

  // Keys are arbitrary binary strings; embedded NULs are fine.
  std::string binary_key("bin\0key", 7);
  store.put(binary_key, {{0, "binary!"}}, session);
  if (store.get(binary_key, {0}, &row, session)) {
    std::printf("\nbinary key lookup: %s\n", row[0].c_str());
  }

  store.remove("user:carol", session);
  std::printf("carol removed: %s\n",
              store.get("user:carol", {}, &row, session) ? "still there?!" : "gone");

  TreeStats st = store.stats();
  std::printf("\ntree shape: %llu keys, %llu border nodes, %llu layers\n",
              static_cast<unsigned long long>(st.keys),
              static_cast<unsigned long long>(st.border_nodes),
              static_cast<unsigned long long>(st.layers));
  return 0;
}
