// url_index: the paper's motivating workload (§1).
//
//   build/examples/url_index
//
// "consider Bigtable, which stores information about Web pages under
//  permuted URL keys like 'edu.harvard.seas.www/news-events'. Such keys
//  group together information about a domain's sites, allowing more
//  interesting range queries, but many URLs will have long shared prefixes."
//
// We index a crawl of permuted URLs, then answer per-domain range queries.
// The long shared prefixes would unbalance a conventional B-tree's
// comparisons; Masstree's trie layers absorb them.

#include <cstdio>
#include <string>
#include <vector>

#include "kvstore/store.h"
#include "util/rand.h"

namespace {

// Reverse the host portion: www.seas.harvard.edu/x -> edu.harvard.seas.www/x
std::string permute_url(const std::string& host, const std::string& path) {
  std::string out;
  size_t end = host.size();
  for (;;) {
    size_t dot = host.rfind('.', end - 1);
    if (dot == std::string::npos) {
      out.append(host, 0, end);
      break;
    }
    out.append(host, dot + 1, end - dot - 1);
    out.push_back('.');
    end = dot;
  }
  out.push_back('/');
  out.append(path);
  return out;
}

}  // namespace

int main() {
  using namespace masstree;
  Store store;
  Store::Session session(store, 0);

  // A synthetic crawl: a handful of domains, many pages each.
  struct Site {
    const char* host;
    int pages;
  };
  const Site sites[] = {
      {"www.seas.harvard.edu", 40}, {"news.harvard.edu", 25},  {"www.eecs.mit.edu", 30},
      {"web.mit.edu", 20},          {"www.example.com", 10},
  };
  Rng rng(2012);
  uint64_t total = 0;
  for (const Site& site : sites) {
    for (int p = 0; p < site.pages; ++p) {
      std::string path = "page-" + std::to_string(rng.next_range(100000));
      std::string key = permute_url(site.host, path);
      store.put(key,
                {{0, "crawl-ts:" + std::to_string(1650000000 + p)},
                 {1, "len:" + std::to_string(rng.next_range(100000))}},
                session);
      ++total;
    }
  }
  std::printf("indexed %llu pages from %zu hosts\n\n",
              static_cast<unsigned long long>(total), sizeof(sites) / sizeof(sites[0]));

  // Range query: everything under *.harvard.edu — a prefix scan over the
  // permuted key space.
  const std::string domain = "edu.harvard.";
  std::printf("first 8 pages under %s*:\n", domain.c_str());
  store.getrange(
      domain, 8, 0,
      [&](std::string_view key, std::string_view col0, const Row*) {
        if (key.substr(0, domain.size()) != domain) {
          return false;  // left the domain: stop scanning
        }
        std::printf("  %-55.*s %.*s\n", static_cast<int>(key.size()), key.data(),
                    static_cast<int>(col0.size()), col0.data());
        return true;
      },
      session);

  // Count pages per domain with bounded scans.
  std::printf("\npages per permuted domain prefix:\n");
  for (const char* prefix : {"edu.harvard.", "edu.mit.", "com.example."}) {
    size_t count = 0;
    std::string p(prefix);
    store.getrange(
        p, ~size_t{0}, Store::kAllColumns,
        [&](std::string_view key, std::string_view, const Row*) {
          if (key.substr(0, p.size()) != p) {
            return false;
          }
          ++count;
          return true;
        },
        session);
    std::printf("  %-15s %zu\n", prefix, count);
  }

  TreeStats st = store.stats();
  std::printf("\nshared prefixes created %llu trie layers (%llu layer links)\n",
              static_cast<unsigned long long>(st.layers),
              static_cast<unsigned long long>(st.layer_links));
  return 0;
}
