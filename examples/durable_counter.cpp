// durable_counter: persistence and crash recovery (§5).
//
//   build/examples/durable_counter [state-dir]
//
// A set of named counters that survives restarts. Each run increments the
// counters, "crashes" (destroys the store without any clean shutdown
// handshake), and recovers from checkpoint + logs on the next run —
// exercising group-commit logging, checkpointing, and the §5 recovery
// procedure end to end. Run it a few times and watch the counts climb.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "kvstore/store.h"

int main(int argc, char** argv) {
  using namespace masstree;
  namespace fs = std::filesystem;

  std::string dir = argc > 1 ? argv[1] : "/tmp/masstree-durable-counter";
  std::string log_dir = dir + "/logs";
  std::string ckpt_dir = dir + "/checkpoint";
  fs::create_directories(log_dir);

  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 2;
  opt.logger.flush_interval_ms = 50;
  Store store(opt);

  // ---- recover whatever previous runs left behind ----
  auto res = store.recover(ckpt_dir, log_dir, /*nthreads=*/2);
  std::printf("recovered: checkpoint=%s (%llu records), %llu log entries replayed\n",
              res.used_checkpoint ? "yes" : "no",
              static_cast<unsigned long long>(res.checkpoint_records),
              static_cast<unsigned long long>(res.log_entries_applied));

  Store::Session session(store, 0);
  const char* counters[] = {"counter/starts", "counter/increments", "counter/answer"};

  // ---- read, increment, write back ----
  for (const char* name : counters) {
    std::vector<std::string> row;
    uint64_t value = 0;
    if (store.get(name, {0}, &row, session) && !row[0].empty()) {
      value = std::stoull(row[0]);
    }
    uint64_t bump = std::string_view(name).ends_with("answer") ? 42 - value % 42 : 1;
    value += bump;
    store.put(name, {{0, std::to_string(value)}}, session);
    std::printf("  %-22s -> %llu\n", name, static_cast<unsigned long long>(value));
  }

  // ---- checkpoint so logs can be truncated, then force the logs down ----
  if (!store.checkpoint(ckpt_dir, /*nworkers=*/2)) {
    std::printf("checkpoint failed!\n");
    return 1;
  }
  store.sync_logs();
  std::printf("checkpointed to %s; state is durable.\n", ckpt_dir.c_str());
  std::printf("(no clean shutdown follows — the next run recovers from disk)\n");
  // Simulated crash: the Store destructor frees memory but performs no
  // state-saving handshake; recovery does all the work next run.
  return 0;
}
