// Epoch-based memory reclamation (§4.6.1).
//
// "writers must not delete old values until all concurrent readers are done
//  examining them. We solve this garbage collection problem with read-copy
//  update techniques, namely a form of epoch-based reclamation [19]. All data
//  accessible to readers is freed using similar techniques."
//
// Scheme (Fraser-style, three logical phases):
//  * A global epoch counter advances monotonically.
//  * Each thread owns a registered slot. While executing an operation that may
//    touch reader-visible shared memory it "enters" the epoch by publishing
//    the current epoch in its slot (EpochGuard).
//  * Unlinked objects are retired with the epoch at unlink time. An object
//    retired at epoch e may be freed once every in-critical-section thread has
//    entered at an epoch strictly greater than e. Quiescent threads don't
//    block reclamation.
//
// The registry is a fixed array of cache-line-padded slots, so entering an
// epoch is two uncontended writes — readers never dirty shared lines.

#ifndef MASSTREE_EPOCH_EPOCH_H_
#define MASSTREE_EPOCH_EPOCH_H_

#include <atomic>
#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/compiler.h"

namespace masstree {

// A retired object awaiting reclamation.
struct LimboEntry {
  uint64_t epoch;
  void* ptr;
  void (*deleter)(void*);
};

class EpochManager;

// Per-thread reclamation state. Obtained from EpochManager::register_thread();
// all members except `active` are accessed only by the owning thread.
struct alignas(kCacheLineSize) EpochSlot {
  // Epoch published while inside a critical section; 0 when quiescent.
  std::atomic<uint64_t> active{0};
  std::atomic<bool> in_use{false};
  // A long-lived cooperative pin (the record cache's) that other threads may
  // force-rotate to the current epoch when they need reclamation to drain.
  // Such pins only slow the epoch for hit-rate availability; correctness
  // never depends on them lagging, so rotating one is always safe.
  std::atomic<bool> yieldable{false};

  // Owner-only state.
  unsigned depth = 0;               // EpochGuard nesting
  uint64_t ops_since_advance = 0;   // drives epoch advancement
  size_t reclaim_threshold = 0;     // next limbo size that triggers a reclaim
  std::vector<LimboEntry> limbo;    // retired, not yet freed
  EpochManager* manager = nullptr;

  char pad[kCacheLineSize];
};

class EpochManager {
 public:
  static constexpr unsigned kMaxThreads = 256;
  // Advance the global epoch after this many guarded operations per thread.
  static constexpr uint64_t kOpsPerAdvance = 4096;
  // Attempt reclamation when a thread's limbo list reaches this size.
  static constexpr size_t kLimboHighWater = 256;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  ~EpochManager() {
    // Process teardown: no concurrent threads remain, free everything.
    for (auto& slot : slots_) {
      drain(slot);
    }
  }

  // Process-wide instance. Trees default to this; tests may build their own.
  static EpochManager& global() {
    static EpochManager mgr;
    return mgr;
  }

  uint64_t current_epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Dedicated background advancement (§4.6.1 / masstree-beta's maintenance
  // thread): while at least one background advancer is registered, foreground
  // threads skip their amortized advance() — an all-slot scan — on both the
  // EpochGuard entry path and the retire high-water path; the background
  // thread calls advance() on its own cadence instead. Reclamation itself
  // stays with the owning thread (limbo lists are thread-local).
  void register_background_advancer() {
    background_advancers_.fetch_add(1, std::memory_order_release);
  }
  void unregister_background_advancer() {
    background_advancers_.fetch_sub(1, std::memory_order_release);
  }
  bool has_background_advancer() const {
    return background_advancers_.load(std::memory_order_relaxed) > 0;
  }

  // Gated advance (Fraser-style): the epoch may move from E to E+1 only once
  // every in-guard thread has published E. This gate is what makes epoch
  // comparison imply a happens-before edge: a reader seen at epoch >= E+1
  // entered through an advance that itself acquire-read every slot at E —
  // including, transitively, the retiring thread's guard exit — so it cannot
  // still hold references unlinked before that exit. An unconditional
  // fetch_add would let a reader "pass" a retirement it never synchronized
  // with (a ThreadSanitizer-visible use-after-free window on object reuse).
  // Returns true if the epoch moved.
  bool advance() {
    // Scanner side of the Dekker pattern (see min_active_epoch).
    full_fence();
    uint64_t cur = epoch_.load(std::memory_order_acquire);
    for (const auto& slot : slots_) {
      if (!slot.in_use.load(std::memory_order_acquire)) {
        continue;
      }
      uint64_t a = slot.active.load(std::memory_order_acquire);
      if (a != 0 && a != cur) {
        return false;  // someone is still inside an older epoch
      }
    }
    return epoch_.compare_exchange_strong(cur, cur + 1, std::memory_order_acq_rel);
  }

  // Claims a free slot. Thread-safe; aborts if more than kMaxThreads threads
  // register simultaneously.
  EpochSlot* register_thread() {
    for (auto& slot : slots_) {
      bool expected = false;
      if (!slot.in_use.load(std::memory_order_relaxed) &&
          slot.in_use.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
        slot.manager = this;
        slot.depth = 0;
        slot.ops_since_advance = 0;
        // A racing yield_pinned_slots() may have stored a stale epoch into a
        // slot mid-unregister; scrub it so the reused slot starts quiescent.
        slot.active.store(0, std::memory_order_relaxed);
        slot.yieldable.store(false, std::memory_order_relaxed);
        return &slot;
      }
    }
    assert(!"EpochManager: out of thread slots");
    return nullptr;
  }

  // Releases a slot. Remaining limbo objects are freed once safe; to keep
  // unregister simple we block until they are.
  void unregister_thread(EpochSlot* slot) {
    assert(slot->depth == 0);
    while (!slot->limbo.empty()) {
      advance();
      reclaim(*slot);
      if (!slot->limbo.empty()) {
        // A yieldable pin (the record cache's) may be what's gating advance();
        // rotate it forward rather than spinning against it forever.
        yield_pinned_slots();
        spin_pause();
      }
    }
    slot->in_use.store(false, std::memory_order_release);
  }

  // Force-rotate every yieldable pin to the current epoch (see
  // EpochSlot::yieldable). Called by threads blocked on reclamation.
  void yield_pinned_slots() {
    uint64_t cur = current_epoch();
    for (auto& slot : slots_) {
      if (!slot.in_use.load(std::memory_order_acquire) ||
          !slot.yieldable.load(std::memory_order_acquire)) {
        continue;
      }
      uint64_t a = slot.active.load(std::memory_order_acquire);
      if (a != 0 && a != cur) {
        slot.active.store(cur, std::memory_order_release);
      }
    }
  }

  // Smallest epoch any in-critical-section thread has published, or
  // current_epoch() if all threads are quiescent.
  uint64_t min_active_epoch() const {
    // EpochGuard entry is store(active) + full fence + protected loads; this
    // scan is the other side of that Dekker pattern and needs its own full
    // fence before reading the slots, or (on non-TSO hardware) a just-entered
    // reader could be invisible here while also missing the prior unlinks.
    full_fence();
    uint64_t min = current_epoch();
    for (const auto& slot : slots_) {
      if (!slot.in_use.load(std::memory_order_acquire)) {
        continue;
      }
      uint64_t a = slot.active.load(std::memory_order_acquire);
      if (a != 0 && a < min) {
        min = a;
      }
    }
    return min;
  }

  // Retire an object unlinked from reader-visible structures. Called with the
  // guard held (so the retire epoch is well defined).
  void retire(EpochSlot& slot, void* ptr, void (*deleter)(void*)) {
    slot.limbo.push_back(LimboEntry{current_epoch(), ptr, deleter});
    if (slot.limbo.size() >= std::max(slot.reclaim_threshold, size_t{kLimboHighWater})) {
      if (!has_background_advancer()) {
        advance();
      }
      reclaim(slot);
      // Back off if a long-lived reader pins the epoch: retrying a full
      // limbo scan on every retire would go quadratic during long scans.
      slot.reclaim_threshold = slot.limbo.size() + kLimboHighWater;
    }
  }

  // Free limbo entries retired at least two epochs below every active
  // thread's published epoch. One epoch is not enough: a reader active at
  // e+1 may have entered before the retiring thread's unlink became visible;
  // the gated advance to e+2 cannot happen until that reader (and the
  // retiring guard) exit, which is the happens-before edge the free needs.
  // Returns the number reclaimed.
  size_t reclaim(EpochSlot& slot) {
    if (slot.limbo.empty()) {
      return 0;
    }
    uint64_t safe_below = min_active_epoch();
    size_t kept = 0, freed = 0;
    for (size_t i = 0; i < slot.limbo.size(); ++i) {
      LimboEntry& e = slot.limbo[i];
      if (e.epoch + 1 < safe_below) {
        e.deleter(e.ptr);
        ++freed;
      } else {
        slot.limbo[kept++] = e;
      }
    }
    slot.limbo.resize(kept);
    if (kept < slot.reclaim_threshold) {
      slot.reclaim_threshold = kept + kLimboHighWater;
    }
    return freed;
  }

  size_t limbo_size(const EpochSlot& slot) const { return slot.limbo.size(); }

 private:
  void drain(EpochSlot& slot) {
    for (auto& e : slot.limbo) {
      e.deleter(e.ptr);
    }
    slot.limbo.clear();
  }

  std::atomic<uint64_t> epoch_{1};
  std::atomic<int> background_advancers_{0};
  EpochSlot slots_[kMaxThreads];
};

// RAII critical-section marker. Re-entrant: nested guards only bump a depth
// counter. Entering publishes the epoch with a full fence so the announcement
// is visible before any protected loads.
class EpochGuard {
 public:
  explicit EpochGuard(EpochSlot& slot) : slot_(slot) {
    if (slot_.depth++ == 0) {
      EpochManager& mgr = *slot_.manager;
      if (++slot_.ops_since_advance >= EpochManager::kOpsPerAdvance) {
        slot_.ops_since_advance = 0;
        if (!mgr.has_background_advancer()) {
          mgr.advance();
        }
      }
      // Release keeps the slot's store in min_active_epoch()'s release
      // sequence even when re-entering after a quiescent 0; the full fence
      // orders the announcement before the protected loads.
      slot_.active.store(mgr.current_epoch(), std::memory_order_release);
      full_fence();
    }
  }

  ~EpochGuard() {
    if (--slot_.depth == 0) {
      slot_.active.store(0, std::memory_order_release);
    }
  }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochSlot& slot_;
};

}  // namespace masstree

#endif  // MASSTREE_EPOCH_EPOCH_H_
