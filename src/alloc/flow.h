// "Flow" — a Streamflow-like multicore allocator (§6.2).
//
// "Memory allocation often bottlenecks multicore performance. We switch to
//  Flow, our implementation of the Streamflow [32] allocator ('+Flow'). Flow
//  supports 2 MB x86 superpages, which, when introduced ('+Superpage'),
//  improve throughput by 27-37% due to fewer TLB misses and lower kernel
//  overhead for allocation."
//
// Design (following Streamflow's structure):
//  * Memory arrives in 2 MB chunks mapped with mmap; when superpages are
//    enabled the chunk is aligned to 2 MB and marked MADV_HUGEPAGE so the
//    kernel can back it with a transparent huge page. (The paper's testbed
//    used explicit x86 superpages; THP is the container-friendly equivalent
//    that exercises the same allocation path — see DESIGN.md §5.)
//  * Chunks are carved into 64 KB *spans*. A span belongs to one size class
//    and one owning arena; its header lives at the span base, so free()
//    recovers it by masking the object address.
//  * Each thread owns an Arena: per-class bump carving plus a local LIFO free
//    list. Frees from other threads push onto the span's lock-free remote
//    list, which the owner drains when its local list runs dry — the
//    Streamflow local/remote split that avoids allocator lock contention.
//  * Allocations above the largest class map their own span-aligned region.

#ifndef MASSTREE_ALLOC_FLOW_H_
#define MASSTREE_ALLOC_FLOW_H_

#include <sys/mman.h>

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "util/compiler.h"

namespace masstree {

class Arena;
class Flow;

namespace internal {

inline constexpr size_t kSpanSize = 1u << 16;  // 64 KB
inline constexpr size_t kSpanMask = kSpanSize - 1;
inline constexpr size_t kChunkSize = 2u << 20;  // 2 MB, one superpage
inline constexpr size_t kObjectStart = kCacheLineSize;  // first object offset in a span

// Size classes. Multiples of 64 from 64 up keep tree nodes cache-line
// aligned; the small classes serve suffix bags and log records.
inline constexpr size_t kSizeClasses[] = {16,  32,  48,   64,   128,  192,  256, 320,
                                          384, 448, 512,  640,  768,  1024, 1536, 2048,
                                          3072, 4096, 8192, 16384, 32768};
inline constexpr unsigned kNumClasses = sizeof(kSizeClasses) / sizeof(kSizeClasses[0]);
inline constexpr size_t kMaxClassSize = kSizeClasses[kNumClasses - 1];

inline unsigned size_class_for(size_t bytes) {
  for (unsigned i = 0; i < kNumClasses; ++i) {
    if (bytes <= kSizeClasses[i]) {
      return i;
    }
  }
  return kNumClasses;  // large
}

struct FreeNode {
  FreeNode* next;
};

struct SpanHeader {
  Arena* owner;           // nullptr for large (direct-mapped) allocations
  unsigned size_class;
  size_t mapped_bytes;    // for large allocations: munmap length
  std::atomic<FreeNode*> remote_free{nullptr};
  SpanHeader* next_in_class = nullptr;  // arena-local chain
  char* bump = nullptr;   // carve cursor (owner thread only)
  char* end = nullptr;
};

static_assert(sizeof(SpanHeader) <= kObjectStart + kCacheLineSize,
              "span header must fit before objects");

}  // namespace internal

// Allocation statistics, per arena. Owner-thread counters; read racily by
// reporting code.
struct ArenaStats {
  uint64_t allocated_objects = 0;
  uint64_t freed_objects = 0;
  uint64_t spans = 0;
  uint64_t large_bytes = 0;
};

// Per-thread allocator front end. allocate() must only be called by the
// owning thread; deallocate() is safe from any thread.
class Arena {
 public:
  explicit Arena(Flow* flow) : flow_(flow) {
    for (unsigned i = 0; i < internal::kNumClasses; ++i) {
      free_[i] = nullptr;
      spans_[i] = nullptr;
      carving_[i] = nullptr;
    }
  }

  void* allocate(size_t bytes);

  // Thread-safe free of any pointer returned by any Arena of any Flow.
  static void deallocate(void* ptr);

  const ArenaStats& stats() const { return stats_; }
  Flow* flow() const { return flow_; }

 private:
  friend class Flow;

  void* allocate_class(unsigned ci);
  bool drain_remote(unsigned ci);

  Flow* flow_;
  internal::FreeNode* free_[internal::kNumClasses];
  internal::SpanHeader* spans_[internal::kNumClasses];
  internal::SpanHeader* carving_[internal::kNumClasses];
  ArenaStats stats_;
};

struct FlowConfig {
  // Request transparent huge pages for chunks ("+Superpage").
  bool use_superpages = true;
};

// Chunk source and arena registry. One Flow per process is typical
// (Flow::global()); benchmarks build private instances to compare
// configurations.
class Flow {
 public:
  explicit Flow(FlowConfig config = FlowConfig{}) : config_(config) {}

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  ~Flow() {
    for (auto& m : mappings_) {
      ::munmap(m.base, m.bytes);
    }
    for (Arena* a : arenas_) {
      delete a;
    }
  }

  // Process-wide instance; intentionally never destroyed so that epoch-
  // deferred frees during static teardown remain valid.
  static Flow& global() {
    static Flow* flow = new Flow();
    return *flow;
  }

  // Returns an arena for exclusive use by the calling thread. Arenas are
  // pooled: release_arena() returns one for reuse by future threads.
  Arena* acquire_arena() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_arenas_.empty()) {
      Arena* a = idle_arenas_.back();
      idle_arenas_.pop_back();
      return a;
    }
    auto* a = new Arena(this);
    arenas_.push_back(a);
    return a;
  }

  void release_arena(Arena* arena) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_arenas_.push_back(arena);
  }

  bool superpages_enabled() const { return config_.use_superpages; }
  uint64_t chunks_mapped() const { return chunks_mapped_.load(std::memory_order_relaxed); }

 private:
  friend class Arena;

  struct Mapping {
    void* base;
    size_t bytes;
  };

  internal::SpanHeader* allocate_span() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_spans_.empty()) {
      map_chunk();
    }
    internal::SpanHeader* s = free_spans_.back();
    free_spans_.pop_back();
    return s;
  }

  void map_chunk() {
    size_t bytes = internal::kChunkSize + internal::kSpanSize;
    void* raw = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) {
      throw std::bad_alloc();
    }
    mappings_.push_back(Mapping{raw, bytes});
    chunks_mapped_.fetch_add(1, std::memory_order_relaxed);
    uintptr_t base = reinterpret_cast<uintptr_t>(raw);
    uintptr_t aligned = (base + internal::kSpanMask) & ~uintptr_t(internal::kSpanMask);
#ifdef MADV_HUGEPAGE
    if (config_.use_superpages) {
      ::madvise(reinterpret_cast<void*>(aligned), internal::kChunkSize, MADV_HUGEPAGE);
    }
#endif
    for (size_t off = 0; off + internal::kSpanSize <= internal::kChunkSize;
         off += internal::kSpanSize) {
      auto* span = reinterpret_cast<internal::SpanHeader*>(aligned + off);
      new (span) internal::SpanHeader();
      free_spans_.push_back(span);
    }
  }

  // Large allocations: their own span-aligned mapping so deallocate() can
  // recover the header by masking.
  static void* allocate_large(size_t bytes) {
    size_t need = internal::kObjectStart + bytes;
    size_t total = (need + internal::kSpanMask) & ~internal::kSpanMask;
    size_t mapped = total + internal::kSpanSize;
    void* raw = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) {
      throw std::bad_alloc();
    }
    uintptr_t base = reinterpret_cast<uintptr_t>(raw);
    uintptr_t aligned = (base + internal::kSpanMask) & ~uintptr_t(internal::kSpanMask);
    // Trim the unaligned prefix/suffix so munmap in deallocate() is exact.
    if (aligned != base) {
      ::munmap(raw, aligned - base);
    }
    size_t tail = (base + mapped) - (aligned + total);
    if (tail != 0) {
      ::munmap(reinterpret_cast<void*>(aligned + total), tail);
    }
    auto* span = reinterpret_cast<internal::SpanHeader*>(aligned);
    new (span) internal::SpanHeader();
    span->owner = nullptr;
    span->mapped_bytes = total;
    return reinterpret_cast<char*>(aligned) + internal::kObjectStart;
  }

  FlowConfig config_;
  std::mutex mu_;
  std::vector<Mapping> mappings_;
  std::vector<internal::SpanHeader*> free_spans_;
  std::vector<Arena*> arenas_;
  std::vector<Arena*> idle_arenas_;
  std::atomic<uint64_t> chunks_mapped_{0};
};

inline void* Arena::allocate(size_t bytes) {
  if (bytes == 0) {
    bytes = 1;
  }
  unsigned ci = internal::size_class_for(bytes);
  if (MT_UNLIKELY(ci == internal::kNumClasses)) {
    stats_.large_bytes += bytes;
    ++stats_.allocated_objects;
    return Flow::allocate_large(bytes);
  }
  return allocate_class(ci);
}

inline void* Arena::allocate_class(unsigned ci) {
  ++stats_.allocated_objects;
  // 1. Local free list.
  if (internal::FreeNode* n = free_[ci]) {
    free_[ci] = n->next;
    return n;
  }
  // 2. Carve from the current span.
  internal::SpanHeader* span = carving_[ci];
  size_t sz = internal::kSizeClasses[ci];
  if (span != nullptr && span->bump + sz <= span->end) {
    void* p = span->bump;
    span->bump += sz;
    return p;
  }
  // 3. Steal back remote frees.
  if (drain_remote(ci)) {
    internal::FreeNode* n = free_[ci];
    free_[ci] = n->next;
    return n;
  }
  // 4. New span: becomes the carving span for this class.
  span = flow_->allocate_span();
  span->owner = this;
  span->size_class = ci;
  span->remote_free.store(nullptr, std::memory_order_relaxed);
  span->next_in_class = spans_[ci];
  spans_[ci] = span;
  carving_[ci] = span;
  char* base = reinterpret_cast<char*>(span);
  span->bump = base + internal::kObjectStart;
  span->end = base + internal::kSpanSize;
  ++stats_.spans;
  void* p = span->bump;
  span->bump += sz;
  return p;
}

inline bool Arena::drain_remote(unsigned ci) {
  bool got = false;
  for (internal::SpanHeader* s = spans_[ci]; s != nullptr; s = s->next_in_class) {
    internal::FreeNode* chain = s->remote_free.exchange(nullptr, std::memory_order_acquire);
    if (chain == nullptr) {
      continue;
    }
    got = true;
    while (chain != nullptr) {
      internal::FreeNode* next = chain->next;
      chain->next = free_[ci];
      free_[ci] = chain;
      chain = next;
    }
  }
  return got;
}

namespace internal {
// The arena currently bound to this thread (set by ThreadContext). Used to
// decide local vs remote free.
inline thread_local Arena* tl_arena = nullptr;
}  // namespace internal

inline void Arena::deallocate(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  uintptr_t base = reinterpret_cast<uintptr_t>(ptr) & ~uintptr_t(internal::kSpanMask);
  auto* span = reinterpret_cast<internal::SpanHeader*>(base);
  if (MT_UNLIKELY(span->owner == nullptr)) {
    ::munmap(span, span->mapped_bytes);
    return;
  }
  Arena* owner = span->owner;
  auto* node = static_cast<internal::FreeNode*>(ptr);
  if (owner == internal::tl_arena) {
    node->next = owner->free_[span->size_class];
    owner->free_[span->size_class] = node;
    ++owner->stats_.freed_objects;
  } else {
    internal::FreeNode* head = span->remote_free.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!span->remote_free.compare_exchange_weak(head, node, std::memory_order_release,
                                                      std::memory_order_relaxed));
  }
}

// Binds/unbinds the calling thread's arena for local-free detection.
inline void bind_thread_arena(Arena* arena) { internal::tl_arena = arena; }
inline Arena* current_thread_arena() { return internal::tl_arena; }

}  // namespace masstree

#endif  // MASSTREE_ALLOC_FLOW_H_
