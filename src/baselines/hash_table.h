// Concurrent open-addressing hash table (§6.4's range-query cost baseline).
//
// "we implemented a concurrent hash table in the Masstree framework and
//  measured a 16-core, 80M-key workload with 8-byte random alphabetical
//  keys. ... The hash table is open-coded and allocated using superpages,
//  and has 30% occupancy. Each hash lookup inspects 1.1 entries on average."
//
// Keys are 8-byte slices stored as u64 (zero = empty; the alphabetical keys
// the experiment uses are never zero). Linear probing over a fixed-capacity
// array sized for the configured occupancy; the backing array goes through
// the Flow large-allocation path, which requests superpages. Inserts claim
// slots with compare-and-swap; gets are lockless and write nothing.

#ifndef MASSTREE_BASELINES_HASH_TABLE_H_
#define MASSTREE_BASELINES_HASH_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string_view>

#include "core/threadinfo.h"
#include "key/keyslice.h"

namespace masstree {

class HashTable8 {
 public:
  // Sized so that `expected_keys` yields the target occupancy.
  HashTable8(uint64_t expected_keys, ThreadContext& ti, double occupancy = 0.30) {
    capacity_ = 64;
    while (static_cast<double>(expected_keys) / static_cast<double>(capacity_) > occupancy) {
      capacity_ <<= 1;
    }
    mask_ = capacity_ - 1;
    slots_ = static_cast<Slot*>(ti.allocate(capacity_ * sizeof(Slot)));
    for (uint64_t i = 0; i < capacity_; ++i) {
      slots_[i].key.store(0, std::memory_order_relaxed);
      slots_[i].value.store(0, std::memory_order_relaxed);
    }
  }

  bool get(std::string_view key, uint64_t* value) const {
    uint64_t k = make_slice(key);
    assert(k != 0);
    uint64_t i = hash(k) & mask_;
    for (uint64_t probes = 0; probes <= mask_; ++probes) {
      uint64_t cur = slots_[i].key.load(std::memory_order_acquire);
      if (cur == k) {
        *value = slots_[i].value.load(std::memory_order_acquire);
        return true;
      }
      if (cur == 0) {
        return false;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  // Returns true on insert, false on update. The table never grows; callers
  // size it up front (the experiment fixes occupancy).
  bool insert(std::string_view key, uint64_t value) {
    uint64_t k = make_slice(key);
    assert(k != 0);
    uint64_t i = hash(k) & mask_;
    for (;;) {
      uint64_t cur = slots_[i].key.load(std::memory_order_acquire);
      if (cur == k) {
        slots_[i].value.store(value, std::memory_order_release);
        return false;
      }
      if (cur == 0) {
        uint64_t expected = 0;
        if (slots_[i].key.compare_exchange_strong(expected, k, std::memory_order_acq_rel)) {
          slots_[i].value.store(value, std::memory_order_release);
          count_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        if (expected == k) {
          slots_[i].value.store(value, std::memory_order_release);
          return false;
        }
        // Someone claimed this slot for a different key; keep probing.
      }
      i = (i + 1) & mask_;
    }
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t size() const { return count_.load(std::memory_order_relaxed); }
  double occupancy() const {
    return static_cast<double>(size()) / static_cast<double>(capacity_);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> key;
    std::atomic<uint64_t> value;
  };

  static uint64_t hash(uint64_t x) {
    // Fibonacci-style mix; good spread for the byte-swapped key space.
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

  Slot* slots_;
  uint64_t capacity_;
  uint64_t mask_;
  std::atomic<uint64_t> count_{0};
};

}  // namespace masstree

#endif  // MASSTREE_BASELINES_HASH_TABLE_H_
