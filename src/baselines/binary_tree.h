// "Binary" baseline (§6.2): "a fast, concurrent, lock-free binary tree. Each
// 40-byte tree node here contains a full key, a value pointer, and two child
// pointers."
//
// Layout: left + right + value + (len, 15 inline key bytes) = exactly 40
// bytes; longer keys spill to a heap block (an extra dependent fetch, part of
// why trees with inline slices win). Reads are lockless and never retry;
// inserts are lock-free, linking new leaves with compare-and-swap; updates
// CAS the value in place. No remove (the factor analysis runs get/put only).
//
// Template knobs reproduce the Figure 8 steps:
//   Alloc    — MallocNodeAlloc ("Binary", jemalloc-class system allocator)
//              vs FlowNodeAlloc ("+Flow"/"+Superpage").
//   kIntCmp  — byte-swapped 8-byte integer comparison ("+IntCmp") vs memcmp.

#ifndef MASSTREE_BASELINES_BINARY_TREE_H_
#define MASSTREE_BASELINES_BINARY_TREE_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "alloc/flow.h"
#include "key/keyslice.h"

namespace masstree {

// Node allocation policies.
struct MallocNodeAlloc {
  static void* allocate(size_t n, Arena*) { return ::malloc(n); }
  static void deallocate_all() {}  // freed at process exit; benches are one-shot
};

struct FlowNodeAlloc {
  static void* allocate(size_t n, Arena* arena) { return arena->allocate(n); }
};

template <typename Alloc, bool kIntCmp>
class BinaryTree {
 public:
  BinaryTree() = default;

  bool get(std::string_view key, uint64_t* value) const {
    const Node* n = root_.load(std::memory_order_acquire);
    while (n != nullptr) {
      int c = compare(key, *n);
      if (c == 0) {
        *value = n->value.load(std::memory_order_acquire);
        return true;
      }
      n = n->child[c > 0].load(std::memory_order_acquire);
    }
    return false;
  }

  // Returns true if inserted, false if an existing key's value was replaced.
  // `arena` must be the calling thread's arena (ignored by MallocNodeAlloc).
  bool insert(std::string_view key, uint64_t value, Arena* arena) {
    Node* fresh = nullptr;
    std::atomic<Node*>* slot = &root_;
    for (;;) {
      Node* n = slot->load(std::memory_order_acquire);
      if (n == nullptr) {
        if (fresh == nullptr) {
          fresh = make_node(key, value, arena);
        }
        Node* expected = nullptr;
        if (slot->compare_exchange_strong(expected, fresh, std::memory_order_release,
                                          std::memory_order_acquire)) {
          count_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        n = expected;  // someone linked here first; keep descending
      }
      int c = compare(key, *n);
      if (c == 0) {
        n->value.store(value, std::memory_order_release);
        // fresh (if allocated) leaks into the arena; negligible and lock-free.
        return false;
      }
      slot = &n->child[c > 0];
    }
  }

  uint64_t size() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::atomic<Node*> child[2];
    std::atomic<uint64_t> value;
    uint8_t klen_inline;  // inline length, or 0xFF => overflow
    char key[15];         // inline bytes or {u32 len, char* data} overflow
  };
  static_assert(sizeof(Node) == 40, "the paper's 40-byte binary tree node");

  struct Overflow {
    uint32_t len;
    char data[];
  };

  Node* make_node(std::string_view key, uint64_t value, Arena* arena) {
    Node* n = static_cast<Node*>(Alloc::allocate(sizeof(Node), arena));
    n->child[0].store(nullptr, std::memory_order_relaxed);
    n->child[1].store(nullptr, std::memory_order_relaxed);
    n->value.store(value, std::memory_order_relaxed);
    if (key.size() <= sizeof(n->key)) {
      n->klen_inline = static_cast<uint8_t>(key.size());
      std::memcpy(n->key, key.data(), key.size());
    } else {
      n->klen_inline = 0xFF;
      auto* ov = static_cast<Overflow*>(
          Alloc::allocate(sizeof(Overflow) + key.size(), arena));
      ov->len = static_cast<uint32_t>(key.size());
      std::memcpy(ov->data, key.data(), key.size());
      std::memcpy(n->key, &ov, sizeof(ov));
    }
    return n;
  }

  static std::string_view node_key(const Node& n) {
    if (n.klen_inline != 0xFF) {
      return std::string_view(n.key, n.klen_inline);
    }
    const Overflow* ov;
    std::memcpy(&ov, n.key, sizeof(ov));
    return std::string_view(ov->data, ov->len);
  }

  static int compare(std::string_view a, const Node& n) {
    std::string_view b = node_key(n);
    if constexpr (kIntCmp) {
      // "+IntCmp": compare 8 bytes at a time as byte-swapped integers.
      size_t off = 0;
      for (;;) {
        size_t ra = a.size() - off, rb = b.size() - off;
        if (ra == 0 || rb == 0) {
          return ra == rb ? 0 : (ra < rb ? -1 : 1);
        }
        uint64_t sa = make_slice(a.data() + off, ra);
        uint64_t sb = make_slice(b.data() + off, rb);
        if (sa != sb) {
          return sa < sb ? -1 : 1;
        }
        if (ra <= kSliceBytes || rb <= kSliceBytes) {
          return ra == rb ? 0 : (ra < rb ? -1 : 1);
        }
        off += kSliceBytes;
      }
    } else {
      size_t minlen = a.size() < b.size() ? a.size() : b.size();
      int c = std::memcmp(a.data(), b.data(), minlen);
      if (c != 0) {
        return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
  }

  std::atomic<Node*> root_{nullptr};
  std::atomic<uint64_t> count_{0};
};

}  // namespace masstree

#endif  // MASSTREE_BASELINES_BINARY_TREE_H_
