// "4-tree" baseline (§6.2): "a tree with fanout 4 ... Its wider fanout
// nearly halves average depth relative to the binary tree. Each 4-tree node
// comprises two cache lines, but usually only the first must be fetched from
// DRAM. This line contains all data important for traversal — the node's
// four child pointers and the first 8 bytes of each of its keys. All internal
// nodes are full. Reads are lockless and need never retry; ... 4-tree never
// rearranges keys."
//
// A node accumulates up to three keys in arrival order (they are never moved
// afterwards); the count field publishes each slot with a release store, so
// readers never retry. Once full, the node's keys partition the key space
// into four ranges and descent begins; missing children are linked with
// compare-and-swap. Slot claims are serialized by a per-node spinlock — the
// published system used CAS, but §4.5 observes the two cost the same on
// cache-coherent hardware (the coherence traffic dominates).
//
// Key order: (first-8-byte slice, tail bytes, total length), which matches
// lexicographic order of the original strings (equal slices with different
// lengths <= 8 only occur when the padding bytes are real NULs).

#ifndef MASSTREE_BASELINES_FOUR_TREE_H_
#define MASSTREE_BASELINES_FOUR_TREE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>

#include "core/threadinfo.h"
#include "key/keyslice.h"
#include "util/prefetch.h"

namespace masstree {

class FourTree {
 public:
  explicit FourTree(ThreadContext& ti) {
    root_.store(make_node(ti), std::memory_order_release);
  }

  bool get(std::string_view key, uint64_t* value) const {
    uint64_t slice = make_slice(key);
    const Node* n = root_.load(std::memory_order_acquire);
    while (n != nullptr) {
      prefetch_line(n);
      int nk = n->nkeys.load(std::memory_order_acquire);
      for (int i = 0; i < nk; ++i) {
        if (n->slice[i] == slice && n->cmp_tail(i, key) == 0) {
          *value = n->value[i].load(std::memory_order_acquire);
          return true;
        }
      }
      if (nk < kKeys) {
        // First non-full node on the path: the key would live here. (Nodes
        // never un-fill, so no deeper node can hold it.)
        return false;
      }
      n = n->child[n->rank(slice, key)].load(std::memory_order_acquire);
    }
    return false;
  }

  // Returns true if inserted, false on update.
  bool insert(std::string_view key, uint64_t value, ThreadContext& ti) {
    uint64_t slice = make_slice(key);
    Node* n = root_.load(std::memory_order_acquire);
    for (;;) {
      int nk = n->nkeys.load(std::memory_order_acquire);
      for (int i = 0; i < nk; ++i) {
        if (n->slice[i] == slice && n->cmp_tail(i, key) == 0) {
          n->value[i].store(value, std::memory_order_release);
          return false;
        }
      }
      if (nk < kKeys) {
        n->lock();
        int cur = n->nkeys.load(std::memory_order_relaxed);
        // Slots committed while we waited might duplicate our key.
        for (int i = nk; i < cur; ++i) {
          if (n->slice[i] == slice && n->cmp_tail(i, key) == 0) {
            n->value[i].store(value, std::memory_order_release);
            n->unlock();
            return false;
          }
        }
        if (cur < kKeys) {
          n->write_key(cur, slice, key, value, ti);
          release_fence();
          n->nkeys.store(cur + 1, std::memory_order_release);
          n->unlock();
          return true;
        }
        n->unlock();
        continue;  // filled up while we waited: fall through to descend
      }
      std::atomic<Node*>& slot = n->child[n->rank(slice, key)];
      Node* c = slot.load(std::memory_order_acquire);
      if (c == nullptr) {
        Node* fresh = make_node(ti);
        if (slot.compare_exchange_strong(c, fresh, std::memory_order_release,
                                         std::memory_order_acquire)) {
          c = fresh;
        }
        // On CAS failure the fresh node stays in the arena (reclaimed with
        // it); c holds the winner.
      }
      n = c;
    }
  }

 private:
  static constexpr int kKeys = 3;  // 3 keys -> fanout 4
  static constexpr size_t kInlineTail = 16;

  struct Node {
    // ---- cache line 1: everything needed for traversal ----
    uint64_t slice[kKeys];
    std::atomic<Node*> child[kKeys + 1];
    std::atomic<int> nkeys{0};
    std::atomic<uint32_t> lock_word{0};
    // ---- cache line 2: key tails + values ----
    std::atomic<uint64_t> value[kKeys];
    uint16_t total_len[kKeys];
    uint8_t tail_heap[kKeys];  // 1 = tail stored in a heap block
    char tail[kKeys][kInlineTail];

    void lock() {
      for (;;) {
        uint32_t x = lock_word.load(std::memory_order_relaxed);
        if (x == 0 && lock_word.compare_exchange_weak(x, 1, std::memory_order_acquire,
                                                      std::memory_order_relaxed)) {
          return;
        }
        spin_pause();
      }
    }
    void unlock() { lock_word.store(0, std::memory_order_release); }

    std::string_view stored_tail(int i) const {
      size_t tlen = total_len[i] > kSliceBytes ? total_len[i] - kSliceBytes : 0;
      if (tail_heap[i]) {
        const char* heap;
        std::memcpy(&heap, tail[i], sizeof(heap));
        return std::string_view(heap, tlen);
      }
      return std::string_view(tail[i], tlen);
    }

    // Compares key (whose slice already equals slice[i] when used for
    // equality) against stored key i: tail bytes, then total length.
    int cmp_tail(int i, std::string_view key) const {
      std::string_view mine = stored_tail(i);
      std::string_view theirs =
          key.size() > kSliceBytes ? key.substr(kSliceBytes) : std::string_view();
      int c = mine.compare(theirs);
      if (c != 0) {
        return c < 0 ? -1 : 1;
      }
      size_t a = total_len[i], b = key.size();
      return a == b ? 0 : (a < b ? -1 : 1);
    }

    int full_cmp(int i, uint64_t s, std::string_view key) const {
      if (slice[i] != s) {
        return slice[i] < s ? -1 : 1;
      }
      return cmp_tail(i, key);
    }

    // Child index for a probe key: the number of stored keys <= it. Only
    // called on full nodes, where all three keys are committed.
    int rank(uint64_t s, std::string_view key) const {
      int r = 0;
      for (int i = 0; i < kKeys; ++i) {
        if (full_cmp(i, s, key) <= 0) {
          ++r;
        }
      }
      return r;
    }

    void write_key(int i, uint64_t s, std::string_view key, uint64_t v, ThreadContext& ti) {
      slice[i] = s;
      total_len[i] = static_cast<uint16_t>(key.size());
      value[i].store(v, std::memory_order_relaxed);
      size_t tlen = key.size() > kSliceBytes ? key.size() - kSliceBytes : 0;
      if (tlen <= kInlineTail) {
        tail_heap[i] = 0;
        std::memcpy(tail[i], key.data() + kSliceBytes, tlen);
      } else {
        tail_heap[i] = 1;
        char* heap = static_cast<char*>(ti.allocate(tlen));
        std::memcpy(heap, key.data() + kSliceBytes, tlen);
        std::memcpy(tail[i], &heap, sizeof(heap));
      }
    }
  };

  static Node* make_node(ThreadContext& ti) {
    void* mem = ti.allocate(sizeof(Node));
    auto* n = new (mem) Node();
    for (int i = 0; i <= kKeys; ++i) {
      n->child[i].store(nullptr, std::memory_order_relaxed);
    }
    return n;
  }

  std::atomic<Node*> root_{nullptr};
};

}  // namespace masstree

#endif  // MASSTREE_BASELINES_FOUR_TREE_H_
