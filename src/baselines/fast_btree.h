// The fast concurrent B+-tree family of §6.2/§6.4 — the strongest non-trie
// baselines in Figure 8 ("B-tree", "+Prefetch", "+Permuter"), the
// fixed-8-byte-key variant of §6.4, and the pkB-tree of §4.1.
//
// One fanout-15 B+-tree implementation, templated over:
//   Rep        — how nodes store keys:
//                KeyRep16  : first 16 bytes inline, remainder in a heap block
//                            ("Each node has space for up to the first 16
//                             bytes of each key"); comparisons touching the
//                            remainder cost a dependent cache miss, which is
//                            exactly what Figure 9 measures.
//                KeyRep8   : fixed-size 8-byte keys only (§6.4).
//                KeyRepPk2 : 2-byte partial keys + pointer to the full key
//                            (partial-key B-tree, Bohannon et al. [8]).
//   kPrefetch  — prefetch all node cache lines before use ("+Prefetch").
//   kPermuter  — publish inserts via the §4.6.2 permutation ("+Permuter");
//                without it, inserts shift keys under an `inserting` mark and
//                bump vinsert, forcing concurrent readers to retry.
//   Policy     — ConcurrentPolicy / SequentialPolicy.
//
// Concurrency control is the §4 scheme (version words, B-link forwarding,
// hand-over-hand split locking). These baselines support get/insert/update —
// the operations the factor analysis exercises; remove is not implemented.

#ifndef MASSTREE_BASELINES_FAST_BTREE_H_
#define MASSTREE_BASELINES_FAST_BTREE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>

#include "core/permuter.h"
#include "core/threadinfo.h"
#include "core/version.h"
#include "key/keyslice.h"
#include "util/prefetch.h"

namespace masstree {

// ---------------------------------------------------------------------
// Key representations. All fields are relaxed atomics: they are read by
// lock-free readers and validated through the node version protocol.

// First 16 bytes inline as two byte-swapped slices; longer keys keep their
// tail (bytes 16..) in an immutable heap block.
struct KeyRep16 {
  std::atomic<uint64_t> s0{0};
  std::atomic<uint64_t> s1{0};
  std::atomic<uint32_t> len{0};
  std::atomic<const char*> rest{nullptr};

  static constexpr size_t kInline = 16;

  void assign(std::string_view k, ThreadContext& ti) {
    s0.store(make_slice(k), std::memory_order_relaxed);
    s1.store(k.size() > 8 ? make_slice(k.substr(8)) : 0, std::memory_order_relaxed);
    len.store(static_cast<uint32_t>(k.size()), std::memory_order_relaxed);
    if (k.size() > kInline) {
      size_t tail = k.size() - kInline;
      char* heap = static_cast<char*>(ti.allocate(tail));
      std::memcpy(heap, k.data() + kInline, tail);
      rest.store(heap, std::memory_order_relaxed);
    } else {
      rest.store(nullptr, std::memory_order_relaxed);
    }
  }

  void copy_from(const KeyRep16& o) {
    s0.store(o.s0.load(std::memory_order_relaxed), std::memory_order_relaxed);
    s1.store(o.s1.load(std::memory_order_relaxed), std::memory_order_relaxed);
    len.store(o.len.load(std::memory_order_relaxed), std::memory_order_relaxed);
    // Heap tails are immutable: sharing the pointer is safe.
    rest.store(o.rest.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }

  // Lexicographic comparison of the stored key against k: (slice0, slice1,
  // tail bytes, length). Equal slices with unequal lengths <= 16 only happen
  // when the padding bytes are genuine NULs, and the length tiebreak then
  // matches string order.
  int compare(std::string_view k) const {
    uint64_t t0 = make_slice(k);
    uint64_t m0 = s0.load(std::memory_order_relaxed);
    if (m0 != t0) {
      return m0 < t0 ? -1 : 1;
    }
    uint64_t t1 = k.size() > 8 ? make_slice(k.substr(8)) : 0;
    uint64_t m1 = s1.load(std::memory_order_relaxed);
    if (m1 != t1) {
      return m1 < t1 ? -1 : 1;
    }
    uint32_t mlen = len.load(std::memory_order_relaxed);
    size_t mtail = mlen > kInline ? mlen - kInline : 0;
    size_t ttail = k.size() > kInline ? k.size() - kInline : 0;
    if (mtail != 0 || ttail != 0) {
      // The dependent fetch Figure 9 charges to "+Permuter".
      const char* heap = rest.load(std::memory_order_relaxed);
      size_t minlen = mtail < ttail ? mtail : ttail;
      if (minlen != 0 && heap != nullptr) {
        int c = std::memcmp(heap, k.data() + kInline, minlen);
        if (c != 0) {
          return c < 0 ? -1 : 1;
        }
      }
    }
    if (mlen != k.size()) {
      return mlen < k.size() ? -1 : 1;
    }
    return 0;
  }
};

// Fixed 8-byte keys: one slice, no lengths, no tails (§6.4's comparison
// point for the cost of variable-length key support).
struct KeyRep8 {
  std::atomic<uint64_t> s0{0};

  void assign(std::string_view k, ThreadContext&) {
    assert(k.size() == 8);
    s0.store(make_slice(k), std::memory_order_relaxed);
  }
  void copy_from(const KeyRep8& o) {
    s0.store(o.s0.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  int compare(std::string_view k) const {
    uint64_t t = make_slice(k);
    uint64_t m = s0.load(std::memory_order_relaxed);
    return m == t ? 0 : (m < t ? -1 : 1);
  }
};

// pkB-tree (§4.1): nodes hold a 2-byte partial key plus a pointer to the
// full key; any comparison the partial key cannot decide chases the pointer.
struct KeyRepPk2 {
  std::atomic<uint16_t> partial{0};
  std::atomic<uint32_t> len{0};
  std::atomic<const char*> full{nullptr};

  static uint16_t partial_of(std::string_view k) {
    uint16_t p = 0;
    if (!k.empty()) {
      p = static_cast<uint16_t>(static_cast<unsigned char>(k[0])) << 8;
    }
    if (k.size() > 1) {
      p |= static_cast<unsigned char>(k[1]);
    }
    return p;
  }

  void assign(std::string_view k, ThreadContext& ti) {
    partial.store(partial_of(k), std::memory_order_relaxed);
    len.store(static_cast<uint32_t>(k.size()), std::memory_order_relaxed);
    char* heap = static_cast<char*>(ti.allocate(k.size() > 0 ? k.size() : 1));
    std::memcpy(heap, k.data(), k.size());
    full.store(heap, std::memory_order_relaxed);
  }
  void copy_from(const KeyRepPk2& o) {
    partial.store(o.partial.load(std::memory_order_relaxed), std::memory_order_relaxed);
    len.store(o.len.load(std::memory_order_relaxed), std::memory_order_relaxed);
    full.store(o.full.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  int compare(std::string_view k) const {
    uint16_t tp = partial_of(k);
    uint16_t mp = partial.load(std::memory_order_relaxed);
    if (mp != tp) {
      return mp < tp ? -1 : 1;
    }
    // Partial keys tie: fetch the full key (the pkB-tree's cache miss).
    const char* heap = full.load(std::memory_order_relaxed);
    uint32_t mlen = len.load(std::memory_order_relaxed);
    if (heap == nullptr) {
      return -1;  // torn read; version validation will retry
    }
    size_t minlen = mlen < k.size() ? mlen : k.size();
    int c = minlen ? std::memcmp(heap, k.data(), minlen) : 0;
    if (c != 0) {
      return c < 0 ? -1 : 1;
    }
    return mlen == k.size() ? 0 : (mlen < k.size() ? -1 : 1);
  }
};

// ---------------------------------------------------------------------

struct FastBtreeDefaultConfig {
  using Policy = ConcurrentPolicy;
  using Rep = KeyRep16;
  static constexpr int kWidth = 15;
  static constexpr bool kPrefetch = true;
  static constexpr bool kPermuter = true;
};

template <typename C = FastBtreeDefaultConfig>
class FastBtree {
 public:
  using Policy = typename C::Policy;
  using Rep = typename C::Rep;
  static constexpr int kWidth = C::kWidth;

  explicit FastBtree(ThreadContext& ti) {
    root_.store(make_border(ti, /*root=*/true), std::memory_order_release);
  }

  bool get(std::string_view key, uint64_t* value, ThreadContext& ti) const {
    EpochGuard guard(ti.slot());
    for (;;) {
      Border* n;
      VersionValue v;
      reach_border(key, &n, &v);
      for (;;) {
        int idx = -1;
        int count = n->count();
        for (int i = 0; i < count; ++i) {
          int slot = n->slot_at(i);
          int c = n->keys[slot].compare(key);
          if (c == 0) {
            idx = slot;
            break;
          }
          if (c > 0) {
            break;
          }
        }
        uint64_t lv = idx >= 0 ? n->values[idx].load(std::memory_order_relaxed) : 0;
        if (n->version().changed_since(v)) {
          v = n->version().stable();
          Border* nx = n->next.load(std::memory_order_acquire);
          while (nx != nullptr && nx->lowkey.compare(key) <= 0) {
            n = nx;
            v = n->version().stable();
            nx = n->next.load(std::memory_order_acquire);
          }
          continue;
        }
        if (idx < 0) {
          return false;
        }
        *value = lv;
        return true;
      }
    }
  }

  // Insert or update. Returns true if a new key was added.
  bool insert(std::string_view key, uint64_t value, ThreadContext& ti) {
    EpochGuard guard(ti.slot());
    Border* n = locate_locked(key);
    // Search under lock.
    int count = n->count();
    int pos = count;
    int match = -1;
    for (int i = 0; i < count; ++i) {
      int slot = n->slot_at(i);
      int c = n->keys[slot].compare(key);
      if (c == 0) {
        match = slot;
        break;
      }
      if (c > 0) {
        pos = i;
        break;
      }
    }
    if (match >= 0) {
      n->values[match].store(value, std::memory_order_release);
      n->version().unlock();
      return false;
    }
    if (count < kWidth) {
      insert_at(n, pos, key, value, ti);
      n->version().unlock();
      return true;
    }
    split_insert(n, pos, key, value, ti);
    return true;
  }

 private:
  struct Node {
    explicit Node(uint32_t bits) : version_(bits) {}
    NodeVersion<Policy>& version() { return version_; }
    const NodeVersion<Policy>& version() const { return version_; }
    bool is_border() const { return version_.is_border_relaxed(); }
    NodeVersion<Policy> version_;
    std::atomic<Node*> parent{nullptr};
  };

  struct alignas(kCacheLineSize) Border : Node {
    explicit Border(bool root)
        : Node(VersionValue::kBorder | (root ? VersionValue::kRoot : 0)),
          permutation(Permuter::make_empty().value()) {}

    void prefetch_me() const {
      if constexpr (C::kPrefetch) {
        prefetch_object(this, sizeof(*this));
      }
    }

    // Count/slot accessors bridging the permuter and sorted-array modes.
    int count() const {
      if constexpr (C::kPermuter) {
        return Permuter(permutation.load(std::memory_order_acquire)).size();
      } else {
        return nkeys.load(std::memory_order_acquire);
      }
    }
    int slot_at(int i) const {
      if constexpr (C::kPermuter) {
        return Permuter(permutation.load(std::memory_order_acquire)).get(i);
      } else {
        return i;
      }
    }

    std::atomic<uint64_t> permutation;  // kPermuter mode
    std::atomic<int> nkeys{0};          // sorted-array mode
    Rep keys[kWidth];
    std::atomic<uint64_t> values[kWidth];
    std::atomic<Border*> next{nullptr};
    Rep lowkey;  // immutable after creation
  };

  struct alignas(kCacheLineSize) Interior : Node {
    explicit Interior(bool root) : Node(root ? VersionValue::kRoot : 0) {}

    void prefetch_me() const {
      if constexpr (C::kPrefetch) {
        prefetch_object(this, sizeof(*this));
      }
    }

    // Index of the child covering `key`.
    int child_index(std::string_view key) const {
      int n = nkeys.load(std::memory_order_relaxed);
      int i = 0;
      while (i < n && keys[i].compare(key) <= 0) {
        ++i;
      }
      return i;
    }
    int find_child(const Node* c) const {
      for (int i = 0; i <= nkeys.load(std::memory_order_relaxed); ++i) {
        if (child[i].load(std::memory_order_relaxed) == c) {
          return i;
        }
      }
      return -1;
    }

    std::atomic<int> nkeys{0};
    Rep keys[kWidth];
    std::atomic<Node*> child[kWidth + 1];
  };

  static Border* make_border(ThreadContext& ti, bool root) {
    return new (ti.allocate(sizeof(Border))) Border(root);
  }
  static Interior* make_interior(ThreadContext& ti, bool root) {
    auto* p = new (ti.allocate(sizeof(Interior))) Interior(root);
    for (int i = 0; i <= kWidth; ++i) {
      p->child[i].store(nullptr, std::memory_order_relaxed);
    }
    return p;
  }

  void reach_border(std::string_view key, Border** out, VersionValue* vout) const {
  retry:
    Node* n = root_.load(std::memory_order_acquire);
    VersionValue v = n->version().stable();
    while (!v.is_root()) {
      Node* p = n->parent.load(std::memory_order_acquire);
      if (p == nullptr) {
        spin_pause();
        v = n->version().stable();
        continue;
      }
      n = p;
      v = n->version().stable();
    }
    while (!v.is_border()) {
      Interior* in = static_cast<Interior*>(n);
      in->prefetch_me();
      int ci = in->child_index(key);
      Node* child = in->child[ci].load(std::memory_order_acquire);
      if (child == nullptr) {
        v = n->version().stable();
        continue;
      }
      VersionValue cv = child->version().stable();
      if (!in->version().changed_since(v)) {
        n = child;
        v = cv;
        continue;
      }
      VersionValue v2 = n->version().stable();
      if (v2.vsplit() != v.vsplit()) {
        goto retry;
      }
      v = v2;
    }
    static_cast<Border*>(n)->prefetch_me();
    *out = static_cast<Border*>(n);
    *vout = v;
  }

  Border* locate_locked(std::string_view key) const {
    Border* n;
    VersionValue v;
    reach_border(key, &n, &v);
    n->version().lock();
    for (;;) {
      Border* nx = n->next.load(std::memory_order_acquire);
      if (nx == nullptr || nx->lowkey.compare(key) > 0) {
        return n;
      }
      nx->version().lock();
      n->version().unlock();
      n = nx;
    }
  }

  void insert_at(Border* n, int pos, std::string_view key, uint64_t value,
                 ThreadContext& ti) {
    if constexpr (C::kPermuter) {
      // "+Permuter": write the free slot, then publish order + count with
      // one release store. Readers never retry on plain inserts.
      Permuter perm(n->permutation.load(std::memory_order_relaxed));
      int slot = perm.back();
      n->keys[slot].assign(key, ti);
      n->values[slot].store(value, std::memory_order_relaxed);
      release_fence();
      perm.insert_from_back(pos);
      n->permutation.store(perm.value(), std::memory_order_release);
    } else {
      // Conventional B-tree insert: shift the sorted array under an
      // `inserting` mark; unlock bumps vinsert and readers retry (§6.2:
      // "Conventional B-tree inserts must rearrange a node's keys").
      n->version().mark_inserting();
      int count = n->nkeys.load(std::memory_order_relaxed);
      for (int i = count; i > pos; --i) {
        n->keys[i].copy_from(n->keys[i - 1]);
        n->values[i].store(n->values[i - 1].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      }
      n->keys[pos].assign(key, ti);
      n->values[pos].store(value, std::memory_order_relaxed);
      release_fence();
      n->nkeys.store(count + 1, std::memory_order_release);
    }
  }

  void split_insert(Border* n, int pos, std::string_view key, uint64_t value,
                    ThreadContext& ti) {
    constexpr int W = kWidth;
    n->version().mark_splitting();
    Border* n2 = make_border(ti, false);
    n2->version().assign_locked_from(n->version().load());
    n2->version().set_root(false);

    // Sorted slot order of existing keys.
    int order[W];
    for (int i = 0; i < W; ++i) {
      order[i] = n->slot_at(i);
    }
    int m = (W + 1) / 2;  // left keeps m entries of the W+1 virtual array
    bool new_left = pos < m;

    // Move right portion (virtual indexes m..W) into n2 slots 0..: the
    // virtual array interleaves the new key at `pos`.
    int out = 0;
    int first_right_slot = -1;
    for (int vi = m; vi <= W; ++vi) {
      if (vi == pos) {
        n2->keys[out].assign(key, ti);
        n2->values[out].store(value, std::memory_order_relaxed);
      } else {
        int src = order[vi > pos ? vi - 1 : vi];
        if (first_right_slot < 0) {
          first_right_slot = src;
        }
        n2->keys[out].copy_from(n->keys[src]);
        n2->values[out].store(n->values[src].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
      }
      ++out;
    }
    // n2's lowkey = its smallest key.
    n2->lowkey.copy_from(n2->keys[0]);
    if constexpr (C::kPermuter) {
      n2->permutation.store(Permuter::make_sorted(out).value(), std::memory_order_relaxed);
    } else {
      n2->nkeys.store(out, std::memory_order_relaxed);
    }

    // Rebuild n with the left portion.
    if constexpr (C::kPermuter) {
      bool kept[W] = {};
      int norder[W];
      int kc = 0;
      int newpos = -1;
      for (int vi = 0; vi < m; ++vi) {
        if (vi == pos) {
          newpos = kc;
          norder[kc++] = -1;
        } else {
          int src = order[vi > pos ? vi - 1 : vi];
          norder[kc++] = src;
          kept[src] = true;
        }
      }
      if (new_left) {
        int fs = -1;
        for (int s = 0; s < W; ++s) {
          if (!kept[s]) {
            fs = s;
            break;
          }
        }
        n->keys[fs].assign(key, ti);
        n->values[fs].store(value, std::memory_order_relaxed);
        norder[newpos] = fs;
        kept[fs] = true;
      }
      uint64_t px = static_cast<uint64_t>(kc);
      int nib = 1;
      for (int i = 0; i < kc; ++i) {
        px |= static_cast<uint64_t>(norder[i]) << (4 * nib++);
      }
      for (int s = 0; s < W; ++s) {
        if (!kept[s]) {
          px |= static_cast<uint64_t>(s) << (4 * nib++);
        }
      }
      release_fence();
      n->permutation.store(px, std::memory_order_release);
    } else {
      // Sorted-array mode: slots already sorted; left keeps a prefix, and the
      // new key (if left) must be shifted in.
      int keep = new_left ? m - 1 : m;
      if (new_left) {
        for (int i = keep; i > pos; --i) {
          n->keys[i].copy_from(n->keys[i - 1]);
          n->values[i].store(n->values[i - 1].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        }
        n->keys[pos].assign(key, ti);
        n->values[pos].store(value, std::memory_order_relaxed);
        keep = m;
      }
      release_fence();
      n->nkeys.store(keep, std::memory_order_release);
    }

    Border* old_next = n->next.load(std::memory_order_relaxed);
    n2->next.store(old_next, std::memory_order_relaxed);
    release_fence();
    n->next.store(n2, std::memory_order_release);

    ascend(n, n2, &n2->lowkey, ti);
  }

  // Insert (sep, right) above left, splitting interiors as needed.
  void ascend(Node* left, Node* right, const Rep* sep, ThreadContext& ti) {
    for (;;) {
      Interior* p = locked_parent(left);
      if (p == nullptr) {
        Interior* r = make_interior(ti, true);
        r->nkeys.store(1, std::memory_order_relaxed);
        r->keys[0].copy_from(*sep);
        r->child[0].store(left, std::memory_order_relaxed);
        r->child[1].store(right, std::memory_order_relaxed);
        left->parent.store(r, std::memory_order_release);
        right->parent.store(r, std::memory_order_release);
        left->version().set_root(false);
        Node* expected = left;
        root_.compare_exchange_strong(expected, r, std::memory_order_acq_rel);
        left->version().unlock();
        right->version().unlock();
        return;
      }
      int nk = p->nkeys.load(std::memory_order_relaxed);
      if (nk < kWidth) {
        p->version().mark_inserting();
        int ci = p->find_child(left);
        assert(ci >= 0);
        for (int i = nk; i > ci; --i) {
          p->keys[i].copy_from(p->keys[i - 1]);
        }
        for (int i = nk + 1; i > ci + 1; --i) {
          p->child[i].store(p->child[i - 1].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        }
        p->keys[ci].copy_from(*sep);
        p->child[ci + 1].store(right, std::memory_order_release);
        right->parent.store(p, std::memory_order_release);
        p->nkeys.store(nk + 1, std::memory_order_release);
        left->version().unlock();
        right->version().unlock();
        p->version().unlock();
        return;
      }
      // Split the parent.
      p->version().mark_splitting();
      left->version().unlock();
      Interior* p2 = make_interior(ti, false);
      p2->version().assign_locked_from(p->version().load());
      p2->version().set_root(false);
      int ci = p->find_child(left);
      assert(ci >= 0);

      // Compose the virtual arrays (kWidth+1 keys, kWidth+2 children).
      const Rep* keys[kWidth + 1];
      Node* children[kWidth + 2];
      {
        int cpos = 0;
        for (int i = 0; i <= kWidth; ++i) {
          children[cpos++] = p->child[i].load(std::memory_order_relaxed);
          if (i == ci) {
            children[cpos++] = right;
          }
        }
        int kpos = 0;
        for (int i = 0; i < kWidth; ++i) {
          if (i == ci) {
            keys[kpos++] = sep;
          }
          keys[kpos++] = &p->keys[i];
        }
        if (ci == kWidth) {
          keys[kpos++] = sep;
        }
      }
      int mm = (kWidth + 1) / 2;
      // Copy the up-key by value into p2's spare storage (slot kWidth-1 of
      // p2 is unused: p2 receives kWidth - mm keys < kWidth).
      int rn = kWidth - mm;
      for (int i = 0; i < rn; ++i) {
        p2->keys[i].copy_from(*keys[mm + 1 + i]);
      }
      p2->nkeys.store(rn, std::memory_order_relaxed);
      for (int i = 0; i <= rn; ++i) {
        Node* c = children[mm + 1 + i];
        p2->child[i].store(c, std::memory_order_relaxed);
        c->parent.store(p2, std::memory_order_release);
      }
      // The separator that moves up. Stash a copy in p2's last key slot so
      // the next loop iteration has stable storage for it.
      p2->keys[kWidth - 1].copy_from(*keys[mm]);
      const Rep* upkey = &p2->keys[kWidth - 1];

      // Rewrite p's left portion (readers retry on vsplit). Descending order:
      // keys[i] may alias p->keys[i-1] (the shifted region right of ci), so
      // ascending copies would read already-overwritten slots.
      for (int i = mm - 1; i >= 0; --i) {
        if (keys[i] != &p->keys[i]) {
          p->keys[i].copy_from(*keys[i]);
        }
      }
      p->nkeys.store(mm, std::memory_order_relaxed);
      for (int i = 0; i <= mm; ++i) {
        Node* c = children[i];
        p->child[i].store(c, std::memory_order_relaxed);
        c->parent.store(p, std::memory_order_release);
      }
      right->version().unlock();
      left = p;
      right = p2;
      sep = upkey;
    }
  }

  static Interior* locked_parent(Node* n) {
    for (;;) {
      Node* p = n->parent.load(std::memory_order_acquire);
      if (p == nullptr) {
        return nullptr;
      }
      p->version().lock();
      if (n->parent.load(std::memory_order_acquire) == p) {
        return static_cast<Interior*>(p);
      }
      p->version().unlock();
    }
  }

  std::atomic<Node*> root_;
};

// The named Figure 8 / §6.4 variants.
struct BtreeNoPrefetchConfig : FastBtreeDefaultConfig {
  static constexpr bool kPrefetch = false;
  static constexpr bool kPermuter = false;
};
struct BtreePrefetchConfig : FastBtreeDefaultConfig {
  static constexpr bool kPermuter = false;
};
struct BtreePermuterConfig : FastBtreeDefaultConfig {};
struct BtreeFixed8Config : FastBtreeDefaultConfig {
  using Rep = KeyRep8;
};
struct PkBtreeConfig : FastBtreeDefaultConfig {
  using Rep = KeyRepPk2;
};

using BtreePlain = FastBtree<BtreeNoPrefetchConfig>;      // "B-tree"
using BtreePrefetch = FastBtree<BtreePrefetchConfig>;     // "+Prefetch"
using BtreePermuter = FastBtree<BtreePermuterConfig>;     // "+Permuter"
using BtreeFixed8 = FastBtree<BtreeFixed8Config>;         // §6.4 fixed keys
using PkBtree = FastBtree<PkBtreeConfig>;                 // §4.1 pkB-tree

}  // namespace masstree

#endif  // MASSTREE_BASELINES_FAST_BTREE_H_
