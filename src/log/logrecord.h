// Log record encoding (§5).
//
// "A put operation appends to the query thread's log buffer ... Update
//  version numbers are written into the log along with the operation, and
//  each log record is timestamped."
//
// Wire format (little-endian, as written):
//   u32 payload_len        (bytes between this field and the trailing crc)
//   payload:
//     u8  type             (1 = put, 2 = remove, 3 = marker, 4 = close)
//     u64 timestamp_us
//     u64 version
//     u32 key_len, key bytes
//     u16 ncols, then per column: u16 col, u32 len, bytes   (puts only)
//   u32 crc32(payload)
//
// Readers stop at a short or corrupt record: everything after a torn tail is
// discarded, which is exactly the semantics group commit needs.
//
// Format note: the checksum is CRC-32C (hardware-accelerated; see
// util/crc32.h) and kClose is a new record type, so log and checkpoint
// files written by builds predating both do not carry forward — their
// records read as corrupt from byte 0 and startup tail repair truncates
// them. There is no on-disk version field yet; if cross-version durability
// ever matters, add one here before changing the format again.
//
// The encoders come in two shapes: exact-size calculators plus in-place
// `encode_*_to(char*)` writers for the wait-free per-worker log buffers
// (the append fast path never allocates), and `std::string`-appending
// wrappers for recovery tooling and tests.

#ifndef MASSTREE_LOG_LOGRECORD_H_
#define MASSTREE_LOG_LOGRECORD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"
#include "value/row.h"

namespace masstree {

enum class LogType : uint8_t {
  kPut = 1,
  kRemove = 2,
  // Timestamp heartbeat: written by idle loggers so a quiet log does not
  // hold back the recovery cutoff t = min over logs of last timestamp (§5).
  kMarker = 3,
  // Clean-completion marker: written when a log's producer detaches (session
  // close, store shutdown). A log whose LAST record is kClose lost nothing,
  // so it contributes its records to recovery without bounding the cutoff —
  // otherwise every dead session's file would pin t at its final write.
  kClose = 4,
};

// A decoded log record (owning copy, used during recovery).
struct LogEntry {
  LogType type;
  uint64_t timestamp_us;
  uint64_t version;
  std::string key;
  std::vector<std::pair<uint16_t, std::string>> columns;
};

namespace logwire {

// Fixed per-record framing: u32 len + u8 type + u64 ts + u64 version +
// u32 key_len ... + u32 crc.
inline constexpr size_t kRecordOverhead = 4 + 1 + 8 + 8 + 4 + 4;
inline constexpr size_t kMinPayload = 21;  // type + ts + version + key_len

inline size_t put_record_size(std::string_view key,
                              const std::vector<ColumnUpdate>& updates) {
  size_t n = kRecordOverhead + key.size() + 2;
  for (const auto& u : updates) {
    n += 2 + 4 + u.data.size();
  }
  return n;
}

inline size_t remove_record_size(std::string_view key) {
  return kRecordOverhead + key.size();
}

inline constexpr size_t marker_record_size() { return kRecordOverhead; }

namespace detail {

struct RawWriter {
  char* p;
  char* payload_start;

  template <typename T>
  void raw(T v) {
    std::memcpy(p, &v, sizeof(T));
    p += sizeof(T);
  }
  void bytes(std::string_view s) {
    std::memcpy(p, s.data(), s.size());
    p += s.size();
  }
  void begin(LogType type, uint64_t timestamp_us, uint64_t version) {
    raw<uint32_t>(0);  // patched in finish()
    payload_start = p;
    raw<uint8_t>(static_cast<uint8_t>(type));
    raw<uint64_t>(timestamp_us);
    raw<uint64_t>(version);
  }
  // Returns the total record size (framing included).
  size_t finish() {
    uint32_t len = static_cast<uint32_t>(p - payload_start);
    std::memcpy(payload_start - sizeof(uint32_t), &len, sizeof(uint32_t));
    raw<uint32_t>(crc32(static_cast<const void*>(payload_start), len));
    return static_cast<size_t>(p - payload_start) + sizeof(uint32_t);
  }
};

}  // namespace detail

// In-place encoders: `dst` must have room for the matching *_record_size().
// Return the number of bytes written.
inline size_t encode_put_to(char* dst, std::string_view key,
                            const std::vector<ColumnUpdate>& updates, uint64_t version,
                            uint64_t timestamp_us) {
  detail::RawWriter w{dst, nullptr};
  w.begin(LogType::kPut, timestamp_us, version);
  w.raw<uint32_t>(static_cast<uint32_t>(key.size()));
  w.bytes(key);
  w.raw<uint16_t>(static_cast<uint16_t>(updates.size()));
  for (const auto& u : updates) {
    w.raw<uint16_t>(static_cast<uint16_t>(u.col));
    w.raw<uint32_t>(static_cast<uint32_t>(u.data.size()));
    w.bytes(u.data);
  }
  return w.finish();
}

inline size_t encode_remove_to(char* dst, std::string_view key, uint64_t version,
                               uint64_t timestamp_us) {
  detail::RawWriter w{dst, nullptr};
  w.begin(LogType::kRemove, timestamp_us, version);
  w.raw<uint32_t>(static_cast<uint32_t>(key.size()));
  w.bytes(key);
  return w.finish();
}

inline size_t encode_marker_to(char* dst, LogType type, uint64_t timestamp_us) {
  detail::RawWriter w{dst, nullptr};
  w.begin(type, timestamp_us, 0);
  w.raw<uint32_t>(0);  // key length
  return w.finish();
}

// String-appending wrappers (recovery tooling, tests).
inline void encode_put(std::string* out, std::string_view key,
                       const std::vector<ColumnUpdate>& updates, uint64_t version,
                       uint64_t timestamp_us) {
  size_t old = out->size();
  out->resize(old + put_record_size(key, updates));
  encode_put_to(out->data() + old, key, updates, version, timestamp_us);
}

inline void encode_remove(std::string* out, std::string_view key, uint64_t version,
                          uint64_t timestamp_us) {
  size_t old = out->size();
  out->resize(old + remove_record_size(key));
  encode_remove_to(out->data() + old, key, version, timestamp_us);
}

inline void encode_marker(std::string* out, uint64_t timestamp_us) {
  size_t old = out->size();
  out->resize(old + marker_record_size());
  encode_marker_to(out->data() + old, LogType::kMarker, timestamp_us);
}

inline void encode_close(std::string* out, uint64_t timestamp_us) {
  size_t old = out->size();
  out->resize(old + marker_record_size());
  encode_marker_to(out->data() + old, LogType::kClose, timestamp_us);
}

// Length of the valid record prefix of buf: frames and checksums are
// verified, but no entries are materialized — O(1) memory, used by startup
// tail repair where decode_all's owning copies of every key and value would
// be a pointless allocation spike.
inline size_t valid_prefix_bytes(std::string_view buf) {
  size_t pos = 0;
  for (;;) {
    if (buf.size() - pos < sizeof(uint32_t)) {
      return pos;
    }
    uint32_t len;
    std::memcpy(&len, buf.data() + pos, sizeof(uint32_t));
    size_t payload = pos + sizeof(uint32_t);
    if (len < kMinPayload || buf.size() - payload < len + sizeof(uint32_t)) {
      return pos;
    }
    uint32_t want_crc;
    std::memcpy(&want_crc, buf.data() + payload + len, sizeof(uint32_t));
    if (crc32(buf.data() + payload, static_cast<size_t>(len)) != want_crc) {
      return pos;
    }
    uint8_t type = static_cast<uint8_t>(buf[payload]);
    if (type < static_cast<uint8_t>(LogType::kPut) ||
        type > static_cast<uint8_t>(LogType::kClose)) {
      return pos;
    }
    pos = payload + len + sizeof(uint32_t);
  }
}

// Decode every complete, checksum-valid record from buf. Stops (without
// error) at a torn or corrupt tail. Returns the number of bytes consumed.
inline size_t decode_all(std::string_view buf, std::vector<LogEntry>* out) {
  size_t pos = 0;
  auto read_raw = [&buf](size_t at, auto* v) {
    std::memcpy(v, buf.data() + at, sizeof(*v));
  };
  for (;;) {
    if (buf.size() - pos < sizeof(uint32_t)) {
      return pos;
    }
    uint32_t len;
    read_raw(pos, &len);
    size_t payload = pos + sizeof(uint32_t);
    if (len < kMinPayload || buf.size() - payload < len + sizeof(uint32_t)) {
      return pos;  // torn tail
    }
    uint32_t want_crc;
    read_raw(payload + len, &want_crc);
    if (crc32(buf.data() + payload, static_cast<size_t>(len)) != want_crc) {
      return pos;  // corrupt record: discard it and everything after
    }
    size_t p = payload;
    LogEntry e;
    uint8_t type;
    read_raw(p, &type);
    p += 1;
    if (type < static_cast<uint8_t>(LogType::kPut) ||
        type > static_cast<uint8_t>(LogType::kClose)) {
      return pos;
    }
    e.type = static_cast<LogType>(type);
    read_raw(p, &e.timestamp_us);
    p += 8;
    read_raw(p, &e.version);
    p += 8;
    uint32_t klen;
    read_raw(p, &klen);
    p += 4;
    if (p + klen > payload + len) {
      return pos;
    }
    e.key.assign(buf.data() + p, klen);
    p += klen;
    if (e.type == LogType::kPut) {
      if (p + 2 > payload + len) {
        return pos;
      }
      uint16_t ncols;
      read_raw(p, &ncols);
      p += 2;
      for (uint16_t i = 0; i < ncols; ++i) {
        if (p + 6 > payload + len) {
          return pos;
        }
        uint16_t col;
        uint32_t clen;
        read_raw(p, &col);
        p += 2;
        read_raw(p, &clen);
        p += 4;
        if (p + clen > payload + len) {
          return pos;
        }
        e.columns.emplace_back(col, std::string(buf.data() + p, clen));
        p += clen;
      }
    }
    out->push_back(std::move(e));
    pos = payload + len + sizeof(uint32_t);
  }
}

}  // namespace logwire
}  // namespace masstree

#endif  // MASSTREE_LOG_LOGRECORD_H_
