// Log record encoding (§5).
//
// "A put operation appends to the query thread's log buffer ... Update
//  version numbers are written into the log along with the operation, and
//  each log record is timestamped."
//
// Wire format (little-endian, as written):
//   u32 payload_len        (bytes between this field and the trailing crc)
//   payload:
//     u8  type             (1 = put, 2 = remove)
//     u64 timestamp_us
//     u64 version
//     u32 key_len, key bytes
//     u16 ncols, then per column: u16 col, u32 len, bytes   (puts only)
//   u32 crc32(payload)
//
// Readers stop at a short or corrupt record: everything after a torn tail is
// discarded, which is exactly the semantics group commit needs.

#ifndef MASSTREE_LOG_LOGRECORD_H_
#define MASSTREE_LOG_LOGRECORD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"
#include "value/row.h"

namespace masstree {

enum class LogType : uint8_t {
  kPut = 1,
  kRemove = 2,
  // Timestamp heartbeat: written by idle loggers so a quiet log does not
  // hold back the recovery cutoff t = min over logs of last timestamp (§5).
  kMarker = 3,
};

// A decoded log record (owning copy, used during recovery).
struct LogEntry {
  LogType type;
  uint64_t timestamp_us;
  uint64_t version;
  std::string key;
  std::vector<std::pair<uint16_t, std::string>> columns;
};

namespace logwire {

template <typename T>
inline void put_raw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

inline void encode_put(std::string* out, std::string_view key,
                       const std::vector<ColumnUpdate>& updates, uint64_t version,
                       uint64_t timestamp_us) {
  size_t payload_start = out->size() + sizeof(uint32_t);
  put_raw<uint32_t>(out, 0);  // patched below
  put_raw<uint8_t>(out, static_cast<uint8_t>(LogType::kPut));
  put_raw<uint64_t>(out, timestamp_us);
  put_raw<uint64_t>(out, version);
  put_raw<uint32_t>(out, static_cast<uint32_t>(key.size()));
  out->append(key);
  put_raw<uint16_t>(out, static_cast<uint16_t>(updates.size()));
  for (const auto& u : updates) {
    put_raw<uint16_t>(out, static_cast<uint16_t>(u.col));
    put_raw<uint32_t>(out, static_cast<uint32_t>(u.data.size()));
    out->append(u.data);
  }
  uint32_t len = static_cast<uint32_t>(out->size() - payload_start);
  std::memcpy(out->data() + payload_start - sizeof(uint32_t), &len, sizeof(uint32_t));
  uint32_t crc = crc32(out->data() + payload_start, static_cast<size_t>(len));
  put_raw<uint32_t>(out, crc);
}

inline void encode_marker(std::string* out, uint64_t timestamp_us) {
  size_t payload_start = out->size() + sizeof(uint32_t);
  put_raw<uint32_t>(out, 0);
  put_raw<uint8_t>(out, static_cast<uint8_t>(LogType::kMarker));
  put_raw<uint64_t>(out, timestamp_us);
  put_raw<uint64_t>(out, 0);   // version
  put_raw<uint32_t>(out, 0);   // key length
  uint32_t len = static_cast<uint32_t>(out->size() - payload_start);
  std::memcpy(out->data() + payload_start - sizeof(uint32_t), &len, sizeof(uint32_t));
  uint32_t crc = crc32(out->data() + payload_start, static_cast<size_t>(len));
  put_raw<uint32_t>(out, crc);
}

inline void encode_remove(std::string* out, std::string_view key, uint64_t version,
                          uint64_t timestamp_us) {
  size_t payload_start = out->size() + sizeof(uint32_t);
  put_raw<uint32_t>(out, 0);
  put_raw<uint8_t>(out, static_cast<uint8_t>(LogType::kRemove));
  put_raw<uint64_t>(out, timestamp_us);
  put_raw<uint64_t>(out, version);
  put_raw<uint32_t>(out, static_cast<uint32_t>(key.size()));
  out->append(key);
  uint32_t len = static_cast<uint32_t>(out->size() - payload_start);
  std::memcpy(out->data() + payload_start - sizeof(uint32_t), &len, sizeof(uint32_t));
  uint32_t crc = crc32(out->data() + payload_start, static_cast<size_t>(len));
  put_raw<uint32_t>(out, crc);
}

// Decode every complete, checksum-valid record from buf. Stops (without
// error) at a torn or corrupt tail. Returns the number of bytes consumed.
inline size_t decode_all(std::string_view buf, std::vector<LogEntry>* out) {
  size_t pos = 0;
  auto read_raw = [&buf](size_t at, auto* v) {
    std::memcpy(v, buf.data() + at, sizeof(*v));
  };
  for (;;) {
    if (buf.size() - pos < sizeof(uint32_t)) {
      return pos;
    }
    uint32_t len;
    read_raw(pos, &len);
    size_t payload = pos + sizeof(uint32_t);
    if (len < 21 || buf.size() - payload < len + sizeof(uint32_t)) {
      return pos;  // torn tail
    }
    uint32_t want_crc;
    read_raw(payload + len, &want_crc);
    if (crc32(buf.data() + payload, static_cast<size_t>(len)) != want_crc) {
      return pos;  // corrupt record: discard it and everything after
    }
    size_t p = payload;
    LogEntry e;
    uint8_t type;
    read_raw(p, &type);
    p += 1;
    if (type != static_cast<uint8_t>(LogType::kPut) &&
        type != static_cast<uint8_t>(LogType::kRemove) &&
        type != static_cast<uint8_t>(LogType::kMarker)) {
      return pos;
    }
    e.type = static_cast<LogType>(type);
    read_raw(p, &e.timestamp_us);
    p += 8;
    read_raw(p, &e.version);
    p += 8;
    uint32_t klen;
    read_raw(p, &klen);
    p += 4;
    if (p + klen > payload + len) {
      return pos;
    }
    e.key.assign(buf.data() + p, klen);
    p += klen;
    if (e.type == LogType::kPut) {
      if (p + 2 > payload + len) {
        return pos;
      }
      uint16_t ncols;
      read_raw(p, &ncols);
      p += 2;
      for (uint16_t i = 0; i < ncols; ++i) {
        if (p + 6 > payload + len) {
          return pos;
        }
        uint16_t col;
        uint32_t clen;
        read_raw(p, &col);
        p += 2;
        read_raw(p, &clen);
        p += 4;
        if (p + clen > payload + len) {
          return pos;
        }
        e.columns.emplace_back(col, std::string(buf.data() + p, clen));
        p += clen;
      }
    }
    out->push_back(std::move(e));
    pos = payload + len + sizeof(uint32_t);
  }
}

}  // namespace logwire
}  // namespace masstree

#endif  // MASSTREE_LOG_LOGRECORD_H_
