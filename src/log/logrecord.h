// Log record encoding (§5).
//
// "A put operation appends to the query thread's log buffer ... Update
//  version numbers are written into the log along with the operation, and
//  each log record is timestamped."
//
// == Format v2 (current) ==
//
// A v2 stream begins with a 5-byte file header and may contain further
// headers at record boundaries (a v1 file adopted by a newer build gets a
// mid-file header before the first v2 append):
//
//   "MTLG" u8 format_version            (2 = this format)
//
// Each record is varint-framed (LEB128, canonical — overlong encodings
// are rejected):
//
//   varint payload_len | payload | u32 crc32c(payload)
//
//   payload:
//     u8 tag             bits 0-2: wire type
//                          1 = put (multi-column)   2 = remove
//                          3 = marker               4 = close
//                          5 = put (single column, no ncols/ncol framing)
//                        0x10: timestamp is a zigzag delta
//                        0x20: version field present (version != 0)
//                        other bits must be zero
//     varint ts          absolute microseconds, or zigzag(ts - prev_ts)
//                        when the 0x10 flag is set; `prev_ts` is the
//                        timestamp of the preceding put/remove record in
//                        the stream (markers never carry or update the
//                        delta base, and a format header resets it)
//     [varint version]   only when the 0x20 flag is set
//     varint klen, key   put/remove only
//     columns            put only; single-column puts (tag 5) omit the
//                        count, multi-column puts (tag 1) carry varint
//                        ncols first.  Per column:
//                          varint col
//                          varint h = raw_len * 2 | compressed
//                          [varint stored_len]  only when compressed
//                          stored bytes         (lz block when compressed,
//                                                raw bytes otherwise)
//
// Readers stop at a short or corrupt record: everything after a torn tail
// is discarded, which is exactly the semantics group commit needs.  A
// header with an *unknown* version is different from corruption — the
// file's contents are presumptively valid but unreadable, so decoding
// fail-stops (throws) instead of silently truncating to the last point
// this build understands.
//
// == Format v1 (legacy, read-only) ==
//
// Headerless; fixed little-endian framing:
//   u32 payload_len | (u8 type, u64 ts, u64 version, u32 klen, key,
//   [u16 ncols, (u16 col, u32 len, bytes)*]) | u32 crc32c(payload)
// A stream that does not start with the "MTLG" magic is decoded as v1
// until a mid-stream header switches it.  v1 encoders survive below
// (suffixed _v1) for fixtures and the v2-vs-v1 oracle tests; new files
// are always v2.
//
// Version policy: bumping the format requires a new header version byte;
// old readers fail-stop on it, new readers must keep decoding every
// shipped version.  The CRC is CRC-32C (hardware-accelerated; see
// util/crc32.h).
//
// The encoders come in two shapes: exact-size calculators plus in-place
// `encode_*_to(char*)` writers for the wait-free per-worker log buffers
// (the append fast path never allocates — column payloads are described
// by ColPlan entries pointing at caller-owned bytes, compressed or raw),
// and `std::string`-appending wrappers for recovery tooling and tests
// (these prepend a header when the string is empty and always write
// absolute timestamps).

#ifndef MASSTREE_LOG_LOGRECORD_H_
#define MASSTREE_LOG_LOGRECORD_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"
#include "util/lz.h"
#include "util/varint.h"
#include "value/row.h"

namespace masstree {

enum class LogType : uint8_t {
  kPut = 1,
  kRemove = 2,
  // Timestamp heartbeat: written by idle loggers so a quiet log does not
  // hold back the recovery cutoff t = min over logs of last timestamp (§5).
  kMarker = 3,
  // Clean-completion marker: written when a log's producer detaches (session
  // close, store shutdown). A log whose LAST record is kClose lost nothing,
  // so it contributes its records to recovery without bounding the cutoff —
  // otherwise every dead session's file would pin t at its final write.
  kClose = 4,
};

// A decoded log record (owning copy, used during recovery).
struct LogEntry {
  LogType type;
  uint64_t timestamp_us;
  uint64_t version;
  std::string key;
  std::vector<std::pair<uint16_t, std::string>> columns;
  // Offset one past this record in the decoded buffer.  Variable-length
  // framing (varints, deltas, compression) means the wire size is not
  // reproducible from the decoded fields, so seal/truncate decisions use
  // this instead of re-encoding.
  size_t wire_end = 0;
};

namespace logwire {

// -- File header --------------------------------------------------------

inline constexpr char kLogMagic[4] = {'M', 'T', 'L', 'G'};
inline constexpr uint8_t kFormatV2 = 2;
inline constexpr size_t kHeaderSize = 5;

inline size_t encode_header_to(char* dst) {
  std::memcpy(dst, kLogMagic, 4);
  dst[4] = static_cast<char>(kFormatV2);
  return kHeaderSize;
}

inline void encode_header(std::string* out) {
  char h[kHeaderSize];
  encode_header_to(h);
  out->append(h, kHeaderSize);
}

// -- v2 wire constants --------------------------------------------------

// Wire tag for a single-column put (decodes back to LogType::kPut).
inline constexpr uint8_t kTagPutSingle = 5;
inline constexpr uint8_t kFlagDeltaTs = 0x10;
inline constexpr uint8_t kFlagHasVersion = 0x20;

inline constexpr size_t kMinPayloadV2 = 2;          // tag + 1-byte ts
inline constexpr size_t kMaxPayloadV2 = 1u << 30;   // sanity cap
inline constexpr size_t kMaxColumnRaw = 1u << 28;   // cap decompressed size

// One column of a planned put record.  `data` points at the bytes to be
// stored verbatim (already-compressed bytes when `compressed`); the
// caller owns them (LogShard points these at its stack scratch).
struct ColPlan {
  uint32_t col = 0;
  const char* data = nullptr;
  uint32_t stored_len = 0;
  uint32_t raw_len = 0;  // == stored_len when not compressed
  bool compressed = false;
};

namespace detail {

inline size_t col_plan_bytes(const ColPlan* cols, size_t ncols) {
  size_t n = 0;
  for (size_t i = 0; i < ncols; ++i) {
    const ColPlan& c = cols[i];
    n += vint::size(c.col) +
         vint::size((static_cast<uint64_t>(c.raw_len) << 1) |
                    (c.compressed ? 1 : 0));
    if (c.compressed) n += vint::size(c.stored_len);
    n += c.stored_len;
  }
  return n;
}

inline size_t put_payload_size(std::string_view key, const ColPlan* cols,
                               size_t ncols, uint64_t version,
                               uint64_t ts_field) {
  size_t n = 1 + vint::size(ts_field);
  if (version != 0) n += vint::size(version);
  n += vint::size(key.size()) + key.size();
  if (ncols != 1) n += vint::size(ncols);
  return n + col_plan_bytes(cols, ncols);
}

inline size_t remove_payload_size(std::string_view key, uint64_t version,
                                  uint64_t ts_field) {
  size_t n = 1 + vint::size(ts_field);
  if (version != 0) n += vint::size(version);
  return n + vint::size(key.size()) + key.size();
}

}  // namespace detail

// Record sizes for the in-place encoders.  `ts_field` is the value the
// timestamp varint will actually carry: the absolute microsecond stamp,
// or vint::zigzag(ts - prev_ts) when encoding a delta — varint width
// depends on it.
inline size_t put_record_size_v2(std::string_view key, const ColPlan* cols,
                                 size_t ncols, uint64_t version,
                                 uint64_t ts_field) {
  size_t payload =
      detail::put_payload_size(key, cols, ncols, version, ts_field);
  return vint::size(payload) + payload + sizeof(uint32_t);
}

inline size_t remove_record_size_v2(std::string_view key, uint64_t version,
                                    uint64_t ts_field) {
  size_t payload = detail::remove_payload_size(key, version, ts_field);
  return vint::size(payload) + payload + sizeof(uint32_t);
}

inline size_t marker_record_size_v2(uint64_t timestamp_us) {
  size_t payload = 1 + vint::size(timestamp_us);
  return vint::size(payload) + payload + sizeof(uint32_t);
}

// In-place v2 encoders.  `dst` must have room for the matching
// *_record_size_v2 (computed with the same ts_field).  Return bytes
// written.  `delta` says whether ts_field is a zigzag delta.
inline size_t encode_put_v2_to(char* dst, std::string_view key,
                               const ColPlan* cols, size_t ncols,
                               uint64_t version, uint64_t ts_field,
                               bool delta) {
  size_t payload =
      detail::put_payload_size(key, cols, ncols, version, ts_field);
  char* p = vint::put(dst, payload);
  char* payload_start = p;
  uint8_t tag = ncols == 1 ? kTagPutSingle
                           : static_cast<uint8_t>(LogType::kPut);
  if (delta) tag |= kFlagDeltaTs;
  if (version != 0) tag |= kFlagHasVersion;
  *p++ = static_cast<char>(tag);
  p = vint::put(p, ts_field);
  if (version != 0) p = vint::put(p, version);
  p = vint::put(p, key.size());
  std::memcpy(p, key.data(), key.size());
  p += key.size();
  if (ncols != 1) p = vint::put(p, ncols);
  for (size_t i = 0; i < ncols; ++i) {
    const ColPlan& c = cols[i];
    p = vint::put(p, c.col);
    p = vint::put(p, (static_cast<uint64_t>(c.raw_len) << 1) |
                         (c.compressed ? 1 : 0));
    if (c.compressed) p = vint::put(p, c.stored_len);
    std::memcpy(p, c.data, c.stored_len);
    p += c.stored_len;
  }
  uint32_t crc = crc32(payload_start, static_cast<size_t>(p - payload_start));
  std::memcpy(p, &crc, sizeof(crc));
  p += sizeof(crc);
  return static_cast<size_t>(p - dst);
}

inline size_t encode_remove_v2_to(char* dst, std::string_view key,
                                  uint64_t version, uint64_t ts_field,
                                  bool delta) {
  size_t payload = detail::remove_payload_size(key, version, ts_field);
  char* p = vint::put(dst, payload);
  char* payload_start = p;
  uint8_t tag = static_cast<uint8_t>(LogType::kRemove);
  if (delta) tag |= kFlagDeltaTs;
  if (version != 0) tag |= kFlagHasVersion;
  *p++ = static_cast<char>(tag);
  p = vint::put(p, ts_field);
  if (version != 0) p = vint::put(p, version);
  p = vint::put(p, key.size());
  std::memcpy(p, key.data(), key.size());
  p += key.size();
  uint32_t crc = crc32(payload_start, static_cast<size_t>(p - payload_start));
  std::memcpy(p, &crc, sizeof(crc));
  p += sizeof(crc);
  return static_cast<size_t>(p - dst);
}

// Markers and kClose always carry an absolute timestamp and never
// participate in delta chains: the log writer stamps them directly into
// the file between arena flushes, so they can land between two records
// whose delta link must survive them.
inline size_t encode_marker_v2_to(char* dst, LogType type,
                                  uint64_t timestamp_us) {
  size_t payload = 1 + vint::size(timestamp_us);
  char* p = vint::put(dst, payload);
  char* payload_start = p;
  *p++ = static_cast<char>(static_cast<uint8_t>(type));
  p = vint::put(p, timestamp_us);
  uint32_t crc = crc32(payload_start, static_cast<size_t>(p - payload_start));
  std::memcpy(p, &crc, sizeof(crc));
  p += sizeof(crc);
  return static_cast<size_t>(p - dst);
}

// -- String-appending wrappers (recovery tooling, tests) ----------------
//
// These write v2 with absolute timestamps and no compression, and
// prepend a format header when `out` is empty so the result is a valid
// standalone v2 stream.

inline void encode_put(std::string* out, std::string_view key,
                       const std::vector<ColumnUpdate>& updates,
                       uint64_t version, uint64_t timestamp_us) {
  if (out->empty()) encode_header(out);
  std::vector<ColPlan> plans(updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    plans[i].col = updates[i].col;
    plans[i].data = updates[i].data.data();
    plans[i].stored_len = static_cast<uint32_t>(updates[i].data.size());
    plans[i].raw_len = plans[i].stored_len;
    plans[i].compressed = false;
  }
  size_t old = out->size();
  out->resize(old + put_record_size_v2(key, plans.data(), plans.size(),
                                       version, timestamp_us));
  encode_put_v2_to(out->data() + old, key, plans.data(), plans.size(),
                   version, timestamp_us, /*delta=*/false);
}

inline void encode_remove(std::string* out, std::string_view key,
                          uint64_t version, uint64_t timestamp_us) {
  if (out->empty()) encode_header(out);
  size_t old = out->size();
  out->resize(old + remove_record_size_v2(key, version, timestamp_us));
  encode_remove_v2_to(out->data() + old, key, version, timestamp_us,
                      /*delta=*/false);
}

inline void encode_marker(std::string* out, uint64_t timestamp_us) {
  if (out->empty()) encode_header(out);
  size_t old = out->size();
  out->resize(old + marker_record_size_v2(timestamp_us));
  encode_marker_v2_to(out->data() + old, LogType::kMarker, timestamp_us);
}

inline void encode_close(std::string* out, uint64_t timestamp_us) {
  if (out->empty()) encode_header(out);
  size_t old = out->size();
  out->resize(old + marker_record_size_v2(timestamp_us));
  encode_marker_v2_to(out->data() + old, LogType::kClose, timestamp_us);
}

// -- v1 encoders (legacy; fixtures and oracle tests only) ---------------

// Fixed per-record v1 framing: u32 len + u8 type + u64 ts + u64 version +
// u32 key_len ... + u32 crc.
inline constexpr size_t kRecordOverheadV1 = 4 + 1 + 8 + 8 + 4 + 4;
inline constexpr size_t kMinPayloadV1 = 21;  // type + ts + version + key_len

inline size_t put_record_size_v1(std::string_view key,
                                 const std::vector<ColumnUpdate>& updates) {
  size_t n = kRecordOverheadV1 + key.size() + 2;
  for (const auto& u : updates) {
    n += 2 + 4 + u.data.size();
  }
  return n;
}

inline size_t remove_record_size_v1(std::string_view key) {
  return kRecordOverheadV1 + key.size();
}

inline constexpr size_t marker_record_size_v1() { return kRecordOverheadV1; }

namespace detail {

struct RawWriterV1 {
  char* p;
  char* payload_start;

  template <typename T>
  void raw(T v) {
    std::memcpy(p, &v, sizeof(T));
    p += sizeof(T);
  }
  void bytes(std::string_view s) {
    std::memcpy(p, s.data(), s.size());
    p += s.size();
  }
  void begin(LogType type, uint64_t timestamp_us, uint64_t version) {
    raw<uint32_t>(0);  // patched in finish()
    payload_start = p;
    raw<uint8_t>(static_cast<uint8_t>(type));
    raw<uint64_t>(timestamp_us);
    raw<uint64_t>(version);
  }
  // Returns the total record size (framing included).
  size_t finish() {
    uint32_t len = static_cast<uint32_t>(p - payload_start);
    std::memcpy(payload_start - sizeof(uint32_t), &len, sizeof(uint32_t));
    raw<uint32_t>(crc32(static_cast<const void*>(payload_start), len));
    return static_cast<size_t>(p - payload_start) + sizeof(uint32_t);
  }
};

}  // namespace detail

inline void encode_put_v1(std::string* out, std::string_view key,
                          const std::vector<ColumnUpdate>& updates,
                          uint64_t version, uint64_t timestamp_us) {
  size_t old = out->size();
  out->resize(old + put_record_size_v1(key, updates));
  detail::RawWriterV1 w{out->data() + old, nullptr};
  w.begin(LogType::kPut, timestamp_us, version);
  w.raw<uint32_t>(static_cast<uint32_t>(key.size()));
  w.bytes(key);
  w.raw<uint16_t>(static_cast<uint16_t>(updates.size()));
  for (const auto& u : updates) {
    w.raw<uint16_t>(static_cast<uint16_t>(u.col));
    w.raw<uint32_t>(static_cast<uint32_t>(u.data.size()));
    w.bytes(u.data);
  }
  w.finish();
}

inline void encode_remove_v1(std::string* out, std::string_view key,
                             uint64_t version, uint64_t timestamp_us) {
  size_t old = out->size();
  out->resize(old + remove_record_size_v1(key));
  detail::RawWriterV1 w{out->data() + old, nullptr};
  w.begin(LogType::kRemove, timestamp_us, version);
  w.raw<uint32_t>(static_cast<uint32_t>(key.size()));
  w.bytes(key);
  w.finish();
}

inline void encode_marker_v1(std::string* out, LogType type,
                             uint64_t timestamp_us) {
  size_t old = out->size();
  out->resize(old + marker_record_size_v1());
  detail::RawWriterV1 w{out->data() + old, nullptr};
  w.begin(type, timestamp_us, 0);
  w.raw<uint32_t>(0);  // key length
  w.finish();
}

// -- Decoding (v1 + v2, mid-stream format switches) ---------------------

namespace detail {

// Header probe at a record boundary.  Returns:
//   0  no header here (parse as a record)
//   1  header consumed, *fmt updated, pos advanced
//   2  torn header prefix — stop cleanly at pos
// Throws on an unknown format version: that file is valid but
// unreadable, and truncating it would silently destroy committed data.
inline int probe_header(std::string_view buf, size_t* pos, uint8_t* fmt) {
  size_t rem = buf.size() - *pos;
  size_t cmp = rem < 4 ? rem : 4;
  if (cmp == 0 || std::memcmp(buf.data() + *pos, kLogMagic, cmp) != 0) {
    return 0;
  }
  if (rem < kHeaderSize) return 2;  // torn header
  uint8_t ver = static_cast<uint8_t>(buf[*pos + 4]);
  if (ver != 1 && ver != kFormatV2) {
    throw std::runtime_error(
        "log: unsupported format version " + std::to_string(ver) +
        " (this build reads v1-v2); refusing to truncate");
  }
  *fmt = ver;
  *pos += kHeaderSize;
  return 1;
}

struct V2Frame {
  size_t payload_off;
  size_t payload_len;
  size_t end;  // one past the crc
};

// Validate the v2 frame (length varint, bounds, crc) at `pos`.
// Returns false on a torn or corrupt frame (stop at pos).
inline bool check_frame_v2(std::string_view buf, size_t pos, V2Frame* f) {
  const char* base = buf.data();
  uint64_t len;
  const char* q = vint::get(base + pos, base + buf.size(), &len);
  if (!q || len < kMinPayloadV2 || len > kMaxPayloadV2) return false;
  size_t payload_off = static_cast<size_t>(q - base);
  if (buf.size() - payload_off < len + sizeof(uint32_t)) return false;
  uint32_t want_crc;
  std::memcpy(&want_crc, base + payload_off + len, sizeof(uint32_t));
  if (crc32(base + payload_off, static_cast<size_t>(len)) != want_crc) {
    return false;
  }
  f->payload_off = payload_off;
  f->payload_len = static_cast<size_t>(len);
  f->end = payload_off + static_cast<size_t>(len) + sizeof(uint32_t);
  return true;
}

// Tag sanity shared by the cheap validator and the full decoder.
inline bool tag_ok(uint8_t tag) {
  uint8_t type = tag & 0x07;
  if (type < static_cast<uint8_t>(LogType::kPut) || type > kTagPutSingle) {
    return false;
  }
  if (tag & ~uint8_t(0x07 | kFlagDeltaTs | kFlagHasVersion)) return false;
  if (type == static_cast<uint8_t>(LogType::kMarker) ||
      type == static_cast<uint8_t>(LogType::kClose)) {
    // Markers are always absolute and versionless.
    if (tag & (kFlagDeltaTs | kFlagHasVersion)) return false;
  }
  return true;
}

}  // namespace detail

// Length of the valid record prefix of buf: frames and checksums are
// verified, but no entries are materialized — O(1) memory, used by startup
// tail repair where decode_all's owning copies of every key and value would
// be a pointless allocation spike.  Throws on an unknown header version.
inline size_t valid_prefix_bytes(std::string_view buf) {
  size_t pos = 0;
  uint8_t fmt = 1;
  for (;;) {
    if (pos == buf.size()) return pos;
    int h = detail::probe_header(buf, &pos, &fmt);
    if (h == 2) return pos;
    if (h == 1) continue;
    if (fmt == 1) {
      if (buf.size() - pos < sizeof(uint32_t)) return pos;
      uint32_t len;
      std::memcpy(&len, buf.data() + pos, sizeof(uint32_t));
      size_t payload = pos + sizeof(uint32_t);
      if (len < kMinPayloadV1 ||
          buf.size() - payload < len + sizeof(uint32_t)) {
        return pos;
      }
      uint32_t want_crc;
      std::memcpy(&want_crc, buf.data() + payload + len, sizeof(uint32_t));
      if (crc32(buf.data() + payload, static_cast<size_t>(len)) != want_crc) {
        return pos;
      }
      uint8_t type = static_cast<uint8_t>(buf[payload]);
      if (type < static_cast<uint8_t>(LogType::kPut) ||
          type > static_cast<uint8_t>(LogType::kClose)) {
        return pos;
      }
      pos = payload + len + sizeof(uint32_t);
    } else {
      detail::V2Frame f;
      if (!detail::check_frame_v2(buf, pos, &f)) return pos;
      if (!detail::tag_ok(static_cast<uint8_t>(buf[f.payload_off]))) {
        return pos;
      }
      pos = f.end;
    }
  }
}

namespace detail {

// Decode the v2 record whose frame was already validated.  Returns false
// on a malformed payload (decoder stops at the record start).  Updates
// the delta base via *prev_ts / *have_prev.
inline bool decode_record_v2(std::string_view buf, const V2Frame& f,
                             LogEntry* e, uint64_t* prev_ts,
                             bool* have_prev) {
  const char* p = buf.data() + f.payload_off;
  const char* end = p + f.payload_len;
  uint8_t tag = static_cast<uint8_t>(*p++);
  if (!tag_ok(tag)) return false;
  uint8_t type = tag & 0x07;
  uint64_t ts_field;
  p = vint::get(p, end, &ts_field);
  if (!p) return false;
  if (tag & kFlagDeltaTs) {
    if (!*have_prev) return false;  // dangling delta: base was discarded
    e->timestamp_us = *prev_ts +
        static_cast<uint64_t>(vint::unzigzag(ts_field));
  } else {
    e->timestamp_us = ts_field;
  }
  e->version = 0;
  if (tag & kFlagHasVersion) {
    p = vint::get(p, end, &e->version);
    if (!p || e->version == 0) return false;
  }
  if (type == static_cast<uint8_t>(LogType::kMarker) ||
      type == static_cast<uint8_t>(LogType::kClose)) {
    if (p != end) return false;
    e->type = static_cast<LogType>(type);
    return true;
  }
  uint64_t klen;
  p = vint::get(p, end, &klen);
  if (!p || klen > static_cast<size_t>(end - p)) return false;
  e->key.assign(p, static_cast<size_t>(klen));
  p += klen;
  if (type == static_cast<uint8_t>(LogType::kRemove)) {
    if (p != end) return false;
    e->type = LogType::kRemove;
  } else {
    e->type = LogType::kPut;
    uint64_t ncols = 1;
    if (type == static_cast<uint8_t>(LogType::kPut)) {
      p = vint::get(p, end, &ncols);
      if (!p || ncols > 0xffff) return false;
    }
    for (uint64_t i = 0; i < ncols; ++i) {
      uint64_t col, h;
      p = vint::get(p, end, &col);
      if (!p || col > 0xffff) return false;
      p = vint::get(p, end, &h);
      if (!p) return false;
      uint64_t raw_len = h >> 1;
      if (raw_len > kMaxColumnRaw) return false;
      if (h & 1) {
        uint64_t stored_len;
        p = vint::get(p, end, &stored_len);
        if (!p || stored_len > static_cast<size_t>(end - p)) return false;
        std::string out;
        out.resize(static_cast<size_t>(raw_len));
        if (!lz::decompress(p, static_cast<size_t>(stored_len), out.data(),
                            out.size())) {
          return false;
        }
        p += stored_len;
        e->columns.emplace_back(static_cast<uint16_t>(col), std::move(out));
      } else {
        if (raw_len > static_cast<size_t>(end - p)) return false;
        e->columns.emplace_back(static_cast<uint16_t>(col),
                                std::string(p, static_cast<size_t>(raw_len)));
        p += raw_len;
      }
    }
    if (p != end) return false;
  }
  // Only data records move the delta base; the caller skips this for
  // markers via the early return above.
  *prev_ts = e->timestamp_us;
  *have_prev = true;
  return true;
}

}  // namespace detail

// Decode every complete, checksum-valid record from buf. Stops (without
// error) at a torn or corrupt tail. Returns the number of bytes consumed.
// Throws on an unknown format-header version (fail-stop, never truncate).
inline size_t decode_all(std::string_view buf, std::vector<LogEntry>* out) {
  size_t pos = 0;
  uint8_t fmt = 1;
  uint64_t prev_ts = 0;
  bool have_prev = false;
  auto read_raw = [&buf](size_t at, auto* v) {
    std::memcpy(v, buf.data() + at, sizeof(*v));
  };
  for (;;) {
    if (pos == buf.size()) return pos;
    int h = detail::probe_header(buf, &pos, &fmt);
    if (h == 2) return pos;
    if (h == 1) {
      have_prev = false;  // a header resets the delta base
      continue;
    }
    if (fmt == 1) {
      if (buf.size() - pos < sizeof(uint32_t)) {
        return pos;
      }
      uint32_t len;
      read_raw(pos, &len);
      size_t payload = pos + sizeof(uint32_t);
      if (len < kMinPayloadV1 ||
          buf.size() - payload < len + sizeof(uint32_t)) {
        return pos;  // torn tail
      }
      uint32_t want_crc;
      read_raw(payload + len, &want_crc);
      if (crc32(buf.data() + payload, static_cast<size_t>(len)) != want_crc) {
        return pos;  // corrupt record: discard it and everything after
      }
      size_t p = payload;
      LogEntry e;
      uint8_t type;
      read_raw(p, &type);
      p += 1;
      if (type < static_cast<uint8_t>(LogType::kPut) ||
          type > static_cast<uint8_t>(LogType::kClose)) {
        return pos;
      }
      e.type = static_cast<LogType>(type);
      read_raw(p, &e.timestamp_us);
      p += 8;
      read_raw(p, &e.version);
      p += 8;
      uint32_t klen;
      read_raw(p, &klen);
      p += 4;
      if (p + klen > payload + len) {
        return pos;
      }
      e.key.assign(buf.data() + p, klen);
      p += klen;
      if (e.type == LogType::kPut) {
        if (p + 2 > payload + len) {
          return pos;
        }
        uint16_t ncols;
        read_raw(p, &ncols);
        p += 2;
        for (uint16_t i = 0; i < ncols; ++i) {
          if (p + 6 > payload + len) {
            return pos;
          }
          uint16_t col;
          uint32_t clen;
          read_raw(p, &col);
          p += 2;
          read_raw(p, &clen);
          p += 4;
          if (p + clen > payload + len) {
            return pos;
          }
          e.columns.emplace_back(col, std::string(buf.data() + p, clen));
          p += clen;
        }
      }
      pos = payload + len + sizeof(uint32_t);
      e.wire_end = pos;
      out->push_back(std::move(e));
    } else {
      detail::V2Frame f;
      if (!detail::check_frame_v2(buf, pos, &f)) return pos;
      LogEntry e;
      if (!detail::decode_record_v2(buf, f, &e, &prev_ts, &have_prev)) {
        return pos;
      }
      pos = f.end;
      e.wire_end = pos;
      out->push_back(std::move(e));
    }
  }
}

}  // namespace logwire
}  // namespace masstree

#endif  // MASSTREE_LOG_LOGRECORD_H_
