// Log recovery (§5).
//
// "When restoring a database from logs, Masstree sorts logs by timestamp. It
//  first calculates the recovery cutoff point, which is the minimum of the
//  logs' last timestamps, t = min over logs of max update timestamp ...
//  Masstree plays back the logged updates in parallel, taking care to apply a
//  value's updates in increasing order by version, except that updates with
//  u.timestamp > t are dropped."

#ifndef MASSTREE_LOG_RECOVERY_H_
#define MASSTREE_LOG_RECOVERY_H_

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "log/logrecord.h"

namespace masstree {

// Reads one log file, returning all intact records (stops at a torn or
// corrupt tail). Missing files read as empty.
inline std::vector<LogEntry> read_log_file(const std::string& path) {
  std::vector<LogEntry> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return out;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  logwire::decode_all(data, &out);
  return out;
}

struct RecoverySet {
  std::vector<std::vector<LogEntry>> logs;  // one vector per log file
  uint64_t cutoff_us = std::numeric_limits<uint64_t>::max();
};

// Load every per-worker log and compute the §5 cutoff: the minimum over
// non-empty logs of their last (max) timestamp. A log that recorded nothing
// does not constrain the cutoff.
inline RecoverySet load_logs(const std::vector<std::string>& paths) {
  RecoverySet rs;
  bool any = false;
  for (const auto& p : paths) {
    rs.logs.push_back(read_log_file(p));
    const auto& log = rs.logs.back();
    if (!log.empty()) {
      uint64_t last = 0;
      for (const auto& e : log) {
        last = std::max(last, e.timestamp_us);
      }
      rs.cutoff_us = std::min(rs.cutoff_us, last);
      any = true;
    }
  }
  if (!any) {
    rs.cutoff_us = 0;
  }
  return rs;
}

// Flatten + filter + sort for replay: drops entries with timestamp > cutoff
// or < since (already covered by a checkpoint), and orders by value version
// so per-key application order is correct. Partitioning by key hash for
// parallel replay preserves this order within each key.
inline std::vector<LogEntry> replay_plan(RecoverySet&& rs, uint64_t since_us = 0) {
  std::vector<LogEntry> plan;
  for (auto& log : rs.logs) {
    for (auto& e : log) {
      if (e.type != LogType::kMarker && e.timestamp_us <= rs.cutoff_us &&
          e.timestamp_us >= since_us) {
        plan.push_back(std::move(e));
      }
    }
  }
  std::sort(plan.begin(), plan.end(),
            [](const LogEntry& a, const LogEntry& b) { return a.version < b.version; });
  return plan;
}

}  // namespace masstree

#endif  // MASSTREE_LOG_RECOVERY_H_
