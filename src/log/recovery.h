// Log recovery (§5).
//
// "When restoring a database from logs, Masstree sorts logs by timestamp. It
//  first calculates the recovery cutoff point, which is the minimum of the
//  logs' last timestamps, t = min over logs of max update timestamp ...
//  Masstree plays back the logged updates in parallel, taking care to apply a
//  value's updates in increasing order by version, except that updates with
//  u.timestamp > t are dropped."
//
// One refinement over the paper's sketch: logs are per-session files, and a
// session that detached cleanly stamps a trailing kClose marker. Such a
// "complete" log lost nothing, so it contributes every record to replay but
// does not bound the cutoff — otherwise any long-dead session's file would
// pin t at its final write forever. Only live logs (no trailing kClose: the
// producer may have had records in flight when the crash hit) constrain t.

#ifndef MASSTREE_LOG_RECOVERY_H_
#define MASSTREE_LOG_RECOVERY_H_

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "log/logrecord.h"
#include "util/io.h"
#include "util/timing.h"

namespace masstree {

// Reads one log file, returning all intact records (stops at a torn or
// corrupt tail). Missing files read as empty.
inline std::vector<LogEntry> read_log_file(const std::string& path) {
  std::vector<LogEntry> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return out;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  logwire::decode_all(data, &out);
  return out;
}

// Every per-session log file in `dir` (the Store names them log-<n>.bin),
// sorted for deterministic replay. Missing directories list as empty.
inline std::vector<std::string> list_log_files(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    std::string name = entry.path().filename().string();
    if (name.rfind("log-", 0) == 0 && name.size() > 8 &&
        name.compare(name.size() - 4, 4, ".bin") == 0) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

struct LogFileData {
  std::vector<LogEntry> entries;
  // Trailing kClose: the producer detached cleanly, nothing was lost.
  bool complete = false;
};

struct RecoverySet {
  std::vector<LogFileData> logs;  // one per log file
  uint64_t cutoff_us = std::numeric_limits<uint64_t>::max();
};

// Load every per-worker log and compute the §5 cutoff: the minimum over
// non-empty LIVE logs of their last (max) timestamp. Complete logs and logs
// that recorded nothing do not constrain the cutoff; if every log is
// complete the cutoff stays at +inf (nothing was lost anywhere).
inline RecoverySet load_logs(const std::vector<std::string>& paths) {
  RecoverySet rs;
  bool any_live = false;
  bool any_records = false;
  for (const auto& p : paths) {
    LogFileData lf;
    lf.entries = read_log_file(p);
    lf.complete = !lf.entries.empty() && lf.entries.back().type == LogType::kClose;
    if (!lf.entries.empty()) {
      any_records = true;
      if (!lf.complete) {
        uint64_t last = 0;
        for (const auto& e : lf.entries) {
          last = std::max(last, e.timestamp_us);
        }
        rs.cutoff_us = std::min(rs.cutoff_us, last);
        any_live = true;
      }
    }
    rs.logs.push_back(std::move(lf));
  }
  if (!any_live) {
    // All-complete: keep everything. No logs at all: nothing to keep.
    rs.cutoff_us = any_records ? std::numeric_limits<uint64_t>::max() : 0;
  }
  return rs;
}

// Once recovery has consumed a log, seal it: trim the file to its
// crash-consistent prefix (data records with timestamp <= cutoff, which
// also severs any torn tail) and stamp a kClose completion marker. Without
// this, a recovered-but-never-reused live log would pin every future cutoff
// at its old last timestamp, and beyond-cutoff records — deliberately
// dropped by THIS recovery — would resurrect on the next one. Complete logs
// need the trim too: a session that closed cleanly before the crash can
// still hold records newer than a cutoff set by some other, live log.
inline void seal_recovered_log(const std::string& path, const LogFileData& lf,
                               uint64_t cutoff_us) {
  size_t keep = 0;
  bool beyond_cutoff = false;
  for (const auto& e : lf.entries) {
    // Markers carry no replayable state, so only data records gate the cut.
    if ((e.type == LogType::kPut || e.type == LogType::kRemove) &&
        e.timestamp_us > cutoff_us) {
      beyond_cutoff = true;
      break;
    }
    // Variable-length v2 framing (varints, timestamp deltas, compression)
    // makes wire sizes irreproducible from decoded fields, so the decoder
    // records each record's end offset. Truncating at a record boundary
    // keeps every surviving delta chain self-contained: deltas only ever
    // reference earlier records in the same file.
    keep = e.wire_end;
  }
  if (lf.complete && !beyond_cutoff) {
    return;  // already exactly the state the next recovery should see
  }
  int fd = io::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return;
  }
  if (io::ftruncate(fd, static_cast<off_t>(keep)) == 0) {
    // A fresh format header before the kClose keeps the seal readable no
    // matter what format the kept prefix ends in (v1 files get their
    // mid-file upgrade here; in a v2 stream a repeated header is a no-op
    // boundary marker).
    std::string tail;
    logwire::encode_header(&tail);
    logwire::encode_close(&tail, wall_us());
    size_t off = 0;
    while (off < tail.size()) {
      ssize_t w = io::write(fd, tail.data() + off, tail.size() - off);
      if (w <= 0 && errno != EINTR) {
        break;
      }
      if (w > 0) {
        off += static_cast<size_t>(w);
      }
    }
    io::fdatasync(fd);
  }
  io::close(fd);
}

// Flatten + filter + sort for replay: drops entries with timestamp > cutoff
// or < since (already covered by a checkpoint), and orders by value version
// so per-key application order is correct. Partitioning by key hash for
// parallel replay preserves this order within each key.
inline std::vector<LogEntry> replay_plan(RecoverySet&& rs, uint64_t since_us = 0) {
  std::vector<LogEntry> plan;
  for (auto& log : rs.logs) {
    for (auto& e : log.entries) {
      if (e.type != LogType::kMarker && e.type != LogType::kClose &&
          e.timestamp_us <= rs.cutoff_us && e.timestamp_us >= since_us) {
        plan.push_back(std::move(e));
      }
    }
  }
  std::sort(plan.begin(), plan.end(),
            [](const LogEntry& a, const LogEntry& b) { return a.version < b.version; });
  return plan;
}

}  // namespace masstree

#endif  // MASSTREE_LOG_RECOVERY_H_
