// Per-worker value logging with group commit (§5).
//
// "Each server query thread (core) maintains its own log file and in-memory
//  log buffer. A corresponding logging thread ... writes out the log buffer
//  in the background. ... A put operation appends to the query thread's log
//  buffer and responds to the client without forcing that buffer to storage.
//  Logging threads batch updates to take advantage of higher bulk sequential
//  throughput, but force logs to storage at least every 200 ms for safety."
//
// Three pieces:
//
//  * LogShard — one producer's log: a double-buffered arena plus its own log
//    file. The owning thread encodes records in place (no mutex, no
//    allocation: Counter::kLogAllocs stays zero after the two arena halves
//    exist) and publishes them with a release store. When the active half
//    fills it is sealed and the producer flips to the other half, stalling
//    (Counter::kLogStalls) only if the logging thread has not yet drained it.
//
//  * LogWriter — a background logging thread draining many shards: per shard
//    it gathers the sealed halves (oldest first) plus the active half's
//    published prefix into a single writev, then fdatasyncs — one group
//    commit per shard per round, at least every flush_interval_ms (the
//    paper's 200 ms safety deadline) and sooner under load (seals kick the
//    writer; the wait shrinks adaptively while traffic is heavy).
//
//  * Logger — a one-shard, one-writer convenience wrapper for callers that
//    just want "a log file" (models, baselines, tests).
//
// Timestamp discipline (what makes the §5 recovery cutoff sound): one shard
// = one file = one producer, so DATA-record timestamps are monotone within
// a file and a torn tail can only lose a suffix — never a record older than
// a surviving one. Heartbeat markers are stamped only when a seqlock-style
// begin/end counter pair proves the producer was quiescent for the whole
// drain round, so a marker's timestamp never exceeds that of a record the
// round missed (it is pinned 1us below the round's start, which may also
// tie-break it just below an already-drained same-microsecond record —
// harmless, since a log's last timestamp is the max over its entries). A
// kClose marker stamped when the producer detaches makes the file
// "complete": it contributes records to recovery without bounding the
// cutoff (otherwise every finished session's log would pin t forever at its
// last write).

#ifndef MASSTREE_LOG_LOGGER_H_
#define MASSTREE_LOG_LOGGER_H_

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "log/logrecord.h"
#include "util/compiler.h"
#include "util/counters.h"
#include "util/io.h"
#include "util/timing.h"

namespace masstree {

class LogWriter;

// One producer's wait-free log: double-buffered arena + its own file.
// Producer-side methods (append_*, release_producer, reopen) must be called
// by one thread at a time (per-session ownership, or external
// serialization); everything else is the logging thread's.
class LogShard {
 public:
  LogShard(const std::string& path, size_t half_bytes, unsigned partition,
           ThreadCounters* counters, bool repair_existing_tail,
           size_t compress_threshold = 128)
      : path_(path), partition_(partition),
        compress_threshold_(compress_threshold), counters_(counters) {
    // O_RDWR, not O_WRONLY: tail repair preads the existing contents. No
    // O_APPEND — POSIX makes pwrite on an append-mode fd ignore its offset,
    // and the logging thread positions every write itself (inside
    // preallocated extents, so group-commit fdatasyncs stay journal-free).
    fd_ = io::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ < 0) {
      throw std::runtime_error("LogShard: cannot open " + path);
    }
    try {
      for (Buf& b : bufs_) {
        b.cap = half_bytes;
        b.data = std::make_unique<char[]>(half_bytes);
        if (counters_ != nullptr) {
          counters_->inc(Counter::kLogAllocs);
        }
      }
      if (repair_existing_tail) {
        chop_torn_tail();  // throws on an unknown format version
      }
    } catch (...) {
      io::close(fd_);
      throw;
    }
    off_t end = io::lseek(fd_, 0, SEEK_END);
    write_off_ = end > 0 ? static_cast<size_t>(end) : 0;
    prealloc_end_ = write_off_;
    // A surviving pre-v2 (headerless) file gets a mid-file format header
    // before the first new append, so its own records keep decoding as v1
    // while everything we write decodes as v2.
    if (write_off_ > 0) {
      char magic[4] = {0, 0, 0, 0};
      ssize_t got = io::pread(fd_, magic, sizeof(magic), 0);
      pending_midfile_header_ =
          got < 4 || std::memcmp(magic, logwire::kLogMagic, 4) != 0;
    }
  }

  ~LogShard() { io::close(fd_); }

  LogShard(const LogShard&) = delete;
  LogShard& operator=(const LogShard&) = delete;

  // ---- producer side -------------------------------------------------
  // Appends return as soon as the record sits in the arena; durability
  // arrives with the logging thread's next group commit. The record's
  // timestamp is read after the begin_append announcement, which is what
  // lets the logging thread prove marker safety (see drain_shard).
  //
  // Values at or above compress_threshold_ are lz-compressed into a stack
  // scratch before the record is sized, so the arena reservation is exact
  // and the fast path stays allocation-free (Counter::kLogAllocs == 0 in
  // steady state, compression included). Incompressible data bails out to
  // raw storage: compress() is given a budget of raw_len - 1 bytes.
  void append_put(std::string_view key, std::span<const ColumnUpdate> updates,
                  uint64_t version) {
    logwire::ColPlan stack_plans[kMaxPlanCols];
    char scratch[kCompressScratchBytes];
    std::vector<logwire::ColPlan> heap_plans;
    logwire::ColPlan* plans = stack_plans;
    size_t ncols = updates.size();
    if (MT_UNLIKELY(ncols > kMaxPlanCols)) {
      heap_plans.resize(ncols);
      plans = heap_plans.data();
      if (counters_ != nullptr) {
        counters_->inc(Counter::kLogAllocs);
      }
    }
    size_t used = 0;
    size_t saved = 0;  // raw-minus-stored across compressed columns
    bool any_compressed = false;
    for (size_t i = 0; i < ncols; ++i) {
      const ColumnUpdate& u = updates[i];
      logwire::ColPlan& pl = plans[i];
      pl.col = u.col;
      pl.data = u.data.data();
      pl.raw_len = static_cast<uint32_t>(u.data.size());
      pl.stored_len = pl.raw_len;
      pl.compressed = false;
      if (compress_threshold_ != 0 && u.data.size() >= compress_threshold_ &&
          u.data.size() <= logwire::kMaxColumnRaw) {
        size_t cap = u.data.size() - 1;
        size_t room = sizeof(scratch) - used;
        if (cap > room) cap = room;
        size_t c = cap == 0 ? 0
                            : lz::compress(u.data.data(), u.data.size(),
                                           scratch + used, cap);
        if (c != 0) {
          pl.data = scratch + used;
          pl.stored_len = static_cast<uint32_t>(c);
          pl.compressed = true;
          used += c;
          saved += u.data.size() - c;
          any_compressed = true;
        }
      }
    }
    append_put_planned(key, plans, ncols, version, any_compressed, saved);
  }

  // Braced-list convenience: append_put(key, {{0, "v"}}, ver).
  void append_put(std::string_view key, std::initializer_list<ColumnUpdate> updates,
                  uint64_t version) {
    append_put(key, std::span<const ColumnUpdate>(updates.begin(), updates.size()),
               version);
  }

  void append_remove(std::string_view key, uint64_t version) {
    begin_append();
    uint64_t ts = wall_us();
    if (MT_UNLIKELY(rebase_needed_.exchange(false, std::memory_order_relaxed))) {
      prev_ts_valid_ = false;
    }
    for (;;) {
      bool delta = prev_ts_valid_;
      uint64_t ts_field =
          delta ? vint::zigzag(static_cast<int64_t>(ts - prev_ts_us_)) : ts;
      size_t need = logwire::remove_record_size_v2(key, version, ts_field);
      if (MT_UNLIKELY(need > bufs_[0].cap)) {
        need = logwire::remove_record_size_v2(key, version, ts);
        append_jumbo(need, [&](char* dst) {
          logwire::encode_remove_v2_to(dst, key, version, ts, false);
        });
        note_data_record(ts, need, need, false);
        return;
      }
      char* dst = reserve(need);
      if (MT_UNLIKELY(dst == nullptr)) {
        return;  // writer shut down underneath us: record dropped
      }
      if (MT_UNLIKELY(delta && bufs_[cur_].wpos == 0)) {
        // Reserve flipped to a fresh half: its first record anchors the
        // delta chain, so re-size as absolute and try again.
        prev_ts_valid_ = false;
        continue;
      }
      logwire::encode_remove_v2_to(dst, key, version, ts_field, delta);
      note_data_record(ts, need, need, false);
      publish(need);
      return;
    }
  }

  // One grouped arena reservation for a whole batch of puts/removes — §4.8's
  // write pipeline meeting §5's wait-free append. Records are planned
  // (compressed) in chunks sized by exact logrecord.h cost, then written
  // with a single begin_append()/wall_us()/reserve()/publish() per chunk, so
  // a batch of B records pays one seqlock announcement, one clock read and
  // one release store instead of B of each — while the path stays
  // allocation-free (Counter::kLogAllocs == 0, same discipline as
  // append_put). All records of a chunk share one timestamp: the first
  // carries it absolute or delta-chained like any record, the followers are
  // delta-0 against it, so per-file timestamp monotonicity (the §5 recovery
  // cutoff invariant) is untouched. Record order is preserved; records that
  // do not fit the grouped fast path (jumbo, > kMaxPlanCols columns) take
  // the single-record path alone, in order. A null `updates` marks a remove.
  struct BatchOp {
    std::string_view key;
    const ColumnUpdate* updates = nullptr;  // null => remove record
    size_t ncols = 0;
    uint64_t version = 0;
  };

  void append_batch(std::span<const BatchOp> ops) {
    logwire::ColPlan plans[kBatchPlanCols];
    char scratch[kCompressScratchBytes];
    struct RecMeta {
      size_t plan_off;
      size_t ncols;
      size_t size_rest;  // record size as a follower (1-byte delta-0 ts)
      size_t saved;
      bool compressed;
    };
    RecMeta recs[kBatchChunkRecords];
    size_t i = 0;
    while (i < ops.size()) {
      // ---- plan one chunk [i, i+nrec): pack greedily while plan slots,
      // compression scratch, and a worst-case (absolute-ts first record)
      // arena half all have room.
      size_t nrec = 0;
      size_t plan_used = 0;
      size_t scratch_used = 0;
      size_t first_abs = 0;   // first record sized with a worst-case abs ts
      size_t total_rest = 0;  // follower sizes
      while (i + nrec < ops.size() && nrec < kBatchChunkRecords) {
        const BatchOp& op = ops[i + nrec];
        size_t ncols = op.updates != nullptr ? op.ncols : 0;
        if (MT_UNLIKELY(op.updates != nullptr && ncols > kMaxPlanCols)) {
          break;  // heap-plan record: flush the chunk, handle it alone below
        }
        if (plan_used + ncols > kBatchPlanCols) {
          break;
        }
        RecMeta& rm = recs[nrec];
        rm.plan_off = plan_used;
        rm.ncols = ncols;
        rm.saved = 0;
        rm.compressed = false;
        size_t scratch_before = scratch_used;
        for (size_t c = 0; c < ncols; ++c) {
          const ColumnUpdate& u = op.updates[c];
          logwire::ColPlan& pl = plans[plan_used + c];
          pl.col = u.col;
          pl.data = u.data.data();
          pl.raw_len = static_cast<uint32_t>(u.data.size());
          pl.stored_len = pl.raw_len;
          pl.compressed = false;
          if (compress_threshold_ != 0 && u.data.size() >= compress_threshold_ &&
              u.data.size() <= logwire::kMaxColumnRaw) {
            size_t cap = u.data.size() - 1;
            size_t room = sizeof(scratch) - scratch_used;
            if (cap > room) cap = room;
            size_t z = cap == 0 ? 0
                                : lz::compress(u.data.data(), u.data.size(),
                                               scratch + scratch_used, cap);
            if (z != 0) {
              pl.data = scratch + scratch_used;
              pl.stored_len = static_cast<uint32_t>(z);
              pl.compressed = true;
              scratch_used += z;
              rm.saved += u.data.size() - z;
              rm.compressed = true;
            }
          }
        }
        size_t sz_rest =
            op.updates != nullptr
                ? logwire::put_record_size_v2(op.key, plans + rm.plan_off,
                                              ncols, op.version, uint64_t{0})
                : logwire::remove_record_size_v2(op.key, op.version,
                                                 uint64_t{0});
        size_t sz_abs =
            op.updates != nullptr
                ? logwire::put_record_size_v2(op.key, plans + rm.plan_off,
                                              ncols, op.version, ~uint64_t{0})
                : logwire::remove_record_size_v2(op.key, op.version,
                                                 ~uint64_t{0});
        size_t worst = nrec == 0 ? sz_abs : first_abs + total_rest + sz_rest;
        if (MT_UNLIKELY(worst > bufs_[0].cap && nrec > 0)) {
          scratch_used = scratch_before;  // record re-plans in the next chunk
          break;
        }
        if (MT_UNLIKELY(nrec == 0 && sz_abs > bufs_[0].cap)) {
          break;  // lone jumbo record: single-record path below
        }
        if (nrec == 0) {
          first_abs = sz_abs;
        } else {
          total_rest += sz_rest;
        }
        rm.size_rest = sz_rest;
        plan_used += ncols;
        ++nrec;
      }
      if (nrec == 0) {
        // Jumbo or heap-plan record: the single-record path already handles
        // both slow cases (in order, one record).
        const BatchOp& op = ops[i];
        if (op.updates != nullptr) {
          append_put(op.key,
                     std::span<const ColumnUpdate>(op.updates, op.ncols),
                     op.version);
        } else {
          append_remove(op.key, op.version);
        }
        ++i;
        continue;
      }
      // ---- emit the chunk: one announcement, one timestamp, one
      // reservation, one publish.
      begin_append();
      uint64_t ts = wall_us();
      if (MT_UNLIKELY(rebase_needed_.exchange(false, std::memory_order_relaxed))) {
        prev_ts_valid_ = false;
      }
      for (;;) {
        bool delta = prev_ts_valid_;
        uint64_t ts0 =
            delta ? vint::zigzag(static_cast<int64_t>(ts - prev_ts_us_)) : ts;
        const BatchOp& f = ops[i];
        size_t first_sz =
            f.updates != nullptr
                ? logwire::put_record_size_v2(f.key, plans + recs[0].plan_off,
                                              recs[0].ncols, f.version, ts0)
                : logwire::remove_record_size_v2(f.key, f.version, ts0);
        size_t total = first_sz + total_rest;
        char* dst = reserve(total);
        if (MT_UNLIKELY(dst == nullptr)) {
          return;  // writer shut down underneath us: batch tail dropped
        }
        if (MT_UNLIKELY(delta && bufs_[cur_].wpos == 0)) {
          // Reserve flipped to a fresh half: its first record anchors the
          // delta chain, so re-size the chunk head as absolute and retry.
          prev_ts_valid_ = false;
          continue;
        }
        size_t off = 0;
        for (size_t r = 0; r < nrec; ++r) {
          const BatchOp& op = ops[i + r];
          bool d = r == 0 ? delta : true;
          uint64_t tf = r == 0 ? ts0 : 0;
          size_t sz = r == 0 ? first_sz : recs[r].size_rest;
          if (op.updates != nullptr) {
            logwire::encode_put_v2_to(dst + off, op.key,
                                      plans + recs[r].plan_off, recs[r].ncols,
                                      op.version, tf, d);
            note_data_record(ts, sz, sz + recs[r].saved, recs[r].compressed);
          } else {
            logwire::encode_remove_v2_to(dst + off, op.key, op.version, tf, d);
            note_data_record(ts, sz, sz, false);
          }
          off += sz;
        }
        publish(total);  // counts one kLogAppends...
        if (counters_ != nullptr && nrec > 1) {
          counters_->inc(Counter::kLogAppends, nrec - 1);  // ...so top up
        }
        break;
      }
      i += nrec;
    }
  }

  // Detach the producer. The logging thread drains what is left, stamps the
  // kClose completion marker, and (when pooled) parks the shard for reuse.
  void release_producer();

  // Park an adopted (pre-existing) file without touching its contents: the
  // logging thread leaves it alone and the pool may hand it to a future
  // session. The file keeps its on-disk live/complete state so a recovery
  // run before reuse still sees the truth about what the crash lost.
  void park_adopted() { close_done_.store(true, std::memory_order_release); }

  // Re-attach a new producer to a parked (closed) shard. Call only after
  // claiming the shard from the pool; appends resume into the same file,
  // whose mid-file kClose marker simply stops being the last record.
  void reopen(ThreadCounters* counters) {
    counters_ = counters;
    cur_ = 0;
    next_seal_seq_ = 1;
    prev_ts_valid_ = false;  // the new producer's first record is absolute
    for (Buf& b : bufs_) {
      b.wpos = 0;
    }
    // Re-derive the append offset: a recovery seal may have trimmed the
    // file while it sat parked. The logging thread's drain path skips
    // parked shards (and the close_done_ release below is what re-publishes
    // the shard to it), but truncate_all DOES visit parked shards to empty
    // their files — geom_mu_ keeps that from shearing this geometry reset.
    {
      std::lock_guard<std::mutex> lock(geom_mu_);
      off_t end = io::lseek(fd_, 0, SEEK_END);
      write_off_ = end > 0 ? static_cast<size_t>(end) : 0;
      prealloc_end_ = write_off_;
    }
    released_.store(false, std::memory_order_relaxed);
    close_done_.store(false, std::memory_order_release);
  }

  const std::string& path() const { return path_; }
  unsigned partition() const { return partition_; }
  // First write/fsync errno, sticky; 0 while healthy. Once set, the logging
  // thread fail-stops this file (drains are discarded) so the on-disk
  // content stays a clean prefix of the record stream.
  int error() const { return error_.load(std::memory_order_relaxed); }
  // Context of the construction-time failure (if any): chop_torn_tail runs
  // before the shard has a writer to report through.
  const io::IoErrorDetail& ctor_error_detail() const { return error_detail_; }

 private:
  friend class LogWriter;

  struct Buf {
    std::unique_ptr<char[]> data;
    size_t cap = 0;
    size_t wpos = 0;                       // producer-owned append offset
    std::atomic<size_t> published{0};      // completed bytes, producer->writer
    std::atomic<uint64_t> seal_seq{0};     // orders two simultaneously-full halves
    std::atomic<bool> full{false};         // sealed, awaiting drain+recycle
    size_t drained = 0;                    // writer-owned consume offset
  };

  // Writer-owned file geometry. The logging thread pwrites at write_off_
  // inside extents preallocated by fallocate, so a group commit's fdatasync
  // is a pure data flush — appends that extend i_size would drag a journal
  // commit into every sync, which on one measured box was the single
  // largest logging cost. The zero-filled preallocated tail reads as a torn
  // record (len 0) and is trimmed at close/adoption/recovery-seal time.
  size_t write_off_ = 0;
  size_t prealloc_end_ = 0;
  size_t prealloc_chunk_ = 256 << 10;  // doubles per extend, capped at 4 MiB
  uint64_t last_fsync_us_ = 0;         // group-commit force cadence
  uint64_t last_mark_us_ = 0;          // heartbeat-marker pacing
  size_t unsynced_bytes_ = 0;          // written since the last fdatasync
  // Serializes the two geometry writers that CAN overlap: a claimant's
  // reopen() against the logging thread's truncate round (which also empties
  // parked files). Never taken on the append fast path.
  std::mutex geom_mu_;

  // Sever any incomplete tail left by a crash before appending: O_APPEND
  // would otherwise land fresh records after the torn bytes, where recovery
  // (which stops at the tear) could never see them.
  void chop_torn_tail() {
    off_t size = io::lseek(fd_, 0, SEEK_END);
    if (size <= 0) {
      return;
    }
    std::string data(static_cast<size_t>(size), '\0');
    ssize_t got = io::pread(fd_, data.data(), data.size(), 0);
    if (got < 0) {
      return;
    }
    data.resize(static_cast<size_t>(got));
    size_t valid = logwire::valid_prefix_bytes(data);
    if (valid < data.size()) {
      int tr;
      while ((tr = io::ftruncate(fd_, static_cast<off_t>(valid))) != 0 &&
             errno == EINTR) {
      }
      if (tr != 0) {
        error_.store(errno, std::memory_order_relaxed);
        error_detail_ = io::IoErrorDetail{"ftruncate", path_, valid, errno};
      }
    }
  }

  // Shared tail of the planned put path: size with the current delta
  // decision, reserve, encode, publish. Split from append_put so the
  // column-planning scratch lives in the caller's frame.
  void append_put_planned(std::string_view key, const logwire::ColPlan* plans,
                          size_t ncols, uint64_t version, bool any_compressed,
                          size_t saved) {
    begin_append();
    uint64_t ts = wall_us();
    if (MT_UNLIKELY(rebase_needed_.exchange(false, std::memory_order_relaxed))) {
      prev_ts_valid_ = false;
    }
    for (;;) {
      bool delta = prev_ts_valid_;
      uint64_t ts_field =
          delta ? vint::zigzag(static_cast<int64_t>(ts - prev_ts_us_)) : ts;
      size_t need =
          logwire::put_record_size_v2(key, plans, ncols, version, ts_field);
      if (MT_UNLIKELY(need > bufs_[0].cap)) {
        // Jumbo records are written between arena flushes and always carry
        // an absolute timestamp.
        need = logwire::put_record_size_v2(key, plans, ncols, version, ts);
        append_jumbo(need, [&](char* dst) {
          logwire::encode_put_v2_to(dst, key, plans, ncols, version, ts, false);
        });
        note_data_record(ts, need, need + saved, any_compressed);
        return;
      }
      char* dst = reserve(need);
      if (MT_UNLIKELY(dst == nullptr)) {
        return;  // writer shut down underneath us: record dropped
      }
      if (MT_UNLIKELY(delta && bufs_[cur_].wpos == 0)) {
        // Reserve flipped to a fresh half: its first record anchors the
        // delta chain, so re-size as absolute and try again.
        prev_ts_valid_ = false;
        continue;
      }
      logwire::encode_put_v2_to(dst, key, plans, ncols, version, ts_field,
                                delta);
      note_data_record(ts, need, need + saved, any_compressed);
      publish(need);
      return;
    }
  }

  // Per-record byte accounting: physical is what hits the arena/file,
  // logical approximates the same record with every column stored raw
  // (physical + bytes saved by compression), so physical/logical is the
  // observable compression ratio.
  void note_data_record(uint64_t ts, size_t physical, size_t logical,
                        bool compressed) {
    prev_ts_us_ = ts;
    prev_ts_valid_ = true;
    if (counters_ != nullptr) {
      counters_->inc(Counter::kLogBytesPhysical, physical);
      counters_->inc(Counter::kLogBytesLogical, logical);
      if (compressed) {
        counters_->inc(Counter::kLogCompressedRecords);
      }
    }
  }

  // Seqlock-style quiescence fence around the timestamp read: before
  // reading the record's timestamp the producer announces an in-flight
  // append by moving begin_total_ off pub_total_; publish() re-announces
  // the new pub_total_ once the record is visible. The logging thread
  // samples pub_total_ before a drain round and begin_total_ after it;
  // equal values prove no append was in flight across the round, so no
  // record with a timestamp older than the round's start can still be
  // sitting unpublished. (The announced value no longer needs to be the
  // exact future total — v2 record sizes depend on the timestamp itself,
  // which must be read after this announcement — any value != pub_total_
  // marks the producer busy, and begin_total_ only ever equals pub_total_
  // via publish()'s re-announcement, i.e. with nothing in flight.)
  void begin_append() {
    begin_total_.store(pub_total_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    full_fence();  // announcement visible before the timestamp is read
  }

  void publish(size_t n) {
    Buf& b = bufs_[cur_];
    b.wpos += n;
    b.published.store(b.wpos, std::memory_order_release);
    uint64_t total = pub_total_.load(std::memory_order_relaxed) + n;
    pub_total_.store(total, std::memory_order_release);
    begin_total_.store(total, std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->inc(Counter::kLogAppends);
    }
  }

  char* reserve(size_t need) {
    Buf& b = bufs_[cur_];
    if (MT_LIKELY(b.wpos + need <= b.cap)) {
      return b.data.get() + b.wpos;
    }
    seal_current();
    cur_ ^= 1;
    Buf& n = bufs_[cur_];
    if (MT_UNLIKELY(n.full.load(std::memory_order_acquire))) {
      // Both halves full: the producer has outrun the logging thread. This
      // is the only blocking point on the write path (the paper's implicit
      // backpressure: "If the log buffer fills up, the wait is longer").
      if (counters_ != nullptr) {
        counters_->inc(Counter::kLogStalls);
      }
      if (!spin_until([&] { return !n.full.load(std::memory_order_acquire); })) {
        return nullptr;
      }
    }
    n.wpos = 0;
    return n.data.get();
  }

  void seal_current() {
    Buf& b = bufs_[cur_];
    b.seal_seq.store(next_seal_seq_++, std::memory_order_relaxed);
    b.full.store(true, std::memory_order_release);
    kick_writer();  // the adaptive high-water: a full half flushes now
  }

  // Records too large for an arena half take a slow path: one heap
  // encoding (counted as kLogAllocs), handed to the logging thread after
  // everything already buffered has drained, and waited out so file order
  // (and thus timestamp monotonicity) is preserved. The caller has already
  // announced via begin_append() and read the timestamp baked into
  // `encode`.
  template <typename Encode>
  void append_jumbo(size_t need, Encode&& encode) {
    if (counters_ != nullptr) {
      counters_->inc(Counter::kLogAllocs);
    }
    wait_all_drained();
    if (writer_stopped()) {
      return;
    }
    auto jumbo = std::make_unique<std::string>();
    jumbo->resize(need);
    encode(jumbo->data());
    jumbo_ = std::move(jumbo);
    uint64_t total = pub_total_.load(std::memory_order_relaxed) + need;
    pub_total_.store(total, std::memory_order_release);
    begin_total_.store(total, std::memory_order_relaxed);
    jumbo_pending_.store(true, std::memory_order_release);
    if (counters_ != nullptr) {
      counters_->inc(Counter::kLogAppends);
    }
    kick_writer();
    spin_until([&] { return !jumbo_pending_.load(std::memory_order_acquire); });
  }

  void wait_all_drained() {
    spin_until([&] {
      return !jumbo_pending_.load(std::memory_order_acquire) &&
             drain_total_.load(std::memory_order_acquire) >=
                 pub_total_.load(std::memory_order_relaxed);
    });
  }

  // Producer-side wait: kick the logging thread periodically and yield on
  // oversubscribed boxes so it can actually run. Returns false if the
  // writer shut down before the predicate held.
  template <typename Pred>
  bool spin_until(Pred&& done) {
    unsigned spins = 0;
    while (!done()) {
      if (writer_stopped()) {
        return false;
      }
      if ((++spins & 0x3FF) == 1) {
        kick_writer();
      } else if ((spins & 0xFF) == 0) {
        std::this_thread::yield();
      }
      spin_pause();
    }
    return true;
  }

  inline void kick_writer();
  inline bool writer_stopped() const;

  // Column-planning limits for the zero-allocation fast path: puts with
  // more columns fall back to one heap plan array (counted like a jumbo),
  // and compressed output beyond the scratch budget stays raw.
  static constexpr size_t kMaxPlanCols = 16;
  static constexpr size_t kCompressScratchBytes = 40 << 10;
  // Batch-append chunking: up to this many records share one grouped
  // reservation, drawing column plans from one shared stack arena.
  static constexpr size_t kBatchChunkRecords = 16;
  static constexpr size_t kBatchPlanCols = 64;

  std::string path_;
  unsigned partition_;
  int fd_;
  size_t compress_threshold_;            // 0 disables compression
  Buf bufs_[2];
  unsigned cur_ = 0;                     // producer-owned active half
  uint64_t next_seal_seq_ = 1;           // producer-owned
  // Delta-timestamp chain (producer-owned): valid when the previous data
  // record in this shard can serve as the delta base — reset at half
  // flips (each half starts absolute, so halves stay self-contained) and
  // when the writer's truncate round discards the base (rebase_needed_).
  uint64_t prev_ts_us_ = 0;
  bool prev_ts_valid_ = false;
  std::atomic<bool> rebase_needed_{false};
  // Writer-thread-owned: set by truncate_round; while set, drain passes
  // drop leading delta records (their base was discarded) until the
  // producer's first absolute record re-anchors the chain.
  bool skip_dangling_ = false;
  // Set when the file holds pre-v2 (headerless) content: the first write
  // prepends a mid-file format header so old and new records coexist.
  bool pending_midfile_header_ = false;
  std::atomic<uint64_t> begin_total_{0};  // bytes announced (pre-timestamp)
  std::atomic<uint64_t> pub_total_{0};   // cumulative bytes published
  std::atomic<uint64_t> drain_total_{0}; // cumulative bytes consumed by writer
  std::unique_ptr<std::string> jumbo_;
  std::atomic<bool> jumbo_pending_{false};
  std::atomic<bool> released_{false};    // producer detached
  std::atomic<bool> close_done_{false};  // writer stamped kClose; parked
  std::atomic<int> error_{0};
  io::IoErrorDetail error_detail_;       // ctor-time only; see accessor
  ThreadCounters* counters_;             // producer's sink (may be null)
  LogWriter* writer_ = nullptr;          // set by LogWriter::add_shard
};

// Free-list of closed shards so session churn reuses files and arenas
// instead of growing both without bound.
class LogShardPool {
 public:
  void park(LogShard* s) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(s);
  }

  // Prefers a shard drained by the requested partition's logging thread so
  // reuse keeps its drain affinity; falls back to any parked shard.
  LogShard* try_claim(unsigned preferred_partition) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i]->partition() == preferred_partition) {
        LogShard* s = free_[i];
        free_.erase(free_.begin() + static_cast<long>(i));
        return s;
      }
    }
    if (free_.empty()) {
      return nullptr;
    }
    LogShard* s = free_.back();
    free_.pop_back();
    return s;
  }

 private:
  std::mutex mu_;
  std::vector<LogShard*> free_;
};

// Background logging thread: drains every registered shard with one
// writev + fdatasync group commit per shard per round.
class LogWriter {
 public:
  struct Options {
    uint64_t flush_interval_ms = 200;  // the paper's safety deadline
    bool fsync_on_flush = true;
  };

  explicit LogWriter(Options opt, LogShardPool* pool = nullptr)
      : opt_(opt), pool_(pool), adaptive_wait_ms_(opt.flush_interval_ms) {}

  ~LogWriter() { stop(); }

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  void start() { thread_ = std::thread([this] { loop(); }); }

  // Final round (drain everything, stamp kClose on every live shard,
  // fdatasync), then join. Idempotent.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) {
        return;
      }
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void add_shard(LogShard* s) {
    s->writer_ = this;
    if (s->error() != 0) {
      // Construction-time damage (e.g. a failed tail-repair ftruncate) must
      // be as visible as a runtime write error.
      io::IoErrorDetail d = s->ctor_error_detail();
      if (d.err == 0) {
        d = io::IoErrorDetail{"open", s->path(), 0, s->error()};
      }
      record_first_error(d);
    }
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards_.push_back(s);
    ++shards_gen_;
  }

  // Invoked exactly once, on the first sticky I/O error any shard of this
  // writer hits (logging thread or add_shard caller context). Set before
  // start(); the Store uses it to trip into read-only mode.
  void set_on_first_error(std::function<void(const io::IoErrorDetail&)> cb) {
    on_first_error_ = std::move(cb);
  }

  // Force everything published so far to storage and stamp heartbeat
  // markers where safe. Blocks until a full round that began after this
  // call has completed (its fdatasync included).
  void sync() {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      return;  // shutdown round already drained and closed everything
    }
    uint64_t my = ++sync_req_;
    kicked_ = true;
    cv_.notify_all();
    done_cv_.wait(lock, [&] { return sync_done_ >= my || stop_; });
  }

  // Discard all buffered records and truncate every shard file to empty.
  // Runs on the logging thread at a round boundary, so it can never shear
  // an in-flight write (the flush/truncate race the mutexed design had).
  void truncate_all() {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    uint64_t my = ++trunc_req_;
    kicked_ = true;
    cv_.notify_all();
    done_cv_.wait(lock, [&] { return trunc_done_ >= my || stop_; });
  }

  uint64_t bytes_written() const { return bytes_written_.load(std::memory_order_relaxed); }
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  // The logging thread's own counter sink (kLogFlushBytes lives here; the
  // atomic bytes_written() mirror is the concurrent-reader view). Read only
  // after stop().
  const ThreadCounters& counters() const { return counters_; }
  int error() const { return first_error_.load(std::memory_order_relaxed); }
  // (syscall, path, offset, errno) of the first failing call; default-
  // constructed while healthy.
  io::IoErrorDetail error_detail() const {
    std::lock_guard<std::mutex> lock(err_detail_mu_);
    return first_error_detail_;
  }
  bool stopped() const { return stop_flag_.load(std::memory_order_acquire); }

  void kick() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      kicked_ = true;
    }
    cv_.notify_all();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t last_trunc = 0;
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(adaptive_wait_ms_), [&] {
        return stop_ || kicked_ || sync_req_ > sync_done_ || trunc_req_ > trunc_done_;
      });
      if (stop_) {
        break;
      }
      kicked_ = false;
      uint64_t sync_goal = sync_req_;
      uint64_t trunc_goal = trunc_req_;
      lock.unlock();
      refresh_cache();
      if (trunc_goal > last_trunc) {
        truncate_round();
        last_trunc = trunc_goal;
      } else {
        size_t bytes = round(/*closing=*/false, /*force_sync=*/sync_goal > sync_done_);
        // Adaptive high-water: while rounds drain full halves, shrink the
        // deadline so commits stay large-but-frequent instead of stalling
        // producers; fall back to the safety interval when traffic ebbs.
        adaptive_wait_ms_ = bytes >= (256u << 10)
                                ? std::max<uint64_t>(1, opt_.flush_interval_ms / 8)
                                : opt_.flush_interval_ms;
      }
      lock.lock();
      trunc_done_ = last_trunc;
      sync_done_ = sync_goal;
      done_cv_.notify_all();
    }
    // Shutdown: one closing round drains every shard and stamps kClose.
    lock.unlock();
    refresh_cache();
    round(/*closing=*/true);
    stop_flag_.store(true, std::memory_order_release);
    lock.lock();
    sync_done_ = sync_req_;
    trunc_done_ = trunc_req_;
    done_cv_.notify_all();
  }

  void refresh_cache() {
    std::lock_guard<std::mutex> lock(shards_mu_);
    if (cache_gen_ != shards_gen_) {
      cache_ = shards_;
      cache_gen_ = shards_gen_;
    }
  }

  size_t round(bool closing, bool force_sync = false) {
    size_t total = 0;
    for (LogShard* s : cache_) {
      total += drain_shard(*s, closing, force_sync);
    }
    if (total > 0) {
      flushes_.fetch_add(1, std::memory_order_relaxed);
    }
    return total;
  }

  // One shard's group commit. Returns bytes drained. Drains run as often as
  // buffers need recycling, but the fdatasync is paced by the safety
  // deadline: durability is forced at least every flush_interval_ms (the
  // paper's 200 ms), on explicit sync()s, and at close — not per drain,
  // which would burn the write path's CPU budget on journal commits.
  size_t drain_shard(LogShard& s, bool closing, bool force_sync) {
    if (s.close_done_.load(std::memory_order_acquire)) {
      return 0;  // parked in the pool: no producer, file already complete
    }
    uint64_t pub_before = s.pub_total_.load(std::memory_order_acquire);
    uint64_t t0 = wall_us();
    size_t bytes = drain_pass(s);

    full_fence();  // pair of LogShard::begin_append's fence
    uint64_t begin_after = s.begin_total_.load(std::memory_order_relaxed);
    bool released = s.released_.load(std::memory_order_acquire);

    char scratch[64];
    if (closing || released) {
      // The producer is gone; one more pass picks up anything it published
      // before detaching, then the completion marker seals the file.
      bytes += drain_pass(s);
      size_t n = logwire::encode_marker_v2_to(scratch, LogType::kClose, wall_us());
      write_all(s, scratch, n);
      bytes += n;
      if (s.error() == 0) {
        // Trim the preallocated zero tail: a cleanly closed file ends at
        // its kClose marker, exactly.
        int tr;
        while ((tr = io::ftruncate(s.fd_, static_cast<off_t>(s.write_off_))) != 0 &&
               errno == EINTR) {
        }
        if (tr == 0) {
          s.prealloc_end_ = s.write_off_;
        }
      }
      for (LogShard::Buf& b : s.bufs_) {
        b.drained = 0;
        b.published.store(0, std::memory_order_relaxed);
        b.full.store(false, std::memory_order_relaxed);
      }
      s.close_done_.store(true, std::memory_order_release);
      // A fail-stopped shard never re-enters the pool: a session claiming
      // it would log into a file that silently discards everything. Fresh
      // sessions mint a fresh (healthy) file instead.
      if (pool_ != nullptr && !closing && s.error() == 0) {
        pool_->park(&s);
      }
    } else if (begin_after == pub_before &&
               (force_sync ||
                t0 - s.last_mark_us_ >= opt_.flush_interval_ms * 1000)) {
      // No append overlapped this round, so every record that existed when
      // it started has been drained, and any append that begins later will
      // read its timestamp after our t0: a marker at t0-1 can never claim
      // coverage past a record a crash could lose. Under load the check
      // fails harmlessly — freshly drained records advance the file's last
      // timestamp on their own. Heartbeats are paced by the flush deadline
      // (plus explicit syncs): a busy sibling shard kicking this writer
      // many times a second must not make every idle shard grow a marker
      // per round.
      size_t n = logwire::encode_marker_v2_to(scratch, LogType::kMarker,
                                              t0 == 0 ? 0 : t0 - 1);
      write_all(s, scratch, n);
      bytes += n;
    }
    if (bytes > 0) {
      s.last_mark_us_ = t0;
    }

    // The fsync gate looks at unsynced_bytes_, not this round's drain: a
    // sync() must force bytes a PREVIOUS round drained inside the deadline
    // window, even when this round itself moved nothing.
    bool deadline_due = t0 - s.last_fsync_us_ >= opt_.flush_interval_ms * 1000;
    if (s.unsynced_bytes_ > 0 && opt_.fsync_on_flush && s.error() == 0 &&
        (force_sync || closing || released || deadline_due)) {
      int sr;
      while ((sr = io::fdatasync(s.fd_)) != 0 && errno == EINTR) {
      }
      if (sr != 0) {
        note_error(s, "fdatasync", errno);
      }
      s.last_fsync_us_ = t0;
      s.unsynced_bytes_ = 0;
      syncs_.fetch_add(1, std::memory_order_relaxed);
    }
    return bytes;
  }

  // Gather the shard's pending bytes — jumbo record first (it predates
  // anything currently buffered), then sealed halves oldest-first, then the
  // active half's published prefix — into one writev, then publish
  // consumption back to the producer.
  size_t drain_pass(LogShard& s) {
    struct iovec iov[3];
    int niov = 0;
    size_t jumbo_bytes = 0;
    if (s.jumbo_pending_.load(std::memory_order_acquire)) {
      // Jumbo records always carry absolute timestamps, so one re-anchors
      // the delta chain just like a producer rebase would.
      s.skip_dangling_ = false;
      jumbo_bytes = s.jumbo_->size();
      iov[niov].iov_base = s.jumbo_->data();
      iov[niov].iov_len = jumbo_bytes;
      ++niov;
    }

    // Snapshot both halves — full flag, seal sequence, published bytes —
    // then VALIDATE that no seal landed mid-snapshot by re-reading the
    // flags. Without the validation there is a real reordering window: with
    // both halves reading not-full, the producer can seal the active half
    // and publish fresh records into the other between our flag reads and
    // published reads, and index-order draining would write those fresh
    // bytes ahead of the sealed half's older tail. A stable (seal-free)
    // snapshot makes the ordering rule airtight: full halves (published
    // final, drain + recycle) are strictly older than whatever the active
    // half published before the snapshot. Seals are ~one per megabyte, so
    // the retry loop converges immediately; if the producer somehow seals
    // through every retry we fall back to draining the stably-full halves
    // only (they stay full until we recycle them), deferring the active
    // prefix one round.
    struct View {
      LogShard::Buf* b;
      bool full;
      uint64_t seq;
      size_t take = 0;
    } v[2];
    bool stable = false;
    for (int attempt = 0; attempt < 64 && !stable; ++attempt) {
      for (int i = 0; i < 2; ++i) {
        v[i].b = &s.bufs_[i];
        v[i].full = v[i].b->full.load(std::memory_order_acquire);
        v[i].seq = v[i].b->seal_seq.load(std::memory_order_relaxed);
        v[i].take = v[i].b->published.load(std::memory_order_acquire);
      }
      stable = v[0].full == v[0].b->full.load(std::memory_order_acquire) &&
               v[1].full == v[1].b->full.load(std::memory_order_acquire);
    }
    if (!stable) {
      for (View& view : v) {
        if (!view.full) {
          view.take = view.b->drained;  // skip the active prefix this round
        } else {
          view.take = view.b->published.load(std::memory_order_acquire);
        }
      }
    }
    // Full halves first (two order by seal sequence): the drain order must
    // match append order so the file stays a faithful prefix of the record
    // stream, which the timestamp-cutoff argument needs.
    if ((v[0].full && v[1].full && v[0].seq > v[1].seq) || (!v[0].full && v[1].full)) {
      std::swap(v[0], v[1]);
    }
    // After a truncate round, leading delta records are dangling — their
    // base was discarded — so consume them from the arena without writing
    // until the producer's first absolute record arrives (views are in
    // file order here, so this scans the oldest pending bytes first).
    if (MT_UNLIKELY(s.skip_dangling_)) {
      for (View& view : v) {
        if (view.take > view.b->drained) {
          skip_dangling_records(s, *view.b, view.take);
        }
        if (!s.skip_dangling_) {
          break;
        }
      }
    }
    size_t buf_bytes = 0;
    for (View& view : v) {
      LogShard::Buf& b = *view.b;
      if (view.take > b.drained) {
        iov[niov].iov_base = b.data.get() + b.drained;
        iov[niov].iov_len = view.take - b.drained;
        buf_bytes += view.take - b.drained;
        ++niov;
      }
    }

    if (niov > 0) {
      writev_all(s, iov, niov);
    }

    // Consumption is published even when a sticky error forced a discard:
    // the producer must never stall on a dead disk.
    if (jumbo_bytes > 0) {
      s.drain_total_.fetch_add(jumbo_bytes, std::memory_order_release);
      s.jumbo_pending_.store(false, std::memory_order_release);
    }
    for (View& view : v) {
      LogShard::Buf& b = *view.b;
      if (view.take > b.drained) {
        s.drain_total_.fetch_add(view.take - b.drained, std::memory_order_release);
        b.drained = view.take;
      }
      if (view.full) {
        b.drained = 0;
        b.published.store(0, std::memory_order_relaxed);
        b.full.store(false, std::memory_order_release);  // recycle for reuse
      }
    }
    return jumbo_bytes + buf_bytes;
  }

  // Advance b.drained past records whose delta base a truncate discarded.
  // Arena content is producer-encoded v2 data records at record-aligned
  // offsets, so the cheap frame walk below cannot misparse; if it somehow
  // fails anyway we stop skipping and let recovery's CRC checks rule.
  void skip_dangling_records(LogShard& s, LogShard::Buf& b, size_t take) {
    const char* base = b.data.get();
    size_t pos = b.drained;
    while (pos < take) {
      uint64_t len;
      const char* q = vint::get(base + pos, base + take, &len);
      if (q == nullptr ||
          static_cast<size_t>(len) + sizeof(uint32_t) >
              take - static_cast<size_t>(q - base)) {
        s.skip_dangling_ = false;
        break;
      }
      uint8_t tag = static_cast<uint8_t>(*q);
      if (!(tag & logwire::kFlagDeltaTs)) {
        s.skip_dangling_ = false;  // absolute record re-anchors the chain
        break;
      }
      pos = static_cast<size_t>(q - base) + static_cast<size_t>(len) +
            sizeof(uint32_t);
    }
    if (pos > b.drained) {
      s.drain_total_.fetch_add(pos - b.drained, std::memory_order_release);
      b.drained = pos;
    }
  }

  // Grow the preallocated extent window so the coming pwrites stay inside
  // i_size. Doubling chunks amortize the (journaling) fallocate calls; on
  // filesystems without fallocate support the writes simply extend the file
  // the ordinary way. A disk that is actually out of space (ENOSPC-class
  // errnos) is a storage failure, not a missing feature: the shard
  // fail-stops so the store can degrade to read-only instead of aborting
  // or silently dropping durability.
  void ensure_prealloc(LogShard& s, size_t bytes) {
    while (s.write_off_ + bytes > s.prealloc_end_ && s.prealloc_end_ != SIZE_MAX) {
      size_t chunk = std::max(s.prealloc_chunk_, bytes);
      if (io::fallocate(s.fd_, 0, static_cast<off_t>(s.prealloc_end_),
                        static_cast<off_t>(chunk)) != 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == ENOSPC || errno == EDQUOT || errno == EIO) {
          note_error(s, "fallocate", errno);
          return;
        }
        s.prealloc_end_ = SIZE_MAX;  // unsupported here: plain extending writes
        return;
      }
      s.prealloc_end_ += chunk;
      s.prealloc_chunk_ = std::min(s.prealloc_chunk_ * 2, size_t{4} << 20);
    }
  }

  // Positional gathered write with EINTR/short-write retry. On a hard error
  // the shard fail-stops: the errno sticks, the remaining bytes are
  // discarded, and no further bytes are ever written to that file, keeping
  // its on-disk content a clean prefix.
  void writev_all(LogShard& s, struct iovec* iov, int niov) {
    if (s.error() != 0) {
      return;
    }
    // Every v2 stream opens with a format header: at byte 0 of a fresh (or
    // truncated) file, and mid-file before the first append to an adopted
    // pre-v2 file (whose existing records keep decoding as v1).
    char hdr[logwire::kHeaderSize];
    struct iovec hiov[4];
    if (MT_UNLIKELY(s.write_off_ == 0 || s.pending_midfile_header_)) {
      logwire::encode_header_to(hdr);
      hiov[0].iov_base = hdr;
      hiov[0].iov_len = logwire::kHeaderSize;
      for (int i = 0; i < niov; ++i) {
        hiov[i + 1] = iov[i];
      }
      iov = hiov;
      ++niov;
      s.pending_midfile_header_ = false;
    }
    size_t total = 0;
    for (int i = 0; i < niov; ++i) {
      total += iov[i].iov_len;
    }
    ensure_prealloc(s, total);
    if (s.error() != 0) {
      return;  // ENOSPC-class prealloc failure fail-stopped the shard
    }
    size_t done = 0;
    while (done < total) {
      ssize_t n = io::pwritev(s.fd_, iov, niov, static_cast<off_t>(s.write_off_ + done));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        note_error(s, "pwritev", errno);
        return;
      }
      done += static_cast<size_t>(n);
      bytes_written_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      counters_.inc(Counter::kLogFlushBytes, static_cast<uint64_t>(n));
      s.unsynced_bytes_ += static_cast<size_t>(n);
      if (done == total) {
        break;
      }
      // Short write: advance the iovec window and retry.
      size_t skip = static_cast<size_t>(n);
      while (skip >= iov[0].iov_len) {
        skip -= iov[0].iov_len;
        ++iov;
        --niov;
      }
      iov[0].iov_base = static_cast<char*>(iov[0].iov_base) + skip;
      iov[0].iov_len -= skip;
    }
    s.write_off_ += total;
  }

  void write_all(LogShard& s, const char* p, size_t n) {
    struct iovec iov{const_cast<char*>(p), n};
    writev_all(s, &iov, 1);
  }

  void truncate_round() {
    for (LogShard* s : cache_) {
      drain_discard(*s);
      {
        std::lock_guard<std::mutex> lock(s->geom_mu_);
        int tr;
        while ((tr = io::ftruncate(s->fd_, 0)) != 0 && errno == EINTR) {
        }
        if (tr != 0) {
          note_error(*s, "ftruncate", errno);
        }
        s->write_off_ = 0;
        s->prealloc_end_ = 0;
        s->unsynced_bytes_ = 0;
        s->pending_midfile_header_ = false;
      }
      // The discarded bytes may include the producer's delta base. Tell it
      // to re-anchor (any append ordered after truncate_all's return sees
      // this store), and drop the dangling delta records a concurrent
      // append may still slip in before noticing.
      s->rebase_needed_.store(true, std::memory_order_release);
      s->skip_dangling_ = true;
    }
  }

  // Consume everything published without writing it (truncate semantics:
  // buffered records are dropped too). Runs on this thread, so no write can
  // be in flight concurrently.
  void drain_discard(LogShard& s) {
    if (s.jumbo_pending_.load(std::memory_order_acquire)) {
      s.drain_total_.fetch_add(s.jumbo_->size(), std::memory_order_release);
      s.jumbo_pending_.store(false, std::memory_order_release);
    }
    for (LogShard::Buf& b : s.bufs_) {
      size_t p = b.published.load(std::memory_order_acquire);
      if (p > b.drained) {
        s.drain_total_.fetch_add(p - b.drained, std::memory_order_release);
        b.drained = p;
      }
      if (b.full.load(std::memory_order_acquire)) {
        b.drained = 0;
        b.published.store(0, std::memory_order_relaxed);
        b.full.store(false, std::memory_order_release);
      }
    }
  }

  void note_error(LogShard& s, const char* syscall, int err) {
    s.error_.store(err, std::memory_order_relaxed);
    record_first_error(io::IoErrorDetail{syscall, s.path(), s.write_off_, err});
  }

  void record_first_error(const io::IoErrorDetail& d) {
    int expected = 0;
    if (first_error_.compare_exchange_strong(expected, d.err,
                                             std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(err_detail_mu_);
        first_error_detail_ = d;
      }
      if (on_first_error_) {
        on_first_error_(d);
      }
    }
  }

  Options opt_;
  LogShardPool* pool_;
  std::thread thread_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  bool kicked_ = false;
  uint64_t sync_req_ = 0, sync_done_ = 0;
  uint64_t trunc_req_ = 0, trunc_done_ = 0;
  std::atomic<bool> stop_flag_{false};

  std::mutex shards_mu_;
  std::vector<LogShard*> shards_;
  uint64_t shards_gen_ = 0;
  std::vector<LogShard*> cache_;
  uint64_t cache_gen_ = 0;

  uint64_t adaptive_wait_ms_;

  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<int> first_error_{0};
  mutable std::mutex err_detail_mu_;
  io::IoErrorDetail first_error_detail_;
  std::function<void(const io::IoErrorDetail&)> on_first_error_;
  ThreadCounters counters_;  // written by the logging thread only
};

inline void LogShard::kick_writer() {
  if (writer_ != nullptr) {
    writer_->kick();
  }
}

inline bool LogShard::writer_stopped() const {
  return writer_ == nullptr || writer_->stopped();
}

inline void LogShard::release_producer() {
  released_.store(true, std::memory_order_release);
  kick_writer();
}

// Convenience wrapper: one shard drained by its own logging thread. Appends
// are wait-free but single-producer — callers with multiple append threads
// must serialize them externally (the Store does not use this class; it runs
// one shard per session).
class Logger {
 public:
  struct Options {
    uint64_t flush_interval_ms = 200;  // the paper's safety deadline
    // Per arena half. Two of these per session; sized so a full-throttle
    // producer hands the logging thread multi-hundred-KB writevs (the
    // "higher bulk sequential throughput" batching §5 asks for) instead of
    // trickling small buffers.
    size_t buffer_bytes = 1 << 20;
    bool fsync_on_flush = true;
    // Values this size or larger are lz-compressed in the log (0 disables).
    size_t compress_threshold = 128;
  };

  explicit Logger(const std::string& path) : Logger(path, Options()) {}

  Logger(const std::string& path, Options opt)
      : writer_(LogWriter::Options{opt.flush_interval_ms, opt.fsync_on_flush}),
        // Tail repair on: reusing a path a crashed run left behind must chop
        // its torn/preallocated-zero tail, or every new record (and the
        // eventual kClose) would land beyond a gap recovery can never read
        // past.
        shard_(path, opt.buffer_bytes, 0, &counters_, /*repair_existing_tail=*/true,
               opt.compress_threshold) {
    writer_.add_shard(&shard_);
    writer_.start();
  }

  ~Logger() { writer_.stop(); }  // final drain + kClose + fdatasync

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void append_put(std::string_view key, std::span<const ColumnUpdate> updates,
                  uint64_t version) {
    shard_.append_put(key, updates, version);
  }

  void append_put(std::string_view key, std::initializer_list<ColumnUpdate> updates,
                  uint64_t version) {
    shard_.append_put(key, updates, version);
  }

  void append_remove(std::string_view key, uint64_t version) {
    shard_.append_remove(key, version);
  }

  // Force everything appended so far to storage (shutdown, checkpoints,
  // tests); stamps a heartbeat marker when safe so this log's last
  // timestamp covers the synced records (§5 recovery cutoff).
  void sync() { writer_.sync(); }

  // Discard everything written so far (after a checkpoint has made old
  // records redundant: §5 "allows log space to be reclaimed"). Buffered
  // records are dropped too — callers sync() first if they want them. The
  // truncation rendezvouses with the logging thread at a round boundary, so
  // it cannot shear an in-flight flush.
  void truncate() { writer_.truncate_all(); }

  const std::string& path() const { return shard_.path(); }
  uint64_t bytes_written() const { return writer_.bytes_written(); }
  uint64_t flushes() const { return writer_.flushes(); }
  int error() const { return shard_.error(); }
  io::IoErrorDetail error_detail() const { return writer_.error_detail(); }
  ThreadCounters& counters() { return counters_; }

 private:
  ThreadCounters counters_;
  LogWriter writer_;
  LogShard shard_;
};

}  // namespace masstree

#endif  // MASSTREE_LOG_LOGGER_H_
