// Per-worker value logging with group commit (§5).
//
// "Each server query thread (core) maintains its own log file and in-memory
//  log buffer. A corresponding logging thread ... writes out the log buffer
//  in the background. ... A put operation appends to the query thread's log
//  buffer and responds to the client without forcing that buffer to storage.
//  Logging threads batch updates to take advantage of higher bulk sequential
//  throughput, but force logs to storage at least every 200 ms for safety."

#ifndef MASSTREE_LOG_LOGGER_H_
#define MASSTREE_LOG_LOGGER_H_

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "log/logrecord.h"
#include "util/timing.h"

namespace masstree {

class Logger {
 public:
  struct Options {
    uint64_t flush_interval_ms = 200;   // the paper's safety deadline
    size_t flush_high_water = 256 << 10;  // flush early once this much queued
    bool fsync_on_flush = true;
  };

  explicit Logger(const std::string& path) : Logger(path, Options()) {}

  Logger(const std::string& path, Options opt) : opt_(opt), path_(path) {
    fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd_ < 0) {
      throw std::runtime_error("Logger: cannot open " + path);
    }
    flusher_ = std::thread([this] { flush_loop(); });
  }

  ~Logger() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
      cv_.notify_all();
    }
    flusher_.join();
    {
      // Final heartbeat: this log's last timestamp must cover every record
      // it holds, or the recovery cutoff would drop other logs' tails (§5).
      std::unique_lock<std::mutex> lock(mu_);
      logwire::encode_marker(&buf_, wall_us());
    }
    flush_now();
    ::close(fd_);
  }

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  // Appends return as soon as the record is buffered; durability arrives
  // with the next group commit.
  void append_put(std::string_view key, const std::vector<ColumnUpdate>& updates,
                  uint64_t version, uint64_t timestamp_us) {
    std::unique_lock<std::mutex> lock(mu_);
    logwire::encode_put(&buf_, key, updates, version, timestamp_us);
    maybe_kick(lock);
  }

  void append_remove(std::string_view key, uint64_t version, uint64_t timestamp_us) {
    std::unique_lock<std::mutex> lock(mu_);
    logwire::encode_remove(&buf_, key, version, timestamp_us);
    maybe_kick(lock);
  }

  // Force everything buffered so far to storage (shutdown, checkpoints,
  // tests). Appends a timestamp marker first so this log's last timestamp
  // covers every record just synced — recovery's cutoff then keeps them.
  void sync() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      logwire::encode_marker(&buf_, wall_us());
    }
    flush_now();
  }

  // Discard everything written so far (after a checkpoint has made old
  // records redundant: §5 "allows log space to be reclaimed"). Buffered
  // records are dropped too — callers sync() first if they want them.
  void truncate() {
    std::unique_lock<std::mutex> lock(mu_);
    buf_.clear();
    ::ftruncate(fd_, 0);
    ::lseek(fd_, 0, SEEK_SET);
  }

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_.load(std::memory_order_relaxed); }
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }

 private:
  void maybe_kick(std::unique_lock<std::mutex>& lock) {
    if (buf_.size() >= opt_.flush_high_water) {
      cv_.notify_all();
    }
    (void)lock;
  }

  void flush_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(opt_.flush_interval_ms), [this] {
        return stop_ || buf_.size() >= opt_.flush_high_water;
      });
      if (buf_.empty() && !stop_) {
        // Heartbeat so this log's last timestamp keeps advancing and the §5
        // recovery cutoff is not pinned by an idle worker.
        logwire::encode_marker(&buf_, wall_us());
      }
      flush_locked(lock);
    }
  }

  void flush_now() {
    std::unique_lock<std::mutex> lock(mu_);
    flush_locked(lock);
  }

  void flush_locked(std::unique_lock<std::mutex>& lock) {
    if (buf_.empty()) {
      return;
    }
    std::string out;
    out.swap(buf_);
    lock.unlock();  // writers keep appending while we hit the disk
    size_t off = 0;
    while (off < out.size()) {
      ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) {
        break;  // disk error: records stay lost; recovery's cutoff handles it
      }
      off += static_cast<size_t>(n);
    }
    if (opt_.fsync_on_flush) {
      ::fdatasync(fd_);
    }
    bytes_written_.fetch_add(off, std::memory_order_relaxed);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }

  Options opt_;
  std::string path_;
  int fd_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::string buf_;
  bool stop_ = false;
  std::thread flusher_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> flushes_{0};
};

}  // namespace masstree

#endif  // MASSTREE_LOG_LOGGER_H_
