// Checkpoint file format (§5).
//
// "Masstree periodically writes out a checkpoint containing all keys and
//  values. This speeds recovery and allows log space to be reclaimed.
//  Recovery loads the latest valid checkpoint that completed before t, the
//  log recovery time, and then replays logs starting from the timestamp at
//  which the checkpoint began."
//
// A checkpoint is a directory of part files (one per checkpoint worker, each
// covering a key range) plus a MANIFEST written last via rename, so an
// interrupted checkpoint is simply invisible to recovery.
//
// Part record: u32 klen | key | u64 row_version | u16 ncols |
//              (u32 len | bytes)* | u32 crc32(record).

#ifndef MASSTREE_CHECKPOINT_CHECKPOINT_H_
#define MASSTREE_CHECKPOINT_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/crc32.h"

namespace masstree {

struct CheckpointManifest {
  uint64_t start_ts_us = 0;      // wall clock when the checkpoint began
  uint64_t version_floor = 0;    // value-version counter at start
  unsigned parts = 0;
  bool valid = false;
};

inline std::string checkpoint_part_path(const std::string& dir, unsigned part) {
  return dir + "/part-" + std::to_string(part) + ".ckpt";
}
inline std::string checkpoint_manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

inline bool write_manifest(const std::string& dir, const CheckpointManifest& m) {
  std::string tmp = dir + "/MANIFEST.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << "masstree-checkpoint v1\n"
        << "start_ts_us " << m.start_ts_us << "\n"
        << "version_floor " << m.version_floor << "\n"
        << "parts " << m.parts << "\n";
  }
  return ::rename(tmp.c_str(), checkpoint_manifest_path(dir).c_str()) == 0;
}

inline CheckpointManifest read_manifest(const std::string& dir) {
  CheckpointManifest m;
  std::ifstream in(checkpoint_manifest_path(dir));
  if (!in) {
    return m;
  }
  std::string header;
  std::getline(in, header);
  if (header != "masstree-checkpoint v1") {
    return m;
  }
  std::string field;
  while (in >> field) {
    if (field == "start_ts_us") {
      in >> m.start_ts_us;
    } else if (field == "version_floor") {
      in >> m.version_floor;
    } else if (field == "parts") {
      in >> m.parts;
    }
  }
  m.valid = m.parts > 0;
  return m;
}

// Streaming writer for one part file.
class CheckpointPartWriter {
 public:
  explicit CheckpointPartWriter(const std::string& path) : out_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(out_); }

  void add(std::string_view key, uint64_t row_version,
           const std::vector<std::string_view>& cols) {
    rec_.clear();
    append_raw<uint32_t>(static_cast<uint32_t>(key.size()));
    rec_.append(key);
    append_raw<uint64_t>(row_version);
    append_raw<uint16_t>(static_cast<uint16_t>(cols.size()));
    for (const auto& c : cols) {
      append_raw<uint32_t>(static_cast<uint32_t>(c.size()));
      rec_.append(c);
    }
    uint32_t crc = crc32(rec_);
    rec_.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out_.write(rec_.data(), static_cast<std::streamsize>(rec_.size()));
    ++records_;
  }

  uint64_t records() const { return records_; }

  void finish() { out_.flush(); }

 private:
  template <typename T>
  void append_raw(T v) {
    rec_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  std::ofstream out_;
  std::string rec_;
  uint64_t records_ = 0;
};

struct CheckpointRecord {
  std::string key;
  uint64_t row_version;
  std::vector<std::string> cols;
};

// Reads a whole part file; stops silently at a torn/corrupt tail (a crash
// mid-part without a manifest would not be read at all; this is extra
// defensiveness for damaged storage).
inline std::vector<CheckpointRecord> read_checkpoint_part(const std::string& path) {
  std::vector<CheckpointRecord> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return out;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  size_t pos = 0;
  auto read_raw = [&data](size_t at, auto* v) {
    std::memcpy(v, data.data() + at, sizeof(*v));
  };
  while (pos + 4 <= data.size()) {
    size_t start = pos;
    uint32_t klen;
    read_raw(pos, &klen);
    pos += 4;
    if (pos + klen + 8 + 2 > data.size()) {
      break;
    }
    CheckpointRecord r;
    r.key.assign(data.data() + pos, klen);
    pos += klen;
    read_raw(pos, &r.row_version);
    pos += 8;
    uint16_t ncols;
    read_raw(pos, &ncols);
    pos += 2;
    bool torn = false;
    for (uint16_t i = 0; i < ncols && !torn; ++i) {
      if (pos + 4 > data.size()) {
        torn = true;
        break;
      }
      uint32_t clen;
      read_raw(pos, &clen);
      pos += 4;
      if (pos + clen > data.size()) {
        torn = true;
        break;
      }
      r.cols.emplace_back(data.data() + pos, clen);
      pos += clen;
    }
    if (torn || pos + 4 > data.size()) {
      break;
    }
    uint32_t want;
    read_raw(pos, &want);
    if (crc32(data.data() + start, pos - start) != want) {
      break;
    }
    pos += 4;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace masstree

#endif  // MASSTREE_CHECKPOINT_CHECKPOINT_H_
