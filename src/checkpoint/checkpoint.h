// Checkpoint file format (§5).
//
// "Masstree periodically writes out a checkpoint containing all keys and
//  values. This speeds recovery and allows log space to be reclaimed.
//  Recovery loads the latest valid checkpoint that completed before t, the
//  log recovery time, and then replays logs starting from the timestamp at
//  which the checkpoint began."
//
// A checkpoint is a directory of part files (one per checkpoint worker, each
// covering a key range) plus a MANIFEST written last via rename, so an
// interrupted checkpoint is simply invisible to recovery.
//
// Part format v2 (current): the file opens with "MTCK" u8 format_version,
// then varint-framed records sharing the log's column encoding:
//
//   varint payload_len | payload | u32 crc32c(payload)
//   payload: varint klen | key | varint row_version | varint ncols |
//            per column: varint h = raw_len * 2 | compressed,
//                        [varint stored_len when compressed], stored bytes
//
// Columns at or above the writer's compress threshold are lz-compressed
// with an incompressible bail-out, mirroring the log. Headerless files are
// read with the legacy v1 layout (u32 klen | key | u64 row_version |
// u16 ncols | (u32 len | bytes)* | u32 crc32(record)); an unknown header
// version fail-stops rather than reading as an empty checkpoint.

#ifndef MASSTREE_CHECKPOINT_CHECKPOINT_H_
#define MASSTREE_CHECKPOINT_CHECKPOINT_H_

#include <fcntl.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/io.h"
#include "util/lz.h"
#include "util/varint.h"

namespace masstree {

inline constexpr char kCkptMagic[4] = {'M', 'T', 'C', 'K'};
inline constexpr uint8_t kCkptFormatV2 = 2;

struct CheckpointManifest {
  uint64_t start_ts_us = 0;      // wall clock when the checkpoint began
  uint64_t version_floor = 0;    // value-version counter at start
  unsigned parts = 0;
  bool valid = false;
};

inline std::string checkpoint_part_path(const std::string& dir, unsigned part) {
  return dir + "/part-" + std::to_string(part) + ".ckpt";
}
inline std::string checkpoint_manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

// The MANIFEST is the checkpoint's commit point: parts are fdatasynced by
// their writers, the manifest body is written + fdatasynced to a temp file,
// and the final rename publishes it atomically — a crash (or a FaultPlan
// power cut) anywhere before the rename leaves the checkpoint invisible.
inline bool write_manifest(const std::string& dir, const CheckpointManifest& m) {
  std::string tmp = dir + "/MANIFEST.tmp";
  std::string body = "masstree-checkpoint v1\nstart_ts_us " +
                     std::to_string(m.start_ts_us) + "\nversion_floor " +
                     std::to_string(m.version_floor) + "\nparts " +
                     std::to_string(m.parts) + "\n";
  int fd = io::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  size_t off = 0;
  while (off < body.size()) {
    ssize_t w = io::write(fd, body.data() + off, body.size() - off);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) {
        continue;
      }
      io::close(fd);
      return false;
    }
    off += static_cast<size_t>(w);
  }
  int sr;
  while ((sr = io::fdatasync(fd)) != 0 && errno == EINTR) {
  }
  io::close(fd);
  if (sr != 0) {
    return false;
  }
  int rr;
  while ((rr = io::rename(tmp.c_str(), checkpoint_manifest_path(dir).c_str())) != 0 &&
         errno == EINTR) {
  }
  return rr == 0;
}

inline CheckpointManifest read_manifest(const std::string& dir) {
  CheckpointManifest m;
  std::ifstream in(checkpoint_manifest_path(dir));
  if (!in) {
    return m;
  }
  std::string header;
  std::getline(in, header);
  if (header != "masstree-checkpoint v1") {
    return m;
  }
  std::string field;
  while (in >> field) {
    if (field == "start_ts_us") {
      in >> m.start_ts_us;
    } else if (field == "version_floor") {
      in >> m.version_floor;
    } else if (field == "parts") {
      in >> m.parts;
    }
  }
  m.valid = m.parts > 0;
  return m;
}

// Streaming writer for one part file (v2: varint framing + per-column lz
// compression above `compress_threshold`, 0 disables). Writes go through
// the masstree::io seam, so checkpoint parts are covered by the same fault
// plans (ENOSPC, short writes, power cuts) as the log; the first failing
// syscall's context is kept for the store's read-only trip line.
class CheckpointPartWriter {
 public:
  explicit CheckpointPartWriter(const std::string& path,
                                size_t compress_threshold = 128)
      : path_(path), threshold_(compress_threshold) {
    fd_ = io::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd_ < 0) {
      err_ = io::IoErrorDetail{"open", path_, 0, errno};
      return;
    }
    char hdr[5];
    std::memcpy(hdr, kCkptMagic, 4);
    hdr[4] = static_cast<char>(kCkptFormatV2);
    write_all(hdr, sizeof(hdr));
  }

  ~CheckpointPartWriter() {
    if (fd_ >= 0) {
      io::close(fd_);
    }
  }

  CheckpointPartWriter(const CheckpointPartWriter&) = delete;
  CheckpointPartWriter& operator=(const CheckpointPartWriter&) = delete;

  bool ok() const { return fd_ >= 0 && err_.err == 0; }
  // Context of the first failing syscall (default-constructed while ok).
  const io::IoErrorDetail& error_detail() const { return err_; }

  void add(std::string_view key, uint64_t row_version,
           const std::vector<std::string_view>& cols) {
    // Compress eligible columns first so the payload varints carry final
    // sizes. Checkpointing runs on background workers, so a heap scratch
    // (reused across add calls) is fine here, unlike the log append path.
    payload_.clear();
    put_varint(key.size());
    payload_.append(key);
    put_varint(row_version);
    put_varint(cols.size());
    for (const auto& c : cols) {
      size_t csize = 0;
      if (threshold_ != 0 && c.size() >= threshold_) {
        scratch_.resize(c.size() - 1);
        csize = lz::compress(c.data(), c.size(), scratch_.data(),
                             scratch_.size());
      }
      put_varint((static_cast<uint64_t>(c.size()) << 1) | (csize != 0));
      if (csize != 0) {
        put_varint(csize);
        payload_.append(scratch_.data(), csize);
      } else {
        payload_.append(c);
      }
    }
    // One write per record (frame + payload + crc): record boundaries are
    // syscall boundaries, which is what gives the crash-point sweep its
    // torn-record coverage.
    char frame[vint::kMaxBytes];
    record_.clear();
    record_.append(frame, static_cast<size_t>(
                              vint::put(frame, payload_.size()) - frame));
    record_.append(payload_);
    uint32_t crc = crc32(payload_);
    record_.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
    write_all(record_.data(), record_.size());
    ++records_;
  }

  uint64_t records() const { return records_; }

  // Make the part durable before the manifest commits it.
  void finish() {
    if (ok()) {
      int sr;
      while ((sr = io::fdatasync(fd_)) != 0 && errno == EINTR) {
      }
      if (sr != 0) {
        err_ = io::IoErrorDetail{"fdatasync", path_, written_, errno};
      }
    }
  }

 private:
  void put_varint(uint64_t v) {
    char buf[vint::kMaxBytes];
    payload_.append(buf, static_cast<size_t>(vint::put(buf, v) - buf));
  }

  void write_all(const char* p, size_t n) {
    if (!ok()) {
      return;  // fail-stop: never write past the first error
    }
    size_t off = 0;
    while (off < n) {
      ssize_t w = io::write(fd_, p + off, n - off);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) {
          continue;
        }
        err_ = io::IoErrorDetail{"write", path_, written_ + off,
                                 w < 0 ? errno : EIO};
        return;
      }
      off += static_cast<size_t>(w);
    }
    written_ += n;
  }

  std::string path_;
  int fd_ = -1;
  io::IoErrorDetail err_;
  uint64_t written_ = 0;
  size_t threshold_;
  std::string payload_;
  std::string record_;
  std::string scratch_;
  uint64_t records_ = 0;
};

struct CheckpointRecord {
  std::string key;
  uint64_t row_version;
  std::vector<std::string> cols;
};

namespace ckptwire {

// v2 record stream starting at `pos` (just past the header).
inline void read_v2_records(const std::string& data, size_t pos,
                            std::vector<CheckpointRecord>* out) {
  const char* base = data.data();
  const char* dend = base + data.size();
  while (pos < data.size()) {
    uint64_t len;
    const char* q = vint::get(base + pos, dend, &len);
    if (q == nullptr || len > (1u << 30)) {
      break;
    }
    size_t payload_off = static_cast<size_t>(q - base);
    if (data.size() - payload_off < static_cast<size_t>(len) + 4) {
      break;
    }
    uint32_t want;
    std::memcpy(&want, base + payload_off + len, sizeof(want));
    if (crc32(base + payload_off, static_cast<size_t>(len)) != want) {
      break;
    }
    const char* p = base + payload_off;
    const char* end = p + len;
    CheckpointRecord r;
    uint64_t klen;
    p = vint::get(p, end, &klen);
    if (p == nullptr || klen > static_cast<size_t>(end - p)) break;
    r.key.assign(p, static_cast<size_t>(klen));
    p += klen;
    p = vint::get(p, end, &r.row_version);
    if (p == nullptr) break;
    uint64_t ncols;
    p = vint::get(p, end, &ncols);
    if (p == nullptr || ncols > 0xffff) break;
    bool bad = false;
    for (uint64_t i = 0; i < ncols; ++i) {
      uint64_t h;
      p = vint::get(p, end, &h);
      if (p == nullptr) {
        bad = true;
        break;
      }
      uint64_t raw_len = h >> 1;
      if (raw_len > (1u << 28)) {
        bad = true;
        break;
      }
      if (h & 1) {
        uint64_t stored;
        p = vint::get(p, end, &stored);
        if (p == nullptr || stored > static_cast<size_t>(end - p)) {
          bad = true;
          break;
        }
        std::string col;
        col.resize(static_cast<size_t>(raw_len));
        if (!lz::decompress(p, static_cast<size_t>(stored), col.data(),
                            col.size())) {
          bad = true;
          break;
        }
        p += stored;
        r.cols.push_back(std::move(col));
      } else {
        if (raw_len > static_cast<size_t>(end - p)) {
          bad = true;
          break;
        }
        r.cols.emplace_back(p, static_cast<size_t>(raw_len));
        p += raw_len;
      }
    }
    if (bad || p != end) {
      break;
    }
    out->push_back(std::move(r));
    pos = payload_off + static_cast<size_t>(len) + 4;
  }
}

}  // namespace ckptwire

// Reads a whole part file; stops silently at a torn/corrupt tail (a crash
// mid-part without a manifest would not be read at all; this is extra
// defensiveness for damaged storage). Headerless files decode with the
// legacy v1 layout; an unknown "MTCK" header version throws instead of
// reading as empty — fail-stop beats silently restoring nothing.
inline std::vector<CheckpointRecord> read_checkpoint_part(const std::string& path) {
  std::vector<CheckpointRecord> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return out;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (data.size() >= 4 && std::memcmp(data.data(), kCkptMagic, 4) == 0) {
    if (data.size() < 5) {
      return out;  // torn header
    }
    uint8_t ver = static_cast<uint8_t>(data[4]);
    if (ver != kCkptFormatV2) {
      throw std::runtime_error(
          "checkpoint: unsupported part format version " +
          std::to_string(ver) + " in " + path);
    }
    ckptwire::read_v2_records(data, 5, &out);
    return out;
  }
  size_t pos = 0;
  auto read_raw = [&data](size_t at, auto* v) {
    std::memcpy(v, data.data() + at, sizeof(*v));
  };
  while (pos + 4 <= data.size()) {
    size_t start = pos;
    uint32_t klen;
    read_raw(pos, &klen);
    pos += 4;
    if (pos + klen + 8 + 2 > data.size()) {
      break;
    }
    CheckpointRecord r;
    r.key.assign(data.data() + pos, klen);
    pos += klen;
    read_raw(pos, &r.row_version);
    pos += 8;
    uint16_t ncols;
    read_raw(pos, &ncols);
    pos += 2;
    bool torn = false;
    for (uint16_t i = 0; i < ncols && !torn; ++i) {
      if (pos + 4 > data.size()) {
        torn = true;
        break;
      }
      uint32_t clen;
      read_raw(pos, &clen);
      pos += 4;
      if (pos + clen > data.size()) {
        torn = true;
        break;
      }
      r.cols.emplace_back(data.data() + pos, clen);
      pos += clen;
    }
    if (torn || pos + 4 > data.size()) {
      break;
    }
    uint32_t want;
    read_raw(pos, &want);
    if (crc32(data.data() + start, pos - start) != want) {
      break;
    }
    pos += 4;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace masstree

#endif  // MASSTREE_CHECKPOINT_CHECKPOINT_H_
