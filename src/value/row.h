// Row — the Masstree value representation (§4.7).
//
// "The Masstree system stores values consisting of a version number and an
//  array of variable-length strings called columns. ... Multi-column puts are
//  atomic: a concurrent get will see either all or none of a put's column
//  modifications. ... Each value is allocated as a single memory block.
//  Modifications don't act in place ... put creates a new value object,
//  copying unmodified columns from the old value object as appropriate."
//
// Layout: one allocation holding {version, ncols, offsets[ncols+1], bytes}.
// Rows are immutable after construction; replacing a row swaps the tree's
// value pointer with one aligned write, and the old row is epoch-reclaimed.
// (This is the paper's small-value design; §4.7's per-column variant for
// large values trades copying for indirection and is out of scope here —
// see DESIGN.md.)

#ifndef MASSTREE_VALUE_ROW_H_
#define MASSTREE_VALUE_ROW_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "core/threadinfo.h"

namespace masstree {

// One column write within a put.
struct ColumnUpdate {
  unsigned col;
  std::string_view data;
};

class Row {
 public:
  // Build a row from scratch: columns not mentioned become empty.
  static Row* make(ThreadContext& ti, std::span<const ColumnUpdate> updates,
                   uint64_t version) {
    unsigned ncols = 0;
    for (const auto& u : updates) {
      if (u.col + 1 > ncols) {
        ncols = u.col + 1;
      }
    }
    return build(ti, nullptr, updates, ncols, version);
  }

  // Copy-on-write update: returns a fresh row with `updates` applied over
  // `old` (which may be null). Never mutates `old` (§4.7).
  static Row* update(ThreadContext& ti, const Row* old, std::span<const ColumnUpdate> updates,
                     uint64_t version) {
    unsigned ncols = old != nullptr ? old->ncols() : 0;
    for (const auto& u : updates) {
      if (u.col + 1 > ncols) {
        ncols = u.col + 1;
      }
    }
    return build(ti, old, updates, ncols, version);
  }

  // Braced-list conveniences: Row::make(ti, {{0, "v"}}, ver).
  static Row* make(ThreadContext& ti, std::initializer_list<ColumnUpdate> updates,
                   uint64_t version) {
    return make(ti, std::span<const ColumnUpdate>(updates.begin(), updates.size()),
                version);
  }

  static Row* update(ThreadContext& ti, const Row* old,
                     std::initializer_list<ColumnUpdate> updates, uint64_t version) {
    return update(ti, old,
                  std::span<const ColumnUpdate>(updates.begin(), updates.size()),
                  version);
  }

  uint64_t version() const { return version_; }
  unsigned ncols() const { return ncols_; }

  std::string_view col(unsigned i) const {
    if (i >= ncols_) {
      return {};
    }
    const uint32_t* off = offsets();
    return std::string_view(data() + off[i], off[i + 1] - off[i]);
  }

  // Total allocation footprint (for memory accounting).
  size_t bytes() const {
    return sizeof(Row) + (ncols_ + 1) * sizeof(uint32_t) + offsets()[ncols_];
  }

  static void deallocate(void* p) { Arena::deallocate(p); }

  // Helpers for storing Row* in the tree's opaque value slots.
  static uint64_t to_slot(const Row* r) { return reinterpret_cast<uint64_t>(r); }
  static Row* from_slot(uint64_t v) { return reinterpret_cast<Row*>(v); }

 private:
  static Row* build(ThreadContext& ti, const Row* old, std::span<const ColumnUpdate> updates,
                    unsigned ncols, uint64_t version) {
    // Resolve each column to its source (update wins over old row).
    size_t total = 0;
    std::vector<std::string_view> cols(ncols);
    for (unsigned i = 0; i < ncols; ++i) {
      cols[i] = old != nullptr ? old->col(i) : std::string_view();
    }
    for (const auto& u : updates) {
      cols[u.col] = u.data;
    }
    for (unsigned i = 0; i < ncols; ++i) {
      total += cols[i].size();
    }
    size_t bytes = sizeof(Row) + (ncols + 1) * sizeof(uint32_t) + total;
    Row* r = static_cast<Row*>(ti.allocate(bytes));
    r->version_ = version;
    r->ncols_ = ncols;
    uint32_t* off = r->offsets_mut();
    char* d = r->data_mut();
    uint32_t pos = 0;
    for (unsigned i = 0; i < ncols; ++i) {
      off[i] = pos;
      std::memcpy(d + pos, cols[i].data(), cols[i].size());
      pos += static_cast<uint32_t>(cols[i].size());
    }
    off[ncols] = pos;
    return r;
  }

  const uint32_t* offsets() const {
    return reinterpret_cast<const uint32_t*>(this + 1);
  }
  uint32_t* offsets_mut() { return reinterpret_cast<uint32_t*>(this + 1); }
  const char* data() const {
    return reinterpret_cast<const char*>(offsets() + ncols_ + 1);
  }
  char* data_mut() { return reinterpret_cast<char*>(offsets_mut() + ncols_ + 1); }

  uint64_t version_;
  uint32_t ncols_;
  uint32_t pad_ = 0;
};

}  // namespace masstree

#endif  // MASSTREE_VALUE_ROW_H_
