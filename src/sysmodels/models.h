// Architectural models of the §7 comparison systems (Figure 13).
//
// The paper benchmarks MongoDB 2.0, VoltDB 2.0, Redis 2.4.5 and
// memcached 1.4.8. Those code bases cannot be vendored into this
// reproduction, so each is replaced by a model that implements the
// architectural mechanisms the paper identifies as decisive:
//
//   * memcached — data partitioned across 16 single-lock hash-table
//     instances; no persistence; the client library batches gets but NOT
//     puts (Figure 12), so each put pays a full message round trip.
//   * Redis — 16 single-threaded event-loop instances over hash tables;
//     per-op command dispatch; append-only-file logging; columns emulated
//     with byte ranges (as the paper did).
//   * VoltDB — 16 partition sites; every operation is a serialized "stored
//     procedure" with planning/dispatch overhead; tree-indexed partitions
//     support range queries; replication off.
//   * MongoDB 2.0 — 8 server instances, each with a GLOBAL reader-writer
//     lock; B-tree index over the _id column; BSON-style document
//     encode/decode on every operation; in-memory filesystem (no disk I/O).
//
// Per-op overhead constants are stated in each model's Options and charged
// with calibrated busy work; EXPERIMENTS.md reports the measured ratios next
// to the paper's. The bench driver charges per-MESSAGE network costs
// according to each model's batching capabilities (Figure 12).
//
// Every model implements KVModel; drivers address workers by id, and models
// handle their own internal locking.

#ifndef MASSTREE_SYSMODELS_MODELS_H_
#define MASSTREE_SYSMODELS_MODELS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "log/logger.h"
#include "util/busywork.h"

namespace masstree {

// Column-blob helpers: models store each value as ncols fixed-size columns
// concatenated into one string (the MYCSB layout: 10 x 4 bytes).
struct ColumnLayout {
  unsigned ncols = 10;
  unsigned colsize = 4;
  size_t row_bytes() const { return static_cast<size_t>(ncols) * colsize; }
};

class KVModel {
 public:
  virtual ~KVModel() = default;
  virtual const char* name() const = 0;

  // Batching capabilities (Figure 12).
  virtual bool batched_get() const = 0;
  virtual bool batched_put() const = 0;
  virtual bool supports_scan() const = 0;
  virtual bool supports_column_put() const = 0;

  virtual bool get(std::string_view key, std::string* whole_value) = 0;
  // Write `data` into column `col` (or the whole value when col == ~0u).
  virtual bool put(std::string_view key, unsigned col, std::string_view data) = 0;
  // Range query returning up to n keys' one column; returns count.
  virtual size_t scan(std::string_view key, size_t n, unsigned col, std::string* sink) {
    (void)key;
    (void)n;
    (void)col;
    (void)sink;
    return 0;
  }
};

// ---------------------------------------------------------------------
// memcached 1.4 model: hash tables behind one lock per instance. Fast per
// op — its uniform-get throughput can exceed Masstree's (§7) — but no
// persistence, no ranges, no column updates, and unbatched puts.
class MemcachedModel : public KVModel {
 public:
  struct Options {
    unsigned instances = 16;
    ColumnLayout layout;
  };

  explicit MemcachedModel(Options opt) : opt_(opt), shards_(opt.instances) {
    for (auto& s : shards_) {
      s = std::make_unique<Shard>();
    }
  }

  const char* name() const override { return "memcached-model"; }
  bool batched_get() const override { return true; }
  bool batched_put() const override { return false; }  // client library limit
  bool supports_scan() const override { return false; }
  bool supports_column_put() const override { return false; }

  bool get(std::string_view key, std::string* whole_value) override {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) {
      return false;
    }
    *whole_value = it->second;
    return true;
  }

  bool put(std::string_view key, unsigned col, std::string_view data) override {
    if (col != ~0u) {
      return false;  // no column updates
    }
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.insert_or_assign(std::string(key), std::string(data)).second;
  }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::string> map;
  };
  Shard& shard(std::string_view key) {
    return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  }

  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// ---------------------------------------------------------------------
// Redis 2.4 model: 16 single-threaded instances — one mutex each models the
// event loop's serialization — with per-command dispatch cost and an
// append-only file. Columns via byte ranges (SETRANGE/GETRANGE), as the
// paper's adaptation did.
class RedisModel : public KVModel {
 public:
  struct Options {
    unsigned instances = 16;
    ColumnLayout layout;
    uint64_t command_dispatch_ns = 250;  // parse + dictionary + reply build
    std::string aof_dir;                 // empty = logging off
  };

  explicit RedisModel(Options opt) : opt_(std::move(opt)), shards_(opt_.instances) {
    for (unsigned i = 0; i < opt_.instances; ++i) {
      shards_[i] = std::make_unique<Shard>();
      if (!opt_.aof_dir.empty()) {
        Logger::Options lo;
        lo.fsync_on_flush = false;  // appendfsync everysec-ish
        shards_[i]->aof =
            std::make_unique<Logger>(opt_.aof_dir + "/aof-" + std::to_string(i) + ".bin", lo);
      }
    }
  }

  const char* name() const override { return "redis-model"; }
  bool batched_get() const override { return true; }  // pipelining
  bool batched_put() const override { return true; }
  bool supports_scan() const override { return false; }  // hash table inside
  bool supports_column_put() const override { return true; }

  bool get(std::string_view key, std::string* whole_value) override {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    busy_ns(opt_.command_dispatch_ns);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) {
      return false;
    }
    *whole_value = it->second;
    return true;
  }

  bool put(std::string_view key, unsigned col, std::string_view data) override {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mu);
    busy_ns(opt_.command_dispatch_ns);
    std::string& row = s.map[std::string(key)];
    bool inserted = row.empty();
    if (row.size() < opt_.layout.row_bytes()) {
      row.resize(opt_.layout.row_bytes(), '\0');
    }
    if (col == ~0u) {
      row.assign(data);
    } else {
      size_t off = static_cast<size_t>(col) * opt_.layout.colsize;
      row.replace(off, data.size(), data);  // SETRANGE
    }
    if (s.aof) {
      // The instance mutex serializes appends, satisfying the Logger's
      // single-producer contract.
      const ColumnUpdate upd[] = {{col == ~0u ? 0u : col, data}};
      s.aof->append_put(key, upd, 0);
    }
    return inserted;
  }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::string> map;
    std::unique_ptr<Logger> aof;
  };
  Shard& shard(std::string_view key) {
    return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  }

  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// ---------------------------------------------------------------------
// VoltDB 2.0 model: partitioned sites executing serialized stored
// procedures. Every operation pays invocation overhead (transaction
// initiation, plan lookup, response marshalling); partitions are
// tree-indexed so ranges work, but a range query fans out to all sites.
class VoltDBModel : public KVModel {
 public:
  struct Options {
    unsigned sites = 16;
    ColumnLayout layout;
    // Stored-procedure invocation cost per operation. VoltDB's published
    // volt2 numbers (~14k ops/s/core with network) put this in the tens of
    // microseconds; we charge the server-side share.
    uint64_t procedure_ns = 15000;
  };

  explicit VoltDBModel(Options opt) : opt_(opt), sites_(opt.sites) {
    for (auto& s : sites_) {
      s = std::make_unique<Site>();
    }
  }

  const char* name() const override { return "voltdb-model"; }
  bool batched_get() const override { return true; }
  bool batched_put() const override { return true; }
  bool supports_scan() const override { return true; }
  bool supports_column_put() const override { return true; }

  bool get(std::string_view key, std::string* whole_value) override {
    Site& s = site(key);
    std::lock_guard<std::mutex> lock(s.mu);  // serialized execution
    busy_ns(opt_.procedure_ns);
    auto it = s.table.find(std::string(key));
    if (it == s.table.end()) {
      return false;
    }
    *whole_value = it->second;
    return true;
  }

  bool put(std::string_view key, unsigned col, std::string_view data) override {
    Site& s = site(key);
    std::lock_guard<std::mutex> lock(s.mu);
    busy_ns(opt_.procedure_ns);
    std::string& row = s.table[std::string(key)];
    bool inserted = row.empty();
    if (row.size() < opt_.layout.row_bytes()) {
      row.resize(opt_.layout.row_bytes(), '\0');
    }
    if (col == ~0u) {
      row.assign(data);
    } else {
      size_t off = static_cast<size_t>(col) * opt_.layout.colsize;
      row.replace(off, data.size(), data);
    }
    return inserted;
  }

  size_t scan(std::string_view key, size_t n, unsigned col, std::string* sink) override {
    // Scatter-gather: every site runs the procedure, results merged.
    std::vector<std::pair<std::string, std::string>> merged;
    for (auto& sp : sites_) {
      Site& s = *sp;
      std::lock_guard<std::mutex> lock(s.mu);
      busy_ns(opt_.procedure_ns);
      size_t taken = 0;
      for (auto it = s.table.lower_bound(std::string(key));
           it != s.table.end() && taken < n; ++it, ++taken) {
        merged.emplace_back(it->first, column_of(it->second, col));
      }
    }
    std::sort(merged.begin(), merged.end());
    size_t count = std::min(n, merged.size());
    for (size_t i = 0; i < count; ++i) {
      sink->append(merged[i].second);
    }
    return count;
  }

 private:
  struct Site {
    std::mutex mu;
    std::map<std::string, std::string> table;  // tree index
  };
  Site& site(std::string_view key) {
    return *sites_[std::hash<std::string_view>{}(key) % sites_.size()];
  }
  std::string column_of(const std::string& row, unsigned col) const {
    if (col == ~0u) {
      return row;
    }
    size_t off = static_cast<size_t>(col) * opt_.layout.colsize;
    return off < row.size() ? row.substr(off, opt_.layout.colsize) : std::string();
  }

  Options opt_;
  std::vector<std::unique_ptr<Site>> sites_;
};

// ---------------------------------------------------------------------
// MongoDB 2.0 model: 8 instances, each guarded by a GLOBAL reader-writer
// lock (2.0's infamous global lock), a B-tree index over _id, and BSON-style
// document encode/decode on every access. "We run it on an in-memory file
// system to eliminate storage I/O."
class MongoDBModel : public KVModel {
 public:
  struct Options {
    unsigned instances = 8;
    ColumnLayout layout;
    uint64_t bson_ns = 4000;  // per-op message parse + document codec cost
  };

  explicit MongoDBModel(Options opt) : opt_(opt), shards_(opt.instances) {
    for (auto& s : shards_) {
      s = std::make_unique<Shard>();
    }
  }

  const char* name() const override { return "mongodb-model"; }
  bool batched_get() const override { return false; }  // C driver, Figure 12
  bool batched_put() const override { return false; }
  bool supports_scan() const override { return true; }
  bool supports_column_put() const override { return true; }

  bool get(std::string_view key, std::string* whole_value) override {
    Shard& s = shard(key);
    std::shared_lock<std::shared_mutex> lock(s.global_lock);
    busy_ns(opt_.bson_ns);
    auto it = s.docs.find(std::string(key));
    if (it == s.docs.end()) {
      return false;
    }
    *whole_value = decode(it->second);
    return true;
  }

  bool put(std::string_view key, unsigned col, std::string_view data) override {
    Shard& s = shard(key);
    std::unique_lock<std::shared_mutex> lock(s.global_lock);  // global write lock
    busy_ns(opt_.bson_ns);
    std::string& doc = s.docs[std::string(key)];
    bool inserted = doc.empty();
    std::string row = decode(doc);
    if (row.size() < opt_.layout.row_bytes()) {
      row.resize(opt_.layout.row_bytes(), '\0');
    }
    if (col == ~0u) {
      row.assign(data);
    } else {
      size_t off = static_cast<size_t>(col) * opt_.layout.colsize;
      row.replace(off, data.size(), data);
    }
    doc = encode(key, row);
    return inserted;
  }

  size_t scan(std::string_view key, size_t n, unsigned col, std::string* sink) override {
    Shard& s = shard(key);  // start shard only; cross-shard merge omitted —
                            // the paper's MYCSB-E MongoDB number is ~0.
    std::shared_lock<std::shared_mutex> lock(s.global_lock);
    size_t count = 0;
    for (auto it = s.docs.lower_bound(std::string(key)); it != s.docs.end() && count < n;
         ++it, ++count) {
      busy_ns(opt_.bson_ns);
      std::string row = decode(it->second);
      size_t off = static_cast<size_t>(col) * opt_.layout.colsize;
      if (col != ~0u && off < row.size()) {
        sink->append(row.substr(off, opt_.layout.colsize));
      }
    }
    return count;
  }

 private:
  struct Shard {
    std::shared_mutex global_lock;
    std::map<std::string, std::string> docs;  // _id B-tree index
  };
  Shard& shard(std::string_view key) {
    return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  }

  // Toy BSON: field names + lengths wrapped around the row, so every access
  // really does copy/parse bytes.
  std::string encode(std::string_view key, std::string_view row) const {
    std::string doc;
    doc.append("{_id:");
    doc.append(key);
    for (unsigned c = 0; c < opt_.layout.ncols; ++c) {
      doc.append(",f");
      doc.push_back(static_cast<char>('0' + c % 10));
      doc.push_back(':');
      size_t off = static_cast<size_t>(c) * opt_.layout.colsize;
      if (off < row.size()) {
        doc.append(row.substr(off, opt_.layout.colsize));
      }
    }
    doc.push_back('}');
    return doc;
  }
  std::string decode(const std::string& doc) const {
    std::string row;
    row.reserve(opt_.layout.row_bytes());
    size_t pos = 0;
    for (unsigned c = 0; c < opt_.layout.ncols; ++c) {
      std::string tag = ",f";
      tag.push_back(static_cast<char>('0' + c % 10));
      tag.push_back(':');
      pos = doc.find(tag, pos);
      if (pos == std::string::npos) {
        break;
      }
      pos += tag.size();
      row.append(doc.substr(pos, opt_.layout.colsize));
    }
    row.resize(opt_.layout.row_bytes(), '\0');
    return row;
  }

  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace masstree

#endif  // MASSTREE_SYSMODELS_MODELS_H_
