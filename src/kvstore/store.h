// Store — the complete Masstree storage system (§3, §4.7, §5): the
// concurrent tree over multi-column rows, per-worker logging with group
// commit, checkpointing, and crash recovery.
//
// Interface per §3: getc(k), putc(k,v), remove(k), getrangec(k,n), where the
// optional column list selects subsets of a key's value.

#ifndef MASSTREE_KVSTORE_STORE_H_
#define MASSTREE_KVSTORE_STORE_H_

#include <sys/stat.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/tree.h"
#include "log/logger.h"
#include "log/recovery.h"
#include "util/io.h"
#include "util/timing.h"
#include "value/row.h"

namespace masstree {

// Thrown by the legacy bool write APIs when the store has degraded to
// read-only (sticky log/checkpoint I/O error). Status-returning callers
// (put_checked / remove_checked / multiput) never throw.
struct StoreReadOnly : std::runtime_error {
  explicit StoreReadOnly(const io::IoErrorDetail& d)
      : std::runtime_error("store is read-only after " +
                           std::string(d.syscall) + "(" + d.path + ")+" +
                           std::to_string(d.offset) + ": " +
                           std::strerror(d.err)),
        detail(d) {}
  io::IoErrorDetail detail;
};

class Store {
 public:
  struct Options {
    // Directory for per-session logs; empty disables persistence.
    std::string log_dir;
    // Number of logging threads; each drains the sessions assigned to it
    // ("Different logs may be on different disks or SSDs for higher total
    // log throughput").
    unsigned log_partitions = 4;
    // Per-shard buffering and group-commit cadence.
    Logger::Options logger;
    // Values this size or larger are lz-compressed transparently in both
    // the log and checkpoint parts (0 disables compression).
    size_t log_compress_threshold = 128;
    // Dedicated background maintenance & epoch-advancement thread (§4.6.1,
    // §4.6.5): empty-layer GC and epoch advances leave the foreground write
    // path entirely. When disabled, both piggyback on write traffic as
    // before.
    bool maintenance_thread = true;
    uint64_t maintenance_interval_ms = 1;
    // Hot-key record cache in front of the tree (cache/record_cache.h):
    // entry count, rounded up to a power of two; 0 disables the cache.
    size_t cache_capacity = 1 << 16;
    // Count-min-sketch admission threshold; <= 1 admits every miss.
    uint32_t cache_admit_threshold = 4;
  };

  // A per-worker-thread handle: thread context + (lazily, on first logged
  // write) an exclusively-owned log shard — the paper's "each query thread
  // maintains its own log file and in-memory log buffer". The shard returns
  // to the store's pool when the session ends.
  class Session {
   public:
    Session(Store& store, unsigned worker_id) : store_(store), worker_id_(worker_id) {}

    ~Session() {
      if (log_ != nullptr) {
        log_->release_producer();  // logging thread drains, closes, parks it
      }
    }

    ThreadContext& ti() { return ti_; }
    unsigned worker_id() const { return worker_id_; }
    Store& store() { return store_; }

   private:
    friend class Store;
    Store& store_;
    unsigned worker_id_;
    LogShard* log_ = nullptr;
    ThreadContext ti_;
    // Reusable multiget scratch: the event-loop server batches gets through
    // this session every wakeup, so the request array must not reallocate in
    // steady state.
    std::vector<Tree::GetRequest> mg_reqs_;
    std::vector<const Row*> mg_rows_;
    // Reusable multiput scratch (same discipline, write side).
    std::vector<Tree::PutRequest> mp_reqs_;
    std::vector<uint64_t> mp_vers_;
    std::vector<LogShard::BatchOp> mp_log_;
  };

  Store() : Store(Options()) {}

  explicit Store(Options opt) : opt_(std::move(opt)) {
    if (!opt_.log_dir.empty()) {
      ::mkdir(opt_.log_dir.c_str(), 0755);
      unsigned nwriters = std::max(1u, opt_.log_partitions);
      for (unsigned i = 0; i < nwriters; ++i) {
        log_writers_.push_back(std::make_unique<LogWriter>(
            LogWriter::Options{opt_.logger.flush_interval_ms, opt_.logger.fsync_on_flush},
            &log_pool_));
        // First sticky I/O error anywhere in the logging stack trips the
        // whole store into read-only mode; set before adoption so even a
        // construction-time tail-repair failure trips.
        log_writers_.back()->set_on_first_error(
            [this](const io::IoErrorDetail& d) { note_io_error(d); });
      }
      adopt_existing_logs();
      for (auto& w : log_writers_) {
        w->start();
      }
    }
    ThreadContext setup_ti;
    tree_ = std::make_unique<Tree>(setup_ti);
    if (opt_.cache_capacity > 0) {
      cache_ = std::make_unique<RecordCache<Tree::Config>>(
          RecordCache<Tree::Config>::Config{opt_.cache_capacity,
                                            opt_.cache_admit_threshold});
      tree_->set_record_cache(cache_.get());
    }
    if (opt_.maintenance_thread) {
      start_maintenance();
    }
  }

  ~Store() {
    stop_maintenance();
    // Final group commit: each logging thread drains every shard, stamps
    // kClose completion markers, and fdatasyncs before exiting.
    for (auto& w : log_writers_) {
      w->stop();
    }
    // Quiescent teardown: free every live row, then the tree itself.
    tree_->for_each_value([](uint64_t lv) { Row::deallocate(Row::from_slot(lv)); });
  }

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  static std::string log_path(const std::string& dir, unsigned i) {
    return dir + "/log-" + std::to_string(i) + ".bin";
  }

  // ------------------------------------------------------------------
  // getc(k): fetch selected columns (empty `cols` = all columns). Returns
  // false if the key is absent.
  bool get(std::string_view key, const std::vector<unsigned>& cols,
           std::vector<std::string>* out, Session& s) const {
    EpochGuard guard(s.ti_.slot());  // keeps the row alive while we copy
    uint64_t lv;
    if (!tree_->get(key, &lv, s.ti_)) {
      return false;
    }
    out->clear();
    extract_columns(Row::from_slot(lv), cols, out);
    return true;
  }

  // Batched getc (§4.8): one software-pipelined tree multiget for the whole
  // key batch, then column extraction while a single EpochGuard keeps every
  // fetched row alive. `cols` selects the columns returned for each key
  // (empty = all columns). (*out)[i] corresponds to keys[i]; missing keys get
  // found == false. Returns the number of keys found.
  struct MultigetResult {
    bool found = false;
    std::vector<std::string> columns;
  };

  size_t multiget(std::span<const std::string_view> keys, const std::vector<unsigned>& cols,
                  std::vector<MultigetResult>* out, Session& s) const {
    out->assign(keys.size(), MultigetResult{});
    if (keys.empty()) {
      return 0;
    }
    EpochGuard guard(s.ti_.slot());  // rows stay alive through extraction
    s.mg_rows_.resize(keys.size());
    size_t nfound = multiget_rows(keys, s.mg_rows_.data(), s);
    for (size_t i = 0; i < keys.size(); ++i) {
      if (s.mg_rows_[i] == nullptr) {
        continue;
      }
      MultigetResult& res = (*out)[i];
      res.found = true;
      extract_columns(s.mg_rows_[i], cols, &res.columns);
    }
    return nfound;
  }

  // Raw batched-read seam under the column layer: one software-pipelined
  // tree multiget, results as row pointers (nullptr = absent). rows[] must
  // hold keys.size() slots. The CALLER must hold an EpochGuard on s.ti() for
  // the whole time it dereferences the returned rows — this is what lets the
  // network server encode each op's own column selection straight out of the
  // shared batch without copying every row into MultigetResults first.
  // Allocation-free in steady state (session-owned request scratch).
  size_t multiget_rows(std::span<const std::string_view> keys, const Row** rows,
                       Session& s) const {
    std::vector<Tree::GetRequest>& reqs = s.mg_reqs_;
    reqs.resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      reqs[i] = Tree::GetRequest{keys[i]};
    }
    size_t nfound = tree_->multiget(std::span<Tree::GetRequest>(reqs), s.ti_);
    for (size_t i = 0; i < keys.size(); ++i) {
      rows[i] = reqs[i].found ? Row::from_slot(reqs[i].value) : nullptr;
    }
    return nfound;
  }

  // putc(k, v): atomic multi-column put (§4.7). Status-returning entry
  // point: a store that has tripped into read-only mode rejects the write
  // without touching the tree (and without throwing — the event-loop server
  // answers kReadOnly on the wire instead of dying).
  enum class PutResult : uint8_t { kInserted, kUpdated, kReadOnly };

  PutResult put_checked(std::string_view key,
                        const std::vector<ColumnUpdate>& updates, Session& s) {
    if (MT_UNLIKELY(read_only())) {
      count_rejected_write(s, 1);
      return PutResult::kReadOnly;
    }
    uint64_t version = 0;
    uint64_t old_lv = 0;
    bool inserted = tree_->insert_transform(
        key,
        [&](bool found, uint64_t old) {
          // Version assignment happens under the border lock, so versions of
          // one value are strictly increasing in application order (§5).
          version = next_version();
          const Row* old_row = found ? Row::from_slot(old) : nullptr;
          return Row::to_slot(Row::update(s.ti_, old_row, updates, version));
        },
        &old_lv, s.ti_);
    if (!inserted) {
      s.ti_.retire(Row::from_slot(old_lv), Row::deallocate);
    }
    if (!log_writers_.empty()) {
      // Wait-free fast path: encode in place into the session's own
      // double-buffered arena — no mutex, no allocation (§5).
      ensure_log(s)->append_put(key, updates, version);
    }
    maybe_maintain(s);
    return inserted ? PutResult::kInserted : PutResult::kUpdated;
  }

  // Legacy bool API: returns true if the key was newly inserted; throws
  // StoreReadOnly once the store has tripped (loud fail-fast for
  // in-process callers that never check statuses).
  bool put(std::string_view key, const std::vector<ColumnUpdate>& updates, Session& s) {
    PutResult r = put_checked(key, updates, s);
    if (MT_UNLIKELY(r == PutResult::kReadOnly)) {
      throw StoreReadOnly(log_error_detail());
    }
    return r == PutResult::kInserted;
  }

  enum class RemoveResult : uint8_t { kRemoved, kAbsent, kReadOnly };

  RemoveResult remove_checked(std::string_view key, Session& s) {
    if (MT_UNLIKELY(read_only())) {
      count_rejected_write(s, 1);
      return RemoveResult::kReadOnly;
    }
    uint64_t version = 0;
    Row* old_row = nullptr;
    bool removed = tree_->remove_with(
        key,
        [&](uint64_t old) {
          version = next_version();
          old_row = Row::from_slot(old);
        },
        s.ti_);
    if (removed) {
      s.ti_.retire(old_row, Row::deallocate);
      if (!log_writers_.empty()) {
        ensure_log(s)->append_remove(key, version);
      }
    }
    maybe_maintain(s);
    return removed ? RemoveResult::kRemoved : RemoveResult::kAbsent;
  }

  bool remove(std::string_view key, Session& s) {
    RemoveResult r = remove_checked(key, s);
    if (MT_UNLIKELY(r == RemoveResult::kReadOnly)) {
      throw StoreReadOnly(log_error_detail());
    }
    return r == RemoveResult::kRemoved;
  }

  // Batched putc/removec — the write-side twin of multiget (§4.8). One
  // EpochGuard spans the tree batch, versions are assigned under each
  // border's lock (so per-key version order matches application order, §5),
  // and everything the batch applies goes to the log through one grouped
  // arena reservation (LogShard::append_batch) — the append path stays
  // wait-free and allocation-free, exactly like put(). Duplicate keys follow
  // Tree::multiput's last-write-wins contract: only the last op per key is
  // applied and logged (exactly one record per surviving write), and each
  // op's inserted/found results read as if the batch had run sequentially.
  // Record-cache coherence needs no extra work here: hits validate against
  // border versions, so in-place row swaps are picked up by slot re-reads
  // and the remove/layer paths' vinsert bumps kill stale entries — the same
  // invariants single puts rely on.
  struct PutOp {
    std::string_view key;
    std::span<const ColumnUpdate> updates;  // ignored when remove == true
    bool remove = false;
    // Out: as-if-sequential results (see above).
    bool inserted = false;
    bool found = false;
    // Out: refused because the store is read-only (never throws — the flag
    // travels back through the server's steering paths instead).
    bool rejected = false;
  };

  size_t multiput(std::span<PutOp> ops, Session& s) {
    if (ops.empty()) {
      return 0;
    }
    if (MT_UNLIKELY(read_only())) {
      for (PutOp& op : ops) {
        op.inserted = false;
        op.found = false;
        op.rejected = true;
      }
      count_rejected_write(s, ops.size());
      return 0;
    }
    EpochGuard guard(s.ti_.slot());  // spans the tree batch and the log append
    std::vector<Tree::PutRequest>& reqs = s.mp_reqs_;
    std::vector<uint64_t>& vers = s.mp_vers_;
    reqs.resize(ops.size());
    vers.assign(ops.size(), 0);
    for (size_t i = 0; i < ops.size(); ++i) {
      reqs[i] = Tree::PutRequest{ops[i].key};
      reqs[i].remove = ops[i].remove;
      ops[i].rejected = false;
    }
    size_t applied = tree_->multiput_with(
        std::span<Tree::PutRequest>(reqs),
        [&](size_t i, bool found, uint64_t old) -> uint64_t {
          // Runs under the border lock, like put()'s transform: versions of
          // one value stay strictly increasing in application order (§5).
          uint64_t version = next_version();
          vers[i] = version;
          const Row* old_row = found ? Row::from_slot(old) : nullptr;
          Row* row = Row::update(s.ti_, old_row, ops[i].updates, version);
          if (old_row != nullptr) {
            s.ti_.retire(const_cast<Row*>(old_row), Row::deallocate);
          }
          return Row::to_slot(row);
        },
        [&](size_t i, uint64_t old) {
          vers[i] = next_version();
          s.ti_.retire(Row::from_slot(old), Row::deallocate);
        },
        s.ti_);
    for (size_t i = 0; i < ops.size(); ++i) {
      ops[i].inserted = reqs[i].inserted;
      ops[i].found = reqs[i].found;
    }
    if (!log_writers_.empty()) {
      // vers[i] != 0 <=> op i survived dedupe and was applied. A remove of
      // an absent key assigns no version and logs nothing, like remove().
      std::vector<LogShard::BatchOp>& lops = s.mp_log_;
      lops.clear();
      // Distinguishes an empty-column put from a remove (null updates):
      // an empty span's data() may be null.
      static constexpr ColumnUpdate kNoCols[1] = {{0u, {}}};
      for (size_t i = 0; i < ops.size(); ++i) {
        if (vers[i] == 0) {
          continue;
        }
        const PutOp& o = ops[i];
        const ColumnUpdate* up =
            o.remove ? nullptr : (o.updates.empty() ? kNoCols : o.updates.data());
        lops.push_back(LogShard::BatchOp{o.key, up, o.remove ? 0 : o.updates.size(), vers[i]});
      }
      if (!lops.empty()) {
        ensure_log(s)->append_batch(std::span<const LogShard::BatchOp>(lops));
      }
    }
    maybe_maintain(s);
    return applied;
  }

  // getrangec(k, n): up to n pairs starting at or after `key`, one selected
  // column each (or the whole row when col == kAllColumns). Not atomic with
  // respect to concurrent puts (§3).
  //
  // Streams column extraction straight from ScanCursor batches: border-node
  // snapshots are chain-walked allocation-free, and the epoch guard is
  // re-acquired every kGetrangeChunk pairs (cursor detach/re-attach) so an
  // arbitrarily long range read never stalls memory reclamation — the same
  // bounded-epoch discipline the checkpointer uses.
  static constexpr unsigned kAllColumns = ~0u;
  static constexpr size_t kGetrangeChunk = 1024;

  template <typename F>
  size_t getrange(std::string_view key, size_t n, unsigned col, F&& emit, Session& s) const {
    size_t emitted = 0;
    ScanCursor<Tree::Config> cur = tree_->scan_cursor(key);
    bool stop = false;
    while (!stop && emitted < n) {
      EpochGuard guard(s.ti_.slot());
      size_t in_guard = 0;
      while (!stop && emitted < n && in_guard < kGetrangeChunk) {
        size_t cnt = cur.next_batch(&s.ti_.counters(), n - emitted);
        if (cnt == 0) {
          stop = true;
          break;
        }
        cur.prefetch_pending();
        in_guard += cnt;
        for (size_t i = 0; i < cnt && emitted < n; ++i) {
          const Row* row = Row::from_slot(cur.value(i));
          bool keep_going =
              emit(cur.key(i), col == kAllColumns ? std::string_view() : row->col(col), row);
          ++emitted;
          if (!keep_going) {
            stop = true;
            break;
          }
        }
      }
      cur.detach();  // the guard is about to drop; forget node pointers
    }
    return emitted;
  }

  // ------------------------------------------------------------------
  // Checkpoint (§5): walks the tree in nworkers parallel key ranges while
  // normal operations continue. The MANIFEST is written only after every
  // part completes.
  bool checkpoint(const std::string& dir, unsigned nworkers) {
    ::mkdir(dir.c_str(), 0755);
    CheckpointManifest m;
    m.start_ts_us = wall_us();
    m.version_floor = version_counter_.load(std::memory_order_acquire);
    m.parts = nworkers;
    std::atomic<bool> ok{true};
    // Write-side part failures (ENOSPC, EIO, short disk) trip the store
    // read-only, like a log failure would; a part that cannot even be
    // opened is a configuration error, not storage degradation.
    std::mutex fail_mu;
    io::IoErrorDetail fail_detail;
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < nworkers; ++w) {
      workers.emplace_back([&, w] {
        ThreadContext ti;
        CheckpointPartWriter out(checkpoint_part_path(dir, w),
                                 opt_.log_compress_threshold);
        if (!out.ok()) {
          ok = false;
          // A part header that failed to hit the disk (short write, EIO,
          // ENOSPC in the writer's constructor) is storage degradation just
          // like a failure at finish(); only open() stays a config error.
          if (std::strcmp(out.error_detail().syscall, "open") != 0) {
            std::lock_guard<std::mutex> lock(fail_mu);
            if (fail_detail.err == 0) {
              fail_detail = out.error_detail();
            }
          }
          return;
        }
        // Range partition by leading byte: worker w covers
        // [w*256/n, (w+1)*256/n) as first-byte values; worker 0 also covers
        // the empty key. Scans run in bounded chunks so the checkpointer
        // never pins an epoch for the whole walk — concurrent writers keep
        // reclaiming memory (§5: checkpoints run in parallel with request
        // processing).
        unsigned lo = w * 256 / nworkers, hi = (w + 1) * 256 / nworkers;
        std::string cursor =
            w == 0 ? std::string() : std::string(1, static_cast<char>(lo));
        std::vector<std::string_view> cols;
        constexpr size_t kChunk = 4096;
        bool done = false;
        while (!done) {
          size_t emitted = 0;
          std::string last_key;
          {
            EpochGuard guard(ti.slot());
            emitted = tree_->scan(
                cursor, kChunk,
                [&](std::string_view k, uint64_t lv) {
                  if (hi < 256 && !k.empty() &&
                      static_cast<unsigned char>(k[0]) >= hi) {
                    done = true;
                    return false;  // next worker's range
                  }
                  const Row* row = Row::from_slot(lv);
                  cols.clear();
                  for (unsigned i = 0; i < row->ncols(); ++i) {
                    cols.push_back(row->col(i));
                  }
                  out.add(k, row->version(), cols);
                  last_key.assign(k);
                  return true;
                },
                ti);
          }
          if (emitted < kChunk) {
            done = true;
          }
          if (!done) {
            // Resume just past the last emitted key.
            cursor = last_key;
            cursor.push_back('\0');
          }
          ti.reclaim();
        }
        out.finish();
        if (!out.ok()) {
          ok = false;
          if (std::strcmp(out.error_detail().syscall, "open") != 0) {
            std::lock_guard<std::mutex> lock(fail_mu);
            if (fail_detail.err == 0) {
              fail_detail = out.error_detail();
            }
          }
        }
      });
    }
    for (auto& t : workers) {
      t.join();
    }
    if (!ok) {
      if (fail_detail.err != 0) {
        note_io_error(fail_detail);
      }
      return false;
    }
    return write_manifest(dir, m);
  }

  struct RecoveryResult {
    bool used_checkpoint = false;
    uint64_t checkpoint_records = 0;
    uint64_t log_entries_applied = 0;
    uint64_t cutoff_us = 0;
  };

  // Full §5 recovery into this (empty) store: load the checkpoint if one
  // completed, then replay logs from the checkpoint's start time up to the
  // cutoff t = min over logs of last timestamp.
  RecoveryResult recover(const std::string& checkpoint_dir, const std::string& log_dir,
                         unsigned nthreads) {
    RecoveryResult res;
    uint64_t since = 0;
    CheckpointManifest m =
        checkpoint_dir.empty() ? CheckpointManifest{} : read_manifest(checkpoint_dir);
    if (m.valid) {
      res.used_checkpoint = true;
      since = m.start_ts_us;
      std::atomic<uint64_t> loaded{0};
      std::vector<std::thread> workers;
      for (unsigned w = 0; w < m.parts; ++w) {
        workers.emplace_back([&, w] {
          Session s(*this, w);
          auto records = read_checkpoint_part(checkpoint_part_path(checkpoint_dir, w));
          for (auto& r : records) {
            apply_row(r.key, r.cols, r.row_version, s);
          }
          loaded.fetch_add(records.size(), std::memory_order_relaxed);
        });
      }
      for (auto& t : workers) {
        t.join();
      }
      res.checkpoint_records = loaded.load();
    }

    std::vector<std::string> paths = list_log_files(log_dir);
    RecoverySet rs = load_logs(paths);
    res.cutoff_us = rs.cutoff_us;
    // The live logs' information is consumed right here: trim each to its
    // crash-consistent prefix and mark it complete, so it neither pins
    // future cutoffs nor resurrects its dropped tail on a later recovery.
    for (size_t i = 0; i < paths.size(); ++i) {
      seal_recovered_log(paths[i], rs.logs[i], rs.cutoff_us);
    }
    std::vector<LogEntry> plan = replay_plan(std::move(rs), since);

    // Parallel replay partitioned by key hash; within a partition entries
    // stay version-sorted, so each key's updates apply in version order.
    std::vector<std::vector<const LogEntry*>> parts(nthreads);
    for (const auto& e : plan) {
      parts[std::hash<std::string>{}(e.key) % nthreads].push_back(&e);
    }
    std::atomic<uint64_t> applied{0};
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < nthreads; ++w) {
      workers.emplace_back([&, w] {
        Session s(*this, w);
        for (const LogEntry* e : parts[w]) {
          if (e->type == LogType::kPut) {
            std::vector<ColumnUpdate> updates;
            updates.reserve(e->columns.size());
            for (const auto& [c, d] : e->columns) {
              updates.push_back(ColumnUpdate{c, d});
            }
            apply_update(e->key, updates, e->version, s);
          } else {
            apply_remove(e->key, e->version, s);
          }
          applied.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : workers) {
      t.join();
    }
    res.log_entries_applied = applied.load();
    bump_version_floor(std::max(m.version_floor, max_version_seen_.load()));
    return res;
  }

  // ------------------------------------------------------------------
  void run_maintenance(Session& s) { tree_->run_maintenance(s.ti_); }

  // Force everything appended so far to storage: each logging thread runs a
  // full group-commit round (drain + heartbeat marker + fdatasync) begun
  // after this call.
  void sync_logs() {
    for (auto& w : log_writers_) {
      w->sync();
    }
  }

  // Reclaim log space made redundant by a completed checkpoint (§5). Call
  // only after checkpoint() returned true; recovery then needs that
  // checkpoint plus the post-truncation logs. Truncation runs on the
  // logging threads at a round boundary, so it cannot shear an in-flight
  // flush.
  void truncate_logs() {
    for (auto& w : log_writers_) {
      w->truncate_all();
    }
  }

  // Aggregate logging-thread statistics (and the sticky disk error, if any).
  struct LogTotals {
    uint64_t flush_bytes = 0;
    uint64_t flushes = 0;
    uint64_t syncs = 0;
    int error = 0;
  };

  LogTotals log_totals() const {
    LogTotals t;
    for (const auto& w : log_writers_) {
      t.flush_bytes += w->bytes_written();
      t.flushes += w->flushes();
      t.syncs += w->syncs();
      if (t.error == 0) {
        t.error = w->error();
      }
    }
    return t;
  }

  // First sticky log-write errno (0 while healthy). A failed shard
  // fail-stops — its file stays a clean record prefix — but the store keeps
  // serving reads; callers poll this to surface the durability loss.
  int log_error() const { return log_totals().error; }

  // Context of the first failing persistence syscall: (syscall, path,
  // offset, errno). Default-constructed while healthy.
  io::IoErrorDetail log_error_detail() const {
    {
      std::lock_guard<std::mutex> lock(err_detail_mu_);
      if (err_detail_.err != 0) {
        return err_detail_;
      }
    }
    for (const auto& w : log_writers_) {
      io::IoErrorDetail d = w->error_detail();
      if (d.err != 0) {
        return d;
      }
    }
    return io::IoErrorDetail{};
  }

  // True once a sticky log/checkpoint I/O error has flipped the store into
  // read-only degraded mode: gets/scans keep serving, writes fail fast
  // (kReadOnly on the wire, StoreReadOnly from the legacy bool APIs).
  // In-flight writes at trip time complete against the tree but their
  // durability is already gone — the failed shard discards its drains.
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }

  uint64_t read_only_trips() const {
    return ro_trips_.load(std::memory_order_relaxed);
  }
  uint64_t writes_rejected_read_only() const {
    return ro_rejects_.load(std::memory_order_relaxed);
  }

  TreeStats stats() const { return tree_->collect_stats(); }
  Tree& tree() { return *tree_; }
  uint64_t current_version() const { return version_counter_.load(std::memory_order_relaxed); }

 private:
  // Shared getc column selection: empty `cols` = every column of the row.
  // Callers must hold an epoch guard keeping `row` alive.
  static void extract_columns(const Row* row, const std::vector<unsigned>& cols,
                              std::vector<std::string>* out) {
    if (cols.empty()) {
      for (unsigned c = 0; c < row->ncols(); ++c) {
        out->emplace_back(row->col(c));
      }
    } else {
      for (unsigned c : cols) {
        out->emplace_back(row->col(c));
      }
    }
  }

  uint64_t next_version() {
    return version_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // The read-only trip: first sticky I/O error wins, everything after is a
  // no-op. Runs on whichever thread saw the error first (a logging thread
  // via the LogWriter callback, or a checkpoint worker's join).
  void note_io_error(const io::IoErrorDetail& d) {
    bool expected = false;
    if (!read_only_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(err_detail_mu_);
      err_detail_ = d;
    }
    ro_trips_.fetch_add(1, std::memory_order_relaxed);
    trip_counters_.inc(Counter::kStoreReadOnlyTrips);
    std::fprintf(stderr,
                 "masstree: store degraded to read-only after %s(%s)+%llu "
                 "failed: %s\n",
                 d.syscall, d.path.c_str(),
                 static_cast<unsigned long long>(d.offset),
                 std::strerror(d.err));
  }

  void count_rejected_write(Session& s, size_t n) {
    s.ti_.counters().inc(Counter::kWritesRejectedReadOnly, n);
    ro_rejects_.fetch_add(n, std::memory_order_relaxed);
  }

  void bump_version_floor(uint64_t floor) {
    uint64_t cur = version_counter_.load(std::memory_order_relaxed);
    while (cur < floor &&
           !version_counter_.compare_exchange_weak(cur, floor, std::memory_order_relaxed)) {
    }
  }

  void maybe_maintain(Session& s) {
    if (opt_.maintenance_thread) {
      return;  // the background thread owns the tick; writes pay nothing
    }
    // Legacy piggyback: deferred empty-layer cleanups ride on write traffic
    // (§4.6.5) when no maintenance thread is running.
    if ((maintenance_tick_.fetch_add(1, std::memory_order_relaxed) & 0xFFF) == 0) {
      tree_->run_maintenance(s.ti_);
    }
  }

  // ---- per-session log shards --------------------------------------
  LogShard* ensure_log(Session& s) {
    if (MT_UNLIKELY(s.log_ == nullptr)) {
      s.log_ = claim_shard(s);
    }
    return s.log_;
  }

  // Slow path, once per session: reuse a parked shard (file + arenas) when
  // one is free, otherwise create the next log-<n>.bin. Reuse bounds both
  // file count and allocation under session churn — a reused shard's
  // appends simply continue after its mid-file kClose marker.
  LogShard* claim_shard(Session& s) {
    unsigned part = s.worker_id_ % static_cast<unsigned>(log_writers_.size());
    LogShard* shard = log_pool_.try_claim(part);
    if (shard != nullptr) {
      shard->reopen(&s.ti_.counters());
      return shard;
    }
    std::lock_guard<std::mutex> lock(log_mu_);
    std::string path = log_path(opt_.log_dir, next_log_file_++);
    log_shards_.push_back(std::make_unique<LogShard>(path, opt_.logger.buffer_bytes,
                                                     part, &s.ti_.counters(),
                                                     /*repair_existing_tail=*/false,
                                                     opt_.log_compress_threshold));
    LogShard* fresh = log_shards_.back().get();
    log_writers_[part]->add_shard(fresh);
    return fresh;
  }

  // Startup: open every existing log file as a parked shard (chopping any
  // torn tail a crash left, so O_APPEND cannot bury fresh records behind
  // bytes recovery will never reach) and park it for reuse. Files keep
  // their on-disk live/complete state until recover() consumes them.
  void adopt_existing_logs() {
    for (const std::string& path : list_log_files(opt_.log_dir)) {
      std::string name = path.substr(path.find_last_of('/') + 1);
      unsigned idx = static_cast<unsigned>(std::strtoul(name.c_str() + 4, nullptr, 10));
      next_log_file_ = std::max(next_log_file_, idx + 1);
      unsigned part = idx % static_cast<unsigned>(log_writers_.size());
      log_shards_.push_back(std::make_unique<LogShard>(path, opt_.logger.buffer_bytes,
                                                       part, nullptr,
                                                       /*repair_existing_tail=*/true,
                                                       opt_.log_compress_threshold));
      LogShard* shard = log_shards_.back().get();
      shard->park_adopted();
      log_writers_[part]->add_shard(shard);
      // A shard whose adoption already failed (tail-repair ftruncate error)
      // never enters the reuse pool: sessions would log into a file that
      // silently discards everything. add_shard surfaced the errno.
      if (shard->error() == 0) {
        log_pool_.park(shard);
      }
    }
  }

  // ---- background maintenance & epoch advancement ------------------
  void start_maintenance() {
    maint_thread_ = std::thread([this] {
      ThreadContext ti;
      ThreadContext::BackgroundAdvancer advancer(ti);
      std::unique_lock<std::mutex> lock(maint_mu_);
      while (!maint_stop_) {
        maint_cv_.wait_for(lock, std::chrono::milliseconds(opt_.maintenance_interval_ms),
                           [this] { return maint_stop_; });
        if (maint_stop_) {
          break;
        }
        lock.unlock();
        tree_->run_maintenance(ti);  // deferred empty-layer GC (§4.6.5)
        ti.reclaim();                // advance the epoch, drain own limbo
        lock.lock();
      }
    });
  }

  void stop_maintenance() {
    if (!maint_thread_.joinable()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(maint_mu_);
      maint_stop_ = true;
    }
    maint_cv_.notify_all();
    maint_thread_.join();
  }

  // Recovery appliers: last-writer-wins by version (rows carry versions, so
  // checkpoint state and log replay compose regardless of arrival order).
  void apply_row(std::string_view key, const std::vector<std::string>& cols, uint64_t version,
                 Session& s) {
    std::vector<ColumnUpdate> updates;
    updates.reserve(cols.size());
    for (unsigned i = 0; i < cols.size(); ++i) {
      updates.push_back(ColumnUpdate{i, cols[i]});
    }
    apply_update(key, updates, version, s);
  }

  void apply_update(std::string_view key, const std::vector<ColumnUpdate>& updates,
                    uint64_t version, Session& s) {
    uint64_t old_lv = 0;
    bool replaced_newer = false;
    bool inserted = tree_->insert_transform(
        key,
        [&](bool found, uint64_t old) -> uint64_t {
          const Row* old_row = found ? Row::from_slot(old) : nullptr;
          if (old_row != nullptr && old_row->version() >= version) {
            replaced_newer = true;
            return old;  // keep the newer row
          }
          return Row::to_slot(Row::update(s.ti_, old_row, updates, version));
        },
        &old_lv, s.ti_);
    if (!inserted && !replaced_newer) {
      s.ti_.retire(Row::from_slot(old_lv), Row::deallocate);
    }
    track_version(version);
  }

  void apply_remove(std::string_view key, uint64_t version, Session& s) {
    Row* old_row = nullptr;
    bool removed = tree_->remove_with(
        key, [&](uint64_t old) { old_row = Row::from_slot(old); }, s.ti_);
    if (removed) {
      s.ti_.retire(old_row, Row::deallocate);
    }
    track_version(version);
  }

  void track_version(uint64_t v) {
    uint64_t cur = max_version_seen_.load(std::memory_order_relaxed);
    while (cur < v &&
           !max_version_seen_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  Options opt_;
  std::vector<std::unique_ptr<LogWriter>> log_writers_;
  std::vector<std::unique_ptr<LogShard>> log_shards_;
  LogShardPool log_pool_;
  std::mutex log_mu_;          // guards log_shards_ growth + file naming
  unsigned next_log_file_ = 0;
  // Declared before tree_ so the cache outlives the tree's pointer to it.
  std::unique_ptr<RecordCache<Tree::Config>> cache_;
  std::unique_ptr<Tree> tree_;
  std::thread maint_thread_;
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::atomic<uint64_t> version_counter_{0};
  std::atomic<uint64_t> max_version_seen_{0};
  std::atomic<uint64_t> maintenance_tick_{0};
  // Read-only degraded mode (sticky; see note_io_error).
  std::atomic<bool> read_only_{false};
  std::atomic<uint64_t> ro_trips_{0};
  std::atomic<uint64_t> ro_rejects_{0};
  mutable std::mutex err_detail_mu_;
  io::IoErrorDetail err_detail_;
  ThreadCounters trip_counters_;  // written once, under the trip CAS
};

}  // namespace masstree

#endif  // MASSTREE_KVSTORE_STORE_H_
