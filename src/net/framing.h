// Incremental, allocation-free-in-steady-state framing for the event-loop
// server (§6.1).
//
// The blocking server could lean on std::string append/erase per read; an
// event-loop worker that owns hundreds of connections cannot — every
// connection keeps a reusable rx buffer (InBuffer) the decoder resumes over
// across arbitrarily short reads, and a reusable circular tx buffer (TxRing)
// responses are encoded straight into and flushed with writev. Neither
// allocates once grown to its high-water mark; MaxScale's protocol modules
// (incremental packet assembly decoupled from execution) are the model.
//
// Decoding is a pure function over buffered bytes: decode_frame() never
// consumes — the server parses complete frames in place (op keys stay views
// into the rx buffer while a batch forms) and consumes only after the batch
// executed.

#ifndef MASSTREE_NET_FRAMING_H_
#define MASSTREE_NET_FRAMING_H_

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>

#include "net/proto.h"

namespace masstree {
namespace netframe {

// ---------------------------------------------------------------------------
// Frame decoding over buffered bytes. `buf` is everything received so far
// (starting at `offset` into it); a complete frame's body is returned without
// consuming. kTooBig is a protocol error: the u32 length prefix exceeds
// kMaxFrameBody, so the stream can never be resynchronized (the server
// replies kRejected and closes that connection — the worker, and every other
// connection it owns, keeps running).
enum class FrameStatus : uint8_t {
  kNeedMore = 0,  // no complete frame at offset yet
  kFrame = 1,     // *body / *frame_len are valid
  kTooBig = 2,    // length prefix exceeds kMaxFrameBody
};

inline FrameStatus decode_frame(std::string_view buf, size_t offset,
                                std::string_view* body, size_t* frame_len) {
  if (buf.size() - offset < sizeof(uint32_t)) {
    return FrameStatus::kNeedMore;
  }
  uint32_t len;
  std::memcpy(&len, buf.data() + offset, sizeof(len));
  if (len > kMaxFrameBody) {
    return FrameStatus::kTooBig;
  }
  if (buf.size() - offset < sizeof(uint32_t) + len) {
    return FrameStatus::kNeedMore;
  }
  *body = buf.substr(offset + sizeof(uint32_t), len);
  *frame_len = sizeof(uint32_t) + len;
  return FrameStatus::kFrame;
}

// ---------------------------------------------------------------------------
// InBuffer: a connection's receive buffer. Linear (parsers need contiguous
// views into frame bodies), compacting, and reused for the connection's
// lifetime — steady state does no allocation and no per-byte work beyond the
// one memmove when a partial frame straddles the compaction point.
//
// View invalidation contract: fill() may compact or grow (moving bytes);
// data()/views are only stable between a fill() and the next fill()/
// consume() — exactly the window the server parses and executes in.
class InBuffer {
 public:
  explicit InBuffer(size_t initial_capacity = 16 << 10)
      : cap_(initial_capacity), buf_(new char[cap_]) {}

  const char* data() const { return buf_.get() + head_; }
  size_t size() const { return tail_ - head_; }
  std::string_view view() const { return std::string_view(data(), size()); }
  size_t capacity() const { return cap_; }

  // Drop n consumed bytes from the front.
  void consume(size_t n) {
    head_ += n;
    if (head_ == tail_) {
      head_ = tail_ = 0;  // free reset: the common all-consumed case
    }
  }

  // Read once from fd into the tail, making room first (compact, then grow —
  // growth is capped by the frame limit, so a hostile length prefix cannot
  // balloon the buffer). Returns read()'s result (n > 0 bytes appended, 0 on
  // EOF, -1 with errno on error/EAGAIN).
  ssize_t fill(int fd, size_t max_read) {
    make_room(max_read);
    size_t room = cap_ - tail_;
    ssize_t n = ::read(fd, buf_.get() + tail_, room < max_read ? room : max_read);
    if (n > 0) {
      tail_ += static_cast<size_t>(n);
    }
    return n;
  }

  // Test seam: append bytes as if they arrived from the socket.
  void append(std::string_view bytes) {
    make_room(bytes.size());
    std::memcpy(buf_.get() + tail_, bytes.data(), bytes.size());
    tail_ += bytes.size();
  }

 private:
  void make_room(size_t want) {
    if (cap_ - tail_ >= want) {
      return;
    }
    if (cap_ - size() >= want) {
      // Compact: slide the partial frame to the front.
      std::memmove(buf_.get(), buf_.get() + head_, size());
      tail_ -= head_;
      head_ = 0;
      return;
    }
    size_t need = size() + want;
    size_t ncap = cap_;
    while (ncap < need) {
      ncap *= 2;
    }
    std::unique_ptr<char[]> nbuf(new char[ncap]);
    std::memcpy(nbuf.get(), buf_.get() + head_, size());
    buf_ = std::move(nbuf);
    cap_ = ncap;
    tail_ -= head_;
    head_ = 0;
  }

  size_t cap_;
  size_t head_ = 0, tail_ = 0;  // valid bytes live in [head_, tail_)
  std::unique_ptr<char[]> buf_;
};

// ---------------------------------------------------------------------------
// TxRing: a connection's transmit buffer. Circular — contents may wrap, so a
// flush gathers up to two spans with one writev — with absolute (monotone
// u64) positions, which makes the response-frame length patch trivial:
// reserve_u32() returns the position of a 4-byte placeholder, patch_u32()
// fills it in once the frame's last op result has been encoded, wrap or no
// wrap. Grows only when an encoded burst exceeds the current capacity
// (power-of-two), then is reused forever: steady state allocates nothing.
class TxRing {
 public:
  explicit TxRing(size_t initial_capacity = 16 << 10)
      : cap_(round_up_pow2(initial_capacity)), buf_(new char[cap_]) {}

  size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  uint64_t end() const { return tail_; }

  void append(const void* p, size_t n) {
    ensure(n);
    const char* src = static_cast<const char*>(p);
    while (n > 0) {
      size_t idx = index(tail_);
      size_t run = cap_ - idx;
      if (run > n) {
        run = n;
      }
      std::memcpy(buf_.get() + idx, src, run);
      tail_ += run;
      src += run;
      n -= run;
    }
  }

  void append(std::string_view s) { append(s.data(), s.size()); }

  template <typename T>
  void put(T v) {
    append(&v, sizeof(T));
  }

  // Append a 4-byte placeholder (frame length / scan count) and return its
  // absolute position for a later patch.
  uint64_t reserve_u32() {
    uint64_t pos = tail_;
    put<uint32_t>(0);
    return pos;
  }

  void patch_u32(uint64_t pos, uint32_t v) {
    char bytes[sizeof(uint32_t)];
    std::memcpy(bytes, &v, sizeof(v));
    for (size_t i = 0; i < sizeof(uint32_t); ++i) {
      buf_[index(pos + i)] = bytes[i];
    }
  }

  void patch_u8(uint64_t pos, uint8_t v) { buf_[index(pos)] = static_cast<char>(v); }

  uint8_t peek_u8(uint64_t pos) const { return static_cast<uint8_t>(buf_[index(pos)]); }

  // Gather the buffered (possibly wrapped) bytes into at most two iovecs.
  // Returns the iovec count (0 when empty).
  int gather(iovec iov[2]) const {
    if (empty()) {
      return 0;
    }
    size_t hi = index(head_);
    size_t first = cap_ - hi;
    if (first >= size()) {
      iov[0] = {buf_.get() + hi, size()};
      return 1;
    }
    iov[0] = {buf_.get() + hi, first};
    iov[1] = {buf_.get(), size() - first};
    return 2;
  }

  // One gathered write toward fd (sendmsg: writev semantics plus
  // MSG_NOSIGNAL — a peer that closed mid-response must surface as EPIPE to
  // the event loop, not SIGPIPE the process); consumes what the kernel took.
  // Returns -1 with errno untouched on error/EAGAIN.
  ssize_t flush(int fd) {
    iovec iov[2];
    int cnt = gather(iov);
    if (cnt == 0) {
      return 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(cnt);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      // Positions stay absolute (monotone) even once drained, so outstanding
      // reserve_u32 positions remain unique and patchable.
      head_ += static_cast<size_t>(n);
    }
    return n;
  }

  // Test seam: copy out the buffered bytes without consuming.
  void peek(std::string* out) const {
    iovec iov[2];
    int cnt = gather(iov);
    out->clear();
    for (int i = 0; i < cnt; ++i) {
      out->append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
    }
  }

  size_t capacity() const { return cap_; }

 private:
  static size_t round_up_pow2(size_t v) {
    size_t p = 64;
    while (p < v) {
      p *= 2;
    }
    return p;
  }

  size_t index(uint64_t pos) const { return static_cast<size_t>(pos) & (cap_ - 1); }

  void ensure(size_t n) {
    if (cap_ - size() >= n) {
      return;
    }
    size_t ncap = cap_;
    while (ncap - size() < n) {
      ncap *= 2;
    }
    // Re-home every byte at its absolute position modulo the new capacity:
    // outstanding reserve_u32 positions stay patchable across the growth.
    std::unique_ptr<char[]> nbuf(new char[ncap]);
    for (uint64_t pos = head_; pos < tail_;) {
      size_t src = index(pos);
      size_t dst = static_cast<size_t>(pos) & (ncap - 1);
      size_t run = cap_ - src;
      if (run > ncap - dst) {
        run = ncap - dst;
      }
      if (run > static_cast<size_t>(tail_ - pos)) {
        run = static_cast<size_t>(tail_ - pos);
      }
      std::memcpy(nbuf.get() + dst, buf_.get() + src, run);
      pos += run;
    }
    buf_ = std::move(nbuf);
    cap_ = ncap;
  }

  size_t cap_;
  uint64_t head_ = 0, tail_ = 0;  // absolute positions; data in [head_, tail_)
  std::unique_ptr<char[]> buf_;
};

}  // namespace netframe
}  // namespace masstree

#endif  // MASSTREE_NET_FRAMING_H_
