// The pre-§6.1 blocking network server, kept as the measured baseline for
// the event-loop server's connections-vs-throughput sweep (bench/fig13).
//
// One acceptor thread distributes connections round-robin across workers;
// each worker poll()s its connections and, per readable connection, reads,
// parses, executes, and write_all()s the response synchronously — a slow or
// unread connection blocks its worker, and requests from different
// connections never coalesce into one tree batch. Those two properties are
// exactly what the sweep quantifies, so this file should stay dumb: do not
// "fix" it toward src/net/server.h.

#ifndef MASSTREE_NET_BLOCKING_SERVER_H_
#define MASSTREE_NET_BLOCKING_SERVER_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/store.h"
#include "net/proto.h"

namespace masstree {

template <typename S>
concept BlockingHasMultiget =
    requires(const S& s, std::vector<std::string_view>& keys,
             const std::vector<unsigned>& cols,
             std::vector<typename S::MultigetResult>& out, typename S::Session& sess) {
      s.multiget(std::span<const std::string_view>(keys), cols, &out, sess);
    };

template <typename StoreT = Store>
class BlockingServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = ephemeral
    unsigned workers = 2;
  };

  BlockingServer(StoreT& store, Options opt) : store_(store), opt_(opt) {}

  ~BlockingServer() { stop(); }

  void start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("BlockingServer: socket() failed");
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 128) != 0) {
      throw std::runtime_error("BlockingServer: bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    workers_.resize(opt_.workers);
    for (unsigned w = 0; w < opt_.workers; ++w) {
      workers_[w] = std::make_unique<Worker>(*this, w);
      workers_[w]->thread = std::thread([this, w] { workers_[w]->run(); });
    }
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  void stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
      return;
    }
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (acceptor_.joinable()) {
      acceptor_.join();
    }
    for (auto& w : workers_) {
      if (w) {
        w->shutdown();
        if (w->thread.joinable()) {
          w->thread.join();
        }
      }
    }
  }

  uint16_t port() const { return port_; }
  uint64_t ops_served() const { return ops_served_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    Worker(BlockingServer& server, unsigned id)
        : server(server), session(server.store_, id) {
      if (::pipe(wake_pipe) != 0) {
        throw std::runtime_error("BlockingServer: pipe() failed");
      }
    }
    ~Worker() {
      ::close(wake_pipe[0]);
      ::close(wake_pipe[1]);
      for (auto& c : conns) {
        ::close(c.fd);
      }
    }

    void add_connection(int fd) {
      {
        std::lock_guard<std::mutex> lock(mu);
        pending.push_back(fd);
      }
      char b = 'c';
      ssize_t r = ::write(wake_pipe[1], &b, 1);
      (void)r;
    }

    void shutdown() {
      stop.store(true, std::memory_order_release);
      char b = 'q';
      ssize_t r = ::write(wake_pipe[1], &b, 1);
      (void)r;
    }

    void run() {
      std::vector<pollfd> fds;
      while (!stop.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back(pollfd{wake_pipe[0], POLLIN, 0});
        for (auto& c : conns) {
          fds.push_back(pollfd{c.fd, POLLIN, 0});
        }
        if (::poll(fds.data(), fds.size(), 200) < 0) {
          continue;
        }
        if (fds[0].revents & POLLIN) {
          char drain[64];
          ssize_t r = ::read(wake_pipe[0], drain, sizeof(drain));
          (void)r;
          std::lock_guard<std::mutex> lock(mu);
          for (int fd : pending) {
            conns.push_back(Conn{fd, {}});
          }
          pending.clear();
        }
        for (size_t i = 0; i + 1 <= conns.size(); ++i) {
          // fds[i+1] pairs with conns[i] (fds[0] is the wake pipe).
          if (i + 1 < fds.size() && (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) {
            if (!service(conns[i])) {
              ::close(conns[i].fd);
              conns.erase(conns.begin() + static_cast<long>(i));
              --i;
            }
          }
        }
      }
    }

    struct Conn {
      int fd;
      std::string inbuf;
    };

    // Reads available bytes; executes every complete frame. Returns false
    // when the connection is gone.
    bool service(Conn& c) {
      char buf[64 << 10];
      ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n <= 0) {
        return false;
      }
      c.inbuf.append(buf, static_cast<size_t>(n));
      size_t consumed_total = 0;
      for (;;) {
        size_t consumed = 0;
        auto body = netwire::try_frame(
            std::string_view(c.inbuf).substr(consumed_total), &consumed);
        if (!body) {
          break;
        }
        std::string resp = execute_batch(*body);
        netwire::frame(&resp);
        if (!write_all(c.fd, resp)) {
          return false;
        }
        consumed_total += consumed;
      }
      if (consumed_total > 0) {
        c.inbuf.erase(0, consumed_total);
      }
      return true;
    }

    std::string execute_batch(std::string_view body) {
      std::string resp;
      netwire::Reader r(body);
      std::vector<std::string> cols_out;
      while (!r.done()) {
        uint8_t opcode;
        if (!r.read(&opcode)) {
          break;
        }
        switch (static_cast<NetOp>(opcode)) {
          case NetOp::kGet: {
            uint32_t klen;
            std::string_view key;
            uint16_t ncols;
            if (!r.read(&klen) || !r.read_bytes(klen, &key) || !r.read(&ncols)) {
              return resp;
            }
            std::vector<unsigned> cols;
            for (uint16_t i = 0; i < ncols; ++i) {
              uint16_t c;
              if (!r.read(&c)) {
                return resp;
              }
              cols.push_back(c);
            }
            bool found = server.store_.get(key, cols, &cols_out, session);
            netwire::put_raw<uint8_t>(&resp, found ? 0 : 1);
            if (found) {
              netwire::put_raw<uint16_t>(&resp, static_cast<uint16_t>(cols_out.size()));
              for (const auto& v : cols_out) {
                netwire::put_raw<uint32_t>(&resp, static_cast<uint32_t>(v.size()));
                resp.append(v);
              }
            }
            break;
          }
          case NetOp::kPut: {
            uint32_t klen;
            std::string_view key;
            uint16_t ncols;
            if (!r.read(&klen) || !r.read_bytes(klen, &key) || !r.read(&ncols)) {
              return resp;
            }
            std::vector<ColumnUpdate> updates;
            for (uint16_t i = 0; i < ncols; ++i) {
              uint16_t c;
              uint32_t len;
              std::string_view data;
              if (!r.read(&c) || !r.read(&len) || !r.read_bytes(len, &data)) {
                return resp;
              }
              updates.push_back(ColumnUpdate{c, data});
            }
            bool inserted = server.store_.put(key, updates, session);
            netwire::put_raw<uint8_t>(&resp, 0);
            netwire::put_raw<uint8_t>(&resp, inserted ? 1 : 0);
            break;
          }
          case NetOp::kRemove: {
            uint32_t klen;
            std::string_view key;
            if (!r.read(&klen) || !r.read_bytes(klen, &key)) {
              return resp;
            }
            bool removed = server.store_.remove(key, session);
            netwire::put_raw<uint8_t>(&resp, removed ? 0 : 1);
            break;
          }
          case NetOp::kScan: {
            uint32_t klen;
            std::string_view key;
            uint32_t limit;
            uint16_t col;
            if (!r.read(&klen) || !r.read_bytes(klen, &key) || !r.read(&limit) ||
                !r.read(&col)) {
              return resp;
            }
            if (limit > kMaxScanLimit) {
              netwire::put_raw<uint8_t>(&resp, static_cast<uint8_t>(NetStatus::kRejected));
              break;
            }
            netwire::put_raw<uint8_t>(&resp, 0);
            size_t count_pos = resp.size();
            netwire::put_raw<uint32_t>(&resp, 0);
            uint32_t count = 0;
            server.store_.getrange(
                key, limit, col,
                [&](std::string_view k, std::string_view v, const Row*) {
                  netwire::put_raw<uint32_t>(&resp, static_cast<uint32_t>(k.size()));
                  resp.append(k);
                  netwire::put_raw<uint32_t>(&resp, static_cast<uint32_t>(v.size()));
                  resp.append(v);
                  ++count;
                  return true;
                },
                session);
            std::memcpy(resp.data() + count_pos, &count, sizeof(count));
            break;
          }
          case NetOp::kPing: {
            netwire::put_raw<uint8_t>(&resp, 0);
            break;
          }
          case NetOp::kMultiGet: {
            uint16_t ncols;
            if (!r.read(&ncols)) {
              return resp;
            }
            std::vector<unsigned> cols;
            for (uint16_t i = 0; i < ncols; ++i) {
              uint16_t c;
              if (!r.read(&c)) {
                return resp;
              }
              cols.push_back(c);
            }
            uint16_t count;
            if (!r.read(&count)) {
              return resp;
            }
            std::vector<std::string_view> keys(count);
            for (uint16_t i = 0; i < count; ++i) {
              uint32_t klen;
              if (!r.read(&klen) || !r.read_bytes(klen, &keys[i])) {
                return resp;
              }
            }
            if (count > kMaxMultigetBatch) {
              netwire::put_raw<uint8_t>(&resp, static_cast<uint8_t>(NetStatus::kRejected));
              break;
            }
            netwire::put_raw<uint8_t>(&resp, 0);
            netwire::put_raw<uint16_t>(&resp, count);
            if constexpr (BlockingHasMultiget<StoreT>) {
              std::vector<typename StoreT::MultigetResult> out;
              server.store_.multiget(std::span<const std::string_view>(keys), cols, &out,
                                     session);
              for (uint16_t i = 0; i < count; ++i) {
                netwire::put_raw<uint8_t>(&resp, out[i].found ? 1 : 0);
                if (out[i].found) {
                  netwire::put_raw<uint16_t>(&resp,
                                             static_cast<uint16_t>(out[i].columns.size()));
                  for (const auto& v : out[i].columns) {
                    netwire::put_raw<uint32_t>(&resp, static_cast<uint32_t>(v.size()));
                    resp.append(v);
                  }
                }
              }
            } else {
              for (uint16_t i = 0; i < count; ++i) {
                bool found = server.store_.get(keys[i], cols, &cols_out, session);
                netwire::put_raw<uint8_t>(&resp, found ? 1 : 0);
                if (found) {
                  netwire::put_raw<uint16_t>(&resp, static_cast<uint16_t>(cols_out.size()));
                  for (const auto& v : cols_out) {
                    netwire::put_raw<uint32_t>(&resp, static_cast<uint32_t>(v.size()));
                    resp.append(v);
                  }
                }
              }
            }
            break;
          }
          default:
            return resp;  // unknown op: stop parsing this frame
        }
        server.ops_served_.fetch_add(1, std::memory_order_relaxed);
      }
      return resp;
    }

    static bool write_all(int fd, std::string_view data) {
      size_t off = 0;
      while (off < data.size()) {
        // MSG_NOSIGNAL: a client gone mid-response is this connection's
        // failure, not a process-wide SIGPIPE.
        ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
          return false;
        }
        off += static_cast<size_t>(n);
      }
      return true;
    }

    BlockingServer& server;
    typename StoreT::Session session;
    std::thread thread;
    std::atomic<bool> stop{false};
    int wake_pipe[2];
    std::mutex mu;
    std::vector<int> pending;
    std::vector<Conn> conns;
  };

  void accept_loop() {
    unsigned next = 0;
    while (!stopping_.load(std::memory_order_acquire)) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        break;  // listener closed
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      workers_[next % workers_.size()]->add_connection(fd);
      ++next;
    }
  }

  StoreT& store_;
  Options opt_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> ops_served_{0};
};

}  // namespace masstree

#endif  // MASSTREE_NET_BLOCKING_SERVER_H_
