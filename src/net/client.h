// Batching client library for the Masstree server.
//
// §7 (Figure 12) highlights that batched/pipelined query support is vital on
// these benchmarks. This client accumulates operations into one frame and
// flush() sends the batch and decodes all responses at once.

#ifndef MASSTREE_NET_CLIENT_H_
#define MASSTREE_NET_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/proto.h"

namespace masstree {

class Client {
 public:
  // One entry of a multiget (or multiput) batch result.
  struct BatchGet {
    bool found = false;     // multiget: key present
    bool inserted = false;  // multiput: this entry created the key
    std::vector<std::string> columns;
  };

  struct Result {
    NetStatus status = NetStatus::kNotFound;
    NetOp op = NetOp::kPing;
    bool inserted = false;                          // puts
    std::vector<std::string> columns;               // gets
    std::vector<std::pair<std::string, std::string>> scan_items;  // scans
    std::vector<BatchGet> batch;                    // multigets, one per key
  };

  explicit Client(uint16_t port, const char* host = "127.0.0.1") {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error("Client: socket() failed");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      throw std::runtime_error("Client: connect failed");
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~Client() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- batch builders ----
  void get(std::string_view key, const std::vector<uint16_t>& cols = {}) {
    netwire::encode_get(&batch_, key, cols);
    ops_.push_back(NetOp::kGet);
  }
  void put(std::string_view key,
           const std::vector<std::pair<uint16_t, std::string_view>>& cols) {
    netwire::encode_put(&batch_, key, cols);
    ops_.push_back(NetOp::kPut);
  }
  void remove(std::string_view key) {
    netwire::encode_remove(&batch_, key);
    ops_.push_back(NetOp::kRemove);
  }
  // Range scan of up to `limit` pairs from the first key at or after `key`.
  // The server refuses limits above kMaxScanLimit with NetStatus::kRejected
  // (one op must not stream an unbounded range into one response frame), so
  // the client fails fast on them instead of wasting the round trip; page
  // longer ranges by re-issuing from the last returned key.
  void scan(std::string_view key, uint32_t limit, uint16_t col) {
    if (limit > kMaxScanLimit) {
      throw std::length_error("Client: scan limit exceeds kMaxScanLimit");
    }
    netwire::encode_scan(&batch_, key, limit, col);
    ops_.push_back(NetOp::kScan);
  }
  void ping() {
    netwire::encode_ping(&batch_);
    ops_.push_back(NetOp::kPing);
  }
  // One op carrying a whole batch of gets: a single round-trip drives the
  // server's software-pipelined multiget (§4.8). `cols` selects the columns
  // returned for every key (empty = all). Batches over kMaxMultigetBatch are
  // rejected by the server with NetStatus::kRejected; batches that do not
  // even fit the wire's u16 count (where the server could no longer parse,
  // let alone reject) are refused here.
  void multiget(const std::vector<std::string_view>& keys,
                const std::vector<uint16_t>& cols = {}) {
    if (keys.size() > 0xFFFF || cols.size() > 0xFFFF) {
      throw std::length_error("Client: multiget batch exceeds the wire's u16 count");
    }
    netwire::encode_multiget(&batch_, keys, cols);
    ops_.push_back(NetOp::kMultiGet);
  }
  // One op carrying a whole batch of puts: a single round-trip drives the
  // server's software-pipelined multiput (§4.8, write side). Repeated keys
  // within one batch apply last-write-wins; the per-entry inserted flags
  // (Result::batch[i].inserted) still read as if the batch had run
  // sequentially. Batches over kMaxMultigetBatch are rejected by the server
  // with NetStatus::kRejected; batches that do not even fit the wire's u16
  // count are refused here.
  void multiput(const std::vector<netwire::MultiputEntry>& entries) {
    if (entries.size() > 0xFFFF) {
      throw std::length_error("Client: multiput batch exceeds the wire's u16 count");
    }
    for (const auto& e : entries) {
      if (e.cols.size() > 0xFFFF) {
        throw std::length_error("Client: multiput entry exceeds the wire's u16 ncols");
      }
    }
    netwire::encode_multiput(&batch_, entries);
    ops_.push_back(NetOp::kMultiPut);
  }

  size_t pending() const { return ops_.size(); }
  size_t inflight() const { return inflight_.size(); }

  // ---- pipelining ----
  // send() ships the queued ops as one request frame WITHOUT waiting for the
  // response; receive() blocks for the oldest in-flight frame's responses.
  // The server answers frames strictly in order (see proto.h), so a client
  // can keep `depth` frames in flight — send() x depth, then one receive()
  // per further send() — which is what lets server-side batches form across
  // wakeups. flush() is the depth-1 convenience: send + receive.
  void send() {
    if (ops_.empty()) {
      return;
    }
    netwire::frame(&batch_);
    write_all(batch_);
    batch_.clear();
    inflight_.push_back(std::move(ops_));
    ops_.clear();
  }

  std::vector<Result> receive() {
    if (inflight_.empty()) {
      return {};
    }
    std::vector<NetOp> ops = std::move(inflight_.front());
    inflight_.pop_front();
    return decode(ops, read_frame());
  }

  // Sends the batch and decodes one Result per queued op.
  std::vector<Result> flush() {
    send();
    return receive();
  }

 private:
  std::vector<Result> decode(const std::vector<NetOp>& ops, const std::string& body) {
    std::vector<Result> results;
    netwire::Reader r(body);
    results.reserve(ops.size());
    for (NetOp op : ops) {
      Result res;
      res.op = op;
      uint8_t status;
      if (!r.read(&status)) {
        throw std::runtime_error("Client: short response");
      }
      res.status = static_cast<NetStatus>(status);
      switch (op) {
        case NetOp::kGet:
          if (res.status == NetStatus::kOk) {
            uint16_t ncols;
            if (!r.read(&ncols)) {
              throw std::runtime_error("Client: bad get response");
            }
            for (uint16_t i = 0; i < ncols; ++i) {
              uint32_t len;
              std::string_view data;
              if (!r.read(&len) || !r.read_bytes(len, &data)) {
                throw std::runtime_error("Client: bad get response");
              }
              res.columns.emplace_back(data);
            }
          }
          break;
        case NetOp::kPut: {
          // kReadOnly (store degraded after a sticky I/O error) carries no
          // payload; only an ok response has the inserted byte.
          if (res.status == NetStatus::kOk) {
            uint8_t inserted;
            if (!r.read(&inserted)) {
              throw std::runtime_error("Client: bad put response");
            }
            res.inserted = inserted != 0;
          }
          break;
        }
        case NetOp::kScan: {
          if (res.status == NetStatus::kRejected) {
            break;  // rejected scans carry no payload
          }
          uint32_t count;
          if (!r.read(&count)) {
            throw std::runtime_error("Client: bad scan response");
          }
          for (uint32_t i = 0; i < count; ++i) {
            uint32_t klen, vlen;
            std::string_view k, v;
            if (!r.read(&klen) || !r.read_bytes(klen, &k) || !r.read(&vlen) ||
                !r.read_bytes(vlen, &v)) {
              throw std::runtime_error("Client: bad scan response");
            }
            res.scan_items.emplace_back(std::string(k), std::string(v));
          }
          break;
        }
        case NetOp::kMultiGet:
          if (res.status == NetStatus::kOk) {
            uint16_t count;
            if (!r.read(&count)) {
              throw std::runtime_error("Client: bad multiget response");
            }
            res.batch.resize(count);
            for (uint16_t i = 0; i < count; ++i) {
              uint8_t found;
              if (!r.read(&found)) {
                throw std::runtime_error("Client: bad multiget response");
              }
              res.batch[i].found = found != 0;
              if (found == 0) {
                continue;
              }
              uint16_t ncols;
              if (!r.read(&ncols)) {
                throw std::runtime_error("Client: bad multiget response");
              }
              for (uint16_t c = 0; c < ncols; ++c) {
                uint32_t len;
                std::string_view data;
                if (!r.read(&len) || !r.read_bytes(len, &data)) {
                  throw std::runtime_error("Client: bad multiget response");
                }
                res.batch[i].columns.emplace_back(data);
              }
            }
          }
          break;
        case NetOp::kMultiPut:
          if (res.status == NetStatus::kOk) {
            uint16_t count;
            if (!r.read(&count)) {
              throw std::runtime_error("Client: bad multiput response");
            }
            res.batch.resize(count);
            for (uint16_t i = 0; i < count; ++i) {
              uint8_t inserted;
              if (!r.read(&inserted)) {
                throw std::runtime_error("Client: bad multiput response");
              }
              res.batch[i].inserted = inserted != 0;
            }
          }
          break;
        case NetOp::kRemove:
        case NetOp::kPing:
          break;
      }
      results.push_back(std::move(res));
    }
    return results;
  }

  void write_all(std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      // MSG_NOSIGNAL: a server that closed the connection (e.g. after a
      // protocol error) should surface as the exception below, not SIGPIPE.
      ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        throw std::runtime_error("Client: write failed");
      }
      off += static_cast<size_t>(n);
    }
  }

  std::string read_frame() {
    for (;;) {
      size_t consumed = 0;
      auto body = netwire::try_frame(inbuf_, &consumed);
      if (body) {
        std::string out(*body);
        inbuf_.erase(0, consumed);
        return out;
      }
      char buf[64 << 10];
      ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        throw std::runtime_error("Client: connection closed");
      }
      inbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  int fd_ = -1;
  std::string batch_;
  std::vector<NetOp> ops_;
  std::deque<std::vector<NetOp>> inflight_;  // op lists of sent, unanswered frames
  std::string inbuf_;
};

}  // namespace masstree

#endif  // MASSTREE_NET_CLIENT_H_
