// Wire protocol for the Masstree network server (§3, §5).
//
// "A single client message can include many queries." — requests and
// responses are length-prefixed frames containing a batch of operations;
// batching amortizes per-message network overhead, which §7 shows is vital
// (memcached's unbatched puts collapse).
//
// Frame: u32 body_len | body. Request body: ops back to back.
//   op:  u8 opcode
//     kGet:      u32 klen key | u16 ncols (u16 col)*      (ncols=0 -> all)
//     kPut:      u32 klen key | u16 ncols (u16 col u32 len bytes)*
//     kRemove:   u32 klen key
//     kScan:     u32 klen key | u32 limit | u16 col       (col 0xFFFF -> col 0)
//                — limits above kMaxScanLimit are rejected (kRejected, no
//                payload): one scan streams under server-side epoch guards
//                and into one response frame, so the wire's u32 limit must
//                not become an unbounded memory/reclamation commitment.
//                Clients page larger ranges by re-issuing from the last key.
//     kPing:     (empty)
//     kMultiGet: u16 ncols (u16 col)* | u16 count | count x (u32 klen key)
//                — one op carrying a whole batch of gets (§4.8); the column
//                selection applies to every key. Batches larger than
//                kMaxMultigetBatch are rejected.
//     kMultiPut: u16 count | count x (u32 klen key | u16 ncols
//                (u16 col u32 len bytes)*)
//                — one op carrying a whole batch of puts, the write-side
//                twin of kMultiGet: the server drives it through the
//                store's pipelined multiput. Within one op, repeated keys
//                apply last-write-wins (results still read as if applied
//                sequentially). Batches larger than kMaxMultigetBatch are
//                rejected.
// Response body: one result per op.
//   u8 status (0 = ok, 1 = not found, 2 = rejected, 3 = read-only)
//     kGet ok:      u16 ncols (u32 len bytes)*
//     kPut ok:      u8 inserted; read-only: no payload
//     kRemove:      - (read-only writes answer status 3, no payload)
//     kScan ok:     u32 count (u32 klen key u32 vlen value)*; rejected: no
//                   payload
//     kPing:        -
//     kMultiGet ok: u16 count | count x (u8 found | found: u16 ncols
//                   (u32 len bytes)*); rejected: no payload
//     kMultiPut ok: u16 count | count x (u8 inserted); rejected or
//                   read-only: no payload
//
// Pipelining contract: a client may send any number of request frames
// back-to-back without waiting; the server answers every request frame with
// exactly one response frame, in order, and may coalesce work across frames
// and across connections internally. An empty request frame (body_len 0)
// yields an empty response frame.
//
// Protocol errors: a length prefix above kMaxFrameBody, an unknown opcode,
// or a truncated/overrunning op body poisons the byte stream — it cannot be
// resynchronized. The server finishes responding to the frames it already
// accepted from that connection, then sends one final frame whose body is a
// single kRejected status byte and closes the connection. The worker and its
// other connections are unaffected. (Well-formed-but-refused ops — oversized
// kMultiGet batches or kScan limits — are NOT protocol errors: they get an
// in-band kRejected result and the connection lives on.)

#ifndef MASSTREE_NET_PROTO_H_
#define MASSTREE_NET_PROTO_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace masstree {

enum class NetOp : uint8_t {
  kGet = 1,
  kPut = 2,
  kRemove = 3,
  kScan = 4,
  kPing = 5,
  kMultiGet = 6,
  kMultiPut = 7,
};

enum class NetStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kRejected = 2,  // well-formed but refused (e.g. oversized multiget batch)
  kReadOnly = 3,  // write refused: the store degraded to read-only after a
                  // sticky log/checkpoint I/O error. Carries no payload;
                  // gets/scans on the same connection keep serving.
};

// Upper bound on keys per kMultiGet op (and per kMultiPut op: one multiput
// spans a whole batch under one epoch guard and one grouped log reservation
// server-side, so the same bound applies). Unbounded batches would stall
// memory reclamation; clients should split larger batches into several ops
// in the same frame.
inline constexpr size_t kMaxMultigetBatch = 1024;

// Upper bound on a kScan op's u32 limit (mirrors kMaxMultigetBatch): an
// unbounded limit would let one op build an arbitrarily large response frame.
// Over-limit scans get NetStatus::kRejected; clients page longer ranges by
// re-issuing from the last returned key.
inline constexpr size_t kMaxScanLimit = 65536;

// Upper bound on a frame's u32 body length. A length prefix above this is a
// protocol error (the connection is rejected and closed): it is far beyond
// anything the op set can legitimately encode, so treating it as real would
// let one garbage header commit the server to buffering 4 GiB.
inline constexpr size_t kMaxFrameBody = 16 << 20;

namespace netwire {

template <typename T>
inline void put_raw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

// Bounds-checked cursor over a received body.
class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  template <typename T>
  bool read(T* v) {
    if (buf_.size() - pos_ < sizeof(T)) {
      return false;
    }
    std::memcpy(v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool read_bytes(size_t n, std::string_view* out) {
    if (buf_.size() - pos_ < n) {
      return false;
    }
    *out = buf_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool done() const { return pos_ == buf_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view buf_;
  size_t pos_ = 0;
};

inline void encode_get(std::string* out, std::string_view key,
                       const std::vector<uint16_t>& cols) {
  put_raw<uint8_t>(out, static_cast<uint8_t>(NetOp::kGet));
  put_raw<uint32_t>(out, static_cast<uint32_t>(key.size()));
  out->append(key);
  put_raw<uint16_t>(out, static_cast<uint16_t>(cols.size()));
  for (uint16_t c : cols) {
    put_raw<uint16_t>(out, c);
  }
}

inline void encode_put(std::string* out, std::string_view key,
                       const std::vector<std::pair<uint16_t, std::string_view>>& cols) {
  put_raw<uint8_t>(out, static_cast<uint8_t>(NetOp::kPut));
  put_raw<uint32_t>(out, static_cast<uint32_t>(key.size()));
  out->append(key);
  put_raw<uint16_t>(out, static_cast<uint16_t>(cols.size()));
  for (const auto& [c, data] : cols) {
    put_raw<uint16_t>(out, c);
    put_raw<uint32_t>(out, static_cast<uint32_t>(data.size()));
    out->append(data);
  }
}

inline void encode_remove(std::string* out, std::string_view key) {
  put_raw<uint8_t>(out, static_cast<uint8_t>(NetOp::kRemove));
  put_raw<uint32_t>(out, static_cast<uint32_t>(key.size()));
  out->append(key);
}

inline void encode_scan(std::string* out, std::string_view key, uint32_t limit, uint16_t col) {
  put_raw<uint8_t>(out, static_cast<uint8_t>(NetOp::kScan));
  put_raw<uint32_t>(out, static_cast<uint32_t>(key.size()));
  out->append(key);
  put_raw<uint32_t>(out, limit);
  put_raw<uint16_t>(out, col);
}

inline void encode_ping(std::string* out) {
  put_raw<uint8_t>(out, static_cast<uint8_t>(NetOp::kPing));
}

inline void encode_multiget(std::string* out, const std::vector<std::string_view>& keys,
                            const std::vector<uint16_t>& cols) {
  put_raw<uint8_t>(out, static_cast<uint8_t>(NetOp::kMultiGet));
  put_raw<uint16_t>(out, static_cast<uint16_t>(cols.size()));
  for (uint16_t c : cols) {
    put_raw<uint16_t>(out, c);
  }
  put_raw<uint16_t>(out, static_cast<uint16_t>(keys.size()));
  for (std::string_view k : keys) {
    put_raw<uint32_t>(out, static_cast<uint32_t>(k.size()));
    out->append(k);
  }
}

// One kMultiPut entry: a key and its column writes.
struct MultiputEntry {
  std::string_view key;
  std::vector<std::pair<uint16_t, std::string_view>> cols;
};

inline void encode_multiput(std::string* out, const std::vector<MultiputEntry>& entries) {
  put_raw<uint8_t>(out, static_cast<uint8_t>(NetOp::kMultiPut));
  put_raw<uint16_t>(out, static_cast<uint16_t>(entries.size()));
  for (const MultiputEntry& e : entries) {
    put_raw<uint32_t>(out, static_cast<uint32_t>(e.key.size()));
    out->append(e.key);
    put_raw<uint16_t>(out, static_cast<uint16_t>(e.cols.size()));
    for (const auto& [c, data] : e.cols) {
      put_raw<uint16_t>(out, c);
      put_raw<uint32_t>(out, static_cast<uint32_t>(data.size()));
      out->append(data);
    }
  }
}

// Frame helpers: prepend the length prefix.
inline void frame(std::string* body_into_frame) {
  uint32_t len = static_cast<uint32_t>(body_into_frame->size());
  body_into_frame->insert(0, reinterpret_cast<const char*>(&len), sizeof(len));
}

// If buf holds a complete frame, returns its body and sets *consumed.
inline std::optional<std::string_view> try_frame(std::string_view buf, size_t* consumed) {
  if (buf.size() < sizeof(uint32_t)) {
    return std::nullopt;
  }
  uint32_t len;
  std::memcpy(&len, buf.data(), sizeof(len));
  if (buf.size() < sizeof(uint32_t) + len) {
    return std::nullopt;
  }
  *consumed = sizeof(uint32_t) + len;
  return buf.substr(sizeof(uint32_t), len);
}

}  // namespace netwire
}  // namespace masstree

#endif  // MASSTREE_NET_PROTO_H_
