// The Masstree network server (§5, §6.1): epoll event-loop workers with
// cross-connection batch formation.
//
// "Masstree uses network interfaces that support per-core receive and
//  transmit queues ... A single client message can include many queries."
//
// Each worker owns an epoll set of N nonblocking connections plus one
// StoreT::Session (thread context + log partition) — session-per-worker, not
// session-per-connection, so a worker serving hundreds of clients still pays
// one epoch slot and one log shard. On every wakeup the worker
//
//   1. drains all readable connections into their per-connection rx buffers
//      (netframe::InBuffer; the decoder resumes across short reads),
//   2. parses every complete frame's ops in place — keys stay views into the
//      rx buffer, no allocation per request in steady state,
//   3. forms batches ACROSS connections: maximal runs of read ops (kGet,
//      kMultiGet) from every connection are coalesced into single
//      Tree::multiget drives, and maximal runs of write ops (kPut, kRemove,
//      kMultiPut) are coalesced symmetrically into single Store::multiput
//      drives (§4.8/PALM — both pipelined paths apply to independent network
//      clients, not just in-process callers), while scans interleave inline.
//      Each connection still sees its own ops execute in order: a connection
//      contributes exactly one run per round, and within a round its reads
//      execute before its next write would (read-your-writes per connection
//      holds),
//   4. encodes responses straight into per-connection tx rings and flushes
//      with writev; a connection whose client stops reading gets EPOLLOUT
//      re-arm and an rx pause above the tx high-water mark — never a blocked
//      worker thread, never an unbounded buffer.
//
// The listener is itself routed through worker 0's epoll set, so accept()
// never blocks anywhere: stop() wakes every worker via its eventfd, joins,
// and only then closes the listen fd (the shutdown/accept race of the old
// blocking server is structurally gone).
//
// Scans execute inline through StoreT::getrange, which drives the engine's
// snapshot-batched ScanCursor (§3) — the other batch entry point.

#ifndef MASSTREE_NET_SERVER_H_
#define MASSTREE_NET_SERVER_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/record_cache.h"  // key_hash64: shared with the record cache
#include "kvstore/store.h"
#include "net/framing.h"
#include "net/proto.h"
#include "util/timing.h"

namespace masstree {

// Backends that provide Store's raw batched-read seam get cross-connection
// batch formation into Tree::multiget; others (§6.3 alternative backends)
// fall back to sequential gets.
template <typename S>
concept HasMultigetRows =
    requires(const S& s, std::span<const std::string_view> keys, const Row** rows,
             typename S::Session& sess) {
      { s.multiget_rows(keys, rows, sess) } -> std::convertible_to<size_t>;
    };

// Backends with the batched-write seam (Store::multiput over Store::PutOp)
// get symmetric cross-connection write coalescing; others execute writes
// inline, one store call per op, exactly as before.
template <typename S>
concept HasMultiput =
    requires(S& s, std::span<typename S::PutOp> ops, typename S::Session& sess) {
      { s.multiput(ops, sess) } -> std::convertible_to<size_t>;
    };

// Backends whose write paths report read-only degradation (Store's checked
// variants) get the kReadOnly wire status; others keep the plain bool API
// and can never refuse a write.
template <typename S>
concept HasCheckedWrites =
    requires(S& s, std::string_view key, const std::vector<ColumnUpdate>& upd,
             typename S::Session& sess) {
      { s.put_checked(key, upd, sess) };
      { s.remove_checked(key, sess) };
      { s.read_only() } -> std::convertible_to<bool>;
    };

namespace netdetail {
// The write-batch pools hold StoreT::PutOp elements, a type that only exists
// for multiput-capable backends; this indirection keeps BasicServer
// instantiable for the others (the pools degenerate to an empty-struct
// vector that is never touched).
template <typename S, bool = HasMultiput<S>>
struct PutOpPool {
  using type = std::vector<typename S::PutOp>;
};
template <typename S>
struct PutOpPool<S, false> {
  struct None {};
  using type = std::vector<None>;
};
}  // namespace netdetail

// The server is a template so alternative backends (§6.3 benches a binary
// tree behind the same network stack) can reuse it; any type with Store's
// Session/get/put/remove/getrange interface works.
template <typename StoreT = Store>
class BasicServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = ephemeral
    unsigned workers = 2;
    // Backpressure: once a connection's tx ring holds more than tx_highwater
    // unflushed bytes, the worker stops reading (and so parsing/executing)
    // that connection until the client drains it below half the mark. Other
    // connections on the worker are unaffected.
    size_t tx_highwater = 1 << 20;
    // Partition-affinity routing (Figure 11 / the MaxScale-style ROADMAP
    // item): a connection migrates to the worker owning
    // hash(first key) % workers on its first keyed frame, and kMultiGet keys
    // are steered per key to their owners' sessions, so a hot key's tree
    // cache lines and record-cache bucket are touched by one core. The tree
    // underneath stays shared — no partitioning load-imbalance cliff.
    bool affinity_routing = false;
    // Idle-connection reaping (the slow-loris guard): a connection that has
    // not delivered a complete frame for this many milliseconds is closed by
    // its worker's periodic sweep (counted by Counter::kNetIdleReaped). A
    // half-sent frame does NOT count as activity — a peer trickling one byte
    // per sweep still gets reaped. 0 disables the sweep (default), keeping
    // epoll_wait fully blocking.
    uint64_t idle_timeout_ms = 0;
  };

  BasicServer(StoreT& store, Options opt) : store_(store), opt_(opt) {
    if (opt_.workers == 0) {
      opt_.workers = 1;
    }
  }

  ~BasicServer() { stop(); }

  void start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("Server: socket() failed");
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 512) != 0) {
      throw std::runtime_error("Server: bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    workers_.resize(opt_.workers);
    for (unsigned w = 0; w < opt_.workers; ++w) {
      workers_[w] = std::make_unique<Worker>(*this, w);
    }
    // The listener lives in worker 0's epoll set: accepts are just another
    // event, and there is no dedicated acceptor thread to race with close().
    workers_[0]->add_listener(listen_fd_);
    for (unsigned w = 0; w < opt_.workers; ++w) {
      workers_[w]->thread = std::thread([this, w] { workers_[w]->run(); });
    }
  }

  void stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
      return;
    }
    for (auto& w : workers_) {
      if (w) {
        w->shutdown();
      }
    }
    for (auto& w : workers_) {
      if (w && w->thread.joinable()) {
        w->thread.join();
      }
    }
    // Every worker (including the accepting one) has exited its loop; only
    // now is closing the listen fd race-free.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  uint16_t port() const { return port_; }
  uint64_t ops_served() const { return ops_served_.load(std::memory_order_relaxed); }
  // Cross-request batch formation telemetry: gets that reached Tree::multiget
  // through a formed batch coalescing >= 2 request ops, and the number of
  // such batches. (Workers also count Counter::kNetBatchedGets in their
  // sessions' ThreadCounters.)
  uint64_t batched_gets() const { return batched_gets_.load(std::memory_order_relaxed); }
  uint64_t batches_formed() const {
    return batches_formed_.load(std::memory_order_relaxed);
  }
  // Write-side twins: puts/removes that reached Store::multiput through a
  // formed batch coalescing >= 2 request ops, and the number of such
  // batches. (Workers also count Counter::kNetBatchedPuts.)
  uint64_t batched_puts() const { return batched_puts_.load(std::memory_order_relaxed); }
  uint64_t wbatches_formed() const {
    return wbatches_formed_.load(std::memory_order_relaxed);
  }

  // ---- partition-affinity routing ------------------------------------
  // The ownership function. Same hash as the record cache's buckets
  // (cache/record_cache.h), so the worker a key routes to also owns the
  // cache traffic for that key.
  static unsigned route_worker(std::string_view key, unsigned nworkers) {
    return nworkers <= 1 ? 0 : static_cast<unsigned>(key_hash64(key) % nworkers);
  }
  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }
  // Keyed ops whose tree/store work ran on worker w's session: inline
  // writes/scans, locally-executed batch keys, and steered keys it drained
  // from its mailbox. The affinity tests' observable.
  uint64_t keyed_ops(unsigned w) const {
    return workers_[w]->keyed.load(std::memory_order_relaxed);
  }
  // Batched-read keys shipped to their owning worker's session.
  uint64_t steered_gets() const {
    return steered_gets_.load(std::memory_order_relaxed);
  }
  // Batched-write ops shipped to their owning worker's session.
  uint64_t steered_puts() const {
    return steered_puts_.load(std::memory_order_relaxed);
  }
  // Connections closed by the idle sweep (Options::idle_timeout_ms).
  uint64_t idle_reaped() const {
    return idle_reaped_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    size_t idx = 0;  // position in Worker::conns
    netframe::InBuffer rx;
    netframe::TxRing tx;
    uint32_t events = 0;       // currently-armed epoll interest
    size_t parsed = 0;         // bytes parsed this wakeup, consumed post-batch
    bool eof = false;          // peer finished writing; flush then close
    bool proto_error = false;  // poisoned stream: kRejected frame, then close
    bool closing = false;      // close as soon as tx drains
    bool paused = false;       // rx interest dropped (tx over high water)
    bool queued = false;       // already on this wakeup's ready list
    bool dead = false;         // fd closed; reaped at end of wakeup
    bool routed = false;       // affinity decision made; stays on this worker
    uint64_t last_active_ns = 0;  // last complete frame (or adoption time)
  };

  // One parsed request op. Views point into the owning connection's rx
  // buffer; variable-length payloads (column ids, column updates, multiget
  // keys) live in the worker's reusable pools.
  struct ParsedOp {
    NetOp op = NetOp::kPing;
    bool rejected = false;     // parsed but refused (oversized multiget/scan)
    bool frame_end = false;    // last op of its frame: patch the length prefix
    bool empty_frame = false;  // zero-op frame: respond with an empty frame
    std::string_view key;
    uint32_t scan_limit = 0;
    uint16_t scan_col = 0;
    uint32_t cols_off = 0, cols_cnt = 0;  // -> cols_pool (kMultiPut: cols_off
                                          //    -> wcnt_pool per-key counts)
    uint32_t upd_off = 0, upd_cnt = 0;    // -> upd_pool
    uint32_t keys_off = 0, keys_cnt = 0;  // -> keys_pool
  };

  // A connection's slice of this wakeup's parsed ops, plus response-frame
  // assembly state (the u32 length prefix is reserved when the frame's first
  // result is encoded and patched at its last).
  struct ConnWork {
    Conn* c;
    uint32_t next, end;  // range in Worker::ops
    bool frame_open = false;
    uint64_t frame_len_pos = 0;
  };

  // One batchable read op's slot in the formed batch.
  struct BatchRef {
    uint32_t work;     // -> works
    uint32_t opi;      // -> ops
    uint32_t key_off;  // first key in batch_keys
    uint32_t nkeys;
  };

  // One batchable write op's slot in the formed write batch: `nops`
  // StoreT::PutOps starting at store_ops[op_off] (kPut/kRemove contribute
  // one, kMultiPut one per wire entry).
  struct WBatchRef {
    uint32_t work;    // -> works
    uint32_t opi;     // -> ops
    uint32_t op_off;  // first op in store_ops
    uint32_t nops;
  };

  // One steered slice of a formed batch: the owning worker runs `keys`
  // through its own session, writes `rows`, then bumps *done (release; the
  // spinning origin's acquire load makes the row writes visible).
  struct RemoteGetJob {
    const std::string_view* keys;
    size_t nkeys;
    const Row** rows;
    std::atomic<uint32_t>* done;
  };

  // Write-side steering twin: the owner runs `ops` (a StoreT::PutOp array,
  // type-erased so non-multiput backends still instantiate) through its own
  // session's Store::multiput, filling each op's inserted/found results,
  // then bumps *done.
  struct RemoteWriteJob {
    void* ops;
    size_t nops;
    std::atomic<uint32_t>* done;
  };

  struct Worker {
    Worker(BasicServer& server, unsigned id)
        : server(server), id(id), session(server.store_, id) {
      epfd = ::epoll_create1(EPOLL_CLOEXEC);
      wakefd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      if (epfd < 0 || wakefd < 0) {
        throw std::runtime_error("Server: epoll_create1/eventfd failed");
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = &wake_tag;
      ::epoll_ctl(epfd, EPOLL_CTL_ADD, wakefd, &ev);
    }

    ~Worker() {
      for (auto& c : conns) {
        if (!c->dead) {
          ::close(c->fd);
        }
      }
      for (auto& p : pending) {
        ::close(p.fd);  // handed off but never adopted (shutdown won the race)
      }
      ::close(wakefd);
      ::close(epfd);
    }

    void add_listener(int lfd) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = &listen_tag;
      ::epoll_ctl(epfd, EPOLL_CTL_ADD, lfd, &ev);
    }

    // Cross-thread handoff of a connection: a freshly-accepted fd (from the
    // accepting worker), or an affinity migration arriving with its
    // unconsumed rx bytes.
    void add_connection(int fd, std::string carry = std::string(), bool routed = false) {
      {
        std::lock_guard<std::mutex> lock(mu);
        pending.push_back(PendingConn{fd, std::move(carry), routed});
      }
      wake();
    }

    void wake() {
      uint64_t one = 1;
      ssize_t r = ::write(wakefd, &one, sizeof(one));
      (void)r;
    }

    void shutdown() {
      stop.store(true, std::memory_order_release);
      wake();
    }

    // ---- event loop ----------------------------------------------------
    void run() {
      epoll_event evs[128];
      // With idle reaping on, epoll_wait must return often enough for the
      // sweep to observe silence — a quarter of the window bounds reap
      // latency at 1.25x the configured timeout.
      int wait_ms = -1;
      if (server.opt_.idle_timeout_ms > 0) {
        uint64_t q = server.opt_.idle_timeout_ms / 4;
        wait_ms = static_cast<int>(q < 1 ? 1 : (q > 1000 ? 1000 : q));
      }
      last_idle_sweep_ns = now_ns();
      while (!stop.load(std::memory_order_acquire)) {
        int n = ::epoll_wait(epfd, evs, 128, wait_ms);
        if (n < 0) {
          if (errno == EINTR) {
            continue;
          }
          break;
        }
        for (int i = 0; i < n; ++i) {
          void* p = evs[i].data.ptr;
          if (p == &wake_tag) {
            drain_wake();
            adopt_pending();
            drain_jobs();
            continue;
          }
          if (p == &listen_tag) {
            accept_ready();
            continue;
          }
          Conn* c = static_cast<Conn*>(p);
          if (c->dead) {
            continue;
          }
          uint32_t e = evs[i].events;
          if (e & (EPOLLHUP | EPOLLERR)) {
            close_conn(c);  // peer fully gone; nobody will read responses
            continue;
          }
          if (e & EPOLLOUT) {
            on_writable(c);
          }
          if (!c->dead && (e & EPOLLIN)) {
            on_readable(c);
          }
        }
        // Drain the ready list to empty: processing may unpause connections
        // whose buffered frames must run this wakeup (no new socket event
        // will re-announce bytes that are already in the rx buffer).
        while (!ready.empty()) {
          process();
        }
        reap();
        reap_idle();
      }
      // Steered work may have been shipped to us as we were exiting; finish
      // it so origins spinning on it can stop. (They also steal unstarted
      // jobs back once stopping_ is set — this is the cooperative half.)
      drain_jobs();
    }

   private:
    // ---- accept & adopt ------------------------------------------------
    void accept_ready() {
      for (;;) {
        int fd = ::accept4(server.listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          return;  // EAGAIN, or transient (ECONNABORTED/EMFILE): just stop
        }
        unsigned target = rr_next++ % static_cast<unsigned>(server.workers_.size());
        if (target == id) {
          adopt(fd);
        } else {
          server.workers_[target]->add_connection(fd);
        }
      }
    }

    void drain_wake() {
      uint64_t v;
      ssize_t r = ::read(wakefd, &v, sizeof(v));
      (void)r;
    }

    void adopt_pending() {
      adopted.clear();
      {
        std::lock_guard<std::mutex> lock(mu);
        adopted.swap(pending);
      }
      for (PendingConn& p : adopted) {
        adopt(p.fd, std::move(p.carry), p.routed);
      }
    }

    void adopt(int fd, std::string carry = std::string(), bool routed = false) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      c->idx = conns.size();
      c->events = EPOLLIN;
      c->routed = routed;
      c->last_active_ns = now_ns();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = c.get();
      if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        return;
      }
      if (!carry.empty()) {
        // A migrated connection arrives with every unconsumed rx byte —
        // complete frames first in line, any trailing partial frame resumed
        // by the decoder — so per-connection op order survives the move.
        c->rx.append(carry);
      }
      conns.push_back(std::move(c));
      if (conns.back()->rx.size() > 0) {
        queue_ready(conns.back().get());  // run the carried frames this wakeup
      }
    }

    // ---- per-connection IO ---------------------------------------------
    // Read-side fairness: one connection may fill at most this much of its
    // rx buffer per wakeup; level-triggered epoll re-announces the rest.
    static constexpr size_t kReadBudget = 256 << 10;

    void on_readable(Conn* c) {
      if (c->paused || c->closing || c->proto_error || c->eof) {
        return;  // interest should be off; ignore a straggling event
      }
      size_t budget = kReadBudget;
      bool got = false;
      while (budget > 0) {
        size_t chunk = budget < (64 << 10) ? budget : (64 << 10);
        ssize_t r = c->rx.fill(c->fd, chunk);
        if (r > 0) {
          budget -= static_cast<size_t>(r);
          got = true;
          if (static_cast<size_t>(r) < chunk) {
            break;  // short read: drained; skip the EAGAIN probe (LT epoll
                    // re-announces anything that races in behind us)
          }
          continue;
        }
        if (r == 0) {
          c->eof = true;
          break;
        }
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        close_conn(c);  // hard error (ECONNRESET, ...): drop everything
        return;
      }
      if (got || c->eof) {
        queue_ready(c);
      }
    }

    void on_writable(Conn* c) {
      bool was_paused = c->paused;
      flush_and_update(c);
      if (!c->dead && was_paused && !c->paused && c->rx.size() > 0) {
        queue_ready(c);  // buffered frames can progress again
      }
    }

    void queue_ready(Conn* c) {
      if (!c->queued) {
        c->queued = true;
        ready.push_back(c);
      }
    }

    // Flush the tx ring as far as the socket allows, recompute backpressure
    // state, and re-arm epoll interest.
    void flush_and_update(Conn* c) {
      while (!c->tx.empty()) {
        ssize_t n = c->tx.flush(c->fd);
        if (n < 0) {
          if (errno == EINTR) {
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          }
          close_conn(c);
          return;
        }
        if (n == 0) {
          break;
        }
      }
      if (c->tx.empty() && c->closing) {
        close_conn(c);
        return;
      }
      if (c->closing) {
        c->paused = false;
      } else if (c->tx.size() > server.opt_.tx_highwater) {
        c->paused = true;  // stop reading this client until it drains us
      } else if (c->paused && c->tx.size() <= server.opt_.tx_highwater / 2) {
        c->paused = false;
      }
      update_interest(c);
    }

    void update_interest(Conn* c) {
      uint32_t want = 0;
      if (!c->paused && !c->closing && !c->proto_error && !c->eof) {
        want |= EPOLLIN;
      }
      if (!c->tx.empty()) {
        want |= EPOLLOUT;
      }
      if (want != c->events) {
        epoll_event ev{};
        ev.events = want;
        ev.data.ptr = c;
        ::epoll_ctl(epfd, EPOLL_CTL_MOD, c->fd, &ev);
        c->events = want;
      }
    }

    void close_conn(Conn* c) {
      if (c->dead) {
        return;
      }
      ::close(c->fd);  // also removes it from the epoll set
      c->dead = true;
      dying.push_back(c);
    }

    void reap() {
      for (Conn* c : dying) {
        size_t i = c->idx;
        conns[i] = std::move(conns.back());
        conns[i]->idx = i;
        conns.pop_back();
      }
      dying.clear();
    }

    // The idle sweep: close every connection that has gone a full
    // idle_timeout_ms without completing a frame. Paced to a quarter of the
    // window so the scan cost stays negligible even with many connections.
    void reap_idle() {
      if (server.opt_.idle_timeout_ms == 0 || conns.empty()) {
        return;
      }
      uint64_t window_ns = server.opt_.idle_timeout_ms * 1000000ull;
      uint64_t now = now_ns();
      if (now - last_idle_sweep_ns < window_ns / 4) {
        return;
      }
      last_idle_sweep_ns = now;
      for (auto& cp : conns) {
        Conn* c = cp.get();
        if (c->dead || c->closing) {
          continue;  // already on its way out
        }
        if (now - c->last_active_ns >= window_ns) {
          if constexpr (requires { session.ti().counters(); }) {
            session.ti().counters().inc(Counter::kNetIdleReaped);
          }
          server.idle_reaped_.fetch_add(1, std::memory_order_relaxed);
          close_conn(c);
        }
      }
      reap();
    }

    // ---- parse ----------------------------------------------------------
    // Parses every complete frame buffered on c into the worker's op list.
    // Nothing is consumed yet: op keys are views into the rx buffer and must
    // survive until the batch executes. Returns bytes ready to consume.
    size_t parse_frames(Conn* c) {
      size_t consumed = 0;
      while (ops.size() < kRoundOpsBudget) {
        std::string_view body;
        size_t flen = 0;
        netframe::FrameStatus st =
            netframe::decode_frame(c->rx.view(), consumed, &body, &flen);
        if (st == netframe::FrameStatus::kNeedMore) {
          break;
        }
        if (st == netframe::FrameStatus::kTooBig || !parse_frame(body)) {
          // Oversized length prefix or malformed op body: the stream cannot
          // be resynchronized. The connection gets one kRejected frame and a
          // close; the worker and its other connections are untouched.
          c->proto_error = true;
          break;
        }
        consumed += flen;
      }
      return consumed;
    }

    // Parses one frame body's ops; on any malformed op, rolls the pools back
    // to the frame start and reports failure.
    bool parse_frame(std::string_view body) {
      size_t op_start = ops.size();
      size_t cols_start = cols_pool.size();
      size_t upd_start = upd_pool.size();
      size_t keys_start = keys_pool.size();
      size_t wcnt_start = wcnt_pool.size();
      netwire::Reader r(body);
      if (r.done()) {
        ParsedOp p;
        p.empty_frame = true;
        p.frame_end = true;
        ops.push_back(p);
        return true;
      }
      while (!r.done()) {
        if (!parse_op(r)) {
          ops.resize(op_start);
          cols_pool.resize(cols_start);
          upd_pool.resize(upd_start);
          keys_pool.resize(keys_start);
          wcnt_pool.resize(wcnt_start);
          return false;
        }
      }
      ops.back().frame_end = true;
      return true;
    }

    bool parse_op(netwire::Reader& r) {
      uint8_t opcode;
      if (!r.read(&opcode)) {
        return false;
      }
      ParsedOp p;
      p.op = static_cast<NetOp>(opcode);
      switch (p.op) {
        case NetOp::kGet: {
          uint32_t klen;
          uint16_t ncols;
          if (!r.read(&klen) || !r.read_bytes(klen, &p.key) || !r.read(&ncols)) {
            return false;
          }
          p.cols_off = static_cast<uint32_t>(cols_pool.size());
          p.cols_cnt = ncols;
          for (uint16_t i = 0; i < ncols; ++i) {
            uint16_t col;
            if (!r.read(&col)) {
              return false;
            }
            cols_pool.push_back(col);
          }
          break;
        }
        case NetOp::kPut: {
          uint32_t klen;
          uint16_t ncols;
          if (!r.read(&klen) || !r.read_bytes(klen, &p.key) || !r.read(&ncols)) {
            return false;
          }
          p.upd_off = static_cast<uint32_t>(upd_pool.size());
          p.upd_cnt = ncols;
          for (uint16_t i = 0; i < ncols; ++i) {
            uint16_t col;
            uint32_t len;
            std::string_view data;
            if (!r.read(&col) || !r.read(&len) || !r.read_bytes(len, &data)) {
              return false;
            }
            upd_pool.push_back(ColumnUpdate{col, data});
          }
          break;
        }
        case NetOp::kRemove: {
          uint32_t klen;
          if (!r.read(&klen) || !r.read_bytes(klen, &p.key)) {
            return false;
          }
          break;
        }
        case NetOp::kScan: {
          uint32_t klen;
          if (!r.read(&klen) || !r.read_bytes(klen, &p.key) || !r.read(&p.scan_limit) ||
              !r.read(&p.scan_col)) {
            return false;
          }
          p.rejected = p.scan_limit > kMaxScanLimit;
          break;
        }
        case NetOp::kPing:
          break;
        case NetOp::kMultiGet: {
          uint16_t ncols;
          if (!r.read(&ncols)) {
            return false;
          }
          p.cols_off = static_cast<uint32_t>(cols_pool.size());
          p.cols_cnt = ncols;
          for (uint16_t i = 0; i < ncols; ++i) {
            uint16_t col;
            if (!r.read(&col)) {
              return false;
            }
            cols_pool.push_back(col);
          }
          uint16_t count;
          if (!r.read(&count)) {
            return false;
          }
          p.keys_off = static_cast<uint32_t>(keys_pool.size());
          p.keys_cnt = count;
          for (uint16_t i = 0; i < count; ++i) {
            uint32_t klen;
            std::string_view key;
            if (!r.read(&klen) || !r.read_bytes(klen, &key)) {
              return false;
            }
            keys_pool.push_back(key);
          }
          p.rejected = count > kMaxMultigetBatch;
          break;
        }
        case NetOp::kMultiPut: {
          // A whole batch of puts in one op. Keys land in keys_pool, their
          // column updates back to back in upd_pool, and each key's update
          // count in wcnt_pool — per-key slices are reconstructed by walking
          // the counts. Over-cap batches parse fully (the rest of the frame
          // stays decodable) and are refused with kRejected.
          uint16_t count;
          if (!r.read(&count)) {
            return false;
          }
          p.keys_off = static_cast<uint32_t>(keys_pool.size());
          p.keys_cnt = count;
          p.upd_off = static_cast<uint32_t>(upd_pool.size());
          p.cols_off = static_cast<uint32_t>(wcnt_pool.size());
          for (uint16_t i = 0; i < count; ++i) {
            uint32_t klen;
            std::string_view key;
            uint16_t ncols;
            if (!r.read(&klen) || !r.read_bytes(klen, &key) || !r.read(&ncols)) {
              return false;
            }
            keys_pool.push_back(key);
            wcnt_pool.push_back(ncols);
            for (uint16_t c = 0; c < ncols; ++c) {
              uint16_t col;
              uint32_t len;
              std::string_view data;
              if (!r.read(&col) || !r.read(&len) || !r.read_bytes(len, &data)) {
                return false;
              }
              upd_pool.push_back(ColumnUpdate{col, data});
            }
          }
          p.upd_cnt = static_cast<uint32_t>(upd_pool.size()) - p.upd_off;
          p.rejected = count > kMaxMultigetBatch;
          break;
        }
        default:
          return false;  // unknown opcode: protocol error
      }
      ops.push_back(p);
      return true;
    }

    // ---- the batch former ----------------------------------------------
    // A round materializes at most this many parsed ops, keeping the round's
    // working set (op list, key pools, formed batch) cache-sized no matter
    // how many deeply-pipelined connections are readable at once. Parsing
    // stops at a frame boundary once the budget is spent; connections with
    // complete frames still buffered simply re-queue for the next round.
    static constexpr size_t kRoundOpsBudget = 32 << 10;

    void process() {
      plist.assign(ready.begin(), ready.end());
      ready.clear();
      ops.clear();
      cols_pool.clear();
      upd_pool.clear();
      keys_pool.clear();
      wcnt_pool.clear();
      works.clear();
      for (Conn* c : plist) {
        c->queued = false;
        c->parsed = 0;
        if (c->dead || c->closing || c->paused || c->proto_error) {
          continue;
        }
        if (ops.size() >= kRoundOpsBudget) {
          continue;  // round full; the post-execute sweep re-queues c
        }
        uint32_t begin = static_cast<uint32_t>(ops.size());
        size_t cols_mark = cols_pool.size();
        size_t upd_mark = upd_pool.size();
        size_t keys_mark = keys_pool.size();
        size_t wcnt_mark = wcnt_pool.size();
        c->parsed = parse_frames(c);
        if (c->parsed > 0) {
          // Only a COMPLETE frame counts as liveness; bytes trickling in
          // below a frame boundary never refresh the idle clock.
          c->last_active_ns = now_ns();
        }
        if (server.opt_.affinity_routing && !c->routed && !c->proto_error &&
            !c->eof && server.workers_.size() > 1 && ops.size() > begin) {
          unsigned owner;
          if (first_keyed_owner(begin, &owner)) {
            if (owner == id) {
              c->routed = true;  // landed right; never re-examine
            } else {
              // Re-steer the whole connection to its first key's owner: roll
              // the parse back, unhook the fd WITHOUT closing it, and ship
              // it (plus every unconsumed rx byte) to the owner.
              ops.resize(begin);
              cols_pool.resize(cols_mark);
              upd_pool.resize(upd_mark);
              keys_pool.resize(keys_mark);
              wcnt_pool.resize(wcnt_mark);
              c->parsed = 0;
              migrate(c, owner);
              continue;
            }
          }
          // No keyed op yet (pings / empty frames): execute locally and keep
          // the connection unrouted until a keyed frame shows up.
        }
        if (ops.size() > begin) {
          works.push_back(ConnWork{c, begin, static_cast<uint32_t>(ops.size()), false, 0});
        }
      }

      execute_rounds();

      for (Conn* c : plist) {
        if (c->dead) {
          continue;
        }
        if (c->parsed > 0) {
          c->rx.consume(c->parsed);  // op views die here, after execution
          c->parsed = 0;
        }
        if (c->proto_error && !c->closing) {
          uint64_t pos = c->tx.reserve_u32();
          c->tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kRejected));
          c->tx.patch_u32(pos, 1);
          c->closing = true;
        }
        if (c->eof) {
          // Peer finished writing (a trailing partial frame is a mid-request
          // disconnect and is simply dropped); flush what we owe, then close.
          c->closing = true;
        }
        flush_and_update(c);
        if (!c->dead && !c->closing && !c->paused && has_complete_frame(c)) {
          queue_ready(c);  // frames left behind by the round budget
        }
      }
    }

    // Scans this connection's freshly-parsed ops for the first one naming a
    // key and reports that key's owning worker. False if none do (pings).
    bool first_keyed_owner(uint32_t begin, unsigned* owner) const {
      for (size_t i = begin; i < ops.size(); ++i) {
        const ParsedOp& p = ops[i];
        if (p.empty_frame || p.op == NetOp::kPing) {
          continue;
        }
        std::string_view key = p.key;
        if (p.op == NetOp::kMultiGet || p.op == NetOp::kMultiPut) {
          if (p.keys_cnt == 0) {
            continue;
          }
          key = keys_pool[p.keys_off];
        }
        *owner = route_worker(key, static_cast<unsigned>(server.workers_.size()));
        return true;
      }
      return false;
    }

    // Hand the connection to `owner`: the fd leaves our epoll set unclosed,
    // and the dead local Conn is reaped at end of wakeup. The carry string
    // is the one allocation a migration costs, paid once per connection.
    void migrate(Conn* c, unsigned owner) {
      ::epoll_ctl(epfd, EPOLL_CTL_DEL, c->fd, nullptr);
      int fd = c->fd;
      std::string carry(c->rx.view());
      c->dead = true;  // fd ownership transfers; dtor must not close it
      dying.push_back(c);
      server.workers_[owner]->add_connection(fd, std::move(carry), /*routed=*/true);
    }

    bool has_complete_frame(const Conn* c) const {
      std::string_view body;
      size_t flen = 0;
      return netframe::decode_frame(c->rx.view(), 0, &body, &flen) ==
             netframe::FrameStatus::kFrame;
    }

    // Alternating rounds: every connection contributes its maximal run of
    // batchable reads to the shared read batch, its maximal run of batchable
    // writes to the shared write batch, or executes its scans/pings inline —
    // so per connection ops run strictly in order (one run per connection
    // per round, reads executing before writes within the round), while
    // reads from MANY connections coalesce into one multiget and writes
    // into one multiput.
    void execute_rounds() {
      uint64_t executed = 0;
      bool more = true;
      while (more) {
        more = false;
        batch_keys.clear();
        batch_refs.clear();
        wbatch_refs.clear();
        store_ops.clear();
        for (uint32_t w = 0; w < works.size(); ++w) {
          ConnWork& cw = works[w];
          if (cw.next >= cw.end || cw.c->dead) {
            continue;
          }
          more = true;
          if (batchable(ops[cw.next])) {
            while (cw.next < cw.end && batchable(ops[cw.next])) {
              ParsedOp& p = ops[cw.next];
              BatchRef ref{w, cw.next, static_cast<uint32_t>(batch_keys.size()), 0};
              if (p.op == NetOp::kGet) {
                ref.nkeys = 1;
                batch_keys.push_back(p.key);
              } else {  // kMultiGet
                ref.nkeys = p.keys_cnt;
                for (uint32_t i = 0; i < p.keys_cnt; ++i) {
                  batch_keys.push_back(keys_pool[p.keys_off + i]);
                }
              }
              batch_refs.push_back(ref);
              ++cw.next;
            }
          } else if (wbatchable(ops[cw.next])) {
            if constexpr (HasMultiput<StoreT>) {
              while (cw.next < cw.end && wbatchable(ops[cw.next])) {
                ParsedOp& p = ops[cw.next];
                WBatchRef ref{w, cw.next, static_cast<uint32_t>(store_ops.size()), 0};
                if (p.op == NetOp::kPut) {
                  ref.nops = 1;
                  push_store_op(p.key, p.upd_off, p.upd_cnt, /*remove=*/false);
                } else if (p.op == NetOp::kRemove) {
                  ref.nops = 1;
                  push_store_op(p.key, 0, 0, /*remove=*/true);
                } else {  // kMultiPut: one store op per wire entry
                  ref.nops = p.keys_cnt;
                  uint32_t uo = p.upd_off;
                  for (uint32_t i = 0; i < p.keys_cnt; ++i) {
                    uint32_t cnt = wcnt_pool[p.cols_off + i];
                    push_store_op(keys_pool[p.keys_off + i], uo, cnt,
                                  /*remove=*/false);
                    uo += cnt;
                  }
                }
                wbatch_refs.push_back(ref);
                ++cw.next;
              }
            }
          } else {
            while (cw.next < cw.end && !batchable(ops[cw.next]) &&
                   !wbatchable(ops[cw.next])) {
              execute_inline(cw, ops[cw.next]);
              ++cw.next;
              ++executed;
            }
          }
        }
        if (!batch_refs.empty()) {
          execute_batch();
          executed += batch_refs.size();
        }
        if (!wbatch_refs.empty()) {
          execute_wbatch();
          executed += wbatch_refs.size();
        }
      }
      if (executed > 0) {
        server.ops_served_.fetch_add(executed, std::memory_order_relaxed);
      }
    }

    static bool batchable(const ParsedOp& p) {
      return !p.empty_frame && !p.rejected &&
             (p.op == NetOp::kGet || p.op == NetOp::kMultiGet);
    }

    static bool wbatchable(const ParsedOp& p) {
      if constexpr (!HasMultiput<StoreT>) {
        return false;  // writes stay inline for backends without the seam
      }
      return !p.empty_frame && !p.rejected &&
             (p.op == NetOp::kPut || p.op == NetOp::kRemove ||
              p.op == NetOp::kMultiPut);
    }

    // Appends one StoreT::PutOp to the forming write batch. The updates span
    // points into upd_pool, which is append-only until the round executes.
    void push_store_op(std::string_view key, uint32_t upd_off, uint32_t upd_cnt,
                       bool remove) {
      if constexpr (HasMultiput<StoreT>) {
        typename StoreT::PutOp op;
        op.key = key;
        op.updates =
            std::span<const ColumnUpdate>(upd_pool.data() + upd_off, upd_cnt);
        op.remove = remove;
        store_ops.push_back(op);
      }
    }

    // Executes the formed batch through the engine's pipelined read path in
    // chunks of at most kMaxMultigetBatch keys, each under one epoch guard
    // (rows are epoch-protected pointers; encoding happens inside the guard).
    void execute_batch() {
      if (batch_refs.size() >= 2) {
        if constexpr (HasMultigetRows<StoreT>) {
          session.ti().counters().inc(Counter::kNetBatchedGets, batch_keys.size());
        }
        server.batched_gets_.fetch_add(batch_keys.size(), std::memory_order_relaxed);
        server.batches_formed_.fetch_add(1, std::memory_order_relaxed);
      }
      size_t ref_begin = 0;
      while (ref_begin < batch_refs.size()) {
        size_t ref_end = ref_begin;
        size_t nkeys = 0;
        while (ref_end < batch_refs.size() &&
               nkeys + batch_refs[ref_end].nkeys <= kMaxMultigetBatch) {
          nkeys += batch_refs[ref_end].nkeys;
          ++ref_end;
        }
        if (ref_end == ref_begin) {
          ++ref_end;  // single over-cap ref cannot happen (kMultiGet is capped)
        }
        execute_chunk(ref_begin, ref_end);
        ref_begin = ref_end;
      }
    }

    void execute_chunk(size_t ref_begin, size_t ref_end) {
      size_t key_off = batch_refs[ref_begin].key_off;
      size_t nkeys =
          batch_refs[ref_end - 1].key_off + batch_refs[ref_end - 1].nkeys - key_off;
      if constexpr (HasMultigetRows<StoreT>) {
        batch_rows.resize(nkeys);
        EpochGuard guard(session.ti().slot());
        if (server.opt_.affinity_routing && server.workers_.size() > 1) {
          steer_chunk(key_off, nkeys);
        } else {
          server.store_.multiget_rows(
              std::span<const std::string_view>(batch_keys).subspan(key_off, nkeys),
              batch_rows.data(), session);
          keyed.fetch_add(nkeys, std::memory_order_relaxed);
        }
        for (size_t r = ref_begin; r < ref_end; ++r) {
          encode_batch_ref(batch_refs[r],
                           [&](size_t key_idx, netframe::TxRing& tx, uint32_t cols_off,
                               uint32_t cols_cnt) {
                             encode_row(tx, batch_rows[key_idx - key_off], cols_off,
                                        cols_cnt);
                           });
        }
      } else {
        // §6.3-style backends without the batched seam: plain sequential
        // gets, but the event-loop and framing behavior stays identical.
        keyed.fetch_add(nkeys, std::memory_order_relaxed);
        for (size_t r = ref_begin; r < ref_end; ++r) {
          encode_batch_ref(batch_refs[r], [&](size_t key_idx, netframe::TxRing& tx,
                                              uint32_t cols_off, uint32_t cols_cnt) {
            col_scratch.assign(cols_pool.begin() + cols_off,
                               cols_pool.begin() + cols_off + cols_cnt);
            bool found =
                server.store_.get(batch_keys[key_idx], col_scratch, &cols_out, session);
            if (!found) {
              tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kNotFound));
              return;
            }
            tx.template put<uint8_t>(0);
            tx.template put<uint16_t>(static_cast<uint16_t>(cols_out.size()));
            for (const auto& v : cols_out) {
              tx.template put<uint32_t>(static_cast<uint32_t>(v.size()));
              tx.append(v);
            }
          });
        }
      }
    }

    // ---- per-key affinity steering (kMultiGet and cross-conn batches) ---
    // Partition the chunk's keys by owning worker: the local slice runs on
    // this worker's session, remote slices ship as RemoteGetJobs through the
    // owners' mailboxes (existing eventfd wake path). The caller's epoch
    // guard stays pinned across ship -> wait -> encode, which is what makes
    // the owner-written Row pointers safe to read here: any row an owner
    // could still reach was retired no earlier than one epoch before our
    // pin, and reclaim frees only two epochs past the retire — impossible
    // while we stay pinned.
    void steer_chunk(size_t key_off, size_t nkeys) {
      unsigned nw = static_cast<unsigned>(server.workers_.size());
      if (steer_keys.size() < nw) {
        steer_keys.resize(nw);
        steer_rows.resize(nw);
        steer_map.resize(nw);
      }
      for (unsigned o = 0; o < nw; ++o) {
        steer_keys[o].clear();
        steer_map[o].clear();
      }
      for (size_t i = 0; i < nkeys; ++i) {
        std::string_view k = batch_keys[key_off + i];
        unsigned o = route_worker(k, nw);
        steer_keys[o].push_back(k);
        steer_map[o].push_back(static_cast<uint32_t>(i));
      }
      std::atomic<uint32_t> done{0};
      uint32_t njobs = 0;
      for (unsigned o = 0; o < nw; ++o) {
        if (o == id || steer_keys[o].empty()) {
          continue;
        }
        steer_rows[o].assign(steer_keys[o].size(), nullptr);
        Worker& w = *server.workers_[o];
        {
          std::lock_guard<std::mutex> lock(w.jobs_mu);
          w.jobs.push_back(RemoteGetJob{steer_keys[o].data(), steer_keys[o].size(),
                                        steer_rows[o].data(), &done});
        }
        w.wake();
        ++njobs;
        server.steered_gets_.fetch_add(steer_keys[o].size(),
                                       std::memory_order_relaxed);
      }
      if (!steer_keys[id].empty()) {
        steer_rows[id].assign(steer_keys[id].size(), nullptr);
        server.store_.multiget_rows(
            std::span<const std::string_view>(steer_keys[id]),
            steer_rows[id].data(), session);
        keyed.fetch_add(steer_keys[id].size(), std::memory_order_relaxed);
      }
      // Wait for the owners, draining OUR mailbox meanwhile (two workers
      // steering into each other would otherwise deadlock); once stopping_
      // is set, also steal our unstarted jobs back from workers that may
      // already have left their loops.
      while (done.load(std::memory_order_acquire) < njobs) {
        if (drain_jobs() == 0) {
          if (server.stopping_.load(std::memory_order_acquire)) {
            steal_back(&done);
          }
          std::this_thread::yield();
        }
      }
      for (unsigned o = 0; o < nw; ++o) {
        for (size_t j = 0; j < steer_map[o].size(); ++j) {
          batch_rows[steer_map[o][j]] = steer_rows[o][j];
        }
      }
    }

    // ---- the write batch -------------------------------------------------
    // Executes the formed write batch through the store's pipelined write
    // path in chunks of at most kMaxMultigetBatch ops. Store::multiput takes
    // its own epoch guard and performs its own grouped log append; response
    // flags are read back from the PutOps afterwards.
    void execute_wbatch() {
      if constexpr (HasMultiput<StoreT>) {
        if (wbatch_refs.size() >= 2) {
          session.ti().counters().inc(Counter::kNetBatchedPuts, store_ops.size());
          server.batched_puts_.fetch_add(store_ops.size(), std::memory_order_relaxed);
          server.wbatches_formed_.fetch_add(1, std::memory_order_relaxed);
        }
        size_t ref_begin = 0;
        while (ref_begin < wbatch_refs.size()) {
          size_t ref_end = ref_begin;
          size_t nops = 0;
          while (ref_end < wbatch_refs.size() &&
                 nops + wbatch_refs[ref_end].nops <= kMaxMultigetBatch) {
            nops += wbatch_refs[ref_end].nops;
            ++ref_end;
          }
          if (ref_end == ref_begin) {
            ++ref_end;  // single over-cap ref cannot happen (kMultiPut is capped)
          }
          execute_wchunk(ref_begin, ref_end);
          ref_begin = ref_end;
        }
      }
    }

    void execute_wchunk(size_t ref_begin, size_t ref_end) {
      if constexpr (HasMultiput<StoreT>) {
        size_t op_off = wbatch_refs[ref_begin].op_off;
        size_t nops = wbatch_refs[ref_end - 1].op_off +
                      wbatch_refs[ref_end - 1].nops - op_off;
        if (server.opt_.affinity_routing && server.workers_.size() > 1) {
          steer_wchunk(op_off, nops);
        } else {
          server.store_.multiput(
              std::span<typename StoreT::PutOp>(store_ops).subspan(op_off, nops),
              session);
          keyed.fetch_add(nops, std::memory_order_relaxed);
        }
        for (size_t r = ref_begin; r < ref_end; ++r) {
          encode_wbatch_ref(wbatch_refs[r]);
        }
      }
    }

    // Write-side affinity steering: partition the chunk's ops by owning
    // worker (same route_worker hash as reads, so a key's writes land on the
    // core that owns its cache traffic). Remote slices ship as
    // RemoteWriteJobs; each owner applies its slice through its own session
    // — separate Store::multiput calls, separate log shards, per-key version
    // order still correct because one key always hashes to one owner. The
    // origin spins draining its own mailbox (two workers steering into each
    // other would otherwise deadlock) and steals unstarted jobs back once
    // the server is stopping.
    void steer_wchunk(size_t op_off, size_t nops) {
      if constexpr (HasMultiput<StoreT>) {
        unsigned nw = static_cast<unsigned>(server.workers_.size());
        if (steer_wops.size() < nw) {
          steer_wops.resize(nw);
          steer_wmap.resize(nw);
        }
        for (unsigned o = 0; o < nw; ++o) {
          steer_wops[o].clear();
          steer_wmap[o].clear();
        }
        for (size_t i = 0; i < nops; ++i) {
          const typename StoreT::PutOp& op = store_ops[op_off + i];
          unsigned o = route_worker(op.key, nw);
          steer_wops[o].push_back(op);
          steer_wmap[o].push_back(static_cast<uint32_t>(i));
        }
        std::atomic<uint32_t> done{0};
        uint32_t njobs = 0;
        for (unsigned o = 0; o < nw; ++o) {
          if (o == id || steer_wops[o].empty()) {
            continue;
          }
          Worker& w = *server.workers_[o];
          {
            std::lock_guard<std::mutex> lock(w.jobs_mu);
            w.wjobs.push_back(RemoteWriteJob{steer_wops[o].data(),
                                             steer_wops[o].size(), &done});
          }
          w.wake();
          ++njobs;
          server.steered_puts_.fetch_add(steer_wops[o].size(),
                                         std::memory_order_relaxed);
        }
        if (!steer_wops[id].empty()) {
          server.store_.multiput(std::span<typename StoreT::PutOp>(steer_wops[id]),
                                 session);
          keyed.fetch_add(steer_wops[id].size(), std::memory_order_relaxed);
        }
        while (done.load(std::memory_order_acquire) < njobs) {
          if (drain_jobs() == 0) {
            if (server.stopping_.load(std::memory_order_acquire)) {
              steal_back_writes(&done);
            }
            std::this_thread::yield();
          }
        }
        for (unsigned o = 0; o < nw; ++o) {
          for (size_t j = 0; j < steer_wmap[o].size(); ++j) {
            typename StoreT::PutOp& dst = store_ops[op_off + steer_wmap[o][j]];
            dst.inserted = steer_wops[o][j].inserted;
            dst.found = steer_wops[o][j].found;
            if constexpr (requires { dst.rejected; }) {
              dst.rejected = steer_wops[o][j].rejected;
            }
          }
        }
      }
    }

    // A multiput backend whose PutOp carries the read-only out-flag (Store)
    // reports per-op refusal; others can never refuse.
    template <typename Op>
    static bool op_rejected(const Op& op) {
      if constexpr (requires { op.rejected; }) {
        return op.rejected;
      } else {
        return false;
      }
    }

    // Encodes one batched write op's response, byte-identical to the inline
    // encodings (kPut: status + inserted; kRemove: status; kMultiPut: status
    // + count-prefixed inserted flags). Ops the store refused because it had
    // degraded to read-only answer with kReadOnly and no payload — the
    // connection lives on, and its reads keep working.
    void encode_wbatch_ref(const WBatchRef& ref) {
      if constexpr (HasMultiput<StoreT>) {
        ConnWork& cw = works[ref.work];
        if (cw.c->dead) {
          return;
        }
        const ParsedOp& p = ops[ref.opi];
        netframe::TxRing& tx = cw.c->tx;
        open_frame(cw);
        if (p.op == NetOp::kPut) {
          if (op_rejected(store_ops[ref.op_off])) {
            tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kReadOnly));
          } else {
            tx.template put<uint8_t>(0);
            tx.template put<uint8_t>(store_ops[ref.op_off].inserted ? 1 : 0);
          }
        } else if (p.op == NetOp::kRemove) {
          tx.template put<uint8_t>(
              op_rejected(store_ops[ref.op_off])
                  ? static_cast<uint8_t>(NetStatus::kReadOnly)
                  : (store_ops[ref.op_off].found
                         ? 0
                         : static_cast<uint8_t>(NetStatus::kNotFound)));
        } else {  // kMultiPut
          bool any_rejected = false;
          for (uint32_t i = 0; i < ref.nops; ++i) {
            if (op_rejected(store_ops[ref.op_off + i])) {
              any_rejected = true;
              break;
            }
          }
          if (any_rejected) {
            // The batch hit the read-only trip. Entries steered to a worker
            // whose multiput ran before the trip may have applied; the wire
            // reports the refusal (kReadOnly is a degraded mode, not a
            // transaction abort).
            tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kReadOnly));
          } else {
            tx.template put<uint8_t>(0);
            tx.template put<uint16_t>(static_cast<uint16_t>(ref.nops));
            for (uint32_t i = 0; i < ref.nops; ++i) {
              tx.template put<uint8_t>(store_ops[ref.op_off + i].inserted ? 1 : 0);
            }
          }
        }
        maybe_close_frame(cw, p);
      }
    }

    // Runs every job in this worker's mailbox on this worker's own session.
    // Called from the wake path, from the steer wait loops, and once after
    // the event loop exits.
    size_t drain_jobs() {
      size_t n = 0;
      if constexpr (HasMultigetRows<StoreT>) {
        {
          std::lock_guard<std::mutex> lock(jobs_mu);
          jobs_scratch.swap(jobs);
        }
        for (const RemoteGetJob& j : jobs_scratch) {
          EpochGuard guard(session.ti().slot());
          server.store_.multiget_rows(
              std::span<const std::string_view>(j.keys, j.nkeys), j.rows, session);
          keyed.fetch_add(j.nkeys, std::memory_order_relaxed);
          j.done->fetch_add(1, std::memory_order_release);
        }
        n += jobs_scratch.size();
        jobs_scratch.clear();
      }
      if constexpr (HasMultiput<StoreT>) {
        {
          std::lock_guard<std::mutex> lock(jobs_mu);
          wjobs_scratch.swap(wjobs);
        }
        for (const RemoteWriteJob& j : wjobs_scratch) {
          server.store_.multiput(
              std::span<typename StoreT::PutOp>(
                  static_cast<typename StoreT::PutOp*>(j.ops), j.nops),
              session);
          keyed.fetch_add(j.nops, std::memory_order_relaxed);
          j.done->fetch_add(1, std::memory_order_release);
        }
        n += wjobs_scratch.size();
        wjobs_scratch.clear();
      }
      return n;
    }

    // Shutdown path: reclaim OUR shipped jobs (matched by done pointer) from
    // mailboxes nobody may drain again, and run them locally.
    void steal_back(std::atomic<uint32_t>* done) {
      if constexpr (HasMultigetRows<StoreT>) {
        for (auto& wp : server.workers_) {
          Worker& w = *wp;
          if (&w == this) {
            continue;
          }
          std::lock_guard<std::mutex> lock(w.jobs_mu);
          for (size_t i = 0; i < w.jobs.size();) {
            if (w.jobs[i].done != done) {
              ++i;
              continue;
            }
            RemoteGetJob j = w.jobs[i];
            w.jobs[i] = w.jobs.back();
            w.jobs.pop_back();
            EpochGuard guard(session.ti().slot());
            server.store_.multiget_rows(
                std::span<const std::string_view>(j.keys, j.nkeys), j.rows, session);
            keyed.fetch_add(j.nkeys, std::memory_order_relaxed);
            j.done->fetch_add(1, std::memory_order_release);
          }
        }
      }
    }

    // Shutdown path, write side: reclaim OUR shipped write jobs from
    // mailboxes nobody may drain again, and run them locally.
    void steal_back_writes(std::atomic<uint32_t>* done) {
      if constexpr (HasMultiput<StoreT>) {
        for (auto& wp : server.workers_) {
          Worker& w = *wp;
          if (&w == this) {
            continue;
          }
          std::lock_guard<std::mutex> lock(w.jobs_mu);
          for (size_t i = 0; i < w.wjobs.size();) {
            if (w.wjobs[i].done != done) {
              ++i;
              continue;
            }
            RemoteWriteJob j = w.wjobs[i];
            w.wjobs[i] = w.wjobs.back();
            w.wjobs.pop_back();
            server.store_.multiput(
                std::span<typename StoreT::PutOp>(
                    static_cast<typename StoreT::PutOp*>(j.ops), j.nops),
                session);
            keyed.fetch_add(j.nops, std::memory_order_relaxed);
            j.done->fetch_add(1, std::memory_order_release);
          }
        }
      }
    }

    // Encodes one batched read op's response (kGet: one result; kMultiGet:
    // count-prefixed results) via `result(key_idx, tx, cols_off, cols_cnt)`.
    template <typename ResultFn>
    void encode_batch_ref(const BatchRef& ref, ResultFn&& result) {
      ConnWork& cw = works[ref.work];
      if (cw.c->dead) {
        return;
      }
      const ParsedOp& p = ops[ref.opi];
      netframe::TxRing& tx = cw.c->tx;
      open_frame(cw);
      if (p.op == NetOp::kGet) {
        result(ref.key_off, tx, p.cols_off, p.cols_cnt);
      } else {
        tx.template put<uint8_t>(0);
        tx.template put<uint16_t>(static_cast<uint16_t>(ref.nkeys));
        for (uint32_t i = 0; i < ref.nkeys; ++i) {
          // kMultiGet wraps each result in a found byte; reuse the single-get
          // encoding (status 0 == found, kNotFound == absent) by translating.
          uint64_t mark = tx.end();
          result(ref.key_off + i, tx, p.cols_off, p.cols_cnt);
          translate_multiget_status(tx, mark);
        }
      }
      maybe_close_frame(cw, p);
    }

    // The single-get result encoding starts with a status byte (0 found /
    // kNotFound absent); kMultiGet's per-key encoding starts with a found
    // byte (1 found / 0 absent). A not-found single-get result is exactly one
    // byte, so flipping the leading byte in place is a full translation.
    static void translate_multiget_status(netframe::TxRing& tx, uint64_t status_pos) {
      tx.patch_u8(status_pos, tx.peek_u8(status_pos) == 0 ? 1 : 0);
    }

    void encode_row(netframe::TxRing& tx, const Row* row, uint32_t cols_off,
                    uint32_t cols_cnt) {
      if (row == nullptr) {
        tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kNotFound));
        return;
      }
      tx.template put<uint8_t>(0);
      if (cols_cnt == 0) {
        tx.template put<uint16_t>(static_cast<uint16_t>(row->ncols()));
        for (unsigned c = 0; c < row->ncols(); ++c) {
          std::string_view v = row->col(c);
          tx.template put<uint32_t>(static_cast<uint32_t>(v.size()));
          tx.append(v);
        }
      } else {
        tx.template put<uint16_t>(static_cast<uint16_t>(cols_cnt));
        for (uint32_t i = 0; i < cols_cnt; ++i) {
          std::string_view v = row->col(cols_pool[cols_off + i]);
          tx.template put<uint32_t>(static_cast<uint32_t>(v.size()));
          tx.append(v);
        }
      }
    }

    // ---- inline ops (writes, scans, pings, rejections) ------------------
    void execute_inline(ConnWork& cw, const ParsedOp& p) {
      netframe::TxRing& tx = cw.c->tx;
      open_frame(cw);
      if (p.empty_frame) {
        maybe_close_frame(cw, p);
        return;
      }
      if (p.rejected) {
        // Parsed (the rest of the frame stays decodable) but refused.
        tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kRejected));
        maybe_close_frame(cw, p);
        return;
      }
      if (p.op != NetOp::kPing) {
        keyed.fetch_add(1, std::memory_order_relaxed);
      }
      switch (p.op) {
        case NetOp::kPut: {
          upd_scratch.assign(upd_pool.begin() + p.upd_off,
                             upd_pool.begin() + p.upd_off + p.upd_cnt);
          if constexpr (HasCheckedWrites<StoreT>) {
            auto pr = server.store_.put_checked(p.key, upd_scratch, session);
            if (pr == StoreT::PutResult::kReadOnly) {
              tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kReadOnly));
            } else {
              tx.template put<uint8_t>(0);
              tx.template put<uint8_t>(pr == StoreT::PutResult::kInserted ? 1 : 0);
            }
          } else {
            bool inserted = server.store_.put(p.key, upd_scratch, session);
            tx.template put<uint8_t>(0);
            tx.template put<uint8_t>(inserted ? 1 : 0);
          }
          break;
        }
        case NetOp::kRemove: {
          if constexpr (HasCheckedWrites<StoreT>) {
            auto rr = server.store_.remove_checked(p.key, session);
            tx.template put<uint8_t>(
                rr == StoreT::RemoveResult::kReadOnly
                    ? static_cast<uint8_t>(NetStatus::kReadOnly)
                    : (rr == StoreT::RemoveResult::kRemoved
                           ? 0
                           : static_cast<uint8_t>(NetStatus::kNotFound)));
          } else {
            bool removed = server.store_.remove(p.key, session);
            tx.template put<uint8_t>(
                removed ? 0 : static_cast<uint8_t>(NetStatus::kNotFound));
          }
          break;
        }
        case NetOp::kScan: {
          tx.template put<uint8_t>(0);
          uint64_t count_pos = tx.reserve_u32();
          uint32_t count = 0;
          // Streams whole border-node snapshots from the store's ScanCursor;
          // each emitted pair is encoded straight into the tx ring.
          server.store_.getrange(
              p.key, p.scan_limit, p.scan_col,
              [&](std::string_view k, std::string_view v, const Row*) {
                tx.template put<uint32_t>(static_cast<uint32_t>(k.size()));
                tx.append(k);
                tx.template put<uint32_t>(static_cast<uint32_t>(v.size()));
                tx.append(v);
                ++count;
                return true;
              },
              session);
          tx.patch_u32(count_pos, count);
          break;
        }
        case NetOp::kPing:
          tx.template put<uint8_t>(0);
          break;
        case NetOp::kMultiPut: {
          // Only reached for backends without the batched-write seam
          // (wbatchable() routes it to the write batch otherwise): plain
          // sequential puts, wire behavior identical.
          if constexpr (HasCheckedWrites<StoreT>) {
            if (server.store_.read_only()) {
              tx.template put<uint8_t>(static_cast<uint8_t>(NetStatus::kReadOnly));
              break;
            }
          }
          tx.template put<uint8_t>(0);
          tx.template put<uint16_t>(static_cast<uint16_t>(p.keys_cnt));
          uint32_t uo = p.upd_off;
          for (uint32_t i = 0; i < p.keys_cnt; ++i) {
            uint32_t cnt = wcnt_pool[p.cols_off + i];
            upd_scratch.assign(upd_pool.begin() + uo, upd_pool.begin() + uo + cnt);
            uo += cnt;
            bool inserted = false;
            if constexpr (HasCheckedWrites<StoreT>) {
              inserted = server.store_.put_checked(keys_pool[p.keys_off + i],
                                                   upd_scratch, session) ==
                         StoreT::PutResult::kInserted;
            } else {
              inserted =
                  server.store_.put(keys_pool[p.keys_off + i], upd_scratch, session);
            }
            tx.template put<uint8_t>(inserted ? 1 : 0);
          }
          break;
        }
        default:
          break;  // unreachable: gets/multigets go through the batch
      }
      maybe_close_frame(cw, p);
    }

    void open_frame(ConnWork& cw) {
      if (!cw.frame_open) {
        cw.frame_len_pos = cw.c->tx.reserve_u32();
        cw.frame_open = true;
      }
    }

    void maybe_close_frame(ConnWork& cw, const ParsedOp& p) {
      if (p.frame_end) {
        cw.c->tx.patch_u32(
            cw.frame_len_pos,
            static_cast<uint32_t>(cw.c->tx.end() - cw.frame_len_pos - sizeof(uint32_t)));
        cw.frame_open = false;
      }
    }

   public:
    BasicServer& server;
    unsigned id;
    typename StoreT::Session session;
    std::thread thread;
    std::atomic<bool> stop{false};
    // Keyed ops whose tree/store work ran on this worker's session (the
    // affinity tests read this cross-thread through keyed_ops()).
    std::atomic<uint64_t> keyed{0};

   private:
    struct PendingConn {
      int fd;
      std::string carry;  // unconsumed rx bytes travelling with a migration
      bool routed;
    };

    int epfd = -1;
    int wakefd = -1;
    char wake_tag = 0;    // epoll data tags (address identity only)
    char listen_tag = 0;
    unsigned rr_next = 0;  // accepting worker's round-robin cursor
    uint64_t last_idle_sweep_ns = 0;
    std::mutex mu;
    std::vector<PendingConn> pending;  // handed off by other workers
    std::vector<std::unique_ptr<Conn>> conns;
    // Steered-multiget/multiput mailboxes: other workers push under jobs_mu
    // + wake(); only this worker's thread (or a stopping_ steal-back)
    // removes entries.
    std::mutex jobs_mu;
    std::vector<RemoteGetJob> jobs;
    std::vector<RemoteGetJob> jobs_scratch;
    std::vector<RemoteWriteJob> wjobs;
    std::vector<RemoteWriteJob> wjobs_scratch;
    // Per-owner steering scratch; job pointers point into these, which stay
    // stable until every job's done counter is bumped.
    std::vector<std::vector<std::string_view>> steer_keys;
    std::vector<std::vector<const Row*>> steer_rows;
    std::vector<std::vector<uint32_t>> steer_map;
    std::vector<typename netdetail::PutOpPool<StoreT>::type> steer_wops;
    std::vector<std::vector<uint32_t>> steer_wmap;
    // Reusable per-wakeup scratch: capacity persists, so the steady state
    // parses and batches without allocating.
    std::vector<PendingConn> adopted;
    std::vector<Conn*> ready, plist, dying;
    std::vector<ParsedOp> ops;
    std::vector<unsigned> cols_pool;
    std::vector<ColumnUpdate> upd_pool;
    std::vector<std::string_view> keys_pool;
    std::vector<ConnWork> works;
    std::vector<std::string_view> batch_keys;
    std::vector<BatchRef> batch_refs;
    std::vector<const Row*> batch_rows;
    std::vector<uint32_t> wcnt_pool;  // kMultiPut per-key column counts
    std::vector<WBatchRef> wbatch_refs;
    typename netdetail::PutOpPool<StoreT>::type store_ops;
    std::vector<ColumnUpdate> upd_scratch;
    std::vector<unsigned> col_scratch;
    std::vector<std::string> cols_out;
  };

  StoreT& store_;
  Options opt_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> ops_served_{0};
  std::atomic<uint64_t> batched_gets_{0};
  std::atomic<uint64_t> batches_formed_{0};
  std::atomic<uint64_t> steered_gets_{0};
  std::atomic<uint64_t> batched_puts_{0};
  std::atomic<uint64_t> wbatches_formed_{0};
  std::atomic<uint64_t> steered_puts_{0};
  std::atomic<uint64_t> idle_reaped_{0};
};

// If Store::multiget_rows/multiput ever drift away from their concepts, the
// server would silently degrade network gets/puts to sequential store calls —
// make that a compile error for the canonical backend instead.
static_assert(HasMultigetRows<Store>);
static_assert(HasMultiput<Store>);

using Server = BasicServer<Store>;

}  // namespace masstree

#endif  // MASSTREE_NET_SERVER_H_
