// RecordCache — fixed-capacity, latch-free hot-key record cache in front of
// the tree (the ROADMAP's Figure 11 item; Deuteronomy 2.0's record-caching +
// latch-freedom shape, the web-cache papers' front-cache placement).
//
// Each entry remembers where a key's value LIVES — (border node, slot) — plus
// the border's version word observed at fill time and the epoch the filling
// guard was pinned at. A hit never trusts cached value bytes: it re-reads the
// slot's live value word (so in-place updates are always fresh) and then
// re-validates the border with the same changed_since() check the lookup
// cursor uses — any split, slot reuse, removal, layer push-down, or node
// deletion since the fill dirties or bumps the version word and kills the
// entry instead of serving stale data. Strict consistency is inherited from
// the §4.5 protocol, not re-invented beside it.
//
// Why the cached node pointer is safe to dereference: an entry is valid for a
// reader whose guard is pinned at epoch C only if the fill epoch F >= C.
//   * A node reachable and cleanly version-validated during the fill guard
//     (pinned at F) was retired, if ever, at epoch R >= F - 1: the retirer
//     holds its own guard, whose pin blocks the global epoch from running
//     more than one step ahead of it (the gated advance in epoch/epoch.h).
//   * reclaim() frees a retired node only once min_active >= R + 2 >= F + 1.
//   * C <= F means the global epoch never reached F + 1 before the reader
//     pinned (epochs are monotone), so the node was not yet freed — and from
//     then on the reader's own pin holds min_active <= C <= F < F + 1, which
//     blocks the free until the reader leaves. The check needs nothing but
//     the reader's own already-pinned slot value; no extra fences.
// F >= C would fail within one epoch tick (~4096 guarded ops) if the cache
// did nothing else, making entries die as fast as they are filled. So the
// cache registers ONE epoch slot of its own and keeps it pinned: a pin at P
// caps the global epoch at P + 1, so every entry filled while the pin holds
// stays valid for every reader until the cache "rotates" the pin forward.
// Rotation happens every kMaintPeriod misses per thread (fill-driven) and on
// maintain() (the Store's background maintenance thread ticks it), trading a
// bounded reclamation delay — limbo waits at most a rotation period longer —
// for entry lifetimes of tens of thousands of operations. Expired entries are
// refreshed in place by the next miss (one ordinary descent per key per
// rotation), and admission never gates a refresh.
//
// Cache-hostile traffic (uniform gets over a keyspace far larger than the
// table) cannot be served by any policy, so it must not be taxed either: each
// thread tracks its own hit rate over kBypassWindow-attempt windows, and when
// it drops below 1/32 (~3%, under the hit-vs-descent break-even) the thread
// stops probing and filling on 15 of 16 ops — those descend directly, counted
// as ordinary misses. The sampled ops keep measuring, so a workload that
// turns hot re-enables full probing within a few windows.
//
// Structure: an open-addressed power-of-two array of 64-byte (one cache line)
// entries probed kWays at a time, fronted by a byte-per-entry tag array so a
// uniform-miss probe usually touches ONE tag line and no entry lines at all —
// the cache must not tax the cold-get path it cannot serve. Entries are
// published with a seqlock whose fields are all relaxed atomics (TSan-clean);
// readers take no locks and write nothing but the CLOCK ref hint. New keys
// claim empty ways freely; displacing a live entry requires a TinyLFU-style
// frequency-sketch estimate to clear the admission threshold, so one-shot
// keys don't evict genuinely hot ones. Eviction is CLOCK second-chance over
// the probe group — zero steady-state allocation.

#ifndef MASSTREE_CACHE_RECORD_CACHE_H_
#define MASSTREE_CACHE_RECORD_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>

#include "core/node.h"
#include "core/threadinfo.h"
#include "core/version.h"
#include "util/compiler.h"
#include "util/counters.h"

namespace masstree {

// Stream hash used by the network server's partition-affinity routing
// (hash(key) % nworkers). The cache indexes its buckets with a faster hash
// over the packed key words (hash_words below); the two don't need to agree —
// affinity comes from the same keys reaching the same worker, wherever their
// entries land in that worker's (shared) table.
inline uint64_t key_hash64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a, then a splitmix-style mix
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

template <typename C>
class RecordCache {
 public:
  using Border = BorderNode<C>;
  using Version = VersionValue;

  struct Config {
    // Entry count (64 bytes each); rounded up to a power of two, min kWays.
    size_t capacity = 1 << 16;
    // Minimum sketch estimate before a missed key may DISPLACE a live entry;
    // <= 1 admits every miss (tests use that for determinism). Refreshing an
    // already-cached key and claiming an empty way are never gated.
    uint32_t admit_threshold = 4;
    // Only 1-in-2^shift bucket-full misses consult (and bump) the admission
    // sketch; the rest are rejected outright. Relative key frequencies are
    // preserved under uniform sampling, and the sketch RMW leaves the
    // cold-get fast path. 0 = every miss (tests use that for determinism).
    unsigned gate_sample_shift = 2;
  };

  static constexpr size_t kMaxInlineKey = 32;  // longer keys bypass the cache
  static constexpr unsigned kWays = 4;         // probe group = one bucket

  explicit RecordCache(Config cfg = Config())
      : cfg_(cfg),
        mask_(round_pow2(std::max<size_t>(cfg.capacity, kWays)) - 1),
        entries_(new Entry[mask_ + 1]),
        tags_(new std::atomic<uint8_t>[mask_ + 1]()),
        sketch_mask_(std::max<size_t>(kSketchMinWidth, 4 * (mask_ + 1)) - 1),
        sketch_(new std::atomic<uint8_t>[sketch_mask_ + 1]()) {}

  ~RecordCache() {
    EpochSlot* p = pin_.load(std::memory_order_acquire);
    if (p != nullptr) {
      p->active.store(0, std::memory_order_release);
      pin_mgr_.load(std::memory_order_acquire)->unregister_thread(p);
    }
  }

  RecordCache(const RecordCache&) = delete;
  RecordCache& operator=(const RecordCache&) = delete;

  size_t capacity() const { return mask_ + 1; }
  uint32_t admit_threshold() const { return cfg_.admit_threshold; }

  // Probe for `key`. MUST be called with the caller's EpochGuard held on
  // ti.slot(); on a validated hit *value receives the slot's LIVE value word.
  // Exactly one of kCacheHits / kCacheMisses is counted per call, so
  // hit_pct = hits / (hits + misses) over any window; bypass-skipped calls
  // count as misses (the op does go to the tree). On a short-key miss that
  // actually probed, *h_out (if non-null) receives the internal hash so the
  // caller can hand it back to fill() and skip a second pack+hash of the
  // same key; on bypass-skipped and long-key misses it is left untouched, so
  // a caller that zero-initialized it can elide the fill() call outright.
  bool lookup(std::string_view key, uint64_t* value, ThreadContext& ti,
              uint64_t* h_out = nullptr) {
    ThreadCounters& ctrs = ti.counters();
    if (key.size() > kMaxInlineKey) {
      ctrs.inc(Counter::kCacheMisses);
      return false;
    }
    assert(ti.slot().active.load(std::memory_order_relaxed) != 0 &&
           "lookup requires the caller's EpochGuard");
    BypassState& bs = bypass_state(id_);
    if (bs.bypassed && (++bs.skip & kBypassSampleMask) != 0) {
      // This thread's hit rate is under break-even: skip the probe (and the
      // paired fill) on unsampled ops — a plain descent, a plain miss.
      bs.fill_ok = false;
      ctrs.inc(Counter::kCacheMisses);
      return false;
    }
    bs.fill_ok = true;
    if (++bs.attempts >= kBypassWindow) {
      bs.bypassed = (bs.window_hits << kBypassHitShift) < bs.attempts;
      bs.attempts = 0;
      bs.window_hits = 0;
    }
    uint64_t kw[kWords];
    pack_key(key, kw);
    uint64_t h = hash_words(kw, key.size());
    if (h_out != nullptr) {
      *h_out = h;
    }
    uint8_t tag = tag_of(h);
    size_t base = bucket_base(h);
    for (unsigned w = 0; w < kWays; ++w) {
      if (tags_[base + w].load(std::memory_order_relaxed) != tag) {
        continue;  // the tag filter keeps cold probes off the entry lines
      }
      Entry& e = entries_[base + w];
      uint32_t s1 = e.seq.load(std::memory_order_acquire);
      if (s1 & 1) {
        continue;  // a writer owns it right now; treat as absent
      }
      uint32_t meta = e.meta.load(std::memory_order_relaxed);
      uint64_t ekw[kWords];
      for (size_t i = 0; i < kWords; ++i) {
        ekw[i] = e.kw[i].load(std::memory_order_relaxed);
      }
      void* np = e.node.load(std::memory_order_relaxed);
      uint32_t ver = e.ver.load(std::memory_order_relaxed);
      uint64_t ep = e.epoch.load(std::memory_order_relaxed);
      acquire_fence();  // TSan-safe seqlock fence (util/compiler.h)
      if (e.seq.load(std::memory_order_relaxed) != s1) {
        continue;  // torn snapshot; the entry is being rewritten
      }
      if ((meta & kLenMask) != key.size() + 1 || !words_equal(ekw, kw)) {
        continue;
      }
      // The key is cached. From here on this call resolves to exactly one
      // hit or one miss — duplicates in later ways are benign leftovers.
      if (ep < ti.slot().active.load(std::memory_order_relaxed)) {
        // Fill-epoch expired: the node pointer is no longer provably alive
        // (see the header proof). Miss; the refill refreshes this entry.
        ctrs.inc(Counter::kCacheMisses);
        return false;
      }
      const Border* n = static_cast<const Border*>(np);
      int slot = static_cast<int>((meta >> kSlotShift) & kSlotMask);
      // Read the live value BEFORE validating (the cursor's validate-after-
      // read discipline); the acquire lv load keeps the version load below it.
      uint64_t lv = n->lv(slot);
      if (n->version().changed_since(Version(ver))) {
        ctrs.inc(Counter::kCacheInvalidations);
        ctrs.inc(Counter::kCacheMisses);
        erase_if_unchanged(base + w, s1);
        return false;
      }
      if (!(meta & kRefBit)) {
        e.meta.fetch_or(kRefBit, std::memory_order_relaxed);  // CLOCK hint
      }
      ctrs.inc(Counter::kCacheHits);
      ++bs.window_hits;
      *value = lv;
      return true;
    }
    ctrs.inc(Counter::kCacheMisses);
    return false;
  }

  // Publish (key -> node/slot/version) after a successful descent. MUST run
  // under the SAME EpochGuard whose lookup validated `ver` against `node`:
  // the guard slot's pinned epoch is stamped into the entry and bounds when
  // the node pointer may be dereferenced again.
  // `h_hint`, when non-null, is the hash lookup() just produced for this key
  // (the Tree's get path threads it through so a miss packs+hashes once).
  void fill(std::string_view key, Border* node, Version ver, int slot, ThreadContext& ti,
            const uint64_t* h_hint = nullptr) {
    if (key.size() > kMaxInlineKey || slot < 0 || node == nullptr) {
      return;
    }
    BypassState& bs = bypass_state(id_);
    if (!bs.fill_ok) {
      return;  // the paired lookup was bypass-skipped; so is this fill
    }
    uint64_t miss_count = maybe_maintain(ti, bs);
    uint64_t kw[kWords];
    pack_key(key, kw);
    uint64_t h = h_hint != nullptr ? *h_hint : hash_words(kw, key.size());
    uint8_t tag = tag_of(h);
    size_t base = bucket_base(h);
    // Pass 1: the key is already cached — refresh that entry in place (also
    // the epoch-expiry refresh path; never admission-gated).
    for (unsigned w = 0; w < kWays; ++w) {
      if (tags_[base + w].load(std::memory_order_relaxed) != tag) {
        continue;
      }
      Entry& e = entries_[base + w];
      uint32_t s1 = e.seq.load(std::memory_order_acquire);
      if (s1 & 1) {
        continue;
      }
      uint32_t meta = e.meta.load(std::memory_order_relaxed);
      uint64_t ekw[kWords];
      for (size_t i = 0; i < kWords; ++i) {
        ekw[i] = e.kw[i].load(std::memory_order_relaxed);
      }
      acquire_fence();  // TSan-safe seqlock fence (util/compiler.h)
      if (e.seq.load(std::memory_order_relaxed) != s1 ||
          (meta & kLenMask) != key.size() + 1 || !words_equal(ekw, kw)) {
        continue;
      }
      uint32_t s = s1;
      if (!e.seq.compare_exchange_strong(s, s + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        return;  // a racing fill owns the entry; its publish is as good
      }
      publish(e, base + w, kw, key.size(), node, ver, slot, tag,
              meta & kRefBit, ti);
      return;
    }
    // Pass 2: claim an empty way (ungated: filling unused space costs no one).
    for (unsigned w = 0; w < kWays; ++w) {
      if (tags_[base + w].load(std::memory_order_relaxed) != 0) {
        continue;
      }
      Entry& e = entries_[base + w];
      uint32_t s = e.seq.load(std::memory_order_relaxed);
      if ((s & 1) != 0 ||
          !e.seq.compare_exchange_strong(s, s + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        continue;
      }
      if (e.meta.load(std::memory_order_relaxed) != 0) {
        // A racer filled this way between the tag read and our claim; put
        // the seqlock back (bumped; concurrent readers just retry as a miss).
        e.seq.store(s + 2, std::memory_order_release);
        continue;
      }
      publish(e, base + w, kw, key.size(), node, ver, slot, tag, 0, ti);
      return;
    }
    // The bucket is full of other keys: displacing one is gated by the
    // admission sketch so a one-shot key can't churn the resident hot set.
    // Most misses don't even consult the sketch (see gate_sample_shift).
    if (cfg_.admit_threshold > 1) {
      if ((miss_count & ((uint64_t{1} << cfg_.gate_sample_shift) - 1)) != 0) {
        return;
      }
      if (sketch_bump(h) < cfg_.admit_threshold) {
        return;  // not yet hot enough to displace anything
      }
    }
    // Pass 3: CLOCK second-chance across the probe group, starting at the
    // shared hand for fairness. After one full lap every ref bit is clear, so
    // the second lap always picks a victim.
    size_t vi = base;
    bool found = false;
    unsigned start = hand_.fetch_add(1, std::memory_order_relaxed) % kWays;
    for (unsigned i = 0; i < 2 * kWays && !found; ++i) {
      size_t idx = base + (start + i) % kWays;
      uint32_t meta = entries_[idx].meta.load(std::memory_order_relaxed);
      if (meta & kRefBit) {
        entries_[idx].meta.fetch_and(~kRefBit, std::memory_order_relaxed);
      } else {
        vi = idx;
        found = true;
      }
    }
    if (!found) {
      vi = base + start;
    }
    // Claim via the seqlock; losing the race just skips this fill.
    Entry& e = entries_[vi];
    uint32_t s = e.seq.load(std::memory_order_relaxed);
    if ((s & 1) != 0 ||
        !e.seq.compare_exchange_strong(s, s + 1, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return;
    }
    uint32_t old_meta = e.meta.load(std::memory_order_relaxed);
    bool displaced_other = false;
    if (old_meta != 0) {
      uint64_t okw[kWords];
      for (size_t i = 0; i < kWords; ++i) {
        okw[i] = e.kw[i].load(std::memory_order_relaxed);
      }
      displaced_other =
          (old_meta & kLenMask) != key.size() + 1 || !words_equal(okw, kw);
    }
    if (displaced_other) {
      ti.counters().inc(Counter::kCacheEvictions);
    }
    publish(e, vi, kw, key.size(), node, ver, slot, tag, 0, ti);
  }

  // Rotate the cache's epoch pin forward so reclamation behind it can drain.
  // The Store's background maintenance thread ticks this (via the tree's
  // run_maintenance); fill() also rotates every kMaintPeriod misses so raw
  // Tree users get it for free. Entries stamped under the old pin expire for
  // readers as the global epoch moves on and are refreshed on their next miss.
  void maintain() { rotate(); }

  // Drop every entry (tests / reconfiguration; not a hot path).
  void clear() {
    for (size_t i = 0; i <= mask_; ++i) {
      Entry& e = entries_[i];
      uint32_t s = e.seq.load(std::memory_order_relaxed);
      if ((s & 1) == 0 &&
          e.seq.compare_exchange_strong(s, s + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        e.meta.store(0, std::memory_order_relaxed);
        tags_[i].store(0, std::memory_order_relaxed);
        e.seq.store(s + 2, std::memory_order_release);
      }
    }
    for (size_t i = 0; i <= sketch_mask_; ++i) {
      sketch_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kWords = kMaxInlineKey / sizeof(uint64_t);
  // meta: bits 0..7 = key length + 1 (0 = empty entry, so the empty key is
  // representable), bits 8..11 = slot, bit 16 = CLOCK ref hint.
  static constexpr uint32_t kLenMask = 0xFFu;
  static constexpr unsigned kSlotShift = 8;
  static constexpr uint32_t kSlotMask = 0xFu;
  static constexpr uint32_t kRefBit = 1u << 16;
  // Per-thread misses between maintenance ticks (pin rotation + sketch
  // reset): with T threads missing at similar rates, ticks land every
  // ~kMaintPeriod GLOBAL misses regardless of T.
  static constexpr uint64_t kMaintPeriod = 16 * 1024;

  // ---- adaptive bypass (see the header comment) ----------------------
  // A hit saves a descent (hundreds of ns); a fruitless probe+fill costs a
  // few tens. Break-even is a hit rate of a few percent, so full probing is
  // kept only while the windowed rate clears 1/2^kBypassHitShift.
  static constexpr uint32_t kBypassWindow = 2048;    // attempts per window
  static constexpr uint32_t kBypassHitShift = 5;     // keep probing iff >= 1/32
  static constexpr uint32_t kBypassSampleMask = 15;  // probe 1-in-16 when under

  struct BypassState {
    uint64_t cache_id = 0;
    uint32_t attempts = 0;     // probes charged to the current window
    uint32_t window_hits = 0;  // hits observed in the current window
    uint32_t skip = 0;         // sampling wheel while bypassed
    bool bypassed = false;
    bool fill_ok = true;       // did the latest lookup actually probe?
    uint64_t last_maint = 0;   // miss count at this thread's last tick
  };

  // Keyed by a process-unique cache id, never by address: a test's fresh
  // cache reusing a freed cache's address must not inherit bypass state.
  static BypassState& bypass_state(uint64_t id) {
    static thread_local BypassState bs;
    if (bs.cache_id != id) {
      bs = BypassState{};
      bs.cache_id = id;
    }
    return bs;
  }

  static uint64_t next_cache_id() {
    static std::atomic<uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  struct alignas(kCacheLineSize) Entry {
    std::atomic<uint32_t> seq{0};   // seqlock: odd while a writer owns it
    std::atomic<uint32_t> meta{0};  // 0 = empty (see the bit layout above)
    std::atomic<uint64_t> kw[kWords] = {};
    std::atomic<void*> node{nullptr};
    std::atomic<uint32_t> ver{0};    // border version raw() at fill
    std::atomic<uint64_t> epoch{0};  // fill guard's pinned epoch
  };
  static_assert(sizeof(Entry) == kCacheLineSize, "one probe = one cache line");

  static size_t round_pow2(size_t v) {
    size_t p = kWays;
    while (p < v) {
      p *= 2;
    }
    return p;
  }

  // Tag = top hash byte, biased off 0 (0 marks an empty way). Purely a
  // filter: a stale or colliding tag only costs one entry-line probe (false
  // positive) or one lost refresh that the next miss retries (false negative).
  static uint8_t tag_of(uint64_t h) {
    uint8_t t = static_cast<uint8_t>(h >> 56);
    return t == 0 ? 1 : t;
  }

  static void pack_key(std::string_view key, uint64_t kw[kWords]) {
    char buf[kMaxInlineKey] = {};
    std::memcpy(buf, key.data(), key.size());
    std::memcpy(kw, buf, sizeof(buf));
  }

  // Bucket/tag/sketch hash over the packed words: four independent multiplies
  // (ILP-friendly) instead of a byte-serial stream hash — this runs on every
  // cached-tree get, hit or miss. Unrelated to key_hash64, which the network
  // server keeps for partition routing; the two never need to agree.
  static uint64_t hash_words(const uint64_t kw[kWords], size_t len) {
    uint64_t h = kw[0] * 0x9E3779B97F4A7C15ull ^ kw[1] * 0xC2B2AE3D27D4EB4Full ^
                 kw[2] * 0x165667B19E3779F9ull ^ kw[3] * 0x27D4EB2F165667C5ull ^
                 (static_cast<uint64_t>(len) << 56);
    h ^= h >> 32;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 29;
    return h;
  }

  static bool words_equal(const uint64_t a[kWords], const uint64_t b[kWords]) {
    uint64_t diff = 0;
    for (size_t i = 0; i < kWords; ++i) {
      diff |= a[i] ^ b[i];
    }
    return diff == 0;
  }

  size_t bucket_base(uint64_t h) const {
    return static_cast<size_t>(h) & mask_ & ~static_cast<size_t>(kWays - 1);
  }

  // Write the entry's fields and release it; the caller already holds the
  // seqlock at `e.seq == old even value + 1`.
  void publish(Entry& e, size_t idx, const uint64_t kw[kWords], size_t klen,
               Border* node, Version ver, int slot, uint8_t tag,
               uint32_t ref_bit, ThreadContext& ti) {
    for (size_t i = 0; i < kWords; ++i) {
      e.kw[i].store(kw[i], std::memory_order_relaxed);
    }
    e.node.store(node, std::memory_order_relaxed);
    e.ver.store(ver.raw(), std::memory_order_relaxed);
    e.epoch.store(ti.slot().active.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    e.meta.store(static_cast<uint32_t>(klen + 1) |
                     (static_cast<uint32_t>(slot) << kSlotShift) | ref_bit,
                 std::memory_order_relaxed);
    e.seq.store(e.seq.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
    tags_[idx].store(tag, std::memory_order_relaxed);
  }

  // Invalidation: clear the entry, but only if it still holds the snapshot we
  // validated (the seq CAS fails if a concurrent fill already rewrote it).
  void erase_if_unchanged(size_t idx, uint32_t seen_seq) {
    Entry& e = entries_[idx];
    uint32_t s = seen_seq;
    if (e.seq.compare_exchange_strong(s, s + 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      e.meta.store(0, std::memory_order_relaxed);
      tags_[idx].store(0, std::memory_order_relaxed);
      e.seq.store(seen_seq + 2, std::memory_order_release);
    }
  }

  // ---- epoch pin + periodic maintenance -------------------------------
  // The pin is registered lazily on the first fill so the cache binds to the
  // same EpochManager as the tree's threads (tests run private managers). If
  // every slot is taken the cache degrades gracefully: entries then expire
  // within one epoch tick, which is correct, just cold.
  // Returns the calling thread's running miss count (reused by the gate's
  // sampler so the hot path reads the counter once). The trigger compares
  // against the thread's last tick rather than testing an exact boundary:
  // bypass-skipped ops advance the miss counter without reaching fill, so
  // exact multiples of kMaintPeriod can be stepped over.
  uint64_t maybe_maintain(ThreadContext& ti, BypassState& bs) {
    uint64_t m = ti.counters().get(Counter::kCacheMisses);
    if (pin_.load(std::memory_order_acquire) == nullptr) {
      register_pin(ti);
      bs.last_maint = m;
      return m;
    }
    if (m - bs.last_maint >= kMaintPeriod) {
      bs.last_maint = m;
      rotate();
      for (size_t i = 0; i <= sketch_mask_; ++i) {
        sketch_[i].store(0, std::memory_order_relaxed);  // zero-reset window
      }
    }
    return m;
  }

  void register_pin(ThreadContext& ti) {
    std::lock_guard<std::mutex> lock(pin_mu_);
    if (pin_.load(std::memory_order_relaxed) != nullptr) {
      return;
    }
    EpochManager& mgr = ti.epochs();
    EpochSlot* slot = mgr.register_thread();
    if (slot == nullptr) {
      return;
    }
    // Yieldable: a thread blocked in unregister_thread (its limbo can't drain
    // while we gate the epoch) may force-rotate this pin instead of spinning.
    slot->yieldable.store(true, std::memory_order_release);
    slot->active.store(mgr.current_epoch(), std::memory_order_release);
    pin_mgr_.store(&mgr, std::memory_order_release);
    pin_.store(slot, std::memory_order_release);
  }

  void rotate() {
    EpochSlot* p = pin_.load(std::memory_order_acquire);
    if (p == nullptr) {
      return;
    }
    EpochManager* mgr = pin_mgr_.load(std::memory_order_acquire);
    uint64_t cur = mgr->current_epoch();
    if (p->active.load(std::memory_order_relaxed) != cur) {
      // Racing rotates may briefly store an older epoch; that only makes the
      // pin more conservative (blocks reclamation a little longer), never
      // less safe — validity is checked against reader slots, not the pin.
      p->active.store(cur, std::memory_order_release);
    }
  }

  // ---- admission sketch (TinyLFU-style) ------------------------------
  // One row of byte counters, four per cache entry, zeroed every maintenance
  // tick so stale popularity ages out. All relaxed; increments may be lost
  // under races — the sketch is a heuristic frequency filter, not a source
  // of truth. Only SAMPLED bucket-full misses reach it (hits never call
  // fill; refreshes and empty-way claims return earlier; gate_sample_shift
  // rejects the rest outright), which keeps both the sketch RMW and the
  // spurious-admission rate off the cold-get fast path.
  static constexpr size_t kSketchMinWidth = 4096;  // power of two
  static constexpr uint8_t kSketchCap = 250;

  uint32_t sketch_bump(uint64_t h) {
    std::atomic<uint8_t>& c = sketch_[(h >> 20) & sketch_mask_];
    uint8_t v = c.load(std::memory_order_relaxed);
    if (v < kSketchCap) {
      c.store(v + 1, std::memory_order_relaxed);
    }
    return static_cast<uint32_t>(v) + 1;  // estimate after this bump
  }

  Config cfg_;
  size_t mask_;
  std::unique_ptr<Entry[]> entries_;
  std::unique_ptr<std::atomic<uint8_t>[]> tags_;  // 0 = empty way
  size_t sketch_mask_;
  std::unique_ptr<std::atomic<uint8_t>[]> sketch_;
  std::atomic<unsigned> hand_{0};  // CLOCK starting-way fairness
  uint64_t id_ = next_cache_id();  // keys the per-thread bypass state
  std::atomic<EpochSlot*> pin_{nullptr};
  std::atomic<EpochManager*> pin_mgr_{nullptr};
  std::mutex pin_mu_;
};

}  // namespace masstree

#endif  // MASSTREE_CACHE_RECORD_CACHE_H_
