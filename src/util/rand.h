// Deterministic fast PRNGs and the skewed distributions the paper's
// evaluation uses: uniform keys (§6.1), Zipfian key popularity for the
// MYCSB workloads (§7), and the single-parameter partition skew of
// Hua et al. used by Figure 11 (§6.6).

#ifndef MASSTREE_UTIL_RAND_H_
#define MASSTREE_UTIL_RAND_H_

#include <cmath>
#include <cstdint>

namespace masstree {

// xoshiro256** — fast, high-quality, and reproducible across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, the reference initialization for xoshiro.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t next_range(uint64_t n) { return next() % n; }

  // Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipfian generator over [0, n) with parameter theta (YCSB uses 0.99),
// following Gray et al., "Quickly generating billion-record synthetic
// databases" — the same construction YCSB's ZipfianGenerator uses.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta = 0.99, uint64_t seed = 1)
      : rng_(seed), n_(n), theta_(theta) {
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
  }

  uint64_t next() {
    double u = rng_.next_double();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    double v = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
    uint64_t r = static_cast<uint64_t>(v);
    return r >= n_ ? n_ - 1 : r;
  }

  // Scrambled variant: spreads popular items across the key space, as YCSB
  // does, so hot keys are not lexicographic neighbours.
  uint64_t next_scrambled() { return fnv1a(next()) % n_; }

  static uint64_t fnv1a(uint64_t x) {
    uint64_t h = 14695981039346656037ull;
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  static double zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  Rng rng_;
  uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

// Figure 11's partition skew (after Hua et al. [22]): with P partitions and
// skew delta, partition 0 receives (delta + 1) times the request share of each
// of the other P-1 partitions.
class PartitionSkew {
 public:
  PartitionSkew(unsigned partitions, double delta, uint64_t seed = 1)
      : rng_(seed), partitions_(partitions), hot_share_((delta + 1.0) / (delta + partitions)) {}

  // Returns the partition for the next request.
  unsigned next_partition() {
    if (rng_.next_double() < hot_share_) {
      return 0;
    }
    return 1 + static_cast<unsigned>(rng_.next_range(partitions_ - 1));
  }

  double hot_share() const { return hot_share_; }

 private:
  Rng rng_;
  unsigned partitions_;
  double hot_share_;
};

}  // namespace masstree

#endif  // MASSTREE_UTIL_RAND_H_
