// Low-level compiler and memory-model helpers shared by every module.
//
// Masstree's read path never writes shared memory (§4.4 of the paper); its
// correctness rests on carefully placed fences and relaxed atomic accesses.
// The helpers here name those idioms so call sites read like the paper's
// pseudocode.

#ifndef MASSTREE_UTIL_COMPILER_H_
#define MASSTREE_UTIL_COMPILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace masstree {

#define MT_LIKELY(x) __builtin_expect(!!(x), 1)
#define MT_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Hardware cache line size on every platform we target (§6.1: 64-byte lines).
inline constexpr size_t kCacheLineSize = 64;

// ThreadSanitizer does not model (or support, see gcc -Wtsan) standalone
// atomic_thread_fence; under TSan each fence becomes a read-modify-write with
// the equivalent ordering on a process-global dummy, which TSan understands.
#if defined(__SANITIZE_THREAD__)
#define MT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MT_TSAN 1
#endif
#endif

#if defined(MT_TSAN)
namespace detail {
inline std::atomic<unsigned> tsan_fence_sync{0};
}
inline void thread_fence(std::memory_order order) {
  detail::tsan_fence_sync.fetch_add(0, order);
}
#else
inline void thread_fence(std::memory_order order) { std::atomic_thread_fence(order); }
#endif

// Acquire fence: order a preceding relaxed load before subsequent accesses.
// Used after snapshotting a node version (Fig 4's stableversion).
inline void acquire_fence() { thread_fence(std::memory_order_acquire); }

// Release fence: order preceding writes before a subsequent publishing store.
// Used before permutation/version stores that make writer changes visible
// (§4.6.2: "A compiler fence, and on some architectures a machine fence
// instruction, is required between the writes of the key and value and the
// write of the permutation").
inline void release_fence() { thread_fence(std::memory_order_release); }

// Full barrier, used only on slow paths (e.g. epoch advancement).
inline void full_fence() { thread_fence(std::memory_order_seq_cst); }

// Pause instruction for spin loops; keeps the sibling hyperthread productive
// and reduces memory-order violation flushes on x86.
inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  thread_fence(std::memory_order_seq_cst);
#endif
}

// Relaxed load of a value that concurrent writers may change underneath us.
// Every use is paired with a version or permutation validation that detects
// the race, per §4.6.
template <typename T>
inline T relaxed_load(const std::atomic<T>& v) {
  return v.load(std::memory_order_relaxed);
}

template <typename T>
inline void relaxed_store(std::atomic<T>& v, T x) {
  v.store(x, std::memory_order_relaxed);
}

}  // namespace masstree

#endif  // MASSTREE_UTIL_COMPILER_H_
