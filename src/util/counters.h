// Cache-line-padded per-thread event counters.
//
// §6.2's analysis (split retries ~1 per 10^6 inserts; insert retries ~15x
// more frequent than split retries) is reproduced by counting retry events on
// the hot paths; padding keeps the counters from becoming the contention they
// are supposed to measure.

#ifndef MASSTREE_UTIL_COUNTERS_H_
#define MASSTREE_UTIL_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "util/compiler.h"

namespace masstree {

enum class Counter : unsigned {
  kGetRetryFromRoot = 0,   // get restarted at a tree root (split or deleted node)
  kGetRetryLocal,          // get re-examined one node (insert observed)
  kGetForward,             // get followed a B-link next pointer
  kPutSplit,               // border node split
  kPutRetryFromRoot,       // put restarted at a tree root
  kLayerCreated,           // new trie layer created (§4.6.3)
  kNodeDeleted,            // border or interior node removed
  kSlotReuse,              // insert reused a removed slot (vinsert bump, §4.6.5)
  kEpochReclaims,          // objects freed by epoch GC
  kMaintenanceTasks,       // deferred empty-layer cleanups run
  kMultigetBatches,        // multiget batches executed (§4.8 pipeline)
  kMultigetRetry,          // retry events eaten by multiget cursors
  kScanNodes,              // border-node snapshots taken by scan cursors (§3)
  kScanRetries,            // scan snapshot re-validations (version changed mid-copy)
  kScanRedescents,         // scan re-located a border via reach_border (deleted
                           //   node, dead layer, or a detached cursor re-attaching)
  kScanAllocs,             // scan-cursor buffer growth events; zero on the
                           //   steady-state chain-walk path (the perf claim)
  kLogAppends,             // records encoded into a per-worker log buffer (§5)
  kLogStalls,              // appends that blocked on a full double-buffer
                           //   (both halves awaiting the logging thread)
  kLogAllocs,              // log-buffer allocation events; after the shard's
                           //   two arena halves exist the append path is
                           //   allocation-free, so steady state is zero
                           //   (same discipline as kScanAllocs)
  kLogFlushBytes,          // bytes group-committed by logging threads
  kLogBytesLogical,        // data-record bytes as if every column were
                           //   stored raw (physical + compression savings)
  kLogBytesPhysical,       // data-record bytes actually encoded (varint v2
                           //   framing, post-compression); physical/logical
                           //   is the observable compression ratio, and
                           //   physical/appends is log_bytes_per_op
  kLogCompressedRecords,   // put records with >= 1 lz-compressed column
                           //   (bail-outs on incompressible data excluded)
  kNetBatchedGets,         // gets that reached Tree::multiget via a server
                           //   batch formed across >= 2 request ops (§6.1
                           //   event loop; the cross-connection PALM claim)
  kCacheHits,              // record-cache hits (version-validated, served
                           //   without descending the tree)
  kCacheMisses,            // record-cache lookups that fell through to a
                           //   full descent (absent, expired, or invalidated)
  kCacheInvalidations,     // hits killed by border-version validation — a
                           //   concurrent split/update/remove touched the
                           //   cached slot's node (also counted as misses)
  kCacheEvictions,         // live entries displaced by CLOCK to admit a
                           //   hotter key (capacity pressure, not staleness)
  kMultiputBatches,        // multiput batches executed (§4.8 write pipeline)
  kMultiputRetries,        // multiput keys that fell back through the
                           //   single-put path (suffix conflict, full-node
                           //   split) or restarted after a dead layer
  kNetBatchedPuts,         // puts/removes that reached Store::multiput via a
                           //   server batch formed across >= 2 request ops
                           //   (§6.1; the write-side cross-connection claim)
  kStoreReadOnlyTrips,     // sticky log/checkpoint I/O errors that flipped a
                           //   Store into read-only degraded mode (once per
                           //   store lifetime; see Store::read_only())
  kWritesRejectedReadOnly, // write ops refused with kReadOnly because the
                           //   store had tripped (gets/scans keep serving)
  kNetIdleReaped,          // connections closed by the server's idle sweep
                           //   (no complete frame within idle_timeout_ms)
  kNumCounters,
};

inline constexpr unsigned kNumCounters = static_cast<unsigned>(Counter::kNumCounters);

struct alignas(kCacheLineSize) ThreadCounters {
  std::array<uint64_t, kNumCounters> c{};

  void inc(Counter which, uint64_t n = 1) { c[static_cast<unsigned>(which)] += n; }
  uint64_t get(Counter which) const { return c[static_cast<unsigned>(which)]; }
  void reset() { c.fill(0); }
};

}  // namespace masstree

#endif  // MASSTREE_UTIL_COUNTERS_H_
