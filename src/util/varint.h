// LEB128 varints + zigzag, shared by the v2 log and checkpoint framing.
//
// Encoding is canonical: the decoder rejects overlong (non-minimal)
// encodings and anything that overflows 64 bits, so every value has
// exactly one on-disk representation.  That makes record sizes
// reproducible from decoded values and keeps a crafted
// "0x80 0x80 ... 0x00" run from being parsed as a valid zero.

#ifndef MASSTREE_UTIL_VARINT_H_
#define MASSTREE_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>

namespace masstree {
namespace vint {

// A canonical u64 varint is at most 10 bytes (ceil(64 / 7)).
inline constexpr size_t kMaxBytes = 10;

inline size_t size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline char* put(char* p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  return p;
}

// Decode one varint from [p, end).  Returns the pointer past the varint,
// or nullptr if the input is truncated, overlong, or exceeds 64 bits.
inline const char* get(const char* p, const char* end, uint64_t* out) {
  uint64_t v = 0;
  unsigned shift = 0;
  const char* start = p;
  for (;;) {
    if (p == end) return nullptr;  // truncated
    uint8_t b = static_cast<uint8_t>(*p++);
    if (shift == 63 && (b & 0xfe)) return nullptr;  // 10th byte: only 0 or 1
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) {
      if (b == 0 && p - start > 1) return nullptr;  // overlong
      *out = v;
      return p;
    }
    shift += 7;
  }
}

// Zigzag maps small-magnitude signed deltas to small unsigned varints.
inline uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace vint
}  // namespace masstree

#endif  // MASSTREE_UTIL_VARINT_H_
