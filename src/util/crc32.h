// CRC-32 used to detect torn or corrupt tails when scanning logs and
// checkpoints during recovery (§5).
//
// On x86-64 with SSE4.2 this is the hardware CRC32 instruction (the
// iSCSI/Castagnoli polynomial, ~0.3 cycles/byte); elsewhere it falls back to
// a table-driven CRC over the same polynomial so encoders and decoders in
// one build always agree. The checksum guards each record's framing on the
// log append fast path, so its cost is part of the paper's "logging costs
// <10% of put throughput" budget — the byte-at-a-time IEEE table loop was
// the single largest instruction cost on that path.

#ifndef MASSTREE_UTIL_CRC32_H_
#define MASSTREE_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__x86_64__)
#include <cpuid.h>
#endif

namespace masstree {

namespace internal {

// Castagnoli (CRC-32C) table for the software fallback; the reflected
// polynomial matches the SSE4.2 crc32 instruction bit-for-bit.
inline const std::array<uint32_t, 256>& crc32c_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

inline uint32_t crc32c_sw(uint32_t c, const unsigned char* p, size_t len) {
  const auto& table = crc32c_table();
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__)

__attribute__((target("sse4.2"))) inline uint32_t crc32c_hw(uint32_t c,
                                                            const unsigned char* p,
                                                            size_t len) {
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c = static_cast<uint32_t>(__builtin_ia32_crc32di(c, chunk));
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    c = __builtin_ia32_crc32qi(c, *p);
    ++p;
    --len;
  }
  return c;
}

inline bool crc32c_have_sse42() {
  static const bool have = [] {
    unsigned eax, ebx, ecx = 0, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
      return false;
    }
    return (ecx & bit_SSE4_2) != 0;
  }();
  return have;
}

#endif  // __x86_64__

}  // namespace internal

inline uint32_t crc32(const void* data, size_t len, uint32_t seed = 0) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
#if defined(__x86_64__)
  if (internal::crc32c_have_sse42()) {
    c = internal::crc32c_hw(c, p, len);
  } else {
    c = internal::crc32c_sw(c, p, len);
  }
#else
  c = internal::crc32c_sw(c, p, len);
#endif
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t crc32(std::string_view s, uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace masstree

#endif  // MASSTREE_UTIL_CRC32_H_
