// CRC-32 (IEEE 802.3 polynomial), table-driven. Used to detect torn or
// corrupt tails when scanning logs and checkpoints during recovery (§5).

#ifndef MASSTREE_UTIL_CRC32_H_
#define MASSTREE_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace masstree {

namespace internal {
inline const std::array<uint32_t, 256>& crc32_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace internal

inline uint32_t crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto& table = internal::crc32_table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t crc32(std::string_view s, uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace masstree

#endif  // MASSTREE_UTIL_CRC32_H_
