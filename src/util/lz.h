// In-repo LZ4-block-style byte compressor for log and checkpoint values.
//
// The log's residual cost after PR 4 is write *volume* (ROADMAP:
// "Compact + compressed log/value encoding"), and ZipCache (PAPERS.md)
// makes the case that transparent compression in the storage path is a
// throughput lever.  We cannot take an external dependency, so this is a
// minimal, allocation-free implementation of the LZ4 *block* format:
//
//   sequence := token | [literal-run ext bytes] | literals
//              | 2-byte LE match offset | [match-run ext bytes]
//   token    := (literal_len << 4) | (match_len - 4), each nibble
//               saturating at 15 with 255-run extension bytes.
//
// Compressor: greedy match finder over a small stack-resident hash table
// (two-way: current + previous candidate per bucket).  It never reads
// before `src` or past `src + n`, emits matches of >= 4 bytes, and leaves
// the final 5 bytes as literals (format rule: the last match must start
// at least 12 bytes before the end in the reference implementation; we
// use the stricter-but-simple "no match in the last 5 bytes + last
// sequence is literals" rule which every LZ4 decoder accepts).
//
// compress() returns the compressed size, or 0 when the output would not
// fit in dst_cap -- callers pass dst_cap = n - 1 to get an automatic
// "incompressible, store raw" bail-out with bounded work.
//
// Decompressor: safe and bounded.  Every read and write is checked
// against the declared buffer sizes; returns false on any malformed
// input (truncated runs, offset past start, output overflow/underflow).
// Overlapping matches (offset < length, e.g. RLE with offset 1) are
// copied bytewise, which is the defined semantics.
//
// Both directions are zero-allocation: the hash table lives on the
// caller's stack frame, so the wait-free log append path can compress
// directly into the LogShard arena (Counter::kLogAllocs == 0 holds).

#ifndef MASSTREE_UTIL_LZ_H_
#define MASSTREE_UTIL_LZ_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace masstree {
namespace lz {

inline constexpr size_t kMinMatch = 4;
// Matches may not start within the last 5 bytes; those are always
// emitted as trailing literals.
inline constexpr size_t kTailLiterals = 5;
// Hash-table geometry: at most 2048 buckets x 2 ways x u32 = 16 KiB of
// stack, but the bucket count adapts downward to the input (smallest
// power of two >= n/4, floor 64) — the table must be zeroed per call, and
// a fixed 16 KiB memset would cost more than compressing a typical ~1 KiB
// log value.
inline constexpr size_t kHashBits = 11;
inline constexpr size_t kHashSize = size_t{1} << kHashBits;
inline constexpr size_t kMinHashBits = 6;

// Worst-case compressed size: one extra byte per 255 literals plus the
// leading token.  Matches LZ4_compressBound's shape.
inline constexpr size_t compress_bound(size_t n) {
  return n + n / 255 + 16;
}

namespace detail {

inline uint32_t read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t hash4(uint32_t v, unsigned bits) {
  // Fibonacci hashing; top `bits` bits.
  return (v * 2654435761u) >> (32 - bits);
}

// Emit one sequence: `lit_n` literals starting at `lit`, then (unless
// final) a match of `match_n` bytes at distance `offset`.  Returns the
// new output cursor, or nullptr if it would pass `dend`.
inline uint8_t* emit(uint8_t* d, uint8_t* dend, const uint8_t* lit,
                     size_t lit_n, size_t offset, size_t match_n) {
  size_t token_lit = lit_n < 15 ? lit_n : 15;
  size_t ext = lit_n >= 15 ? 1 + (lit_n - 15) / 255 : 0;
  // token + run extension + literals (+2 offset bytes checked later).
  if (static_cast<size_t>(dend - d) < 1 + ext + lit_n) return nullptr;
  uint8_t* token = d++;
  *token = static_cast<uint8_t>(token_lit << 4);
  if (lit_n >= 15) {
    size_t rest = lit_n - 15;
    while (rest >= 255) { *d++ = 255; rest -= 255; }
    *d++ = static_cast<uint8_t>(rest);
  }
  std::memcpy(d, lit, lit_n);
  d += lit_n;
  if (match_n == 0) return d;  // final literal-only sequence
  size_t mlen = match_n - kMinMatch;
  size_t token_m = mlen < 15 ? mlen : 15;
  size_t mext = mlen >= 15 ? 1 + (mlen - 15) / 255 : 0;
  if (static_cast<size_t>(dend - d) < 2 + mext) return nullptr;
  *d++ = static_cast<uint8_t>(offset & 0xff);
  *d++ = static_cast<uint8_t>(offset >> 8);
  *token |= static_cast<uint8_t>(token_m);
  if (mlen >= 15) {
    size_t rest = mlen - 15;
    while (rest >= 255) { *d++ = 255; rest -= 255; }
    *d++ = static_cast<uint8_t>(rest);
  }
  return d;
}

}  // namespace detail

// Compress src[0..n) into dst[0..dst_cap).  Returns the compressed size,
// or 0 if the result would exceed dst_cap (bail out, store raw).
// Zero heap allocation; 16 KiB of stack for the hash table.
inline size_t compress(const void* src_v, size_t n, void* dst_v,
                       size_t dst_cap) {
  const uint8_t* src = static_cast<const uint8_t*>(src_v);
  uint8_t* dst = static_cast<uint8_t*>(dst_v);
  uint8_t* dend = dst + dst_cap;
  if (n == 0) return 0;
  if (n < kMinMatch + kTailLiterals + 1) {
    // Too small to ever contain a match; single literal run.
    uint8_t* out = detail::emit(dst, dend, src, n, 0, 0);
    return out ? static_cast<size_t>(out - dst) : 0;
  }

  // Two-way hash table: [h][0] = most recent position + 1, [h][1] = the
  // one before it.  0 means empty.  Positions fit u32 (log records and
  // checkpoint values are far below 4 GiB).  Only the first 2^bits rows
  // are used (and zeroed) — sized to the input, capped at kHashBits.
  unsigned bits = kMinHashBits;
  while (bits < kHashBits && (size_t{1} << bits) < n / 4) ++bits;
  uint32_t table[kHashSize][2];
  std::memset(table, 0, (size_t{2} << bits) * sizeof(uint32_t));

  uint8_t* d = dst;
  const size_t match_limit = n - kTailLiterals;  // matches must end by here
  size_t anchor = 0;  // start of pending literal run
  size_t i = 0;
  while (i + kMinMatch <= match_limit) {
    uint32_t seq = detail::read32(src + i);
    uint32_t h = detail::hash4(seq, bits);
    size_t best_len = 0, best_off = 0;
    for (int way = 0; way < 2; ++way) {
      uint32_t cand1 = table[h][way];
      if (cand1 == 0) continue;
      size_t cand = cand1 - 1;
      size_t off = i - cand;
      if (off == 0 || off > 0xffff) continue;
      if (detail::read32(src + cand) != seq) continue;
      size_t len = kMinMatch;
      while (i + len < match_limit && src[cand + len] == src[i + len]) ++len;
      if (len > best_len) { best_len = len; best_off = off; }
    }
    table[h][1] = table[h][0];
    table[h][0] = static_cast<uint32_t>(i + 1);
    if (best_len >= kMinMatch) {
      d = detail::emit(d, dend, src + anchor, i - anchor, best_off, best_len);
      if (!d) return 0;
      // Insert a couple of positions inside the match so runs still chain.
      size_t end = i + best_len;
      for (size_t j = i + 1; j + kMinMatch <= match_limit && j < i + 3; ++j) {
        uint32_t hj = detail::hash4(detail::read32(src + j), bits);
        table[hj][1] = table[hj][0];
        table[hj][0] = static_cast<uint32_t>(j + 1);
      }
      i = end;
      anchor = end;
    } else {
      ++i;
    }
  }
  d = detail::emit(d, dend, src + anchor, n - anchor, 0, 0);
  return d ? static_cast<size_t>(d - dst) : 0;
}

// Decompress src[0..n) into exactly dst[0..raw_n).  Returns true iff the
// input is well-formed and produced exactly raw_n bytes.  Never reads or
// writes out of bounds regardless of input.
inline bool decompress(const void* src_v, size_t n, void* dst_v,
                       size_t raw_n) {
  const uint8_t* s = static_cast<const uint8_t*>(src_v);
  const uint8_t* send = s + n;
  uint8_t* dst = static_cast<uint8_t*>(dst_v);
  uint8_t* d = dst;
  uint8_t* dend = dst + raw_n;
  if (n == 0) return raw_n == 0;
  for (;;) {
    if (s >= send) return false;
    uint8_t token = *s++;
    size_t lit = token >> 4;
    if (lit == 15) {
      uint8_t b;
      do {
        if (s >= send) return false;
        b = *s++;
        lit += b;
      } while (b == 255);
    }
    if (static_cast<size_t>(send - s) < lit) return false;
    if (static_cast<size_t>(dend - d) < lit) return false;
    std::memcpy(d, s, lit);
    s += lit;
    d += lit;
    if (s == send) break;  // final literal-only sequence
    if (send - s < 2) return false;
    size_t offset = static_cast<size_t>(s[0]) | (static_cast<size_t>(s[1]) << 8);
    s += 2;
    if (offset == 0 || offset > static_cast<size_t>(d - dst)) return false;
    size_t mlen = (token & 0x0f);
    if (mlen == 15) {
      uint8_t b;
      do {
        if (s >= send) return false;
        b = *s++;
        mlen += b;
      } while (b == 255);
    }
    mlen += kMinMatch;
    if (static_cast<size_t>(dend - d) < mlen) return false;
    const uint8_t* m = d - offset;
    // Bytewise: offset < mlen (overlap) is legal and means "repeat".
    for (size_t j = 0; j < mlen; ++j) d[j] = m[j];
    d += mlen;
  }
  return d == dend;
}

}  // namespace lz
}  // namespace masstree

#endif  // MASSTREE_UTIL_LZ_H_
