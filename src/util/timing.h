// Wall-clock timing helpers for benchmarks and the 200 ms log group-commit
// deadline (§5).

#ifndef MASSTREE_UTIL_TIMING_H_
#define MASSTREE_UTIL_TIMING_H_

#include <chrono>
#include <cstdint>

namespace masstree {

// Monotonic nanoseconds since an arbitrary origin.
inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Microseconds since the Unix epoch; used as log record timestamps (§5's
// recovery cutoff compares timestamps across per-core logs).
inline uint64_t wall_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Simple stopwatch for throughput reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  double elapsed_seconds() const { return static_cast<double>(now_ns() - start_) * 1e-9; }
  uint64_t elapsed_ns() const { return now_ns() - start_; }

 private:
  uint64_t start_;
};

}  // namespace masstree

#endif  // MASSTREE_UTIL_TIMING_H_
