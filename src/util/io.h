// Fault-injectable file-I/O seam — the crash-consistency test boundary.
//
// Every file syscall the persistence stack issues (log writers, recovery
// sealing, checkpoint part/manifest writes) goes through masstree::io.
// With no FaultPlan armed each wrapper is a relaxed atomic load plus a tail
// call into the real syscall — zero-cost passthrough (run_bench.sh asserts
// log_overhead_pct stayed put with the shim compiled in). Arming a
// FaultPlan turns the same boundary into a deterministic storage
// adversary:
//
//   * trace           — record every call (name, path, fd, offset, bytes)
//                       so a fault-free run enumerates its crash points;
//   * fail_at/errno   — the Nth call matching fail_op returns the chosen
//                       errno (EIO, ENOSPC, ...), sticky by default;
//   * eintr_every     — periodic EINTR bursts on mutating calls, to
//                       exercise retry loops;
//   * short_write_cap — pwritev/write accept at most N bytes per call,
//                       to exercise short-write resume paths;
//   * cut_at_call     — "power cut": from the Nth call on, every mutating
//                       call silently succeeds without touching the file
//                       image (the caller never learns — exactly what a
//                       dying machine reports). torn_bytes additionally
//                       lets the first suppressed write apply a byte
//                       prefix, tearing mid-pwritev across iovecs;
//   * drop_unsynced_at_cut — at the cut, each tracked file is rolled back
//                       to its last real-fdatasync extent (page-cache
//                       bytes a power cut would lose);
//   * lie_fsync       — fdatasync reports success without syncing, so the
//                       durable extent never advances: combined with
//                       drop_unsynced_at_cut this is the lying-disk
//                       adversary (even "acked" bytes vanish).
//
// The plan is process-global and thread-safe: log writer threads and
// checkpoint workers hit it concurrently, and the cut fires atomically
// with respect to every in-flight call.

#ifndef MASSTREE_UTIL_IO_H_
#define MASSTREE_UTIL_IO_H_

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/compiler.h"

namespace masstree {
namespace io {

// First failing syscall's context, recorded once (sticky) by the logging
// and checkpoint error paths and surfaced via Store::log_error_detail()
// for the read-only trip log line.
struct IoErrorDetail {
  const char* syscall = "";
  std::string path;
  uint64_t offset = 0;
  int err = 0;
};

struct SyscallRecord {
  const char* name = "";
  std::string path;  // open/rename only
  int fd = -1;
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

class FaultPlan {
 public:
  // ---- knobs: set before arm(), read-only afterwards -----------------
  bool trace = false;
  // The fail_at'th call matching fail_op (nullptr = any mutating call)
  // returns fail_errno; sticky_fail makes every later match fail too.
  uint64_t fail_at = 0;  // 1-based among matching calls; 0 disables
  int fail_errno = 0;
  const char* fail_op = nullptr;
  bool sticky_fail = true;
  // Every eintr_every'th mutating call leads a burst of eintr_burst
  // EINTR returns (the retry that follows is a fresh call and consumes
  // the rest of the burst).
  unsigned eintr_every = 0;  // 0 disables
  unsigned eintr_burst = 3;
  // pwritev/write accept at most this many bytes per call (0 = no cap).
  size_t short_write_cap = 0;
  // Power cut: calls with index >= cut_at_call are suppressed (silent
  // success, no file effect). torn_bytes < UINT64_MAX makes the first
  // suppressed pwritev/write apply exactly that byte prefix first.
  uint64_t cut_at_call = 0;  // 1-based; 0 disables
  uint64_t torn_bytes = UINT64_MAX;
  bool drop_unsynced_at_cut = false;
  bool lie_fsync = false;

  // ---- post-run queries ----------------------------------------------
  uint64_t calls() const { return calls_.load(std::memory_order_acquire); }
  bool cut_fired() const { return cut_fired_.load(std::memory_order_acquire); }
  std::vector<SyscallRecord> trace_log() {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  // ---- shim entry points (reached only while armed) ------------------
  int xopen(const char* path, int flags, mode_t mode) {
    std::lock_guard<std::mutex> lock(mu_);
    note("open", path, -1, 0, 0);
    if (past_cut()) {
      return discard_fd();
    }
    int fd = ::open(path, flags, mode);
    if (fd >= 0) {
      FdState st;
      st.path = path;
      off_t end = ::lseek(fd, 0, SEEK_END);
      st.durable_end = end > 0 ? static_cast<uint64_t>(end) : 0;
      fds_[fd] = std::move(st);
    }
    return fd;
  }

  ssize_t xpwritev(int fd, const struct iovec* iov, int niov, off_t off) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (int i = 0; i < niov; ++i) {
      total += iov[i].iov_len;
    }
    note("pwritev", nullptr, fd, static_cast<uint64_t>(off), total);
    if (int r = gate("pwritev", /*mutating=*/true); r != kProceed) {
      if (r == kSuppress) {
        return static_cast<ssize_t>(total);
      }
      if (r == kTorn) {
        torn_pwritev(fd, iov, niov, off);
        return static_cast<ssize_t>(total);  // the power-cut lie
      }
      return -1;  // gate set errno
    }
    size_t cap = short_write_cap != 0 && short_write_cap < total
                     ? short_write_cap
                     : total;
    ssize_t n = cap == total ? ::pwritev(fd, iov, niov, off)
                             : clamped_pwritev(fd, iov, niov, off, cap);
    if (n > 0) {
      touch_written(fd);
    }
    return n;
  }

  ssize_t xwrite(int fd, const void* buf, size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    note("write", nullptr, fd, 0, n);
    if (int r = gate("write", /*mutating=*/true); r != kProceed) {
      if (r == kSuppress) {
        return static_cast<ssize_t>(n);
      }
      if (r == kTorn) {
        size_t keep = torn_bytes < n ? static_cast<size_t>(torn_bytes) : n;
        if (keep > 0) {
          ssize_t ignored = ::write(fd, buf, keep);
          (void)ignored;
        }
        return static_cast<ssize_t>(n);
      }
      return -1;
    }
    size_t cap = short_write_cap != 0 && short_write_cap < n ? short_write_cap : n;
    ssize_t w = ::write(fd, buf, cap);
    if (w > 0) {
      touch_written(fd);
    }
    return w;
  }

  ssize_t xpread(int fd, void* buf, size_t n, off_t off) {
    std::lock_guard<std::mutex> lock(mu_);
    note("pread", nullptr, fd, static_cast<uint64_t>(off), n);
    // Reads always see the (possibly frozen) real image.
    return ::pread(fd, buf, n, off);
  }

  int xfdatasync(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    note("fdatasync", nullptr, fd, 0, 0);
    if (int r = gate("fdatasync", /*mutating=*/true); r != kProceed) {
      return r == kFail ? -1 : 0;
    }
    if (lie_fsync) {
      return 0;  // report success, advance nothing
    }
    int r = ::fdatasync(fd);
    if (r == 0) {
      auto it = fds_.find(fd);
      if (it != fds_.end()) {
        off_t end = ::lseek(fd, 0, SEEK_END);
        if (end > 0) {
          it->second.durable_end = static_cast<uint64_t>(end);
        }
      }
    }
    return r;
  }

  int xftruncate(int fd, off_t len) {
    std::lock_guard<std::mutex> lock(mu_);
    note("ftruncate", nullptr, fd, static_cast<uint64_t>(len), 0);
    if (int r = gate("ftruncate", /*mutating=*/true); r != kProceed) {
      return r == kFail ? -1 : 0;
    }
    int r = ::ftruncate(fd, len);
    if (r == 0) {
      auto it = fds_.find(fd);
      if (it != fds_.end() &&
          it->second.durable_end > static_cast<uint64_t>(len)) {
        it->second.durable_end = static_cast<uint64_t>(len);
      }
    }
    return r;
  }

  int xfallocate(int fd, int mode, off_t off, off_t len) {
    std::lock_guard<std::mutex> lock(mu_);
    note("fallocate", nullptr, fd, static_cast<uint64_t>(off),
         static_cast<uint64_t>(len));
    if (int r = gate("fallocate", /*mutating=*/true); r != kProceed) {
      return r == kFail ? -1 : 0;
    }
#if defined(__linux__)
    return ::fallocate(fd, mode, off, len);
#else
    (void)mode;
    errno = EOPNOTSUPP;
    return -1;
#endif
  }

  int xclose(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    note("close", nullptr, fd, 0, 0);
    fds_.erase(fd);
    return ::close(fd);  // real even past the cut: fds are process state
  }

  int xrename(const char* from, const char* to) {
    std::lock_guard<std::mutex> lock(mu_);
    note("rename", from, -1, 0, 0);
    if (int r = gate("rename", /*mutating=*/true); r != kProceed) {
      return r == kFail ? -1 : 0;  // a suppressed rename never commits
    }
    return ::rename(from, to);
  }

  off_t xlseek(int fd, off_t off, int whence) {
    std::lock_guard<std::mutex> lock(mu_);
    note("lseek", nullptr, fd, static_cast<uint64_t>(off), 0);
    return ::lseek(fd, off, whence);
  }

 private:
  struct FdState {
    std::string path;
    uint64_t durable_end = 0;  // extent covered by a completed real fsync
  };

  enum GateResult { kProceed = 0, kFail, kSuppress, kTorn };

  void note(const char* name, const char* path, int fd, uint64_t off,
            uint64_t bytes) {
    calls_.fetch_add(1, std::memory_order_acq_rel);
    if (trace) {
      SyscallRecord r;
      r.name = name;
      if (path != nullptr) {
        r.path = path;
      }
      r.fd = fd;
      r.offset = off;
      r.bytes = bytes;
      records_.push_back(std::move(r));
    }
  }

  bool past_cut() {
    if (cut_fired_.load(std::memory_order_relaxed)) {
      return true;
    }
    if (cut_at_call != 0 &&
        calls_.load(std::memory_order_relaxed) >= cut_at_call) {
      fire_cut();
      return true;
    }
    return false;
  }

  // Decide this (already note()d) call's fate. Returns kTorn exactly once:
  // for the first cut-suppressed write when torn_bytes is set.
  int gate(const char* name, bool mutating) {
    if (cut_fired_.load(std::memory_order_relaxed)) {
      return kSuppress;
    }
    if (cut_at_call != 0 &&
        calls_.load(std::memory_order_relaxed) >= cut_at_call) {
      bool tear = torn_bytes != UINT64_MAX && !torn_done_ &&
                  (std::strcmp(name, "pwritev") == 0 ||
                   std::strcmp(name, "write") == 0);
      if (tear) {
        // The torn prefix models bytes the platter absorbed at the instant
        // of death, so it lands after the rollback fire_cut() performs and
        // survives the cut.
        torn_done_ = true;
        fire_cut();
        return kTorn;
      }
      fire_cut();
      return mutating ? kSuppress : kProceed;
    }
    if (mutating && eintr_every != 0) {
      if (eintr_left_ > 0) {
        --eintr_left_;
        errno = EINTR;
        return kFail;
      }
      if (++eintr_seq_ % eintr_every == 0 && eintr_burst > 0) {
        eintr_left_ = eintr_burst - 1;
        errno = EINTR;
        return kFail;
      }
    }
    if (fail_errno != 0 &&
        (fail_op == nullptr ? mutating : std::strcmp(name, fail_op) == 0)) {
      ++fail_seq_;
      if (fail_seq_ == fail_at || (sticky_fail && fail_seq_ > fail_at)) {
        errno = fail_errno;
        return kFail;
      }
    }
    return kProceed;
  }

  void fire_cut() {
    if (cut_fired_.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    if (drop_unsynced_at_cut) {
      // Page-cache bytes a power cut loses: roll every tracked file back
      // to its last real-fsync extent.
      for (auto& [fd, st] : fds_) {
        int ignored = ::ftruncate(fd, static_cast<off_t>(st.durable_end));
        (void)ignored;
      }
    }
  }

  void torn_pwritev(int fd, const struct iovec* iov, int niov, off_t off) {
    uint64_t budget = torn_bytes;
    std::vector<struct iovec> cut;
    for (int i = 0; i < niov && budget > 0; ++i) {
      struct iovec v = iov[i];
      if (v.iov_len > budget) {
        v.iov_len = static_cast<size_t>(budget);
      }
      budget -= v.iov_len;
      cut.push_back(v);
    }
    if (!cut.empty()) {
      ssize_t ignored =
          ::pwritev(fd, cut.data(), static_cast<int>(cut.size()), off);
      (void)ignored;
    }
  }

  ssize_t clamped_pwritev(int fd, const struct iovec* iov, int niov, off_t off,
                          size_t cap) {
    std::vector<struct iovec> cut;
    size_t budget = cap;
    for (int i = 0; i < niov && budget > 0; ++i) {
      struct iovec v = iov[i];
      if (v.iov_len > budget) {
        v.iov_len = budget;
      }
      budget -= v.iov_len;
      cut.push_back(v);
    }
    return ::pwritev(fd, cut.data(), static_cast<int>(cut.size()), off);
  }

  void touch_written(int fd) { (void)fd; }

  // A discardable fd for files "created" after the machine died: writes
  // must land somewhere harmless that the frozen image never sees.
  int discard_fd() {
#if defined(__linux__)
    int fd = ::memfd_create("masstree-io-cut", 0);
    if (fd >= 0) {
      return fd;
    }
#endif
    return ::open("/dev/null", O_RDWR);
  }

  std::mutex mu_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<bool> cut_fired_{false};
  bool torn_done_ = false;
  uint64_t eintr_seq_ = 0;
  unsigned eintr_left_ = 0;
  uint64_t fail_seq_ = 0;
  std::vector<SyscallRecord> records_;
  std::unordered_map<int, FdState> fds_;
};

// Process-global plan pointer: null (the common case) means passthrough.
inline std::atomic<FaultPlan*> g_plan{nullptr};

inline void arm(FaultPlan* p) { g_plan.store(p, std::memory_order_release); }
inline void disarm() { g_plan.store(nullptr, std::memory_order_release); }
inline FaultPlan* armed_plan() {
  return g_plan.load(std::memory_order_relaxed);
}

// RAII arming for tests: disarms on scope exit no matter how it exits.
struct Armed {
  explicit Armed(FaultPlan* p) { arm(p); }
  ~Armed() { disarm(); }
  Armed(const Armed&) = delete;
  Armed& operator=(const Armed&) = delete;
};

// ---- the shim: the persistence stack calls these instead of ::syscalls.
inline int open(const char* path, int flags, mode_t mode = 0) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::open(path, flags, mode);
  }
  return p->xopen(path, flags, mode);
}

inline ssize_t pwritev(int fd, const struct iovec* iov, int niov, off_t off) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::pwritev(fd, iov, niov, off);
  }
  return p->xpwritev(fd, iov, niov, off);
}

inline ssize_t write(int fd, const void* buf, size_t n) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::write(fd, buf, n);
  }
  return p->xwrite(fd, buf, n);
}

inline ssize_t pread(int fd, void* buf, size_t n, off_t off) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::pread(fd, buf, n, off);
  }
  return p->xpread(fd, buf, n, off);
}

inline int fdatasync(int fd) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::fdatasync(fd);
  }
  return p->xfdatasync(fd);
}

inline int ftruncate(int fd, off_t len) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::ftruncate(fd, len);
  }
  return p->xftruncate(fd, len);
}

inline int fallocate(int fd, int mode, off_t off, off_t len) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
#if defined(__linux__)
    return ::fallocate(fd, mode, off, len);
#else
    (void)fd;
    (void)mode;
    (void)off;
    (void)len;
    errno = EOPNOTSUPP;
    return -1;
#endif
  }
  return p->xfallocate(fd, mode, off, len);
}

inline int close(int fd) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::close(fd);
  }
  return p->xclose(fd);
}

inline int rename(const char* from, const char* to) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::rename(from, to);
  }
  return p->xrename(from, to);
}

inline off_t lseek(int fd, off_t off, int whence) {
  FaultPlan* p = armed_plan();
  if (MT_LIKELY(p == nullptr)) {
    return ::lseek(fd, off, whence);
  }
  return p->xlseek(fd, off, whence);
}

}  // namespace io
}  // namespace masstree

#endif  // MASSTREE_UTIL_IO_H_
