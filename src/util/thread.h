// Thread-affinity helpers. The paper pins one server thread per core
// (§5, §6.1); on this container we pin modulo the available CPU count.

#ifndef MASSTREE_UTIL_THREAD_H_
#define MASSTREE_UTIL_THREAD_H_

#include <pthread.h>
#include <sched.h>

#include <thread>

namespace masstree {

// Best-effort pinning of the calling thread to a CPU. Returns true on success.
inline bool pin_to_cpu(unsigned cpu_index) {
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu_index % n, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

inline unsigned hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace masstree

#endif  // MASSTREE_UTIL_THREAD_H_
