// Calibrated busy-work, used by the §7 comparison models to charge
// per-message and per-operation overheads (dispatch, parsing, document
// encode/decode) without depending on wall-clock sleep granularity.

#ifndef MASSTREE_UTIL_BUSYWORK_H_
#define MASSTREE_UTIL_BUSYWORK_H_

#include <atomic>
#include <cstdint>

#include "util/timing.h"

namespace masstree {

namespace internal {
inline std::atomic<uint64_t> busy_sink{0};

// Iterations per microsecond, measured once.
inline uint64_t busy_iters_per_us() {
  static const uint64_t rate = [] {
    uint64_t iters = 1 << 20;
    uint64_t x = 1;
    uint64_t start = now_ns();
    for (uint64_t i = 0; i < iters; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
    }
    busy_sink.store(x, std::memory_order_relaxed);
    uint64_t ns = now_ns() - start;
    if (ns == 0) {
      ns = 1;
    }
    return iters * 1000 / ns + 1;
  }();
  return rate;
}
}  // namespace internal

// Burn roughly `ns` nanoseconds of CPU.
inline void busy_ns(uint64_t ns) {
  uint64_t iters = internal::busy_iters_per_us() * ns / 1000;
  uint64_t x = internal::busy_sink.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < iters; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
  internal::busy_sink.store(x, std::memory_order_relaxed);
}

}  // namespace masstree

#endif  // MASSTREE_UTIL_BUSYWORK_H_
