// Cache-line prefetch helpers (§4.2: "Masstree prefetches all of a tree
// node's cache lines in parallel before using the node, so the entire node
// can be used after a single DRAM latency").

#ifndef MASSTREE_UTIL_PREFETCH_H_
#define MASSTREE_UTIL_PREFETCH_H_

#include <cstddef>

#include "util/compiler.h"

namespace masstree {

// Prefetch a single cache line for reading.
inline void prefetch_line(const void* p) { __builtin_prefetch(p, 0 /*read*/, 3 /*high locality*/); }

// Prefetch a single cache line for writing.
inline void prefetch_line_w(const void* p) { __builtin_prefetch(p, 1 /*write*/, 3); }

// Issue prefetches for every cache line covering [p, p + bytes). The loads are
// independent, so the DRAM fetches overlap: a 4-line node costs roughly one
// latency instead of four.
inline void prefetch_object(const void* p, size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += kCacheLineSize) {
    prefetch_line(c + off);
  }
}

}  // namespace masstree

#endif  // MASSTREE_UTIL_PREFETCH_H_
