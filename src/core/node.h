// Masstree node structures (§4.2, Figure 2).
//
// Border nodes are the leaves of each layer's B+-tree; they hold key slices,
// per-slot key lengths (keylenx), values-or-layer-links, the permutation, the
// doubly linked sibling list, and a pointer to suffix storage. Interior nodes
// hold sorted slices and child pointers. Both embed the §4.5 version word and
// a parent pointer (protected by the parent's lock; doubles as a forwarding
// pointer after a node is retired).
//
// Readers access per-slot fields without locks, so every racy field is a
// relaxed std::atomic; consistency is established by the version/permutation
// validation protocol, not by the individual loads.

#ifndef MASSTREE_CORE_NODE_H_
#define MASSTREE_CORE_NODE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <string_view>

#include "core/permuter.h"
#include "core/stringbag.h"
#include "core/threadinfo.h"
#include "core/version.h"
#include "key/key.h"
#include "util/prefetch.h"

namespace masstree {

// Tree configuration. The defaults reproduce the published system: 15-way
// nodes (a four-cache-line border node, §4.2), prefetching on, linear in-node
// search (§4.8). Benchmarks instantiate variants for the ablations.
struct DefaultConfig {
  using Policy = ConcurrentPolicy;
  static constexpr int kLeafWidth = 15;
  static constexpr int kInteriorWidth = 15;
  static constexpr bool kPrefetch = true;
  static constexpr bool kLinearSearch = true;
  // 0 = adaptive suffix bags (size to demand, grow by doubling, §4.2);
  // nonzero = allocate this many suffix bytes per node up front (the simpler
  // fixed scheme the paper compares against).
  static constexpr size_t kFixedSuffixBytes = 0;
};

// Single-core variant (§6.4): locks, fences, and retries compile out.
struct SequentialConfig : DefaultConfig {
  using Policy = SequentialPolicy;
};

// Per-slot key-length encoding. Values 0..8 mean the key ends inside this
// slice and occupies that many bytes of it. Larger values flag the three
// "key continues" states.
enum KeylenX : uint8_t {
  kKeylenxSuffix = 9,         // key continues; suffix stored in the bag
  kKeylenxLayer = 10,         // lv points at a deeper trie layer's root
  kKeylenxUnstableLayer = 11, // §4.6.3 mid-transition marker; readers retry
};

// Ordering class of a keylenx: all "continues" states tie at 9 (at most one
// such slot exists per slice, so the tie never needs breaking in a node).
inline int keylenx_ord(uint8_t kx) { return kx <= 8 ? kx : 9; }
inline bool keylenx_is_layer(uint8_t kx) { return kx == kKeylenxLayer; }
inline bool keylenx_is_unstable(uint8_t kx) { return kx == kKeylenxUnstableLayer; }
inline bool keylenx_has_suffix(uint8_t kx) { return kx == kKeylenxSuffix; }

template <typename C>
class BorderNode;
template <typename C>
class InteriorNode;

template <typename C>
class NodeBase {
 public:
  using Policy = typename C::Policy;

  explicit NodeBase(uint32_t version_bits) : version_(version_bits) {}

  NodeVersion<Policy>& version() { return version_; }
  const NodeVersion<Policy>& version() const { return version_; }

  bool is_border() const { return version_.is_border_relaxed(); }

  BorderNode<C>* as_border() {
    assert(is_border());
    return static_cast<BorderNode<C>*>(this);
  }
  const BorderNode<C>* as_border() const {
    assert(is_border());
    return static_cast<const BorderNode<C>*>(this);
  }
  InteriorNode<C>* as_interior() {
    assert(!is_border());
    return static_cast<InteriorNode<C>*>(this);
  }
  const InteriorNode<C>* as_interior() const {
    assert(!is_border());
    return static_cast<const InteriorNode<C>*>(this);
  }

  // The parent interior node. For retired (deleted) nodes this is a
  // forwarding pointer that leads descents back to live territory; for layer
  // roots it is null.
  NodeBase* parent() const { return parent_.load(std::memory_order_acquire); }
  void set_parent(NodeBase* p) { parent_.store(p, std::memory_order_release); }

 protected:
  NodeVersion<Policy> version_;
  std::atomic<NodeBase*> parent_{nullptr};
};

template <typename C>
class alignas(kCacheLineSize) BorderNode : public NodeBase<C> {
 public:
  static constexpr int kWidth = C::kLeafWidth;
  static_assert(kWidth >= 2 && kWidth <= Permuter::kMaxWidth,
                "border width limited by the 4-bit permuter subfields");

  using Base = NodeBase<C>;

  // Allocates and constructs an empty border node.
  static BorderNode* make(ThreadContext& ti, bool is_root) {
    void* mem = ti.allocate(sizeof(BorderNode));
    return new (mem) BorderNode(is_root);
  }

  void prefetch() const {
    if constexpr (C::kPrefetch) {
      prefetch_object(this, sizeof(*this));
    }
  }

  Permuter permutation() const {
    return Permuter(permutation_.load(std::memory_order_acquire));
  }
  void set_permutation(Permuter p) {
    permutation_.store(p.value(), std::memory_order_release);
  }

  uint64_t slice(int slot) const { return keyslice_[slot].load(std::memory_order_relaxed); }
  uint8_t keylenx(int slot) const { return keylenx_[slot].load(std::memory_order_relaxed); }
  // Acquire, not relaxed: lv may hold a pointer (a Row boxed by the kvstore
  // layer, or a layer root) whose pointee the caller dereferences. The
  // acquire pairs with set_lv's release so the pointee's initialization is
  // visible — dependency ordering would do on real hardware, but the C++
  // model (and TSan) requires the pairing. Free on x86/ARM loads.
  uint64_t lv(int slot) const { return lv_[slot].load(std::memory_order_acquire); }
  NodeBase<C>* layer(int slot) const { return reinterpret_cast<NodeBase<C>*>(lv(slot)); }

  void set_slice(int slot, uint64_t s) { keyslice_[slot].store(s, std::memory_order_relaxed); }
  void set_keylenx(int slot, uint8_t kx) { keylenx_[slot].store(kx, std::memory_order_release); }
  void set_lv(int slot, uint64_t v) { lv_[slot].store(v, std::memory_order_release); }

  BorderNode* next() const { return next_.load(std::memory_order_acquire); }
  BorderNode* prev() const { return prev_.load(std::memory_order_acquire); }
  void set_next(BorderNode* n) { next_.store(n, std::memory_order_release); }
  void set_prev(BorderNode* p) { prev_.store(p, std::memory_order_release); }

  StringBag* suffixes() const { return ksuf_.load(std::memory_order_acquire); }
  std::string_view suffix(int slot) const {
    StringBag* bag = suffixes();
    assert(bag != nullptr);
    return bag->get(slot);
  }

  // Lowest slice this node can be responsible for; constant over the node's
  // lifetime (§4.6.4). Only meaningful for non-leftmost nodes.
  uint64_t lowkey() const { return lowkey_; }
  void set_lowkey(uint64_t k) { lowkey_ = k; }

  // In-node search among live keys for (slice, ord). Returns the slot if an
  // exact (slice, ord-class) match exists, else -1; *pos receives the sorted
  // position of the match or the insertion point. Pass the permutation
  // snapshot the caller validated (or read under lock).
  int find(Permuter perm, uint64_t slice, int ord, int* pos) const {
    if constexpr (C::kLinearSearch) {
      return find_linear(perm, slice, ord, pos);
    } else {
      return find_binary(perm, slice, ord, pos);
    }
  }

  int find_linear(Permuter perm, uint64_t slice, int ord, int* pos) const {
    int n = perm.size();
    int i = 0;
    for (; i < n; ++i) {
      int slot = perm.get(i);
      uint64_t s = this->slice(slot);
      if (s < slice) {
        continue;
      }
      if (s > slice) {
        break;
      }
      int eo = keylenx_ord(keylenx(slot));
      if (eo < ord) {
        continue;
      }
      *pos = i;
      return eo == ord ? slot : -1;
    }
    *pos = i;
    return -1;
  }

  int find_binary(Permuter perm, uint64_t slice, int ord, int* pos) const {
    int lo = 0, hi = perm.size();
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      int slot = perm.get(mid);
      uint64_t s = this->slice(slot);
      int eo = keylenx_ord(keylenx(slot));
      if (s < slice || (s == slice && eo < ord)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    *pos = lo;
    if (lo < perm.size()) {
      int slot = perm.get(lo);
      if (this->slice(slot) == slice && keylenx_ord(keylenx(slot)) == ord) {
        return slot;
      }
    }
    return -1;
  }

  // Writer-side bookkeeping: number of removals (or split evacuations) whose
  // slots may be reused. Guarded by the node lock.
  uint8_t nremoved_ = 0;

  // Raw field access for split/maintenance code paths (lock held).
  std::atomic<uint64_t>& raw_permutation() { return permutation_; }
  std::atomic<StringBag*>& raw_suffixes() { return ksuf_; }

 private:
  explicit BorderNode(bool is_root)
      : Base(VersionValue::kBorder | (is_root ? VersionValue::kRoot : 0)),
        permutation_(Permuter::make_empty().value()) {
    for (int i = 0; i < kWidth; ++i) {
      keyslice_[i].store(0, std::memory_order_relaxed);
      keylenx_[i].store(0, std::memory_order_relaxed);
      lv_[i].store(0, std::memory_order_relaxed);
    }
  }

  std::atomic<uint64_t> permutation_;
  std::atomic<uint64_t> keyslice_[kWidth];
  std::atomic<uint64_t> lv_[kWidth];
  std::atomic<uint8_t> keylenx_[kWidth];
  std::atomic<BorderNode*> next_{nullptr};
  std::atomic<BorderNode*> prev_{nullptr};
  std::atomic<StringBag*> ksuf_{nullptr};
  uint64_t lowkey_ = 0;
};

template <typename C>
class alignas(kCacheLineSize) InteriorNode : public NodeBase<C> {
 public:
  static constexpr int kWidth = C::kInteriorWidth;
  using Base = NodeBase<C>;

  static InteriorNode* make(ThreadContext& ti, bool is_root) {
    void* mem = ti.allocate(sizeof(InteriorNode));
    return new (mem) InteriorNode(is_root);
  }

  void prefetch() const {
    if constexpr (C::kPrefetch) {
      prefetch_object(this, sizeof(*this));
    }
  }

  int nkeys() const { return nkeys_.load(std::memory_order_relaxed); }
  void set_nkeys(int n) { nkeys_.store(static_cast<uint8_t>(n), std::memory_order_relaxed); }

  uint64_t key(int i) const { return keyslice_[i].load(std::memory_order_relaxed); }
  void set_key(int i, uint64_t k) { keyslice_[i].store(k, std::memory_order_relaxed); }

  NodeBase<C>* child(int i) const { return child_[i].load(std::memory_order_acquire); }
  void set_child(int i, NodeBase<C>* c) { child_[i].store(c, std::memory_order_release); }

  // Index of the child subtree responsible for `slice`: the number of keys
  // <= slice (equal separators send the probe right, keeping all keys with
  // one slice in one subtree).
  int child_index(uint64_t slice) const {
    int n = nkeys();
    if constexpr (C::kLinearSearch) {
      int i = 0;
      while (i < n && key(i) <= slice) {
        ++i;
      }
      return i;
    } else {
      int lo = 0, hi = n;
      while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (key(mid) <= slice) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  }

  // Position of a specific child pointer, or -1. Lock held.
  int find_child(const NodeBase<C>* c) const {
    for (int i = 0; i <= nkeys(); ++i) {
      if (child(i) == c) {
        return i;
      }
    }
    return -1;
  }

 private:
  explicit InteriorNode(bool is_root)
      : Base(is_root ? VersionValue::kRoot : 0) {
    for (int i = 0; i <= kWidth; ++i) {
      child_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  std::atomic<uint8_t> nkeys_{0};
  std::atomic<uint64_t> keyslice_[kWidth];
  std::atomic<NodeBase<C>*> child_[kWidth + 1];
};

}  // namespace masstree

#endif  // MASSTREE_CORE_NODE_H_
