// Concurrency policies.
//
// §6.4 "Concurrency": "We implemented a single-core version of Masstree by
// removing locking, node versions, and interlocked instructions. When
// evaluated on one core ... single-core Masstree beats concurrent Masstree by
// just 13%."
//
// Rather than forking the tree, every synchronizing operation dispatches on a
// policy type: ConcurrentPolicy emits atomics and fences, SequentialPolicy
// compiles them down to plain loads/stores and no-op validation. The
// hard-partitioned store of §6.6 and the concurrency-cost experiment of §6.4
// instantiate the sequential variant.

#ifndef MASSTREE_CORE_POLICY_H_
#define MASSTREE_CORE_POLICY_H_

#include "util/compiler.h"

namespace masstree {

struct ConcurrentPolicy {
  static constexpr bool kConcurrent = true;
  static void acquire() { acquire_fence(); }
  static void release() { release_fence(); }
};

struct SequentialPolicy {
  static constexpr bool kConcurrent = false;
  static void acquire() {}
  static void release() {}
};

}  // namespace masstree

#endif  // MASSTREE_CORE_POLICY_H_
