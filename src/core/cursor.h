// LookupCursor — the single copy of Masstree's read-side traversal logic
// (Figure 6's hand-over-hand descent, Figure 7's border stabilize/forward
// loop, §4.6.3's layer descent), refactored into a resumable state machine.
//
// Before this existed the descend/forward protocol was written out three
// times (get, the locked writers' locate step, and scan's border location).
// Now there is one implementation with two drivers:
//
//   * full-lookup mode (the key constructor): resolves a whole key to a
//     value, descending trie layers and restarting from the tree root when a
//     layer dies. BasicTree::get() runs one cursor to completion;
//     BasicTree::multiget() round-robins a window of them.
//   * border-location mode (the slice constructor): descends one layer for a
//     single slice and stops at the responsible border node — the
//     reach_border() step shared by scan and the locked writers.
//
// States (one DRAM-touch of work per step, so a batch engine can overlap the
// fetches of many concurrent lookups, §4.8 / PALM):
//
//   kLayerEntry   (re)enter a layer: ascend stale/retired entry points to the
//                 layer's true root (§4.6.4); also the layer-descend landing
//                 state after following a next_layer link
//   kDescend      one hand-over-hand hop through an interior node
//   kBorder       border examination: search, suffix compare, validate,
//                 B-link forward (Figure 7)
//   kDone         result available
//
// Between steps, prefetch() issues the cache-line fetches for exactly the
// memory the next step() will touch — the pending child node, or the border's
// suffix StringBag when a long key is about to be compared. step() never
// writes shared memory; all synchronization is the §4.5 version validation.

#ifndef MASSTREE_CORE_CURSOR_H_
#define MASSTREE_CORE_CURSOR_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "core/node.h"
#include "core/stringbag.h"
#include "key/key.h"
#include "util/counters.h"
#include "util/prefetch.h"

namespace masstree {

template <typename C>
class LookupCursor {
 public:
  using Node = NodeBase<C>;
  using Border = BorderNode<C>;
  using Interior = InteriorNode<C>;

  enum class State : uint8_t {
    kLayerEntry,
    kDescend,
    kBorder,
    kDone,
  };

  enum class Status : uint8_t {
    kInProgress,
    kFound,      // full-lookup mode: key present, value() valid
    kNotFound,   // full-lookup mode: key absent
    kAtBorder,   // border-location mode: border()/border_version() valid
    kDeadLayer,  // border-location mode: the entered layer was removed
  };

  // How many suffix-bag bytes prefetch() pulls: the header + packed refs of a
  // width-15 bag plus the start of the string data, without a dependent load
  // of the bag's actual capacity.
  static constexpr size_t kSuffixPrefetchBytes = 4 * kCacheLineSize;

  // Full-lookup cursor. `treeroot` is the tree's layer-0 root pointer,
  // reloaded whenever the lookup must restart from the very top.
  LookupCursor(const std::atomic<Node*>& treeroot, std::string_view key)
      : treeroot_(&treeroot),
        key_(key),
        root_(treeroot.load(std::memory_order_acquire)),
        slice_(key_.slice()),
        ord_(search_ord()) {}

  // Border-location cursor: find the border responsible for `slice` in the
  // layer entered at `entry`. Never examines border contents.
  LookupCursor(Node* entry, uint64_t slice)
      : treeroot_(nullptr), root_(entry), slice_(slice) {}

  // Issue the prefetches for the memory the next step() will touch. Harmless
  // if racy — it only prefetches.
  void prefetch() const {
    if constexpr (!C::kPrefetch) {
      return;
    }
    switch (state_) {
      case State::kLayerEntry:
        if (root_ != nullptr) {
          prefetch_object(root_, sizeof(Border));
        }
        break;
      case State::kDescend:
        prefetch_object(child_, sizeof(Border));
        break;
      case State::kBorder:
        // The node's own lines were fetched when the descent adopted it; the
        // remaining cold object is the suffix bag a long-key compare reads.
        if (key_.has_suffix()) {
          const StringBag* bag = n_->as_border()->suffixes();
          if (bag != nullptr) {
            prefetch_object(bag, kSuffixPrefetchBytes);
          }
        }
        break;
      case State::kDone:
        break;
    }
  }

  // Advance by roughly one DRAM touch. Returns kInProgress until the cursor
  // reaches a terminal state. `ctrs` (nullable) receives the retry/forward
  // event counts the old monolithic get() maintained.
  Status step(ThreadCounters* ctrs) {
    switch (state_) {
      case State::kLayerEntry:
        return step_layer_entry(ctrs);
      case State::kDescend:
        return step_descend(ctrs);
      case State::kBorder:
        return step_border(ctrs);
      case State::kDone:
        break;
    }
    return result_;
  }

  // Synchronous driver: prefetch-then-step to completion.
  Status run(ThreadCounters* ctrs) {
    for (;;) {
      prefetch();
      Status s = step(ctrs);
      if (s != Status::kInProgress) {
        return s;
      }
    }
  }

  State state() const { return state_; }
  bool found() const { return result_ == Status::kFound; }
  uint64_t value() const { return value_; }
  // Number of retry events (local revalidations + restarts) this lookup ate;
  // multiget aggregates these into Counter::kMultigetRetry.
  uint32_t retries() const { return retries_; }

  // Border-location results (valid after kAtBorder).
  Border* border() const { return n_->as_border(); }
  VersionValue border_version() const { return v_; }
  // The observed true root of the current layer; callers keep it so retries
  // skip forwarding chains (reach_border's in-out root parameter).
  Node* layer_root() const { return root_; }

 private:
  int search_ord() const {
    return key_.has_suffix() ? 9 : static_cast<int>(key_.length_in_slice());
  }

  static void count(ThreadCounters* ctrs, Counter which) {
    if (ctrs != nullptr) {
      ctrs->inc(which);
    }
  }

  Status finish(bool found, uint64_t lv) {
    state_ = State::kDone;
    value_ = lv;
    result_ = found ? Status::kFound : Status::kNotFound;
    return result_;
  }

  // The layer this cursor is in has been removed entirely. Border-location
  // callers handle that themselves; full lookups restart from layer 0.
  Status dead_layer(ThreadCounters* ctrs) {
    if (treeroot_ == nullptr) {
      state_ = State::kDone;
      result_ = Status::kDeadLayer;
      return result_;
    }
    count(ctrs, Counter::kGetRetryFromRoot);
    ++retries_;
    key_.unshift_all();
    slice_ = key_.slice();
    ord_ = search_ord();
    root_ = treeroot_->load(std::memory_order_acquire);
    state_ = State::kLayerEntry;
    return Status::kInProgress;
  }

  // Touches root_: stabilize it and ascend stale/retired entry points —
  // deleted nodes forward through parent(); live non-roots climb until the
  // true root (§4.6.4's lazily updated layer roots).
  Status step_layer_entry(ThreadCounters* ctrs) {
    Node* n = root_;
    if (n == nullptr) {
      return dead_layer(ctrs);
    }
    VersionValue v = n->version().stable();
    while (v.deleted() || !v.is_root()) {
      Node* p = n->parent();
      if (p == nullptr) {
        if (v.deleted()) {
          return dead_layer(ctrs);  // this layer was removed entirely
        }
        // Root flag observed clear before the new parent store; reload.
        spin_pause();
        v = n->version().stable();
        continue;
      }
      n = p;
      v = n->version().stable();
    }
    root_ = n;
    return arrive(n, v);
  }

  // Touches child_ (the node prefetch() announced): hand-over-hand
  // validation against the parent we came from (Figure 6).
  Status step_descend(ThreadCounters*) {
    VersionValue cv = child_->version().stable();
    if (!n_->version().changed_since(v_)) {
      return arrive(child_, cv);
    }
    VersionValue v2 = n_->version().stable();
    if (v2.vsplit() != v_.vsplit() || v2.deleted()) {
      state_ = State::kLayerEntry;  // split: retry from the layer root
      return Status::kInProgress;
    }
    v_ = v2;  // plain insert: retry from this node
    return select_child();
  }

  // Adopt a node the descent just validated its way into.
  Status arrive(Node* n, VersionValue v) {
    n_ = n;
    v_ = v;
    if (v.is_border()) {
      if (treeroot_ == nullptr) {
        state_ = State::kDone;
        result_ = Status::kAtBorder;
        return result_;
      }
      state_ = State::kBorder;
      return Status::kInProgress;
    }
    return select_child();
  }

  // At interior n_ (already in cache) with stable v_: pick the child the next
  // step will touch. Loops only over hot re-reads of n_.
  Status select_child() {
    for (;;) {
      if (v_.deleted()) {
        root_ = n_;  // re-entry ascends through the forwarding parent pointer
        state_ = State::kLayerEntry;
        return Status::kInProgress;
      }
      Interior* in = n_->as_interior();
      child_ = in->child(in->child_index(slice_));
      if (child_ != nullptr) {
        state_ = State::kDescend;
        return Status::kInProgress;
      }
      // Torn read during a concurrent reshape; re-stabilize and retry.
      v_ = n_->version().stable();
    }
  }

  // Figure 7's forward loop: search the border, validate, follow the B-link
  // chain right when the key's range moved, descend layers, spin across the
  // §4.6.3 UNSTABLE window.
  Status step_border(ThreadCounters* ctrs) {
    for (;;) {
      if (v_.deleted()) {
        root_ = n_;  // re-entry follows the forwarding pointer
        state_ = State::kLayerEntry;
        return Status::kInProgress;
      }
      Border* n = n_->as_border();
      Permuter perm = n->permutation();
      int pos;
      int slot = n->find(perm, slice_, ord_, &pos);
      uint8_t kx = 0;
      uint64_t lv = 0;
      bool suffix_eq = false;
      if (slot >= 0) {
        kx = n->keylenx(slot);
        lv = n->lv(slot);
        if (keylenx_has_suffix(kx)) {
          StringBag* bag = n->suffixes();
          suffix_eq = bag != nullptr && bag->get(slot) == key_.suffix();
        }
      }
      if (n->version().changed_since(v_)) {
        // Stabilize, then chase the B-link chain right if the key's range
        // moved (Figure 7's while loop).
        v_ = n->version().stable();
        count(ctrs, Counter::kGetRetryLocal);
        ++retries_;
        Border* nx = n->next();
        while (!v_.deleted() && nx != nullptr && slice_ >= nx->lowkey()) {
          n = nx;
          v_ = n->version().stable();
          nx = n->next();
          count(ctrs, Counter::kGetForward);
        }
        n_ = n;
        continue;
      }
      if (slot < 0) {
        return finish(false, 0);
      }
      if (kx <= 8) {
        return finish(true, lv);
      }
      if (keylenx_has_suffix(kx)) {
        return finish(suffix_eq, lv);
      }
      if (keylenx_is_layer(kx)) {
        // Layer descend (§4.6.3): advance the key one slice and re-enter at
        // the sub-layer's stored root.
        root_ = reinterpret_cast<Node*>(lv);
        key_.shift();
        slice_ = key_.slice();
        ord_ = search_ord();
        state_ = State::kLayerEntry;
        return Status::kInProgress;
      }
      // UNSTABLE: a layer is being created under this slot; spin (§4.6.3).
      spin_pause();
    }
  }

  const std::atomic<Node*>* treeroot_;  // null in border-location mode
  Key key_;
  Node* root_ = nullptr;   // current layer's entry point / observed true root
  Node* n_ = nullptr;      // current node (stable version v_)
  Node* child_ = nullptr;  // pending hop target in kDescend
  uint64_t slice_ = 0;
  int ord_ = 0;
  VersionValue v_;
  uint64_t value_ = 0;
  uint32_t retries_ = 0;
  State state_ = State::kLayerEntry;
  Status result_ = Status::kInProgress;
};

}  // namespace masstree

#endif  // MASSTREE_CORE_CURSOR_H_
