// LookupCursor — the single copy of Masstree's read-side traversal logic
// (Figure 6's hand-over-hand descent, Figure 7's border stabilize/forward
// loop, §4.6.3's layer descent), refactored into a resumable state machine.
//
// Before this existed the descend/forward protocol was written out three
// times (get, the locked writers' locate step, and scan's border location).
// Now there is one implementation with two drivers:
//
//   * full-lookup mode (the key constructor): resolves a whole key to a
//     value, descending trie layers and restarting from the tree root when a
//     layer dies. BasicTree::get() runs one cursor to completion;
//     BasicTree::multiget() round-robins a window of them.
//   * border-location mode (the slice constructor): descends one layer for a
//     single slice and stops at the responsible border node — the
//     reach_border() step shared by scan and the locked writers.
//
// States (one DRAM-touch of work per step, so a batch engine can overlap the
// fetches of many concurrent lookups, §4.8 / PALM):
//
//   kLayerEntry   (re)enter a layer: ascend stale/retired entry points to the
//                 layer's true root (§4.6.4); also the layer-descend landing
//                 state after following a next_layer link
//   kDescend      one hand-over-hand hop through an interior node
//   kBorder       border examination: search, suffix compare, validate,
//                 B-link forward (Figure 7)
//   kDone         result available
//
// Between steps, prefetch() issues the cache-line fetches for exactly the
// memory the next step() will touch — the pending child node, or the border's
// suffix StringBag when a long key is about to be compared. step() never
// writes shared memory; all synchronization is the §4.5 version validation.

#ifndef MASSTREE_CORE_CURSOR_H_
#define MASSTREE_CORE_CURSOR_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/node.h"
#include "core/stringbag.h"
#include "key/key.h"
#include "util/counters.h"
#include "util/prefetch.h"

namespace masstree {

template <typename C>
class LookupCursor {
 public:
  using Node = NodeBase<C>;
  using Border = BorderNode<C>;
  using Interior = InteriorNode<C>;

  enum class State : uint8_t {
    kLayerEntry,
    kDescend,
    kBorder,
    kDone,
  };

  enum class Status : uint8_t {
    kInProgress,
    kFound,      // full-lookup mode: key present, value() valid
    kNotFound,   // full-lookup mode: key absent
    kAtBorder,   // border-location mode: border()/border_version() valid
    kDeadLayer,  // border-location mode: the entered layer was removed
  };

  // How many suffix-bag bytes prefetch() pulls: the header + packed refs of a
  // width-15 bag plus the start of the string data, without a dependent load
  // of the bag's actual capacity.
  static constexpr size_t kSuffixPrefetchBytes = 4 * kCacheLineSize;

  // Full-lookup cursor. `treeroot` is the tree's layer-0 root pointer,
  // reloaded whenever the lookup must restart from the very top.
  LookupCursor(const std::atomic<Node*>& treeroot, std::string_view key)
      : treeroot_(&treeroot),
        key_(key),
        root_(treeroot.load(std::memory_order_acquire)),
        slice_(key_.slice()),
        ord_(search_ord()) {}

  // Border-location cursor: find the border responsible for `slice` in the
  // layer entered at `entry`. Never examines border contents.
  LookupCursor(Node* entry, uint64_t slice)
      : treeroot_(nullptr), root_(entry), slice_(slice) {}

  // Issue the prefetches for the memory the next step() will touch. Harmless
  // if racy — it only prefetches.
  void prefetch() const {
    if constexpr (!C::kPrefetch) {
      return;
    }
    switch (state_) {
      case State::kLayerEntry:
        if (root_ != nullptr) {
          prefetch_object(root_, sizeof(Border));
        }
        break;
      case State::kDescend:
        prefetch_object(child_, sizeof(Border));
        break;
      case State::kBorder:
        // The node's own lines were fetched when the descent adopted it; the
        // remaining cold object is the suffix bag a long-key compare reads.
        if (key_.has_suffix()) {
          const StringBag* bag = n_->as_border()->suffixes();
          if (bag != nullptr) {
            prefetch_object(bag, kSuffixPrefetchBytes);
          }
        }
        break;
      case State::kDone:
        break;
    }
  }

  // Advance by roughly one DRAM touch. Returns kInProgress until the cursor
  // reaches a terminal state. `ctrs` (nullable) receives the retry/forward
  // event counts the old monolithic get() maintained.
  Status step(ThreadCounters* ctrs) {
    switch (state_) {
      case State::kLayerEntry:
        return step_layer_entry(ctrs);
      case State::kDescend:
        return step_descend(ctrs);
      case State::kBorder:
        return step_border(ctrs);
      case State::kDone:
        break;
    }
    return result_;
  }

  // Synchronous driver: prefetch-then-step to completion.
  Status run(ThreadCounters* ctrs) {
    for (;;) {
      prefetch();
      Status s = step(ctrs);
      if (s != Status::kInProgress) {
        return s;
      }
    }
  }

  State state() const { return state_; }
  bool found() const { return result_ == Status::kFound; }
  uint64_t value() const { return value_; }
  // Number of retry events (local revalidations + restarts) this lookup ate;
  // multiget aggregates these into Counter::kMultigetRetry.
  uint32_t retries() const { return retries_; }

  // Border-location results (valid after kAtBorder).
  Border* border() const { return n_->as_border(); }
  VersionValue border_version() const { return v_; }
  // Full-lookup hit provenance (valid after kFound): the border node, the
  // version word validated AFTER the slot's keylenx/lv were read, and the
  // slot the key resolved to. This triple is exactly what a record cache
  // needs to later re-validate the entry with changed_since().
  Border* hit_border() const { return n_->as_border(); }
  VersionValue hit_version() const { return v_; }
  int hit_slot() const { return hit_slot_; }
  // The observed true root of the current layer; callers keep it so retries
  // skip forwarding chains (reach_border's in-out root parameter).
  Node* layer_root() const { return root_; }

 private:
  int search_ord() const {
    return key_.has_suffix() ? 9 : static_cast<int>(key_.length_in_slice());
  }

  static void count(ThreadCounters* ctrs, Counter which) {
    if (ctrs != nullptr) {
      ctrs->inc(which);
    }
  }

  Status finish(bool found, uint64_t lv, int slot = -1) {
    state_ = State::kDone;
    value_ = lv;
    hit_slot_ = found ? slot : -1;
    result_ = found ? Status::kFound : Status::kNotFound;
    return result_;
  }

  // The layer this cursor is in has been removed entirely. Border-location
  // callers handle that themselves; full lookups restart from layer 0.
  Status dead_layer(ThreadCounters* ctrs) {
    if (treeroot_ == nullptr) {
      state_ = State::kDone;
      result_ = Status::kDeadLayer;
      return result_;
    }
    count(ctrs, Counter::kGetRetryFromRoot);
    ++retries_;
    key_.unshift_all();
    slice_ = key_.slice();
    ord_ = search_ord();
    root_ = treeroot_->load(std::memory_order_acquire);
    state_ = State::kLayerEntry;
    return Status::kInProgress;
  }

  // Touches root_: stabilize it and ascend stale/retired entry points —
  // deleted nodes forward through parent(); live non-roots climb until the
  // true root (§4.6.4's lazily updated layer roots).
  Status step_layer_entry(ThreadCounters* ctrs) {
    Node* n = root_;
    if (n == nullptr) {
      return dead_layer(ctrs);
    }
    VersionValue v = n->version().stable();
    while (v.deleted() || !v.is_root()) {
      Node* p = n->parent();
      if (p == nullptr) {
        if (v.deleted()) {
          return dead_layer(ctrs);  // this layer was removed entirely
        }
        // Root flag observed clear before the new parent store; reload.
        spin_pause();
        v = n->version().stable();
        continue;
      }
      n = p;
      v = n->version().stable();
    }
    root_ = n;
    return arrive(n, v);
  }

  // Touches child_ (the node prefetch() announced): hand-over-hand
  // validation against the parent we came from (Figure 6).
  Status step_descend(ThreadCounters*) {
    VersionValue cv = child_->version().stable();
    if (!n_->version().changed_since(v_)) {
      return arrive(child_, cv);
    }
    VersionValue v2 = n_->version().stable();
    if (v2.vsplit() != v_.vsplit() || v2.deleted()) {
      state_ = State::kLayerEntry;  // split: retry from the layer root
      return Status::kInProgress;
    }
    v_ = v2;  // plain insert: retry from this node
    return select_child();
  }

  // Adopt a node the descent just validated its way into.
  Status arrive(Node* n, VersionValue v) {
    n_ = n;
    v_ = v;
    if (v.is_border()) {
      if (treeroot_ == nullptr) {
        state_ = State::kDone;
        result_ = Status::kAtBorder;
        return result_;
      }
      state_ = State::kBorder;
      return Status::kInProgress;
    }
    return select_child();
  }

  // At interior n_ (already in cache) with stable v_: pick the child the next
  // step will touch. Loops only over hot re-reads of n_.
  Status select_child() {
    for (;;) {
      if (v_.deleted()) {
        root_ = n_;  // re-entry ascends through the forwarding parent pointer
        state_ = State::kLayerEntry;
        return Status::kInProgress;
      }
      Interior* in = n_->as_interior();
      child_ = in->child(in->child_index(slice_));
      if (child_ != nullptr) {
        state_ = State::kDescend;
        return Status::kInProgress;
      }
      // Torn read during a concurrent reshape; re-stabilize and retry.
      v_ = n_->version().stable();
    }
  }

  // Figure 7's forward loop: search the border, validate, follow the B-link
  // chain right when the key's range moved, descend layers, spin across the
  // §4.6.3 UNSTABLE window.
  Status step_border(ThreadCounters* ctrs) {
    for (;;) {
      if (v_.deleted()) {
        root_ = n_;  // re-entry follows the forwarding pointer
        state_ = State::kLayerEntry;
        return Status::kInProgress;
      }
      Border* n = n_->as_border();
      Permuter perm = n->permutation();
      int pos;
      int slot = n->find(perm, slice_, ord_, &pos);
      uint8_t kx = 0;
      uint64_t lv = 0;
      bool suffix_eq = false;
      if (slot >= 0) {
        kx = n->keylenx(slot);
        lv = n->lv(slot);
        if (keylenx_has_suffix(kx)) {
          // key_.has_suffix() first: kx is re-read after find() and may be
          // torn relative to the match (a racing insert or make-layer can
          // rewrite the slot between the two loads). A suffix-bearing slot
          // cannot stably match a key with under 9 bytes left, so the
          // version check below retries the mismatch — but key_.suffix()
          // must not be asked for bytes the key does not have.
          StringBag* bag = n->suffixes();
          suffix_eq = key_.has_suffix() && bag != nullptr &&
                      bag->get(slot) == key_.suffix();
        }
      }
      if (n->version().changed_since(v_)) {
        // Stabilize, then chase the B-link chain right if the key's range
        // moved (Figure 7's while loop).
        v_ = n->version().stable();
        count(ctrs, Counter::kGetRetryLocal);
        ++retries_;
        Border* nx = n->next();
        while (!v_.deleted() && nx != nullptr && slice_ >= nx->lowkey()) {
          n = nx;
          v_ = n->version().stable();
          nx = n->next();
          count(ctrs, Counter::kGetForward);
        }
        n_ = n;
        continue;
      }
      if (slot < 0) {
        return finish(false, 0);
      }
      if (kx <= 8) {
        return finish(true, lv, slot);
      }
      if (keylenx_has_suffix(kx)) {
        return finish(suffix_eq, lv, slot);
      }
      if (keylenx_is_layer(kx)) {
        // Layer descend (§4.6.3): advance the key one slice and re-enter at
        // the sub-layer's stored root.
        root_ = reinterpret_cast<Node*>(lv);
        key_.shift();
        slice_ = key_.slice();
        ord_ = search_ord();
        state_ = State::kLayerEntry;
        return Status::kInProgress;
      }
      // UNSTABLE: a layer is being created under this slot; spin (§4.6.3).
      spin_pause();
    }
  }

  const std::atomic<Node*>* treeroot_;  // null in border-location mode
  Key key_;
  Node* root_ = nullptr;   // current layer's entry point / observed true root
  Node* n_ = nullptr;      // current node (stable version v_)
  Node* child_ = nullptr;  // pending hop target in kDescend
  uint64_t slice_ = 0;
  int ord_ = 0;
  VersionValue v_;
  uint64_t value_ = 0;
  int hit_slot_ = -1;
  uint32_t retries_ = 0;
  State state_ = State::kLayerEntry;
  Status result_ = Status::kInProgress;
};

// WriteCursor — the locked-writer variant of the resumable descent (§4.8's
// batched operation applied to puts/removes).
//
// A border-location LookupCursor finds the border responsible for a slice;
// the locked writers then need locate_locked's tail: take the border's lock,
// restart through the forwarding parent if the node was deleted in the
// meantime, and follow the B-link next() chain right hand-over-hand under
// lock when a concurrent split moved the slice's range. Before this existed
// that tail lived only inside BasicTree::locate_locked's synchronous loop;
// WriteCursor packages descent + acquire as one resumable machine so
// BasicTree::multiput can round-robin a window of in-flight write descents
// exactly like multiget does with LookupCursors — every cursor's next cache
// line announced via prefetch() before any node is touched — while
// locate_locked itself becomes the one-cursor synchronous driver.
//
// Terminal states: kLocked (border() is LOCKED and responsible for the
// slice; the caller applies its write and must unlock or consume the lock)
// or kDeadLayer (the entered layer was removed; the caller restarts from
// layer 0 via reset()). At most one border lock is ever held per cursor, and
// a batch driver applies-and-releases at each kLocked before stepping any
// other cursor, so batched writers acquire exactly like sequential ones and
// cannot invert lock order.

template <typename C>
class WriteCursor {
 public:
  using Node = NodeBase<C>;
  using Border = BorderNode<C>;

  enum class Status : uint8_t {
    kInProgress,
    kLocked,     // border() locked and responsible for the slice
    kDeadLayer,  // the entered layer was removed entirely
  };

  // Locate-and-lock the border responsible for `slice` in the layer entered
  // at `entry`.
  WriteCursor(Node* entry, uint64_t slice) : slice_(slice) {
    look_.emplace(entry, slice);
  }

  // Re-arm for a new (entry, slice) — used after a layer shift or a restart
  // from the tree root.
  void reset(Node* entry, uint64_t slice) {
    slice_ = slice;
    locked_ = nullptr;
    root_ = nullptr;
    look_.emplace(entry, slice);
  }

  void prefetch() const {
    if (look_) {
      look_->prefetch();
    }
  }

  // Advance by roughly one DRAM touch. `ctrs` (nullable) receives the
  // kGetForward events the synchronous locate_locked counted; descent-side
  // retries are aggregated in retries() like LookupCursor's.
  Status step(ThreadCounters* ctrs) {
    using LStatus = typename LookupCursor<C>::Status;
    LStatus st = look_->step(nullptr);
    if (st == LStatus::kInProgress) {
      return Status::kInProgress;
    }
    if (st == LStatus::kDeadLayer) {
      return Status::kDeadLayer;
    }
    assert(st == LStatus::kAtBorder);
    // locate_locked's tail: acquire, then settle responsibility under lock.
    Border* n = look_->border();
    root_ = look_->layer_root();
    n->version().lock();
    if (n->version().load().deleted()) {
      n->version().unlock();
      return restart_at(n);
    }
    for (;;) {
      Border* nx = n->next();
      if (nx == nullptr || slice_ < nx->lowkey()) {
        locked_ = n;
        return Status::kLocked;
      }
      if (ctrs != nullptr) {
        ctrs->inc(Counter::kGetForward);
      }
      nx->version().lock();
      n->version().unlock();
      n = nx;
      if (n->version().load().deleted()) {
        n->version().unlock();
        return restart_at(n);
      }
    }
  }

  // Synchronous driver: prefetch-then-step to completion (locate_locked).
  Status run(ThreadCounters* ctrs) {
    for (;;) {
      prefetch();
      Status s = step(ctrs);
      if (s != Status::kInProgress) {
        return s;
      }
    }
  }

  // Valid after kLocked: the LOCKED responsible border, still held.
  Border* locked() const { return locked_; }
  // The observed true root of the current layer (reach_border's in-out root).
  Node* layer_root() const { return root_; }
  // Descent retries eaten so far (restarts after losing a deleted border plus
  // the inner lookup's revalidations).
  uint32_t retries() const {
    return retries_ + (look_ ? look_->retries() : 0);
  }

 private:
  // The locked border died under us: re-descend through its forwarding
  // parent pointer, exactly like locate_locked's deleted-node retry.
  Status restart_at(Border* n) {
    ++retries_;
    retries_ += look_->retries();
    look_.emplace(static_cast<Node*>(n), slice_);
    return Status::kInProgress;
  }

  std::optional<LookupCursor<C>> look_;
  uint64_t slice_ = 0;
  Border* locked_ = nullptr;
  Node* root_ = nullptr;
  uint32_t retries_ = 0;
};

// ScanCursor — the resumable sibling of LookupCursor for §3's getrange.
//
// Where LookupCursor resolves one key, ScanCursor streams an ordered range:
// it snapshots one whole border node at a time into cursor-private storage —
// a stacked arena of fixed-width Entry records (`ents_`), one slab per
// trie-layer frame, with suffixes captured as zero-copy views into the
// node's append-only, epoch-protected StringBag instead of per-entry heap
// strings — validates the copy against the node's version word (Figure 7),
// and then advances border-to-border along the B-link next() chain. Because
// every layer frame keeps its own snapshot alive in the arena, popping back
// out of a sub-layer resumes the parent's already-validated copy where it
// left off; reach_border-style descents happen only on layer entry, when a
// node fell off the chain (deleted / dead layer), or when the cursor
// re-attaches after an epoch gap — never per node visit or per layer pop,
// which is what makes long scans allocation-free and descent-free in steady
// state (Counter::kScanNodes vs kScanRedescents).
//
// Suffix views stay valid for the whole drive because StringBags never
// overwrite published bytes and replaced bags are epoch-reclaimed, so the
// caller's epoch guard pins them; the bytes are copied exactly once, into
// the key buffer, when a pair's key is materialized.
//
// The trie-layer stack reuses one frame vector and one key buffer: each layer
// owns a fixed prefix of `keybuf_` (grown in place, never reallocated per
// frame), and the per-frame resume suffix lives in a single reused buffer
// (only the top frame can have one). Every buffer growth event is counted in
// Counter::kScanAllocs and alloc_events(); on the steady-state chain-walk
// path that count stays zero — the perf claim is a counter, not a vibe.
//
// Driving protocol:
//
//   ScanCursor<C> cur(root, first_key);   // or cur.reset(root, first_key)
//   while (size_t n = cur.next_batch(&ti.counters())) {
//     cur.prefetch_pending();              // overlap the next border's fetch
//     for (size_t i = 0; i < n; ++i) emit(cur.key(i), cur.value(i));
//   }
//
// One batch is the run of emittable pairs from one validated border snapshot
// (a mid-node layer link ends the batch early). Epoch rules: everything that
// touches the tree or a batch — next_batch(), prefetch_pending(),
// key()/value(), detach() — runs under the caller's epoch guard, and the
// guard must be *continuous* across consecutive next_batch() calls. To
// release it between batches, call detach() while the guard is still held —
// the cursor converts its position to a pure key-valued resume point and the
// next next_batch() (under a fresh guard) re-descends from the root (one
// kScanRedescents event), exactly like a fresh scan starting just after the
// last returned pair.
//
// Snapshot-per-node is also the consistency guarantee: pairs from one border
// node form an atomic snapshot, but the scan as a whole is not atomic with
// respect to concurrent inserts/removes (§3). Keys present for the whole
// scan are always reported; concurrently inserted/removed keys may or may
// not be.

template <typename C>
class ScanCursor {
 public:
  using Node = NodeBase<C>;
  using Border = BorderNode<C>;
  static constexpr int kWidth = Border::kWidth;

  // Starts a scan at the first key >= `first` (`first` is copied; the view
  // need not outlive the call).
  ScanCursor(const std::atomic<Node*>& treeroot, std::string_view first)
      : treeroot_(&treeroot) {
    resume_key_.assign(first);
  }

  // An empty cursor to be reset() before use — exists so drivers can keep a
  // long-lived cursor whose buffers stay warm across many scans.
  ScanCursor() = default;

  // Re-aim the cursor at a new range (and possibly a new tree), keeping
  // every buffer's capacity. This is the allocation-free way to run many
  // scans: after the first few, reset() + a full drive allocate nothing.
  void reset(const std::atomic<Node*>& treeroot, std::string_view first) {
    treeroot_ = &treeroot;
    size_t cap0 = resume_key_.capacity();
    resume_key_.assign(first);
    track_growth(cap0, resume_key_.capacity());
    resume_skip_ = false;
    done_ = false;
    frames_.clear();
    batch_count_ = 0;
  }

  // Advances to the next run of emittable pairs. Returns the batch size, 0
  // when the scan is exhausted. Requires an epoch guard held continuously
  // since the previous next_batch() (or a detach() in between).
  //
  // `max_pairs` is the driver's remaining limit: snapshots stop copying once
  // they can satisfy it (plus one entry for a possible boundary skip), so a
  // short scan never pays for a whole node's worth of entries. A truncated
  // node is revisited — never skipped — by the next call. The returned batch
  // may hold up to max_pairs + 1 pairs; drivers that stop mid-batch at their
  // limit must not reuse the cursor afterwards (detach's resume point is the
  // batch's last pair).
  size_t next_batch(ThreadCounters* ctrs, size_t max_pairs = ~size_t{0}) {
    ctrs_ = ctrs;
    hint_ = max_pairs == 0 ? 1 : max_pairs;
    batch_count_ = 0;
    if (done_) {
      return 0;
    }
    if (frames_.empty()) {
      attach();
    }
    for (;;) {
      if (frames_.empty()) {
        done_ = true;
        return 0;
      }
      if (!frames_.back().snap_valid) {
        Frame& f = frames_.back();
        if (f.node == nullptr && !locate(f)) {
          continue;
        }
        take_snapshot();
        continue;  // take_snapshot may have redirected to a re-descent
      }
      if (consume()) {
        return batch_count_;
      }
      if (done_) {
        return 0;
      }
    }
  }

  size_t size() const { return batch_count_; }

  uint64_t value(size_t i) const {
    assert(i < batch_count_);
    return ents_[batch_lo_ + i].lv;
  }

  // Materializes batch pair i's full key into the shared key buffer. The
  // view is valid until the next key()/next_batch() call. Reads the suffix
  // bytes through the snapshot's StringBag view: call under the guard.
  //
  // keybuf_ is used as raw storage (its size is a high-water mark; logical
  // lengths live in the frames and the returned view), so materializing a
  // pair is two inline memcpys, not string appends.
  std::string_view key(size_t i) {
    assert(i < batch_count_);
    const Entry& e = ents_[batch_lo_ + i];
    int eo = keylenx_ord(e.kx);
    size_t klen = eo < 9 ? static_cast<size_t>(eo) : kSliceBytes;
    size_t total = batch_prefix_len_ + klen + e.suf_len;
    reserve_keybuf(batch_prefix_len_ + kSliceBytes + e.suf_len);
    char* p = keybuf_.data() + batch_prefix_len_;
    slice_to_bytes(e.slice, p);  // full 8 bytes; the view exposes klen of them
    if (e.suf_len != 0) {
      std::memcpy(p + kSliceBytes, e.suf, e.suf_len);
    }
    return std::string_view(keybuf_.data(), total);
  }

  // Announce the memory the next next_batch() will touch — the pending
  // border (and its suffix StringBag) when the chain walk already knows it,
  // or the sub-layer root when the batch stopped at a layer link — so the
  // fetch overlaps with the caller's emission of the current batch.
  // Dereferences shared nodes: call under the same epoch guard as the
  // next_batch() that produced the batch.
  void prefetch_pending() const {
    if constexpr (!C::kPrefetch) {
      return;
    }
    if (done_ || frames_.empty()) {
      return;
    }
    const Frame& f = frames_.back();
    if (f.snap_valid) {
      if (f.snap_pos < f.snap_count) {
        const Entry& e = ents_[f.ent_off + static_cast<size_t>(f.snap_pos)];
        if (keylenx_is_layer(e.kx)) {
          prefetch_object(reinterpret_cast<const Node*>(e.lv), sizeof(Border));
          return;
        }
      }
      if (f.snap_next != nullptr) {
        prefetch_border(f.snap_next);
      }
      return;
    }
    if (f.node != nullptr) {
      prefetch_border(f.node);
    } else if (f.root != nullptr) {
      prefetch_object(f.root, sizeof(Border));
    }
  }

  // Converts the cursor's position into a pure key-valued resume point and
  // forgets every node pointer, so the caller may drop its epoch guard
  // afterwards. Call while the guard is still held (the resume key is
  // materialized from the snapshot's StringBag views). The next next_batch()
  // (under a fresh guard) re-descends from the tree root to just past the
  // last returned pair.
  void detach() {
    if (done_) {
      return;
    }
    if (batch_count_ > 0) {
      std::string_view last = key(batch_count_ - 1);
      size_t cap0 = resume_key_.capacity();
      resume_key_.assign(last);
      track_growth(cap0, resume_key_.capacity());
      resume_skip_ = true;
    }
    frames_.clear();
  }

  bool done() const { return done_; }

  // Buffer growth events since construction. After warm-up (buffers sized to
  // the workload's key shapes) the steady-state chain walk adds zero.
  uint32_t alloc_events() const { return alloc_events_; }

 private:
  // cord value meaning "past every key with cslice in this layer" — used for
  // parent frames while a sub-layer scan is in flight, so popping back never
  // re-enters the exhausted layer.
  static constexpr int kPastSlice = 10;

  struct Frame {
    Node* root;        // observed true root of this layer
    Border* node;      // current border; nullptr => locate via reach_border
    size_t prefix_len; // bytes of keybuf_ owned by enclosing layers
    uint64_t cslice;   // resume point: next key must be >= (cslice, cord, csuf_)
    int cord;          // 0..9, or kPastSlice
    bool skip_equal;   // position is exclusive (a pair was already emitted)
    // This frame's snapshot slab: ents_[ent_off, ent_off + snap_count). It
    // stays live while sub-layer frames run above it, so popping back just
    // continues at snap_pos.
    bool snap_valid;
    int snap_pos;
    int snap_count;
    Border* snap_next;  // right sibling read inside the validated snapshot
    size_t ent_off;
  };

  // One border-node entry. `suf` views the node's StringBag — append-only
  // and epoch-protected, so the view outlives the snapshot for as long as
  // the caller's guard does.
  struct Entry {
    uint64_t slice;
    uint64_t lv;
    const char* suf;
    uint32_t suf_len;
    uint8_t kx;
  };

  static void prefetch_border(const Border* n) {
    prefetch_object(n, sizeof(Border));
    const StringBag* bag = n->suffixes();
    if (bag != nullptr) {
      prefetch_object(bag, LookupCursor<C>::kSuffixPrefetchBytes);
    }
  }

  void count(Counter which) {
    if (ctrs_ != nullptr) {
      ctrs_->inc(which);
    }
  }

  void track_growth(size_t cap_before, size_t cap_after) {
    if (cap_after != cap_before) {
      ++alloc_events_;
      count(Counter::kScanAllocs);
    }
  }

  // keybuf_'s size is a monotone high-water mark over raw key storage;
  // growth happens only when a deeper layer or longer key shape first
  // appears.
  void reserve_keybuf(size_t n) {
    if (keybuf_.size() < n) {
      size_t cap0 = keybuf_.capacity();
      keybuf_.resize(n);
      track_growth(cap0, keybuf_.capacity());
    }
  }

  // (Re)build the frame stack from the key-valued resume point: one layer-0
  // frame whose cursor decomposes resume_key_ into (slice, ord, suffix).
  // Deeper resume layers are re-entered organically — the layer link at the
  // resume slice matches the frame cursor and descend() consumes another 8
  // bytes of the resume suffix.
  void attach() {
    frames_.clear();
    Frame f0;
    f0.root = treeroot_->load(std::memory_order_acquire);
    f0.node = nullptr;
    f0.prefix_len = 0;
    f0.cslice = make_slice(resume_key_);
    f0.cord = resume_key_.size() > kSliceBytes ? 9 : static_cast<int>(resume_key_.size());
    f0.skip_equal = resume_skip_;
    f0.snap_valid = false;
    f0.snap_pos = 0;
    f0.snap_count = 0;
    f0.snap_next = nullptr;
    f0.ent_off = 0;
    size_t cap0 = csuf_.capacity();
    if (resume_key_.size() > kSliceBytes) {
      csuf_.assign(resume_key_, kSliceBytes, std::string::npos);
    } else {
      csuf_.clear();
    }
    track_growth(cap0, csuf_.capacity());
    size_t fcap0 = frames_.capacity();
    frames_.push_back(f0);
    track_growth(fcap0, frames_.capacity());
  }

  // Locate the border responsible for f.cslice in f's layer (the shared
  // reach_border machine). True: f.node set. False: the layer died — the
  // frame was popped (or layer 0's root reloaded) and the caller re-loops.
  bool locate(Frame& f) {
    count(Counter::kScanRedescents);
    LookupCursor<C> cur(f.root, f.cslice);
    if (cur.run(nullptr) == LookupCursor<C>::Status::kDeadLayer) {
      if (frames_.size() == 1) {
        f.root = treeroot_->load(std::memory_order_acquire);
        return false;
      }
      pop_frame();
      return false;
    }
    f.root = cur.layer_root();
    f.node = cur.border();
    return true;
  }

  void pop_frame() {
    // The arena rewinds implicitly: slab offsets are derived from the
    // surviving frames, and the popped slab's records are left untouched
    // until the next snapshot overwrites them (a batch returned by this very
    // call may still read them).
    frames_.pop_back();
    if (frames_.empty()) {
      done_ = true;
    }
  }

  // Copy the top frame's border into its arena slab and validate the copy
  // against the node's version (Figure 7's read protocol, batched). On a
  // deleted node the frame is redirected to re-descend through the
  // forwarding parent pointer instead.
  void take_snapshot() {
    Frame& f = frames_.back();
    Border* n = f.node;
    if (ents_.size() < f.ent_off + static_cast<size_t>(kWidth)) {
      size_t cap0 = ents_.capacity();
      ents_.resize(f.ent_off + static_cast<size_t>(kWidth));
      track_growth(cap0, ents_.capacity());
    }
    Entry* snap = ents_.data() + f.ent_off;
    for (;;) {
      VersionValue v = n->version().stable();
      if (v.deleted()) {
        // Fell off the chain: re-enter the layer via forwarding pointers
        // (locate() counts the re-descent).
        f.root = n;
        f.node = nullptr;
        return;
      }
      Permuter perm = n->permutation();
      Border* nx = n->next();
      // Skip entries strictly below the resume point at copy time (an
      // in-node search over the same permutation snapshot), so a short scan
      // starting mid-node never copies the node's irrelevant prefix.
      // Boundary entries (equal slice+ord) are still copied; consume() owns
      // the suffix-compare / skip-equal decision.
      int start = 0;
      if (f.cslice != 0 || f.cord != 0) {
        n->find(perm, f.cslice, f.cord, &start);
      }
      // Copy no more than the driver can emit, plus one entry for the single
      // possible boundary skip (at most one entry can equal the resume
      // point). A truncated snapshot "hops" back to this same node so the
      // rest of it is picked up by the next call — the +1 guarantees every
      // revisit makes progress.
      int cap = kWidth;
      if (hint_ < static_cast<size_t>(kWidth)) {
        cap = static_cast<int>(hint_) + 1;
      }
      int cnt = 0;
      int i = start;
      bool unstable = false;
      StringBag* bag = n->suffixes();
      for (; i < perm.size() && cnt < cap; ++i) {
        int s = perm.get(i);
        Entry& e = snap[cnt++];
        e.slice = n->slice(s);
        e.kx = n->keylenx(s);
        e.lv = n->lv(s);
        e.suf = nullptr;
        e.suf_len = 0;
        if (keylenx_has_suffix(e.kx)) {
          if (bag != nullptr) {
            std::string_view suf = bag->get(s);
            e.suf = suf.data();
            e.suf_len = static_cast<uint32_t>(suf.size());
          }
        } else if (keylenx_is_unstable(e.kx)) {
          unstable = true;
        }
      }
      if (n->version().changed_since(v)) {
        // An insert or split landed mid-copy. Re-stabilize and re-copy this
        // same node: splits move keys strictly right, so anything that left
        // is met later on the next() chain — no re-descent needed.
        count(Counter::kScanRetries);
        continue;
      }
      if (unstable) {
        spin_pause();  // §4.6.3 layer creation in flight under a slot
        count(Counter::kScanRetries);
        continue;
      }
      f.snap_count = cnt;
      f.snap_pos = 0;
      // A truncated snapshot hops back to this same node — never to the
      // sibling, which would skip the uncopied tail; the revisit re-snapshots
      // from the settled resume cursor and the +1 over the hint guarantees it
      // makes progress.
      f.snap_next = i < perm.size() ? n : nx;
      f.snap_valid = true;
      count(Counter::kScanNodes);
      return;
    }
  }

  // Advance the frame's resume cursor to the last pair a consume() pass
  // emitted — once per batch, not per pair (only the final position
  // matters; the strict entry ordering makes the stale in-batch cursor
  // harmless to the filters).
  void settle_cursor(Frame& f, const Entry* last_emitted) {
    if (last_emitted == nullptr) {
      return;
    }
    f.cslice = last_emitted->slice;
    f.cord = keylenx_ord(last_emitted->kx);
    f.skip_equal = true;
    if (keylenx_has_suffix(last_emitted->kx)) {
      size_t cap0 = csuf_.capacity();
      csuf_.assign(last_emitted->suf, last_emitted->suf_len);
      track_growth(cap0, csuf_.capacity());
    } else {
      csuf_.clear();
    }
  }

  // Consume validated snapshot entries into a batch. True: a non-empty batch
  // is ready. False: keep driving (descended into a sub-layer, or the node
  // held nothing emittable and the cursor hopped the chain / popped).
  bool consume() {
    Frame& f = frames_.back();
    batch_lo_ = f.ent_off + static_cast<size_t>(f.snap_pos);
    batch_count_ = 0;
    batch_prefix_len_ = f.prefix_len;
    const Entry* last_emitted = nullptr;
    while (f.snap_pos < f.snap_count) {
      Entry& e = ents_[f.ent_off + static_cast<size_t>(f.snap_pos)];
      int eo = keylenx_ord(e.kx);
      // Filter entries at or before the resume point. Entries are strictly
      // increasing by (slice, ord), so skips only ever precede the batch.
      if (e.slice < f.cslice || (e.slice == f.cslice && eo < f.cord)) {
        assert(batch_count_ == 0);
        batch_lo_ = f.ent_off + static_cast<size_t>(++f.snap_pos);
        continue;
      }
      if (e.slice == f.cslice && eo == f.cord) {
        if (eo < 9) {
          if (f.skip_equal) {
            assert(batch_count_ == 0);
            batch_lo_ = f.ent_off + static_cast<size_t>(++f.snap_pos);
            continue;
          }
        } else if (keylenx_has_suffix(e.kx)) {
          std::string_view suf(e.suf, e.suf_len);
          int c = suf.compare(csuf_);
          if (c < 0 || (c == 0 && f.skip_equal)) {
            assert(batch_count_ == 0);
            batch_lo_ = f.ent_off + static_cast<size_t>(++f.snap_pos);
            continue;
          }
        }
      }
      if (keylenx_is_layer(e.kx)) {
        if (batch_count_ > 0) {
          settle_cursor(f, last_emitted);
          return true;  // flush first; next_batch() resumes at this link
        }
        descend(e);
        return false;
      }
      // Flush before the documented max_pairs + 1 bound is exceeded: a
      // parent snapshot replayed after a layer pop can hold more remaining
      // entries than this call's hint (take_snapshot only caps fresh copies).
      // The snapshot stays valid; the next call resumes at snap_pos.
      if (batch_count_ > hint_) {
        settle_cursor(f, last_emitted);
        return true;
      }
      // Emittable pair; the frame cursor is settled once at batch end.
      last_emitted = &e;
      ++f.snap_pos;
      ++batch_count_;
    }
    settle_cursor(f, last_emitted);
    // Snapshot exhausted: hop to the already-known right sibling (the
    // allocation-free, descent-free fast path) or pop the layer (the parent
    // frame's own snapshot is still live in the arena — no re-descent, no
    // re-snapshot; it just continues at its saved position).
    f.snap_valid = false;
    if (f.snap_next != nullptr) {
      f.node = f.snap_next;
    } else {
      pop_frame();
    }
    return batch_count_ > 0;
  }

  // Push a sub-layer frame for layer link `e`. The parent cursor moves past
  // the link's slice (kPastSlice) so the exhausted layer is never re-entered;
  // the child inherits the remaining resume suffix when the link sits exactly
  // at the parent's resume slice. The parent's snapshot stays live in the
  // arena below the child's slab.
  void descend(const Entry& e) {
    Frame& f = frames_.back();
    bool use_sub = e.slice == f.cslice && f.cord == 9;
    bool subskip = use_sub && f.skip_equal;
    f.cslice = e.slice;
    f.cord = kPastSlice;
    f.skip_equal = false;
    ++f.snap_pos;  // the link is consumed; the pop resumes past it
    size_t parent_prefix = f.prefix_len;
    reserve_keybuf(parent_prefix + kSliceBytes);
    slice_to_bytes(e.slice, keybuf_.data() + parent_prefix);
    Frame nf;
    nf.root = reinterpret_cast<Node*>(e.lv);
    nf.node = nullptr;
    nf.prefix_len = parent_prefix + kSliceBytes;
    nf.snap_valid = false;
    nf.snap_pos = 0;
    nf.snap_count = 0;
    nf.snap_next = nullptr;
    nf.ent_off = f.ent_off + static_cast<size_t>(f.snap_count);
    if (use_sub) {
      nf.cslice = make_slice(csuf_);
      nf.cord = csuf_.size() > kSliceBytes ? 9 : static_cast<int>(csuf_.size());
      nf.skip_equal = subskip;
      csuf_.erase(0, csuf_.size() < kSliceBytes ? csuf_.size() : kSliceBytes);
    } else {
      nf.cslice = 0;
      nf.cord = 0;
      nf.skip_equal = false;
      csuf_.clear();
    }
    size_t fcap0 = frames_.capacity();
    frames_.push_back(nf);
    track_growth(fcap0, frames_.capacity());
  }

  const std::atomic<Node*>* treeroot_ = nullptr;
  std::vector<Frame> frames_;  // reused layer stack; grows only on new depth
  std::vector<Entry> ents_;    // stacked snapshot arena, one slab per frame
  bool done_ = false;
  size_t batch_lo_ = 0;        // batch start, absolute index into ents_
  size_t batch_count_ = 0;
  size_t batch_prefix_len_ = 0;
  size_t hint_ = ~size_t{0};   // driver's remaining-pairs limit for snapshots
  std::string keybuf_;      // layer prefixes + materialized key, in place
  std::string csuf_;        // top frame's resume suffix
  std::string resume_key_;  // key-valued resume point for detach/attach
  bool resume_skip_ = false;
  uint32_t alloc_events_ = 0;
  ThreadCounters* ctrs_ = nullptr;
};

}  // namespace masstree

#endif  // MASSTREE_CORE_CURSOR_H_
