// The per-node version word (§4.5, Figure 3) and its protocol helpers
// (Figure 4: stableversion, lock, unlock).
//
// Layout (32 bits):
//
//   bit  0        locked      — claimed by update/insert/split
//   bit  1        inserting   — dirty: keys being added / slots reused
//   bit  2        splitting   — dirty: keys moving between nodes
//   bits 3..10    vinsert     — counter, incremented on unlock after insert
//   bits 11..27   vsplit      — counter, incremented on unlock after split
//   bit  28       (unused)    — "allows more efficient operations"
//   bit  29       deleted     — node removed; any op that sees it retries
//   bit  30       isroot      — node is the root of some B+-tree (layer)
//   bit  31       isborder    — border vs interior
//
// vsplit is wider than vinsert because split detection drives retry-from-root
// correctness: a reader paused across 2^17 splits of one node is implausible,
// while vinsert wrap only risks an extra local retry. (The paper's Figure 3
// makes the same asymmetry; its footnote 3 discusses wrap.)

#ifndef MASSTREE_CORE_VERSION_H_
#define MASSTREE_CORE_VERSION_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "core/policy.h"
#include "util/compiler.h"

namespace masstree {

// A snapshot of a version word; cheap value type used by readers.
class VersionValue {
 public:
  static constexpr uint32_t kLocked = 1u << 0;
  static constexpr uint32_t kInserting = 1u << 1;
  static constexpr uint32_t kSplitting = 1u << 2;
  static constexpr uint32_t kDirty = kInserting | kSplitting;
  static constexpr uint32_t kVinsertLow = 1u << 3;
  static constexpr uint32_t kVinsertMask = 0xFFu << 3;
  static constexpr uint32_t kVsplitLow = 1u << 11;
  static constexpr uint32_t kVsplitMask = 0x1FFFFu << 11;
  static constexpr uint32_t kDeleted = 1u << 29;
  static constexpr uint32_t kRoot = 1u << 30;
  static constexpr uint32_t kBorder = 1u << 31;

  VersionValue() : v_(0) {}
  explicit VersionValue(uint32_t v) : v_(v) {}

  uint32_t raw() const { return v_; }
  bool locked() const { return v_ & kLocked; }
  bool inserting() const { return v_ & kInserting; }
  bool splitting() const { return v_ & kSplitting; }
  bool dirty() const { return v_ & kDirty; }
  bool deleted() const { return v_ & kDeleted; }
  bool is_root() const { return v_ & kRoot; }
  bool is_border() const { return v_ & kBorder; }
  uint32_t vinsert() const { return (v_ & kVinsertMask) >> 3; }
  uint32_t vsplit() const { return (v_ & kVsplitMask) >> 11; }

 private:
  uint32_t v_;
};

// The version word itself, embedded in every node.
template <typename P>
class NodeVersion {
 public:
  using V = VersionValue;

  explicit NodeVersion(uint32_t init) : v_(init) {}

  // Plain snapshot (acquire): orders subsequent field reads after it.
  V load() const {
    if constexpr (P::kConcurrent) {
      return V(v_.load(std::memory_order_acquire));
    } else {
      return V(v_.load(std::memory_order_relaxed));
    }
  }

  // Figure 4 stableversion: spin until not dirty.
  V stable() const {
    if constexpr (P::kConcurrent) {
      uint32_t x = v_.load(std::memory_order_acquire);
      while (MT_UNLIKELY(x & V::kDirty)) {
        spin_pause();
        x = v_.load(std::memory_order_acquire);
      }
      return V(x);
    } else {
      return load();
    }
  }

  // True iff the node changed since `since` in any way a reader must care
  // about (anything but the lock bit: dirty marks or counter bumps).
  bool changed_since(V since) const {
    if constexpr (P::kConcurrent) {
      uint32_t cur = v_.load(std::memory_order_acquire);
      return ((cur ^ since.raw()) & ~V::kLocked) != 0;
    } else {
      (void)since;
      return false;
    }
  }

  // True iff a *split* (or delete) happened since `since`; insert-only
  // changes return false. Figure 6 uses this to retry locally vs from root.
  bool split_since(V since) const {
    if constexpr (P::kConcurrent) {
      uint32_t cur = v_.load(std::memory_order_acquire);
      return ((cur ^ since.raw()) & (V::kVsplitMask | V::kDeleted)) != 0;
    } else {
      (void)since;
      return false;
    }
  }

  // Figure 4 lock: spin on the lock bit.
  void lock() {
    if constexpr (P::kConcurrent) {
      for (;;) {
        uint32_t x = v_.load(std::memory_order_relaxed);
        if (!(x & V::kLocked) &&
            v_.compare_exchange_weak(x, x | V::kLocked, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
          return;
        }
        spin_pause();
      }
    } else {
      assert(!(v_.load(std::memory_order_relaxed) & V::kLocked));
      v_.store(v_.load(std::memory_order_relaxed) | V::kLocked, std::memory_order_relaxed);
    }
  }

  bool try_lock() {
    if constexpr (P::kConcurrent) {
      uint32_t x = v_.load(std::memory_order_relaxed);
      return !(x & V::kLocked) &&
             v_.compare_exchange_strong(x, x | V::kLocked, std::memory_order_acquire,
                                        std::memory_order_relaxed);
    } else {
      lock();
      return true;
    }
  }

  // Figure 4 unlock: one memory write that clears locked/inserting/splitting
  // and bumps the matching counter.
  void unlock() {
    uint32_t x = v_.load(std::memory_order_relaxed);
    assert(x & V::kLocked);
    if (x & V::kInserting) {
      x = (x & ~V::kVinsertMask) | ((x + V::kVinsertLow) & V::kVinsertMask);
    } else if (x & V::kSplitting) {
      x = (x & ~V::kVsplitMask) | ((x + V::kVsplitLow) & V::kVsplitMask);
    }
    x &= ~(V::kLocked | V::kInserting | V::kSplitting);
    if constexpr (P::kConcurrent) {
      v_.store(x, std::memory_order_release);
    } else {
      v_.store(x, std::memory_order_relaxed);
    }
  }

  // Dirty marks. Must hold the lock. RMW so the mark is ordered before the
  // field writes that follow it (§4.6's "mark as dirty before creating
  // intermediate states").
  void mark_inserting() { set_bits(V::kInserting); }
  void mark_splitting() { set_bits(V::kSplitting); }
  // Deletion counts as a split: readers must retry from the root (§4.6.5).
  void mark_deleted() { set_bits(V::kDeleted | V::kSplitting); }

  void set_root(bool on) {
    if (on) {
      set_bits(V::kRoot);
    } else {
      clear_bits(V::kRoot);
    }
  }

  bool is_border_relaxed() const {
    return v_.load(std::memory_order_relaxed) & V::kBorder;
  }

  // Copy dirty/counter state from a splitting node into its fresh sibling,
  // locked (Figure 5: "n'.version <- n.version // n' is initially locked").
  void assign_locked_from(V src) {
    v_.store(src.raw() | V::kLocked, std::memory_order_relaxed);
  }

 private:
  void set_bits(uint32_t bits) {
    assert(v_.load(std::memory_order_relaxed) & V::kLocked);
    if constexpr (P::kConcurrent) {
      v_.fetch_or(bits, std::memory_order_acq_rel);
    } else {
      v_.store(v_.load(std::memory_order_relaxed) | bits, std::memory_order_relaxed);
    }
  }
  void clear_bits(uint32_t bits) {
    assert(v_.load(std::memory_order_relaxed) & V::kLocked);
    if constexpr (P::kConcurrent) {
      v_.fetch_and(~bits, std::memory_order_acq_rel);
    } else {
      v_.store(v_.load(std::memory_order_relaxed) & ~bits, std::memory_order_relaxed);
    }
  }

  std::atomic<uint32_t> v_;
};

}  // namespace masstree

#endif  // MASSTREE_CORE_VERSION_H_
