// ThreadContext: the per-thread handle every tree/store operation takes
// (mirrors masstree's "threadinfo"). It bundles
//   * an epoch-reclamation slot (readers never write shared memory; freed
//     objects wait in the per-thread limbo list, §4.6.1),
//   * a Flow arena (allocation never takes a global lock, §6.2), and
//   * padded event counters (retry-rate analysis, §6.2).
//
// A ThreadContext must be created and used by a single thread.

#ifndef MASSTREE_CORE_THREADINFO_H_
#define MASSTREE_CORE_THREADINFO_H_

#include <cstddef>
#include <cstdint>

#include "alloc/flow.h"
#include "epoch/epoch.h"
#include "util/counters.h"

namespace masstree {

class ThreadContext {
 public:
  explicit ThreadContext(EpochManager& epochs = EpochManager::global(),
                         Flow& flow = Flow::global())
      : epochs_(&epochs), flow_(&flow) {
    slot_ = epochs_->register_thread();
    arena_ = flow_->acquire_arena();
    bind_thread_arena(arena_);
  }

  ~ThreadContext() {
    if (current_thread_arena() == arena_) {
      bind_thread_arena(nullptr);
    }
    flow_->release_arena(arena_);
    epochs_->unregister_thread(slot_);
  }

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  EpochManager& epochs() { return *epochs_; }
  EpochSlot& slot() { return *slot_; }
  Arena& arena() { return *arena_; }
  ThreadCounters& counters() { return counters_; }

  void* allocate(size_t bytes) { return arena_->allocate(bytes); }

  // Retire an object no longer reachable from the tree; freed after all
  // concurrent readers leave their epochs.
  void retire(void* ptr, void (*deleter)(void*)) { epochs_->retire(*slot_, ptr, deleter); }

  // Retire with the default (Flow) deleter.
  void retire(void* ptr) { epochs_->retire(*slot_, ptr, &Arena::deallocate); }

  // Force-run reclamation (tests and quiescent periods).
  size_t reclaim() {
    epochs_->advance();
    return epochs_->reclaim(*slot_);
  }

  // RAII registration of a dedicated epoch-advancement thread (the Store's
  // background maintenance thread holds one around its ThreadContext).
  // While any advancer is alive, foreground EpochGuards skip their
  // amortized all-slot advance scan; the advancer's periodic reclaim()
  // keeps the global epoch moving instead.
  class BackgroundAdvancer {
   public:
    explicit BackgroundAdvancer(ThreadContext& ti) : epochs_(&ti.epochs()) {
      epochs_->register_background_advancer();
    }
    ~BackgroundAdvancer() { epochs_->unregister_background_advancer(); }
    BackgroundAdvancer(const BackgroundAdvancer&) = delete;
    BackgroundAdvancer& operator=(const BackgroundAdvancer&) = delete;

   private:
    EpochManager* epochs_;
  };

 private:
  EpochManager* epochs_;
  Flow* flow_;
  EpochSlot* slot_;
  Arena* arena_;
  ThreadCounters counters_;
};

}  // namespace masstree

#endif  // MASSTREE_CORE_THREADINFO_H_
