// The border-node permutation (§4.6.2).
//
// "The 64-bit permutation is divided into 16 four-bit subfields. The lowest
//  4 bits, nkeys, holds the number of keys in the node (0-15). The remaining
//  bits constitute a fifteen-element array, keyindex[15], containing a
//  permutation of the numbers 0 through 15. Elements keyindex[0] through
//  keyindex[nkeys-1] store the indexes of the border node's live keys, in
//  increasing order by key. The other elements list currently-unused slots."
//
// (Only slot numbers 0..14 are used; like the published system we keep a
// 15-wide node so the count nibble fits.)
//
// Because the whole order + count is one aligned 64-bit value, a writer
// exposes a new sort order and a new key with a single release store, and
// readers see either the old order without the new key or the new order with
// it — no intermediate states, no version bump for plain inserts.

#ifndef MASSTREE_CORE_PERMUTER_H_
#define MASSTREE_CORE_PERMUTER_H_

#include <cassert>
#include <cstdint>

namespace masstree {

class Permuter {
 public:
  static constexpr int kMaxWidth = 15;

  Permuter() : x_(kEmpty) {}
  explicit Permuter(uint64_t x) : x_(x) {}

  // Empty permutation: zero keys, free list = 0,1,2,...,14 in order.
  static Permuter make_empty() { return Permuter(kEmpty); }

  // Identity over the first n slots: keys 0..n-1 live in slots 0..n-1 in
  // order; used when (re)building nodes during splits.
  static Permuter make_sorted(int n) {
    Permuter p(kEmpty);
    p.x_ = (p.x_ & ~uint64_t(0xF)) | static_cast<uint64_t>(n);
    return p;
  }

  uint64_t value() const { return x_; }

  int size() const { return static_cast<int>(x_ & 0xF); }

  // Slot holding the i-th smallest key (0 <= i < size()), or, for
  // size() <= i < 15, the (i - size())-th unused slot.
  int get(int i) const {
    assert(i >= 0 && i < kMaxWidth);
    return static_cast<int>((x_ >> (4 * (i + 1))) & 0xF);
  }

  // The next free slot (position size()). Requires size() < 15.
  int back() const {
    assert(size() < kMaxWidth);
    return get(size());
  }

  // Insert the free slot `back()` at sorted position i, shifting positions
  // [i, size()) up. Returns the slot that became live.
  int insert_from_back(int i) {
    int n = size();
    assert(n < kMaxWidth && i >= 0 && i <= n);
    int slot = get(n);
    // Bits below position i (count nibble + positions < i) stay put.
    uint64_t low_mask = (uint64_t(1) << (4 * (i + 1))) - 1;
    // Segment of positions [i, n) moves up one nibble.
    uint64_t seg_mask = ((uint64_t(1) << (4 * (n + 1))) - 1) & ~low_mask;
    uint64_t high_mask = ~(((n + 2) >= 16) ? ~uint64_t(0) : ((uint64_t(1) << (4 * (n + 2))) - 1));
    uint64_t x = (x_ & high_mask) | ((x_ & seg_mask) << 4) |
                 (static_cast<uint64_t>(slot) << (4 * (i + 1))) | (x_ & low_mask);
    x_ = (x & ~uint64_t(0xF)) | static_cast<uint64_t>(n + 1);
    return slot;
  }

  // Remove the key at sorted position i; its slot moves to the head of the
  // free list (position size()-1 after the removal). Positions (i, size())
  // shift down one.
  void remove(int i) {
    int n = size();
    assert(n > 0 && i >= 0 && i < n);
    int slot = get(i);
    // New layout: positions <i unchanged; positions i..n-2 = old i+1..n-1;
    // position n-1 = removed slot; positions >=n unchanged; count = n-1.
    uint64_t low_mask = (uint64_t(1) << (4 * (i + 1))) - 1;  // count + positions < i
    uint64_t seg_mask = 0;                                   // old positions i+1..n-1
    if (i + 1 < n) {
      uint64_t seg_lo = (uint64_t(1) << (4 * (i + 2))) - 1;
      uint64_t seg_hi = ((n + 1) >= 16) ? ~uint64_t(0) : ((uint64_t(1) << (4 * (n + 1))) - 1);
      seg_mask = seg_hi & ~seg_lo;
    }
    uint64_t high_mask =
        ((n + 1) >= 16) ? 0 : ~((uint64_t(1) << (4 * (n + 1))) - 1);  // positions >= n
    uint64_t x = (x_ & low_mask) | ((x_ & seg_mask) >> 4) |
                 (static_cast<uint64_t>(slot) << (4 * n)) | (x_ & high_mask);
    x_ = (x & ~uint64_t(0xF)) | static_cast<uint64_t>(n - 1);
  }

  bool operator==(const Permuter& o) const { return x_ == o.x_; }
  bool operator!=(const Permuter& o) const { return x_ != o.x_; }

 private:
  // nibbles, high to low: E D C B A 9 8 7 6 5 4 3 2 1 0 | count=0
  static constexpr uint64_t kEmpty = 0xEDCBA98765432100ull;

  uint64_t x_;
};

}  // namespace masstree

#endif  // MASSTREE_CORE_PERMUTER_H_
