// StringBag — per-border-node key-suffix storage (§4.2).
//
// "Border nodes store the suffixes of their keys in keysuffixes data
//  structures. These are located either inline or in separate memory blocks;
//  Masstree adaptively decides how much per-node memory to allocate for
//  suffixes ... this approach reduces memory usage by up to 16% for workloads
//  with short keys and improves performance by 3%."
//
// Our bag is a single allocation: a header with one packed (pos,len) word per
// slot followed by append-only string data. Adaptivity: nodes start with no
// bag at all (most nodes hold no suffixes); the first suffix allocates a
// small bag sized to fit, and later overflow doubles it. Bags are append-only
// — replacing a slot's suffix writes fresh bytes and republishes the packed
// ref — so concurrent readers either see the old suffix or the new one, and
// the insert's version/permutation validation sorts out which was current.
// Old bags are epoch-reclaimed.

#ifndef MASSTREE_CORE_STRINGBAG_H_
#define MASSTREE_CORE_STRINGBAG_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "core/threadinfo.h"

namespace masstree {

// alignas keeps sizeof a multiple of 8 so the refs() array that directly
// follows the header is properly aligned for std::atomic<uint64_t>.
class alignas(8) StringBag {
 public:
  // Builds an empty bag with room for `data_capacity` suffix bytes across
  // `width` slots.
  static StringBag* make(ThreadContext& ti, int width, size_t data_capacity) {
    size_t bytes = header_bytes(width) + data_capacity;
    auto* bag = static_cast<StringBag*>(ti.allocate(bytes));
    bag->capacity_ = static_cast<uint32_t>(bytes);
    bag->used_ = static_cast<uint32_t>(header_bytes(width));
    bag->width_ = static_cast<uint16_t>(width);
    for (int i = 0; i < width; ++i) {
      bag->refs()[i].store(0, std::memory_order_relaxed);
    }
    return bag;
  }

  // Copy constructor over a new allocation, keeping only the slots whose bit
  // is set in live_mask (used by splits and bag growth).
  static StringBag* make_copy(ThreadContext& ti, const StringBag& src, uint32_t live_mask,
                              size_t extra_capacity) {
    size_t need = header_bytes(src.width_);
    for (int i = 0; i < src.width_; ++i) {
      if (live_mask & (1u << i)) {
        need += src.get(i).size();
      }
    }
    StringBag* bag = make(ti, src.width_, need - header_bytes(src.width_) + extra_capacity);
    for (int i = 0; i < src.width_; ++i) {
      if (live_mask & (1u << i)) {
        bool ok = bag->assign(i, src.get(i));
        (void)ok;
        assert(ok);
      }
    }
    return bag;
  }

  // Total allocation size (for memory accounting).
  size_t capacity() const { return capacity_; }
  size_t used_bytes() const { return used_; }

  // Store `suffix` for `slot`. Returns false if the bag is out of room (the
  // caller grows the bag and retries). Never overwrites previously written
  // bytes, so concurrent readers of other slots are undisturbed.
  bool assign(int slot, std::string_view suffix) {
    assert(slot >= 0 && slot < width_);
    if (used_ + suffix.size() > capacity_) {
      return false;
    }
    uint32_t pos = used_;
    std::memcpy(base() + pos, suffix.data(), suffix.size());
    used_ += static_cast<uint32_t>(suffix.size());
    // Publish pos|len with one release store; readers can't see a torn ref.
    refs()[slot].store((static_cast<uint64_t>(pos) << 32) | static_cast<uint64_t>(suffix.size()),
                       std::memory_order_release);
    return true;
  }

  std::string_view get(int slot) const {
    assert(slot >= 0 && slot < width_);
    uint64_t r = refs()[slot].load(std::memory_order_acquire);
    return std::string_view(base() + (r >> 32), r & 0xFFFFFFFFu);
  }

  bool equals(int slot, std::string_view suffix) const { return get(slot) == suffix; }

  int width() const { return width_; }

 private:
  static size_t header_bytes(int width) {
    return sizeof(StringBag) + static_cast<size_t>(width) * sizeof(std::atomic<uint64_t>);
  }

  std::atomic<uint64_t>* refs() {
    return reinterpret_cast<std::atomic<uint64_t>*>(this + 1);
  }
  const std::atomic<uint64_t>* refs() const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(this + 1);
  }
  char* base() { return reinterpret_cast<char*>(this); }
  const char* base() const { return reinterpret_cast<const char*>(this); }

  uint32_t capacity_;  // total bytes including header
  uint32_t used_;      // append cursor (bytes from base)
  uint16_t width_;
  uint16_t pad_ = 0;
};

}  // namespace masstree

#endif  // MASSTREE_CORE_STRINGBAG_H_
