// Masstree: a trie with fanout 2^64 whose nodes are width-15 B+-trees (§4).
//
// Get/scan never write shared memory; they validate per-node version words
// (Figure 6's hand-over-hand descent, Figure 7's B-link forwarding). The
// read-side traversal exists exactly once, as the resumable LookupCursor
// state machine in core/cursor.h (states: layer-entry, descend-to-border,
// border stabilize/forward, done): get() runs one cursor to completion,
// multiget() round-robins a window of in-flight cursors and prefetches each
// cursor's next node before touching any of them (§4.8 / PALM software
// pipelining), and reach_border() — the border-location step shared by scan
// and the locked writers — is the same machine stopped at its border. The
// write side mirrors it: WriteCursor (also core/cursor.h) packages descend +
// lock-acquire as one resumable machine, locate_locked() runs one
// synchronously, and multiput()/multiremove() round-robin a window of them
// (sorted-key application, last-write-wins dedupe, per-key fallback to the
// single-put path on suffix conflicts and splits).
// scan()/scan_batch() drive the resumable ScanCursor (also core/cursor.h):
// whole-border-node snapshots chain-walked along next() pointers,
// allocation- and re-descent-free in steady state.
//
// Writers lock only the nodes they change; inserts publish through the
// permutation (§4.6.2), splits move keys strictly to the right under
// `splitting` marks (§4.6.4, Figure 5), and layer creation uses the
// UNSTABLE→LAYER two-phase publish (§4.6.3). Removed slots bump vinsert when
// reused (§4.6.5), empty nodes are frozen, unlinked, and epoch-reclaimed, and
// empty sub-layers are cleaned by deferred maintenance tasks.
//
// The tree stores opaque 64-bit values; ownership of what they point at stays
// with the caller (the kvstore layer stores Row pointers and epoch-retires
// replaced rows).

#ifndef MASSTREE_CORE_TREE_H_
#define MASSTREE_CORE_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cache/record_cache.h"
#include "core/cursor.h"
#include "core/node.h"
#include "util/counters.h"

namespace masstree {

// Aggregate shape/memory statistics; gathered by a quiescent walk.
struct TreeStats {
  uint64_t border_nodes = 0;
  uint64_t interior_nodes = 0;
  uint64_t keys = 0;
  uint64_t layers = 1;           // distinct trie layers observed
  uint64_t max_depth = 0;        // B+-tree depth of layer 0
  uint64_t layer_links = 0;      // number of next_layer pointers
  uint64_t node_bytes = 0;
  uint64_t suffix_bytes = 0;     // capacity allocated to suffix bags
  uint64_t suffix_used_bytes = 0;

  double avg_border_fill(int width) const {
    return border_nodes == 0
               ? 0.0
               : static_cast<double>(keys) / (static_cast<double>(border_nodes) * width);
  }
};

template <typename C = DefaultConfig>
class BasicTree {
 public:
  using Config = C;
  using Node = NodeBase<C>;
  using Border = BorderNode<C>;
  using Interior = InteriorNode<C>;

  explicit BasicTree(ThreadContext& ti) {
    root_.store(Border::make(ti, /*is_root=*/true), std::memory_order_release);
  }

  BasicTree(const BasicTree&) = delete;
  BasicTree& operator=(const BasicTree&) = delete;

  // Frees every node. Requires quiescence (no concurrent operations).
  ~BasicTree() { destroy_subtree(root_.load(std::memory_order_acquire)); }

  // Optional hot-key record cache consulted by get()/multiget() before
  // descending (cache/record_cache.h; nullptr = disabled). The cache stores
  // (border, slot, version) triples produced by completed cursors, so lookup
  // and fill both happen under the same EpochGuard that ran the cursor.
  void set_record_cache(RecordCache<C>* cache) { cache_ = cache; }
  RecordCache<C>* record_cache() const { return cache_; }

  // --------------------------------------------------------------------
  // get(k) — Figures 6/7, via one LookupCursor run to completion.
  bool get(std::string_view k, uint64_t* value, ThreadContext& ti) const {
    EpochGuard guard(ti.slot());
    uint64_t chash = 0;
    if (cache_ != nullptr && cache_->lookup(k, value, ti, &chash)) {
      return true;
    }
    LookupCursor<C> cur(root_, k);
    if (cur.run(&ti.counters()) != LookupCursor<C>::Status::kFound) {
      return false;
    }
    // chash == 0 means the lookup never probed (bypass-skipped or long key):
    // the fill would decline too, so skip the call on the cold fast path.
    if (cache_ != nullptr && chash != 0) {
      cache_->fill(k, cur.hit_border(), cur.hit_version(), cur.hit_slot(), ti, &chash);
    }
    *value = cur.value();
    return true;
  }

  // --------------------------------------------------------------------
  // multiget — software-pipelined batched lookup (§4.8 / PALM).
  //
  // Round-robins up to kMultigetWindow in-flight LookupCursors: each round
  // first issues prefetch() for every cursor's next node, then steps each
  // cursor once, so the batch overlaps its DRAM fetches and a batch of B gets
  // costs ~max-depth DRAM latencies instead of B×depth. One epoch guard spans
  // the batch; completed slots immediately refill from the remaining
  // requests. Results land in the requests themselves (value is untouched for
  // missing keys). Returns the number of keys found.
  struct GetRequest {
    std::string_view key;
    uint64_t value = 0;
    bool found = false;
  };

  static constexpr size_t kMultigetWindow = 16;

  size_t multiget(std::span<GetRequest> reqs, ThreadContext& ti) const {
    if (reqs.empty()) {
      return 0;
    }
    using Cursor = LookupCursor<C>;
    EpochGuard guard(ti.slot());
    ThreadCounters* ctrs = &ti.counters();
    ctrs->inc(Counter::kMultigetBatches);
    const size_t nslots = reqs.size() < kMultigetWindow ? reqs.size() : kMultigetWindow;
    std::optional<Cursor> cur[kMultigetWindow];
    size_t req_of[kMultigetWindow];
    size_t next_req = 0;
    size_t live = 0;
    size_t nfound = 0;
    uint64_t retry_sum = 0;
    // Picks the next request that actually needs a cursor: record-cache hits
    // are resolved inline (same guard) and never occupy a window slot.
    auto next_pending = [&]() -> size_t {
      while (next_req < reqs.size()) {
        size_t r = next_req++;
        if (cache_ != nullptr && cache_->lookup(reqs[r].key, &reqs[r].value, ti)) {
          reqs[r].found = true;
          ++nfound;
          continue;
        }
        return r;
      }
      return reqs.size();
    };
    for (size_t i = 0; i < nslots; ++i) {
      size_t r = next_pending();
      if (r == reqs.size()) {
        break;
      }
      cur[i].emplace(root_, reqs[r].key);
      req_of[i] = r;
      ++live;
    }
    while (live > 0) {
      // Issue every in-flight cursor's prefetch before touching any node so
      // the whole window's fetches are outstanding at once.
      for (size_t i = 0; i < nslots; ++i) {
        if (cur[i]) {
          cur[i]->prefetch();
        }
      }
      for (size_t i = 0; i < nslots; ++i) {
        if (!cur[i]) {
          continue;
        }
        // Null counters: batch-path retries are reported via
        // kMultigetRetry below, keeping the kGet* rates pure point-get.
        typename Cursor::Status st = cur[i]->step(nullptr);
        if (st == Cursor::Status::kInProgress) {
          continue;
        }
        GetRequest& rq = reqs[req_of[i]];
        rq.found = st == Cursor::Status::kFound;
        if (rq.found) {
          rq.value = cur[i]->value();
          ++nfound;
          if (cache_ != nullptr) {
            cache_->fill(rq.key, cur[i]->hit_border(), cur[i]->hit_version(),
                         cur[i]->hit_slot(), ti);
          }
        }
        retry_sum += cur[i]->retries();
        size_t r = next_pending();
        if (r != reqs.size()) {
          cur[i].emplace(root_, reqs[r].key);
          req_of[i] = r;
        } else {
          cur[i].reset();
          --live;
        }
      }
    }
    if (retry_sum != 0) {
      ctrs->inc(Counter::kMultigetRetry, retry_sum);
    }
    return nfound;
  }

  // --------------------------------------------------------------------
  // multiput / multiremove — the write-side twin of multiget (§4.8 / PALM).
  //
  // Round-robins up to kMultigetWindow in-flight WriteCursors (core/cursor.h:
  // descend + lock-acquire as one resumable machine): each round issues every
  // cursor's prefetch() before touching any node, then steps each once. When
  // a cursor reaches its locked border the write is applied immediately and
  // the lock released before any other cursor is stepped, so at most one
  // border lock is held at a time — batched writers cannot invert lock order.
  // Requests are applied in sorted-key order (duplicate-key runs dedupe to
  // last-write-wins; see below), and the hard cases — suffix conflict
  // (make_layer) and full-node split — fall back per-key through the existing
  // single-put path (Counter::kMultiputRetries).
  //
  // Duplicate-key semantics: only the LAST request for a key (in span order)
  // touches the tree; earlier duplicates are never applied, so a batch
  // mutates and (at the kvstore layer) logs exactly one record per surviving
  // write. Response flags are still as-if-sequential: every request's
  // inserted/found is derived by replaying the key's request run over the
  // pre-batch existence the survivor observed. The one documented divergence
  // from sequential puts is value composition across overwritten duplicates:
  // a later put's payload is NOT layered over an earlier duplicate's within
  // one batch (last write wins wholesale), and a put surviving over an
  // earlier duplicate remove applies against the pre-batch value (the remove
  // is never executed). Final tree state and durable log state stay
  // consistent with each other either way — exactly one record per
  // surviving write, so recovery replays to the same state the batch left
  // in memory.
  //
  // Returns the number of requests that modified the tree, counted
  // as-if-sequential (every put + every remove whose as-if-sequential
  // `found` is true) — exactly what applying the span one request at a
  // time would have returned, even when duplicate runs dedupe to fewer
  // physical applications. One epoch guard spans the batch.
  struct PutRequest {
    std::string_view key;
    uint64_t value = 0;     // put: the value to store (ignored by *_with)
    bool remove = false;    // true: remove the key instead of putting
    // Results (as-if-sequential; see the duplicate-key note above):
    bool inserted = false;  // put: key was newly inserted
    bool found = false;     // key existed beforehand (put: replaced; remove: removed)
    uint64_t old_value = 0; // replaced/removed value (surviving requests only)
  };

  size_t multiput(std::span<PutRequest> reqs, ThreadContext& ti) {
    return multiput_with(
        reqs, [&reqs](size_t r, bool, uint64_t) { return reqs[r].value; },
        [](size_t, uint64_t) {}, ti);
  }

  size_t multiremove(std::span<PutRequest> reqs, ThreadContext& ti) {
    for (PutRequest& rq : reqs) {
      rq.remove = true;
    }
    return multiput(reqs, ti);
  }

  // Transform flavor, for callers that build values under the border lock
  // (the kvstore layer's copy-on-write rows, §4.7): make_value(i, found, old)
  // -> new_value runs under the lock for surviving puts, on_remove(i, old)
  // under the lock for surviving removes that found their key — so no
  // concurrent same-key operation can interleave between read and write, and
  // neither callback ever runs for a deduplicated (overwritten) request.
  template <typename MakeValue, typename OnRemove>
  size_t multiput_with(std::span<PutRequest> reqs, MakeValue&& make_value,
                       OnRemove&& on_remove, ThreadContext& ti) {
    if (reqs.empty()) {
      return 0;
    }
    EpochGuard guard(ti.slot());
    ThreadCounters* ctrs = &ti.counters();
    ctrs->inc(Counter::kMultiputBatches);
    const size_t n = reqs.size();

    // Application order: request indices sorted by (key, index). Sorted-key
    // application gives duplicate detection for free and makes adjacent
    // requests hit the same border; ties keep span order so the last request
    // for a key is the run's last element (the survivor).
    thread_local std::vector<uint32_t> order_tls;
    std::vector<uint32_t>& order = order_tls;
    order.resize(n);
    for (size_t i = 0; i < n; ++i) {
      order[i] = static_cast<uint32_t>(i);
    }
    std::sort(order.begin(), order.end(), [&reqs](uint32_t a, uint32_t b) {
      int c = reqs[a].key.compare(reqs[b].key);
      return c != 0 ? c < 0 : a < b;
    });

    size_t next = 0;  // cursor into order[]
    auto next_surviving = [&]() -> size_t {
      while (next < n) {
        size_t i = next++;
        if (i + 1 < n && reqs[order[i]].key == reqs[order[i + 1]].key) {
          continue;  // a later request overwrites this key (last-write-wins)
        }
        return i;
      }
      return n;
    };

    struct Slot {
      Key key;
      WriteCursor<C> cur;
      uint32_t req;
      Slot(Node* root, std::string_view k, uint32_t r)
          : key(k), cur(root, key.slice()), req(r) {}
    };
    const size_t nslots = n < kMultigetWindow ? n : kMultigetWindow;
    std::optional<Slot> sl[kMultigetWindow];
    size_t live = 0;
    size_t napplied = 0;
    Node* treeroot = root_.load(std::memory_order_acquire);
    for (size_t i = 0; i < nslots; ++i) {
      size_t oi = next_surviving();
      if (oi == n) {
        break;
      }
      sl[i].emplace(treeroot, reqs[order[oi]].key, order[oi]);
      ++live;
    }
    while (live > 0) {
      // Announce every in-flight cursor's next cache line before touching
      // any node, so the window's DRAM fetches are all outstanding at once.
      for (size_t i = 0; i < nslots; ++i) {
        if (sl[i]) {
          sl[i]->cur.prefetch();
        }
      }
      for (size_t i = 0; i < nslots; ++i) {
        if (!sl[i]) {
          continue;
        }
        Slot& s = *sl[i];
        typename WriteCursor<C>::Status st = s.cur.step(ctrs);
        if (st == WriteCursor<C>::Status::kInProgress) {
          continue;
        }
        if (st == WriteCursor<C>::Status::kDeadLayer) {
          // The whole layer vanished: restart this key from layer 0.
          ctrs->inc(Counter::kPutRetryFromRoot);
          ctrs->inc(Counter::kMultiputRetries);
          s.key.unshift_all();
          s.cur.reset(root_.load(std::memory_order_acquire), s.key.slice());
          continue;
        }
        // kLocked: apply under the held lock (released before any other
        // cursor is stepped), or continue the descent into a sub-layer.
        Node* subroot = nullptr;
        if (!multiput_apply(s.cur.locked(), s.key, reqs[s.req], s.req,
                            make_value, on_remove, &subroot, &napplied, ctrs,
                            ti)) {
          s.key.shift();
          s.cur.reset(subroot, s.key.slice());
          continue;
        }
        size_t oi = next_surviving();
        if (oi != n) {
          sl[i].emplace(treeroot, reqs[order[oi]].key, order[oi]);
        } else {
          sl[i].reset();
          --live;
        }
      }
    }

    // Last-write-wins flag reconciliation: deduplicated requests never
    // touched the tree, so replay each duplicate run over the pre-batch
    // existence its survivor observed (for both put and remove survivors,
    // `found` is exactly "key existed before the batch").
    for (size_t i = 0; i < n;) {
      size_t j = i + 1;
      while (j < n && reqs[order[i]].key == reqs[order[j]].key) {
        ++j;
      }
      if (j - i > 1) {
        bool exists = reqs[order[j - 1]].found;
        for (size_t k = i; k < j; ++k) {
          PutRequest& rq = reqs[order[k]];
          if (k != j - 1) {
            rq.old_value = 0;
          }
          if (rq.remove) {
            rq.found = exists;
            rq.inserted = false;
            exists = false;
          } else {
            rq.inserted = !exists;
            rq.found = exists;
            exists = true;
          }
        }
      }
      i = j;
    }
    // Report the as-if-sequential modification count: duplicate runs applied
    // fewer physical writes than their request count (napplied tracks those),
    // but callers see the same answer sequential application would give.
    (void)napplied;
    size_t as_if_applied = 0;
    for (const PutRequest& rq : reqs) {
      as_if_applied += rq.remove ? (rq.found ? 1u : 0u) : 1u;
    }
    return as_if_applied;
  }

  // --------------------------------------------------------------------
  // put(k, v). Returns true if a new key was inserted, false if an existing
  // key's value was replaced; the previous value (for the caller to retire)
  // lands in *old_value when updating.
  bool insert(std::string_view k, uint64_t value, uint64_t* old_value, ThreadContext& ti) {
    EpochGuard guard(ti.slot());
    Key key(k);
    Node* root = root_.load(std::memory_order_acquire);
    for (;;) {
      Border* n = locate_locked(root, key.slice(), ti);
      if (n == nullptr) {
        ti.counters().inc(Counter::kPutRetryFromRoot);
        key.unshift_all();
        root = root_.load(std::memory_order_acquire);
        continue;
      }
      uint64_t slice = key.slice();
      int ord = search_ord(key);
      Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
      int pos;
      int slot = n->find(perm, slice, ord, &pos);
      if (slot >= 0) {
        uint8_t kx = n->keylenx(slot);
        assert(!keylenx_is_unstable(kx));
        if (keylenx_is_layer(kx)) {
          root = descend_layer_locked(n, slot);
          n->version().unlock();
          key.shift();
          continue;
        }
        if (keylenx_has_suffix(kx) && !n->suffixes()->equals(slot, key.suffix())) {
          // Two long keys share this slice: push the existing one down a
          // layer, then continue inserting there (§4.6.3).
          root = make_layer(n, slot, ti);
          n->version().unlock();
          key.shift();
          continue;
        }
        // Exact match: in-place value update with a single aligned write
        // (§4.6.1); no version bump, readers never retry.
        if (old_value != nullptr) {
          *old_value = n->lv(slot);
        }
        n->set_lv(slot, value);
        n->version().unlock();
        return false;
      }
      if (perm.size() < Border::kWidth) {
        insert_into_border(n, pos, key, value, ti);
        n->version().unlock();
        return true;
      }
      split_insert(n, key, value, ti);  // consumes the lock
      return true;
    }
  }

  // --------------------------------------------------------------------
  // Atomic read-modify-write put: fn(found, old_value) -> new_value runs
  // under the border-node lock, so no concurrent put to the same key can
  // interleave between the read and the write. Used by the kvstore layer to
  // build copy-on-write rows (§4.7's atomic multi-column puts). Returns true
  // if the key was newly inserted; on update the replaced value is stored in
  // *old_value for the caller to epoch-retire.
  template <typename Fn>
  bool insert_transform(std::string_view k, Fn&& fn, uint64_t* old_value, ThreadContext& ti) {
    EpochGuard guard(ti.slot());
    Key key(k);
    Node* root = root_.load(std::memory_order_acquire);
    for (;;) {
      Border* n = locate_locked(root, key.slice(), ti);
      if (n == nullptr) {
        ti.counters().inc(Counter::kPutRetryFromRoot);
        key.unshift_all();
        root = root_.load(std::memory_order_acquire);
        continue;
      }
      uint64_t slice = key.slice();
      int ord = search_ord(key);
      Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
      int pos;
      int slot = n->find(perm, slice, ord, &pos);
      if (slot >= 0) {
        uint8_t kx = n->keylenx(slot);
        assert(!keylenx_is_unstable(kx));
        if (keylenx_is_layer(kx)) {
          root = descend_layer_locked(n, slot);
          n->version().unlock();
          key.shift();
          continue;
        }
        if (keylenx_has_suffix(kx) && !n->suffixes()->equals(slot, key.suffix())) {
          root = make_layer(n, slot, ti);
          n->version().unlock();
          key.shift();
          continue;
        }
        uint64_t old = n->lv(slot);
        if (old_value != nullptr) {
          *old_value = old;
        }
        n->set_lv(slot, fn(true, old));
        n->version().unlock();
        return false;
      }
      uint64_t value = fn(false, 0);
      if (perm.size() < Border::kWidth) {
        insert_into_border(n, pos, key, value, ti);
        n->version().unlock();
        return true;
      }
      split_insert(n, key, value, ti);
      return true;
    }
  }

  // --------------------------------------------------------------------
  // remove(k). Returns true and the removed value if the key was present.
  bool remove(std::string_view k, uint64_t* old_value, ThreadContext& ti) {
    return remove_with(
        k,
        [old_value](uint64_t old) {
          if (old_value != nullptr) {
            *old_value = old;
          }
        },
        ti);
  }

  // remove with a hook that runs under the border-node lock just before the
  // key is unpublished. The kvstore layer uses it to assign the §5 value
  // version while same-key operations are still serialized.
  template <typename Fn>
  bool remove_with(std::string_view k, Fn&& on_remove, ThreadContext& ti) {
    EpochGuard guard(ti.slot());
    Key key(k);
    Node* root = root_.load(std::memory_order_acquire);
    for (;;) {
      Border* n = locate_locked(root, key.slice(), ti);
      if (n == nullptr) {
        key.unshift_all();
        root = root_.load(std::memory_order_acquire);
        continue;
      }
      uint64_t slice = key.slice();
      int ord = search_ord(key);
      Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
      int pos;
      int slot = n->find(perm, slice, ord, &pos);
      if (slot < 0) {
        n->version().unlock();
        return false;
      }
      uint8_t kx = n->keylenx(slot);
      if (keylenx_is_layer(kx)) {
        root = descend_layer_locked(n, slot);
        n->version().unlock();
        key.shift();
        continue;
      }
      if (keylenx_has_suffix(kx) && !n->suffixes()->equals(slot, key.suffix())) {
        n->version().unlock();
        return false;
      }
      on_remove(n->lv(slot));
      // Removal just unpublishes the slot; the key/value bytes stay for
      // concurrent readers, and vinsert is bumped if the slot is reused
      // (§4.6.5). Mark inserting so unlock() bumps vinsert NOW as well:
      // in-flight readers racing the permutation store re-validate, and any
      // record-cache entry pointing at this slot fails changed_since()
      // instead of serving the unpublished value.
      n->version().mark_inserting();
      perm.remove(pos);
      n->set_permutation(perm);
      if (n->nremoved_ < 255) {
        ++n->nremoved_;
      }
      if (perm.size() == 0) {
        handle_empty_border(n, key, ti);  // consumes the lock
      } else {
        n->version().unlock();
      }
      return true;
    }
  }

  // --------------------------------------------------------------------
  // getrange / scan (§3): calls emit(key, value) for up to `limit` pairs with
  // key >= first, in lexicographic order, until emit returns false. Pairs
  // from one border node form an atomic snapshot; the scan as a whole is not
  // atomic with respect to concurrent inserts/removes.
  //
  // Thin driver over ScanCursor (core/cursor.h): one border-node snapshot per
  // batch, chain-walked via next() pointers, allocation- and descent-free in
  // steady state.
  template <typename F>
  size_t scan(std::string_view first, size_t limit, F&& emit, ThreadContext& ti) const {
    return scan_drive(first, limit, emit, ti, /*prefetch=*/false);
  }

  // scan(), software-pipelined: issues the prefetch for the next border node
  // (and its suffix StringBag) before emitting the current snapshot's pairs,
  // so the chain walk's next DRAM fetch overlaps with emission (§4.8's
  // overlap-the-fetches argument applied to the range-read path).
  template <typename F>
  size_t scan_batch(std::string_view first, size_t limit, F&& emit, ThreadContext& ti) const {
    return scan_drive(first, limit, emit, ti, /*prefetch=*/true);
  }

  // The cursor itself, for callers that manage epochs/batches directly (the
  // kvstore layer streams column extraction from batches and detaches between
  // epoch guards; see ScanCursor's driving-protocol comment).
  ScanCursor<C> scan_cursor(std::string_view first) const {
    return ScanCursor<C>(root_, first);
  }

  // Pre-cursor scan implementation, kept verbatim as the ablation baseline
  // for bench/sec3_scan (re-locates the border for every frame re-entry and
  // heap-allocates per-entry suffix copies; the cursor exists to beat it).
  template <typename F>
  size_t scan_legacy(std::string_view first, size_t limit, F&& emit, ThreadContext& ti) const {
    if (limit == 0) {
      return 0;
    }
    EpochGuard guard(ti.slot());

    struct Frame {
      Node* root;
      std::string prefix;  // key bytes consumed by enclosing layers
      uint64_t cslice;     // cursor: next key must be >= (cslice, cord, csuf)
      int cord;            // 0..9, or 10 = "past every key with cslice"
      std::string csuf;
      bool skip_equal;
    };
    auto make_frame = [](Node* root, std::string prefix, std::string_view start,
                         bool skip_equal) {
      Frame f;
      f.root = root;
      f.prefix = std::move(prefix);
      f.cslice = make_slice(start);
      f.cord = start.size() > kSliceBytes ? 9 : static_cast<int>(start.size());
      if (start.size() > kSliceBytes) {
        f.csuf.assign(start.substr(kSliceBytes));
      }
      f.skip_equal = skip_equal;
      return f;
    };

    std::vector<Frame> stack;
    stack.push_back(
        make_frame(root_.load(std::memory_order_acquire), std::string(), first, false));
    size_t emitted = 0;
    std::string keybuf;

    while (!stack.empty()) {
      // Note: frames are re-entered after sub-layer scans; every visit
      // re-locates the border node for the frame's cursor.
      Border* n;
      VersionValue v;
      {
        Frame& f = stack.back();
        Node* root = f.root;
        if (!reach_border(root, f.cslice, &n, &v)) {
          if (stack.size() == 1) {
            f.root = root_.load(std::memory_order_acquire);
            continue;
          }
          stack.pop_back();  // the whole layer vanished: nothing left in it
          continue;
        }
        f.root = root;
      }

      bool descended = false;
      while (!descended) {
        // Snapshot one border node.
        struct Entry {
          uint64_t slice;
          uint8_t kx;
          uint64_t lv;
          std::string suf;
        };
        Entry ents[Border::kWidth];
        int cnt = 0;
        bool unstable = false;
        Permuter perm = n->permutation();
        Border* nx = n->next();
        for (int i = 0; i < perm.size(); ++i) {
          int s = perm.get(i);
          Entry& e = ents[cnt++];
          e.slice = n->slice(s);
          e.kx = n->keylenx(s);
          e.lv = n->lv(s);
          if (keylenx_has_suffix(e.kx)) {
            StringBag* bag = n->suffixes();
            if (bag != nullptr) {
              e.suf.assign(bag->get(s));
            }
          } else if (keylenx_is_unstable(e.kx)) {
            unstable = true;
          }
        }
        if (n->version().changed_since(v) || v.deleted()) {
          Frame& f = stack.back();
          Node* root = f.root;
          if (!reach_border(root, f.cslice, &n, &v)) {
            if (stack.size() > 1) {
              stack.pop_back();
              descended = true;  // leave node loop; outer loop re-dispatches
              break;
            }
            f.root = root_.load(std::memory_order_acquire);
            continue;
          }
          f.root = root;
          continue;
        }
        if (unstable) {
          spin_pause();
          v = n->version().stable();
          continue;
        }

        // Emit the validated snapshot.
        for (int i = 0; i < cnt && !descended; ++i) {
          Entry& e = ents[i];
          Frame& f = stack.back();
          int eo = keylenx_ord(e.kx);
          if (e.slice < f.cslice || (e.slice == f.cslice && eo < f.cord)) {
            continue;
          }
          if (e.slice == f.cslice && eo == f.cord) {
            if (eo < 9) {
              if (f.skip_equal) {
                continue;
              }
            } else if (keylenx_has_suffix(e.kx)) {
              int c = e.suf.compare(f.csuf);
              if (c < 0 || (c == 0 && f.skip_equal)) {
                continue;
              }
            }
          }
          if (keylenx_is_layer(e.kx)) {
            // Recurse into the sub-layer; on return, resume past this slice.
            std::string substart;
            bool subskip = false;
            if (e.slice == f.cslice && f.cord == 9) {
              substart = f.csuf;
              subskip = f.skip_equal;
            }
            std::string subprefix = f.prefix + slice_to_string(e.slice, kSliceBytes);
            f.cslice = e.slice;
            f.cord = 10;
            f.csuf.clear();
            Node* subroot = reinterpret_cast<Node*>(e.lv);
            stack.push_back(make_frame(subroot, std::move(subprefix), substart, subskip));
            descended = true;
            break;
          }
          keybuf.assign(f.prefix);
          keybuf.append(slice_to_string(e.slice, eo < 9 ? eo : kSliceBytes));
          if (keylenx_has_suffix(e.kx)) {
            keybuf.append(e.suf);
          }
          bool keep_going = emit(std::string_view(keybuf), e.lv);
          ++emitted;
          f.cslice = e.slice;
          f.cord = eo;
          f.csuf = keylenx_has_suffix(e.kx) ? e.suf : std::string();
          f.skip_equal = true;
          if (!keep_going || emitted >= limit) {
            return emitted;
          }
        }
        if (descended) {
          break;
        }
        if (nx == nullptr) {
          stack.pop_back();
          break;
        }
        n = nx;
        v = n->version().stable();
      }
    }
    return emitted;
  }

  // --------------------------------------------------------------------
  // Deferred cleanup of empty sub-layer trees (§4.6.5: "Epoch-based
  // reclamation tasks are scheduled as needed to clean up empty ...
  // layer-h trees"). Returns the number of tasks processed.
  size_t run_maintenance(ThreadContext& ti) {
    if (cache_ != nullptr) {
      // Rotate the record cache's epoch pin so reclamation behind it drains
      // on the maintenance cadence even when no misses are driving fills.
      cache_->maintain();
    }
    std::vector<std::string> tasks;
    {
      std::lock_guard<std::mutex> lock(gc_mu_);
      tasks.swap(gc_tasks_);
    }
    for (const std::string& prefix : tasks) {
      remove_empty_layer(prefix, ti);
      ti.counters().inc(Counter::kMaintenanceTasks);
    }
    return tasks.size();
  }

  size_t pending_maintenance() const {
    std::lock_guard<std::mutex> lock(gc_mu_);
    return gc_tasks_.size();
  }

  // Quiescent value walk (teardown helper for owners of boxed values).
  template <typename F>
  void for_each_value(F&& f) const {
    walk_values(root_.load(std::memory_order_acquire), f);
  }

  // Quiescent shape statistics.
  TreeStats collect_stats() const {
    TreeStats st;
    collect_subtree(root_.load(std::memory_order_acquire), 1, 1, &st);
    return st;
  }

  Node* root_for_testing() const { return root_.load(std::memory_order_acquire); }

  // Legacy batched-lookup support (§4.8 / PALM): issue the prefetches along
  // one key's root-to-border path without version validation, so a batch of
  // gets overlaps its DRAM fetches. Harmless if racy — it only prefetches.
  // Superseded by multiget()'s cursor pipeline, which interleaves validated
  // descents instead of walking every path twice; kept for the §4.8 ablation
  // and for callers that batch at a distance from the gets themselves.
  void prefetch_for(std::string_view k) const {
    if constexpr (!C::kPrefetch) {
      return;
    }
    Key key(k);
    Node* n = root_.load(std::memory_order_acquire);
    int hops = 0;
    while (n != nullptr && ++hops < 16) {
      prefetch_node(n);
      VersionValue v = n->version().load();
      if (v.is_border() || v.deleted()) {
        if (v.is_border() && key.has_suffix()) {
          // Without this, a long key's suffix compare after the descent still
          // eats a cold DRAM miss on the suffix bag.
          const StringBag* bag = n->as_border()->suffixes();
          if (bag != nullptr) {
            prefetch_object(bag, LookupCursor<C>::kSuffixPrefetchBytes);
          }
        }
        return;
      }
      const Interior* in = n->as_interior();
      n = in->child(in->child_index(key.slice()));
    }
  }

 private:
  static int search_ord(const Key& key) {
    return key.has_suffix() ? 9 : static_cast<int>(key.length_in_slice());
  }

  // Shared scan()/scan_batch() driver: one epoch guard for the whole range,
  // one ScanCursor run batch by batch. `prefetch` turns on the next-border
  // lookahead that overlaps the chain walk's DRAM fetch with emission.
  //
  // The cursor is a per-thread resident, reset per call, so repeated scans
  // reuse warm buffers and a short scan performs zero heap allocations;
  // nested scans (an emit callback scanning again) fall back to a
  // stack-local cursor rather than corrupting the resident one.
  template <typename F>
  size_t scan_drive(std::string_view first, size_t limit, F& emit, ThreadContext& ti,
                    bool prefetch) const {
    if (limit == 0) {
      return 0;
    }
    EpochGuard guard(ti.slot());
    thread_local ScanCursor<C> resident;
    thread_local bool resident_busy = false;
    if (!resident_busy) {
      resident_busy = true;
      struct Lease {
        bool* busy;
        ~Lease() { *busy = false; }
      } lease{&resident_busy};
      resident.reset(root_, first);
      return drive_cursor(resident, limit, emit, ti, prefetch);
    }
    ScanCursor<C> cur(root_, first);
    return drive_cursor(cur, limit, emit, ti, prefetch);
  }

  template <typename F>
  static size_t drive_cursor(ScanCursor<C>& cur, size_t limit, F& emit, ThreadContext& ti,
                             bool prefetch) {
    size_t emitted = 0;
    for (;;) {
      size_t n = cur.next_batch(&ti.counters(), limit - emitted);
      if (n == 0) {
        return emitted;
      }
      if (prefetch) {
        cur.prefetch_pending();
      }
      for (size_t i = 0; i < n; ++i) {
        bool keep_going = emit(cur.key(i), cur.value(i));
        ++emitted;
        if (!keep_going || emitted >= limit) {
          return emitted;
        }
      }
    }
  }

  // Follow parent pointers from a (possibly stale) layer root to the current
  // root of that layer's B+-tree. Quiescent walks need this because stored
  // next_layer pointers are only fixed lazily (§4.6.4).
  static Node* true_layer_root(Node* n) {
    while (n != nullptr && !n->version().load().is_root()) {
      Node* p = n->parent();
      if (p == nullptr) {
        break;
      }
      n = p;
    }
    return n;
  }

  static void prefetch_node(const Node* n) {
    if constexpr (C::kPrefetch) {
      prefetch_object(n, sizeof(Border));
    }
  }

  // ---------------- descent (Figure 6) ----------------
  //
  // Finds the border node responsible for `slice` in the layer whose root is
  // reachable from `root` (in-out: updated to the true root so retries skip
  // forwarding chains). Returns false if the walk dead-ends on a retired
  // layer, in which case the caller restarts from layer 0. This is a
  // border-location LookupCursor run synchronously — the same descent the
  // read path pipelines one step at a time.
  static bool reach_border(Node*& root, uint64_t slice, Border** out, VersionValue* vout) {
    LookupCursor<C> cur(root, slice);
    if (cur.run(nullptr) == LookupCursor<C>::Status::kDeadLayer) {
      return false;
    }
    root = cur.layer_root();
    *out = cur.border();
    *vout = cur.border_version();
    return true;
  }

  // Writer-side locate: returns the locked border node responsible for
  // `slice`, following splits right under lock. Returns null if the layer is
  // dead (caller restarts from the top); `root` is updated like reach_border.
  // This is a locked-writer WriteCursor run synchronously — the same
  // descend-and-acquire machine multiput() pipelines one step at a time.
  Border* locate_locked(Node*& root, uint64_t slice, ThreadContext& ti) const {
    WriteCursor<C> cur(root, slice);
    if (cur.run(&ti.counters()) == WriteCursor<C>::Status::kDeadLayer) {
      return nullptr;
    }
    root = cur.layer_root();
    return cur.locked();
  }

  // Figure 4 lockedparent: lock n's parent, revalidating that it is still
  // the parent afterwards.
  static Interior* locked_parent(Node* n) {
    for (;;) {
      Node* p = n->parent();
      if (p == nullptr) {
        return nullptr;
      }
      p->version().lock();
      if (n->parent() == p) {
        assert(!p->is_border());
        return p->as_interior();
      }
      p->version().unlock();
    }
  }

  // ---------------- multiput apply (§4.8 write pipeline) ----------------

  // Apply one batched write to the locked border `n` responsible for `key`'s
  // current slice. Returns true when the request completed (the lock was
  // released or consumed); false when the descent continues into a sub-layer
  // whose root is stored in *subroot (lock released, key not yet shifted).
  // The simple cases — exact-match update, in-node insert, remove — run
  // inline with exactly the single-put protocol; suffix conflicts and
  // full-node splits fall back per-key through insert_transform.
  template <typename MakeValue, typename OnRemove>
  bool multiput_apply(Border* n, const Key& key, PutRequest& rq, uint32_t ridx,
                      MakeValue& make_value, OnRemove& on_remove,
                      Node** subroot, size_t* napplied, ThreadCounters* ctrs,
                      ThreadContext& ti) {
    uint64_t slice = key.slice();
    int ord = search_ord(key);
    Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
    int pos;
    int slot = n->find(perm, slice, ord, &pos);
    if (slot >= 0) {
      uint8_t kx = n->keylenx(slot);
      assert(!keylenx_is_unstable(kx));
      if (keylenx_is_layer(kx)) {
        *subroot = descend_layer_locked(n, slot);
        n->version().unlock();
        return false;
      }
      if (keylenx_has_suffix(kx) && !n->suffixes()->equals(slot, key.suffix())) {
        n->version().unlock();
        if (rq.remove) {
          rq.found = false;
          return true;
        }
        // Two long keys share this slice: single-put fallback runs
        // make_layer and re-descends (§4.6.3).
        multiput_fallback(rq, ridx, make_value, napplied, ctrs, ti);
        return true;
      }
      uint64_t old = n->lv(slot);
      if (rq.remove) {
        on_remove(static_cast<size_t>(ridx), old);
        rq.found = true;
        rq.old_value = old;
        // See remove_with(): unpublish + vinsert bump under the same lock.
        n->version().mark_inserting();
        perm.remove(pos);
        n->set_permutation(perm);
        if (n->nremoved_ < 255) {
          ++n->nremoved_;
        }
        if (perm.size() == 0) {
          handle_empty_border(n, key, ti);  // consumes the lock
        } else {
          n->version().unlock();
        }
        ++*napplied;
        return true;
      }
      rq.found = true;
      rq.inserted = false;
      rq.old_value = old;
      n->set_lv(slot, make_value(static_cast<size_t>(ridx), true, old));
      n->version().unlock();
      ++*napplied;
      return true;
    }
    if (rq.remove) {
      n->version().unlock();
      rq.found = false;
      return true;
    }
    if (perm.size() < Border::kWidth) {
      uint64_t value = make_value(static_cast<size_t>(ridx), false, 0);
      insert_into_border(n, pos, key, value, ti);
      n->version().unlock();
      rq.inserted = true;
      rq.found = false;
      ++*napplied;
      return true;
    }
    // Full node: single-put fallback runs split_insert.
    n->version().unlock();
    multiput_fallback(rq, ridx, make_value, napplied, ctrs, ti);
    return true;
  }

  template <typename MakeValue>
  void multiput_fallback(PutRequest& rq, uint32_t ridx, MakeValue& make_value,
                         size_t* napplied, ThreadCounters* ctrs,
                         ThreadContext& ti) {
    ctrs->inc(Counter::kMultiputRetries);
    uint64_t old = 0;
    rq.inserted = insert_transform(
        rq.key,
        [&](bool found, uint64_t o) {
          return make_value(static_cast<size_t>(ridx), found, o);
        },
        &old, ti);
    rq.found = !rq.inserted;
    rq.old_value = rq.found ? old : 0;
    ++*napplied;
  }

  // ---------------- border insert helpers ----------------

  void insert_into_border(Border* n, int pos, const Key& key, uint64_t value,
                          ThreadContext& ti) {
    Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
    if (n->nremoved_ > 0) {
      // The slot may have held a removed key some reader still remembers;
      // force those readers to retry (§4.6.5).
      n->version().mark_inserting();
      ti.counters().inc(Counter::kSlotReuse);
    }
    int slot = perm.back();
    n->set_slice(slot, key.slice());
    if (key.has_suffix()) {
      assign_suffix(n, slot, key.suffix(), ti);
      n->set_keylenx(slot, kKeylenxSuffix);
    } else {
      n->set_keylenx(slot, static_cast<uint8_t>(key.length_in_slice()));
    }
    n->set_lv(slot, value);
    release_fence();  // slot contents before permutation publish (§4.6.2)
    perm.insert_from_back(pos);
    n->set_permutation(perm);
  }

  void assign_suffix(Border* n, int slot, std::string_view suf, ThreadContext& ti) {
    StringBag* bag = n->raw_suffixes().load(std::memory_order_relaxed);
    if (bag == nullptr) {
      // Adaptive start: size to the first suffix plus a little slack rather
      // than reserving worst-case space for 15 suffixes (§4.2). The fixed
      // alternative (kFixedSuffixBytes) reserves worst-case space up front.
      size_t cap = C::kFixedSuffixBytes != 0 ? C::kFixedSuffixBytes
                                             : suf.size() + 3 * kSliceBytes;
      if (cap < suf.size()) {
        cap = suf.size();
      }
      bag = StringBag::make(ti, Border::kWidth, cap);
      bool ok = bag->assign(slot, suf);
      (void)ok;
      assert(ok);
      n->raw_suffixes().store(bag, std::memory_order_release);
      return;
    }
    if (bag->assign(slot, suf)) {
      return;
    }
    // Grow: copy live suffixes into a bigger bag, publish, retire the old.
    uint32_t live = 0;
    Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
    for (int i = 0; i < perm.size(); ++i) {
      int s = perm.get(i);
      if (s != slot && keylenx_has_suffix(n->keylenx(s))) {
        live |= 1u << s;
      }
    }
    StringBag* nb = StringBag::make_copy(ti, *bag, live, suf.size() + bag->capacity());
    bool ok = nb->assign(slot, suf);
    (void)ok;
    assert(ok);
    n->raw_suffixes().store(nb, std::memory_order_release);
    ti.retire(bag);
  }

  // Read a layer link under the parent border's lock, repairing a stale root
  // pointer in passing (§4.6.4: roots stored in border nodes "are updated
  // lazily during later operations"). The store is a single aligned write;
  // concurrent readers see either pointer, and both lead to the true root.
  static Node* descend_layer_locked(Border* n, int slot) {
    Node* sub = n->layer(slot);
    Node* root = true_layer_root(sub);
    if (root != sub && root != nullptr) {
      n->set_lv(slot, reinterpret_cast<uint64_t>(root));
      return root;
    }
    return sub;
  }

  // §4.6.3: the slot holds a suffixed key that conflicts with a new key on
  // this slice. Push the existing key into a fresh layer and publish the
  // link. Returns the new layer root; n stays locked.
  Node* make_layer(Border* n, int slot, ThreadContext& ti) {
    ti.counters().inc(Counter::kLayerCreated);
    // The slot changes meaning (value -> layer pointer). The UNSTABLE state
    // already forces racing readers to retry, but mark inserting too so
    // unlock() bumps vinsert: a record-cache entry validated against the
    // pre-layer version must fail changed_since() rather than reinterpret the
    // layer pointer as the old value.
    n->version().mark_inserting();
    std::string_view rest = n->suffixes()->get(slot);
    uint64_t val = n->lv(slot);
    Border* nl = Border::make(ti, /*is_root=*/true);
    Key k2(rest);
    nl->set_slice(0, k2.slice());
    if (k2.has_suffix()) {
      StringBag* bag = StringBag::make(ti, Border::kWidth, k2.suffix().size() + kSliceBytes);
      bool ok = bag->assign(0, k2.suffix());
      (void)ok;
      assert(ok);
      nl->raw_suffixes().store(bag, std::memory_order_relaxed);
      nl->set_keylenx(0, kKeylenxSuffix);
    } else {
      nl->set_keylenx(0, static_cast<uint8_t>(k2.length_in_slice()));
    }
    nl->set_lv(0, val);
    nl->set_permutation(Permuter::make_sorted(1));
    // Three ordered writes make the transition safe for lock-free readers:
    // UNSTABLE (readers retry) -> pointer -> LAYER (§4.6.3).
    n->set_keylenx(slot, kKeylenxUnstableLayer);
    release_fence();
    n->set_lv(slot, reinterpret_cast<uint64_t>(static_cast<Node*>(nl)));
    release_fence();
    n->set_keylenx(slot, kKeylenxLayer);
    return nl;
  }

  // ---------------- split (Figure 5) ----------------

  struct VirtualEntry {
    uint64_t slice;
    int ord;
    int slot;  // -1 for the key being inserted
  };

  void split_insert(Border* n, const Key& key, uint64_t value, ThreadContext& ti) {
    ti.counters().inc(Counter::kPutSplit);
    constexpr int W = Border::kWidth;
    Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
    assert(perm.size() == W);
    uint64_t slice = key.slice();
    int ord = search_ord(key);

    // Virtual sorted array of the W existing keys plus the new one.
    VirtualEntry ents[W + 1];
    int pos;
    int match = n->find(perm, slice, ord, &pos);
    (void)match;
    assert(match < 0);
    for (int i = 0, j = 0; i <= W; ++i) {
      if (i == pos) {
        ents[i] = VirtualEntry{slice, ord, -1};
      } else {
        int s = perm.get(j++);
        ents[i] = VirtualEntry{n->slice(s), keylenx_ord(n->keylenx(s)), s};
      }
    }

    // Split point: the right sibling receives ents[m..W]. Prefer the middle,
    // but never separate keys sharing a slice (at most 10 keys share one, so
    // a boundary always exists); if the insert is a rightmost append with no
    // next sibling, move only the new key (§4.3's sequential optimization) —
    // unless the new key shares its slice with the node's last entry: the
    // sibling's lowkey is a slice, so a same-slice straddle would route gets
    // for the kept entry to the new node and miss it.
    int m = -1;
    if (pos == W && n->next() == nullptr && ents[W - 1].slice != ents[W].slice) {
      m = W;
    } else {
      int mid = (W + 1) / 2;
      for (int delta = 0; delta <= W && m < 0; ++delta) {
        int hi = mid + delta, lo = mid - delta;
        if (hi >= 1 && hi <= W && ents[hi - 1].slice != ents[hi].slice) {
          m = hi;
        } else if (lo >= 1 && lo <= W && ents[lo - 1].slice != ents[lo].slice) {
          m = lo;
        }
      }
      assert(m >= 1);
    }

    n->version().mark_splitting();
    Border* n2 = Border::make(ti, false);
    n2->version().assign_locked_from(n->version().load());
    n2->version().set_root(false);
    n2->set_lowkey(ents[m].slice);

    // Pre-size n2's suffix bag for every suffix that will move: growth during
    // the copy would consult n2's (not yet initialized) permutation for the
    // live-slot mask and discard earlier copies.
    {
      size_t suffix_bytes = 0;
      for (int i = m; i <= W; ++i) {
        if (ents[i].slot < 0) {
          if (key.has_suffix()) {
            suffix_bytes += key.suffix().size();
          }
        } else if (keylenx_has_suffix(n->keylenx(ents[i].slot))) {
          suffix_bytes += n->suffix(ents[i].slot).size();
        }
      }
      if (suffix_bytes > 0) {
        size_t cap = C::kFixedSuffixBytes > suffix_bytes ? C::kFixedSuffixBytes
                                                         : suffix_bytes;
        n2->raw_suffixes().store(StringBag::make(ti, Border::kWidth, cap),
                                 std::memory_order_relaxed);
      }
    }

    // Copy the moved entries (and possibly the new key) into n2.
    for (int i = m; i <= W; ++i) {
      write_entry(n2, i - m, ents[i], n, key, value, ti);
    }
    n2->set_permutation(Permuter::make_sorted(W + 1 - m));

    // Rebuild n's permutation over the kept slots; slots vacated by the move
    // become free (and count as reusable).
    {
      bool kept_slot[W] = {};
      int order[W];
      int kc = 0;
      bool new_left = false;
      int new_pos_in_left = -1;
      for (int i = 0; i < m; ++i) {
        if (ents[i].slot >= 0) {
          order[kc++] = ents[i].slot;
          kept_slot[ents[i].slot] = true;
        } else {
          new_left = true;
          new_pos_in_left = kc;
          order[kc++] = -1;  // patched below
        }
      }
      if (new_left) {
        int fs = -1;
        for (int s = 0; s < W; ++s) {
          if (!kept_slot[s]) {
            fs = s;
            break;
          }
        }
        assert(fs >= 0);
        kept_slot[fs] = true;
        order[new_pos_in_left] = fs;
        n->set_slice(fs, slice);
        if (key.has_suffix()) {
          assign_suffix(n, fs, key.suffix(), ti);
          n->set_keylenx(fs, kKeylenxSuffix);
        } else {
          n->set_keylenx(fs, static_cast<uint8_t>(key.length_in_slice()));
        }
        n->set_lv(fs, value);
      }
      uint64_t px = static_cast<uint64_t>(kc);
      int nib = 1;
      for (int i = 0; i < kc; ++i) {
        px |= static_cast<uint64_t>(order[i]) << (4 * nib++);
      }
      for (int s = 0; s < W; ++s) {
        if (!kept_slot[s]) {
          px |= static_cast<uint64_t>(s) << (4 * nib++);
        }
      }
      release_fence();
      n->set_permutation(Permuter(px));
      int vacated = W - (kc - (new_left ? 1 : 0));
      n->nremoved_ = static_cast<uint8_t>(
          n->nremoved_ + vacated > 255 ? 255 : n->nremoved_ + vacated);
    }

    // Link n2 into the border list. n and n2 are locked; the old next's prev
    // pointer is protected by its left sibling's lock, which we hold (§4.5).
    Border* old_next = n->next();
    n2->set_next(old_next);
    n2->set_prev(n);
    release_fence();
    n->set_next(n2);
    if (old_next != nullptr) {
      old_next->set_prev(n2);
    }

    ascend_after_split(n, n2, ents[m].slice, ti);
  }

  void write_entry(Border* dst, int idx, const VirtualEntry& e, Border* src, const Key& key,
                   uint64_t value, ThreadContext& ti) {
    if (e.slot < 0) {
      dst->set_slice(idx, key.slice());
      if (key.has_suffix()) {
        assign_suffix(dst, idx, key.suffix(), ti);
        dst->set_keylenx(idx, kKeylenxSuffix);
      } else {
        dst->set_keylenx(idx, static_cast<uint8_t>(key.length_in_slice()));
      }
      dst->set_lv(idx, value);
      return;
    }
    dst->set_slice(idx, src->slice(e.slot));
    uint8_t kx = src->keylenx(e.slot);
    assert(!keylenx_is_unstable(kx));
    if (keylenx_has_suffix(kx)) {
      assign_suffix(dst, idx, src->suffix(e.slot), ti);
    }
    dst->set_keylenx(idx, kx);
    dst->set_lv(idx, src->lv(e.slot));
  }

  // Figure 5's ascend loop: insert (sep, right) above left, splitting
  // interior nodes as needed, hand-over-hand locked.
  void ascend_after_split(Node* left, Node* right, uint64_t sep, ThreadContext& ti) {
    for (;;) {
      Interior* p = locked_parent(left);
      if (p == nullptr) {
        // left was this layer's root: grow a new interior root.
        Interior* r = Interior::make(ti, /*is_root=*/true);
        r->set_nkeys(1);
        r->set_key(0, sep);
        r->set_child(0, left);
        r->set_child(1, right);
        left->set_parent(r);
        right->set_parent(r);
        left->version().set_root(false);
        // Layer-0 roots are updated immediately; sub-layer links are fixed
        // lazily by later descents (§4.6.4).
        Node* expected = left;
        root_.compare_exchange_strong(expected, r, std::memory_order_acq_rel);
        left->version().unlock();
        right->version().unlock();
        return;
      }
      if (p->nkeys() < Interior::kWidth) {
        p->version().mark_inserting();
        int ci = p->find_child(left);
        assert(ci >= 0);
        int nk = p->nkeys();
        for (int i = nk; i > ci; --i) {
          p->set_key(i, p->key(i - 1));
        }
        for (int i = nk + 1; i > ci + 1; --i) {
          p->set_child(i, p->child(i - 1));
        }
        p->set_key(ci, sep);
        p->set_child(ci + 1, right);
        right->set_parent(p);
        p->set_nkeys(nk + 1);
        left->version().unlock();
        right->version().unlock();
        p->version().unlock();
        return;
      }
      // Parent full: split it and keep climbing.
      constexpr int IW = Interior::kWidth;
      p->version().mark_splitting();
      left->version().unlock();
      Interior* p2 = Interior::make(ti, false);
      p2->version().assign_locked_from(p->version().load());
      p2->version().set_root(false);

      uint64_t keys[IW + 1];
      Node* children[IW + 2];
      int ci = p->find_child(left);
      assert(ci >= 0);
      {
        int cpos = 0;
        for (int i = 0; i <= IW; ++i) {
          children[cpos++] = p->child(i);
          if (i == ci) {
            children[cpos++] = right;
          }
        }
        int kpos = 0;
        for (int i = 0; i < IW; ++i) {
          if (i == ci) {
            keys[kpos++] = sep;
          }
          keys[kpos++] = p->key(i);
        }
        if (ci == IW) {
          keys[kpos++] = sep;
        }
      }
      int mm = (IW + 1) / 2;
      uint64_t upkey = keys[mm];
      int rn = IW - mm;
      p2->set_nkeys(rn);
      for (int i = 0; i < rn; ++i) {
        p2->set_key(i, keys[mm + 1 + i]);
      }
      for (int i = 0; i <= rn; ++i) {
        Node* c = children[mm + 1 + i];
        p2->set_child(i, c);
        c->set_parent(p2);  // no child lock needed (§4.5)
      }
      p->set_nkeys(mm);
      for (int i = 0; i < mm; ++i) {
        p->set_key(i, keys[i]);
      }
      for (int i = 0; i <= mm; ++i) {
        Node* c = children[i];
        p->set_child(i, c);
        c->set_parent(p);
      }
      right->version().unlock();  // right is linked into p or p2 now
      left = p;
      right = p2;
      sep = upkey;
    }
  }

  // ---------------- remove machinery (§4.6.5) ----------------

  // Called with n locked and empty. Consumes the lock.
  void handle_empty_border(Border* n, const Key& key, ThreadContext& ti) {
    VersionValue v = n->version().load();
    if (v.is_root()) {
      // The initial node of a tree is never deleted while the tree exists;
      // empty sub-layer trees are cleaned up by scheduled tasks.
      if (key.layer() > 0) {
        schedule_layer_gc(std::string(key.full().substr(0, key.offset())));
      }
      n->version().unlock();
      return;
    }
    if (n->prev() == nullptr) {
      // Leftmost border of its tree: keep (it anchors lowkey = -inf).
      n->version().unlock();
      return;
    }
    ti.counters().inc(Counter::kNodeDeleted);
    n->version().mark_deleted();
    n->version().unlock();  // frozen: no writer will touch it again
    unlink_border(n);
    std::vector<Node*> retired;
    remove_from_parent(n, ti, &retired);
    StringBag* bag = n->raw_suffixes().load(std::memory_order_relaxed);
    if (bag != nullptr) {
      ti.retire(bag);
    }
    ti.retire(n);
    for (Node* dead : retired) {
      ti.retire(dead);
    }
  }

  // Unlink a frozen border node from the doubly linked list by locking its
  // predecessor (whose lock protects both p->next and, transitively, the
  // successor's prev) and revalidating.
  static void unlink_border(Border* m) {
    for (;;) {
      Border* p = m->prev();
      assert(p != nullptr);  // the leftmost node is never deleted
      p->version().lock();
      if (p->version().load().deleted() || p->next() != m) {
        // p is being removed itself, or split/removal rewired the list;
        // m->prev will be updated by whoever is responsible. Retry.
        p->version().unlock();
        spin_pause();
        continue;
      }
      Border* nx = m->next();  // stable: m is frozen
      p->set_next(nx);
      if (nx != nullptr) {
        nx->set_prev(p);
      }
      p->version().unlock();
      return;
    }
  }

  // Remove a frozen child from its parent, cascading when interiors empty
  // out. Emptied interiors are appended to *retired; the caller epoch-retires
  // them only after they are unreachable.
  void remove_from_parent(Node* child, ThreadContext& ti, std::vector<Node*>* retired) {
    Node* node = child;
    for (;;) {
      Interior* p = locked_parent(node);
      assert(p != nullptr);  // roots are never deleted this way
      int ci = p->find_child(node);
      assert(ci >= 0);
      int nk = p->nkeys();
      if (nk == 0) {
        // node was p's only child: p empties out; cascade upward.
        ti.counters().inc(Counter::kNodeDeleted);
        p->version().mark_deleted();
        p->version().unlock();
        retired->push_back(p);
        node = p;
        continue;
      }
      p->version().mark_inserting();
      if (ci == 0) {
        for (int i = 0; i < nk - 1; ++i) {
          p->set_key(i, p->key(i + 1));
        }
        for (int i = 0; i <= nk - 1; ++i) {
          p->set_child(i, p->child(i + 1));
        }
      } else {
        for (int i = ci - 1; i < nk - 1; ++i) {
          p->set_key(i, p->key(i + 1));
        }
        for (int i = ci; i <= nk - 1; ++i) {
          p->set_child(i, p->child(i + 1));
        }
      }
      p->set_nkeys(nk - 1);
      p->version().unlock();
      return;
    }
  }

  void schedule_layer_gc(std::string prefix) {
    std::lock_guard<std::mutex> lock(gc_mu_);
    gc_tasks_.push_back(std::move(prefix));
  }

  // Execute one deferred empty-layer removal: descend to the border slot
  // holding the layer link, verify the sub-layer is still an empty root
  // border, and unpublish it. Locks parent-then-child across the two layers,
  // an ordering used only here (normal operations lock one layer at a time).
  void remove_empty_layer(const std::string& prefix, ThreadContext& ti) {
    assert(prefix.size() % kSliceBytes == 0 && !prefix.empty());
    EpochGuard guard(ti.slot());
    size_t target_off = prefix.size() - kSliceBytes;
    Key key(prefix);
    Node* root = root_.load(std::memory_order_acquire);
    int attempts = 0;
    for (;;) {
      if (++attempts > 64) {
        return;  // contended; the empty layer is harmless, try again later
      }
      Border* n = locate_locked(root, key.slice(), ti);
      if (n == nullptr) {
        key.unshift_all();
        root = root_.load(std::memory_order_acquire);
        continue;
      }
      Permuter perm(n->raw_permutation().load(std::memory_order_relaxed));
      int pos;
      int slot = n->find(perm, key.slice(), 9, &pos);
      if (slot < 0 || !keylenx_is_layer(n->keylenx(slot))) {
        n->version().unlock();
        return;  // link gone or in flux; nothing to do
      }
      Node* sub = n->layer(slot);
      if (key.offset() < target_off) {
        n->version().unlock();
        root = sub;
        key.shift();
        continue;
      }
      sub->version().lock();
      bool empty = false;
      if (sub->is_border() && !sub->version().load().deleted()) {
        Permuter sp(sub->as_border()->raw_permutation().load(std::memory_order_relaxed));
        empty = sp.size() == 0;
      }
      if (!empty) {
        sub->version().unlock();
        n->version().unlock();
        return;  // revived by a concurrent insert
      }
      ti.counters().inc(Counter::kNodeDeleted);
      sub->version().mark_deleted();
      sub->version().unlock();
      perm.remove(pos);
      n->set_permutation(perm);
      if (n->nremoved_ < 255) {
        ++n->nremoved_;
      }
      if (perm.size() == 0) {
        handle_empty_border(n, key, ti);
      } else {
        n->version().unlock();
      }
      StringBag* bag = sub->as_border()->raw_suffixes().load(std::memory_order_relaxed);
      if (bag != nullptr) {
        ti.retire(bag);
      }
      ti.retire(sub);
      return;
    }
  }

  // ---------------- teardown & statistics ----------------

  static void destroy_subtree(Node* n) {
    if (n == nullptr) {
      return;
    }
    if (n->is_border()) {
      Border* b = n->as_border();
      Permuter perm(b->raw_permutation().load(std::memory_order_relaxed));
      for (int i = 0; i < perm.size(); ++i) {
        int s = perm.get(i);
        if (keylenx_is_layer(b->keylenx(s))) {
          destroy_subtree(true_layer_root(b->layer(s)));
        }
      }
      StringBag* bag = b->raw_suffixes().load(std::memory_order_relaxed);
      if (bag != nullptr) {
        Arena::deallocate(bag);
      }
      Arena::deallocate(b);
      return;
    }
    Interior* in = n->as_interior();
    for (int i = 0; i <= in->nkeys(); ++i) {
      destroy_subtree(in->child(i));
    }
    Arena::deallocate(in);
  }

  template <typename F>
  static void walk_values(Node* n, F& f) {
    if (n == nullptr) {
      return;
    }
    if (n->is_border()) {
      Border* b = n->as_border();
      Permuter perm(b->raw_permutation().load(std::memory_order_relaxed));
      for (int i = 0; i < perm.size(); ++i) {
        int s = perm.get(i);
        if (keylenx_is_layer(b->keylenx(s))) {
          walk_values(true_layer_root(b->layer(s)), f);
        } else if (!keylenx_is_unstable(b->keylenx(s))) {
          f(b->lv(s));
        }
      }
      return;
    }
    Interior* in = n->as_interior();
    for (int i = 0; i <= in->nkeys(); ++i) {
      walk_values(in->child(i), f);
    }
  }

  static void collect_subtree(Node* n, uint64_t depth, uint64_t layer, TreeStats* st) {
    if (n == nullptr) {
      return;
    }
    if (st->max_depth < depth && layer == 1) {
      st->max_depth = depth;
    }
    if (st->layers < layer) {
      st->layers = layer;
    }
    if (n->is_border()) {
      Border* b = n->as_border();
      ++st->border_nodes;
      st->node_bytes += sizeof(Border);
      Permuter perm(b->raw_permutation().load(std::memory_order_relaxed));
      for (int i = 0; i < perm.size(); ++i) {
        int s = perm.get(i);
        if (keylenx_is_layer(b->keylenx(s))) {
          ++st->layer_links;
          collect_subtree(true_layer_root(b->layer(s)), 1, layer + 1, st);
        } else {
          ++st->keys;
        }
      }
      StringBag* bag = b->raw_suffixes().load(std::memory_order_relaxed);
      if (bag != nullptr) {
        st->suffix_bytes += bag->capacity();
        st->suffix_used_bytes += bag->used_bytes();
      }
      return;
    }
    Interior* in = n->as_interior();
    ++st->interior_nodes;
    st->node_bytes += sizeof(Interior);
    for (int i = 0; i <= in->nkeys(); ++i) {
      collect_subtree(in->child(i), depth + 1, layer, st);
    }
  }

  std::atomic<Node*> root_;
  RecordCache<C>* cache_ = nullptr;  // not owned; see set_record_cache()
  mutable std::mutex gc_mu_;
  std::vector<std::string> gc_tasks_;
};

// The concurrent tree the paper names Masstree.
using Tree = BasicTree<DefaultConfig>;
// The single-core variant (§6.4, §6.6).
using SequentialTree = BasicTree<SequentialConfig>;

}  // namespace masstree

#endif  // MASSTREE_CORE_TREE_H_
