// Key generators for the paper's workloads (§6.1, §6.4, §7).

#ifndef MASSTREE_WORKLOAD_KEYS_H_
#define MASSTREE_WORKLOAD_KEYS_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "util/rand.h"

namespace masstree {

// SplitMix64: deterministic index -> pseudo-random value, so workloads can
// refer to "key #i" without storing the key set.
inline uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// "1-to-10-byte decimal": decimal string representations of random numbers
// between 0 and 2^31 (§6.1). 80% of keys are 9 or 10 bytes long, which makes
// Masstree create layer-1 trees.
inline std::string decimal_key(uint64_t index) {
  return std::to_string(splitmix64(index) % (uint64_t{1} << 31));
}

// Fixed-size 8-byte decimal keys (§6.4's variable-length-key experiment).
inline std::string decimal8_key(uint64_t index) {
  char buf[16];
  snprintf(buf, sizeof(buf), "%08llu",
           static_cast<unsigned long long>(splitmix64(index) % 100000000ull));
  return std::string(buf, 8);
}

// 8-byte random alphabetical keys (§6.4's hash-table comparison; "digit-only
// keys caused collisions and we wanted the test to favor the hash table").
inline std::string alpha8_key(uint64_t index) {
  uint64_t x = splitmix64(index);
  std::string s(8, 'a');
  for (int i = 0; i < 8; ++i) {
    s[i] = static_cast<char>('a' + (x % 26));
    x /= 26;
  }
  return s;
}

// Figure 9 keys: total length `len` (8..48+); every key shares the same
// (len-8)-byte prefix and only the final 8 bytes vary, drawn from 80M-scale
// decimal values.
inline std::string prefix_key(uint64_t index, size_t len) {
  std::string key(len >= 8 ? len - 8 : 0, 'P');
  char buf[16];
  snprintf(buf, sizeof(buf), "%08llu",
           static_cast<unsigned long long>(splitmix64(index) % 100000000ull));
  key.append(buf, 8);
  return key;
}

// MYCSB keys (§7): 5-to-24-byte keys; "user" + up-to-20-digit decimal.
inline std::string mycsb_key(uint64_t index) {
  return "user" + std::to_string(splitmix64(index));
}

// The one skew generator shared by fig11_skew and bench_json's Zipf sweep,
// wrapping the three access-skew models the benches need:
//
//   kUniform — every key index equally likely (the θ=0 baseline row);
//   kHua     — Figure 11's partition-level skew (Hua's delta model via
//              PartitionSkew): next_partition() picks the partition, the
//              caller keeps choosing uniformly within it, preserving the
//              existing delta-sweep semantics exactly;
//   kZipf    — YCSB-style per-key Zipfian θ over [0, n): next_index() returns
//              a scrambled rank so hot keys scatter across the keyspace.
class SkewGen {
 public:
  enum class Model { kUniform, kHua, kZipf };

  static SkewGen uniform(uint64_t n, uint64_t seed) {
    return SkewGen(Model::kUniform, n, 0.0, seed);
  }
  static SkewGen hua(unsigned partitions, double delta, uint64_t seed) {
    return SkewGen(Model::kHua, partitions, delta, seed);
  }
  static SkewGen zipf(uint64_t n, double theta, uint64_t seed) {
    return SkewGen(Model::kZipf, n, theta, seed);
  }

  Model model() const { return model_; }

  // kUniform / kZipf: the next key index in [0, n).
  uint64_t next_index() {
    return model_ == Model::kZipf ? zipf_->next_scrambled() : rng_.next_range(n_);
  }

  // kHua: the next partition to touch (the caller owns within-partition key
  // choice, as fig11's delta sweep always has).
  unsigned next_partition() { return hua_->next_partition(); }

 private:
  SkewGen(Model model, uint64_t n, double param, uint64_t seed)
      : model_(model), n_(n), rng_(seed) {
    if (model == Model::kHua) {
      hua_.emplace(static_cast<unsigned>(n), param, seed);
    } else if (model == Model::kZipf) {
      zipf_.emplace(n, param, seed);
    }
  }

  Model model_;
  uint64_t n_;
  Rng rng_;
  std::optional<PartitionSkew> hua_;
  std::optional<Zipfian> zipf_;
};

}  // namespace masstree

#endif  // MASSTREE_WORKLOAD_KEYS_H_
