// MYCSB — the paper's modified YCSB (§7).
//
// "The second set uses workloads based on the YCSB cloud serving benchmark.
//  We use a Zipfian distribution for key popularity and set the number of
//  columns to 10 and size of each column to 4 bytes. ... We modify [YCSB-E]
//  to return one column per key ... we modified YCSB to identify columns by
//  number rather than name. We call the result MYCSB."
//
// Mixes: A = 50% get / 50% put, B = 95% get / 5% put, C = all get,
// E = 95% getrange / 5% put. Gets read all ten columns; puts update one
// 4-byte column; getrange returns one column for 1..100 adjacent keys.

#ifndef MASSTREE_WORKLOAD_YCSB_H_
#define MASSTREE_WORKLOAD_YCSB_H_

#include <cassert>
#include <cstdint>
#include <string>

#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {

enum class MycsbOpType { kGet, kPut, kScan };

struct MycsbOp {
  MycsbOpType type;
  uint64_t key_index;   // into the loaded key space
  unsigned col;         // column touched by puts / returned by scans
  unsigned scan_len;    // 1..100 for scans
};

struct MycsbConfig {
  char workload = 'C';        // 'A', 'B', 'C', or 'E'
  uint64_t nkeys = 1000000;   // loaded key count (paper: 20M)
  unsigned ncols = 10;
  unsigned colsize = 4;
  double zipf_theta = 0.99;
};

class MycsbGenerator {
 public:
  MycsbGenerator(const MycsbConfig& cfg, uint64_t seed)
      : cfg_(cfg), rng_(seed), zipf_(cfg.nkeys, cfg.zipf_theta, seed + 1) {
    switch (cfg.workload) {
      case 'A':
        get_pct_ = 50;
        scan_pct_ = 0;
        break;
      case 'B':
        get_pct_ = 95;
        scan_pct_ = 0;
        break;
      case 'C':
        get_pct_ = 100;
        scan_pct_ = 0;
        break;
      case 'E':
        get_pct_ = 0;
        scan_pct_ = 95;
        break;
      default:
        assert(!"unknown MYCSB workload");
    }
  }

  MycsbOp next() {
    MycsbOp op;
    op.key_index = zipf_.next_scrambled();
    op.col = static_cast<unsigned>(rng_.next_range(cfg_.ncols));
    op.scan_len = 1 + static_cast<unsigned>(rng_.next_range(100));
    unsigned dice = static_cast<unsigned>(rng_.next_range(100));
    if (dice < get_pct_) {
      op.type = MycsbOpType::kGet;
    } else if (dice < get_pct_ + scan_pct_) {
      op.type = MycsbOpType::kScan;
    } else {
      op.type = MycsbOpType::kPut;
    }
    return op;
  }

  // A deterministic 4-byte column payload.
  std::string column_value(uint64_t key_index, unsigned col, uint64_t salt) const {
    uint64_t x = splitmix64(key_index * 37 + col + salt * 101);
    std::string s(cfg_.colsize, '\0');
    for (unsigned i = 0; i < cfg_.colsize; ++i) {
      s[i] = static_cast<char>('!' + ((x >> (i * 7)) % 90));
    }
    return s;
  }

  const MycsbConfig& config() const { return cfg_; }

 private:
  MycsbConfig cfg_;
  Rng rng_;
  Zipfian zipf_;
  unsigned get_pct_ = 100;
  unsigned scan_pct_ = 0;
};

}  // namespace masstree

#endif  // MASSTREE_WORKLOAD_YCSB_H_
