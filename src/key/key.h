// Key: a cursor over the 8-byte slices of a variable-length, possibly binary
// key (§4.1). Layer h of the trie is indexed by bytes [8h, 8h+8); shift()
// advances the cursor one layer deeper.

#ifndef MASSTREE_KEY_KEY_H_
#define MASSTREE_KEY_KEY_H_

#include <cassert>
#include <cstdint>
#include <string_view>

#include "key/keyslice.h"

namespace masstree {

class Key {
 public:
  Key() = default;
  explicit Key(std::string_view full) : full_(full) {}

  // The whole key, independent of the cursor.
  std::string_view full() const { return full_; }

  // Bytes at and after the cursor (the part relevant to this and deeper
  // layers).
  std::string_view remainder() const { return full_.substr(offset_); }

  // Current layer index (0-based).
  size_t layer() const { return offset_ / kSliceBytes; }

  // The slice indexing the current layer.
  uint64_t slice() const { return make_slice(remainder()); }

  // Number of key bytes that fall inside the current slice (0..8).
  size_t length_in_slice() const {
    size_t rem = full_.size() - offset_;
    return rem < kSliceBytes ? rem : kSliceBytes;
  }

  // True iff the key continues past the current slice, i.e. a border node
  // needs either a suffix or a next-layer link for it.
  bool has_suffix() const { return full_.size() - offset_ > kSliceBytes; }

  // Bytes after the current slice (the stored suffix for suffixed keys).
  std::string_view suffix() const { return full_.substr(offset_ + kSliceBytes); }

  // Advance one layer (§4.6.3: "advance k to next slice").
  void shift() {
    assert(has_suffix());
    offset_ += kSliceBytes;
  }

  // Rewind to layer 0. Used when an operation retries from the very top.
  void unshift_all() { offset_ = 0; }

  // Cursor byte offset (multiple of 8).
  size_t offset() const { return offset_; }

 private:
  std::string_view full_;
  size_t offset_ = 0;
};

}  // namespace masstree

#endif  // MASSTREE_KEY_KEY_H_
