// 8-byte key slices encoded as host integers (§4.2).
//
// "The keyslice variables store 8-byte key slices as 64-bit integers,
//  byte-swapped if necessary so that native less-than comparisons provide the
//  same results as lexicographic string comparison. This was the most
//  valuable of our coding tricks, improving performance by 13-19%. Short key
//  slices are padded with 0 bytes."
//
// Because keys may contain NUL bytes, a slice alone does not identify a key:
// "ABCDEFG" and "ABCDEFG\0" encode to the same slice and are distinguished by
// the per-slot key length (keylenx in the border node).

#ifndef MASSTREE_KEY_KEYSLICE_H_
#define MASSTREE_KEY_KEYSLICE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace masstree {

// Number of key bytes per trie layer / per slice.
inline constexpr size_t kSliceBytes = 8;

// Encode up to 8 bytes starting at data[0] into a big-endian-ordered u64.
// len is clamped to 8; missing bytes are zero-padded.
inline uint64_t make_slice(const char* data, size_t len) {
  if (len >= kSliceBytes) {
    uint64_t x;
    std::memcpy(&x, data, kSliceBytes);
    return __builtin_bswap64(x);
  }
  uint64_t x = 0;
  for (size_t i = 0; i < len; ++i) {
    x |= static_cast<uint64_t>(static_cast<unsigned char>(data[i])) << (56 - 8 * i);
  }
  return x;
}

inline uint64_t make_slice(std::string_view s) { return make_slice(s.data(), s.size()); }

// Decode a slice back into its (up to len) bytes; used by scans to rebuild
// full keys and by the checkpointer.
inline void slice_to_bytes(uint64_t slice, char out[8]) {
  uint64_t be = __builtin_bswap64(slice);
  std::memcpy(out, &be, kSliceBytes);
}

inline std::string slice_to_string(uint64_t slice, size_t len) {
  char buf[kSliceBytes];
  slice_to_bytes(slice, buf);
  return std::string(buf, len < kSliceBytes ? len : kSliceBytes);
}

}  // namespace masstree

#endif  // MASSTREE_KEY_KEYSLICE_H_
