// Permuter tests (§4.6.2): the 64-bit sort-order word must stay a valid
// permutation of 0..14 under arbitrary insert/remove sequences.

#include "core/permuter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace masstree {
namespace {

// Checks that the 15 subfields are a permutation of 0..14.
void ExpectValidPermutation(const Permuter& p) {
  std::vector<bool> seen(15, false);
  for (int i = 0; i < 15; ++i) {
    int s = p.get(i);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 15);
    ASSERT_FALSE(seen[s]) << "duplicate slot " << s;
    seen[s] = true;
  }
}

TEST(Permuter, EmptyState) {
  Permuter p = Permuter::make_empty();
  EXPECT_EQ(p.size(), 0);
  ExpectValidPermutation(p);
  // Free list starts as identity.
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(p.get(i), i);
  }
}

TEST(Permuter, MakeSorted) {
  for (int n = 0; n <= 15; ++n) {
    Permuter p = Permuter::make_sorted(n);
    EXPECT_EQ(p.size(), n);
    ExpectValidPermutation(p);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(p.get(i), i);
    }
  }
}

TEST(Permuter, InsertAtFront) {
  Permuter p = Permuter::make_empty();
  int s0 = p.insert_from_back(0);
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(p.size(), 1);
  int s1 = p.insert_from_back(0);  // new smallest key
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(p.size(), 2);
  EXPECT_EQ(p.get(0), 1);
  EXPECT_EQ(p.get(1), 0);
  ExpectValidPermutation(p);
}

TEST(Permuter, InsertAtBackSequential) {
  Permuter p = Permuter::make_empty();
  for (int i = 0; i < 15; ++i) {
    int slot = p.insert_from_back(i);
    EXPECT_EQ(slot, i);
    EXPECT_EQ(p.size(), i + 1);
    ExpectValidPermutation(p);
  }
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(p.get(i), i);
  }
}

TEST(Permuter, RemoveFirst) {
  Permuter p = Permuter::make_sorted(3);
  p.remove(0);
  EXPECT_EQ(p.size(), 2);
  EXPECT_EQ(p.get(0), 1);
  EXPECT_EQ(p.get(1), 2);
  // Removed slot is the next to be reused.
  EXPECT_EQ(p.back(), 0);
  ExpectValidPermutation(p);
}

TEST(Permuter, RemoveLast) {
  Permuter p = Permuter::make_sorted(15);
  p.remove(14);
  EXPECT_EQ(p.size(), 14);
  EXPECT_EQ(p.back(), 14);
  ExpectValidPermutation(p);
}

TEST(Permuter, ReuseAfterRemove) {
  Permuter p = Permuter::make_sorted(5);
  p.remove(2);  // slot 2 freed
  int slot = p.insert_from_back(4);
  EXPECT_EQ(slot, 2);  // the freed slot is reused first
  EXPECT_EQ(p.size(), 5);
  ExpectValidPermutation(p);
}

// Property test: a long random insert/remove walk tracked against a plain
// vector model.
TEST(Permuter, RandomWalkAgainstModel) {
  std::mt19937_64 rng(42);
  for (int round = 0; round < 200; ++round) {
    Permuter p = Permuter::make_empty();
    // model[i] = slot of i-th key
    std::vector<int> model;
    for (int step = 0; step < 400; ++step) {
      bool do_insert = model.empty() || (model.size() < 15 && (rng() & 1));
      if (do_insert) {
        int i = static_cast<int>(rng() % (model.size() + 1));
        int slot = p.insert_from_back(i);
        model.insert(model.begin() + i, slot);
      } else {
        int i = static_cast<int>(rng() % model.size());
        p.remove(i);
        model.erase(model.begin() + i);
      }
      ASSERT_EQ(p.size(), static_cast<int>(model.size()));
      for (size_t i = 0; i < model.size(); ++i) {
        ASSERT_EQ(p.get(static_cast<int>(i)), model[i]);
      }
      ExpectValidPermutation(p);
    }
  }
}

TEST(Permuter, SingleWordPublish) {
  // The whole state is one u64: simulating the atomic publish is just a
  // copy, and the copy carries the complete order.
  Permuter p = Permuter::make_sorted(7);
  p.remove(3);
  Permuter q(p.value());
  EXPECT_EQ(q.size(), 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(q.get(i), p.get(i));
  }
}

}  // namespace
}  // namespace masstree
