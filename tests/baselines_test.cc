// Baseline data-structure tests: the Figure 8 ladder (binary tree, 4-tree,
// B-tree variants), the §6.4 hash table, the §4.1 pkB-tree, and the §6.6
// hard-partitioned store. Each is checked against an oracle and under
// concurrent churn.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "baselines/binary_tree.h"
#include "baselines/fast_btree.h"
#include "baselines/four_tree.h"
#include "baselines/hash_table.h"
#include "baselines/partitioned.h"
#include "support/test_support.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

namespace ts = test_support;

// ------------------------- binary tree -------------------------

template <typename T>
class BinaryTreeTest : public ::testing::Test {};

using BinaryVariants =
    ::testing::Types<BinaryTree<MallocNodeAlloc, false>, BinaryTree<MallocNodeAlloc, true>,
                     BinaryTree<FlowNodeAlloc, true>>;
TYPED_TEST_SUITE(BinaryTreeTest, BinaryVariants);

TYPED_TEST(BinaryTreeTest, OracleRandomKeys) {
  ThreadContext ti;
  TypeParam tree;
  ts::Oracle oracle;
  Rng rng = ts::seeded_rng(5);
  for (int i = 0; i < 5000; ++i) {
    std::string k = decimal_key(rng.next());
    uint64_t v = rng.next();
    EXPECT_EQ(tree.insert(k, v, &ti.arena()), oracle.note_insert(k, v));
  }
  oracle.verify_all([&](const std::string& k, uint64_t* got) { return tree.get(k, got); });
  uint64_t dummy;
  EXPECT_FALSE(tree.get("not-a-decimal-key", &dummy));
}

TYPED_TEST(BinaryTreeTest, LongKeysOverflow) {
  ThreadContext ti;
  TypeParam tree;
  std::string longkey(100, 'z');
  tree.insert(longkey + "1", 1, &ti.arena());
  tree.insert(longkey + "2", 2, &ti.arena());
  uint64_t v;
  ASSERT_TRUE(tree.get(longkey + "1", &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(tree.get(longkey + "2", &v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(tree.get(longkey, &v));
}

TEST(BinaryTreeConcurrent, ParallelInsertsAllLand) {
  BinaryTree<FlowNodeAlloc, true> tree;
  constexpr int kThreads = 4, kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      for (int i = 0; i < kPer; ++i) {
        tree.insert(decimal_key(static_cast<uint64_t>(t) * kPer + i),
                    static_cast<uint64_t>(t) * kPer + i, &ti.arena());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ThreadContext ti;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPer; ++i) {
      uint64_t v;
      ASSERT_TRUE(tree.get(decimal_key(static_cast<uint64_t>(t) * kPer + i), &v));
    }
  }
}

// ------------------------- 4-tree -------------------------

TEST(FourTree, OracleRandomKeys) {
  ThreadContext ti;
  FourTree tree(ti);
  ts::Oracle oracle;
  Rng rng = ts::seeded_rng(6);
  for (int i = 0; i < 5000; ++i) {
    std::string k = decimal_key(rng.next());
    uint64_t v = rng.next();
    EXPECT_EQ(tree.insert(k, v, ti), oracle.note_insert(k, v)) << k;
  }
  oracle.verify_all([&](const std::string& k, uint64_t* got) { return tree.get(k, got); });
}

TEST(FourTree, SameSliceKeys) {
  ThreadContext ti;
  FourTree tree(ti);
  // Keys sharing 8-byte prefixes and binary tails.
  std::vector<std::string> keys = {"prefix00", "prefix00a", "prefix00b",
                                   std::string("prefix00\x00", 9), "prefix00aaaaaaaaaaaaaaaaaaX",
                                   "prefix00aaaaaaaaaaaaaaaaaaY"};
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(tree.insert(keys[i], i + 1, ti)) << i;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t v;
    ASSERT_TRUE(tree.get(keys[i], &v)) << i;
    EXPECT_EQ(v, i + 1);
  }
}

TEST(FourTree, ConcurrentInsertGet) {
  ThreadContext main_ti;
  FourTree tree(main_ti);
  for (int i = 0; i < 1000; ++i) {
    tree.insert("stable" + std::to_string(i), i, main_ti);
  }
  ts::ChurnDriver reader;
  reader.spawn(1, [&](ThreadContext&, Rng& rng) {
    uint64_t i = rng.next_range(1000), v;
    return tree.get("stable" + std::to_string(i), &v) && v == i;
  });
  {
    ThreadContext ti;
    for (int i = 0; i < 30000; ++i) {
      tree.insert(decimal_key(i), i, ti);
    }
  }
  EXPECT_EQ(reader.stop_and_join(), 0);
}

// ------------------------- fast B-tree family -------------------------

template <typename T>
class FastBtreeTest : public ::testing::Test {};

using BtreeVariants = ::testing::Types<BtreePlain, BtreePrefetch, BtreePermuter, PkBtree>;
TYPED_TEST_SUITE(FastBtreeTest, BtreeVariants);

TYPED_TEST(FastBtreeTest, OracleDecimalKeys) {
  ThreadContext ti;
  TypeParam tree(ti);
  ts::Oracle oracle;
  Rng rng = ts::seeded_rng(7);
  for (int i = 0; i < 20000; ++i) {
    std::string k = decimal_key(rng.next());
    uint64_t v = rng.next();
    EXPECT_EQ(tree.insert(k, v, ti), oracle.note_insert(k, v)) << k;
  }
  oracle.verify_all(
      [&](const std::string& k, uint64_t* got) { return tree.get(k, got, ti); });
  uint64_t dummy;
  EXPECT_FALSE(tree.get("zzzz-not-there", &dummy, ti));
}

TYPED_TEST(FastBtreeTest, LongSharedPrefixKeys) {
  // Figure 9-style keys: only the last 8 bytes differ.
  ThreadContext ti;
  TypeParam tree(ti);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree.insert(prefix_key(i, 40), i, ti)) << i;
  }
  for (int i = 0; i < 3000; ++i) {
    uint64_t v;
    ASSERT_TRUE(tree.get(prefix_key(i, 40), &v, ti)) << i;
    ASSERT_EQ(v, static_cast<uint64_t>(i));
  }
}

TYPED_TEST(FastBtreeTest, SequentialInsertOrderPreserved) {
  ThreadContext ti;
  TypeParam tree(ti);
  for (int i = 0; i < 5000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    ASSERT_TRUE(tree.insert(buf, i, ti));
  }
  for (int i = 0; i < 5000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    uint64_t v;
    ASSERT_TRUE(tree.get(buf, &v, ti)) << buf;
    ASSERT_EQ(v, static_cast<uint64_t>(i));
  }
}

TEST(BtreeFixed8Keys, EightByteKeys) {
  ThreadContext ti;
  BtreeFixed8 tree(ti);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.insert(decimal8_key(i), i, ti));
  }
  for (int i = 0; i < 10000; ++i) {
    uint64_t v;
    ASSERT_TRUE(tree.get(decimal8_key(i), &v, ti));
    ASSERT_EQ(v, static_cast<uint64_t>(i));
  }
}

TEST(BtreeConcurrent, NoLostKeysUnderInserts) {
  ThreadContext main_ti;
  BtreePermuter tree(main_ti);
  constexpr int kStable = 2000;
  for (int i = 0; i < kStable; ++i) {
    tree.insert("stable" + std::to_string(100000 + i), i, main_ti);
  }
  ts::ChurnDriver reader;
  reader.spawn(1, [&](ThreadContext& ti, Rng& rng) {
    uint64_t i = rng.next_range(kStable), v;
    return tree.get("stable" + std::to_string(100000 + i), &v, ti) && v == i;
  });
  {
    ThreadContext ti;
    for (int i = 0; i < 50000; ++i) {
      tree.insert(decimal_key(i), i, ti);
    }
  }
  EXPECT_EQ(reader.stop_and_join(), 0);
}

TEST(BtreeConcurrent, NonPermuterVariantAlsoSafe) {
  // Without the permuter, inserts shift keys under dirty marks; readers must
  // still never observe garbage.
  ThreadContext main_ti;
  BtreePrefetch tree(main_ti);
  for (int i = 0; i < 500; ++i) {
    tree.insert("fix" + std::to_string(1000 + i), i, main_ti);
  }
  ts::ChurnDriver reader;
  reader.spawn(1, [&](ThreadContext& ti, Rng& rng) {
    uint64_t i = rng.next_range(500), v;
    return tree.get("fix" + std::to_string(1000 + i), &v, ti) && v == i;
  });
  {
    ThreadContext ti;
    for (int i = 0; i < 30000; ++i) {
      tree.insert(decimal_key(777000 + i), i, ti);
    }
  }
  EXPECT_EQ(reader.stop_and_join(), 0);
}

// ------------------------- hash table -------------------------

TEST(HashTable, OracleAlphaKeys) {
  ThreadContext ti;
  HashTable8 table(10000, ti);
  ts::Oracle oracle;
  for (int i = 0; i < 10000; ++i) {
    std::string k = alpha8_key(i);
    EXPECT_EQ(table.insert(k, i), oracle.note_insert(k, i));
  }
  oracle.verify_all([&](const std::string& k, uint64_t* got) { return table.get(k, got); });
  uint64_t dummy;
  EXPECT_FALSE(table.get("QQQQQQQQ", &dummy));
}

TEST(HashTable, OccupancyNearTarget) {
  ThreadContext ti;
  HashTable8 table(100000, ti, 0.30);
  for (int i = 0; i < 100000; ++i) {
    table.insert(alpha8_key(i), i);
  }
  EXPECT_LE(table.occupancy(), 0.31);
  EXPECT_GE(table.occupancy(), 0.10);
}

TEST(HashTable, ConcurrentInserts) {
  ThreadContext main_ti;
  HashTable8 table(40000, main_ti);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) {
        table.insert(alpha8_key(static_cast<uint64_t>(t) * 10000 + i),
                     static_cast<uint64_t>(t) * 10000 + i);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (uint64_t i = 0; i < 40000; ++i) {
    uint64_t v;
    ASSERT_TRUE(table.get(alpha8_key(i), &v));
    ASSERT_EQ(v, i);
  }
}

// ------------------------- partitioned -------------------------

TEST(Partitioned, RoutesAndBalances) {
  ThreadContext ti;
  PartitionedMasstree store(16, ti);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) {
    std::string k = decimal_key(i);
    unsigned p = store.partition_of(k);
    ++counts[p];
    store.insert(k, i, ti);
  }
  for (int i = 0; i < 20000; ++i) {
    uint64_t v;
    ASSERT_TRUE(store.get(decimal_key(i), &v, ti));
  }
  // Hash partitioning keeps key counts roughly equal (±40%).
  for (int p = 0; p < 16; ++p) {
    EXPECT_GT(counts[p], 20000 / 16 * 0.6) << p;
    EXPECT_LT(counts[p], 20000 / 16 * 1.4) << p;
  }
}

}  // namespace
}  // namespace masstree
