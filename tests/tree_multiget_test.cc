// multiget (§4.8 software-pipelined batched lookup) tests: oracle-diffing
// against sequential gets over mixed short/suffix/layer-deep keys and partial
// misses, cursor counter bookkeeping, and a ChurnDriver reader-vs-writer
// stress run (this suite is in the tier-2 TSan lane).

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "core/tree.h"
#include "support/test_support.h"
#include "util/rand.h"

namespace masstree {
namespace {

using test_support::ChurnDriver;
using test_support::Oracle;
using test_support::seeded_rng;

// Run multiget over `keys` and assert every result (found flag and value)
// matches a sequential tree.get of the same key.
void expect_matches_sequential(const Tree& tree, const std::vector<std::string>& keys,
                               ThreadContext& ti, const char* context) {
  std::vector<Tree::GetRequest> reqs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    reqs[i].key = keys[i];
  }
  size_t nfound = tree.multiget(std::span<Tree::GetRequest>(reqs), ti);
  size_t expect_found = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t v = 0;
    bool found = tree.get(keys[i], &v, ti);
    ASSERT_EQ(reqs[i].found, found) << context << " key=" << keys[i];
    if (found) {
      ASSERT_EQ(reqs[i].value, v) << context << " key=" << keys[i];
      ++expect_found;
    }
  }
  ASSERT_EQ(nfound, expect_found) << context;
}

// A key mix that exercises every cursor state: short keys (end inside the
// first slice), exact-8-byte keys, suffixed keys, and keys sharing long
// prefixes so the tree grows multiple trie layers.
std::vector<std::string> mixed_keys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) {
    std::string num = std::to_string(i);
    keys.push_back(num);                                  // short
    keys.push_back("eight_" + std::string(2 - (num.size() > 2), '0') + num);  // ~8 bytes
    keys.push_back("suffixed-key-" + num);                // suffix in the bag
    keys.push_back(std::string(24, 'L') + num);           // shared 3-slice prefix
    keys.push_back("deep" + std::string(40, 'p') + num);  // 5+ layers deep
  }
  return keys;
}

TEST(TreeMultiget, EmptyBatch) {
  ThreadContext ti;
  Tree tree(ti);
  std::vector<Tree::GetRequest> reqs;
  EXPECT_EQ(tree.multiget(std::span<Tree::GetRequest>(reqs), ti), 0u);
}

TEST(TreeMultiget, MixedKeysMatchSequentialGets) {
  ThreadContext ti;
  Tree tree(ti);
  Oracle oracle;
  std::vector<std::string> keys = mixed_keys(60);
  uint64_t old;
  for (size_t i = 0; i < keys.size(); ++i) {
    // Only even positions are inserted, so every batch has partial misses.
    if (i % 2 == 0) {
      EXPECT_EQ(tree.insert(keys[i], i * 31 + 7, &old, ti),
                oracle.note_insert(keys[i], i * 31 + 7));
    }
  }
  // Missing keys near hits: prefixes/extensions that descend the same paths.
  keys.push_back("suffixed-key-");
  keys.push_back(std::string(24, 'L'));
  keys.push_back("deep" + std::string(40, 'p'));
  keys.push_back("absent-entirely");
  keys.push_back("");

  // Batch sizes below, at, and crossing the in-flight window.
  for (size_t batch : {size_t{1}, size_t{5}, Tree::kMultigetWindow,
                       Tree::kMultigetWindow + 1, size_t{37}, keys.size()}) {
    for (size_t start = 0; start + batch <= keys.size(); start += batch) {
      std::vector<std::string> slice(keys.begin() + start, keys.begin() + start + batch);
      expect_matches_sequential(tree, slice, ti, "mixed");
    }
  }

  // The oracle agrees with what multiget reports for every inserted key.
  std::vector<Tree::GetRequest> reqs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    reqs[i].key = keys[i];
  }
  tree.multiget(std::span<Tree::GetRequest>(reqs), ti);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(reqs[i].found, oracle.contains(keys[i])) << keys[i];
    if (reqs[i].found) {
      ASSERT_EQ(reqs[i].value, oracle.map().at(keys[i])) << keys[i];
    }
  }
}

TEST(TreeMultiget, DuplicateKeysInOneBatch) {
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;
  tree.insert("dup", 99, &old, ti);
  std::vector<Tree::GetRequest> reqs(Tree::kMultigetWindow * 2);
  for (auto& r : reqs) {
    r.key = "dup";
  }
  EXPECT_EQ(tree.multiget(std::span<Tree::GetRequest>(reqs), ti), reqs.size());
  for (const auto& r : reqs) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, 99u);
  }
}

TEST(TreeMultiget, LargeRandomBatchAgainstOracle) {
  ThreadContext ti;
  Tree tree(ti);
  Oracle oracle;
  Rng rng = seeded_rng(0x4D47);  // "MG"
  uint64_t old;
  for (int i = 0; i < 4000; ++i) {
    std::string k = test_support::padded_key(rng.next_range(6000));
    uint64_t v = rng.next();
    tree.insert(k, v, &old, ti);
    oracle.note_insert(k, v);
  }
  std::vector<std::string> query;
  for (int i = 0; i < 1000; ++i) {
    query.push_back(test_support::padded_key(rng.next_range(8000)));  // ~25% misses
  }
  expect_matches_sequential(tree, query, ti, "random");
  EXPECT_TRUE(test_support::rep_ok(tree));
}

TEST(TreeMultiget, BatchCountersAdvance) {
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;
  tree.insert("counter-key", 1, &old, ti);
  uint64_t before = ti.counters().get(Counter::kMultigetBatches);
  Tree::GetRequest req{"counter-key", 0, false};
  tree.multiget(std::span<Tree::GetRequest>(&req, 1), ti);
  EXPECT_EQ(ti.counters().get(Counter::kMultigetBatches), before + 1);
}

// Reader-vs-writer stress: reader threads run multiget batches mixing a
// stable key set (inserted up front, never touched again) with a volatile
// set the main thread concurrently inserts/removes/splits. Stable keys must
// always be found with their exact value; volatile keys may be present or
// absent, but a found value must be one the writer actually stored.
TEST(TreeMultiget, ChurnReadersVsWriter) {
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;

  constexpr int kStable = 400;
  constexpr int kVolatile = 400;
  auto stable_key = [](int i) { return "stable-" + std::to_string(i) + "-suffix-bytes"; };
  auto volatile_key = [](int i) {
    return std::string(16, 'v') + std::to_string(i);  // shared prefix: layer churn
  };
  auto volatile_value = [](int i, uint64_t round) { return (round << 16) | unsigned(i); };
  for (int i = 0; i < kStable; ++i) {
    tree.insert(stable_key(i), 1000 + i, &old, ti);
  }

  ChurnDriver churn;
  churn.spawn(3, [&](ThreadContext& rti, Rng& rng) {
    std::string keys[Tree::kMultigetWindow];
    Tree::GetRequest reqs[Tree::kMultigetWindow];
    int stable_at[Tree::kMultigetWindow];
    int volatile_at[Tree::kMultigetWindow];
    for (size_t i = 0; i < Tree::kMultigetWindow; ++i) {
      if (rng.next() & 1) {
        int s = static_cast<int>(rng.next_range(kStable));
        keys[i] = stable_key(s);
        stable_at[i] = s;
        volatile_at[i] = -1;
      } else {
        int v = static_cast<int>(rng.next_range(kVolatile));
        keys[i] = volatile_key(v);
        stable_at[i] = -1;
        volatile_at[i] = v;
      }
      reqs[i] = Tree::GetRequest{keys[i], 0, false};
    }
    tree.multiget(std::span<Tree::GetRequest>(reqs, Tree::kMultigetWindow), rti);
    for (size_t i = 0; i < Tree::kMultigetWindow; ++i) {
      if (stable_at[i] >= 0) {
        if (!reqs[i].found ||
            reqs[i].value != 1000u + static_cast<uint64_t>(stable_at[i])) {
          return false;
        }
      } else if (reqs[i].found &&
                 (reqs[i].value & 0xFFFFu) != static_cast<uint64_t>(volatile_at[i])) {
        return false;  // a found value must be one the writer stored for it
      }
    }
    return true;
  });

  for (uint64_t round = 1; round <= 60; ++round) {
    for (int i = 0; i < kVolatile; ++i) {
      tree.insert(volatile_key(i), volatile_value(i, round), &old, ti);
    }
    for (int i = 0; i < kVolatile; i += 2) {
      tree.remove(volatile_key(i), &old, ti);
    }
    tree.run_maintenance(ti);
    ti.reclaim();
  }
  EXPECT_EQ(churn.stop_and_join(), 0);
  EXPECT_TRUE(test_support::rep_ok(tree));
}

}  // namespace
}  // namespace masstree
