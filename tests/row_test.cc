// Row (multi-column COW value, §4.7) tests.

#include "value/row.h"

#include <gtest/gtest.h>

#include <string>

namespace masstree {
namespace {

class RowTest : public ::testing::Test {
 protected:
  ThreadContext ti_;
};

TEST_F(RowTest, MakeAndRead) {
  Row* r = Row::make(ti_, {{0, "alpha"}, {2, "gamma"}}, 7);
  EXPECT_EQ(r->version(), 7u);
  EXPECT_EQ(r->ncols(), 3u);
  EXPECT_EQ(r->col(0), "alpha");
  EXPECT_EQ(r->col(1), "");  // unset column between set ones
  EXPECT_EQ(r->col(2), "gamma");
  EXPECT_EQ(r->col(99), "");  // out of range reads empty
  Row::deallocate(r);
}

TEST_F(RowTest, EmptyRow) {
  Row* r = Row::make(ti_, {}, 1);
  EXPECT_EQ(r->ncols(), 0u);
  EXPECT_EQ(r->col(0), "");
  Row::deallocate(r);
}

TEST_F(RowTest, UpdateCopiesUnmodifiedColumns) {
  Row* r1 = Row::make(ti_, {{0, "aaa"}, {1, "bbb"}, {2, "ccc"}}, 1);
  Row* r2 = Row::update(ti_, r1, {{1, "BBB"}}, 2);
  // Old row untouched (§4.7: modifications don't act in place).
  EXPECT_EQ(r1->col(1), "bbb");
  EXPECT_EQ(r2->col(0), "aaa");
  EXPECT_EQ(r2->col(1), "BBB");
  EXPECT_EQ(r2->col(2), "ccc");
  EXPECT_EQ(r2->version(), 2u);
  Row::deallocate(r1);
  Row::deallocate(r2);
}

TEST_F(RowTest, UpdateWidensColumnSet) {
  Row* r1 = Row::make(ti_, {{0, "x"}}, 1);
  Row* r2 = Row::update(ti_, r1, {{4, "wide"}}, 2);
  EXPECT_EQ(r2->ncols(), 5u);
  EXPECT_EQ(r2->col(0), "x");
  EXPECT_EQ(r2->col(4), "wide");
  Row::deallocate(r1);
  Row::deallocate(r2);
}

TEST_F(RowTest, UpdateFromNull) {
  Row* r = Row::update(ti_, nullptr, {{1, "solo"}}, 3);
  EXPECT_EQ(r->ncols(), 2u);
  EXPECT_EQ(r->col(1), "solo");
  Row::deallocate(r);
}

TEST_F(RowTest, BinaryColumnData) {
  std::string bin("\x00\x01\x02\xff", 4);
  Row* r = Row::make(ti_, {{0, bin}}, 1);
  EXPECT_EQ(r->col(0), bin);
  Row::deallocate(r);
}

TEST_F(RowTest, SlotRoundTrip) {
  Row* r = Row::make(ti_, {{0, "v"}}, 1);
  uint64_t slot = Row::to_slot(r);
  EXPECT_EQ(Row::from_slot(slot), r);
  Row::deallocate(r);
}

TEST_F(RowTest, TenByFourColumns) {
  // The MYCSB configuration: 10 columns of 4 bytes (§7).
  std::vector<ColumnUpdate> updates;
  std::vector<std::string> data;
  for (unsigned i = 0; i < 10; ++i) {
    data.push_back("c" + std::to_string(i) + "x");
    data.back().resize(4, '_');
  }
  for (unsigned i = 0; i < 10; ++i) {
    updates.push_back({i, data[i]});
  }
  Row* r = Row::make(ti_, updates, 5);
  EXPECT_EQ(r->ncols(), 10u);
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_EQ(r->col(i), data[i]);
    EXPECT_EQ(r->col(i).size(), 4u);
  }
  Row::deallocate(r);
}

}  // namespace
}  // namespace masstree
