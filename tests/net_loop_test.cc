// Event-loop server integration tests (§6.1): many pipelining clients
// oracle-diffed against std::map shadows, connection churn under concurrent
// writes, slow-reader backpressure isolation, cross-connection batch
// formation for reads AND writes (Counter::kNetBatchedGets /
// kNetBatchedPuts), partition-affinity routing (hot keys pinned to their
// hash-owner worker; multiget and multiput ops steered across workers
// without reordering), clean start/stop cycles against the acceptor
// shutdown race, slow-loris idle-connection reaping, and read-only degraded
// serving over the wire after a sticky log I/O error.

#include <gtest/gtest.h>
#include <sys/time.h>

#include <atomic>
#include <cerrno>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/store.h"
#include "net/client.h"
#include "net/proto.h"
#include "net/server.h"
#include "support/test_support.h"
#include "util/io.h"

namespace masstree {
namespace {

using test_support::ChurnDriver;
using test_support::seeded_rng;

class NetLoopTest : public ::testing::Test {
 protected:
  void StartServer(unsigned workers, size_t tx_highwater = 1 << 20,
                   bool affinity = false) {
    server_ = std::make_unique<Server>(store_,
                                       Server::Options{0, workers, tx_highwater, affinity});
    server_->start();
  }
  void TearDown() override {
    if (server_) {
      server_->stop();
    }
  }

  Store store_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------------------
// Many concurrent pipelining clients, each diffed against its own std::map
// shadow. Every expected outcome is computed at send() time (before the
// response exists), so a response that is reordered, dropped, duplicated, or
// attributed to the wrong frame fails the diff.
TEST_F(NetLoopTest, PipelinedClientsOracleDiff) {
  StartServer(2);
  constexpr int kClients = 4, kFrames = 300, kDepth = 4;
  std::atomic<int> errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng = seeded_rng(0x4C4F4F50ull + static_cast<uint64_t>(t));  // "LOOP"
      Client c(server_->port());
      std::map<std::string, std::string> oracle;
      struct ExpectedOp {
        NetOp op;
        bool flag;          // put: inserted; remove: removed; get: found
        std::string value;  // get: expected column 0
      };
      std::deque<std::vector<ExpectedOp>> expected;

      auto check = [&](const std::vector<Client::Result>& res,
                       const std::vector<ExpectedOp>& exp) {
        if (res.size() != exp.size()) {
          ++errors;
          return;
        }
        for (size_t i = 0; i < res.size(); ++i) {
          bool ok = true;
          switch (exp[i].op) {
            case NetOp::kPut:
              ok = res[i].status == NetStatus::kOk && res[i].inserted == exp[i].flag;
              break;
            case NetOp::kRemove:
              ok = (res[i].status == NetStatus::kOk) == exp[i].flag;
              break;
            case NetOp::kGet:
              if (exp[i].flag) {
                ok = res[i].status == NetStatus::kOk && res[i].columns.size() == 1 &&
                     res[i].columns[0] == exp[i].value;
              } else {
                ok = res[i].status == NetStatus::kNotFound;
              }
              break;
            default:
              break;
          }
          if (!ok) {
            ++errors;
          }
        }
      };

      for (int f = 0; f < kFrames; ++f) {
        std::vector<ExpectedOp> exp;
        int nops = 1 + static_cast<int>(rng.next_range(4));
        for (int o = 0; o < nops; ++o) {
          std::string key =
              "c" + std::to_string(t) + "-" + std::to_string(rng.next_range(64));
          switch (rng.next_range(3)) {
            case 0: {
              std::string val = "v" + std::to_string(rng.next());
              bool fresh = oracle.find(key) == oracle.end();
              oracle[key] = val;
              c.put(key, {{0, val}});
              exp.push_back({NetOp::kPut, fresh, {}});
              break;
            }
            case 1: {
              auto it = oracle.find(key);
              c.get(key);
              exp.push_back(
                  {NetOp::kGet, it != oracle.end(), it != oracle.end() ? it->second : ""});
              break;
            }
            default: {
              bool present = oracle.erase(key) > 0;
              c.remove(key);
              exp.push_back({NetOp::kRemove, present, {}});
              break;
            }
          }
        }
        c.send();
        expected.push_back(std::move(exp));
        if (c.inflight() >= kDepth) {
          check(c.receive(), expected.front());
          expected.pop_front();
        }
      }
      while (c.inflight() > 0) {
        check(c.receive(), expected.front());
        expected.pop_front();
      }

      // Final sweep: every surviving oracle key must read back exactly.
      std::vector<ExpectedOp> exp;
      for (const auto& [k, v] : oracle) {
        c.get(k);
        exp.push_back({NetOp::kGet, true, v});
        if (c.pending() == 64) {
          c.send();
          expected.push_back(std::move(exp));
          exp.clear();
        }
      }
      if (c.pending() > 0) {
        c.send();
        expected.push_back(std::move(exp));
      }
      while (c.inflight() > 0) {
        check(c.receive(), expected.front());
        expected.pop_front();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);
}

// ---------------------------------------------------------------------------
// Connection churn — connect/burst/disconnect loops — while ChurnDriver
// threads keep writing through their own store sessions the whole time.
TEST_F(NetLoopTest, ConnectionChurnUnderConcurrentPuts) {
  StartServer(2);
  ChurnDriver churn;
  std::atomic<uint64_t> background_puts{0};
  churn.spawn_with_setup(2, [&](ThreadContext&, Rng& rng) {
    // One store session per churn thread (worker ids clear of the server's).
    auto session = std::make_shared<Store::Session>(
        store_, 100 + static_cast<unsigned>(rng.next_range(1000)));
    return [this, session, &rng, &background_puts] {
      std::string key = "bg" + std::to_string(rng.next_range(512));
      store_.put(key, {ColumnUpdate{0, "bgv"}}, *session);
      background_puts.fetch_add(1, std::memory_order_relaxed);
      return true;
    };
  });

  for (int round = 0; round < 30; ++round) {
    Client c(server_->port());
    for (int i = 0; i < 32; ++i) {
      c.put("churn" + std::to_string(round) + "-" + std::to_string(i),
            {{0, std::to_string(i)}});
    }
    c.send();
    for (int i = 0; i < 32; ++i) {
      c.get("churn" + std::to_string(round) + "-" + std::to_string(i));
    }
    c.send();
    auto puts = c.receive();
    auto gets = c.receive();
    ASSERT_EQ(puts.size(), 32u);
    ASSERT_EQ(gets.size(), 32u);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(gets[i].status, NetStatus::kOk) << round << ":" << i;
      ASSERT_EQ(gets[i].columns[0], std::to_string(i)) << round << ":" << i;
    }
    // Client destructor closes the connection mid-server-lifetime.
  }
  EXPECT_EQ(churn.stop_and_join(), 0);
  EXPECT_GT(background_puts.load(), 0u);
}

// ---------------------------------------------------------------------------
// A client that stops reading mid-burst trips the tx high-water mark and gets
// its rx interest dropped — but connections on the SAME worker must keep
// being served, and the slow reader must eventually receive every byte.
TEST_F(NetLoopTest, SlowReaderDoesNotStallWorker) {
  StartServer(1, /*tx_highwater=*/32 << 10);  // one worker: worst case

  std::string big(8 << 10, 'B');
  {
    Client seed(server_->port());
    seed.put("big", {{0, big}});
    seed.flush();
  }

  // The slow reader: pipeline 64 frames x 4 gets of an 8 KiB value
  // (~2 MiB of responses against a 32 KiB high-water mark) and read nothing.
  // The requests themselves are tiny, so this write cannot block even after
  // the server pauses the connection.
  Client slow(server_->port());
  constexpr int kSlowFrames = 64, kGetsPerFrame = 4;
  for (int f = 0; f < kSlowFrames; ++f) {
    for (int g = 0; g < kGetsPerFrame; ++g) {
      slow.get("big");
    }
    slow.send();
  }

  // Meanwhile, on the same (only) worker: a fast client must make steady
  // progress. If the worker were blocked writing to the slow connection,
  // this loop would hang (and the suite's timeout would flag it).
  Client fast(server_->port());
  for (int i = 0; i < 200; ++i) {
    fast.put("fast" + std::to_string(i), {{0, std::to_string(i)}});
    fast.get("fast" + std::to_string(i));
    auto res = fast.flush();
    ASSERT_EQ(res.size(), 2u) << i;
    ASSERT_EQ(res[1].columns[0], std::to_string(i)) << i;
  }

  // Now drain the slow reader: everything must arrive, intact and in order.
  for (int f = 0; f < kSlowFrames; ++f) {
    auto res = slow.receive();
    ASSERT_EQ(res.size(), static_cast<size_t>(kGetsPerFrame)) << f;
    for (const auto& r : res) {
      ASSERT_EQ(r.status, NetStatus::kOk) << f;
      ASSERT_EQ(r.columns.size(), 1u) << f;
      ASSERT_EQ(r.columns[0], big) << f;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-connection batch formation: each connection sends exactly ONE
// single-get frame, so a batch (>= 2 coalesced request ops, mirrored from
// Counter::kNetBatchedGets) can only form when gets from DIFFERENT
// connections land in the same worker wakeup.
TEST_F(NetLoopTest, BatchesFormAcrossConnections) {
  StartServer(1);  // one worker so every connection shares one event loop
  {
    Client seed(server_->port());
    for (int i = 0; i < 16; ++i) {
      seed.put("bf" + std::to_string(i), {{0, std::to_string(i)}});
    }
    seed.flush();
  }

  constexpr int kConns = 16, kAttempts = 200;
  for (int attempt = 0; attempt < kAttempts && server_->batched_gets() == 0; ++attempt) {
    std::vector<std::unique_ptr<Client>> conns;
    for (int i = 0; i < kConns; ++i) {
      conns.push_back(std::make_unique<Client>(server_->port()));
    }
    // Fire all the single-get frames as close together as possible, THEN
    // collect — while we are still sending, the worker is already waking up
    // with several readable connections.
    for (int i = 0; i < kConns; ++i) {
      conns[i]->get("bf" + std::to_string(i));
      conns[i]->send();
    }
    for (int i = 0; i < kConns; ++i) {
      auto res = conns[i]->receive();
      ASSERT_EQ(res.size(), 1u);
      ASSERT_EQ(res[0].status, NetStatus::kOk);
      ASSERT_EQ(res[0].columns[0], std::to_string(i));
    }
  }
  EXPECT_GT(server_->batched_gets(), 0u)
      << "no cross-connection batch reached Tree::multiget in " << kAttempts
      << " attempts";
  EXPECT_GT(server_->batches_formed(), 0u);
}

// ---------------------------------------------------------------------------
// Cross-connection WRITE batch formation (the write-side twin of the test
// above): each connection sends exactly ONE single-put frame, so a write
// batch (>= 2 coalesced ops, mirrored from Counter::kNetBatchedPuts) can only
// form when puts from DIFFERENT connections land in the same worker wakeup.
TEST_F(NetLoopTest, WriteBatchesFormAcrossConnections) {
  StartServer(1);  // one worker so every connection shares one event loop

  constexpr int kConns = 16, kAttempts = 200;
  int attempt = 0;
  for (; attempt < kAttempts && server_->batched_puts() == 0; ++attempt) {
    std::vector<std::unique_ptr<Client>> conns;
    for (int i = 0; i < kConns; ++i) {
      conns.push_back(std::make_unique<Client>(server_->port()));
    }
    // Fire all the single-put frames as close together as possible, THEN
    // collect — while we are still sending, the worker is already waking up
    // with several readable connections.
    for (int i = 0; i < kConns; ++i) {
      conns[i]->put("wb" + std::to_string(i), {{0, "a" + std::to_string(attempt)}});
      conns[i]->send();
    }
    for (int i = 0; i < kConns; ++i) {
      auto res = conns[i]->receive();
      ASSERT_EQ(res.size(), 1u);
      ASSERT_EQ(res[0].status, NetStatus::kOk);
    }
  }
  EXPECT_GT(server_->batched_puts(), 0u)
      << "no cross-connection write batch reached Store::multiput in "
      << kAttempts << " attempts";
  EXPECT_GT(server_->wbatches_formed(), 0u);

  // Coalescing must not have corrupted any write: read every key back.
  Client c(server_->port());
  for (int i = 0; i < kConns; ++i) {
    c.get("wb" + std::to_string(i));
  }
  auto res = c.flush();
  ASSERT_EQ(res.size(), static_cast<size_t>(kConns));
  for (int i = 0; i < kConns; ++i) {
    ASSERT_EQ(res[i].status, NetStatus::kOk) << i;
    EXPECT_EQ(res[i].columns[0], "a" + std::to_string(attempt - 1)) << i;
  }
}

// ---------------------------------------------------------------------------
// Partition-affinity routing: with affinity on, every op on one hot key must
// be executed by the worker owning hash(key) % nworkers — connections landing
// on other workers are re-steered on their first keyed frame (before any op
// executes), so the other workers' keyed-op counters stay at exactly zero.
TEST_F(NetLoopTest, AffinityPinsHotKeyToOwnerWorker) {
  constexpr unsigned kWorkers = 4;
  StartServer(kWorkers, 1 << 20, /*affinity=*/true);
  const std::string hot = "hotkey";
  unsigned owner = Server::route_worker(hot, kWorkers);
  {
    Client seed(server_->port());
    seed.put(hot, {{0, "hotval"}});
    seed.flush();
  }
  // Many short-lived connections: round-robin accept spreads them over all
  // workers, so most must migrate to reach the owner.
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      Client c(server_->port());
      for (int i = 0; i < 50; ++i) {
        c.get(hot);
        auto res = c.flush();
        if (res.size() != 1 || res[0].status != NetStatus::kOk ||
            res[0].columns.size() != 1 || res[0].columns[0] != "hotval") {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(server_->keyed_ops(owner), 0u);
  for (unsigned w = 0; w < kWorkers; ++w) {
    if (w != owner) {
      EXPECT_EQ(server_->keyed_ops(w), 0u)
          << "worker " << w << " executed ops for a key owned by " << owner;
    }
  }
}

// ---------------------------------------------------------------------------
// Multiget steering: a batch whose keys hash to every worker is split and
// shipped to the owners (steered_gets > 0), yet the connection's responses —
// puts, the multiget's per-key rows, and a trailing get — come back complete
// and in exactly the order sent.
TEST_F(NetLoopTest, AffinitySteersMultigetWithoutReordering) {
  constexpr unsigned kWorkers = 4;
  StartServer(kWorkers, 1 << 20, /*affinity=*/true);

  // One key per worker, found by hashing candidates.
  std::vector<std::string> per_worker(kWorkers);
  unsigned found = 0;
  for (int i = 0; found < kWorkers && i < 10000; ++i) {
    std::string k = "aff" + std::to_string(i);
    unsigned w = Server::route_worker(k, kWorkers);
    if (per_worker[w].empty()) {
      per_worker[w] = k;
      ++found;
    }
  }
  ASSERT_EQ(found, kWorkers);

  Client c(server_->port());
  // Pipeline everything BEFORE reading: the first keyed frame migrates the
  // connection, so the later frames ride the migration carry and must still
  // be answered in order.
  for (unsigned w = 0; w < kWorkers; ++w) {
    c.put(per_worker[w], {{0, "val-" + per_worker[w]}});
  }
  c.send();
  std::vector<std::string_view> batch;
  for (int rep = 0; rep < 3; ++rep) {  // every worker appears 3x, interleaved
    for (unsigned w = 0; w < kWorkers; ++w) {
      batch.push_back(per_worker[w]);
    }
  }
  batch.push_back("aff-missing");  // a not-found row keeps indices honest
  c.multiget(batch);
  c.send();
  c.get(per_worker[0]);
  c.send();

  auto puts = c.receive();
  ASSERT_EQ(puts.size(), kWorkers);
  for (const auto& r : puts) {
    EXPECT_EQ(r.status, NetStatus::kOk);
  }
  auto mg = c.receive();
  ASSERT_EQ(mg.size(), 1u);
  ASSERT_EQ(mg[0].batch.size(), batch.size());
  for (size_t i = 0; i + 1 < batch.size(); ++i) {
    ASSERT_TRUE(mg[0].batch[i].found) << i;
    ASSERT_EQ(mg[0].batch[i].columns.size(), 1u) << i;
    EXPECT_EQ(mg[0].batch[i].columns[0], std::string("val-") + std::string(batch[i]))
        << "row " << i << " out of order after steering";
  }
  EXPECT_FALSE(mg[0].batch.back().found);
  auto last = c.receive();
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].columns[0], "val-" + per_worker[0]);

  EXPECT_GT(server_->steered_gets(), 0u)
      << "a 4-worker-spanning multiget must ship remote jobs";
}

// ---------------------------------------------------------------------------
// Multiput steering: a kMultiPut whose keys hash to every worker is split and
// shipped to the owner workers (steered_puts > 0), yet the per-entry inserted
// flags come back in exactly the order sent, read-back sees every write, and
// no write executes on a worker that does not own its key.
TEST_F(NetLoopTest, AffinitySteersMultiputWithoutReordering) {
  constexpr unsigned kWorkers = 4;
  StartServer(kWorkers, 1 << 20, /*affinity=*/true);

  // One key per worker, found by hashing candidates.
  std::vector<std::string> per_worker(kWorkers);
  unsigned found = 0;
  for (int i = 0; found < kWorkers && i < 10000; ++i) {
    std::string k = "wsteer" + std::to_string(i);
    unsigned w = Server::route_worker(k, kWorkers);
    if (per_worker[w].empty()) {
      per_worker[w] = k;
      ++found;
    }
  }
  ASSERT_EQ(found, kWorkers);

  Client c(server_->port());
  std::vector<std::string> vals;
  std::vector<netwire::MultiputEntry> entries;
  for (int rep = 0; rep < 3; ++rep) {  // every worker appears 3x, interleaved
    for (unsigned w = 0; w < kWorkers; ++w) {
      vals.push_back("wv" + std::to_string(rep) + "-" + per_worker[w]);
    }
  }
  size_t vi = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (unsigned w = 0; w < kWorkers; ++w) {
      entries.push_back({per_worker[w], {{0, vals[vi++]}}});
    }
  }
  c.multiput(entries);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    // As-if-sequential order survives the steering: only each key's FIRST
    // occurrence inserts; later duplicates report replacements.
    EXPECT_EQ(res[0].batch[i].inserted, i < kWorkers) << i;
  }
  EXPECT_GT(server_->steered_puts(), 0u)
      << "a 4-worker-spanning multiput must ship remote write jobs";

  // Last write wins per key, across the steered partitions.
  std::vector<std::string_view> keys(per_worker.begin(), per_worker.end());
  c.multiget(keys);
  res = c.flush();
  ASSERT_EQ(res[0].batch.size(), kWorkers);
  for (unsigned w = 0; w < kWorkers; ++w) {
    ASSERT_TRUE(res[0].batch[w].found) << w;
    EXPECT_EQ(res[0].batch[w].columns[0], "wv2-" + per_worker[w]) << w;
  }
}

// ---------------------------------------------------------------------------
// Affinity pins hot-key WRITES: single-key put/remove frames on one hot key
// must only ever execute on the owner worker, even when they arrive through
// the write-coalescing path.
TEST_F(NetLoopTest, AffinityPinsHotKeyWritesToOwnerWorker) {
  constexpr unsigned kWorkers = 4;
  StartServer(kWorkers, 1 << 20, /*affinity=*/true);
  const std::string hot = "hot-write-key";
  unsigned owner = Server::route_worker(hot, kWorkers);

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Client c(server_->port());
      for (int i = 0; i < 40; ++i) {
        c.put(hot, {{0, "w" + std::to_string(t)}});
        auto res = c.flush();
        if (res.size() != 1 || res[0].status != NetStatus::kOk) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(server_->keyed_ops(owner), 0u);
  for (unsigned w = 0; w < kWorkers; ++w) {
    if (w != owner) {
      EXPECT_EQ(server_->keyed_ops(w), 0u)
          << "worker " << w << " executed writes for a key owned by " << owner;
    }
  }
}

// ---------------------------------------------------------------------------
// Start/stop cycles with live connections: the old blocking server had a
// shutdown/accept race on listen_fd_; the event-loop server routes the
// listener through worker 0's epoll set and closes the fd only after every
// worker has joined.
TEST(NetLoopShutdown, StartStopCyclesWithLiveClients) {
  Store store;
  for (int round = 0; round < 20; ++round) {
    Server server(store, Server::Options{0, 2});
    server.start();
    Client c(server.port());
    c.put("ss" + std::to_string(round), {{0, "v"}});
    c.get("ss" + std::to_string(round));
    auto res = c.flush();
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[1].columns[0], "v");
    server.stop();  // with the client still connected
  }
}

// ---------------------------------------------------------------------------
// Slow-loris guard: a peer that connects and trickles HALF a frame must be
// reaped once Options::idle_timeout_ms elapses without a complete frame —
// while a healthy pipelining client on the same worker keeps serving. Without
// the sweep such connections pin worker state forever (the hole this test
// used to leave open).
TEST(NetLoopIdle, SlowLorisConnectionsAreReaped) {
  Store store;
  Server::Options opt;
  opt.workers = 1;  // loris and healthy client share one event loop
  opt.idle_timeout_ms = 100;
  Server server(store, opt);
  server.start();

  // The loris: a raw socket that sends a length prefix promising 100 bytes,
  // delivers 3, then stalls. Half a frame must NOT count as activity.
  int loris = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(loris, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(loris, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  uint32_t promised = 100;
  ASSERT_EQ(::send(loris, &promised, sizeof(promised), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(promised)));
  ASSERT_EQ(::send(loris, "abc", 3, MSG_NOSIGNAL), 3);

  // A healthy client keeps completing frames throughout, so it must survive
  // every sweep while the loris idles out.
  Client healthy(server.port());
  bool reaped = false;
  for (int tries = 0; tries < 500; ++tries) {
    healthy.put("hk", {{0, "v" + std::to_string(tries)}});
    auto res = healthy.flush();
    ASSERT_EQ(res.size(), 1u);
    ASSERT_EQ(res[0].status, NetStatus::kOk);
    if (server.idle_reaped() >= 1) {
      reaped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(reaped) << "idle sweep never closed the stalled connection";

  // The server closed its side: the loris reads EOF (possibly after a reset
  // if more trickled bytes raced the close).
  timeval tv{2, 0};
  ::setsockopt(loris, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char b;
  EXPECT_LE(::recv(loris, &b, 1, 0), 0);
  ::close(loris);

  // And the healthy connection still serves after the reap.
  healthy.get("hk");
  auto res = healthy.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  server.stop();
}

// ---------------------------------------------------------------------------
// Degraded serving over the wire: a sticky log I/O error flips the store
// read-only; from then on puts/removes answer NetStatus::kReadOnly (no
// payload) on the SAME connection, gets keep serving the in-memory data, and
// nothing is closed or thrown.
TEST(NetLoopReadOnly, WritesAnswerReadOnlyGetsKeepServing) {
  std::string dir = testing::TempDir() + "/net_ro_logs";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Store::Options sopt;
  sopt.log_dir = dir;
  sopt.log_partitions = 1;
  sopt.maintenance_thread = false;
  Store store(sopt);
  {
    Server server(store, Server::Options{0, 1});
    server.start();
    Client c(server.port());
    c.put("pre", {{0, "durable"}});
    auto r0 = c.flush();
    ASSERT_EQ(r0.size(), 1u);
    ASSERT_EQ(r0[0].status, NetStatus::kOk);
    store.sync_logs();
    ASSERT_FALSE(store.read_only());

    // First log pwritev from here on fails with EIO -> sticky trip.
    io::FaultPlan plan;
    plan.fail_at = 1;
    plan.fail_errno = EIO;
    plan.fail_op = "pwritev";
    {
      io::Armed armed(&plan);
      c.put("doomed", {{0, "x"}});
      auto r1 = c.flush();  // accepted before the drain hits the bad disk
      ASSERT_EQ(r1.size(), 1u);
      store.sync_logs();  // forces the failing flush round
    }
    ASSERT_TRUE(store.read_only());

    // Same connection: writes now answer kReadOnly, reads keep serving.
    c.put("after", {{0, "y"}});
    c.remove("pre");
    c.get("pre");
    c.get("doomed");  // applied in memory before the trip; still readable
    auto res = c.flush();
    ASSERT_EQ(res.size(), 4u);
    EXPECT_EQ(res[0].status, NetStatus::kReadOnly);
    EXPECT_EQ(res[1].status, NetStatus::kReadOnly);
    ASSERT_EQ(res[2].status, NetStatus::kOk);
    EXPECT_EQ(res[2].columns[0], "durable");
    EXPECT_EQ(res[3].status, NetStatus::kOk);

    // Multiput over the wire also reports the degraded mode in-band.
    c.multiput({{"m1", {{0, "a"}}}, {"m2", {{0, "b"}}}});
    auto rm = c.flush();
    ASSERT_EQ(rm.size(), 1u);
    EXPECT_EQ(rm[0].status, NetStatus::kReadOnly);
    EXPECT_EQ(store.log_error(), EIO);
    EXPECT_STREQ(store.log_error_detail().syscall, "pwritev");
    server.stop();
  }
}

}  // namespace
}  // namespace masstree
