// Masstree functional tests, single-threaded: §4.1's layering examples,
// inserts/updates/removes, splits, and oracle comparison against std::map.

#include "core/tree.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/rand.h"

namespace masstree {
namespace {

class TreeTest : public ::testing::Test {
 protected:
  TreeTest() : tree_(ti_) {}

  std::optional<uint64_t> Get(std::string_view k) {
    uint64_t v;
    if (tree_.get(k, &v, ti_)) {
      return v;
    }
    return std::nullopt;
  }
  bool Put(std::string_view k, uint64_t v) {
    uint64_t old;
    return tree_.insert(k, v, &old, ti_);
  }
  bool Remove(std::string_view k) {
    uint64_t old;
    return tree_.remove(k, &old, ti_);
  }

  ThreadContext ti_;
  Tree tree_;
};

TEST_F(TreeTest, EmptyTree) {
  EXPECT_FALSE(Get("anything"));
  EXPECT_FALSE(Get(""));
  EXPECT_FALSE(Remove("anything"));
}

TEST_F(TreeTest, SingleKey) {
  EXPECT_TRUE(Put("hello", 42));
  EXPECT_EQ(Get("hello"), 42u);
  EXPECT_FALSE(Get("hell"));
  EXPECT_FALSE(Get("hello!"));
}

TEST_F(TreeTest, UpdateReturnsOldValue) {
  Put("k", 1);
  uint64_t old = 0;
  EXPECT_FALSE(tree_.insert("k", 2, &old, ti_));  // update, not insert
  EXPECT_EQ(old, 1u);
  EXPECT_EQ(Get("k"), 2u);
}

TEST_F(TreeTest, EmptyKeyIsAValidKey) {
  EXPECT_TRUE(Put("", 9));
  EXPECT_EQ(Get(""), 9u);
  EXPECT_TRUE(Remove(""));
  EXPECT_FALSE(Get(""));
}

TEST_F(TreeTest, PaperLayerExample) {
  // §4.1's worked example.
  EXPECT_TRUE(Put("01234567AB", 1));  // stored with suffix "AB"
  EXPECT_EQ(Get("01234567AB"), 1u);

  // Same 8-byte prefix: must create a layer-1 tree holding "AB" and "XY".
  EXPECT_TRUE(Put("01234567XY", 2));
  EXPECT_EQ(Get("01234567AB"), 1u);  // remains visible throughout
  EXPECT_EQ(Get("01234567XY"), 2u);
  TreeStats st = tree_.collect_stats();
  EXPECT_EQ(st.layers, 2u);
  EXPECT_EQ(st.layer_links, 1u);

  // remove("01234567XY") deletes "XY" from the layer-1 tree; "AB" stays.
  EXPECT_TRUE(Remove("01234567XY"));
  EXPECT_FALSE(Get("01234567XY"));
  EXPECT_EQ(Get("01234567AB"), 1u);
}

TEST_F(TreeTest, SameSliceDifferentLengths) {
  // Keys of length 0..8 sharing one slice all coexist in one border node,
  // plus one suffixed key (§4.2: "at most 10 keys with the same slice").
  std::string base = "AAAAAAAA";
  for (size_t len = 0; len <= 8; ++len) {
    EXPECT_TRUE(Put(std::string_view(base).substr(0, len), len + 100));
  }
  EXPECT_TRUE(Put(base + "tail", 200));
  for (size_t len = 0; len <= 8; ++len) {
    EXPECT_EQ(Get(std::string_view(base).substr(0, len)), len + 100);
  }
  EXPECT_EQ(Get(base + "tail"), 200u);
}

TEST_F(TreeTest, EmbeddedNulKeys) {
  std::string k7("ABCDEFG");
  std::string k8("ABCDEFG\0", 8);
  std::string k9("ABCDEFG\0\0", 9);
  EXPECT_TRUE(Put(k7, 7));
  EXPECT_TRUE(Put(k8, 8));
  EXPECT_TRUE(Put(k9, 9));
  EXPECT_EQ(Get(k7), 7u);
  EXPECT_EQ(Get(k8), 8u);
  EXPECT_EQ(Get(k9), 9u);
}

TEST_F(TreeTest, SplitsOnSequentialInsert) {
  for (int i = 0; i < 1000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    ASSERT_TRUE(Put(buf, i));
  }
  for (int i = 0; i < 1000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    ASSERT_EQ(Get(buf), static_cast<uint64_t>(i)) << buf;
  }
  TreeStats st = tree_.collect_stats();
  EXPECT_GT(st.border_nodes, 60u);  // must have split many times
  EXPECT_GT(st.interior_nodes, 0u);
  // Sequential optimization: nodes should be densely packed, not half full.
  EXPECT_GT(st.avg_border_fill(15), 0.85);
}

TEST_F(TreeTest, SplitsOnRandomInsert) {
  Rng rng(7);
  std::map<std::string, uint64_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    std::string k = std::to_string(rng.next_range(100000000));
    uint64_t v = rng.next();
    uint64_t old;
    bool inserted = tree_.insert(k, v, &old, ti_);
    EXPECT_EQ(inserted, oracle.find(k) == oracle.end());
    oracle[k] = v;
  }
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(Get(k), v) << k;
  }
}

TEST_F(TreeTest, LongSharedPrefixes) {
  // 40-byte shared prefix forces 5+ trie layers (§4.1 "Balance").
  std::string prefix(40, 'P');
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Put(prefix + std::to_string(i), i));
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(Get(prefix + std::to_string(i)), static_cast<uint64_t>(i));
  }
  EXPECT_FALSE(Get(prefix));  // the prefix itself was never inserted
  TreeStats st = tree_.collect_stats();
  EXPECT_GE(st.layers, 6u);
}

TEST_F(TreeTest, RemoveThenReinsert) {
  for (int i = 0; i < 100; ++i) {
    Put("key" + std::to_string(i), i);
  }
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(Remove("key" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_FALSE(Get("key" + std::to_string(i)));
    } else {
      EXPECT_EQ(Get("key" + std::to_string(i)), static_cast<uint64_t>(i));
    }
  }
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(Put("key" + std::to_string(i), i + 1000));
  }
  for (int i = 0; i < 100; i += 2) {
    EXPECT_EQ(Get("key" + std::to_string(i)), static_cast<uint64_t>(i + 1000));
  }
}

TEST_F(TreeTest, RemoveReturnsOldValue) {
  Put("x", 123);
  uint64_t old = 0;
  EXPECT_TRUE(tree_.remove("x", &old, ti_));
  EXPECT_EQ(old, 123u);
  EXPECT_FALSE(tree_.remove("x", &old, ti_));
}

TEST_F(TreeTest, MassRemoveEmptiesNodes) {
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back("k" + std::to_string(i * 7919 % 100000));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    Put(keys[i], i);
  }
  for (const auto& k : keys) {
    Remove(k);
  }
  for (const auto& k : keys) {
    EXPECT_FALSE(Get(k));
  }
  // Empty borders are deleted; tree shrinks back toward a single node.
  TreeStats st = tree_.collect_stats();
  EXPECT_EQ(st.keys, 0u);
  EXPECT_LT(st.border_nodes, 20u);
}

TEST_F(TreeTest, EmptyLayerGcViaMaintenance) {
  Put("01234567AB", 1);
  Put("01234567XY", 2);
  ASSERT_EQ(tree_.collect_stats().layers, 2u);
  Remove("01234567AB");
  Remove("01234567XY");
  // Layer-1 tree is now empty; a maintenance task was scheduled (§4.6.5).
  EXPECT_GT(tree_.pending_maintenance(), 0u);
  tree_.run_maintenance(ti_);
  TreeStats st = tree_.collect_stats();
  EXPECT_EQ(st.layer_links, 0u);
  EXPECT_EQ(st.keys, 0u);
  // Reinsert still works afterwards.
  EXPECT_TRUE(Put("01234567AB", 3));
  EXPECT_EQ(Get("01234567AB"), 3u);
}

TEST_F(TreeTest, SuffixBagGrowth) {
  // Many long-suffix keys landing in one node force bag growth.
  std::string slice8 = "SLICE00_";
  for (int i = 0; i < 8; ++i) {
    std::string k = std::string(1, 'a' + i) + "2345678" + std::string(100, 'x') +
                    std::to_string(i);
    ASSERT_TRUE(Put(k, i));
  }
  for (int i = 0; i < 8; ++i) {
    std::string k = std::string(1, 'a' + i) + "2345678" + std::string(100, 'x') +
                    std::to_string(i);
    ASSERT_EQ(Get(k), static_cast<uint64_t>(i));
  }
}

// Regression: the §4.3 rightmost-append split optimization (new key goes to
// a fresh right sibling alone) must not fire when the new key shares its
// 8-byte slice with the node's current last entry — the sibling's lowkey is
// a slice, so splitting a same-slice pair across the boundary routed gets
// for the kept entry to the new node, where they missed. Scan still saw the
// key (B-link walk), only point lookups lost it.
TEST_F(TreeTest, RightmostSplitKeepsSameSliceEntriesTogether) {
  // Fill one border to kWidth with ascending keys so the next insert is a
  // rightmost append into a full node with no next sibling...
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(Put("fill-" + std::string(1, 'a' + i), i));
  }
  ASSERT_TRUE(Put("same8tag", 100));  // exactly 8 bytes: ord 8, last entry
  // ...where the appended key shares the slice "same8tag" but carries a
  // suffix (ord 9): the split must keep both on one side.
  ASSERT_TRUE(Put("same8tag-suffixed", 101));
  EXPECT_EQ(Get("same8tag"), 100u);
  EXPECT_EQ(Get("same8tag-suffixed"), 101u);
  for (int i = 0; i < 14; ++i) {
    EXPECT_EQ(Get("fill-" + std::string(1, 'a' + i)), static_cast<uint64_t>(i));
  }
}

TEST_F(TreeTest, DecimalWorkloadSmoke) {
  // The paper's 1-to-10-byte decimal key distribution (§6.1).
  Rng rng(1234);
  std::map<std::string, uint64_t> oracle;
  for (int i = 0; i < 20000; ++i) {
    std::string k = std::to_string(rng.next_range(1u << 31));
    oracle[k] = i;
    uint64_t old;
    tree_.insert(k, i, &old, ti_);
  }
  TreeStats st = tree_.collect_stats();
  EXPECT_EQ(st.keys, oracle.size());
  EXPECT_GE(st.layers, 2u);  // 9-10 byte keys create layer-1 trees
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(Get(k), v);
  }
}

}  // namespace
}  // namespace masstree
