// End-to-end Store tests (§3, §4.7, §5): columns, atomic multi-column puts,
// range queries, logging + crash recovery, checkpoints.

#include "kvstore/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace masstree {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Store, PutGetColumns) {
  Store store;
  Store::Session s(store, 0);
  EXPECT_TRUE(store.put("user1", {{0, "alice"}, {1, "42"}}, s));
  std::vector<std::string> out;
  ASSERT_TRUE(store.get("user1", {}, &out, s));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "alice");
  EXPECT_EQ(out[1], "42");
  // Column subset (the getc(k) column-list parameter, §3).
  ASSERT_TRUE(store.get("user1", {1}, &out, s));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "42");
}

TEST(Store, PartialColumnUpdatePreservesOthers) {
  Store store;
  Store::Session s(store, 0);
  store.put("k", {{0, "a"}, {1, "b"}, {2, "c"}}, s);
  EXPECT_FALSE(store.put("k", {{1, "B"}}, s));  // update, not insert
  std::vector<std::string> out;
  store.get("k", {}, &out, s);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "B");
  EXPECT_EQ(out[2], "c");
}

TEST(Store, RemoveFreesRow) {
  Store store;
  Store::Session s(store, 0);
  store.put("k", {{0, "v"}}, s);
  EXPECT_TRUE(store.remove("k", s));
  EXPECT_FALSE(store.remove("k", s));
  std::vector<std::string> out;
  EXPECT_FALSE(store.get("k", {}, &out, s));
}

TEST(Store, GetRange) {
  Store store;
  Store::Session s(store, 0);
  for (int i = 0; i < 50; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "row%03d", i);
    store.put(buf, {{0, "c0-" + std::to_string(i)}, {1, "c1-" + std::to_string(i)}}, s);
  }
  std::vector<std::pair<std::string, std::string>> got;
  size_t n = store.getrange(
      "row010", 5, 1,
      [&](std::string_view k, std::string_view col, const Row*) {
        got.emplace_back(std::string(k), std::string(col));
        return true;
      },
      s);
  EXPECT_EQ(n, 5u);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].first, "row010");
  EXPECT_EQ(got[0].second, "c1-10");
  EXPECT_EQ(got[4].first, "row014");
}

TEST(Store, GetRangeCrossesEpochChunkBoundary) {
  // getrange re-acquires its epoch guard (cursor detach/re-attach) every
  // kGetrangeChunk pairs; a range several chunks long must come back exactly
  // once each, in order, across every seam.
  Store store;
  Store::Session s(store, 0);
  constexpr size_t kKeys = Store::kGetrangeChunk * 2 + 700;
  for (size_t i = 0; i < kKeys; ++i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "ck%06zu", i * 3);
    store.put(buf, {{0, std::to_string(i)}}, s);
  }
  std::vector<std::pair<std::string, std::string>> got;
  size_t n = store.getrange(
      "ck",  kKeys + 10, 0,
      [&](std::string_view k, std::string_view col, const Row*) {
        got.emplace_back(std::string(k), std::string(col));
        return true;
      },
      s);
  ASSERT_EQ(n, kKeys);
  ASSERT_EQ(got.size(), kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "ck%06zu", i * 3);
    ASSERT_EQ(got[i].first, buf) << i;
    ASSERT_EQ(got[i].second, std::to_string(i)) << i;
  }

  // A limit landing exactly on the chunk seam, and one pair past it.
  for (size_t lim : {Store::kGetrangeChunk, Store::kGetrangeChunk + 1}) {
    got.clear();
    n = store.getrange(
        "ck", lim, 0,
        [&](std::string_view k, std::string_view col, const Row*) {
          got.emplace_back(std::string(k), std::string(col));
          return true;
        },
        s);
    ASSERT_EQ(n, lim);
    ASSERT_EQ(got.size(), lim);
    ASSERT_EQ(got.front().first, "ck000000");
    char buf[24];
    snprintf(buf, sizeof(buf), "ck%06zu", (lim - 1) * 3);
    ASSERT_EQ(got.back().first, buf);
  }
}

TEST(Store, AtomicMultiColumnPutUnderReaders) {
  // §4.7: "a concurrent get will see either all or none of a put's column
  // modifications". Writer alternates (i, i); readers must never see a
  // mixed row.
  Store store;
  Store::Session writer(store, 0);
  store.put("acct", {{0, "0"}, {1, "0"}}, writer);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    Store::Session s(store, 1);
    std::vector<std::string> out;
    while (!stop.load(std::memory_order_acquire)) {
      if (store.get("acct", {}, &out, s) && out.size() == 2 && out[0] != out[1]) {
        ++torn;
      }
    }
  });
  for (int i = 1; i <= 20000; ++i) {
    std::string v = std::to_string(i);
    store.put("acct", {{0, v}, {1, v}}, writer);
  }
  stop = true;
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(Store, ValueVersionsIncreasePerKey) {
  Store store;
  Store::Session s(store, 0);
  store.put("k", {{0, "1"}}, s);
  std::vector<uint64_t> versions;
  for (int i = 0; i < 10; ++i) {
    store.put("k", {{0, std::to_string(i)}}, s);
    store.getrange(
        "k", 1, Store::kAllColumns,
        [&](std::string_view, std::string_view, const Row* row) {
          versions.push_back(row->version());
          return true;
        },
        s);
  }
  for (size_t i = 1; i < versions.size(); ++i) {
    EXPECT_GT(versions[i], versions[i - 1]);
  }
}

TEST(Store, LogRecoveryRoundTrip) {
  std::string dir = FreshDir("store_logrec");
  {
    Store::Options opt;
    opt.log_dir = dir;
    opt.log_partitions = 4;
    opt.logger.flush_interval_ms = 5;
    Store store(opt);
    Store::Session s(store, 0);
    for (int i = 0; i < 500; ++i) {
      store.put("key" + std::to_string(i), {{0, "val" + std::to_string(i)}}, s);
    }
    for (int i = 0; i < 500; i += 3) {
      store.remove("key" + std::to_string(i), s);
    }
    for (int i = 0; i < 500; i += 5) {
      store.put("key" + std::to_string(i), {{0, "fresh" + std::to_string(i)}}, s);
    }
    store.sync_logs();
  }  // "crash"

  Store::Options opt;
  opt.log_dir = dir;
  opt.log_partitions = 4;
  Store recovered(opt);
  auto res = recovered.recover("", dir, 2);
  EXPECT_FALSE(res.used_checkpoint);
  EXPECT_GT(res.log_entries_applied, 0u);

  Store::Session s(recovered, 0);
  std::vector<std::string> out;
  for (int i = 0; i < 500; ++i) {
    std::string k = "key" + std::to_string(i);
    bool want_present = (i % 3 != 0) || (i % 5 == 0);
    ASSERT_EQ(recovered.get(k, {}, &out, s), want_present) << k;
    if (want_present) {
      std::string want =
          (i % 5 == 0) ? "fresh" + std::to_string(i) : "val" + std::to_string(i);
      EXPECT_EQ(out[0], want) << k;
    }
  }
}

TEST(Store, MultiWorkerLogsRecoverConsistently) {
  std::string dir = FreshDir("store_multilog");
  {
    Store::Options opt;
    opt.log_dir = dir;
    opt.log_partitions = 3;
    Store store(opt);
    std::vector<std::thread> workers;
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&store, w] {
        Store::Session s(store, static_cast<unsigned>(w));
        for (int i = 0; i < 300; ++i) {
          // Overlapping keys across workers: version order must win.
          store.put("shared" + std::to_string(i % 100),
                    {{0, "w" + std::to_string(w) + "-" + std::to_string(i)}}, s);
        }
      });
    }
    for (auto& t : workers) {
      t.join();
    }
    // Raise every log's last timestamp past the real records, so the §5
    // cutoff (min over logs of max timestamp) does not drop any of them.
    for (unsigned w = 0; w < 3; ++w) {
      Store::Session sw(store, w);
      store.put("zzz-sentinel" + std::to_string(w), {{0, "s"}}, sw);
    }
    store.sync_logs();

    // Record the live state, then recover from logs and compare.
    Store::Session s(store, 0);
    std::vector<std::string> live(100);
    for (int i = 0; i < 100; ++i) {
      std::vector<std::string> out;
      ASSERT_TRUE(store.get("shared" + std::to_string(i), {}, &out, s));
      live[i] = out[0];
    }

    Store::Options ropt;
    ropt.log_dir = dir;
    ropt.log_partitions = 3;
    Store recovered(ropt);
    recovered.recover("", dir, 3);
    Store::Session rs(recovered, 0);
    for (int i = 0; i < 100; ++i) {
      std::vector<std::string> out;
      ASSERT_TRUE(recovered.get("shared" + std::to_string(i), {}, &out, rs));
      // The recovered value must match the final live value: version order
      // assigned under the border lock makes replay deterministic (§5).
      EXPECT_EQ(out[0], live[i]) << i;
    }
  }
}

TEST(Store, CheckpointAndRecover) {
  std::string log_dir = FreshDir("store_ckpt_logs");
  std::string ckpt_dir = FreshDir("store_ckpt");
  {
    Store::Options opt;
    opt.log_dir = log_dir;
    opt.log_partitions = 2;
    Store store(opt);
    Store::Session s(store, 0);
    for (int i = 0; i < 1000; ++i) {
      store.put("ck" + std::to_string(i), {{0, "before" + std::to_string(i)}}, s);
    }
    ASSERT_TRUE(store.checkpoint(ckpt_dir, 3));
    // Post-checkpoint traffic lands only in the logs.
    for (int i = 0; i < 200; ++i) {
      store.put("ck" + std::to_string(i), {{0, "after" + std::to_string(i)}}, s);
    }
    for (int i = 500; i < 520; ++i) {
      store.remove("ck" + std::to_string(i), s);
    }
    store.sync_logs();
  }

  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 2;
  Store recovered(opt);
  auto res = recovered.recover(ckpt_dir, log_dir, 2);
  EXPECT_TRUE(res.used_checkpoint);
  EXPECT_EQ(res.checkpoint_records, 1000u);

  Store::Session s(recovered, 0);
  std::vector<std::string> out;
  for (int i = 0; i < 1000; ++i) {
    std::string k = "ck" + std::to_string(i);
    bool removed = i >= 500 && i < 520;
    ASSERT_EQ(recovered.get(k, {}, &out, s), !removed) << k;
    if (!removed) {
      std::string want =
          i < 200 ? "after" + std::to_string(i) : "before" + std::to_string(i);
      EXPECT_EQ(out[0], want) << k;
    }
  }
}

TEST(Store, LogTruncationAfterCheckpoint) {
  // §5: checkpoints allow log space to be reclaimed. After checkpoint +
  // truncate, recovery = checkpoint state + only the new log records.
  std::string log_dir = FreshDir("store_trunc_logs");
  std::string ckpt_dir = FreshDir("store_trunc_ckpt");
  {
    Store::Options opt;
    opt.log_dir = log_dir;
    opt.log_partitions = 2;
    Store store(opt);
    Store::Session s(store, 0);
    for (int i = 0; i < 300; ++i) {
      store.put("t" + std::to_string(i), {{0, "old" + std::to_string(i)}}, s);
    }
    store.sync_logs();
    ASSERT_TRUE(store.checkpoint(ckpt_dir, 2));
    store.truncate_logs();
    uint64_t bytes = 0;
    for (const auto& p : list_log_files(log_dir)) {
      bytes += std::filesystem::file_size(p);
    }
    EXPECT_EQ(bytes, 0u);
    for (int i = 0; i < 50; ++i) {
      store.put("t" + std::to_string(i), {{0, "new" + std::to_string(i)}}, s);
    }
    store.sync_logs();
  }
  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 2;
  Store recovered(opt);
  auto res = recovered.recover(ckpt_dir, log_dir, 2);
  EXPECT_TRUE(res.used_checkpoint);
  Store::Session s(recovered, 0);
  std::vector<std::string> out;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(recovered.get("t" + std::to_string(i), {}, &out, s)) << i;
    EXPECT_EQ(out[0], (i < 50 ? "new" : "old") + std::to_string(i)) << i;
  }
}

TEST(Store, IncompleteCheckpointIgnored) {
  std::string ckpt_dir = FreshDir("store_ckpt_incomplete");
  // Parts exist but no MANIFEST: recovery must not use them.
  std::ofstream(checkpoint_part_path(ckpt_dir, 0), std::ios::binary) << "garbage";
  Store store;
  auto res = store.recover(ckpt_dir, "", 1);
  EXPECT_FALSE(res.used_checkpoint);
}

TEST(Store, CheckpointConcurrentWithWrites) {
  // §5: "Checkpoints run in parallel with request processing."
  std::string ckpt_dir = FreshDir("store_ckpt_concurrent");
  Store store;
  Store::Session setup(store, 0);
  for (int i = 0; i < 5000; ++i) {
    store.put("base" + std::to_string(i), {{0, "v"}}, setup);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Store::Session s(store, 1);
    for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
      store.put("hot" + std::to_string(i % 1000), {{0, std::to_string(i)}}, s);
    }
  });
  ASSERT_TRUE(store.checkpoint(ckpt_dir, 2));
  stop = true;
  writer.join();
  // The checkpoint must contain at least every base key.
  uint64_t total = 0;
  for (unsigned p = 0; p < 2; ++p) {
    total += read_checkpoint_part(checkpoint_part_path(ckpt_dir, p)).size();
  }
  EXPECT_GE(total, 5000u);
}

TEST(Store, BackgroundMaintenanceDrainsLayerGC) {
  // With the maintenance thread on (the default), deferred empty-layer
  // cleanups drain without any foreground thread ever running them.
  Store store;
  Store::Session s(store, 0);
  // Keys sharing a long prefix force trie layers (§4.6.3); removing them
  // queues empty-layer GC tasks.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 64; ++i) {
      store.put("prefix-8bytes-layer" + std::to_string(round) + "-deep-" +
                    std::to_string(i),
                {{0, "v"}}, s);
    }
    for (int i = 0; i < 64; ++i) {
      store.remove("prefix-8bytes-layer" + std::to_string(round) + "-deep-" +
                       std::to_string(i),
                   s);
    }
  }
  for (int tries = 0; tries < 500 && store.tree().pending_maintenance() != 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(store.tree().pending_maintenance(), 0u);
}

TEST(Store, SessionChurnReusesLogShards) {
  std::string dir = FreshDir("store_churn_logs");
  Store::Options opt;
  opt.log_dir = dir;
  opt.log_partitions = 2;
  Store store(opt);
  for (int i = 0; i < 30; ++i) {
    {
      Store::Session s(store, 0);
      store.put("churn" + std::to_string(i), {{0, "v"}}, s);
      EXPECT_EQ(s.ti().counters().get(Counter::kLogAppends), 1u);
    }
    // A full round parks the released shard, so the next session reuses its
    // file instead of minting log-<n+1>.bin.
    store.sync_logs();
  }
  size_t files = list_log_files(dir).size();
  EXPECT_LE(files, 2u) << "session churn must reuse parked shards";
  EXPECT_EQ(store.log_error(), 0);
  EXPECT_GT(store.log_totals().flush_bytes, 0u);
  // Every one of those 30 sessions' records recovers.
  Store recovered;
  auto res = recovered.recover("", dir, 2);
  EXPECT_EQ(res.log_entries_applied, 30u);
}

}  // namespace
}  // namespace masstree
