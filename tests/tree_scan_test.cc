// Range-query (getrange/scan, §3) tests, including multi-layer traversal and
// oracle comparisons against std::map.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/tree.h"
#include "util/rand.h"

namespace masstree {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  ScanTest() : tree_(ti_) {}

  void Put(const std::string& k, uint64_t v) {
    uint64_t old;
    tree_.insert(k, v, &old, ti_);
    oracle_[k] = v;
  }
  void Remove(const std::string& k) {
    uint64_t old;
    tree_.remove(k, &old, ti_);
    oracle_.erase(k);
  }

  std::vector<std::pair<std::string, uint64_t>> Scan(const std::string& first, size_t limit) {
    std::vector<std::pair<std::string, uint64_t>> out;
    tree_.scan(
        first, limit,
        [&](std::string_view k, uint64_t v) {
          out.emplace_back(std::string(k), v);
          return true;
        },
        ti_);
    return out;
  }

  std::vector<std::pair<std::string, uint64_t>> OracleScan(const std::string& first,
                                                           size_t limit) {
    std::vector<std::pair<std::string, uint64_t>> out;
    for (auto it = oracle_.lower_bound(first); it != oracle_.end() && out.size() < limit; ++it) {
      out.emplace_back(it->first, it->second);
    }
    return out;
  }

  void ExpectScanMatchesOracle(const std::string& first, size_t limit) {
    auto got = Scan(first, limit);
    auto want = OracleScan(first, limit);
    ASSERT_EQ(got.size(), want.size()) << "first=" << first;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << "i=" << i;
      EXPECT_EQ(got[i].second, want[i].second) << "i=" << i;
    }
  }

  ThreadContext ti_;
  Tree tree_;
  std::map<std::string, uint64_t> oracle_;
};

TEST_F(ScanTest, EmptyTree) { EXPECT_TRUE(Scan("", 10).empty()); }

TEST_F(ScanTest, SortedOrderSingleNode) {
  Put("banana", 2);
  Put("apple", 1);
  Put("cherry", 3);
  auto got = Scan("", 10);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, "apple");
  EXPECT_EQ(got[1].first, "banana");
  EXPECT_EQ(got[2].first, "cherry");
}

TEST_F(ScanTest, InclusiveStart) {
  Put("a", 1);
  Put("b", 2);
  Put("c", 3);
  auto got = Scan("b", 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, "b");  // §3: "starting with the next key at or after k"
}

TEST_F(ScanTest, StartBetweenKeys) {
  Put("aa", 1);
  Put("cc", 3);
  auto got = Scan("bb", 10);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, "cc");
}

TEST_F(ScanTest, LimitRespected) {
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    snprintf(buf, sizeof(buf), "%03d", i);
    Put(buf, i);
  }
  EXPECT_EQ(Scan("", 17).size(), 17u);
  ExpectScanMatchesOracle("", 17);
  ExpectScanMatchesOracle("050", 25);
}

TEST_F(ScanTest, CallbackCanStopEarly) {
  for (int i = 0; i < 50; ++i) {
    Put("k" + std::to_string(100 + i), i);
  }
  int seen = 0;
  tree_.scan(
      "", 1000,
      [&](std::string_view, uint64_t) {
        ++seen;
        return seen < 5;
      },
      ti_);
  EXPECT_EQ(seen, 5);
}

TEST_F(ScanTest, AcrossManyNodes) {
  for (int i = 0; i < 3000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%07d", i * 3);
    Put(buf, i);
  }
  ExpectScanMatchesOracle("", 3000);
  ExpectScanMatchesOracle("0004500", 100);
  ExpectScanMatchesOracle("0004501", 100);  // non-existent start
  ExpectScanMatchesOracle("0008999", 10);
  ExpectScanMatchesOracle("9999999", 10);  // past the end
}

TEST_F(ScanTest, AcrossLayers) {
  // Keys sharing long prefixes live in deep layers; scans must stitch the
  // prefix back together and keep global order.
  Put("0123456789AB", 1);
  Put("0123456789CD", 2);
  Put("01234567", 3);
  Put("0123", 4);
  Put("01234567AAAAAAAAZZ", 5);
  Put("1", 6);
  ExpectScanMatchesOracle("", 100);
  ExpectScanMatchesOracle("01234567", 100);
  ExpectScanMatchesOracle("0123456789B", 100);
  ExpectScanMatchesOracle("01234567AAAAAAAA", 100);
}

TEST_F(ScanTest, DeepLayersWithSharedPrefix) {
  std::string prefix(32, 'q');
  for (int i = 0; i < 300; ++i) {
    char buf[8];
    snprintf(buf, sizeof(buf), "%04d", i);
    Put(prefix + buf, i);
  }
  ExpectScanMatchesOracle("", 1000);
  ExpectScanMatchesOracle(prefix + "0150", 20);
  ExpectScanMatchesOracle(prefix, 20);
  // Start strictly inside the prefix region.
  ExpectScanMatchesOracle(prefix.substr(0, 10), 20);
}

TEST_F(ScanTest, BinaryKeys) {
  Put(std::string("\x00", 1), 1);
  Put(std::string("\x00\x00", 2), 2);
  Put(std::string("\x00\xff", 2), 3);
  Put(std::string("\xff", 1), 4);
  Put("", 5);
  ExpectScanMatchesOracle("", 10);
  ExpectScanMatchesOracle(std::string("\x00", 1), 10);
  ExpectScanMatchesOracle(std::string("\x00\x01", 2), 10);
}

TEST_F(ScanTest, AfterRemovals) {
  for (int i = 0; i < 500; ++i) {
    Put("key" + std::to_string(1000 + i), i);
  }
  for (int i = 0; i < 500; i += 3) {
    Remove("key" + std::to_string(1000 + i));
  }
  ExpectScanMatchesOracle("", 1000);
  ExpectScanMatchesOracle("key1250", 50);
}

TEST_F(ScanTest, RandomizedOracle) {
  Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 400; ++i) {
      std::string k = std::to_string(rng.next_range(1u << 31));
      if (rng.next_range(100) < 15 && !oracle_.empty()) {
        auto it = oracle_.lower_bound(k);
        if (it == oracle_.end()) {
          it = oracle_.begin();
        }
        Remove(it->first);
      } else {
        Put(k, rng.next());
      }
    }
    ExpectScanMatchesOracle("", 10000);
    ExpectScanMatchesOracle(std::to_string(rng.next_range(1u << 31)), 37);
  }
}

TEST_F(ScanTest, GetrangeSemantics) {
  // getrange(k, n): up to n pairs from the next key at or after k (§3).
  for (int i = 0; i < 10; ++i) {
    Put("row" + std::to_string(i), i);
  }
  auto got = Scan("row3", 4);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].first, "row3");
  EXPECT_EQ(got[3].first, "row6");
}

}  // namespace
}  // namespace masstree
