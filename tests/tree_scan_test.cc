// Range-query (getrange/scan, §3) tests: multi-layer traversal, oracle
// comparisons against std::map for scan / scan_batch / scan_legacy and the
// raw ScanCursor (including detach/re-attach resume), the allocation-free
// steady-state guarantee, and scans racing splits + empty-layer GC.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "core/tree.h"
#include "support/test_support.h"
#include "util/rand.h"

namespace masstree {
namespace {

using test_support::ChurnDriver;

// How each oracle comparison drives the tree.
enum class Mode {
  kScan,        // Tree::scan — thin loop over ScanCursor
  kScanBatch,   // Tree::scan_batch — cursor + next-border prefetch
  kScanLegacy,  // pre-cursor baseline kept for the sec3_scan ablation
  kCursorDetach,  // raw cursor, detach()/re-attach between every batch
};

class ScanTest : public ::testing::Test {
 protected:
  ScanTest() : tree_(ti_) {}

  void Put(const std::string& k, uint64_t v) {
    uint64_t old;
    tree_.insert(k, v, &old, ti_);
    oracle_[k] = v;
  }
  void Remove(const std::string& k) {
    uint64_t old;
    tree_.remove(k, &old, ti_);
    oracle_.erase(k);
  }

  std::vector<std::pair<std::string, uint64_t>> Scan(const std::string& first, size_t limit,
                                                     Mode mode = Mode::kScan) {
    std::vector<std::pair<std::string, uint64_t>> out;
    auto emit = [&](std::string_view k, uint64_t v) {
      out.emplace_back(std::string(k), v);
      return true;
    };
    switch (mode) {
      case Mode::kScan:
        tree_.scan(first, limit, emit, ti_);
        break;
      case Mode::kScanBatch:
        tree_.scan_batch(first, limit, emit, ti_);
        break;
      case Mode::kScanLegacy:
        tree_.scan_legacy(first, limit, emit, ti_);
        break;
      case Mode::kCursorDetach: {
        // Chunked drive: one epoch guard per batch with a detach in between,
        // the way Store::getrange pages an arbitrarily long range.
        auto cur = tree_.scan_cursor(first);
        while (out.size() < limit) {
          EpochGuard guard(ti_.slot());
          size_t n = cur.next_batch(&ti_.counters());
          if (n == 0) {
            break;
          }
          cur.prefetch_pending();
          for (size_t i = 0; i < n && out.size() < limit; ++i) {
            out.emplace_back(std::string(cur.key(i)), cur.value(i));
          }
          cur.detach();
        }
        break;
      }
    }
    return out;
  }

  std::vector<std::pair<std::string, uint64_t>> OracleScan(const std::string& first,
                                                           size_t limit) {
    std::vector<std::pair<std::string, uint64_t>> out;
    for (auto it = oracle_.lower_bound(first); it != oracle_.end() && out.size() < limit; ++it) {
      out.emplace_back(it->first, it->second);
    }
    return out;
  }

  void ExpectScanMatchesOracle(const std::string& first, size_t limit) {
    for (Mode mode : {Mode::kScan, Mode::kScanBatch, Mode::kScanLegacy, Mode::kCursorDetach}) {
      auto got = Scan(first, limit, mode);
      auto want = OracleScan(first, limit);
      ASSERT_EQ(got.size(), want.size())
          << "first=" << first << " mode=" << static_cast<int>(mode);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first) << "i=" << i << " mode=" << static_cast<int>(mode);
        EXPECT_EQ(got[i].second, want[i].second)
            << "i=" << i << " mode=" << static_cast<int>(mode);
      }
    }
  }

  ThreadContext ti_;
  Tree tree_;
  std::map<std::string, uint64_t> oracle_;
};

TEST_F(ScanTest, EmptyTree) { EXPECT_TRUE(Scan("", 10).empty()); }

TEST_F(ScanTest, SortedOrderSingleNode) {
  Put("banana", 2);
  Put("apple", 1);
  Put("cherry", 3);
  auto got = Scan("", 10);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, "apple");
  EXPECT_EQ(got[1].first, "banana");
  EXPECT_EQ(got[2].first, "cherry");
}

TEST_F(ScanTest, InclusiveStart) {
  Put("a", 1);
  Put("b", 2);
  Put("c", 3);
  auto got = Scan("b", 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, "b");  // §3: "starting with the next key at or after k"
}

TEST_F(ScanTest, StartBetweenKeys) {
  Put("aa", 1);
  Put("cc", 3);
  auto got = Scan("bb", 10);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, "cc");
}

TEST_F(ScanTest, LimitRespected) {
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    snprintf(buf, sizeof(buf), "%03d", i);
    Put(buf, i);
  }
  EXPECT_EQ(Scan("", 17).size(), 17u);
  ExpectScanMatchesOracle("", 17);
  ExpectScanMatchesOracle("050", 25);
}

TEST_F(ScanTest, CallbackCanStopEarly) {
  for (int i = 0; i < 50; ++i) {
    Put("k" + std::to_string(100 + i), i);
  }
  int seen = 0;
  tree_.scan(
      "", 1000,
      [&](std::string_view, uint64_t) {
        ++seen;
        return seen < 5;
      },
      ti_);
  EXPECT_EQ(seen, 5);
}

TEST_F(ScanTest, AcrossManyNodes) {
  for (int i = 0; i < 3000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%07d", i * 3);
    Put(buf, i);
  }
  ExpectScanMatchesOracle("", 3000);
  ExpectScanMatchesOracle("0004500", 100);
  ExpectScanMatchesOracle("0004501", 100);  // non-existent start
  ExpectScanMatchesOracle("0008999", 10);
  ExpectScanMatchesOracle("9999999", 10);  // past the end
}

TEST_F(ScanTest, AcrossLayers) {
  // Keys sharing long prefixes live in deep layers; scans must stitch the
  // prefix back together and keep global order.
  Put("0123456789AB", 1);
  Put("0123456789CD", 2);
  Put("01234567", 3);
  Put("0123", 4);
  Put("01234567AAAAAAAAZZ", 5);
  Put("1", 6);
  ExpectScanMatchesOracle("", 100);
  ExpectScanMatchesOracle("01234567", 100);
  ExpectScanMatchesOracle("0123456789B", 100);
  ExpectScanMatchesOracle("01234567AAAAAAAA", 100);
}

TEST_F(ScanTest, DeepLayersWithSharedPrefix) {
  std::string prefix(32, 'q');
  for (int i = 0; i < 300; ++i) {
    char buf[8];
    snprintf(buf, sizeof(buf), "%04d", i);
    Put(prefix + buf, i);
  }
  ExpectScanMatchesOracle("", 1000);
  ExpectScanMatchesOracle(prefix + "0150", 20);
  ExpectScanMatchesOracle(prefix, 20);
  // Start strictly inside the prefix region.
  ExpectScanMatchesOracle(prefix.substr(0, 10), 20);
}

TEST_F(ScanTest, BinaryKeys) {
  Put(std::string("\x00", 1), 1);
  Put(std::string("\x00\x00", 2), 2);
  Put(std::string("\x00\xff", 2), 3);
  Put(std::string("\xff", 1), 4);
  Put("", 5);
  ExpectScanMatchesOracle("", 10);
  ExpectScanMatchesOracle(std::string("\x00", 1), 10);
  ExpectScanMatchesOracle(std::string("\x00\x01", 2), 10);
}

TEST_F(ScanTest, AfterRemovals) {
  for (int i = 0; i < 500; ++i) {
    Put("key" + std::to_string(1000 + i), i);
  }
  for (int i = 0; i < 500; i += 3) {
    Remove("key" + std::to_string(1000 + i));
  }
  ExpectScanMatchesOracle("", 1000);
  ExpectScanMatchesOracle("key1250", 50);
}

TEST_F(ScanTest, RandomizedOracle) {
  Rng rng(99);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 400; ++i) {
      std::string k = std::to_string(rng.next_range(1u << 31));
      if (rng.next_range(100) < 15 && !oracle_.empty()) {
        auto it = oracle_.lower_bound(k);
        if (it == oracle_.end()) {
          it = oracle_.begin();
        }
        Remove(it->first);
      } else {
        Put(k, rng.next());
      }
    }
    ExpectScanMatchesOracle("", 10000);
    ExpectScanMatchesOracle(std::to_string(rng.next_range(1u << 31)), 37);
  }
}

TEST_F(ScanTest, GetrangeSemantics) {
  // getrange(k, n): up to n pairs from the next key at or after k (§3).
  for (int i = 0; i < 10; ++i) {
    Put("row" + std::to_string(i), i);
  }
  auto got = Scan("row3", 4);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].first, "row3");
  EXPECT_EQ(got[3].first, "row6");
}

TEST_F(ScanTest, ResumeAtEveryBoundary) {
  // Start the scan at EVERY existing key (and just past it): exact-border
  // start keys — including each node's first key after splits — must resume
  // inclusively, and key+'\0' exclusively, in every mode.
  for (int i = 0; i < 700; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%06d", i * 7);
    Put(buf, i);
  }
  int step = 0;
  for (const auto& [k, v] : oracle_) {
    if (step++ % 13 != 0) {  // every 13th key keeps the test fast
      continue;
    }
    ExpectScanMatchesOracle(k, 5);
    ExpectScanMatchesOracle(k + '\0', 5);
  }
}

TEST_F(ScanTest, ResumeSpanningLayerPop) {
  // A deep shared-prefix region (layer-h trees) followed by keys after it:
  // scans that start inside the layers and run past their end exercise the
  // layer-pop resume, and the detach mode re-descends through the full layer
  // stack from a key-valued resume point.
  std::string prefix(24, 'm');
  for (int i = 0; i < 120; ++i) {
    char buf[8];
    snprintf(buf, sizeof(buf), "%03d", i);
    Put(prefix + buf, i);
  }
  Put("mzzz", 9001);  // after the whole prefix region
  Put("n", 9002);
  Put(prefix.substr(0, 9), 9000);  // inside the region, shallower layer
  ExpectScanMatchesOracle(prefix + "100", 100);  // spans the pop out of the layers
  ExpectScanMatchesOracle(prefix.substr(0, 12), 200);
  ExpectScanMatchesOracle(prefix, 200);
}

TEST_F(ScanTest, CursorSteadyStateAllocationFree) {
  // The perf claim, enforced: after warm-up, the chain walk over uniformly
  // shaped keys performs zero buffer growth per node visit.
  uint64_t old;
  for (int i = 0; i < 20000; ++i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%016d", i);  // 2 slices: suffix bags in play
    tree_.insert(buf, i, &old, ti_);
  }
  auto cur = tree_.scan_cursor("");
  EpochGuard guard(ti_.slot());
  uint64_t nodes0 = ti_.counters().get(Counter::kScanNodes);
  int batches = 0;
  uint32_t warm_allocs = 0;
  uint64_t pairs = 0;
  for (;;) {
    size_t n = cur.next_batch(&ti_.counters());
    if (n == 0) {
      break;
    }
    for (size_t i = 0; i < n; ++i) {
      pairs += cur.key(i).size() != 0;
    }
    if (++batches == 20) {
      warm_allocs = cur.alloc_events();
    }
  }
  uint64_t nodes = ti_.counters().get(Counter::kScanNodes) - nodes0;
  EXPECT_EQ(pairs, 20000u);
  ASSERT_GT(batches, 100);  // the walk really was long
  ASSERT_GT(nodes, 100u);
  EXPECT_EQ(cur.alloc_events(), warm_allocs)
      << "chain walk allocated after warm-up (" << nodes << " node visits)";
}

TEST_F(ScanTest, ScanCountersAdvance) {
  for (int i = 0; i < 3000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "c%06d", i);  // 7 bytes: one flat layer
    Put(buf, i);
  }
  uint64_t nodes0 = ti_.counters().get(Counter::kScanNodes);
  uint64_t redesc0 = ti_.counters().get(Counter::kScanRedescents);
  ASSERT_EQ(Scan("", 100000).size(), oracle_.size());
  uint64_t nodes_full = ti_.counters().get(Counter::kScanNodes) - nodes0;
  uint64_t redesc_full = ti_.counters().get(Counter::kScanRedescents) - redesc0;
  EXPECT_GE(nodes_full, oracle_.size() / Tree::Border::kWidth);
  // One flat layer, chain-walked: exactly the initial locate, no re-descents.
  EXPECT_EQ(redesc_full, 1u);

  // The detach-per-batch drive re-descends once per batch by design.
  redesc0 = ti_.counters().get(Counter::kScanRedescents);
  ASSERT_EQ(Scan("", 100000, Mode::kCursorDetach).size(), oracle_.size());
  EXPECT_GT(ti_.counters().get(Counter::kScanRedescents) - redesc0, nodes_full / 2);
}

TEST_F(ScanTest, ScanUnderChurn) {
  // Readers scan while the writer splits nodes, creates layers, empties them
  // again, and runs the deferred empty-layer GC. Non-atomic scans may miss
  // concurrent churn keys, but they must stay sorted and never miss a stable
  // key that existed for the whole test.
  constexpr int kStable = 400;
  for (int i = 0; i < kStable; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%05d", i * 2);
    Put(buf, i);
  }
  const std::map<std::string, uint64_t> stable = oracle_;

  ChurnDriver churn;
  churn.spawn(2, [&](ThreadContext& ti, Rng& rng) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%05d", static_cast<int>(rng.next_range(2 * kStable)));
    std::string first(buf);
    std::vector<std::pair<std::string, uint64_t>> got;
    tree_.scan_batch(
        first, 50,
        [&](std::string_view k, uint64_t v) {
          got.emplace_back(std::string(k), v);
          return true;
        },
        ti);
    // Sorted, strictly increasing.
    for (size_t i = 1; i < got.size(); ++i) {
      if (got[i - 1].first >= got[i].first) {
        return false;
      }
    }
    if (!got.empty() && got.front().first < first) {
      return false;
    }
    // Every stable key in [first, end-of-scan] must be present with its
    // value: a limit-filled scan bounds the check at its last pair, an
    // exhausted scan covers the whole tail.
    size_t gi = 0;
    for (auto it = stable.lower_bound(first); it != stable.end(); ++it) {
      if (got.size() == 50 && it->first > got.back().first) {
        break;  // beyond what this scan could see
      }
      while (gi < got.size() && got[gi].first < it->first) {
        ++gi;
      }
      if (gi == got.size() || got[gi].first != it->first || got[gi].second != it->second) {
        return false;  // stable key missing or corrupted
      }
    }
    return true;
  });

  // Writer: churn keys between the stable ones, with long shared prefixes so
  // layers are created (§4.6.3), emptied, and GC'd (§4.6.5) under the scans.
  // Runs for a minimum wall time so the readers get real overlap.
  Rng rng(4242);
  uint64_t old;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  for (int round = 0; round < 1000 || std::chrono::steady_clock::now() < deadline; ++round) {
    int slot = static_cast<int>(rng.next_range(kStable)) * 2 + 1;
    char buf[16];
    snprintf(buf, sizeof(buf), "k%05d", slot);
    std::string p = std::string(buf) + std::string(16, 'q');
    tree_.insert(p + "aaaa", round, &old, ti_);
    tree_.insert(p + "bbbb", round, &old, ti_);
    tree_.remove(p + "aaaa", &old, ti_);
    tree_.remove(p + "bbbb", &old, ti_);
    if ((round & 15) == 0) {
      tree_.run_maintenance(ti_);
      ti_.reclaim();
    }
  }
  tree_.run_maintenance(ti_);
  EXPECT_EQ(churn.stop_and_join(), 0);
  ExpectScanMatchesOracle("", 100000);
  EXPECT_TRUE(test_support::rep_ok(tree_));
}

}  // namespace
}  // namespace masstree
