// Workload generator tests (§6.1, §7): key distributions and MYCSB mixes.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "util/rand.h"
#include "workload/keys.h"
#include "workload/ycsb.h"

namespace masstree {
namespace {

TEST(Keys, DecimalDistribution) {
  // "1-to-10-byte decimal ... 80% of the keys are 9 or 10 bytes long" (§6.1).
  int long_keys = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    std::string k = decimal_key(i);
    ASSERT_GE(k.size(), 1u);
    ASSERT_LE(k.size(), 10u);
    for (char c : k) {
      ASSERT_TRUE(c >= '0' && c <= '9');
    }
    if (k.size() >= 9) {
      ++long_keys;
    }
  }
  // Uniform over [0, 2^31) puts ~95% of values at 9-10 digits (the paper
  // rounds this to "80%"); the load-bearing property is that most keys are
  // long enough to exercise layer-1 trees.
  double frac = static_cast<double>(long_keys) / kN;
  EXPECT_GT(frac, 0.75);
}

TEST(Keys, Decimal8Fixed) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(decimal8_key(i).size(), 8u);
  }
}

TEST(Keys, Alpha8) {
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    std::string k = alpha8_key(i);
    ASSERT_EQ(k.size(), 8u);
    for (char c : k) {
      ASSERT_TRUE(c >= 'a' && c <= 'z');
    }
    seen.insert(k);
  }
  EXPECT_GT(seen.size(), 9900u);  // collisions rare
}

TEST(Keys, PrefixKeysShareAllButLast8) {
  std::string a = prefix_key(1, 40), b = prefix_key(2, 40);
  ASSERT_EQ(a.size(), 40u);
  EXPECT_EQ(a.substr(0, 32), b.substr(0, 32));
  EXPECT_NE(a.substr(32), b.substr(32));
  EXPECT_EQ(prefix_key(1, 8).size(), 8u);
}

TEST(Keys, MycsbLengthRange) {
  for (int i = 0; i < 10000; ++i) {
    std::string k = mycsb_key(i);
    ASSERT_GE(k.size(), 5u);
    ASSERT_LE(k.size(), 24u);
  }
}

TEST(Keys, Deterministic) {
  EXPECT_EQ(decimal_key(42), decimal_key(42));
  EXPECT_NE(decimal_key(42), decimal_key(43));
}

TEST(Zipfian, SkewConcentratesMass) {
  Zipfian z(100000, 0.99, 7);
  std::map<uint64_t, int> counts;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    counts[z.next()]++;
  }
  // Rank 0 should dominate; top-10 ranks should hold a large share.
  int top10 = 0;
  for (uint64_t r = 0; r < 10; ++r) {
    top10 += counts[r];
  }
  EXPECT_GT(counts[0], kN / 50);
  EXPECT_GT(top10, kN / 6);
}

TEST(Zipfian, ScrambledSpreadsHotKeys) {
  Zipfian z(100000, 0.99, 7);
  std::set<uint64_t> hot;
  for (int i = 0; i < 1000; ++i) {
    hot.insert(z.next_scrambled());
  }
  // Scrambling must not leave all hot keys adjacent.
  uint64_t min = *hot.begin(), max = *hot.rbegin();
  EXPECT_GT(max - min, 10000u);
}

TEST(PartitionSkew, DeltaZeroUniform) {
  PartitionSkew ps(16, 0.0, 3);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 160000; ++i) {
    counts[ps.next_partition()]++;
  }
  for (int p = 0; p < 16; ++p) {
    EXPECT_GT(counts[p], 160000 / 16 * 0.8);
    EXPECT_LT(counts[p], 160000 / 16 * 1.2);
  }
}

TEST(PartitionSkew, DeltaNineMatchesPaper) {
  // "at delta = 9, one partition handles 40% of the requests and each other
  // partition handles 4%" (§6.6).
  PartitionSkew ps(16, 9.0, 3);
  EXPECT_NEAR(ps.hot_share(), 0.40, 1e-9);
  std::vector<int> counts(16, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    counts[ps.next_partition()]++;
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.40, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[5]) / kN, 0.04, 0.01);
}

TEST(Mycsb, MixRatios) {
  MycsbConfig cfg;
  cfg.nkeys = 10000;
  for (char wl : {'A', 'B', 'C', 'E'}) {
    cfg.workload = wl;
    MycsbGenerator gen(cfg, 9);
    int gets = 0, puts = 0, scans = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
      MycsbOp op = gen.next();
      switch (op.type) {
        case MycsbOpType::kGet: ++gets; break;
        case MycsbOpType::kPut: ++puts; break;
        case MycsbOpType::kScan: ++scans; break;
      }
      ASSERT_LT(op.key_index, cfg.nkeys);
      ASSERT_LT(op.col, cfg.ncols);
      ASSERT_GE(op.scan_len, 1u);
      ASSERT_LE(op.scan_len, 100u);
    }
    double g = static_cast<double>(gets) / kN, p = static_cast<double>(puts) / kN,
           s = static_cast<double>(scans) / kN;
    switch (wl) {
      case 'A': EXPECT_NEAR(g, 0.50, 0.02); EXPECT_NEAR(p, 0.50, 0.02); break;
      case 'B': EXPECT_NEAR(g, 0.95, 0.02); EXPECT_NEAR(p, 0.05, 0.02); break;
      case 'C': EXPECT_EQ(gets, kN); break;
      case 'E': EXPECT_NEAR(s, 0.95, 0.02); EXPECT_NEAR(p, 0.05, 0.02); break;
    }
  }
}

TEST(Mycsb, ColumnValuesAreFourBytes) {
  MycsbConfig cfg;
  MycsbGenerator gen(cfg, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.column_value(i, i % 10, 0).size(), 4u);
  }
}

}  // namespace
}  // namespace masstree
