// Comparison-system model tests (§7): functional correctness of each model
// and the architectural properties the Figure 13 shape depends on.

#include "sysmodels/models.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace masstree {
namespace {

template <typename M, typename O>
void BasicPutGet(O opts) {
  M model(opts);
  std::string row(40, 'x');
  EXPECT_TRUE(model.put("key1", ~0u, row));
  std::string out;
  ASSERT_TRUE(model.get("key1", &out));
  EXPECT_EQ(out.substr(0, 40), row);
  EXPECT_FALSE(model.get("nokey", &out));
  EXPECT_FALSE(model.put("key1", ~0u, row));  // update
}

TEST(Memcached, PutGet) { BasicPutGet<MemcachedModel>(MemcachedModel::Options{}); }
TEST(Redis, PutGet) { BasicPutGet<RedisModel>(RedisModel::Options{}); }
TEST(VoltDB, PutGet) {
  VoltDBModel::Options o;
  o.procedure_ns = 0;  // keep the test fast
  BasicPutGet<VoltDBModel>(o);
}
TEST(MongoDB, PutGet) {
  MongoDBModel::Options o;
  o.bson_ns = 0;
  BasicPutGet<MongoDBModel>(o);
}

TEST(Memcached, Capabilities) {
  MemcachedModel m{MemcachedModel::Options{}};
  EXPECT_TRUE(m.batched_get());
  EXPECT_FALSE(m.batched_put());   // Figure 12: no batched puts
  EXPECT_FALSE(m.supports_scan()); // hash table: no ranges
  EXPECT_FALSE(m.supports_column_put());
}

TEST(Redis, ColumnByteRanges) {
  RedisModel::Options o;
  o.command_dispatch_ns = 0;
  RedisModel m(o);
  std::string full(40, '\0');
  m.put("k", ~0u, full);
  m.put("k", 2, "ABCD");  // SETRANGE bytes 8..12
  std::string out;
  ASSERT_TRUE(m.get("k", &out));
  EXPECT_EQ(out.substr(8, 4), "ABCD");
  EXPECT_EQ(out[0], '\0');
}

TEST(VoltDB, RangeQueryScatterGather) {
  VoltDBModel::Options o;
  o.procedure_ns = 0;
  VoltDBModel m(o);
  for (int i = 0; i < 50; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "r%03d", i);
    m.put(buf, 0, "cccc");
  }
  std::string sink;
  size_t n = m.scan("r010", 10, 0, &sink);
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(sink.size(), 40u);  // 10 x 4-byte columns
}

TEST(MongoDB, DocumentRoundTrip) {
  MongoDBModel::Options o;
  o.bson_ns = 0;
  MongoDBModel m(o);
  std::string row;
  for (unsigned c = 0; c < 10; ++c) {
    row += "c" + std::to_string(c) + "__";
    row.resize((c + 1) * 4, '_');
  }
  m.put("doc1", ~0u, row);
  m.put("doc1", 3, "ZZZZ");
  std::string out;
  ASSERT_TRUE(m.get("doc1", &out));
  EXPECT_EQ(out.substr(12, 4), "ZZZZ");
  EXPECT_EQ(out.substr(0, 4), row.substr(0, 4));
}

TEST(MongoDB, GlobalWriteLockSerializesWriters) {
  // Writers to DIFFERENT keys in one instance must serialize; readers share.
  // The comparison needs two threads actually running in parallel: on a
  // single-core machine readers serialize too and the ratio is noise.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads to observe reader overlap";
  }
  MongoDBModel::Options o;
  o.instances = 1;
  o.bson_ns = 20000;  // 20us per op, so overlap would be visible
  MongoDBModel m(o);
  m.put("a", ~0u, std::string(40, 'x'));
  m.put("b", ~0u, std::string(40, 'y'));

  constexpr int kOps = 50;
  auto timed = [&](bool writes) {
    std::atomic<bool> go{false};
    uint64_t t0, t1;
    std::vector<std::thread> ts;
    for (int w = 0; w < 2; ++w) {
      ts.emplace_back([&, w] {
        while (!go.load()) {
        }
        std::string out;
        for (int i = 0; i < kOps; ++i) {
          if (writes) {
            m.put(w ? "a" : "b", 0, "QQQQ");
          } else {
            m.get(w ? "a" : "b", &out);
          }
        }
      });
    }
    t0 = now_ns();
    go = true;
    for (auto& t : ts) {
      t.join();
    }
    t1 = now_ns();
    return t1 - t0;
  };
  uint64_t read_time = timed(false);
  uint64_t write_time = timed(true);
  // Exclusive writers should take measurably longer than shared readers.
  // (Threshold is loose: CI machines share cores.)
  EXPECT_GT(static_cast<double>(write_time), 1.2 * static_cast<double>(read_time));
}

TEST(AllModels, ConcurrentMixedTraffic) {
  RedisModel::Options ro;
  ro.command_dispatch_ns = 0;
  MemcachedModel mc{MemcachedModel::Options{}};
  RedisModel rd(ro);
  std::vector<KVModel*> models = {&mc, &rd};
  for (KVModel* m : models) {
    std::vector<std::thread> ts;
    std::atomic<int> errors{0};
    for (int w = 0; w < 4; ++w) {
      ts.emplace_back([&, w] {
        std::string out;
        for (int i = 0; i < 2000; ++i) {
          std::string k = "t" + std::to_string(w) + "-" + std::to_string(i % 100);
          m->put(k, ~0u, std::string(40, static_cast<char>('a' + w)));
          if (m->get(k, &out) && out[0] != static_cast<char>('a' + w)) {
            ++errors;  // another worker's key leaked into ours
          }
        }
      });
    }
    for (auto& t : ts) {
      t.join();
    }
    EXPECT_EQ(errors.load(), 0) << m->name();
  }
}

}  // namespace
}  // namespace masstree
