// Crash-point recovery torture (§5 durability, end to end).
//
// A fault-free run of a logged-put + checkpoint + truncate workload is
// traced through the io:: seam to enumerate its syscall boundaries. The
// workload is then re-run once per cut point with an in-process "power
// cut" armed: from that call on every mutating file syscall silently
// succeeds without touching the frozen file image, page-cache bytes not
// covered by a real fdatasync are rolled back, and (for sampled write
// boundaries) the dying write applies only a torn byte prefix. Recovery
// then runs against the frozen image and is diffed against the oracle:
//
//   * every write acknowledged by a sync_logs() that completed before the
//     cut must survive recovery (acked-durable data is never lost);
//   * unacknowledged writes may vanish, but only back to the acked state —
//     and a key removed in an acked phase must never resurrect;
//   * recovery itself must never crash, whatever the cut point.
//
// Tier-1 runs a strided sweep; MT_TORTURE_FULL=1 (the tier-2 ASan lane)
// sweeps every syscall boundary plus torn mid-write offsets.

#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kvstore/store.h"
#include "util/io.h"

namespace masstree {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// One phase's writes: key -> new value, or nullopt for a remove. Each phase
// ends with a sync_logs() acknowledgement barrier, so "the cut landed after
// phase P's sync" pins every phase <= P as durable.
using PhaseOp = std::pair<std::string, std::optional<std::string>>;
using Phase = std::vector<PhaseOp>;

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%03d", i);
  return buf;
}

std::vector<Phase> MakeWorkload() {
  Phase a, b, c;
  for (int i = 0; i < 20; ++i) {
    a.emplace_back(Key(i), "A" + std::to_string(i));
  }
  for (int i = 20; i < 40; ++i) {
    b.emplace_back(Key(i), "B" + std::to_string(i));
  }
  for (int i = 0; i < 5; ++i) {
    b.emplace_back(Key(i), std::nullopt);  // acked removes must stay gone
  }
  for (int i = 40; i < 60; ++i) {
    c.emplace_back(Key(i), "C" + std::to_string(i));
  }
  for (int i = 10; i < 15; ++i) {
    c.emplace_back(Key(i), "C" + std::to_string(i));  // overwrite acked values
  }
  return {a, b, c};
}

// Per-key state snapshots after each phase: timeline[k][p] is key k's value
// after phases 0..p-1 applied (p = 0 is the empty store).
std::map<std::string, std::vector<std::optional<std::string>>> MakeTimeline(
    const std::vector<Phase>& phases) {
  std::map<std::string, std::optional<std::string>> state;
  for (const auto& ph : phases) {
    for (const auto& [k, v] : ph) {
      state[k];  // ensure every touched key has a row
    }
  }
  std::map<std::string, std::vector<std::optional<std::string>>> timeline;
  for (const auto& [k, v] : state) {
    timeline[k].push_back(std::nullopt);
  }
  for (const auto& ph : phases) {
    for (const auto& [k, v] : ph) {
      state[k] = v;
    }
    for (auto& [k, tl] : timeline) {
      tl.push_back(state[k]);
    }
  }
  return timeline;
}

struct RunResult {
  // Phases whose end-of-phase sync_logs() returned with the cut not yet
  // fired: everything up to and including phase `acked` is durable.
  int acked_phases = 0;
  // checkpoint() + truncate_logs() completed with the cut not yet fired:
  // the manifest rename landed on the frozen image.
  bool ckpt_durable = false;
};

// Drives the workload against a fresh store. `plan` (may be null) is
// already armed by the caller; this only queries cut_fired() to build the
// acked oracle. Writes go through put_checked/remove_checked so a tripped
// store (the EIO tests) cannot throw mid-workload.
RunResult RunWorkload(const std::string& log_dir, const std::string& ckpt_dir,
                      const std::vector<Phase>& phases, io::FaultPlan* plan) {
  auto pre_cut = [&] { return plan == nullptr || !plan->cut_fired(); };
  RunResult rr;
  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 1;
  opt.maintenance_thread = false;
  Store store(opt);
  Store::Session s(store, 0);
  auto run_phase = [&](const Phase& ph) {
    for (const auto& [k, v] : ph) {
      if (v.has_value()) {
        store.put_checked(k, {{0, *v}}, s);
      } else {
        store.remove_checked(k, s);
      }
    }
    store.sync_logs();
  };
  run_phase(phases[0]);
  if (pre_cut()) {
    rr.acked_phases = 1;
  }
  run_phase(phases[1]);
  if (pre_cut()) {
    rr.acked_phases = 2;
  }
  // Checkpoint between the acked phases and the tail, then reclaim the log
  // space it covers — the §5 sequence whose crash window (manifest renamed
  // but logs truncated, or vice versa) the sweep must cross.
  bool ck = store.checkpoint(ckpt_dir, 2);
  if (ck) {
    store.truncate_logs();
  }
  if (ck && pre_cut()) {
    rr.ckpt_durable = true;
  }
  run_phase(phases[2]);
  if (pre_cut()) {
    rr.acked_phases = 3;
  }
  return rr;
}

// Recover from the frozen on-disk image (caller must have disarmed) and
// diff against the oracle: each key's recovered value must be one of its
// timeline states from the last acked phase onward.
void CheckRecovered(const std::string& log_dir, const std::string& ckpt_dir,
                    const std::vector<Phase>& phases, const RunResult& rr,
                    const std::string& label) {
  int floor = rr.acked_phases;
  if (rr.ckpt_durable && floor < 2) {
    floor = 2;  // the checkpoint snapshot covers phases A+B
  }
  Store rec;
  rec.recover(ckpt_dir, log_dir, 2);
  Store::Session s(rec, 0);
  auto timeline = MakeTimeline(phases);
  std::vector<std::string> out;
  for (const auto& [k, tl] : timeline) {
    std::optional<std::string> got;
    if (rec.get(k, {0}, &out, s) && !out.empty()) {
      got = out[0];
    }
    bool allowed = false;
    for (size_t p = static_cast<size_t>(floor); p < tl.size(); ++p) {
      if (tl[p] == got) {
        allowed = true;
        break;
      }
    }
    EXPECT_TRUE(allowed) << label << ": key " << k << " recovered as "
                         << (got ? ("\"" + *got + "\"") : std::string("<absent>"))
                         << " but phases <= " << floor
                         << " were acknowledged durable";
  }
}

bool FullSweep() {
  const char* v = std::getenv("MT_TORTURE_FULL");
  return v != nullptr && v[0] == '1';
}

// Fault-free traced run: enumerates the workload's syscall boundaries and
// proves the oracle holds with no fault at all (acked == everything).
TEST(CrashTorture, TraceRunRecoversEverything) {
  auto phases = MakeWorkload();
  std::string log_dir = FreshDir("torture_trace_logs");
  std::string ckpt_dir = FreshDir("torture_trace_ckpt");
  io::FaultPlan plan;
  plan.trace = true;
  RunResult rr;
  {
    io::Armed armed(&plan);
    rr = RunWorkload(log_dir, ckpt_dir, phases, &plan);
  }
  EXPECT_EQ(rr.acked_phases, 3);
  EXPECT_TRUE(rr.ckpt_durable);
  EXPECT_FALSE(plan.cut_fired());
  // The workload must actually exercise the whole seam: appends, syncs,
  // extent preallocation, checkpoint part writes, and the manifest commit.
  auto trace = plan.trace_log();
  ASSERT_GT(trace.size(), 20u);
  bool saw_pwritev = false, saw_sync = false, saw_rename = false;
  for (const auto& r : trace) {
    saw_pwritev |= std::string_view(r.name) == "pwritev";
    saw_sync |= std::string_view(r.name) == "fdatasync";
    saw_rename |= std::string_view(r.name) == "rename";
  }
  EXPECT_TRUE(saw_pwritev);
  EXPECT_TRUE(saw_sync);
  EXPECT_TRUE(saw_rename);
  CheckRecovered(log_dir, ckpt_dir, phases, rr, "trace");
}

// The sweep: cut at (a stride over / every one of) the traced syscall
// boundaries, recover, diff. drop_unsynced_at_cut makes each cut a real
// power cut — bytes no completed fdatasync covered are rolled back.
TEST(CrashTorture, CutEverySyscallBoundary) {
  auto phases = MakeWorkload();
  uint64_t total;
  {
    std::string log_dir = FreshDir("torture_count_logs");
    std::string ckpt_dir = FreshDir("torture_count_ckpt");
    io::FaultPlan plan;
    io::Armed armed(&plan);
    RunWorkload(log_dir, ckpt_dir, phases, &plan);
    total = plan.calls();
  }
  ASSERT_GT(total, 0u);
  uint64_t stride = FullSweep() ? 1 : std::max<uint64_t>(1, total / 16);
  for (uint64_t cut = 1; cut <= total; cut += stride) {
    std::string tag = "cut@" + std::to_string(cut);
    std::string log_dir = FreshDir("torture_cut_logs");
    std::string ckpt_dir = FreshDir("torture_cut_ckpt");
    io::FaultPlan plan;
    plan.cut_at_call = cut;
    plan.drop_unsynced_at_cut = true;
    RunResult rr;
    {
      io::Armed armed(&plan);
      rr = RunWorkload(log_dir, ckpt_dir, phases, &plan);
    }
    CheckRecovered(log_dir, ckpt_dir, phases, rr, tag);
  }
}

// Torn-write cuts: the dying write lands a byte prefix (1 byte, or half the
// payload) before the freeze, shearing a record mid-frame — recovery must
// stop cleanly at the tear, keeping the acked prefix.
TEST(CrashTorture, TornWriteCuts) {
  auto phases = MakeWorkload();
  std::vector<std::pair<uint64_t, uint64_t>> points;  // (call index, bytes)
  {
    std::string log_dir = FreshDir("torture_torn_trace_logs");
    std::string ckpt_dir = FreshDir("torture_torn_trace_ckpt");
    io::FaultPlan plan;
    plan.trace = true;
    io::Armed armed(&plan);
    RunWorkload(log_dir, ckpt_dir, phases, &plan);
    auto trace = plan.trace_log();
    for (size_t i = 0; i < trace.size(); ++i) {
      const auto& r = trace[i];
      if ((std::string_view(r.name) == "pwritev" ||
           std::string_view(r.name) == "write") &&
          r.bytes > 1) {
        points.emplace_back(i + 1, r.bytes);
      }
    }
  }
  ASSERT_FALSE(points.empty());
  size_t stride = FullSweep() ? 1 : std::max<size_t>(1, points.size() / 6);
  for (size_t i = 0; i < points.size(); i += stride) {
    for (uint64_t torn : {uint64_t{1}, points[i].second / 2}) {
      if (torn == 0) {
        continue;
      }
      std::string tag = "torn@" + std::to_string(points[i].first) + "+" +
                        std::to_string(torn);
      std::string log_dir = FreshDir("torture_torn_logs");
      std::string ckpt_dir = FreshDir("torture_torn_ckpt");
      io::FaultPlan plan;
      plan.cut_at_call = points[i].first;
      plan.torn_bytes = torn;
      plan.drop_unsynced_at_cut = true;
      RunResult rr;
      {
        io::Armed armed(&plan);
        rr = RunWorkload(log_dir, ckpt_dir, phases, &plan);
      }
      CheckRecovered(log_dir, ckpt_dir, phases, rr, tag);
    }
  }
}

// The lying-disk adversary: fdatasync reports success without syncing, so
// the cut rolls back even "acked" bytes. Durability is unprovable on such
// hardware — the test only demands sanity: recovery never crashes, never
// invents values, and never resurrects a remove the frozen image cannot
// justify (the recovered state is SOME prefix of the timeline, per key).
TEST(CrashTorture, LyingFsyncNeverCorrupts) {
  auto phases = MakeWorkload();
  uint64_t total;
  {
    std::string log_dir = FreshDir("torture_lie_count_logs");
    std::string ckpt_dir = FreshDir("torture_lie_count_ckpt");
    io::FaultPlan plan;
    io::Armed armed(&plan);
    RunWorkload(log_dir, ckpt_dir, phases, &plan);
    total = plan.calls();
  }
  uint64_t stride = FullSweep() ? 4 : std::max<uint64_t>(1, total / 8);
  for (uint64_t cut = stride; cut <= total; cut += stride) {
    std::string log_dir = FreshDir("torture_lie_logs");
    std::string ckpt_dir = FreshDir("torture_lie_ckpt");
    io::FaultPlan plan;
    plan.cut_at_call = cut;
    plan.lie_fsync = true;
    plan.drop_unsynced_at_cut = true;
    {
      io::Armed armed(&plan);
      RunWorkload(log_dir, ckpt_dir, phases, &plan);
    }
    // acked_phases is meaningless under a lying fsync; demand only that
    // recovery produces a coherent per-key state from the full timeline.
    RunResult sane;
    sane.acked_phases = 0;
    sane.ckpt_durable = false;
    CheckRecovered(log_dir, ckpt_dir, phases, sane,
                   "lie@" + std::to_string(cut));
  }
}

// EINTR storms and short writes: every retry/resume loop in the logging
// and checkpoint stack must converge with zero data loss.
TEST(CrashTorture, EintrAndShortWritesAreHarmless) {
  auto phases = MakeWorkload();
  std::string log_dir = FreshDir("torture_eintr_logs");
  std::string ckpt_dir = FreshDir("torture_eintr_ckpt");
  io::FaultPlan plan;
  plan.eintr_every = 3;
  plan.eintr_burst = 2;
  plan.short_write_cap = 7;
  RunResult rr;
  {
    io::Armed armed(&plan);
    rr = RunWorkload(log_dir, ckpt_dir, phases, &plan);
  }
  EXPECT_EQ(rr.acked_phases, 3);
  CheckRecovered(log_dir, ckpt_dir, phases, rr, "eintr");
}

// ---- sticky-error degradation (the read-only trip, store level) --------

// A sticky EIO on the log's pwritev trips the store into read-only mode:
// writes fail fast with kReadOnly results, reads keep serving, and the
// first failing syscall's context is preserved for the trip log line.
TEST(CrashTorture, StickyEioTripsReadOnly) {
  std::string log_dir = FreshDir("torture_eio_logs");
  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 1;
  opt.maintenance_thread = false;
  io::FaultPlan plan;
  plan.fail_at = 1;
  plan.fail_errno = EIO;
  plan.fail_op = "pwritev";
  io::Armed armed(&plan);
  Store store(opt);
  Store::Session s(store, 0);
  EXPECT_EQ(store.put_checked("pre", {{0, "v"}}, s), Store::PutResult::kInserted);
  store.sync_logs();  // the drain hits the failing pwritev
  EXPECT_TRUE(store.read_only());
  EXPECT_EQ(store.log_error(), EIO);
  io::IoErrorDetail d = store.log_error_detail();
  EXPECT_STREQ(d.syscall, "pwritev");
  EXPECT_EQ(d.err, EIO);
  EXPECT_FALSE(d.path.empty());
  EXPECT_EQ(store.read_only_trips(), 1u);
  // Writes fail fast, in every flavor...
  EXPECT_EQ(store.put_checked("post", {{0, "v"}}, s), Store::PutResult::kReadOnly);
  EXPECT_EQ(store.remove_checked("pre", s), Store::RemoveResult::kReadOnly);
  EXPECT_THROW(store.put("post2", {{0, "v"}}, s), StoreReadOnly);
  std::vector<Store::PutOp> ops(2);
  ops[0].key = "mp0";
  ops[1].key = "mp1";
  EXPECT_EQ(store.multiput(std::span<Store::PutOp>(ops), s), 0u);
  EXPECT_TRUE(ops[0].rejected);
  EXPECT_TRUE(ops[1].rejected);
  EXPECT_GE(store.writes_rejected_read_only(), 4u);
  // ...while reads keep serving the pre-trip data.
  std::vector<std::string> out;
  EXPECT_TRUE(store.get("pre", {0}, &out, s));
  EXPECT_EQ(out[0], "v");
  EXPECT_FALSE(store.get("post", {0}, &out, s));
}

// ENOSPC on log extension (fallocate) degrades to read-only the same way —
// never an abort, never silent durability loss.
TEST(CrashTorture, EnospcOnLogExtensionTripsReadOnly) {
  std::string log_dir = FreshDir("torture_enospc_logs");
  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 1;
  opt.maintenance_thread = false;
  io::FaultPlan plan;
  plan.fail_at = 1;
  plan.fail_errno = ENOSPC;
  plan.fail_op = "fallocate";
  io::Armed armed(&plan);
  Store store(opt);
  Store::Session s(store, 0);
  store.put_checked("k", {{0, "v"}}, s);
  store.sync_logs();
  EXPECT_TRUE(store.read_only());
  EXPECT_EQ(store.log_error(), ENOSPC);
  EXPECT_STREQ(store.log_error_detail().syscall, "fallocate");
  EXPECT_EQ(store.put_checked("k2", {{0, "v"}}, s), Store::PutResult::kReadOnly);
  std::vector<std::string> out;
  EXPECT_TRUE(store.get("k", {0}, &out, s));  // applied in-memory pre-trip
}

// A checkpoint part hitting a write error trips the store too (the part
// file is junk and the manifest never commits), but a part that cannot
// even be opened is a configuration error, not degradation.
TEST(CrashTorture, CheckpointWriteFailureTripsReadOnly) {
  std::string log_dir = FreshDir("torture_ckptfail_logs");
  std::string ckpt_dir = FreshDir("torture_ckptfail_ckpt");
  Store::Options opt;
  opt.log_dir = log_dir;
  opt.log_partitions = 1;
  opt.maintenance_thread = false;
  io::FaultPlan plan;
  plan.fail_at = 1;
  plan.fail_errno = EIO;
  plan.fail_op = "write";
  io::Armed armed(&plan);
  Store store(opt);
  Store::Session s(store, 0);
  for (int i = 0; i < 10; ++i) {
    store.put_checked(Key(i), {{0, "v"}}, s);
  }
  EXPECT_FALSE(store.checkpoint(ckpt_dir, 2));
  EXPECT_TRUE(store.read_only());
  EXPECT_STREQ(store.log_error_detail().syscall, "write");
  EXPECT_EQ(store.put_checked("k", {{0, "v"}}, s), Store::PutResult::kReadOnly);
}

TEST(CrashTorture, CheckpointOpenFailureDoesNotTrip) {
  Store store;
  Store::Session s(store, 0);
  store.put_checked("k", {{0, "v"}}, s);
  // A directory that does not exist and cannot be created under TempDir's
  // read-only parent: parts fail to open, checkpoint fails, store stays
  // writable.
  EXPECT_FALSE(store.checkpoint("/proc/definitely/not/writable", 1));
  EXPECT_FALSE(store.read_only());
  EXPECT_EQ(store.put_checked("k2", {{0, "v"}}, s), Store::PutResult::kInserted);
}

}  // namespace
}  // namespace masstree
