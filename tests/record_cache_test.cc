// RecordCache coherence suite (cache/record_cache.h): the cache must be a
// strictly-consistent read cache — every hit returns exactly what a full
// descent would have returned at that moment. The tests drive the writer
// paths that repurpose or unpublish slots (in-place update, removal, slot
// reuse, layer creation, splits) and assert the version-validation kills
// stale entries; the churn stress proves zero stale reads concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "cache/record_cache.h"
#include "core/tree.h"
#include "support/test_support.h"
#include "util/rand.h"
#include "workload/keys.h"

namespace masstree {
namespace {

using test_support::ChurnDriver;
using test_support::Oracle;
using test_support::padded_key;
using test_support::rep_ok;
using test_support::seeded_rng;

using Cache = RecordCache<Tree::Config>;

uint64_t hits(ThreadContext& ti) { return ti.counters().get(Counter::kCacheHits); }
uint64_t misses(ThreadContext& ti) { return ti.counters().get(Counter::kCacheMisses); }
uint64_t invals(ThreadContext& ti) {
  return ti.counters().get(Counter::kCacheInvalidations);
}
uint64_t evicts(ThreadContext& ti) {
  return ti.counters().get(Counter::kCacheEvictions);
}

// Oracle-diff over split-inducing inserts with the cache in front: every key
// read twice (fill, then validated hit) both mid-load and at the end, plus
// over-long keys that must bypass the cache entirely.
TEST(RecordCacheTest, OracleDiffOverSplits) {
  ThreadContext ti;
  Tree tree(ti);
  Cache cache(Cache::Config{1 << 10, /*admit_threshold=*/1});
  tree.set_record_cache(&cache);
  Oracle oracle;
  constexpr uint64_t kKeys = 4000;  // far past one border node: many splits
  uint64_t old, v;
  for (uint64_t i = 0; i < kKeys; ++i) {
    std::string k = decimal_key(i);
    EXPECT_EQ(tree.insert(k, i, &old, ti), oracle.note_insert(k, i));
    if ((i & 255) == 0) {
      // Re-read a prefix of the oracle twice: the second read of each key is
      // served (or version-rejected) by the cache, never staled by the
      // splits the ongoing load causes.
      for (const auto& [ok, ov] : oracle.map()) {
        ASSERT_TRUE(tree.get(ok, &v, ti)) << ok;
        ASSERT_EQ(v, ov);
        ASSERT_TRUE(tree.get(ok, &v, ti)) << ok;
        ASSERT_EQ(v, ov);
      }
    }
  }
  oracle.verify_all([&](const std::string& k, uint64_t* out) {
    return tree.get(k, out, ti);
  });
  EXPECT_GT(hits(ti), 0u);
  EXPECT_TRUE(rep_ok(tree));
}

// Keys longer than the inline-key bound never enter the cache (and never
// miscount: each lookup is exactly one miss).
TEST(RecordCacheTest, LongKeysBypass) {
  ThreadContext ti;
  Tree tree(ti);
  Cache cache(Cache::Config{64, 1});
  tree.set_record_cache(&cache);
  uint64_t old, v;
  std::string k = prefix_key(7, 40);  // 40 bytes > kMaxInlineKey
  ASSERT_GT(k.size(), Cache::kMaxInlineKey);
  tree.insert(k, 7, &old, ti);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tree.get(k, &v, ti));
    EXPECT_EQ(v, 7u);
  }
  EXPECT_EQ(hits(ti), 0u);
  EXPECT_EQ(misses(ti), 3u);
}

// Remove must kill the cached entry (the slot is only unpublished via the
// permutation; the vinsert bump added for the cache is what invalidates it),
// and a later re-insert must serve the new value.
TEST(RecordCacheTest, DeleteThenGetNotStale) {
  ThreadContext ti;
  Tree tree(ti);
  Cache cache(Cache::Config{64, 1});
  tree.set_record_cache(&cache);
  uint64_t old, v;
  std::string k = padded_key(42);
  tree.insert(k, 1, &old, ti);
  ASSERT_TRUE(tree.get(k, &v, ti));  // miss + fill
  ASSERT_TRUE(tree.get(k, &v, ti));  // validated hit
  EXPECT_EQ(hits(ti), 1u);
  ASSERT_TRUE(tree.remove(k, &old, ti));
  uint64_t inv_before = invals(ti);
  EXPECT_FALSE(tree.get(k, &v, ti)) << "stale hit after remove";
  EXPECT_GT(invals(ti), inv_before) << "removal did not version-kill the entry";
  // Re-insert (likely reusing the removed slot, §4.6.5) with a new value.
  tree.insert(k, 2, &old, ti);
  ASSERT_TRUE(tree.get(k, &v, ti));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(tree.get(k, &v, ti));
  EXPECT_EQ(v, 2u);
}

// In-place value update does not bump the version word; freshness comes from
// the hit path re-reading the slot's live value word instead of caching
// value bytes.
TEST(RecordCacheTest, InPlaceUpdateServedFresh) {
  ThreadContext ti;
  Tree tree(ti);
  Cache cache(Cache::Config{64, 1});
  tree.set_record_cache(&cache);
  uint64_t old, v;
  std::string k = padded_key(7);
  tree.insert(k, 100, &old, ti);
  ASSERT_TRUE(tree.get(k, &v, ti));
  ASSERT_TRUE(tree.get(k, &v, ti));
  EXPECT_EQ(v, 100u);
  uint64_t h = hits(ti);
  tree.insert(k, 200, &old, ti);  // exact-match in-place set_lv
  EXPECT_EQ(old, 100u);
  ASSERT_TRUE(tree.get(k, &v, ti));
  EXPECT_EQ(v, 200u) << "cache served a stale value after in-place update";
  EXPECT_GT(hits(ti), h) << "in-place update should not invalidate the entry";
}

// Layer creation repurposes a cached slot from value to layer pointer; the
// mark_inserting added in make_layer must version-kill the entry rather than
// let the hit path reinterpret the layer pointer as the old value.
TEST(RecordCacheTest, MakeLayerInvalidates) {
  ThreadContext ti;
  Tree tree(ti);
  Cache cache(Cache::Config{64, 1});
  tree.set_record_cache(&cache);
  uint64_t old, v;
  std::string k1 = "AAAAAAAAsuffix-one";  // 8-byte slice + suffix
  std::string k2 = "AAAAAAAAsuffix-two";  // same slice, different suffix
  tree.insert(k1, 11, &old, ti);
  ASSERT_TRUE(tree.get(k1, &v, ti));
  ASSERT_TRUE(tree.get(k1, &v, ti));  // cached (border, slot, version)
  EXPECT_EQ(v, 11u);
  tree.insert(k2, 22, &old, ti);  // forces make_layer on k1's slot
  ASSERT_TRUE(tree.get(k1, &v, ti));
  EXPECT_EQ(v, 11u) << "layer-pointer reinterpreted as value";
  ASSERT_TRUE(tree.get(k2, &v, ti));
  EXPECT_EQ(v, 22u);
  // Both keys live in the sub-layer now; re-reads hit their new entries.
  ASSERT_TRUE(tree.get(k1, &v, ti));
  EXPECT_EQ(v, 11u);
  EXPECT_TRUE(rep_ok(tree));
}

// A tiny cache under more keys than ways: CLOCK must displace live entries
// (counted), and every lookup must resolve to exactly one hit or one miss.
TEST(RecordCacheTest, EvictionAndCounterConservation) {
  ThreadContext ti;
  Tree tree(ti);
  Cache cache(Cache::Config{4, 1});  // one 4-way bucket
  EXPECT_EQ(cache.capacity(), 4u);
  tree.set_record_cache(&cache);
  uint64_t old, v;
  constexpr uint64_t kKeys = 12;
  for (uint64_t i = 0; i < kKeys; ++i) {
    tree.insert(padded_key(i), i, &old, ti);
  }
  uint64_t lookups = 0;
  for (int round = 0; round < 8; ++round) {
    for (uint64_t i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(tree.get(padded_key(i), &v, ti));
      ASSERT_EQ(v, i);
      ++lookups;
    }
  }
  // Sequentially cycling 12 keys through 4 slots may legitimately never hit
  // (the classic scan worst case); an immediate re-access must, since the
  // previous lookup just filled the entry under the same epoch.
  ASSERT_TRUE(tree.get(padded_key(0), &v, ti));
  ASSERT_TRUE(tree.get(padded_key(0), &v, ti));
  lookups += 2;
  EXPECT_EQ(hits(ti) + misses(ti), lookups)
      << "every lookup must count exactly one hit or one miss";
  EXPECT_GT(evicts(ti), 0u) << "12 hot keys over 4 slots must evict";
  EXPECT_GT(hits(ti), 0u);
}

// Entries stamped under an older epoch are expired misses (the node pointer
// is no longer provably alive), then refill and hit again.
TEST(RecordCacheTest, EpochExpiryRefills) {
  ThreadContext ti;
  Tree tree(ti);
  Cache cache(Cache::Config{64, 1});
  tree.set_record_cache(&cache);
  uint64_t old, v;
  std::string k = padded_key(3);
  tree.insert(k, 3, &old, ti);
  ASSERT_TRUE(tree.get(k, &v, ti));  // fill
  ASSERT_TRUE(tree.get(k, &v, ti));  // hit
  uint64_t h = hits(ti);
  ti.reclaim();  // advance the epoch past the fill stamp
  uint64_t m = misses(ti);
  ASSERT_TRUE(tree.get(k, &v, ti));  // expired -> miss + refill
  EXPECT_EQ(hits(ti), h);
  EXPECT_EQ(misses(ti), m + 1);
  ASSERT_TRUE(tree.get(k, &v, ti));  // fresh stamp -> hit again
  EXPECT_EQ(hits(ti), h + 1);
}

// The frequency-sketch admission gate. Claiming an EMPTY way is never gated
// (filling unused space costs no one), so a full bucket of residents comes
// first; a new key must then be seen `threshold` times before it may
// displace a live entry.
TEST(RecordCacheTest, AdmissionThresholdGates) {
  ThreadContext ti;
  Tree tree(ti);
  // capacity 4 = kWays: every key shares the one probe group; sample shift 0
  // so every bucket-full miss consults the sketch deterministically.
  Cache cache(Cache::Config{4, /*admit_threshold=*/3, /*gate_sample_shift=*/0});
  tree.set_record_cache(&cache);
  uint64_t old, v;
  for (int i = 0; i < 4; ++i) {
    std::string r = padded_key(100 + i);
    tree.insert(r, 100 + i, &old, ti);
    ASSERT_TRUE(tree.get(r, &v, ti));  // empty-way fill, ungated
    ASSERT_TRUE(tree.get(r, &v, ti));  // hit
  }
  uint64_t h0 = hits(ti);
  EXPECT_EQ(h0, 4u) << "empty-way fills must not be admission-gated";
  std::string k = padded_key(9);
  tree.insert(k, 9, &old, ti);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(tree.get(k, &v, ti));  // sketch estimate 1, 2: below the bar
  }
  EXPECT_EQ(hits(ti), h0) << "displaced a resident before the frequency bar";
  // The third miss's fill sees estimate 3 >= threshold and displaces a
  // resident via CLOCK; the fourth get hits.
  ASSERT_TRUE(tree.get(k, &v, ti));
  ASSERT_TRUE(tree.get(k, &v, ti));
  EXPECT_EQ(hits(ti), h0 + 1);
  EXPECT_GT(evicts(ti), 0u);
}

// Concurrent churn: writers keep every key's value strictly increasing (one
// shared monotone counter) while readers get through the cache and assert
// per-key monotonicity — any stale read would observe a value below one the
// reader already saw. Splits, removals, slot reuse, and evictions all run.
TEST(RecordCacheTest, ChurnZeroStaleReads) {
  ThreadContext setup;
  Tree tree(setup);
  Cache cache(Cache::Config{256, 1});  // small: eviction churn included
  tree.set_record_cache(&cache);
  constexpr uint64_t kHotKeys = 64;
  std::atomic<uint64_t> counter{1};
  uint64_t old;
  for (uint64_t i = 0; i < kHotKeys; ++i) {
    tree.insert(padded_key(i), counter.fetch_add(1), &old, setup);
  }
  ChurnDriver churn;
  churn.spawn(3, [&](ThreadContext& ti, Rng& rng) {
    thread_local std::vector<uint64_t> seen(kHotKeys, 0);
    uint64_t idx = rng.next_range(kHotKeys);
    uint64_t v;
    if (!tree.get(padded_key(idx), &v, ti)) {
      return true;  // concurrently removed; absence is never stale
    }
    if (v < seen[idx]) {
      return false;  // STALE: value went backwards
    }
    seen[idx] = v;
    return true;
  });
  Rng wrng = seeded_rng(0xCACE);
  for (uint64_t i = 0; i < 60000; ++i) {
    uint64_t idx = wrng.next_range(kHotKeys);
    switch (wrng.next() & 7) {
      case 0:
        // Remove, then re-insert with a LARGER value: still monotone.
        tree.remove(padded_key(idx), &old, setup);
        tree.insert(padded_key(idx), counter.fetch_add(1), &old, setup);
        break;
      case 1:
        // Fresh split-inducing key outside the hot set.
        tree.insert(decimal_key(1000000 + i), i, &old, setup);
        break;
      default:
        tree.insert(padded_key(idx), counter.fetch_add(1), &old, setup);
        break;
    }
  }
  EXPECT_EQ(churn.stop_and_join(), 0) << "stale reads observed through the cache";
  tree.set_record_cache(nullptr);
  ThreadContext verify;
  EXPECT_TRUE(rep_ok(tree));
  uint64_t v;
  for (uint64_t i = 0; i < kHotKeys; ++i) {
    if (tree.get(padded_key(i), &v, verify)) {
      EXPECT_LT(v, counter.load());
    }
  }
}

}  // namespace
}  // namespace masstree
