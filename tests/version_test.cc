// Version-word protocol tests (§4.5, Figures 3 & 4).

#include "core/version.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace masstree {
namespace {

using CV = NodeVersion<ConcurrentPolicy>;
using SV = NodeVersion<SequentialPolicy>;

TEST(Version, InitialFlags) {
  CV v(VersionValue::kBorder | VersionValue::kRoot);
  VersionValue x = v.load();
  EXPECT_TRUE(x.is_border());
  EXPECT_TRUE(x.is_root());
  EXPECT_FALSE(x.locked());
  EXPECT_FALSE(x.dirty());
  EXPECT_FALSE(x.deleted());
  EXPECT_EQ(x.vinsert(), 0u);
  EXPECT_EQ(x.vsplit(), 0u);
}

TEST(Version, UnlockBumpsVinsert) {
  CV v(VersionValue::kBorder);
  VersionValue before = v.load();
  v.lock();
  v.mark_inserting();
  EXPECT_TRUE(v.load().inserting());
  v.unlock();
  VersionValue after = v.load();
  EXPECT_FALSE(after.locked());
  EXPECT_FALSE(after.inserting());
  EXPECT_EQ(after.vinsert(), before.vinsert() + 1);
  EXPECT_EQ(after.vsplit(), before.vsplit());
  EXPECT_TRUE(v.changed_since(before));
  EXPECT_FALSE(v.split_since(before));
}

TEST(Version, UnlockBumpsVsplit) {
  CV v(VersionValue::kBorder);
  VersionValue before = v.load();
  v.lock();
  v.mark_splitting();
  v.unlock();
  VersionValue after = v.load();
  EXPECT_EQ(after.vsplit(), before.vsplit() + 1);
  EXPECT_EQ(after.vinsert(), before.vinsert());
  EXPECT_TRUE(v.split_since(before));
}

TEST(Version, PlainLockUnlockBumpsNothing) {
  // Updates (value overwrite) lock but never dirty: readers see no change.
  CV v(VersionValue::kBorder);
  VersionValue before = v.load();
  v.lock();
  v.unlock();
  EXPECT_FALSE(v.changed_since(before));
}

TEST(Version, LockBitInvisibleToChangedSince) {
  CV v(VersionValue::kBorder);
  VersionValue before = v.load();
  v.lock();
  EXPECT_FALSE(v.changed_since(before));  // lock alone is not a change
  v.unlock();
}

TEST(Version, VinsertWrapsWithoutTouchingVsplit) {
  CV v(VersionValue::kBorder);
  for (int i = 0; i < 256; ++i) {
    v.lock();
    v.mark_inserting();
    v.unlock();
  }
  VersionValue after = v.load();
  EXPECT_EQ(after.vinsert(), 0u);  // 8-bit counter wrapped exactly once
  EXPECT_EQ(after.vsplit(), 0u);   // no carry into vsplit
  EXPECT_TRUE(after.is_border());
}

TEST(Version, DeletedMarksSplitting) {
  CV v(VersionValue::kBorder);
  VersionValue before = v.load();
  v.lock();
  v.mark_deleted();
  v.unlock();
  VersionValue after = v.load();
  EXPECT_TRUE(after.deleted());
  EXPECT_TRUE(v.split_since(before));  // deletion counts as a split
}

TEST(Version, StableSpinsPastDirty) {
  CV v(VersionValue::kBorder);
  v.lock();
  v.mark_inserting();
  std::thread unlocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    v.unlock();
  });
  VersionValue x = v.stable();  // must not return while inserting is set
  EXPECT_FALSE(x.dirty());
  unlocker.join();
}

TEST(Version, TryLock) {
  CV v(VersionValue::kBorder);
  EXPECT_TRUE(v.try_lock());
  EXPECT_FALSE(v.try_lock());
  v.unlock();
  EXPECT_TRUE(v.try_lock());
  v.unlock();
}

TEST(Version, MutualExclusionUnderContention) {
  CV v(0);
  std::atomic<int> in_section{0};
  std::atomic<bool> violation{false};
  constexpr int kIters = 20000;
  auto worker = [&] {
    for (int i = 0; i < kIters; ++i) {
      v.lock();
      if (in_section.fetch_add(1) != 0) {
        violation = true;
      }
      in_section.fetch_sub(1);
      v.unlock();
    }
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();
  EXPECT_FALSE(violation);
  EXPECT_FALSE(v.load().locked());
}

TEST(Version, SequentialPolicyNeverReportsChanges) {
  SV v(VersionValue::kBorder);
  VersionValue before = v.load();
  v.lock();
  v.mark_inserting();
  v.unlock();
  // The single-core variant compiles validation away entirely.
  EXPECT_FALSE(v.changed_since(before));
  EXPECT_FALSE(v.split_since(before));
}

TEST(Version, RootFlagToggle) {
  CV v(VersionValue::kRoot);
  v.lock();
  v.set_root(false);
  EXPECT_FALSE(v.load().is_root());
  v.set_root(true);
  EXPECT_TRUE(v.load().is_root());
  v.unlock();
}

}  // namespace
}  // namespace masstree
