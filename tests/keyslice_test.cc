// Key slice encoding tests (§4.2): byte-swapped integer comparison must
// match lexicographic string comparison, including binary keys with NULs.

#include "key/key.h"
#include "key/keyslice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace masstree {
namespace {

TEST(KeySlice, EmptyIsZero) { EXPECT_EQ(make_slice(""), 0u); }

TEST(KeySlice, ShortKeysZeroPadded) {
  EXPECT_EQ(make_slice("A"), 0x4100000000000000ull);
  EXPECT_EQ(make_slice("AB"), 0x4142000000000000ull);
}

TEST(KeySlice, EightBytesBigEndian) {
  EXPECT_EQ(make_slice("ABCDEFGH"), 0x4142434445464748ull);
}

TEST(KeySlice, LongKeysTruncateToEight) {
  EXPECT_EQ(make_slice("ABCDEFGHIJK"), make_slice("ABCDEFGH"));
}

TEST(KeySlice, OrderMatchesLexicographic) {
  std::vector<std::string> keys = {
      "",        "\x00",      std::string("\x00\x01", 2), "A",     "AA",  "AAAAAAA",
      "AAAAAAAB", "AB",       "B",                        "zzzzzzz", "\x7f", "\x80",
      std::string("\xff\xff", 2)};
  for (const auto& a : keys) {
    for (const auto& b : keys) {
      std::string pa = a.substr(0, 8), pb = b.substr(0, 8);
      if (pa < pb) {
        EXPECT_LT(make_slice(a), make_slice(b)) << a << " vs " << b;
      } else if (pa > pb) {
        EXPECT_GT(make_slice(a), make_slice(b));
      } else {
        EXPECT_EQ(make_slice(a), make_slice(b));
      }
    }
  }
}

TEST(KeySlice, HighBitBytesUnsigned) {
  // 0x80 must compare greater than 0x7f (unsigned byte semantics).
  EXPECT_GT(make_slice("\x80"), make_slice("\x7f"));
}

TEST(KeySlice, EmbeddedNulDistinctFromShort) {
  // "ABCDEFG" and "ABCDEFG\0" share a slice; length disambiguates (§4.2).
  std::string with_nul("ABCDEFG\0", 8);
  EXPECT_EQ(make_slice("ABCDEFG"), make_slice(with_nul));
}

TEST(KeySlice, RoundTrip) {
  std::string s = "qwerty";
  uint64_t slice = make_slice(s);
  EXPECT_EQ(slice_to_string(slice, s.size()), s);
  std::string b("\x01\x00\xffXY\x00\x07z", 8);
  EXPECT_EQ(slice_to_string(make_slice(b), 8), b);
}

TEST(Key, CursorBasics) {
  Key k("0123456789ABCDEF!!");
  EXPECT_EQ(k.layer(), 0u);
  EXPECT_EQ(k.slice(), make_slice("01234567"));
  EXPECT_EQ(k.length_in_slice(), 8u);
  EXPECT_TRUE(k.has_suffix());
  EXPECT_EQ(k.suffix(), "89ABCDEF!!");

  k.shift();
  EXPECT_EQ(k.layer(), 1u);
  EXPECT_EQ(k.slice(), make_slice("89ABCDEF"));
  EXPECT_TRUE(k.has_suffix());
  EXPECT_EQ(k.suffix(), "!!");

  k.shift();
  EXPECT_EQ(k.layer(), 2u);
  EXPECT_EQ(k.length_in_slice(), 2u);
  EXPECT_FALSE(k.has_suffix());

  k.unshift_all();
  EXPECT_EQ(k.layer(), 0u);
}

TEST(Key, ExactMultipleOfEight) {
  Key k("ABCDEFGH");  // exactly one slice
  EXPECT_EQ(k.length_in_slice(), 8u);
  EXPECT_FALSE(k.has_suffix());  // 8 bytes end in layer 0
}

TEST(Key, NineBytes) {
  Key k("ABCDEFGHI");
  EXPECT_TRUE(k.has_suffix());
  EXPECT_EQ(k.suffix(), "I");
  k.shift();
  EXPECT_EQ(k.length_in_slice(), 1u);
  EXPECT_FALSE(k.has_suffix());
}

TEST(Key, EmptyKey) {
  Key k("");
  EXPECT_EQ(k.slice(), 0u);
  EXPECT_EQ(k.length_in_slice(), 0u);
  EXPECT_FALSE(k.has_suffix());
}

}  // namespace
}  // namespace masstree
