// Property-based tests: randomized operation sequences over adversarial key
// families, validated against std::map oracles. Each key family stresses a
// different structural path — trie layering (§4.1), same-slice grouping
// (§4.2), suffix storage, split boundaries, removal cascades (§4.6.5).
// Every 1000 random ops the check_rep() walker audits the full structure.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/tree.h"
#include "support/test_support.h"
#include "util/rand.h"

namespace masstree {
namespace {

namespace ts = test_support;

// A key family is a deterministic index -> key mapping.
struct KeyFamily {
  const char* name;
  std::string (*make)(uint64_t i);
  uint64_t space;  // index range
};

std::string ShortDense(uint64_t i) {
  // Lengths 0..8, heavy same-slice grouping.
  std::string base = "ABCDEFGH";
  return base.substr(0, i % 9);
}

std::string DecimalMix(uint64_t i) {
  return std::to_string((i * 2654435761u) % 2000000011u);
}

std::string SharedPrefixDeep(uint64_t i) {
  // 24-byte shared prefix -> three trie layers before any difference.
  return std::string(24, 'p') + std::to_string(i);
}

std::string BinaryNuls(uint64_t i) {
  // NUL-dense binary keys with varying lengths, including slice boundaries.
  std::string k;
  uint64_t x = i * 0x9E3779B97F4A7C15ull;
  size_t len = x % 19;  // 0..18 crosses the 8/16-byte boundaries
  for (size_t j = 0; j < len; ++j) {
    k.push_back(static_cast<char>((x >> (j * 3)) % 3));  // bytes 0,1,2 only
  }
  return k;
}

std::string BoundaryLengths(uint64_t i) {
  // Lengths clustered exactly at slice boundaries: 7, 8, 9, 15, 16, 17.
  static const size_t lens[] = {7, 8, 9, 15, 16, 17};
  size_t len = lens[i % 6];
  std::string k(len, 'x');
  // Differentiate within a small alphabet so slices collide often.
  uint64_t x = i / 6;
  for (size_t j = 0; j < len && x != 0; ++j, x /= 3) {
    k[len - 1 - j] = static_cast<char>('x' + x % 3);
  }
  return k;
}

std::string LongSuffixes(uint64_t i) {
  // 8-byte shared head + 50-200 byte suffixes: exercises bag growth.
  return "HEADHEAD" + std::string(50 + i % 150, 'S') + std::to_string(i);
}

class TreePropertyTest : public ::testing::TestWithParam<KeyFamily> {};

TEST_P(TreePropertyTest, RandomOpsMatchOracle) {
  const KeyFamily& fam = GetParam();
  ThreadContext ti;
  Tree tree(ti);
  ts::Oracle oracle;
  Rng rng = ts::seeded_rng(0xFACE + fam.space);

  for (int op = 0; op < 30000; ++op) {
    uint64_t i = rng.next_range(fam.space);
    std::string key = fam.make(i);
    switch (rng.next_range(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert/update
        uint64_t v = rng.next();
        uint64_t old;
        bool inserted = tree.insert(key, v, &old, ti);
        ASSERT_EQ(inserted, oracle.note_insert(key, v)) << fam.name << " key=" << key;
        break;
      }
      case 4:
      case 5: {  // remove
        uint64_t old;
        bool removed = tree.remove(key, &old, ti);
        ASSERT_EQ(removed, oracle.note_remove(key)) << fam.name << " key=" << key;
        break;
      }
      default: {  // get
        uint64_t v;
        bool found = tree.get(key, &v, ti);
        auto it = oracle.map().find(key);
        ASSERT_EQ(found, it != oracle.map().end()) << fam.name << " key=" << key;
        if (found) {
          ASSERT_EQ(v, it->second) << fam.name << " key=" << key;
        }
        break;
      }
    }
    if ((op & 4095) == 0) {
      tree.run_maintenance(ti);
    }
    // Structural audit: every 1000 ops, walk the whole tree's invariants
    // (keyslice ordering, permutation consistency, layer links, ...).
    if ((op + 1) % 1000 == 0) {
      ASSERT_TRUE(ts::rep_ok(tree)) << fam.name << " after op " << op;
    }
  }

  // Full-state check: every oracle key present with the right value, a
  // complete scan returning exactly the oracle in order, and matching stats.
  ts::check_tree_matches_oracle(tree, oracle, ti, fam.name);
  ASSERT_TRUE(ts::rep_ok(tree)) << fam.name;
}

TEST_P(TreePropertyTest, InsertAllRemoveAllRepeatedly) {
  const KeyFamily& fam = GetParam();
  ThreadContext ti;
  Tree tree(ti);
  // Three grow/shrink cycles: removal cascades + layer GC + reinsertion into
  // reclaimed structure.
  for (int round = 0; round < 3; ++round) {
    ts::Oracle oracle;
    for (uint64_t i = 0; i < fam.space; ++i) {
      std::string k = fam.make(i);
      uint64_t old;
      tree.insert(k, i + round, &old, ti);
      oracle.note_insert(k, i + round);
    }
    ASSERT_EQ(tree.collect_stats().keys, oracle.size());
    oracle.verify_all([&](const std::string& k, uint64_t* v) { return tree.get(k, v, ti); },
                      fam.name);
    ASSERT_TRUE(ts::rep_ok(tree)) << fam.name << " full, round " << round;
    for (const auto& [k, v] : oracle.map()) {
      uint64_t old;
      ASSERT_TRUE(tree.remove(k, &old, ti)) << fam.name << " round " << round;
    }
    tree.run_maintenance(ti);
    ASSERT_EQ(tree.collect_stats().keys, 0u) << fam.name << " round " << round;
    ASSERT_TRUE(ts::rep_ok(tree)) << fam.name << " empty, round " << round;
  }
}

TEST_P(TreePropertyTest, ScanFromEveryBoundary) {
  const KeyFamily& fam = GetParam();
  ThreadContext ti;
  Tree tree(ti);
  std::map<std::string, uint64_t> oracle;
  for (uint64_t i = 0; i < std::min<uint64_t>(fam.space, 2000); ++i) {
    std::string k = fam.make(i);
    uint64_t old;
    tree.insert(k, i, &old, ti);
    oracle[k] = i;
  }
  // Scan starting exactly at each present key (inclusive) and just after it.
  int checked = 0;
  for (auto it = oracle.begin(); it != oracle.end() && checked < 100;
       std::advance(it, 7), ++checked) {
    std::vector<std::string> got;
    tree.scan(
        it->first, 3,
        [&](std::string_view k, uint64_t) {
          got.emplace_back(k);
          return true;
        },
        ti);
    auto oit = it;
    for (size_t j = 0; j < got.size(); ++j, ++oit) {
      ASSERT_EQ(got[j], oit->first) << fam.name;
    }
    // Successor scan: start = key + '\0' must skip the key itself.
    std::string succ = it->first + std::string(1, '\0');
    got.clear();
    tree.scan(
        succ, 1,
        [&](std::string_view k, uint64_t) {
          got.emplace_back(k);
          return true;
        },
        ti);
    auto nit = std::next(it);
    // key+'\0' may itself exist in NUL-rich families.
    if (!got.empty() && nit != oracle.end()) {
      ASSERT_GE(got[0], succ) << fam.name;
    }
    if (std::distance(oracle.begin(), it) + 7 >= static_cast<long>(oracle.size())) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KeyFamilies, TreePropertyTest,
    ::testing::Values(KeyFamily{"short_dense", &ShortDense, 9},
                      KeyFamily{"decimal_mix", &DecimalMix, 5000},
                      KeyFamily{"shared_prefix_deep", &SharedPrefixDeep, 3000},
                      KeyFamily{"binary_nuls", &BinaryNuls, 4000},
                      KeyFamily{"boundary_lengths", &BoundaryLengths, 2000},
                      KeyFamily{"long_suffixes", &LongSuffixes, 1500}),
    [](const ::testing::TestParamInfo<KeyFamily>& info) { return info.param.name; });

// ---- non-parameterized structural properties ----

TEST(TreeInvariants, SameSliceGroupMaxTen) {
  // §4.2: "A single tree can store at most 10 keys with the same slice" —
  // lengths 0..8 plus one suffixed key; the eleventh (another long key)
  // forces a layer.
  ThreadContext ti;
  Tree tree(ti);
  std::string base = "SLICESLC";
  uint64_t old;
  for (size_t len = 0; len <= 8; ++len) {
    tree.insert(std::string_view(base).substr(0, len), len, &old, ti);
  }
  tree.insert(base + "longer-a", 100, &old, ti);  // the one suffixed key
  ASSERT_EQ(tree.collect_stats().layer_links, 0u);
  tree.insert(base + "longer-b", 101, &old, ti);  // conflict -> layer
  TreeStats st = tree.collect_stats();
  EXPECT_EQ(st.layer_links, 1u);
  EXPECT_EQ(st.layers, 2u);
  // Everything still retrievable.
  for (size_t len = 0; len <= 8; ++len) {
    uint64_t v;
    ASSERT_TRUE(tree.get(std::string_view(base).substr(0, len), &v, ti));
    ASSERT_EQ(v, len);
  }
  uint64_t v;
  ASSERT_TRUE(tree.get(base + "longer-a", &v, ti));
  EXPECT_EQ(v, 100u);
  ASSERT_TRUE(tree.get(base + "longer-b", &v, ti));
  EXPECT_EQ(v, 101u);
}

TEST(TreeInvariants, LayerDepthMatchesPrefixLength) {
  // Invariant (1) of §4.1: keys shorter than 8h+8 bytes are stored at layer
  // <= h; a 64-byte shared prefix generates at least 8 layers.
  ThreadContext ti;
  Tree tree(ti);
  std::string prefix(64, 'L');
  uint64_t old;
  for (int i = 0; i < 100; ++i) {
    tree.insert(prefix + std::to_string(i), i, &old, ti);
  }
  EXPECT_GE(tree.collect_stats().layers, 9u);
}

TEST(TreeInvariants, BorderFillAfterSequentialLoad) {
  // §4.3's sequential-insert optimization keeps nodes nearly full.
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;
  for (int i = 0; i < 100000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    tree.insert(buf, i, &old, ti);
  }
  EXPECT_GT(tree.collect_stats().avg_border_fill(15), 0.9);
}

TEST(TreeInvariants, RandomFillFactorReasonable) {
  // Random inserts land around the classical ~70% B-tree utilization.
  ThreadContext ti;
  Tree tree(ti);
  Rng rng = ts::seeded_rng(3);
  uint64_t old;
  for (int i = 0; i < 100000; ++i) {
    tree.insert(std::to_string(rng.next()), i, &old, ti);
  }
  double fill = tree.collect_stats().avg_border_fill(15);
  EXPECT_GT(fill, 0.55);
  EXPECT_LT(fill, 0.85);
}

TEST(TreeInvariants, UpdateNeverChangesShape) {
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;
  for (int i = 0; i < 10000; ++i) {
    tree.insert("k" + std::to_string(i), i, &old, ti);
  }
  TreeStats before = tree.collect_stats();
  Rng rng = ts::seeded_rng(9);
  for (int i = 0; i < 50000; ++i) {
    tree.insert("k" + std::to_string(rng.next_range(10000)), rng.next(), &old, ti);
  }
  TreeStats after = tree.collect_stats();
  EXPECT_EQ(before.border_nodes, after.border_nodes);
  EXPECT_EQ(before.interior_nodes, after.interior_nodes);
  EXPECT_EQ(before.keys, after.keys);
}

}  // namespace
}  // namespace masstree
