// Log encoding, wait-free per-worker buffers, group commit, and
// recovery-cutoff tests (§5), including failure injection (torn tails,
// corrupt records, full disks) and a multi-writer append/sync/truncate
// stress over the LogShard/LogWriter stack.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "log/logger.h"
#include "log/logrecord.h"
#include "log/recovery.h"
#include "util/lz.h"
#include "util/varint.h"

namespace masstree {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ---------------- wire format ----------------

TEST(LogRecord, PutRoundTrip) {
  std::string buf;
  logwire::encode_put(&buf, "mykey", {{0, "val0"}, {3, "val3"}}, 42, 1000);
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), buf.size());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, LogType::kPut);
  EXPECT_EQ(out[0].key, "mykey");
  EXPECT_EQ(out[0].version, 42u);
  EXPECT_EQ(out[0].timestamp_us, 1000u);
  ASSERT_EQ(out[0].columns.size(), 2u);
  EXPECT_EQ(out[0].columns[0].first, 0);
  EXPECT_EQ(out[0].columns[0].second, "val0");
  EXPECT_EQ(out[0].columns[1].first, 3);
  EXPECT_EQ(out[0].columns[1].second, "val3");
  EXPECT_EQ(out[0].wire_end, buf.size());
}

TEST(LogRecord, RemoveRoundTrip) {
  std::string buf;
  logwire::encode_remove(&buf, "gone", 7, 2000);
  std::vector<LogEntry> out;
  logwire::decode_all(buf, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, LogType::kRemove);
  EXPECT_EQ(out[0].key, "gone");
  EXPECT_EQ(out[0].version, 7u);
  EXPECT_EQ(out[0].wire_end, buf.size());
}

TEST(LogRecord, MarkerAndCloseRoundTrip) {
  std::string buf;
  logwire::encode_marker(&buf, 111);
  logwire::encode_close(&buf, 222);
  EXPECT_EQ(buf.size(), logwire::kHeaderSize +
                            logwire::marker_record_size_v2(111) +
                            logwire::marker_record_size_v2(222));
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), buf.size());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, LogType::kMarker);
  EXPECT_EQ(out[0].timestamp_us, 111u);
  EXPECT_EQ(out[1].type, LogType::kClose);
  EXPECT_EQ(out[1].timestamp_us, 222u);
}

// The single-column tag drops the ncols/per-column framing; a v2 record for
// the bench's typical small put must be well under half the fixed 29-byte
// v1 overhead + payload.
TEST(LogRecord, SingleColumnPutIsCompact) {
  std::string buf;
  logwire::encode_put(&buf, "key12345", {{0, "value"}}, 3, 1700000000000000u);
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), buf.size());
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].columns.size(), 1u);
  EXPECT_EQ(out[0].columns[0].second, "value");
  size_t record = buf.size() - logwire::kHeaderSize;
  size_t v1 = logwire::put_record_size_v1("key12345", {{0, "value"}});
  EXPECT_LT(record, v1);
  // tag(1) + ts(8) + version(1) + klen(1)+8 + col(1) + h(1) + 5 + crc(4) +
  // frame(1) = 31 vs v1's 48.
  EXPECT_LE(record, 31u);
}

// Version 0 drops the version field entirely (the 0x20 flag is clear).
TEST(LogRecord, ZeroVersionOmitted) {
  std::string with0, with1;
  logwire::encode_put(&with0, "k", {{0, "v"}}, 0, 50);
  logwire::encode_put(&with1, "k", {{0, "v"}}, 1, 50);
  EXPECT_EQ(with0.size() + 1, with1.size());
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(with0, &out), with0.size());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].version, 0u);
}

TEST(LogRecord, BinaryKeyRoundTrip) {
  std::string key("\x00key\xffwith\x00nuls", 14);
  std::string buf;
  logwire::encode_put(&buf, key, {{0, std::string("\x00\x01", 2)}}, 1, 1);
  std::vector<LogEntry> out;
  logwire::decode_all(buf, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, key);
  EXPECT_EQ(out[0].columns[0].second, std::string("\x00\x01", 2));
}

TEST(LogRecord, TornTailDiscarded) {
  std::string buf;
  logwire::encode_put(&buf, "a", {{0, "1"}}, 1, 1);
  size_t whole = buf.size();
  logwire::encode_put(&buf, "b", {{0, "2"}}, 2, 2);
  // Simulate a crash mid-write of the second record.
  std::string torn = buf.substr(0, whole + 7);
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(torn, &out), whole);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "a");
}

TEST(LogRecord, CorruptRecordStopsReplay) {
  std::string buf;
  logwire::encode_put(&buf, "a", {{0, "1"}}, 1, 1);
  size_t first = buf.size();
  logwire::encode_put(&buf, "b", {{0, "2"}}, 2, 2);
  logwire::encode_put(&buf, "c", {{0, "3"}}, 3, 3);
  buf[first + 10] ^= 0x5A;  // flip a byte inside record 2
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), first);
  ASSERT_EQ(out.size(), 1u);  // record 3 is also discarded: order matters
}

// Crash-replay property: cutting the byte stream at EVERY offset yields
// exactly the records that fit completely before the cut — never a crash,
// never a phantom, never a reordering.
TEST(LogRecord, EveryTruncationPointYieldsExactPrefix) {
  std::string buf;
  std::vector<size_t> ends;  // byte offset just past each record
  for (int i = 0; i < 12; ++i) {
    if (i % 5 == 4) {
      logwire::encode_remove(&buf, "k" + std::to_string(i), i + 1, 100 + i);
    } else if (i % 7 == 6) {
      logwire::encode_marker(&buf, 100 + i);
    } else {
      logwire::encode_put(&buf, "key" + std::to_string(i),
                          {{0, std::string(i * 3, 'v')}}, i + 1, 100 + i);
    }
    ends.push_back(buf.size());
  }
  for (size_t cut = 0; cut <= buf.size(); ++cut) {
    size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) {
      ++expect;
    }
    std::vector<LogEntry> out;
    size_t consumed = logwire::decode_all(std::string_view(buf.data(), cut), &out);
    ASSERT_EQ(out.size(), expect) << "cut at " << cut;
    // With zero whole records the decoder still consumes the 5-byte format
    // header once the cut clears it.
    size_t want_consumed = expect > 0 ? ends[expect - 1]
                           : cut >= logwire::kHeaderSize ? logwire::kHeaderSize
                                                         : 0;
    ASSERT_EQ(consumed, want_consumed) << "cut at " << cut;
    for (size_t r = 0; r < out.size(); ++r) {
      EXPECT_EQ(out[r].timestamp_us, 100 + r);  // order preserved
    }
  }
}

// ---------------- varint properties ----------------

TEST(Varint, RoundTripBoundaries) {
  const uint64_t vals[] = {0,
                           1,
                           127,
                           128,
                           16383,
                           16384,
                           (1ull << 21) - 1,
                           1ull << 21,
                           (1ull << 28) - 1,
                           1ull << 28,
                           (1ull << 35),
                           (1ull << 42),
                           (1ull << 49),
                           (1ull << 56),
                           (1ull << 63),
                           ~0ull};
  for (uint64_t v : vals) {
    char buf[vint::kMaxBytes];
    char* end = vint::put(buf, v);
    EXPECT_EQ(static_cast<size_t>(end - buf), vint::size(v)) << v;
    uint64_t back = 0;
    const char* q = vint::get(buf, end, &back);
    ASSERT_EQ(q, end) << v;
    EXPECT_EQ(back, v);
    // Every strict prefix is rejected as truncated.
    for (const char* cut = buf; cut < end; ++cut) {
      EXPECT_EQ(vint::get(buf, cut, &back), nullptr) << v;
    }
  }
}

TEST(Varint, OverlongEncodingRejected) {
  uint64_t out;
  // 1 encoded in two bytes (0x81 0x00) and zero in two (0x80 0x00): the
  // canonical encodings are one byte, so both must be rejected.
  const char two_one[] = {'\x81', '\x00'};
  const char two_zero[] = {'\x80', '\x00'};
  EXPECT_EQ(vint::get(two_one, two_one + 2, &out), nullptr);
  EXPECT_EQ(vint::get(two_zero, two_zero + 2, &out), nullptr);
  // ~0ull has a canonical 10-byte form ending in 0x01; a redundant
  // continuation past it cannot decode.
  char buf[12];
  std::memset(buf, '\x80', sizeof(buf));
  EXPECT_EQ(vint::get(buf, buf + 11, &out), nullptr);
}

TEST(Varint, OversizedValueRejected) {
  // 10th byte may only be 0x00/0x01; anything else overflows 64 bits.
  char buf[10];
  std::memset(buf, '\xff', 9);
  buf[9] = '\x02';
  uint64_t out;
  EXPECT_EQ(vint::get(buf, buf + 10, &out), nullptr);
  buf[9] = '\x01';
  const char* q = vint::get(buf, buf + 10, &out);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(out, ~0ull);
}

TEST(Varint, ZigzagRoundTrip) {
  const int64_t vals[] = {0, 1, -1, 2, -2, 1000000, -1000000,
                          std::numeric_limits<int64_t>::max(),
                          std::numeric_limits<int64_t>::min()};
  for (int64_t v : vals) {
    EXPECT_EQ(vint::unzigzag(vint::zigzag(v)), v);
  }
  EXPECT_EQ(vint::zigzag(0), 0u);
  EXPECT_EQ(vint::zigzag(-1), 1u);
  EXPECT_EQ(vint::zigzag(1), 2u);
}

// A record whose frame length varint is overlong must stop the decode even
// though the payload and crc behind it are intact.
TEST(LogRecord, OverlongFrameVarintStopsDecode) {
  std::string buf;
  logwire::encode_put(&buf, "k", {{0, "v"}}, 1, 9);
  size_t len = buf.size() - logwire::kHeaderSize - 1 - 4;  // payload bytes
  ASSERT_LT(len, 128u);
  std::string evil = buf.substr(0, logwire::kHeaderSize);
  evil.push_back(static_cast<char>(len | 0x80));
  evil.push_back('\x00');
  evil.append(buf, logwire::kHeaderSize + 1, std::string::npos);
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(evil, &out), logwire::kHeaderSize);
  EXPECT_TRUE(out.empty());
}

// ---------------- v1 compatibility + format versioning ----------------

// The v1 encoders are the oracle: the same logical records written in both
// formats must decode to identical entries (and the v2 stream must be
// smaller, header included).
TEST(LogRecord, V2MatchesV1Oracle) {
  const std::string long_col(40, 'q');  // ColumnUpdate holds a view
  std::vector<ColumnUpdate> cols = {{0, "short"}, {7, long_col}};
  std::string v1, v2;
  for (int i = 0; i < 20; ++i) {
    uint64_t ts = 1700000000000000u + i * 13;
    logwire::encode_put_v1(&v1, "key" + std::to_string(i), cols, i, ts);
    logwire::encode_put(&v2, "key" + std::to_string(i), cols, i, ts);
    logwire::encode_remove_v1(&v1, "gone" + std::to_string(i), i + 100, ts + 1);
    logwire::encode_remove(&v2, "gone" + std::to_string(i), i + 100, ts + 1);
  }
  logwire::encode_marker_v1(&v1, LogType::kClose, 5);
  logwire::encode_close(&v2, 5);
  std::vector<LogEntry> from_v1, from_v2;
  ASSERT_EQ(logwire::decode_all(v1, &from_v1), v1.size());
  ASSERT_EQ(logwire::decode_all(v2, &from_v2), v2.size());
  ASSERT_EQ(from_v1.size(), from_v2.size());
  for (size_t i = 0; i < from_v1.size(); ++i) {
    EXPECT_EQ(from_v1[i].type, from_v2[i].type) << i;
    EXPECT_EQ(from_v1[i].timestamp_us, from_v2[i].timestamp_us) << i;
    EXPECT_EQ(from_v1[i].version, from_v2[i].version) << i;
    EXPECT_EQ(from_v1[i].key, from_v2[i].key) << i;
    EXPECT_EQ(from_v1[i].columns, from_v2[i].columns) << i;
  }
  EXPECT_LT(v2.size(), v1.size());
}

// A headerless v1 file written by an old build still decodes, and a header
// may appear at ANY later record boundary (the mid-file upgrade an adopting
// new build performs).
TEST(LogRecord, MidFileUpgradeV1ThenV2) {
  std::string buf;
  logwire::encode_put_v1(&buf, "old1", {{0, "a"}}, 1, 10);
  logwire::encode_put_v1(&buf, "old2", {{0, "b"}}, 2, 20);
  logwire::encode_header(&buf);  // upgrade point
  logwire::encode_put(&buf, "new1", {{0, "c"}}, 3, 30);
  logwire::encode_close(&buf, 40);
  std::vector<LogEntry> out;
  ASSERT_EQ(logwire::decode_all(buf, &out), buf.size());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].key, "old1");
  EXPECT_EQ(out[1].key, "old2");
  EXPECT_EQ(out[2].key, "new1");
  EXPECT_EQ(out[3].type, LogType::kClose);
  EXPECT_EQ(logwire::valid_prefix_bytes(buf), buf.size());
}

// An unknown future format version must fail-stop — loudly refusing to
// read is recoverable, silently truncating committed data is not.
TEST(LogRecord, UnknownFutureVersionThrows) {
  std::string buf;
  logwire::encode_put(&buf, "k", {{0, "v"}}, 1, 1);
  buf[4] = '\x09';  // future version byte
  std::vector<LogEntry> out;
  EXPECT_THROW(logwire::decode_all(buf, &out), std::runtime_error);
  EXPECT_THROW(logwire::valid_prefix_bytes(buf), std::runtime_error);
  // Mid-file too: a valid v2 prefix followed by a future-version header.
  std::string mixed;
  logwire::encode_put(&mixed, "k", {{0, "v"}}, 1, 1);
  size_t boundary = mixed.size();
  logwire::encode_header(&mixed);
  mixed[boundary + 4] = '\x07';
  EXPECT_THROW(logwire::decode_all(mixed, &out), std::runtime_error);
}

// ---------------- compression + timestamp deltas on the wire ----------------

TEST(LogRecord, CompressedColumnRoundTrip) {
  std::string raw;
  for (int i = 0; i < 100; ++i) {
    raw += "abcdefgh" + std::to_string(i % 10);
  }
  std::string comp(raw.size() - 1, '\0');
  size_t csize = lz::compress(raw.data(), raw.size(), comp.data(), comp.size());
  ASSERT_GT(csize, 0u);
  ASSERT_LT(csize, raw.size());
  logwire::ColPlan plan;
  plan.col = 3;
  plan.data = comp.data();
  plan.stored_len = static_cast<uint32_t>(csize);
  plan.raw_len = static_cast<uint32_t>(raw.size());
  plan.compressed = true;
  std::string buf;
  logwire::encode_header(&buf);
  size_t old = buf.size();
  buf.resize(old + logwire::put_record_size_v2("ckey", &plan, 1, 42, 777));
  logwire::encode_put_v2_to(buf.data() + old, "ckey", &plan, 1, 42, 777,
                            /*delta=*/false);
  std::vector<LogEntry> out;
  ASSERT_EQ(logwire::decode_all(buf, &out), buf.size());
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].columns.size(), 1u);
  EXPECT_EQ(out[0].columns[0].first, 3);
  EXPECT_EQ(out[0].columns[0].second, raw);
  EXPECT_EQ(out[0].version, 42u);
}

TEST(LogRecord, DeltaTimestampDecodes) {
  logwire::ColPlan plan;
  plan.col = 0;
  plan.data = "v";
  plan.stored_len = 1;
  plan.raw_len = 1;
  std::string buf;
  logwire::encode_header(&buf);
  size_t old = buf.size();
  buf.resize(old + logwire::put_record_size_v2("a", &plan, 1, 1, 1000));
  buf.resize(old + logwire::encode_put_v2_to(buf.data() + old, "a", &plan, 1,
                                             1, 1000, /*delta=*/false));
  // Second record 5us EARLIER, as a zigzag delta (clock skew happens).
  uint64_t zz = vint::zigzag(-5);
  old = buf.size();
  buf.resize(old + logwire::put_record_size_v2("b", &plan, 1, 2, zz));
  buf.resize(old + logwire::encode_put_v2_to(buf.data() + old, "b", &plan, 1,
                                             2, zz, /*delta=*/true));
  std::vector<LogEntry> out;
  ASSERT_EQ(logwire::decode_all(buf, &out), buf.size());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].timestamp_us, 1000u);
  EXPECT_EQ(out[1].timestamp_us, 995u);
}

// A delta record with no preceding absolute base in the stream (its base
// was truncated away) must be treated as corruption, not decoded off ts 0.
TEST(LogRecord, DanglingDeltaRejected) {
  logwire::ColPlan plan;
  plan.col = 0;
  plan.data = "v";
  plan.stored_len = 1;
  plan.raw_len = 1;
  std::string buf;
  logwire::encode_header(&buf);
  uint64_t zz = vint::zigzag(7);
  size_t old = buf.size();
  buf.resize(old + logwire::put_record_size_v2("a", &plan, 1, 1, zz));
  buf.resize(old + logwire::encode_put_v2_to(buf.data() + old, "a", &plan, 1,
                                             1, zz, /*delta=*/true));
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), logwire::kHeaderSize);
  EXPECT_TRUE(out.empty());
}

// A format header also severs the delta chain: base before, delta after ->
// the delta is dangling.
TEST(LogRecord, HeaderResetsDeltaBase) {
  logwire::ColPlan plan;
  plan.col = 0;
  plan.data = "v";
  plan.stored_len = 1;
  plan.raw_len = 1;
  std::string buf;
  logwire::encode_header(&buf);
  size_t old = buf.size();
  buf.resize(old + logwire::put_record_size_v2("a", &plan, 1, 1, 1000));
  buf.resize(old + logwire::encode_put_v2_to(buf.data() + old, "a", &plan, 1,
                                             1, 1000, /*delta=*/false));
  logwire::encode_header(&buf);
  size_t stop = buf.size();
  uint64_t zz = vint::zigzag(3);
  old = buf.size();
  buf.resize(old + logwire::put_record_size_v2("b", &plan, 1, 2, zz));
  buf.resize(old + logwire::encode_put_v2_to(buf.data() + old, "b", &plan, 1,
                                             2, zz, /*delta=*/true));
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), stop);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "a");
}

// ---------------- Logger (single shard + its logging thread) ----------------

TEST(Logger, WritesAndRecovers) {
  std::string path = TempPath("logger_basic.bin");
  std::remove(path.c_str());
  {
    Logger::Options opt;
    opt.flush_interval_ms = 10;
    Logger log(path, opt);
    for (int i = 0; i < 100; ++i) {
      log.append_put("key" + std::to_string(i), {{0, "v" + std::to_string(i)}}, i + 1);
    }
    log.append_remove("key5", 200);
    log.sync();
    EXPECT_EQ(log.error(), 0);
    // Steady-state appends are allocation-free: only the two arena halves.
    EXPECT_EQ(log.counters().get(Counter::kLogAllocs), 2u);
    EXPECT_EQ(log.counters().get(Counter::kLogAppends), 101u);
  }  // destructor drains and stamps the kClose completion marker
  auto entries = read_log_file(path);
  size_t puts = 0, removes = 0, markers = 0, closes = 0;
  for (const auto& e : entries) {
    switch (e.type) {
      case LogType::kPut: ++puts; break;
      case LogType::kRemove: ++removes; break;
      case LogType::kMarker: ++markers; break;
      case LogType::kClose: ++closes; break;
    }
  }
  EXPECT_EQ(puts, 100u);
  EXPECT_EQ(removes, 1u);
  // sync() stamps a heartbeat (the shard was quiescent); the destructor
  // stamps kClose, and kClose is last so the log reads as complete.
  EXPECT_GE(markers, 1u);
  EXPECT_GE(closes, 1u);
  EXPECT_EQ(entries.back().type, LogType::kClose);
  // Data-record timestamps are monotone within one producer's file (what
  // makes the §5 cutoff sound). Markers are excluded: a heartbeat is
  // deliberately stamped one microsecond shy of the round's start, so it
  // may tie-break 1us below a record drained in the same microsecond.
  uint64_t last_ts = 0;
  for (const auto& e : entries) {
    if (e.type != LogType::kPut && e.type != LogType::kRemove) {
      continue;
    }
    EXPECT_GE(e.timestamp_us, last_ts);
    last_ts = e.timestamp_us;
  }
}

TEST(Logger, GroupCommitFlushesOnDeadline) {
  std::string path = TempPath("logger_deadline.bin");
  std::remove(path.c_str());
  Logger::Options opt;
  opt.flush_interval_ms = 20;
  Logger log(path, opt);
  log.append_put("k", {{0, "v"}}, 1);
  // Without an explicit sync, the 20 ms group-commit deadline must flush.
  for (int tries = 0; tries < 200 && log.flushes() == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(log.bytes_written(), 0u);
  EXPECT_GT(log.flushes(), 0u);
}

TEST(Logger, DoubleBufferSealsAndRecyclesUnderLoad) {
  std::string path = TempPath("logger_seal.bin");
  std::remove(path.c_str());
  Logger::Options opt;
  opt.flush_interval_ms = 5;
  opt.buffer_bytes = 1 << 10;  // tiny halves: every few appends seals one
  {
    Logger log(path, opt);
    for (int i = 0; i < 5000; ++i) {
      log.append_put("key" + std::to_string(i), {{0, "0123456789abcdef"}}, i + 1);
    }
    log.sync();
    // Stalls may or may not occur (timing), but allocation-freedom must
    // hold even while halves seal and recycle constantly.
    EXPECT_EQ(log.counters().get(Counter::kLogAllocs), 2u);
  }
  auto entries = read_log_file(path);
  size_t puts = 0;
  uint64_t last_version = 0;
  for (const auto& e : entries) {
    if (e.type == LogType::kPut) {
      ++puts;
      EXPECT_GT(e.version, last_version);  // drain order == append order
      last_version = e.version;
    }
  }
  EXPECT_EQ(puts, 5000u);
}

TEST(Logger, JumboRecordTakesSlowPathIntact) {
  std::string path = TempPath("logger_jumbo.bin");
  std::remove(path.c_str());
  Logger::Options opt;
  opt.buffer_bytes = 1 << 10;
  opt.compress_threshold = 0;  // 8 KiB of 'J' would otherwise fit a half
  {
    Logger log(path, opt);
    log.append_put("small-before", {{0, "x"}}, 1);
    log.append_put("jumbo", {{0, std::string(8 << 10, 'J')}}, 2);  // > both halves
    log.append_put("small-after", {{0, "y"}}, 3);
    log.sync();
    EXPECT_GE(log.counters().get(Counter::kLogAllocs), 3u);  // halves + jumbo
  }
  auto entries = read_log_file(path);
  std::vector<const LogEntry*> puts;
  for (const auto& e : entries) {
    if (e.type == LogType::kPut) {
      puts.push_back(&e);
    }
  }
  ASSERT_EQ(puts.size(), 3u);
  EXPECT_EQ(puts[0]->key, "small-before");
  EXPECT_EQ(puts[1]->key, "jumbo");
  EXPECT_EQ(puts[1]->columns[0].second.size(), size_t{8 << 10});
  EXPECT_EQ(puts[2]->key, "small-after");
}

// A large-but-compressible value that would overflow a 1 KiB arena half raw
// must compress onto the normal wait-free path: no jumbo allocation, exact
// round-trip, and a file much smaller than the logical bytes.
TEST(Logger, CompressedLargeValueStaysInArena) {
  std::string path = TempPath("logger_compress.bin");
  std::remove(path.c_str());
  std::string value;
  for (int i = 0; i < 400; ++i) {
    value += "pattern" + std::to_string(i % 7);
  }
  ASSERT_GT(value.size(), size_t{2 << 10});
  {
    Logger::Options opt;
    opt.buffer_bytes = 1 << 10;
    Logger log(path, opt);
    log.append_put("bigc", {{0, value}}, 1);
    log.sync();
    EXPECT_EQ(log.error(), 0);
    EXPECT_EQ(log.counters().get(Counter::kLogAllocs), 2u);  // halves only
    EXPECT_EQ(log.counters().get(Counter::kLogCompressedRecords), 1u);
    EXPECT_GT(log.counters().get(Counter::kLogBytesLogical),
              log.counters().get(Counter::kLogBytesPhysical));
  }
  EXPECT_LT(std::filesystem::file_size(path), value.size() / 2);
  auto entries = read_log_file(path);
  ASSERT_FALSE(entries.empty());
  ASSERT_EQ(entries[0].type, LogType::kPut);
  EXPECT_EQ(entries[0].key, "bigc");
  ASSERT_EQ(entries[0].columns.size(), 1u);
  EXPECT_EQ(entries[0].columns[0].second, value);
}

TEST(Logger, TruncateDropsOldKeepsNew) {
  std::string path = TempPath("logger_trunc.bin");
  std::remove(path.c_str());
  Logger log(path);
  log.append_put("old", {{0, "gone"}}, 1);
  log.sync();
  log.truncate();
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  log.append_put("new", {{0, "kept"}}, 2);
  log.sync();
  auto entries = read_log_file(path);
  size_t puts = 0;
  for (const auto& e : entries) {
    if (e.type == LogType::kPut) {
      ++puts;
      EXPECT_EQ(e.key, "new");
    }
  }
  EXPECT_EQ(puts, 1u);
}

// The old design's race: truncate() could ftruncate the fd while the flush
// (which had dropped the lock) was mid-::write, shearing the tail. Now the
// truncation runs on the logging thread at a round boundary, so hammering
// truncate against a full-throttle producer must always leave a cleanly
// decodable file whose records are a subset of what was appended, in order.
TEST(Logger, TruncateRendezvousesWithInFlightFlush) {
  std::string path = TempPath("logger_trunc_race.bin");
  std::remove(path.c_str());
  Logger::Options opt;
  opt.flush_interval_ms = 1;
  opt.buffer_bytes = 2 << 10;
  opt.fsync_on_flush = false;  // maximize flush frequency
  constexpr int kRecords = 20000;
  {
    Logger log(path, opt);
    std::thread producer([&] {
      for (int i = 0; i < kRecords; ++i) {
        log.append_put("key" + std::to_string(i), {{0, "0123456789abcdef"}}, i + 1);
      }
    });
    for (int i = 0; i < 50; ++i) {
      log.truncate();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      log.sync();
    }
    producer.join();
    log.sync();
    EXPECT_EQ(log.error(), 0);
  }
  std::string bytes = ReadFileBytes(path);
  std::vector<LogEntry> entries;
  // Every surviving byte must decode: no shear, no corruption.
  ASSERT_EQ(logwire::decode_all(bytes, &entries), bytes.size());
  uint64_t last_version = 0;
  for (const auto& e : entries) {
    if (e.type != LogType::kPut) {
      continue;
    }
    EXPECT_GT(e.version, last_version);  // order preserved across truncates
    last_version = e.version;
    EXPECT_EQ(e.key, "key" + std::to_string(e.version - 1));
  }
  EXPECT_LE(last_version, static_cast<uint64_t>(kRecords));
}

TEST(Logger, StickyErrorSurfacesOnFullDisk) {
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  Logger::Options opt;
  opt.fsync_on_flush = false;  // the write error itself must be what sticks
  Logger log("/dev/full", opt);
  log.append_put("doomed", {{0, std::string(1024, 'x')}}, 1);
  log.sync();
  EXPECT_EQ(log.error(), ENOSPC);
  // Fail-stop, not fail-crash: later appends are accepted and discarded.
  log.append_put("also-doomed", {{0, "y"}}, 2);
  log.sync();
  EXPECT_EQ(log.error(), ENOSPC);
}

// ---------------- multi-writer stress over LogWriter ----------------

// Four producer threads, each owning a shard, all drained by one logging
// thread while the main thread hammers sync() and truncate_all(). After a
// final barrier + truncate, a tagged second phase must survive verbatim
// (oracle diff); phase-1 survivors must be a clean ordered subset.
TEST(LogWriterStress, ConcurrentAppendSyncTruncate) {
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kPhase1 = 3000, kPhase2 = 1500;
  constexpr uint64_t kTag = 1000000;  // version space per thread
  std::vector<std::string> paths;
  LogShardPool pool;
  LogWriter::Options wopt;
  wopt.flush_interval_ms = 1;
  wopt.fsync_on_flush = false;
  LogWriter writer(wopt, &pool);
  std::vector<std::unique_ptr<LogShard>> shards;
  std::vector<ThreadCounters> counters(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    paths.push_back(TempPath("stress-log-" + std::to_string(t) + ".bin"));
    std::remove(paths.back().c_str());
    shards.push_back(std::make_unique<LogShard>(paths.back(), 4 << 10, 0,
                                                &counters[t], false));
    writer.add_shard(shards.back().get());
  }
  writer.start();

  std::atomic<bool> phase2{false};
  std::atomic<unsigned> phase1_done{0};
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      LogShard& shard = *shards[t];
      for (uint64_t i = 0; i < kPhase1; ++i) {
        shard.append_put("p1-" + std::to_string(t) + "-" + std::to_string(i),
                         {{0, "phase1-value"}}, t * kTag + i + 1);
      }
      phase1_done.fetch_add(1);
      while (!phase2.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (uint64_t i = 0; i < kPhase2; ++i) {
        shard.append_put("p2-" + std::to_string(t) + "-" + std::to_string(i),
                         {{0, "phase2-value"}}, t * kTag + kPhase1 + i + 1);
      }
      shard.release_producer();
    });
  }

  // Main thread: sync and truncate against live appends.
  while (phase1_done.load() != kThreads) {
    writer.sync();
    writer.truncate_all();
  }
  writer.truncate_all();  // final truncate: everything before this may vanish
  phase2.store(true, std::memory_order_release);
  for (auto& p : producers) {
    p.join();
  }
  writer.stop();  // drains phase 2, stamps kClose everywhere

  for (unsigned t = 0; t < kThreads; ++t) {
    std::string bytes = ReadFileBytes(paths[t]);
    std::vector<LogEntry> entries;
    ASSERT_EQ(logwire::decode_all(bytes, &entries), bytes.size()) << paths[t];
    ASSERT_FALSE(entries.empty());
    EXPECT_EQ(entries.back().type, LogType::kClose);
    uint64_t last_version = 0, last_ts = 0;
    uint64_t phase2_seen = 0;
    for (const auto& e : entries) {
      if (e.type != LogType::kPut) {
        continue;
      }
      // Subset of what this thread appended, in append order, ts-monotone.
      uint64_t local = e.version - t * kTag - 1;
      ASSERT_LT(local, kPhase1 + kPhase2);
      std::string want_key =
          local < kPhase1
              ? "p1-" + std::to_string(t) + "-" + std::to_string(local)
              : "p2-" + std::to_string(t) + "-" + std::to_string(local - kPhase1);
      EXPECT_EQ(e.key, want_key);
      EXPECT_GT(e.version, last_version);
      EXPECT_GE(e.timestamp_us, last_ts);
      last_version = e.version;
      last_ts = e.timestamp_us;
      if (local >= kPhase1) {
        ++phase2_seen;
      }
    }
    // Oracle: the entire post-final-truncate phase survived.
    EXPECT_EQ(phase2_seen, kPhase2) << "thread " << t;
    EXPECT_EQ(counters[t].get(Counter::kLogAllocs), 2u) << "thread " << t;
    EXPECT_EQ(counters[t].get(Counter::kLogAppends), kPhase1 + kPhase2);
  }
}

// Crash-replay over the shard format: truncate a shard's file at arbitrary
// byte offsets ("crash"), then adopt it with tail repair and keep appending —
// recovery must see the intact old prefix followed by the new records.
TEST(LogWriterStress, TornTailRepairThenAppend) {
  std::string path = TempPath("torn_repair.bin");
  std::remove(path.c_str());
  {
    Logger::Options opt;
    opt.fsync_on_flush = false;
    Logger log(path, opt);
    for (int i = 0; i < 50; ++i) {
      log.append_put("orig" + std::to_string(i), {{0, "dataXYZ"}}, i + 1);
    }
    log.sync();
  }
  std::string bytes = ReadFileBytes(path);
  std::vector<LogEntry> all;
  logwire::decode_all(bytes, &all);
  ASSERT_GE(all.size(), 50u);

  for (size_t cut = 1; cut < bytes.size(); cut += 97) {  // sampled offsets
    std::string torn_path = TempPath("torn_repair_cut.bin");
    {
      std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    std::vector<LogEntry> prefix;
    logwire::decode_all(std::string_view(bytes.data(), cut), &prefix);
    size_t old_records = prefix.size();
    {
      // Adopt with repair (what the Store does at startup), then append.
      LogShardPool pool;
      LogWriter writer({5, false}, &pool);
      LogShard shard(torn_path, 4 << 10, 0, nullptr, /*repair_existing_tail=*/true);
      writer.add_shard(&shard);
      writer.start();
      shard.append_put("fresh-a", {{0, "new"}}, 9001);
      shard.append_put("fresh-b", {{0, "new"}}, 9002);
      writer.stop();
    }
    auto entries = read_log_file(torn_path);
    // Old prefix intact, then the fresh records, then kClose — nothing
    // buried behind torn bytes.
    ASSERT_EQ(entries.size(), old_records + 3) << "cut " << cut;
    for (size_t i = 0; i < old_records; ++i) {
      EXPECT_EQ(entries[i].key, prefix[i].key);
    }
    EXPECT_EQ(entries[old_records].key, "fresh-a");
    EXPECT_EQ(entries[old_records + 1].key, "fresh-b");
    EXPECT_EQ(entries.back().type, LogType::kClose);
  }
}

// ---------------- recovery cutoff ----------------

TEST(Recovery, CutoffIsMinOfLastTimestamps) {
  // Three live logs whose last timestamps are 50, 80, 30 -> cutoff 30 (§5).
  std::vector<std::string> paths;
  uint64_t lasts[3] = {50, 80, 30};
  for (int i = 0; i < 3; ++i) {
    std::string p = TempPath("cutoff" + std::to_string(i) + ".bin");
    std::remove(p.c_str());
    std::string buf;
    logwire::encode_put(&buf, "k" + std::to_string(i), {{0, "v"}}, i + 1, 10);
    logwire::encode_put(&buf, "k" + std::to_string(i), {{0, "w"}}, i + 10, lasts[i]);
    std::ofstream(p, std::ios::binary) << buf;
    paths.push_back(p);
  }
  RecoverySet rs = load_logs(paths);
  EXPECT_EQ(rs.cutoff_us, 30u);
  auto plan = replay_plan(std::move(rs));
  // Only entries with ts <= 30 survive: the three ts=10 entries plus log 2's
  // ts=30 entry.
  EXPECT_EQ(plan.size(), 4u);
  // Sorted by version.
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].version, plan[i].version);
  }
}

TEST(Recovery, CompleteLogDoesNotBoundCutoff) {
  // Log A: live, last ts 500. Log B: closed cleanly at ts 10 — without the
  // kClose exemption it would pin the cutoff at 10 and drop A's tail.
  std::string pa = TempPath("rc_live.bin");
  std::string pb = TempPath("rc_complete.bin");
  std::remove(pa.c_str());
  std::remove(pb.c_str());
  std::string a, b;
  logwire::encode_put(&a, "alive", {{0, "v1"}}, 1, 100);
  logwire::encode_put(&a, "alive", {{0, "v2"}}, 5, 500);
  logwire::encode_put(&b, "done", {{0, "old"}}, 2, 10);
  logwire::encode_close(&b, 11);
  std::ofstream(pa, std::ios::binary) << a;
  std::ofstream(pb, std::ios::binary) << b;
  RecoverySet rs = load_logs({pa, pb});
  EXPECT_EQ(rs.cutoff_us, 500u);
  auto plan = replay_plan(std::move(rs));
  EXPECT_EQ(plan.size(), 3u);  // the complete log still contributes records
}

TEST(Recovery, AllCompleteKeepsEverything) {
  std::string p = TempPath("rc_allcomplete.bin");
  std::remove(p.c_str());
  std::string buf;
  logwire::encode_put(&buf, "k", {{0, "v"}}, 1, 42);
  logwire::encode_close(&buf, 43);
  std::ofstream(p, std::ios::binary) << buf;
  RecoverySet rs = load_logs({p});
  EXPECT_EQ(rs.cutoff_us, std::numeric_limits<uint64_t>::max());
  auto plan = replay_plan(std::move(rs));
  EXPECT_EQ(plan.size(), 1u);
}

TEST(Recovery, SealRecoveredLogTrimsAndCompletes) {
  std::string p = TempPath("rc_seal.bin");
  std::remove(p.c_str());
  std::string buf;
  logwire::encode_put(&buf, "keep1", {{0, "v"}}, 1, 10);
  logwire::encode_put(&buf, "keep2", {{0, "v"}}, 2, 20);
  logwire::encode_put(&buf, "drop", {{0, "v"}}, 3, 99);  // beyond cutoff
  std::ofstream(p, std::ios::binary) << buf;
  {
    RecoverySet rs = load_logs({p});
    ASSERT_FALSE(rs.logs[0].complete);
    seal_recovered_log(p, rs.logs[0], /*cutoff_us=*/50);
  }
  // Re-read: the beyond-cutoff record is gone for good (no resurrection on
  // the next recovery) and the file no longer bounds any cutoff.
  RecoverySet rs = load_logs({p});
  ASSERT_TRUE(rs.logs[0].complete);
  auto plan = replay_plan(std::move(rs));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].key, "keep1");
  EXPECT_EQ(plan[1].key, "keep2");
}

TEST(Recovery, SealTrimsCompleteLogsBeyondCutoff) {
  // A cleanly closed session's log can still hold records newer than a
  // cutoff set by some other live log. Recovery drops them this time; the
  // seal must trim them so a LATER recovery (when every log reads complete
  // and the cutoff relaxes to +inf) cannot resurrect them.
  std::string p = TempPath("rc_seal_complete.bin");
  std::remove(p.c_str());
  std::string buf;
  logwire::encode_put(&buf, "keep", {{0, "v"}}, 1, 10);
  logwire::encode_put(&buf, "drop", {{0, "v"}}, 2, 99);  // beyond cutoff 50
  logwire::encode_close(&buf, 100);
  std::ofstream(p, std::ios::binary) << buf;
  {
    RecoverySet rs = load_logs({p});
    ASSERT_TRUE(rs.logs[0].complete);
    seal_recovered_log(p, rs.logs[0], /*cutoff_us=*/50);
  }
  RecoverySet rs = load_logs({p});
  ASSERT_TRUE(rs.logs[0].complete);  // re-closed after the trim
  auto plan = replay_plan(std::move(rs));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].key, "keep");
}

// A latent media error that flips one bit inside a mid-log record's CRC must
// behave exactly like a torn tail: replay keeps the intact prefix, stops at
// the corrupt record, and the seal trims the file there so the records BEYOND
// the corruption (here: a remove of "alive" and a later put) can never
// resurrect on a subsequent recovery — a half-trusted suffix is worse than a
// short one.
TEST(Recovery, BitFlippedCrcMidLogKeepsPrefixOnly) {
  std::string p = TempPath("rc_crcflip.bin");
  std::remove(p.c_str());
  std::string buf;
  std::vector<size_t> ends;
  logwire::encode_put(&buf, "alive", {{0, "v1"}}, 1, 10);
  ends.push_back(buf.size());
  logwire::encode_put(&buf, "victim", {{0, "v2"}}, 2, 20);
  ends.push_back(buf.size());
  logwire::encode_remove(&buf, "alive", 3, 30);
  ends.push_back(buf.size());
  logwire::encode_put(&buf, "late", {{0, "v4"}}, 4, 40);
  ends.push_back(buf.size());
  // The v2 frame ends with its u32 crc32c; flip one bit of record 2's CRC.
  buf[ends[1] - 2] ^= 0x04;
  std::ofstream(p, std::ios::binary) << buf;

  // First recovery: the prefix before the flip survives, nothing after it.
  {
    RecoverySet rs = load_logs({p});
    ASSERT_FALSE(rs.logs[0].complete);  // corruption reads as a live tail
    EXPECT_EQ(rs.cutoff_us, 10u);       // bounded by the last intact record
    uint64_t cutoff = rs.cutoff_us;
    auto plan = replay_plan(std::move(rs));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].key, "alive");
    EXPECT_EQ(plan[0].type, LogType::kPut);
    RecoverySet again = load_logs({p});
    seal_recovered_log(p, again.logs[0], cutoff);
  }
  // Second recovery after the seal: the file reads complete, and neither the
  // post-corruption remove nor the "late" put reappears.
  RecoverySet rs = load_logs({p});
  ASSERT_TRUE(rs.logs[0].complete);
  auto plan = replay_plan(std::move(rs));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].key, "alive");
  EXPECT_EQ(plan[0].type, LogType::kPut);
}

TEST(Recovery, EmptyLogDoesNotZeroCutoff) {
  std::string p1 = TempPath("re_nonempty.bin");
  std::string p2 = TempPath("re_empty.bin");
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::string buf;
  logwire::encode_put(&buf, "k", {{0, "v"}}, 1, 99);
  std::ofstream(p1, std::ios::binary) << buf;
  std::ofstream(p2, std::ios::binary) << "";
  RecoverySet rs = load_logs({p1, p2});
  EXPECT_EQ(rs.cutoff_us, 99u);
}

TEST(Recovery, MissingFilesReadEmpty) {
  auto entries = read_log_file(TempPath("does_not_exist.bin"));
  EXPECT_TRUE(entries.empty());
}

TEST(Recovery, ListLogFilesFindsStoreNames) {
  std::string dir = TempPath("list_logs_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/log-0.bin") << "x";
  std::ofstream(dir + "/log-12.bin") << "x";
  std::ofstream(dir + "/notalog.txt") << "x";
  auto paths = list_log_files(dir);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].find("log-0.bin"), std::string::npos);
  EXPECT_NE(paths[1].find("log-12.bin"), std::string::npos);
  EXPECT_TRUE(list_log_files(TempPath("no_such_dir")).empty());
}

// A data directory can legitimately mix formats after a version upgrade:
// untouched v1 files from the old build next to v2 files from the new one.
// Both must feed recovery, and sealing must leave every file readable
// (v1 files get their mid-file header upgrade from the seal).
TEST(Recovery, MixedVersionFilesRecover) {
  std::string p1 = TempPath("mixed_v1.bin");
  std::string p2 = TempPath("mixed_v2.bin");
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::string old_fmt;  // headerless v1, as an old build wrote it
  logwire::encode_put_v1(&old_fmt, "v1-key", {{0, "v1-value"}}, 1, 100);
  logwire::encode_put_v1(&old_fmt, "v1-key2", {{0, "v1-value2"}}, 2, 200);
  std::ofstream(p1, std::ios::binary) << old_fmt;
  std::string new_fmt;
  logwire::encode_put(&new_fmt, "v2-key", {{0, "v2-value"}}, 3, 150);
  std::ofstream(p2, std::ios::binary) << new_fmt;

  RecoverySet rs = load_logs({p1, p2});
  // Both live: cutoff = min(200, 150).
  EXPECT_EQ(rs.cutoff_us, 150u);
  seal_recovered_log(p1, rs.logs[0], rs.cutoff_us);
  seal_recovered_log(p2, rs.logs[1], rs.cutoff_us);
  auto plan = replay_plan(std::move(rs));
  ASSERT_EQ(plan.size(), 2u);  // v1-key (ts100) + v2-key (ts150); ts200 dropped

  // After sealing, both re-read complete and the drop cannot resurrect.
  RecoverySet rs2 = load_logs({p1, p2});
  ASSERT_TRUE(rs2.logs[0].complete);
  ASSERT_TRUE(rs2.logs[1].complete);
  auto plan2 = replay_plan(std::move(rs2));
  ASSERT_EQ(plan2.size(), 2u);
  EXPECT_EQ(plan2[0].key, "v1-key");
  EXPECT_EQ(plan2[1].key, "v2-key");
}

// read_log_file propagates the unknown-version fail-stop instead of
// returning a silently truncated record list.
TEST(Recovery, UnknownVersionFileFailsStop) {
  std::string p = TempPath("future_version.bin");
  std::remove(p.c_str());
  std::string buf;
  logwire::encode_put(&buf, "k", {{0, "v"}}, 1, 1);
  buf[4] = '\x06';
  std::ofstream(p, std::ios::binary) << buf;
  EXPECT_THROW(read_log_file(p), std::runtime_error);
}

TEST(Recovery, SincePrunesCheckpointedEntries) {
  std::string p = TempPath("re_since.bin");
  std::remove(p.c_str());
  std::string buf;
  for (int i = 1; i <= 10; ++i) {
    logwire::encode_put(&buf, "k", {{0, std::to_string(i)}}, i, i * 10);
  }
  std::ofstream(p, std::ios::binary) << buf;
  auto plan = replay_plan(load_logs({p}), /*since_us=*/55);
  EXPECT_EQ(plan.size(), 5u);  // ts 60..100
}

}  // namespace
}  // namespace masstree
