// Log encoding, group commit, and recovery-cutoff tests (§5), including
// failure injection (torn tails, corrupt records).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "log/logger.h"
#include "log/logrecord.h"
#include "log/recovery.h"

namespace masstree {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(LogRecord, PutRoundTrip) {
  std::string buf;
  logwire::encode_put(&buf, "mykey", {{0, "val0"}, {3, "val3"}}, 42, 1000);
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), buf.size());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, LogType::kPut);
  EXPECT_EQ(out[0].key, "mykey");
  EXPECT_EQ(out[0].version, 42u);
  EXPECT_EQ(out[0].timestamp_us, 1000u);
  ASSERT_EQ(out[0].columns.size(), 2u);
  EXPECT_EQ(out[0].columns[0].first, 0);
  EXPECT_EQ(out[0].columns[0].second, "val0");
  EXPECT_EQ(out[0].columns[1].first, 3);
  EXPECT_EQ(out[0].columns[1].second, "val3");
}

TEST(LogRecord, RemoveRoundTrip) {
  std::string buf;
  logwire::encode_remove(&buf, "gone", 7, 2000);
  std::vector<LogEntry> out;
  logwire::decode_all(buf, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, LogType::kRemove);
  EXPECT_EQ(out[0].key, "gone");
}

TEST(LogRecord, BinaryKeyRoundTrip) {
  std::string key("\x00key\xffwith\x00nuls", 14);
  std::string buf;
  logwire::encode_put(&buf, key, {{0, std::string("\x00\x01", 2)}}, 1, 1);
  std::vector<LogEntry> out;
  logwire::decode_all(buf, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, key);
  EXPECT_EQ(out[0].columns[0].second, std::string("\x00\x01", 2));
}

TEST(LogRecord, TornTailDiscarded) {
  std::string buf;
  logwire::encode_put(&buf, "a", {{0, "1"}}, 1, 1);
  size_t whole = buf.size();
  logwire::encode_put(&buf, "b", {{0, "2"}}, 2, 2);
  // Simulate a crash mid-write of the second record.
  std::string torn = buf.substr(0, whole + 7);
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(torn, &out), whole);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "a");
}

TEST(LogRecord, CorruptRecordStopsReplay) {
  std::string buf;
  logwire::encode_put(&buf, "a", {{0, "1"}}, 1, 1);
  size_t first = buf.size();
  logwire::encode_put(&buf, "b", {{0, "2"}}, 2, 2);
  logwire::encode_put(&buf, "c", {{0, "3"}}, 3, 3);
  buf[first + 10] ^= 0x5A;  // flip a byte inside record 2
  std::vector<LogEntry> out;
  EXPECT_EQ(logwire::decode_all(buf, &out), first);
  ASSERT_EQ(out.size(), 1u);  // record 3 is also discarded: order matters
}

TEST(Logger, WritesAndRecovers) {
  std::string path = TempPath("logger_basic.bin");
  std::remove(path.c_str());
  {
    Logger::Options opt;
    opt.flush_interval_ms = 10;
    Logger log(path, opt);
    for (int i = 0; i < 100; ++i) {
      log.append_put("key" + std::to_string(i), {{0, "v" + std::to_string(i)}}, i + 1, i + 1);
    }
    log.append_remove("key5", 200, 200);
    log.sync();
  }  // destructor flushes the rest
  auto entries = read_log_file(path);
  size_t puts = 0, removes = 0, markers = 0;
  for (const auto& e : entries) {
    switch (e.type) {
      case LogType::kPut: ++puts; break;
      case LogType::kRemove: ++removes; break;
      case LogType::kMarker: ++markers; break;
    }
  }
  EXPECT_EQ(puts, 100u);
  EXPECT_EQ(removes, 1u);
  // sync() and the destructor both append heartbeat markers (§5 cutoff).
  EXPECT_GE(markers, 2u);
}

TEST(Logger, GroupCommitFlushesOnDeadline) {
  std::string path = TempPath("logger_deadline.bin");
  std::remove(path.c_str());
  Logger::Options opt;
  opt.flush_interval_ms = 20;
  Logger log(path, opt);
  log.append_put("k", {{0, "v"}}, 1, 1);
  // Without an explicit sync, the 20 ms group-commit deadline must flush.
  for (int tries = 0; tries < 100 && log.flushes() == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(log.bytes_written(), 0u);
}

TEST(Recovery, CutoffIsMinOfLastTimestamps) {
  // Three logs whose last timestamps are 50, 80, 30 -> cutoff 30 (§5).
  std::vector<std::string> paths;
  uint64_t lasts[3] = {50, 80, 30};
  for (int i = 0; i < 3; ++i) {
    std::string p = TempPath("cutoff" + std::to_string(i) + ".bin");
    std::remove(p.c_str());
    std::string buf;
    logwire::encode_put(&buf, "k" + std::to_string(i), {{0, "v"}}, i + 1, 10);
    logwire::encode_put(&buf, "k" + std::to_string(i), {{0, "w"}}, i + 10, lasts[i]);
    std::ofstream(p, std::ios::binary) << buf;
    paths.push_back(p);
  }
  RecoverySet rs = load_logs(paths);
  EXPECT_EQ(rs.cutoff_us, 30u);
  auto plan = replay_plan(std::move(rs));
  // Only entries with ts <= 30 survive: the three ts=10 entries plus log 2's
  // ts=30 entry.
  EXPECT_EQ(plan.size(), 4u);
  // Sorted by version.
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].version, plan[i].version);
  }
}

TEST(Recovery, EmptyLogDoesNotZeroCutoff) {
  std::string p1 = TempPath("re_nonempty.bin");
  std::string p2 = TempPath("re_empty.bin");
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::string buf;
  logwire::encode_put(&buf, "k", {{0, "v"}}, 1, 99);
  std::ofstream(p1, std::ios::binary) << buf;
  std::ofstream(p2, std::ios::binary) << "";
  RecoverySet rs = load_logs({p1, p2});
  EXPECT_EQ(rs.cutoff_us, 99u);
}

TEST(Recovery, MissingFilesReadEmpty) {
  auto entries = read_log_file(TempPath("does_not_exist.bin"));
  EXPECT_TRUE(entries.empty());
}

TEST(Recovery, SincePrunesCheckpointedEntries) {
  std::string p = TempPath("re_since.bin");
  std::remove(p.c_str());
  std::string buf;
  for (int i = 1; i <= 10; ++i) {
    logwire::encode_put(&buf, "k", {{0, std::to_string(i)}}, i, i * 10);
  }
  std::ofstream(p, std::ios::binary) << buf;
  auto plan = replay_plan(load_logs({p}), /*since_us=*/55);
  EXPECT_EQ(plan.size(), 5u);  // ts 60..100
}

}  // namespace
}  // namespace masstree
